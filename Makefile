GO ?= go

.PHONY: build test lint serve race clean bench bench-save slowcheck

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

lint:
	$(GO) vet ./...
	gofmt -l .

serve: ## run the analysis daemon on :8080
	$(GO) run ./cmd/mahjongd -addr=:8080

bench: ## solver benchmarks, quick single-iteration pass
	$(GO) test -run '^$$' -bench 'PreAnalysis|Table2' -benchtime=1x -benchmem .

bench-save: ## record solver benchmark numbers in BENCH_solver.json
	$(GO) test -run '^$$' -bench 'PreAnalysis|Table2' -benchtime=1x -benchmem . \
		| $(GO) run ./cmd/benchjson -o BENCH_solver.json
	@echo wrote BENCH_solver.json

slowcheck: ## optimized-vs-naive solver A/B over every benchmark program
	MAHJONG_SLOWCHECK=1 $(GO) test ./internal/bench -run SolverEquivalence -v

clean:
	$(GO) clean ./...
