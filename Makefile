GO ?= go

.PHONY: build test lint lint-self serve race clean bench bench-save bench-server bench-server-save deltacheck slowcheck faultmatrix fuzz-smoke trace-smoke cover scenariocheck corpus

# Optional analyzer subset for `make lint`, passed straight through to
# mahjongvet: `make lint RUN=atomicmix` or RUN=shardowner,sendmove.
RUN ?=
VETFLAGS := $(if $(RUN),-run $(RUN),)

# Total-statement coverage floor over ./internal/... — the seed baseline
# (88.8% at the time of recording) minus slack for environment noise.
COVER_FLOOR ?= 85.0

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

lint: ## go vet + gofmt + the project's own analyzer suite (docs/LINT.md); RUN=a,b selects analyzers
	$(GO) vet ./...
	@fmt_out=$$(gofmt -l .); if [ -n "$$fmt_out" ]; then echo "gofmt needed:"; echo "$$fmt_out"; exit 1; fi
	$(GO) build -o bin/mahjongvet ./cmd/mahjongvet
	./bin/mahjongvet $(VETFLAGS) ./...

lint-self: ## mahjongvet over its own framework and driver (the linter is module code too)
	$(GO) build -o bin/mahjongvet ./cmd/mahjongvet
	./bin/mahjongvet $(VETFLAGS) ./internal/lint/... ./cmd/mahjongvet/

serve: ## run the analysis daemon on :8080
	$(GO) run ./cmd/mahjongd -addr=:8080

bench: ## solver benchmarks, quick single-iteration pass
	$(GO) test -run '^$$' -bench 'PreAnalysis|Table2' -benchtime=1x -benchmem .

# Checked-in numbers run 3 iterations per benchmark (-benchtime=3x) and
# benchjson keeps the min across -count repetitions: a single-iteration
# sample is dominated by scheduling noise, which is what made successive
# BENCH_solver.json regenerations diff by double digits.
bench-save: ## record solver benchmark numbers in BENCH_solver.json + BENCH_incremental.json
	$(GO) test -run '^$$' -bench 'PreAnalysis|Table2' -benchtime=3x -benchmem . \
		| $(GO) run ./cmd/benchjson -o BENCH_solver.json
	@echo wrote BENCH_solver.json
	$(GO) test -run '^$$' -bench 'IncrementalOneMethodEdit' -benchtime=3x . \
		| $(GO) run ./cmd/benchjson -o BENCH_incremental.json
	@echo wrote BENCH_incremental.json

# SLO-gated overload smoke: an in-process mahjongd under an open-loop
# mixed workload at 0.5x/1x/2x measured capacity. Fails when interactive
# p99 blows the bound, interactive goodput at 2x drops below 80% of its
# 1x value, any accepted job wedges, or 2x overload never triggers
# admission control / shedding / auto-degradation (docs/ROBUSTNESS.md).
bench-server: ## overload load-harness smoke with SLO gates
	$(GO) run ./cmd/mahjongbench -levels 0.5,1,2 -duration 3s -calibrate 1s -slo

bench-server-save: ## record server load numbers in BENCH_server.json
	$(GO) run ./cmd/mahjongbench -levels 0.5,1,2 -duration 5s -calibrate 2s \
		| $(GO) run ./cmd/benchjson -o BENCH_server.json
	@echo wrote BENCH_server.json

deltacheck: ## warm-vs-cold equivalence sweep for the incremental engine (docs/INCREMENTAL.md)
	$(GO) test -count=1 -run 'TestIncrementalFacade' .
	$(GO) test -count=1 ./internal/delta/ -run 'TestRewrite|TestDiff|TestCompute'
	$(GO) test -count=1 ./internal/pta/ -run 'TestIncremental'
	$(GO) test -count=1 ./internal/server/ -run 'TestDeltaJob|TestQuery'

slowcheck: ## optimized-vs-naive solver A/B over every benchmark program
	MAHJONG_SLOWCHECK=1 $(GO) test ./internal/bench -run SolverEquivalence -v

faultmatrix: ## fault-injection matrix + shutdown/degradation tests under the race detector
	$(GO) test -race ./internal/server/ -run 'TestFaultMatrix|TestShutdown|TestDegraded' -v
	$(GO) test -race ./internal/faultinject/ ./internal/pta/ -run 'TestFire|TestCombinator|TestTimes|TestSetAndClear|TestOnStage|TestMutator|TestSolveContext|TestSolveClean'

fuzz-smoke: ## 10-second fuzz pass over the mahjongd submission endpoint
	$(GO) test ./internal/server/ -run '^$$' -fuzz FuzzSubmit -fuzztime=10s

trace-smoke: ## deterministic span traces: golden exports + span accounting over examples/
	$(GO) test ./internal/integration -run 'TestTraceExportGolden|TestSpanAccounting' -count=1

# The corpus differential drives every committed adversarial program
# (testdata/corpus/) through all four A/B axes — mahjong-vs-alloc-site,
# parallel-vs-sequential, warm-vs-cold incremental, renumber on/off —
# under the race detector. On a divergence the harness shrinks a minimal
# reproducer into $(MAHJONG_SCENARIO_ARTIFACTS) (CI uploads that
# directory). docs/SCENARIO.md has the full story.
scenariocheck: ## corpus differential + searcher/shrinker acceptance under -race
	$(GO) test -race -count=1 ./internal/scenario/ ./cmd/synthgen/ -v

corpus: ## regenerate the committed adversarial corpus (must be a no-op unless the searcher changed)
	$(GO) run ./cmd/synthgen -search -seed=1 -out=testdata/corpus

cover: ## coverage over ./internal/... with the recorded floor (docs/OBSERVABILITY.md)
	$(GO) test -coverprofile=cover.out ./internal/...
	@total=$$($(GO) tool cover -func=cover.out | tail -1 | awk '{gsub(/%/,"",$$3); print $$3}'); \
	echo "total coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t+0 < f+0) ? 1 : 0 }' \
		|| { echo "coverage dropped below the recorded baseline"; exit 1; }

clean:
	$(GO) clean ./...
