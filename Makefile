GO ?= go

.PHONY: build test lint serve race clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

lint:
	$(GO) vet ./...
	gofmt -l .

serve: ## run the analysis daemon on :8080
	$(GO) run ./cmd/mahjongd -addr=:8080

clean:
	$(GO) clean ./...
