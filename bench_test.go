// Root benchmarks: one testing.B target per table and figure of the
// paper's evaluation, plus ablation benches for the design choices
// called out in DESIGN.md. Run everything with:
//
//	go test -bench=. -benchmem
//
// Naming follows the experiment index in DESIGN.md:
//
//	BenchmarkPreAnalysis      §6.1.1 pipeline cost (per program)
//	BenchmarkFig8             object-count reduction (per program)
//	BenchmarkFig9             equivalence-class histogram (checkstyle)
//	BenchmarkTable1           sample equivalence classes (checkstyle)
//	BenchmarkMotivationPmd    §2.1: 3obj vs T-3obj vs M-3obj on pmd
//	BenchmarkTable2           main grid (per program × analysis × heap)
//	BenchmarkAblation*        §5 optimizations and §3.6.2 choices
package mahjong_test

import (
	"testing"
	"time"

	"mahjong"
	"mahjong/internal/bench"
	"mahjong/internal/core"
	"mahjong/internal/fpg"
	"mahjong/internal/pta"
	"mahjong/internal/synth"
)

// smallPrograms keeps per-iteration benches affordable; the full grid
// uses every program.
var smallPrograms = []string{"luindex", "lusearch", "antlr", "fop"}

// prepared caches pipeline results across benchmarks.
var prepared = map[string]*bench.Program{}

func prepare(b *testing.B, name string) *bench.Program {
	b.Helper()
	if p, ok := prepared[name]; ok {
		return p
	}
	p, err := bench.Prepare(name)
	if err != nil {
		b.Fatal(err)
	}
	prepared[name] = p
	return p
}

// BenchmarkPreAnalysis measures the full §6.1.1 pre-analysis pipeline
// (ci Andersen + FPG + Mahjong heap modeling) per program, through the
// same bench.Pipeline helper the harness uses — the pipeline is defined
// once, not re-inlined here.
func BenchmarkPreAnalysis(b *testing.B) {
	for _, name := range synth.ProfileNames() {
		prof, err := synth.ProfileByName(name)
		if err != nil {
			b.Fatal(err)
		}
		prog := synth.MustGenerate(prof)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := bench.Pipeline(prog)
				if err != nil {
					b.Fatal(err)
				}
				if r.Mahjong.NumMerged == 0 {
					b.Fatal("no objects")
				}
			}
		})
	}
}

// BenchmarkPreAnalysisParallel times the context-insensitive solve
// sequentially and with the sharded parallel engine (GOMAXPROCS workers
// + class-contiguous renumbering) in the same iteration, and reports
// their wall-clock ratio as "parallel-speedup". Values below 1 are
// expected on single-CPU machines — phases then add coordination
// without adding parallelism — which is why the CI floor on this metric
// is gated on GOMAXPROCS >= 2 (TestParallelSpeedupSmoke).
func BenchmarkPreAnalysisParallel(b *testing.B) {
	for _, name := range []string{"eclipse", "chart"} {
		prof, err := synth.ProfileByName(name)
		if err != nil {
			b.Fatal(err)
		}
		prog := synth.MustGenerate(prof)
		b.Run(name, func(b *testing.B) {
			var seqNS, parNS int64
			for i := 0; i < b.N; i++ {
				t0 := time.Now()
				if _, err := pta.Solve(prog, pta.Options{}); err != nil {
					b.Fatal(err)
				}
				seqNS += time.Since(t0).Nanoseconds()
				t1 := time.Now()
				if _, err := pta.Solve(prog, pta.Options{Parallel: -1, Renumber: true}); err != nil {
					b.Fatal(err)
				}
				parNS += time.Since(t1).Nanoseconds()
			}
			b.ReportMetric(float64(seqNS)/float64(parNS), "parallel-speedup")
		})
	}
}

// BenchmarkFig8 measures heap modeling alone and reports the Figure 8
// statistic (object reduction) per program.
func BenchmarkFig8(b *testing.B) {
	for _, name := range synth.ProfileNames() {
		p := prepare(b, name)
		b.Run(name, func(b *testing.B) {
			var res *core.Result
			for i := 0; i < b.N; i++ {
				res = core.Build(p.Graph, core.Options{})
			}
			b.ReportMetric(float64(res.NumObjects), "objs/alloc-site")
			b.ReportMetric(float64(res.NumMerged), "objs/mahjong")
			b.ReportMetric(res.Reduction()*100, "reduction%")
		})
	}
}

// BenchmarkFig9 regenerates the checkstyle equivalence-class size
// histogram and reports its extremes.
func BenchmarkFig9(b *testing.B) {
	p := prepare(b, "checkstyle")
	var hist [][2]int
	for i := 0; i < b.N; i++ {
		hist = core.Build(p.Graph, core.Options{}).SizeHistogram()
	}
	if len(hist) == 0 {
		b.Fatal("empty histogram")
	}
	b.ReportMetric(float64(hist[0][1]), "singleton-classes")
	b.ReportMetric(float64(hist[len(hist)-1][0]), "largest-class")
}

// BenchmarkTable1 regenerates the checkstyle sample-class table.
func BenchmarkTable1(b *testing.B) {
	p := prepare(b, "checkstyle")
	for i := 0; i < b.N; i++ {
		res := core.Build(p.Graph, core.Options{})
		if len(res.Classes) == 0 || res.Classes[0].Size() < 2 {
			b.Fatal("expected a large merged class at rank 1")
		}
	}
}

// BenchmarkMotivationPmd reproduces §2.1: pmd under 3obj with the
// allocation-site, allocation-type and Mahjong abstractions.
func BenchmarkMotivationPmd(b *testing.B) {
	p := prepare(b, "pmd")
	a3, err := bench.AnalysisByName("3obj")
	if err != nil {
		b.Fatal(err)
	}
	for _, heap := range []bench.HeapKind{bench.HeapAllocSite, bench.HeapAllocType, bench.HeapMahjong} {
		b.Run(string(heap), func(b *testing.B) {
			var c bench.Cell
			for i := 0; i < b.N; i++ {
				c = p.RunCell(a3, heap, 1<<40) // uncapped, as in the paper's pmd numbers
			}
			b.ReportMetric(float64(c.Metrics.CallGraphEdges), "call-edges")
			b.ReportMetric(float64(c.Work), "work")
		})
	}
}

// BenchmarkTable2 runs the main grid on the small tier (every analysis
// finishes) so `go test -bench` stays fast; cmd/experiments produces
// the full 12-program table.
func BenchmarkTable2(b *testing.B) {
	for _, name := range smallPrograms {
		p := prepare(b, name)
		for _, a := range bench.Analyses() {
			for _, heap := range []bench.HeapKind{bench.HeapAllocSite, bench.HeapMahjong} {
				b.Run(name+"/"+a.Name+"/"+string(heap), func(b *testing.B) {
					var c bench.Cell
					for i := 0; i < b.N; i++ {
						c = p.RunCell(a, heap, 0)
					}
					if !c.Scalable {
						b.Fatalf("%s/%s/%s not scalable", name, a.Name, heap)
					}
					b.ReportMetric(float64(c.Work), "work")
					b.ReportMetric(float64(c.Metrics.CallGraphEdges), "call-edges")
				})
			}
		}
	}
}

// BenchmarkAblationSharedAutomata compares heap modeling with and
// without the §5 shared-automata optimization.
func BenchmarkAblationSharedAutomata(b *testing.B) {
	p := prepare(b, "luindex")
	for _, cfg := range []struct {
		name    string
		disable bool
	}{{"shared", false}, {"unshared", true}} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.Build(p.Graph, core.Options{DisableSharing: cfg.disable})
			}
		})
	}
}

// BenchmarkAblationParallelism compares 1..8 merge workers (§5
// synchronization-free parallel type-consistency checks).
func BenchmarkAblationParallelism(b *testing.B) {
	p := prepare(b, "eclipse") // largest merge load
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(string(rune('0'+workers))+"workers", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.Build(p.Graph, core.Options{Workers: workers})
			}
		})
	}
}

// BenchmarkAblationRepresentative compares the representative policies
// of §3.6.2/Example 3.2 under M-2type.
func BenchmarkAblationRepresentative(b *testing.B) {
	prog, err := mahjong.GenerateBenchmark("checkstyle")
	if err != nil {
		b.Fatal(err)
	}
	for _, cfg := range []struct {
		name    string
		diverse bool
	}{{"first", false}, {"type-diverse", true}} {
		b.Run(cfg.name, func(b *testing.B) {
			var edges int
			for i := 0; i < b.N; i++ {
				abs, err := mahjong.BuildAbstraction(prog, mahjong.AbstractionOptions{TypeDiverseReps: cfg.diverse})
				if err != nil {
					b.Fatal(err)
				}
				rep, err := mahjong.Analyze(prog, mahjong.Config{
					Analysis: "2type", Heap: mahjong.HeapMahjong, Abstraction: abs,
				})
				if err != nil {
					b.Fatal(err)
				}
				edges = rep.Metrics.CallGraphEdges
			}
			b.ReportMetric(float64(edges), "call-edges")
		})
	}
}

// BenchmarkAblationNullNode compares heap modeling with and without the
// null node in the FPG (Example 3.1 / Table 1 row 6).
func BenchmarkAblationNullNode(b *testing.B) {
	p := prepare(b, "checkstyle")
	for _, cfg := range []struct {
		name string
		omit bool
	}{{"with-null", false}, {"omit-null", true}} {
		g := fpg.Build(p.Pre, fpg.Options{OmitNullNode: cfg.omit})
		b.Run(cfg.name, func(b *testing.B) {
			var merged int
			for i := 0; i < b.N; i++ {
				merged = core.Build(g, core.Options{}).NumMerged
			}
			b.ReportMetric(float64(merged), "merged-objects")
		})
	}
}
