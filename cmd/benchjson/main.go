// Command benchjson converts `go test -bench` output on stdin into a
// JSON document keyed by benchmark name, for checking performance
// numbers into the repository (see `make bench-save`):
//
//	go test -run '^$' -bench PreAnalysis -benchtime=1x -benchmem . | benchjson -o BENCH_solver.json
//
// Each entry records ns/op and, when -benchmem was given, B/op and
// allocs/op; any other "<value> <unit>" pair — the b.ReportMetric
// custom units like the incremental benchmark's "speedup" — lands in a
// "metrics" map keyed by unit. Non-benchmark lines are ignored, so the
// full `go test` output can be piped in unfiltered.
//
// When the same benchmark appears more than once (go test -count=N),
// the entry with the LOWEST ns/op wins: the minimum is the standard
// noise-robust statistic for checked-in numbers, since scheduling and
// cache interference only ever add time, never subtract it.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Entry is one benchmark result.
type Entry struct {
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_op"`
	BytesPerOp  int64   `json:"b_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_op,omitempty"`
	// Metrics holds b.ReportMetric values by their custom unit.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	results := map[string]Entry{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		name, e, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		// min-of-N across -count repetitions: keep the fastest sample.
		if old, seen := results[name]; seen && old.NsPerOp <= e.NsPerOp {
			continue
		}
		results[name] = e
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}

	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
}

// parseLine extracts one benchmark result from a line of `go test`
// output. The format is
//
//	Benchmark<Name>[-P]  <iters>  <ns> ns/op  [<bytes> B/op  <allocs> allocs/op]
//
// with arbitrary extra "<value> <unit>" pairs permitted.
func parseLine(line string) (string, Entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", Entry{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	// Strip the -GOMAXPROCS suffix.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", Entry{}, false
	}
	e := Entry{Iterations: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", Entry{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			e.NsPerOp = v
			seen = true
		case "B/op":
			e.BytesPerOp = int64(v)
		case "allocs/op":
			e.AllocsPerOp = int64(v)
		default:
			if e.Metrics == nil {
				e.Metrics = map[string]float64{}
			}
			e.Metrics[fields[i+1]] = v
		}
	}
	return name, e, seen
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
