// Command experiments regenerates every table and figure of the paper's
// evaluation (§6) from the synthetic benchmark suite:
//
//	experiments                  # everything
//	experiments -only=table2     # one artifact: motivation, table1,
//	                             # table2, fig8, fig9, prestats
//	experiments -programs=pmd,luindex -budget=200000
//
// Output goes to stdout; see EXPERIMENTS.md for the recorded results
// and the comparison against the paper's numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mahjong/internal/bench"
)

func main() {
	only := flag.String("only", "", "artifact to produce: motivation|table1|table2|fig8|fig9|prestats|chacmp (default: all)")
	programs := flag.String("programs", "", "comma-separated benchmark subset (default: all 12)")
	budget := flag.Int64("budget", bench.DefaultBudget, "work budget per analysis cell")
	flag.Parse()

	s := bench.NewSuite()
	s.Budget = *budget
	if *programs != "" {
		s.Programs = strings.Split(*programs, ",")
	}

	run := func(name string, fn func() error) {
		if *only != "" && *only != name {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	w := os.Stdout
	run("prestats", func() error { return s.PreStats(w) })
	run("fig8", func() error { return s.Fig8(w) })
	run("fig9", func() error { return s.Fig9(w, "checkstyle") })
	run("table1", func() error { return s.Table1(w, "checkstyle", 8) })
	run("motivation", func() error { return s.Motivation(w) })
	run("table2", func() error { return s.Table2(w) })
	run("chacmp", func() error { return s.CHAComparison(w) })
}
