// Command mahjong analyzes a program in the textual IR format:
//
//	mahjong -in=app.ir -analysis=2obj -heap=mahjong
//	mahjong -benchmark=pmd -analysis=3obj -heap=alloc-site -budget=1000000
//
// It builds the Mahjong heap abstraction (when -heap=mahjong), runs the
// requested points-to analysis, and prints the heap-abstraction and
// client statistics.
//
// Exit codes: 0 on success, 1 on misuse or analysis errors, and 3 when
// the run was stopped by resource exhaustion — a -budget overrun, an
// unscalable configuration, or a -timeout expiry. (2 is taken by the
// flag package for command-line parse errors.)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"mahjong"
	"mahjong/internal/export"
)

const (
	exitFailure   = 1 // misuse, I/O errors, analysis misconfiguration
	exitExhausted = 3 // budget or timeout exhaustion; 2 is flag's parse-error exit
)

func main() {
	in := flag.String("in", "", "input program (textual IR)")
	benchName := flag.String("benchmark", "", "analyze a built-in benchmark instead of -in (e.g. pmd)")
	analysis := flag.String("analysis", "ci", "analysis: ci, 2cs, 2type, 3type, 2obj, 3obj, or any k prefix")
	heap := flag.String("heap", "mahjong", "heap abstraction: alloc-site, alloc-type, mahjong")
	budget := flag.Int64("budget", 0, "work budget (0 = unlimited)")
	budgetFacts := flag.Int64("budget-facts", 0, "resource budget: propagated points-to facts (0 = unlimited)")
	budgetWords := flag.Int64("budget-words", 0, "resource budget: live points-to bitset words (0 = unlimited)")
	budgetPairs := flag.Int64("budget-pairs", 0, "resource budget: automata merge pairs (0 = unlimited)")
	degrade := flag.Bool("degrade", false, "fall back to -heap=alloc-site when building the Mahjong abstraction fails or exhausts its resource budget")
	workers := flag.Int("workers", 0, "parallel merge workers (0 = GOMAXPROCS)")
	parallel := flag.Int("parallel", 0, "parallel solver workers: 0 or 1 = sequential, N>=2 = N workers, -1 = GOMAXPROCS")
	renumber := flag.Bool("renumber", false, "renumber objects contiguously by class for word-range type filtering")
	verbose := flag.Bool("v", false, "print per-class merge details")
	cgOut := flag.String("callgraph", "", "write the call graph to this file (.dot or .json by extension)")
	saveAbs := flag.String("save-abstraction", "", "write the built Mahjong abstraction to this JSON file")
	loadAbs := flag.String("load-abstraction", "", "reuse a previously saved abstraction instead of rebuilding it")
	timeout := flag.Duration("timeout", 0, "wall-clock deadline for the whole run, e.g. 30s (0 = none)")
	stats := flag.Bool("stats", false, "print solver performance counters after the analysis")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	traceOut := flag.String("trace", "", "write a JSON span trace of the pipeline to this file (docs/OBSERVABILITY.md)")
	version := flag.Bool("version", false, "print the version and exit")
	flag.Parse()

	if *version {
		fmt.Println("mahjong", mahjong.Version)
		return
	}

	// The trace is written on every exit path — fail() and the
	// exhaustion exit call flushTrace explicitly because os.Exit skips
	// defers; the deferred call covers the normal return.
	var tctx mahjong.TraceCtx
	if *traceOut != "" {
		tracer := mahjong.NewTracer()
		tctx = tracer.Root()
		out := *traceOut
		traceSink = func() {
			if err := writeTrace(out, tracer); err != nil {
				fmt.Fprintln(os.Stderr, "mahjong: writing trace:", err)
			}
		}
		defer flushTrace()
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			runtime.GC() // flush recently-freed objects out of the profile
			if err := pprof.WriteHeapProfile(f); err != nil {
				fail(err)
			}
		}()
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	prog, err := load(*in, *benchName)
	if err != nil {
		fail(err)
	}
	st := prog.Stats()
	fmt.Printf("program: %d classes, %d methods, %d statements, %d allocation sites\n",
		st.Classes, st.Methods, st.Stmts, st.AllocSites)

	resources := mahjong.ResourceBudget{
		Facts:       *budgetFacts,
		BitsetWords: *budgetWords,
		MergePairs:  *budgetPairs,
	}
	cfg := mahjong.Config{
		Analysis:      *analysis,
		Heap:          mahjong.HeapKind(*heap),
		BudgetWork:    *budget,
		Resources:     resources,
		Trace:         tctx,
		SolverWorkers: *parallel,
		Renumber:      *renumber,
	}
	if cfg.Heap == mahjong.HeapMahjong {
		abs, err := obtainAbstraction(ctx, prog, *loadAbs, *workers, *parallel, *renumber, resources, tctx)
		switch {
		case err == nil:
			cfg.Abstraction = abs
		case *degrade && degradable(err):
			// Graceful degradation: the alloc-site abstraction is the
			// sound baseline, merely less compact — keep going on it.
			fmt.Fprintf(os.Stderr, "mahjong: abstraction failed (%v); degrading to -heap=alloc-site\n", err)
			cfg.Heap = mahjong.HeapAllocSite
		default:
			fail(err)
		}
	}
	if cfg.Heap == mahjong.HeapMahjong {
		abs := cfg.Abstraction
		if *saveAbs != "" {
			if err := saveAbstraction(*saveAbs, abs); err != nil {
				fail(err)
			}
			fmt.Println("abstraction written to", *saveAbs)
		}
		fmt.Printf("mahjong: %d objects -> %d merged objects (%.0f%% reduction)\n",
			abs.Objects, abs.MergedObjects, abs.Reduction()*100)
		fmt.Printf("mahjong: pre-analysis %v, FPG %v, heap modeling %v\n",
			abs.PreTime.Round(1e5), abs.FPGTime.Round(1e5), abs.ModelTime.Round(1e5))
		if *verbose {
			for _, sc := range abs.SizeHistogram() {
				fmt.Printf("  class size %4d: %d classes\n", sc[0], sc[1])
			}
		}
	}

	rep, err := mahjong.AnalyzeContext(ctx, prog, cfg)
	if err != nil {
		fail(err)
	}
	if !rep.Scalable {
		fmt.Printf("%s/%s: UNSCALABLE within budget (%d work units)\n", *analysis, cfg.Heap, rep.Work)
		if *stats {
			printSolverStats(rep)
		}
		flushTrace()
		os.Exit(exitExhausted)
	}
	fmt.Printf("%s/%s: %v, %d work units, %d cs-objects, %d cs-methods\n",
		*analysis, cfg.Heap, rep.Time.Round(1e5), rep.Work, rep.CSObjects, rep.CSMethods)
	fmt.Printf("clients: %d call-graph edges, %d poly call sites, %d may-fail casts, %d reachable methods\n",
		rep.Metrics.CallGraphEdges, rep.Metrics.PolyCallSites, rep.Metrics.MayFailCasts, rep.Metrics.Reachable)
	fmt.Printf("clients: %d escaping / %d stackable sites, %d may-null loads, %d/%d tainted sinks\n",
		rep.Metrics.EscapingSites, rep.Metrics.StackAllocSites, rep.Metrics.MayNullLoads,
		rep.Metrics.TaintedSinks, rep.Metrics.TaintSinks)
	if *stats {
		printSolverStats(rep)
	}

	if *cgOut != "" {
		if err := writeCallGraph(*cgOut, rep); err != nil {
			fail(err)
		}
		fmt.Println("call graph written to", *cgOut)
	}
}

// printSolverStats dumps the solver's internal performance counters
// (-stats).
func printSolverStats(rep *mahjong.Report) {
	s := rep.Solver
	fmt.Printf("solver: %d nodes, %d edges (%d copy), worklist peak %d\n",
		s.Nodes, s.Edges, s.CopyEdges, s.WorklistPeak)
	fmt.Printf("solver: %d propagated facts, %d copy cycles collapsed (%d nodes folded, %d passes)\n",
		s.PropagatedBits, s.CollapsedSCCs, s.CollapsedNodes, s.SCCPasses)
	fmt.Printf("solver: %d filter masks built, %d mask-filtered propagations\n",
		s.FilterMasks, s.FilterMaskHits)
	if s.RangeFilterHits > 0 {
		fmt.Printf("solver: %d range-filtered propagations (%d tail objects)\n",
			s.RangeFilterHits, s.TailObjects)
	}
	if s.ShardWorkers > 0 {
		fmt.Printf("solver: %d shard workers, %d parallel phases, %d cross-shard deltas, %d termination epochs\n",
			s.ShardWorkers, s.ShardPhases, s.CrossShardDeltas, s.TerminationEpochs)
	}
}

// writeCallGraph exports the call graph in the format implied by the
// file extension (.json for JSON, anything else for DOT).
func writeCallGraph(path string, rep *mahjong.Report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if len(path) > 5 && path[len(path)-5:] == ".json" {
		return export.CallGraphJSON(f, rep.Result())
	}
	return export.CallGraphDOT(f, rep.Result())
}

// degradable reports whether err is answered by falling back to the
// allocation-site abstraction: an internal (panic-recovered) pipeline
// error or resource-budget exhaustion. Deadline and cancellation
// errors are not — the run is out of time either way.
func degradable(err error) bool {
	var ie *mahjong.InternalError
	if errors.As(err, &ie) {
		return true
	}
	return errors.Is(err, mahjong.ErrBudgetExhausted)
}

// obtainAbstraction loads a persisted abstraction when a path is given,
// otherwise builds one from scratch.
func obtainAbstraction(ctx context.Context, prog *mahjong.Program, loadPath string, workers, solverWorkers int, renumber bool, resources mahjong.ResourceBudget, tctx mahjong.TraceCtx) (*mahjong.Abstraction, error) {
	if loadPath == "" {
		return mahjong.BuildAbstractionContext(ctx, prog, mahjong.AbstractionOptions{
			Workers:       workers,
			SolverWorkers: solverWorkers,
			Renumber:      renumber,
			Resources:     resources,
			Trace:         tctx,
		})
	}
	f, err := os.Open(loadPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return mahjong.LoadAbstraction(f, prog)
}

func saveAbstraction(path string, abs *mahjong.Abstraction) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return abs.Save(f)
}

func load(in, benchName string) (*mahjong.Program, error) {
	switch {
	case in != "" && benchName != "":
		return nil, fmt.Errorf("use either -in or -benchmark, not both")
	case in != "":
		return mahjong.LoadProgram(in)
	case benchName != "":
		return mahjong.GenerateBenchmark(benchName)
	default:
		return nil, fmt.Errorf("missing -in or -benchmark (available: %v)", mahjong.BenchmarkNames())
	}
}

// traceSink, when -trace is set, writes the run's span trace; flushTrace
// runs it at most once so the success defer and the explicit calls on
// os.Exit paths cannot double-write.
var traceSink func()

func flushTrace() {
	if traceSink != nil {
		traceSink()
		traceSink = nil
	}
}

// writeTrace exports the tracer's spans as deterministic JSON.
func writeTrace(path string, tracer *mahjong.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := tracer.Snapshot().WriteJSON(f); err != nil {
		return err
	}
	return f.Close()
}

// fail reports err and exits: code 3 when the error is exhaustion (a
// work- or resource-budget overrun or an expired -timeout deadline),
// 1 otherwise.
func fail(err error) {
	fmt.Fprintln(os.Stderr, "mahjong:", err)
	flushTrace()
	if errors.Is(err, mahjong.ErrBudget) ||
		errors.Is(err, mahjong.ErrBudgetExhausted) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, context.Canceled) {
		os.Exit(exitExhausted)
	}
	os.Exit(exitFailure)
}
