// Command mahjongbench is an open-loop load generator for mahjongd: it
// replays a mixed workload (cold and warm cache submissions,
// incremental base_job_id resubmits, demand queries, mid-flight
// cancellations, fault-injected degraded builds) at several offered
// loads expressed as multiples of the server's measured capacity, and
// reports latency percentiles, throughput and goodput per level.
//
// Unlike a closed-loop driver, arrivals do not wait for completions:
// the offered rate is held regardless of how the server is coping,
// which is what makes overload behavior (admission 429s, deadline
// shedding, batch auto-degradation) observable. Rejected submissions
// retry with jittered exponential backoff honoring Retry-After, like a
// well-behaved client.
//
// Output is `go test -bench` formatted, one line per load level, so it
// pipes straight into benchjson (see `make bench-server-save`):
//
//	mahjongbench -levels 0.5,1,2 -duration 5s | benchjson -o BENCH_server.json
//
// With -slo the run becomes a gate (see `make bench-server`): it exits
// non-zero unless the interactive p99 at the highest level stays under
// -slo-p99, interactive goodput at 2x holds -slo-goodput of its 1x
// value, no accepted job wedges (fails to reach a terminal state), and
// the 2x level actually exhibits overload control (rejections, sheds
// or auto-degrades). By default the daemon runs in-process on a
// loopback listener; -addr points the generator at an external one
// instead (fault injection is then unavailable).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mahjong"
	"mahjong/internal/faultinject"
	"mahjong/internal/server"
)

type config struct {
	addr            string
	levels          []float64
	duration        time.Duration
	calibrate       time.Duration
	workers         int
	queueDepth      int
	autodegradeWait time.Duration
	timeoutMS       int64
	batchTimeoutMS  int64
	programs        []string
	faultEvery      int64
	seed            int64
	slo             bool
	sloP99          time.Duration
	sloGoodput      float64
}

func main() {
	var cfg config
	var levels, programs string
	flag.StringVar(&cfg.addr, "addr", "", "base URL of a running mahjongd (empty = run one in-process)")
	flag.StringVar(&levels, "levels", "0.5,1,2", "offered-load multiples of measured capacity, comma-separated")
	flag.DurationVar(&cfg.duration, "duration", 5*time.Second, "measured window per load level")
	flag.DurationVar(&cfg.calibrate, "calibrate", 2*time.Second, "closed-loop capacity calibration window")
	flag.IntVar(&cfg.workers, "workers", 2, "in-process server worker-pool size")
	flag.IntVar(&cfg.queueDepth, "queue-depth", 16, "in-process server queue depth")
	flag.DurationVar(&cfg.autodegradeWait, "autodegrade-wait", 250*time.Millisecond, "in-process server batch auto-degrade threshold")
	flag.Int64Var(&cfg.timeoutMS, "timeout-ms", 10_000, "interactive/incremental job deadline")
	flag.Int64Var(&cfg.batchTimeoutMS, "batch-timeout-ms", 2_000, "batch job deadline (short, so overload sheds are visible)")
	flag.StringVar(&programs, "programs", "luindex,pmd", "benchmark programs to cycle (first submission per level is a cold build, later ones hit the cache)")
	flag.Int64Var(&cfg.faultEvery, "fault-every", 50, "fail every Nth heap-model build to exercise the degraded path (0 = off; in-process only)")
	flag.Int64Var(&cfg.seed, "seed", 1, "rng seed for arrivals, mix and jitter")
	flag.BoolVar(&cfg.slo, "slo", false, "gate mode: exit 1 when the SLOs below are violated")
	flag.DurationVar(&cfg.sloP99, "slo-p99", 5*time.Second, "SLO: interactive p99 latency bound at the highest level")
	flag.Float64Var(&cfg.sloGoodput, "slo-goodput", 0.8, "SLO: interactive goodput at 2x must hold this fraction of its 1x value")
	flag.Parse()

	for _, f := range strings.Split(levels, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || v <= 0 {
			fatalf("bad -levels entry %q", f)
		}
		cfg.levels = append(cfg.levels, v)
	}
	cfg.programs = strings.Split(programs, ",")
	for _, p := range cfg.programs {
		if _, err := mahjong.GenerateBenchmark(p); err != nil {
			fatalf("bad -programs entry %q: %v", p, err)
		}
	}

	log.SetFlags(0)
	log.SetPrefix("mahjongbench: ")

	if cfg.addr == "" && cfg.faultEvery > 0 {
		var n atomic.Int64
		faultinject.Set(faultinject.OnStage(faultinject.StageModel, func(string) error {
			if n.Add(1)%cfg.faultEvery == 0 {
				return fmt.Errorf("injected heap-model fault (mahjongbench -fault-every)")
			}
			return nil
		}))
		defer faultinject.Clear()
	}

	capacity := calibrate(cfg)
	log.Printf("calibrated capacity ≈ %.1f jobs/s (closed loop, %v window)", capacity, cfg.calibrate)

	stats := map[float64]*levelStats{}
	for _, mult := range cfg.levels {
		st := runLevel(cfg, mult, capacity)
		stats[mult] = st
		fmt.Println(st.benchLine(mult))
	}
	if cfg.slo {
		if msgs := checkSLOs(cfg, stats); len(msgs) > 0 {
			for _, m := range msgs {
				log.Printf("SLO VIOLATION: %s", m)
			}
			os.Exit(1)
		}
		log.Printf("all SLOs held")
	}
}

// target is one server under test: a base URL plus, for in-process
// runs, the Server to close afterwards.
type target struct {
	url   string
	srv   *server.Server
	hsrv  *http.Server
	lis   net.Listener
	owned bool
}

func start(cfg config) target {
	if cfg.addr != "" {
		return target{url: strings.TrimRight(cfg.addr, "/")}
	}
	srv := server.New(server.Config{
		Workers:         cfg.workers,
		QueueDepth:      cfg.queueDepth,
		AutodegradeWait: cfg.autodegradeWait,
	})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatalf("listen: %v", err)
	}
	hsrv := &http.Server{Handler: srv}
	go hsrv.Serve(lis) //nolint:errcheck // closed via Close below
	return target{url: "http://" + lis.Addr().String(), srv: srv, hsrv: hsrv, lis: lis, owned: true}
}

func (tg target) stop() {
	if !tg.owned {
		return
	}
	tg.hsrv.Close() //nolint:errcheck // listener teardown
	tg.srv.Close()
}

// calibrate measures sustainable throughput with a closed loop: one
// submitting goroutine per worker plus slack, each waiting for its job
// to finish before sending the next.
func calibrate(cfg config) float64 {
	tg := start(cfg)
	defer tg.stop()
	var completed atomic.Int64
	stop := time.Now().Add(cfg.calibrate)
	var wg sync.WaitGroup
	for i := 0; i < cfg.workers*2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + int64(i)))
			for time.Now().Before(stop) {
				id, status := submitOnce(tg.url, spec(cfg, rng, "", ""))
				if status != http.StatusAccepted {
					continue
				}
				if v, ok := await(tg.url, id, 30*time.Second); ok && v.State == "done" {
					completed.Add(1)
				}
			}
		}(i)
	}
	wg.Wait()
	cap := float64(completed.Load()) / cfg.calibrate.Seconds()
	if cap < 1 {
		cap = 1
	}
	return cap
}

// levelStats aggregates one offered-load level.
type levelStats struct {
	mu        sync.Mutex
	latencies []time.Duration // submit→done, completed jobs only
	iLat      []time.Duration // interactive subset
	completed int
	iDone     int // interactive completions
	rejected  int // gave up after retries
	cancelled int // our own mid-flight cancels
	failed    int
	wedged    int // accepted but never terminal
	offered   int
	window    time.Duration
	delta     server.MetricsSnapshot // end-start counters
}

func runLevel(cfg config, mult, capacity float64) *levelStats {
	tg := start(cfg)
	defer tg.stop()
	rate := mult * capacity
	st := &levelStats{window: cfg.duration}
	base := snapshot(tg.url)

	rng := rand.New(rand.NewSource(cfg.seed*1000 + int64(mult*100)))
	// completedIDs feeds base_job_id resubmits; bounded, newest wins.
	var idMu sync.Mutex
	var completedIDs []string

	var wg sync.WaitGroup
	end := time.Now().Add(cfg.duration)
	for now := time.Now(); now.Before(end); {
		// Open loop: exponential inter-arrival at the offered rate; the
		// sample's fate never delays the next arrival.
		sleep := time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
		time.Sleep(sleep)
		now = time.Now()
		if !now.Before(end) {
			break
		}
		st.mu.Lock()
		st.offered++
		st.mu.Unlock()
		op := rng.Float64()
		opSeed := rng.Int63()
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opSeed))
			var baseID string
			if op >= 0.85 && op < 0.95 { // incremental resubmit when a base exists
				idMu.Lock()
				if len(completedIDs) > 0 {
					baseID = completedIDs[rng.Intn(len(completedIDs))]
				}
				idMu.Unlock()
			}
			class := ""
			switch {
			case op < 0.25:
				class = "batch"
			case baseID != "":
				class = "incremental"
			}
			s := spec(cfg, rng, class, baseID)
			start := time.Now()
			id, status := submitBackoff(tg.url, s, rng, end.Add(2*time.Second))
			if status != http.StatusAccepted {
				st.mu.Lock()
				st.rejected++
				st.mu.Unlock()
				return
			}
			if op >= 0.95 { // mid-flight cancellation
				time.Sleep(time.Duration(5+rng.Intn(25)) * time.Millisecond)
				post(tg.url+"/jobs/"+id+"/cancel", nil) //nolint:errcheck // racing completion is fine
			}
			deadline := time.Duration(s.TimeoutMS)*time.Millisecond + 10*time.Second
			v, ok := await(tg.url, id, deadline)
			st.mu.Lock()
			defer st.mu.Unlock()
			switch {
			case !ok:
				st.wedged++
			case v.State == "done":
				lat := time.Since(start)
				st.completed++
				st.latencies = append(st.latencies, lat)
				if class == "" {
					st.iDone++
					st.iLat = append(st.iLat, lat)
				}
				idMu.Lock()
				if len(completedIDs) < 64 {
					completedIDs = append(completedIDs, id)
				}
				idMu.Unlock()
				if op >= 0.75 && op < 0.85 { // demand query against the finished job
					go post(tg.url+"/jobs/"+id+"/query", map[string]any{"var": "Main.main/0#this"}) //nolint:errcheck // load only
				}
			case v.State == "cancelled" && op >= 0.95:
				st.cancelled++
			case v.State == "cancelled":
				st.failed++ // shed or deadline-cancelled under load
			default:
				st.failed++
			}
		}()
	}
	wg.Wait()
	st.delta = diff(snapshot(tg.url), base)
	if acct := st.completed + st.cancelled + st.failed + st.wedged + st.rejected; acct != st.offered {
		log.Printf("x%g: accounting mismatch: %d of %d offered jobs unaccounted", mult, st.offered-acct, st.offered)
	}
	return st
}

// spec builds one submission. Interactive and incremental jobs run the
// cheap context-insensitive analysis with a long deadline; batch jobs
// run 2obj with a short one, so overload turns into visible shedding
// and auto-degradation rather than silent queueing.
func spec(cfg config, rng *rand.Rand, class, baseID string) server.JobSpec {
	s := server.JobSpec{
		Benchmark: cfg.programs[rng.Intn(len(cfg.programs))],
		Analysis:  "ci",
		Class:     class,
		TimeoutMS: cfg.timeoutMS,
	}
	if class == "batch" {
		s.Analysis = "2obj"
		s.TimeoutMS = cfg.batchTimeoutMS
	}
	if baseID != "" {
		s.BaseJobID = baseID
	}
	return s
}

// submitBackoff submits with jittered exponential backoff on 429/503,
// honoring Retry-After, giving up at the hard stop.
func submitBackoff(url string, s server.JobSpec, rng *rand.Rand, stop time.Time) (string, int) {
	backoff := 50 * time.Millisecond
	for {
		id, status := submitOnce(url, s)
		if status != http.StatusTooManyRequests && status != http.StatusServiceUnavailable {
			return id, status
		}
		wait := backoff
		if ra := lastRetryAfter.Load(); ra > int64(wait/time.Second) {
			wait = time.Duration(ra) * time.Second
		}
		wait += time.Duration(rng.Int63n(int64(wait)/2 + 1)) // +0–50% jitter
		if time.Now().Add(wait).After(stop) {
			return "", status
		}
		time.Sleep(wait)
		backoff *= 2
	}
}

// lastRetryAfter carries the most recent Retry-After seconds seen by
// submitOnce; per-call plumbing isn't worth it for a load generator.
var lastRetryAfter atomic.Int64

func submitOnce(url string, s server.JobSpec) (string, int) {
	resp, data, err := postRaw(url+"/jobs", s)
	if err != nil {
		return "", 0
	}
	if ra, err := strconv.ParseInt(resp.Header.Get("Retry-After"), 10, 64); err == nil {
		lastRetryAfter.Store(ra)
	}
	if resp.StatusCode != http.StatusAccepted {
		return "", resp.StatusCode
	}
	var v struct {
		ID string `json:"id"`
	}
	if json.Unmarshal(data, &v) != nil {
		return "", resp.StatusCode
	}
	return v.ID, resp.StatusCode
}

type jobView struct {
	State string `json:"state"`
}

// await polls a job to a terminal state.
func await(url, id string, timeout time.Duration) (jobView, bool) {
	stop := time.Now().Add(timeout)
	for time.Now().Before(stop) {
		resp, err := http.Get(url + "/jobs/" + id)
		if err != nil {
			return jobView{}, false
		}
		var v jobView
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err == nil {
			switch v.State {
			case "done", "failed", "cancelled":
				return v, true
			}
		}
		time.Sleep(4 * time.Millisecond)
	}
	return jobView{}, false
}

func snapshot(url string) server.MetricsSnapshot {
	var snap server.MetricsSnapshot
	resp, err := http.Get(url + "/metrics?format=json")
	if err != nil {
		return snap
	}
	defer resp.Body.Close()
	json.NewDecoder(resp.Body).Decode(&snap) //nolint:errcheck // zero snapshot on error
	return snap
}

// diff subtracts the monotone counters this report uses.
func diff(a, b server.MetricsSnapshot) server.MetricsSnapshot {
	a.JobsRejected -= b.JobsRejected
	a.JobsRejectedFull -= b.JobsRejectedFull
	a.JobsRejectedWait -= b.JobsRejectedWait
	a.JobsShed -= b.JobsShed
	a.JobsAutodegraded -= b.JobsAutodegraded
	a.JobsDegraded -= b.JobsDegraded
	a.JobsSubmitted -= b.JobsSubmitted
	a.JobsCompleted -= b.JobsCompleted
	return a
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// benchLine renders one level as a `go test -bench` result line that
// cmd/benchjson parses: iterations + ns/op, then custom-unit pairs.
func (st *levelStats) benchLine(mult float64) string {
	sort.Slice(st.latencies, func(i, j int) bool { return st.latencies[i] < st.latencies[j] })
	sort.Slice(st.iLat, func(i, j int) bool { return st.iLat[i] < st.iLat[j] })
	var mean time.Duration
	for _, l := range st.latencies {
		mean += l
	}
	iters := st.completed
	if iters > 0 {
		mean /= time.Duration(iters)
	} else {
		iters = 1
	}
	secs := st.window.Seconds()
	return fmt.Sprintf("BenchmarkServerLoad/x%g %d %d ns/op "+
		"%d p50-ns %d p95-ns %d p99-ns "+
		"%.2f jobs/s %.2f goodput-jobs/s %.2f interactive-goodput-jobs/s "+
		"%d offered %d rejected %d shed %d autodegraded %d degraded %d cancelled %d failed %d wedged",
		mult, iters, mean.Nanoseconds(),
		percentile(st.latencies, 0.50).Nanoseconds(),
		percentile(st.latencies, 0.95).Nanoseconds(),
		percentile(st.latencies, 0.99).Nanoseconds(),
		float64(st.offered)/secs, float64(st.completed)/secs, float64(st.iDone)/secs,
		st.offered, st.rejected, st.delta.JobsShed, st.delta.JobsAutodegraded,
		st.delta.JobsDegraded, st.cancelled, st.failed, st.wedged)
}

// checkSLOs evaluates the gate over the collected levels.
func checkSLOs(cfg config, stats map[float64]*levelStats) []string {
	var msgs []string
	var hi float64
	for m := range stats {
		if m > hi {
			hi = m
		}
	}
	for m, st := range stats {
		if st.wedged > 0 {
			msgs = append(msgs, fmt.Sprintf("x%g: %d accepted jobs never reached a terminal state", m, st.wedged))
		}
	}
	top := stats[hi]
	sort.Slice(top.iLat, func(i, j int) bool { return top.iLat[i] < top.iLat[j] })
	if p99 := percentile(top.iLat, 0.99); p99 > cfg.sloP99 {
		msgs = append(msgs, fmt.Sprintf("x%g: interactive p99 %v above the %v bound", hi, p99, cfg.sloP99))
	}
	one, two := stats[1], stats[2]
	if one != nil && two != nil {
		g1 := float64(one.iDone) / one.window.Seconds()
		g2 := float64(two.iDone) / two.window.Seconds()
		if g1 > 0 && g2 < cfg.sloGoodput*g1 {
			msgs = append(msgs, fmt.Sprintf("interactive goodput at 2x (%.2f/s) below %.0f%% of 1x (%.2f/s)",
				g2, cfg.sloGoodput*100, g1))
		}
		if two.delta.JobsRejected+two.delta.JobsShed+two.delta.JobsAutodegraded == 0 {
			msgs = append(msgs, "2x overload produced no rejections, sheds or auto-degrades — overload control never engaged")
		}
	}
	return msgs
}

func post(url string, body any) error {
	_, _, err := postRaw(url, body)
	return err
}

func postRaw(url string, body any) (*http.Response, []byte, error) {
	var rdr io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return nil, nil, err
		}
		rdr = strings.NewReader(string(data))
	}
	resp, err := http.Post(url, "application/json", rdr)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	return resp, data, err
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mahjongbench: "+format+"\n", args...)
	os.Exit(2)
}
