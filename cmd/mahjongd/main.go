// Command mahjongd runs the Mahjong analysis daemon: an HTTP/JSON
// service that accepts program submissions (textual IR or built-in
// benchmark names), analyzes them asynchronously on a bounded worker
// pool with per-job deadlines, caches built heap abstractions by
// program content hash, and serves client queries (points-to sets,
// call graphs, may-fail casts, poly call sites) from completed jobs.
//
//	mahjongd -addr=:8080 -workers=4 -job-timeout=2m
//
// See docs/SERVER.md for the API reference and a curl quickstart.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"mahjong"
	"mahjong/internal/sched"
	"mahjong/internal/server"
)

// parseClassQuotas parses "interactive=4,incremental=2,batch=1" (any
// subset, any order) into the per-class quota array.
func parseClassQuotas(s string) ([sched.NumClasses]int, error) {
	var quotas [sched.NumClasses]int
	if s == "" {
		return quotas, nil
	}
	for _, pair := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return quotas, fmt.Errorf("malformed pair %q (want class=N)", pair)
		}
		class, ok := sched.ParseClass(strings.TrimSpace(name))
		if !ok {
			return quotas, fmt.Errorf("unknown class %q (want interactive, incremental or batch)", name)
		}
		n, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil || n < 0 {
			return quotas, fmt.Errorf("invalid quota %q for class %s (want a non-negative integer)", val, class)
		}
		quotas[class] = n
	}
	return quotas, nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 2, "analysis worker pool size")
	queueDepth := flag.Int("queue-depth", 64, "max jobs waiting for a worker (full queue rejects with 429 + Retry-After)")
	admission := flag.Bool("admission", true, "reject jobs whose estimated queue wait already exceeds their deadline (429 + Retry-After)")
	classQuotas := flag.String("class-quotas", "", "per-class concurrency caps as name=N pairs, e.g. interactive=4,batch=1 (0 or absent = uncapped)")
	autodegradeWait := flag.Duration("autodegrade-wait", 0, "queue-wait threshold above which new batch jobs auto-degrade to the alloc-site abstraction (0 = off)")
	cacheEntries := flag.Int("cache", 64, "abstraction cache capacity in programs (-1 = unbounded)")
	jobTimeout := flag.Duration("job-timeout", 5*time.Minute, "default per-job deadline (0 = none)")
	shutdownGrace := flag.Duration("shutdown-grace", 5*time.Second, "how long shutdown waits for in-flight jobs before cancelling them (negative = forever)")
	maxProgram := flag.Int64("max-program-bytes", 8<<20, "max POST /jobs body size in bytes")
	budgetFacts := flag.Int64("budget-facts", 0, "default per-job cap on propagated points-to facts (0 = unlimited)")
	budgetWords := flag.Int64("budget-words", 0, "default per-job cap on live points-to bitset words (0 = unlimited)")
	budgetPairs := flag.Int64("budget-pairs", 0, "default per-job cap on automata merge pairs (0 = unlimited)")
	noDegrade := flag.Bool("no-degrade", false, "disable the allocation-site fallback when abstraction building fails")
	slowJob := flag.Duration("slow-job", 0, "log the span tree of any job taking at least this long (0 = off)")
	debugAddr := flag.String("debug-addr", "", "listen address for net/http/pprof profiling endpoints (empty = disabled; never exposed on -addr)")
	deltaStates := flag.Int("delta-states", 4, "completed-job analysis states retained for incremental base_job_id resubmissions (-1 = unbounded)")
	queryBudget := flag.Int64("query-budget", 0, "work cap for POST /jobs/{id}/query demand solves (0 = 200k, -1 = unlimited)")
	solverWorkers := flag.Int("solver-workers", 0, "parallel solver workers per job (0 or 1 = sequential, N>=2 = N workers, -1 = GOMAXPROCS)")
	renumber := flag.Bool("renumber", false, "renumber objects contiguously by class for word-range type filtering")
	version := flag.Bool("version", false, "print the version and exit")
	flag.Parse()

	if *version {
		fmt.Println("mahjongd", mahjong.Version)
		return
	}

	quotas, err := parseClassQuotas(*classQuotas)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mahjongd: -class-quotas:", err)
		os.Exit(2)
	}

	srv := server.New(server.Config{
		Workers:         *workers,
		QueueDepth:      *queueDepth,
		NoAdmission:     !*admission,
		ClassQuotas:     quotas,
		AutodegradeWait: *autodegradeWait,
		DefaultTimeout:  *jobTimeout,
		CacheEntries:    *cacheEntries,
		ShutdownGrace:   *shutdownGrace,
		MaxProgramBytes: *maxProgram,
		Budget: mahjong.ResourceBudget{
			Facts:       *budgetFacts,
			BitsetWords: *budgetWords,
			MergePairs:  *budgetPairs,
		},
		NoDegrade:     *noDegrade,
		SlowJob:       *slowJob,
		DeltaStates:   *deltaStates,
		QueryBudget:   *queryBudget,
		SolverWorkers: *solverWorkers,
		Renumber:      *renumber,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	// The pprof surface binds its own listener (typically localhost),
	// never the serving mux: profiles leak heap contents and symbols,
	// so they stay off the job-submission address entirely.
	var debugSrv *http.Server
	if *debugAddr != "" {
		debugSrv = &http.Server{
			Addr:              *debugAddr,
			Handler:           server.DebugHandler(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			if err := debugSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("mahjongd: debug listener: %v", err)
			}
		}()
		log.Printf("mahjongd debug (pprof) listening on %s", *debugAddr)
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("mahjongd listening on %s (%d workers, job timeout %v)", *addr, *workers, *jobTimeout)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("mahjongd: received %v, shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("mahjongd: shutdown: %v", err)
		}
		if debugSrv != nil {
			debugSrv.Shutdown(ctx) //nolint:errcheck // best effort on the way out
		}
		srv.Close()
	case err := <-errc:
		if debugSrv != nil {
			debugSrv.Close()
		}
		srv.Close()
		fmt.Fprintln(os.Stderr, "mahjongd:", err)
		os.Exit(1)
	}
}
