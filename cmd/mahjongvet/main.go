// mahjongvet is the project's invariant checker: a multichecker running the
// internal/lint analyzer suite over the module.
//
//	mahjongvet [-run ctxflow,stagehook] [-json] [-list] [packages]
//
// With no package patterns it checks ./... . Diagnostics print one per line
// as file:line:col: message [analyzer], sorted by (file, line, column,
// analyzer) so output is byte-stable across runs; -json emits the same
// sorted findings as a JSON array for CI tooling. The exit status is 1 when
// any diagnostic is reported, 2 on a usage or load error.
//
// The nine analyzers enforce invariants the compiler cannot see and the
// paper's soundness argument depends on — threaded cancellation (ctxflow),
// panic-recovery seams (recoverseam), borrowed-bitset discipline
// (bitsetalias), deterministic persist/export output (mapdeterminism),
// agreement of the stage registries (stagehook) — plus the dataflow suite
// built on internal/lint/flow: the parallel solver's owner-writes
// discipline (shardowner), sync/atomic access consistency (atomicmix),
// use-after-move of delta sets (sendmove), and scheduler slot / trace span
// balance (slotbalance). See docs/LINT.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"mahjong/internal/lint"
)

// jsonDiag is the -json wire form of one finding: a flat record with the
// fields CI annotates from, stable under field addition.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	var (
		runList  = flag.String("run", "", "comma-separated subset of analyzers to run (default: all)")
		listOnly = flag.Bool("list", false, "list the analyzers and exit")
		jsonOut  = flag.Bool("json", false, "emit findings as a JSON array instead of plain lines")
	)
	flag.Parse()

	all := lint.Analyzers()
	if *listOnly {
		for _, a := range all {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := all
	if *runList != "" {
		byName := make(map[string]*lint.Analyzer, len(all))
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*runList, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "mahjongvet: unknown analyzer %q (use -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mahjongvet: %v\n", err)
		os.Exit(2)
	}
	diags := lint.RunAnalyzers(pkgs, analyzers, false)
	if *jsonOut {
		out := make([]jsonDiag, 0, len(diags)) // empty array, not null, on a clean run
		for _, d := range diags {
			out = append(out, jsonDiag{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Analyzer: d.Check,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "mahjongvet: encoding findings: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "mahjongvet: %d finding(s) across %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
