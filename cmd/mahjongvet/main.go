// mahjongvet is the project's invariant checker: a multichecker running the
// internal/lint analyzer suite over the module.
//
//	mahjongvet [-run ctxflow,stagehook] [-list] [packages]
//
// With no package patterns it checks ./... . Diagnostics print one per line
// as file:line:col: message [analyzer]; the exit status is 1 when any
// diagnostic is reported, 2 on a usage or load error.
//
// The five analyzers enforce invariants the compiler cannot see and the
// paper's soundness argument depends on — threaded cancellation (ctxflow),
// panic-recovery seams (recoverseam), borrowed-bitset discipline
// (bitsetalias), deterministic persist/export output (mapdeterminism), and
// agreement of the stage registries (stagehook). See docs/LINT.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mahjong/internal/lint"
)

func main() {
	var (
		runList  = flag.String("run", "", "comma-separated subset of analyzers to run (default: all)")
		listOnly = flag.Bool("list", false, "list the analyzers and exit")
	)
	flag.Parse()

	all := lint.Analyzers()
	if *listOnly {
		for _, a := range all {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := all
	if *runList != "" {
		byName := make(map[string]*lint.Analyzer, len(all))
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*runList, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "mahjongvet: unknown analyzer %q (use -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mahjongvet: %v\n", err)
		os.Exit(2)
	}
	diags := lint.RunAnalyzers(pkgs, analyzers, false)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "mahjongvet: %d finding(s) across %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
