// Command synthgen dumps generated benchmark programs as textual IR, so
// they can be inspected, archived, or re-analyzed through `mahjong -in`,
// and regenerates the adversarial search corpus:
//
//	synthgen -benchmark=luindex > luindex.ir
//	synthgen -list
//	synthgen -random -seed=7 -stmts=40 > random.ir
//	synthgen -search -seed=1 -out=testdata/corpus
//	synthgen -search -seed=1 -scale=10 -out=/tmp/corpus10x
//
// All output is deterministic in the flags alone: the same seed yields
// byte-for-byte identical programs across runs and GOMAXPROCS values
// (see main_test.go), which is what makes the committed corpus
// reviewable.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mahjong"
	"mahjong/internal/scenario"
	"mahjong/internal/synth"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "synthgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("synthgen", flag.ContinueOnError)
	benchName := fs.String("benchmark", "", "benchmark to dump")
	list := fs.Bool("list", false, "list available benchmarks")
	seed := fs.Int64("seed", 1, "deterministic seed for -random and -search")
	random := fs.Bool("random", false, "dump a random property-test program for -seed")
	stmts := fs.Int("stmts", -1, "with -random: exact statement budget (default: derived from seed)")
	search := fs.Bool("search", false, "regenerate the adversarial corpus into -out")
	scale := fs.Int("scale", 1, "with -search: motif-count multiplier (10+ for the scale tier)")
	out := fs.String("out", "testdata/corpus", "with -search: output directory")
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch {
	case *list:
		for _, n := range mahjong.BenchmarkNames() {
			fmt.Fprintln(stdout, n)
		}
		return nil
	case *random:
		var prog *mahjong.Program
		if *stmts >= 0 {
			prog = synth.RandomProgramSized(*seed, *stmts)
		} else {
			prog = synth.RandomProgram(*seed)
		}
		fmt.Fprint(stdout, mahjong.PrintProgram(prog))
		return nil
	case *search:
		gens, err := scenario.GenerateCorpus(*seed, *scale)
		if err != nil {
			return err
		}
		if err := scenario.WriteCorpus(*out, *seed, *scale, gens); err != nil {
			return err
		}
		for _, g := range gens {
			fmt.Fprintf(stdout, "%s: %d stmts (spec %+v)\n", g.Entry.File, g.Entry.Stmts, g.Entry.Spec)
		}
		fmt.Fprintf(stdout, "wrote %d programs + manifest.json to %s\n", len(gens), *out)
		return nil
	case *benchName != "":
		prog, err := mahjong.GenerateBenchmark(*benchName)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, mahjong.PrintProgram(prog))
		return nil
	}
	return fmt.Errorf("nothing to do: pass -benchmark, -list, -random or -search (available benchmarks: %v)", mahjong.BenchmarkNames())
}
