// Command synthgen dumps a generated benchmark program as textual IR,
// so that it can be inspected, archived, or re-analyzed through
// `mahjong -in`:
//
//	synthgen -benchmark=luindex > luindex.ir
//	synthgen -list
package main

import (
	"flag"
	"fmt"
	"os"

	"mahjong"
)

func main() {
	benchName := flag.String("benchmark", "", "benchmark to dump")
	list := flag.Bool("list", false, "list available benchmarks")
	flag.Parse()

	if *list {
		for _, n := range mahjong.BenchmarkNames() {
			fmt.Println(n)
		}
		return
	}
	if *benchName == "" {
		fmt.Fprintf(os.Stderr, "synthgen: missing -benchmark (available: %v)\n", mahjong.BenchmarkNames())
		os.Exit(1)
	}
	prog, err := mahjong.GenerateBenchmark(*benchName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "synthgen:", err)
		os.Exit(1)
	}
	fmt.Print(mahjong.PrintProgram(prog))
}
