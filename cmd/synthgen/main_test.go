package main

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// readTree flattens a corpus directory into filename -> contents.
func readTree(t *testing.T, dir string) map[string]string {
	t.Helper()
	out := map[string]string{}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		buf, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = string(buf)
	}
	return out
}

// TestSearchDeterministic pins the corpus-regeneration contract: the
// same -seed produces byte-for-byte identical .ir files and manifest
// across runs and across GOMAXPROCS values.
func TestSearchDeterministic(t *testing.T) {
	gen := func(procs int) map[string]string {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		dir := t.TempDir()
		var sb strings.Builder
		if err := run([]string{"-search", "-seed=42", "-out", dir}, &sb); err != nil {
			t.Fatal(err)
		}
		return readTree(t, dir)
	}
	first := gen(1)
	if len(first) < 3 {
		t.Fatalf("corpus too small: %d files", len(first))
	}
	for _, procs := range []int{1, runtime.NumCPU()} {
		again := gen(procs)
		if len(again) != len(first) {
			t.Fatalf("GOMAXPROCS=%d: %d files, want %d", procs, len(again), len(first))
		}
		for name, want := range first {
			if again[name] != want {
				t.Fatalf("GOMAXPROCS=%d: %s differs between runs", procs, name)
			}
		}
	}
}

// TestRandomSeedDeterministic pins -random -seed output byte-for-byte.
func TestRandomSeedDeterministic(t *testing.T) {
	dump := func(args ...string) string {
		var sb strings.Builder
		if err := run(args, &sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	a := dump("-random", "-seed=7")
	b := dump("-random", "-seed=7")
	if a != b || a == "" {
		t.Fatalf("-random -seed=7 not reproducible")
	}
	if c := dump("-random", "-seed=8"); c == a {
		t.Fatalf("different seeds produced identical programs")
	}
	sized := dump("-random", "-seed=7", "-stmts=30")
	if sized == a || sized == "" {
		t.Fatalf("-stmts did not change the program")
	}
}

// TestBenchmarkDump keeps the original mode working.
func TestBenchmarkDump(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-benchmark", "luindex"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "entry ") {
		t.Fatalf("dump has no entry line")
	}
}
