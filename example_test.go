package mahjong_test

import (
	"fmt"

	"mahjong"
)

// Example demonstrates the full Mahjong pipeline on the paper's
// Figure 1 program: build the abstraction, then run a points-to
// analysis on the merged heap.
func Example() {
	prog, err := mahjong.ParseProgram("fig1.ir", figure1IR)
	if err != nil {
		panic(err)
	}
	abs, err := mahjong.BuildAbstraction(prog, mahjong.AbstractionOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("objects: %d -> %d\n", abs.Objects, abs.MergedObjects)

	rep, err := mahjong.Analyze(prog, mahjong.Config{
		Analysis:    "2obj",
		Heap:        mahjong.HeapMahjong,
		Abstraction: abs,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("poly call sites: %d\n", rep.Metrics.PolyCallSites)
	fmt.Printf("may-fail casts: %d\n", rep.Metrics.MayFailCasts)
	// Output:
	// objects: 6 -> 4
	// poly call sites: 0
	// may-fail casts: 0
}

// ExampleAnalyze_allocType shows the naive allocation-type abstraction
// losing precision on the same program (§2.1 of the paper).
func ExampleAnalyze_allocType() {
	prog, err := mahjong.ParseProgram("fig1.ir", figure1IR)
	if err != nil {
		panic(err)
	}
	rep, err := mahjong.Analyze(prog, mahjong.Config{Heap: mahjong.HeapAllocType})
	if err != nil {
		panic(err)
	}
	fmt.Printf("poly call sites: %d\n", rep.Metrics.PolyCallSites)
	fmt.Printf("may-fail casts: %d\n", rep.Metrics.MayFailCasts)
	// Output:
	// poly call sites: 1
	// may-fail casts: 1
}

// ExampleGenerateBenchmark runs the context-insensitive pre-analysis on
// a generated benchmark program.
func ExampleGenerateBenchmark() {
	prog, err := mahjong.GenerateBenchmark("luindex")
	if err != nil {
		panic(err)
	}
	rep, err := mahjong.Analyze(prog, mahjong.Config{Analysis: "ci"})
	if err != nil {
		panic(err)
	}
	fmt.Println("scalable:", rep.Scalable)
	fmt.Println("reachable methods:", rep.Metrics.Reachable)
	// Output:
	// scalable: true
	// reachable methods: 249
}
