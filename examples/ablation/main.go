// Ablation: the §5 optimizations and §3.6.2 design choices, measured.
//
// This example builds the Mahjong abstraction for one benchmark under
// each ablation knob exposed by the public API and reports modeling
// time and the resulting heap, demonstrating that the optimizations
// change cost, not results — except the null-node knob, which changes
// the abstraction itself (Example 3.1's trade-off).
//
// Run with: go run ./examples/ablation
package main

import (
	"fmt"
	"log"

	"mahjong"
)

func main() {
	prog, err := mahjong.GenerateBenchmark("checkstyle")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("benchmark: checkstyle")
	fmt.Println()

	configs := []struct {
		label string
		opts  mahjong.AbstractionOptions
	}{
		{"default (shared automata, parallel)", mahjong.AbstractionOptions{}},
		{"single worker", mahjong.AbstractionOptions{Workers: 1}},
		{"no shared automata", mahjong.AbstractionOptions{DisableSharedAutomata: true}},
		{"type-diverse representatives", mahjong.AbstractionOptions{TypeDiverseReps: true}},
		{"null node omitted", mahjong.AbstractionOptions{OmitNullNode: true}},
	}
	for _, c := range configs {
		abs, err := mahjong.BuildAbstraction(prog, c.opts)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := mahjong.Analyze(prog, mahjong.Config{
			Analysis: "2obj", Heap: mahjong.HeapMahjong, Abstraction: abs,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-36s modeling=%-9v objects %d->%d  | M-2obj: edges=%d poly=%d casts=%d\n",
			c.label, abs.ModelTime.Round(1e5), abs.Objects, abs.MergedObjects,
			rep.Metrics.CallGraphEdges, rep.Metrics.PolyCallSites, rep.Metrics.MayFailCasts)
	}
	fmt.Println()
	fmt.Println("The optimization knobs leave the abstraction and all client metrics")
	fmt.Println("unchanged; only the null-node knob may alter the merge (coarser, at")
	fmt.Println("the Example 3.1 precision risk).")
}
