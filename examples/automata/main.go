// Automata: the paper's Figure 2/Figure 4 machinery in isolation.
//
// This example builds a field points-to graph directly (no program, no
// points-to analysis), converts two objects' NFAs into DFAs via the
// shared subset construction, and runs the modified Hopcroft–Karp
// equivalence check — the reduction at the heart of Mahjong
// (type-consistency of objects = equivalence of sequential automata).
//
// Run with: go run ./examples/automata
package main

import (
	"fmt"

	"mahjong/internal/automata"
	"mahjong/internal/fpg"
)

func main() {
	// Reconstruct Figure 2: two T-objects with structurally different
	// but equivalent field automata.
	b := fpg.NewBuilder()
	o1 := b.AddObj("T")
	o2 := b.AddObj("T")
	o3 := b.AddObj("U")
	o4 := b.AddObj("U")
	o5 := b.AddObj("X")
	o6 := b.AddObj("X")
	o7 := b.AddObj("Y")
	o8 := b.AddObj("Y")
	o9 := b.AddObj("Y")
	// o1 --f--> o3 --h--> {o7, o9};  o1 --g--> o5 --k--> o9
	b.AddEdge(o1, "f", o3)
	b.AddEdge(o3, "h", o7)
	b.AddEdge(o3, "h", o9)
	b.AddEdge(o1, "g", o5)
	b.AddEdge(o5, "k", o9)
	// o2 --f--> o4 --h--> o8;       o2 --g--> o6 --k--> o8
	b.AddEdge(o2, "f", o4)
	b.AddEdge(o4, "h", o8)
	b.AddEdge(o2, "g", o6)
	b.AddEdge(o6, "k", o8)
	g := b.Graph()

	fmt.Println(g)
	u := automata.NewUniverse(g)

	fmt.Printf("SINGLETYPE-CHECK(o1) = %v\n", u.SingleTypeOK(o1))
	fmt.Printf("SINGLETYPE-CHECK(o2) = %v\n", u.SingleTypeOK(o2))

	d1, d2 := u.DFA(o1), u.DFA(o2)
	fmt.Printf("DFA(o1): %d states;  DFA(o2): %d states;  shared store: %d states\n",
		u.StateCount(d1), u.StateCount(d2), u.NumStates())
	fmt.Printf("equivalent(o1, o2) = %v   // Figure 2: o1 ≡ o2\n", u.Equivalent(d1, d2))

	// A third T-object whose f-target reaches a Z instead of a Y:
	// inequivalent.
	b2 := fpg.NewBuilder()
	p1 := b2.AddObj("T")
	p2 := b2.AddObj("T")
	q1 := b2.AddObj("U")
	q2 := b2.AddObj("U")
	r1 := b2.AddObj("Y")
	r2 := b2.AddObj("Z")
	b2.AddEdge(p1, "f", q1)
	b2.AddEdge(q1, "h", r1)
	b2.AddEdge(p2, "f", q2)
	b2.AddEdge(q2, "h", r2)
	g2 := b2.Graph()
	u2 := automata.NewUniverse(g2)
	fmt.Printf("equivalent(p1, p2) = %v   // different leaf types: not merged\n",
		u2.Equivalent(u2.DFA(p1), u2.DFA(p2)))
}
