// May-fail casting: which casts can a static analysis prove safe?
//
// The example builds a small container program in which three typed
// lists each hold one element type and are read back through a
// downcast. Under the allocation-site abstraction every cast is proven
// safe. The naive allocation-type abstraction merges all the lists, so
// every element appears to flow to every cast and all of them become
// may-fail. Mahjong merges only type-consistent lists (there are none
// across element types), so it proves exactly the same casts safe as
// the baseline.
//
// Run with: go run ./examples/castcheck
package main

import (
	"fmt"
	"log"
	"strings"

	"mahjong"
)

func buildSource() string {
	var b strings.Builder
	b.WriteString(`
class List {
  field head: java.lang.Object
  method add(v: java.lang.Object): void {
    this.head = v
    return
  }
  method get(): java.lang.Object {
    var v: java.lang.Object
    v = this.head
    return v
  }
}
`)
	// Three element types, three lists, three casts.
	for i := 0; i < 3; i++ {
		fmt.Fprintf(&b, "class Elem%d { method ping(): void { return } }\n", i)
	}
	b.WriteString("class Main {\n  static method main(): void {\n")
	for i := 0; i < 3; i++ {
		fmt.Fprintf(&b, "    var l%d: List\n    var e%d: Elem%d\n    var raw%d: java.lang.Object\n    var t%d: Elem%d\n", i, i, i, i, i, i)
	}
	for i := 0; i < 3; i++ {
		fmt.Fprintf(&b, "    l%d = new List\n", i)
		fmt.Fprintf(&b, "    e%d = new Elem%d\n", i, i)
		fmt.Fprintf(&b, "    l%d.add(e%d)\n", i, i)
		fmt.Fprintf(&b, "    raw%d = l%d.get()\n", i, i)
		fmt.Fprintf(&b, "    t%d = (Elem%d) raw%d\n", i, i, i)
		fmt.Fprintf(&b, "    t%d.ping()\n", i)
	}
	b.WriteString("    return\n  }\n}\nentry Main.main/0\n")
	return b.String()
}

func main() {
	prog, err := mahjong.ParseProgram("castcheck.ir", buildSource())
	if err != nil {
		log.Fatal(err)
	}
	abs, err := mahjong.BuildAbstraction(prog, mahjong.AbstractionOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("heap: %d objects -> %d after merging\n\n", abs.Objects, abs.MergedObjects)

	for _, v := range []struct {
		label string
		heap  mahjong.HeapKind
	}{
		{"alloc-site", mahjong.HeapAllocSite},
		{"alloc-type", mahjong.HeapAllocType},
		{"mahjong   ", mahjong.HeapMahjong},
	} {
		rep, err := mahjong.Analyze(prog, mahjong.Config{
			Analysis:    "2obj", // ci would conflate the three get() receivers
			Heap:        v.heap,
			Abstraction: abs,
		})
		if err != nil {
			log.Fatal(err)
		}
		res := rep.Result()
		total := len(res.ReachableCasts())
		fmt.Printf("%s  casts: %d total, %d may fail\n",
			v.label, total, rep.Metrics.MayFailCasts)
	}
	fmt.Println()
	fmt.Println("alloc-type merges the three List objects and loses all three casts;")
	fmt.Println("mahjong (correctly) refuses to merge lists holding different element")
	fmt.Println("types and matches the baseline.")
}
