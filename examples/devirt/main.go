// Devirtualization: which virtual call sites can be rewritten into
// direct calls?
//
// This example runs a 2-object-sensitive analysis over the `pmd`
// benchmark under the allocation-site abstraction and under Mahjong,
// lists a few calls each one devirtualizes, and reports the cost
// difference. The point of the paper is visible directly: the merged
// heap gives the same devirtualization decisions for a fraction of the
// analysis effort.
//
// Run with: go run ./examples/devirt
package main

import (
	"fmt"
	"log"

	"mahjong"
)

func main() {
	prog, err := mahjong.GenerateBenchmark("pmd")
	if err != nil {
		log.Fatal(err)
	}
	abs, err := mahjong.BuildAbstraction(prog, mahjong.AbstractionOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pmd: %d objects -> %d after merging (%.0f%% reduction)\n\n",
		abs.Objects, abs.MergedObjects, abs.Reduction()*100)

	type run struct {
		label string
		heap  mahjong.HeapKind
	}
	for _, r := range []run{
		{"2obj   (alloc-site)", mahjong.HeapAllocSite},
		{"M-2obj (mahjong)   ", mahjong.HeapMahjong},
	} {
		rep, err := mahjong.Analyze(prog, mahjong.Config{
			Analysis:    "2obj",
			Heap:        r.heap,
			Abstraction: abs,
		})
		if err != nil {
			log.Fatal(err)
		}
		res := rep.Result()
		mono, poly := 0, 0
		var samplePoly string
		for _, inv := range res.ReachableInvokes() {
			switch n := len(res.CallTargets(inv)); {
			case n == 1:
				mono++
			case n >= 2:
				poly++
				if samplePoly == "" {
					samplePoly = inv.Label()
				}
			}
		}
		fmt.Printf("%s  time=%-10v work=%-8d devirtualizable=%d  poly=%d\n",
			r.label, rep.Time.Round(1e5), rep.Work, mono, poly)
		if samplePoly != "" {
			fmt.Printf("%s  e.g. irreducibly polymorphic: %s\n", r.label, samplePoly)
		}
	}
	fmt.Println()
	fmt.Println("Same devirtualization decisions, much less analysis work: that is")
	fmt.Println("the paper's claim for type-dependent clients.")
}
