// Exceptions: the flow-insensitive exception analysis layered on the
// points-to engine.
//
// The program below throws two exception types behind a virtual call;
// the example shows which types each catch may receive and which types
// may escape main entirely, under the baseline and the Mahjong heap —
// exception objects are heap objects like any other, so the abstraction
// applies to them too.
//
// Run with: go run ./examples/exceptions
package main

import (
	_ "embed"
	"fmt"
	"log"

	"mahjong"
	"mahjong/internal/clients"
)

// src throws two exception types behind a virtual call. It lives in
// exceptions.ir so the same file feeds the mahjong CLI (-in=…) and the
// tracing integration tests.
//
//go:embed exceptions.ir
var src string

func main() {
	prog, err := mahjong.ParseProgram("exceptions.ir", src)
	if err != nil {
		log.Fatal(err)
	}
	abs, err := mahjong.BuildAbstraction(prog, mahjong.AbstractionOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range []struct {
		label string
		heap  mahjong.HeapKind
	}{
		{"alloc-site", mahjong.HeapAllocSite},
		{"mahjong   ", mahjong.HeapMahjong},
	} {
		rep, err := mahjong.Analyze(prog, mahjong.Config{
			Analysis: "2obj", Heap: v.heap, Abstraction: abs,
		})
		if err != nil {
			log.Fatal(err)
		}
		res := rep.Result()
		var names []string
		for _, c := range clients.UncaughtExceptionTypes(res) {
			names = append(names, c.Name)
		}
		fmt.Printf("%s  uncaught exception types: %v\n", v.label, names)
	}
	fmt.Println()
	fmt.Println("Both IOErr and ParseErr may escape main: the catch only handles")
	fmt.Println("ParseErr, and flow-insensitively even a caught exception may escape.")
	fmt.Println("Mahjong reports the same exception types as the baseline: exception")
	fmt.Println("flow is a type-dependent question too.")
}
