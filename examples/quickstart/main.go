// Quickstart: the paper's Figure 1 program, end to end.
//
// It parses the motivating example from textual IR, builds the Mahjong
// heap abstraction, and shows that (1) the abstraction merges exactly
// the type-consistent objects o2≡o3 and o5≡o6 and (2) the subsequent
// analysis keeps `a.foo()` a mono-call and the cast `(C) a` safe —
// while the naive allocation-type abstraction loses both facts.
//
// Run with: go run ./examples/quickstart
package main

import (
	_ "embed"
	"fmt"
	"log"

	"mahjong"
)

// figure1 is the paper's Figure 1 program. It lives in quickstart.ir so
// the same file feeds `mahjong -in=examples/quickstart/quickstart.ir`
// and the tracing integration tests.
//
//go:embed quickstart.ir
var figure1 string

func main() {
	prog, err := mahjong.ParseProgram("figure1.ir", figure1)
	if err != nil {
		log.Fatal(err)
	}

	abs, err := mahjong.BuildAbstraction(prog, mahjong.AbstractionOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Mahjong merged %d allocation sites into %d abstract objects\n",
		abs.Objects, abs.MergedObjects)
	fmt.Println("equivalence classes of size >= 2:", abs.Classes)
	fmt.Println("(expected: o2 ≡ o3 and o5 ≡ o6 merge; o1 and o4 stay apart)")
	fmt.Println()

	for _, variant := range []struct {
		label string
		heap  mahjong.HeapKind
	}{
		{"alloc-site (baseline)", mahjong.HeapAllocSite},
		{"alloc-type (naive)   ", mahjong.HeapAllocType},
		{"mahjong              ", mahjong.HeapMahjong},
	} {
		rep, err := mahjong.Analyze(prog, mahjong.Config{
			Analysis:    "ci",
			Heap:        variant.heap,
			Abstraction: abs,
		})
		if err != nil {
			log.Fatal(err)
		}
		m := rep.Metrics
		fmt.Printf("%s  poly-calls=%d  may-fail-casts=%d  call-edges=%d\n",
			variant.label, m.PolyCallSites, m.MayFailCasts, m.CallGraphEdges)
	}
	fmt.Println()
	fmt.Println("alloc-type turns a.foo() into a poly-call and (C)a into a may-fail")
	fmt.Println("cast; mahjong preserves the baseline's precision at lower cost.")
}
