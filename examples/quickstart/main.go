// Quickstart: the paper's Figure 1 program, end to end.
//
// It parses the motivating example from textual IR, builds the Mahjong
// heap abstraction, and shows that (1) the abstraction merges exactly
// the type-consistent objects o2≡o3 and o5≡o6 and (2) the subsequent
// analysis keeps `a.foo()` a mono-call and the cast `(C) a` safe —
// while the naive allocation-type abstraction loses both facts.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mahjong"
)

const figure1 = `
// Figure 1 of the Mahjong paper (PLDI'17).
class A {
  field f: A
  method foo(): void { return }
}
class B extends A {
  method foo(): void { return }
}
class C extends A {
  method foo(): void { return }
}
class Main {
  static method main(): void {
    var x: A
    var y: A
    var z: A
    var a: A
    var c: C
    var t4: A
    var t5: A
    var t6: A
    x = new A          // o1
    y = new A          // o2
    z = new A          // o3
    t4 = new B         // o4
    x.f = t4
    t5 = new C         // o5
    y.f = t5
    t6 = new C         // o6
    z.f = t6
    a = z.f
    a.foo()            // mono-call to C.foo under alloc-site
    c = (C) a          // safe cast under alloc-site
    return
  }
}
entry Main.main/0
`

func main() {
	prog, err := mahjong.ParseProgram("figure1.ir", figure1)
	if err != nil {
		log.Fatal(err)
	}

	abs, err := mahjong.BuildAbstraction(prog, mahjong.AbstractionOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Mahjong merged %d allocation sites into %d abstract objects\n",
		abs.Objects, abs.MergedObjects)
	fmt.Println("equivalence classes of size >= 2:", abs.Classes)
	fmt.Println("(expected: o2 ≡ o3 and o5 ≡ o6 merge; o1 and o4 stay apart)")
	fmt.Println()

	for _, variant := range []struct {
		label string
		heap  mahjong.HeapKind
	}{
		{"alloc-site (baseline)", mahjong.HeapAllocSite},
		{"alloc-type (naive)   ", mahjong.HeapAllocType},
		{"mahjong              ", mahjong.HeapMahjong},
	} {
		rep, err := mahjong.Analyze(prog, mahjong.Config{
			Analysis:    "ci",
			Heap:        variant.heap,
			Abstraction: abs,
		})
		if err != nil {
			log.Fatal(err)
		}
		m := rep.Metrics
		fmt.Printf("%s  poly-calls=%d  may-fail-casts=%d  call-edges=%d\n",
			variant.label, m.PolyCallSites, m.MayFailCasts, m.CallGraphEdges)
	}
	fmt.Println()
	fmt.Println("alloc-type turns a.foo() into a poly-call and (C)a into a may-fail")
	fmt.Println("cast; mahjong preserves the baseline's precision at lower cost.")
}
