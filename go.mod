module mahjong

go 1.22
