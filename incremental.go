package mahjong

// Incremental analysis facade: BuildAbstractionDelta reruns the Figure 5
// pipeline after an edit, reusing a retained DeltaState wherever the
// edit left the inputs unchanged — the pre-analysis is warm-seeded from
// the base solver (internal/pta.SolveIncrementalContext) and the heap
// modeler replays the base partition for type groups whose FPG
// fragments are untouched (internal/core merge reuse). Every reuse
// layer degrades independently: an ineligible or fault-injected delta
// falls back to the cold path with a recorded reason, never an error
// the cold path would not also have produced.

import (
	"context"
	"fmt"
	"time"

	"mahjong/internal/budget"
	"mahjong/internal/core"
	"mahjong/internal/delta"
	"mahjong/internal/fpg"
	"mahjong/internal/pta"
)

// DeltaState retains, from one abstraction build, everything a later
// incremental build replays: the analyzed program, its pre-analysis
// result, and the built abstraction (whose merge decisions are captured
// for reuse). Treat it as opaque and immutable; it is safe to share
// between concurrent BuildAbstractionDelta calls.
type DeltaState struct {
	// Prog is the program the state was built from — the diff base of
	// the next incremental build.
	Prog *Program
	// Pre is the retained pre-analysis solver state.
	Pre *pta.Result
	// Abs is the abstraction built from Pre.
	Abs *Abstraction
}

// IncrementalOutcome reports how much of an incremental build was
// actually replayed from the base state.
type IncrementalOutcome struct {
	// Used reports that the pre-analysis was warm-seeded from the base
	// solver; Fallback carries the reason when it was not (and is ""
	// when Used).
	Used     bool
	Fallback string

	// TotalMethods and ChangedMethods describe the diff (zero when no
	// diff was computed).
	TotalMethods, ChangedMethods int
	// SeededFacts counts points-to facts installed from the base solver.
	SeededFacts int64
	// ReusedGroups and RemergedGroups split the heap modeler's type
	// groups between replayed-from-base and merged-from-scratch.
	ReusedGroups, RemergedGroups int
}

// BuildAbstractionDelta is BuildAbstractionContext against a retained
// base state: the pipeline solves only the edit's consequences and
// returns a fresh DeltaState for the next edit. A nil base (or any
// ineligible delta — shape changes, selector or heap mismatches,
// injected faults in the diff or seeding stages) degrades to a full
// from-scratch build with the reason recorded in the outcome; the
// returned abstraction is bit-for-bit the one the cold path would have
// built either way.
func BuildAbstractionDelta(ctx context.Context, p *Program, opts AbstractionOptions, base *DeltaState) (*Abstraction, *DeltaState, *IncrementalOutcome, error) {
	out := &IncrementalOutcome{}
	var d *delta.Diff
	var reuse *core.ReuseState
	if base == nil || base.Prog == nil || base.Pre == nil || base.Abs == nil {
		out.Fallback = "no base state"
	} else {
		var err error
		d, err = delta.Compute(base.Prog, p, delta.Options{Trace: opts.Trace})
		if err != nil {
			// The diff stage is advisory: a fault there costs the warm
			// start, not the job.
			d = nil
			out.Fallback = fmt.Sprintf("diff failed: %v", err)
		} else {
			out.TotalMethods = d.TotalMethods
			out.ChangedMethods = len(d.Changed)
		}
		// Merge reuse is keyed by structural fingerprints that are valid
		// regardless of diff eligibility, so it rides along even when the
		// pre-analysis falls back.
		reuse = base.Abs.reuseState()
	}

	var basePre *pta.Result
	if d != nil {
		basePre = base.Pre
	}
	abs, pre, st, err := buildPipeline(ctx, p, opts, basePre, d, reuse, true)
	if err != nil {
		return nil, nil, nil, err
	}
	if st != nil {
		out.Used = st.Used
		if out.Fallback == "" {
			out.Fallback = st.Fallback
		}
		out.SeededFacts = st.SeededFacts
	}
	out.ReusedGroups = abs.res.ReusedGroups
	out.RemergedGroups = abs.res.RemergedGroups
	next := &DeltaState{Prog: p, Pre: pre, Abs: abs}
	return abs, next, out, nil
}

// reuseState unwraps the captured merge decisions, surviving
// abstractions loaded from disk (which have none).
func (a *Abstraction) reuseState() *core.ReuseState {
	if a == nil || a.res == nil {
		return nil
	}
	return a.res.ReuseState
}

// buildPipeline runs pre-analysis → FPG → heap modeler. When basePre
// and d are non-nil the pre-analysis is attempted incrementally (it
// falls back internally when ineligible); reuse and capture configure
// the heap modeler's merge reuse.
func buildPipeline(ctx context.Context, p *Program, opts AbstractionOptions, basePre *pta.Result, d *delta.Diff, reuse *core.ReuseState, capture bool) (*Abstraction, *pta.Result, *pta.IncrementalStats, error) {
	// One meter for the whole pipeline: a greedy pre-analysis leaves less
	// budget for FPG construction and modeling, bounding the job's total
	// resource use rather than each stage's.
	meter := budget.NewMeter(opts.Resources)

	preOpts := pta.Options{
		Budget:   pta.Budget{Work: opts.PreBudget},
		Meter:    meter,
		Trace:    opts.Trace,
		Parallel: opts.SolverWorkers,
		Renumber: opts.Renumber,
	}
	t0 := time.Now()
	var (
		pre *pta.Result
		st  *pta.IncrementalStats
		err error
	)
	if basePre != nil && d != nil {
		pre, st, err = pta.SolveIncrementalContext(ctx, p, preOpts, basePre, d)
	} else {
		pre, err = pta.SolveContext(ctx, p, preOpts)
	}
	if err != nil {
		return nil, nil, nil, fmt.Errorf("mahjong: pre-analysis: %w", err)
	}
	if pre.Aborted {
		return nil, nil, nil, fmt.Errorf("mahjong: pre-analysis: %w", ErrBudget)
	}
	preTime := time.Since(t0)

	t1 := time.Now()
	g, err := fpg.BuildContext(ctx, pre, fpg.Options{
		OmitNullNode: opts.OmitNullNode,
		Meter:        meter,
		Trace:        opts.Trace,
	})
	if err != nil {
		return nil, nil, nil, fmt.Errorf("mahjong: fpg: %w", err)
	}
	fpgTime := time.Since(t1)

	policy := core.RepFirst
	if opts.TypeDiverseReps {
		policy = core.RepTypeDiverse
	}
	res, err := core.BuildContext(ctx, g, core.Options{
		Workers:        opts.Workers,
		Policy:         policy,
		DisableSharing: opts.DisableSharedAutomata,
		Meter:          meter,
		Trace:          opts.Trace,
		Reuse:          reuse,
		CaptureReuse:   capture,
	})
	if err != nil {
		return nil, nil, nil, fmt.Errorf("mahjong: heap modeling: %w", err)
	}
	merged := 0
	for _, c := range res.Classes {
		if c.Size() >= 2 {
			merged++
		}
	}
	abs := &Abstraction{
		MOM:           res.MOM,
		Objects:       res.NumObjects,
		MergedObjects: res.NumMerged,
		Classes:       merged,
		PreTime:       preTime,
		FPGTime:       fpgTime,
		ModelTime:     res.Duration,
		res:           res,
	}
	return abs, pre, st, nil
}
