// Incremental-engine benchmark: the headline number for the delta
// pipeline is the warm/cold re-solve ratio after a one-method edit on a
// subject ~10× the size of the small benchmark tier. Record it with:
//
//	make bench-save    (writes BENCH_incremental.json)
package mahjong_test

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"mahjong"
	"mahjong/internal/delta"
	"mahjong/internal/faultinject"
	"mahjong/internal/synth"
	"mahjong/internal/trace"
)

// incrementalProfile is luindex scaled to 10× the modules, putting the
// subject at the top of the benchmark suite's size range — large enough
// that the pre-analysis solve dominates the pipeline and the warm seed
// has something worth skipping.
var incrementalProfile = synth.Profile{
	Name: "luindex-10x", Seed: 109,
	Modules: 40, TypesPerModule: 6, BuildersPerModule: 30,
	ListsPerModule: 5, MapsPerModule: 2, ChainDepth: 3, ChainsPerModule: 2,
	Statics: 1, NullFieldsPerModule: 1, RendersPerModule: 10, ParasPerDoc: 2,
}

// solveStages are the spans that make up "re-solving" the edited
// program: diffing it against the base and running the warm-seeded (or
// cold) pre-analysis. The downstream FPG/heap-modeling stages rebuild
// the same way on both paths (the heap modeler has its own merge-reuse
// shortcut) and are reported separately in the pipeline metrics.
var solveStages = map[string]bool{
	faultinject.StageDelta: true,
	faultinject.StageSeed:  true,
	faultinject.StageSolve: true,
}

func solveMS(tr *trace.Tracer) float64 {
	var ns int64
	for _, sp := range tr.Snapshot().Spans {
		if sp.Parent < 0 && solveStages[sp.Stage] {
			ns += sp.DurNS
		}
	}
	return float64(ns) / 1e6
}

// BenchmarkIncrementalOneMethodEdit interleaves a cold from-scratch
// abstraction build with a warm incremental rebuild of the same edited
// program. The recorded headline is the re-solve time — diff plus
// pre-analysis, the stages the incremental engine accelerates — cold
// vs. warm; whole-pipeline wall times ride along for context.
func BenchmarkIncrementalOneMethodEdit(b *testing.B) {
	ctx := context.Background()
	prog := synth.MustGenerate(incrementalProfile)
	_, state, _, err := mahjong.BuildAbstractionDelta(ctx, prog, mahjong.AbstractionOptions{}, nil)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42)) //nolint:gosec // deterministic benchmark edit
	edited, desc, err := delta.RandomEdit(prog, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("edit: %s", desc)

	var coldSolve, warmSolve float64
	var coldWall, warmWall time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		coldTr := trace.New()
		t0 := time.Now()
		if _, err := mahjong.BuildAbstractionContext(ctx, edited, mahjong.AbstractionOptions{Trace: coldTr.Root()}); err != nil {
			b.Fatal(err)
		}
		t1 := time.Now()
		warmTr := trace.New()
		_, _, out, err := mahjong.BuildAbstractionDelta(ctx, edited, mahjong.AbstractionOptions{Trace: warmTr.Root()}, state)
		if err != nil {
			b.Fatal(err)
		}
		t2 := time.Now()
		if !out.Used {
			b.Fatalf("warm build fell back: %s", out.Fallback)
		}
		coldSolve += solveMS(coldTr)
		warmSolve += solveMS(warmTr)
		coldWall += t1.Sub(t0)
		warmWall += t2.Sub(t1)
	}
	n := float64(b.N)
	b.ReportMetric(coldSolve/n, "solve-cold-ms")
	b.ReportMetric(warmSolve/n, "solve-warm-ms")
	b.ReportMetric(coldSolve/warmSolve, "speedup")
	b.ReportMetric(float64(coldWall.Nanoseconds())/n/1e6, "pipeline-cold-ms")
	b.ReportMetric(float64(warmWall.Nanoseconds())/n/1e6, "pipeline-warm-ms")
	b.ReportMetric(float64(coldWall)/float64(warmWall), "pipeline-speedup")
}
