package mahjong_test

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"mahjong"
	"mahjong/internal/delta"
	"mahjong/internal/faultinject"
)

// coldPipeline runs the from-scratch abstraction + main analysis.
func coldPipeline(t *testing.T, prog *mahjong.Program, analysis string) (*mahjong.Abstraction, *mahjong.Report) {
	t.Helper()
	abs, err := mahjong.BuildAbstraction(prog, mahjong.AbstractionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := mahjong.Analyze(prog, mahjong.Config{
		Analysis: analysis, Heap: mahjong.HeapMahjong, Abstraction: abs,
	})
	if err != nil {
		t.Fatal(err)
	}
	return abs, rep
}

// sameAbstraction requires pointer-identical MOMs (both sides are built
// over the same next program, so sites are shared).
func sameAbstraction(t *testing.T, tag string, warm, cold *mahjong.Abstraction) {
	t.Helper()
	if warm.Objects != cold.Objects || warm.MergedObjects != cold.MergedObjects || warm.Classes != cold.Classes {
		t.Fatalf("%s: abstraction sizes differ: %d/%d/%d vs %d/%d/%d", tag,
			warm.Objects, warm.MergedObjects, warm.Classes,
			cold.Objects, cold.MergedObjects, cold.Classes)
	}
	if len(warm.MOM) != len(cold.MOM) {
		t.Fatalf("%s: MOM sizes differ: %d vs %d", tag, len(warm.MOM), len(cold.MOM))
	}
	for site, rep := range warm.MOM {
		if cold.MOM[site] != rep {
			t.Fatalf("%s: MOM[%s] = %s, cold has %s", tag, site, rep, cold.MOM[site])
		}
	}
}

// TestIncrementalFacadeEquivalence is the end-to-end A/B gate: chained
// random edits, each solved incrementally against the previous state,
// must yield the exact abstraction and client metrics of a from-scratch
// pipeline — including the downstream context-sensitive main analysis.
func TestIncrementalFacadeEquivalence(t *testing.T) {
	prog, err := mahjong.GenerateBenchmark("luindex")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7)) //nolint:gosec // deterministic test

	_, state, out, err := mahjong.BuildAbstractionDelta(context.Background(), prog, mahjong.AbstractionOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Used || out.Fallback != "no base state" {
		t.Fatalf("cold bootstrap: Used=%v Fallback=%q", out.Used, out.Fallback)
	}

	cur := prog
	for step := 0; step < 4; step++ {
		next, desc, err := delta.RandomEdit(cur, rng)
		if err != nil {
			t.Fatal(err)
		}
		warmAbs, nextState, out, err := mahjong.BuildAbstractionDelta(context.Background(), next, mahjong.AbstractionOptions{}, state)
		if err != nil {
			t.Fatalf("step %d (%s): %v", step, desc, err)
		}
		if !out.Used {
			t.Fatalf("step %d (%s): fell back: %s", step, desc, out.Fallback)
		}
		coldAbs, coldRep := coldPipeline(t, next, "2obj")
		sameAbstraction(t, desc, warmAbs, coldAbs)

		warmRep, err := mahjong.Analyze(next, mahjong.Config{
			Analysis: "2obj", Heap: mahjong.HeapMahjong, Abstraction: warmAbs,
		})
		if err != nil {
			t.Fatal(err)
		}
		if warmRep.Metrics != coldRep.Metrics {
			t.Fatalf("step %d (%s): client metrics differ:\nwarm %+v\ncold %+v",
				step, desc, warmRep.Metrics, coldRep.Metrics)
		}
		t.Logf("step %d (%s): changed=%d/%d seeded=%d facts, groups reused=%d remerged=%d",
			step, desc, out.ChangedMethods, out.TotalMethods, out.SeededFacts,
			out.ReusedGroups, out.RemergedGroups)
		cur, state = next, nextState
	}
}

// TestIncrementalFacadeFaults: injected faults in the diff and seed
// stages must degrade to the cold path — same abstraction, reason
// recorded, no error.
func TestIncrementalFacadeFaults(t *testing.T) {
	defer faultinject.Clear()
	prog, err := mahjong.GenerateBenchmark("antlr")
	if err != nil {
		t.Fatal(err)
	}
	_, state, _, err := mahjong.BuildAbstractionDelta(context.Background(), prog, mahjong.AbstractionOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	next, err := delta.Rewrite(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	coldAbs, err := mahjong.BuildAbstraction(next, mahjong.AbstractionOptions{})
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		stage  string
		reason string
	}{
		{faultinject.StageDelta, "diff failed"},
		{faultinject.StageSeed, "seed preparation failed"},
	}
	for _, tc := range cases {
		t.Run(tc.stage, func(t *testing.T) {
			faultinject.Set(faultinject.OnStage(tc.stage, faultinject.Fail(errors.New("boom"))))
			defer faultinject.Clear()
			abs, _, out, err := mahjong.BuildAbstractionDelta(context.Background(), next, mahjong.AbstractionOptions{}, state)
			if err != nil {
				t.Fatalf("fault escaped as error: %v", err)
			}
			if out.Used || !strings.Contains(out.Fallback, tc.reason) {
				t.Fatalf("Used=%v Fallback=%q, want fallback containing %q", out.Used, out.Fallback, tc.reason)
			}
			sameAbstraction(t, tc.stage, abs, coldAbs)
		})
	}
}

// TestIncrementalFacadeShapeChange: structural edits demote cleanly.
func TestIncrementalFacadeShapeChange(t *testing.T) {
	prog, err := mahjong.GenerateBenchmark("antlr")
	if err != nil {
		t.Fatal(err)
	}
	_, state, _, err := mahjong.BuildAbstractionDelta(context.Background(), prog, mahjong.AbstractionOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	next, err := delta.Rewrite(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	next.NewClass("BrandNew", nil)
	abs, _, out, err := mahjong.BuildAbstractionDelta(context.Background(), next, mahjong.AbstractionOptions{}, state)
	if err != nil {
		t.Fatal(err)
	}
	if out.Used || !strings.Contains(out.Fallback, "shape change") {
		t.Fatalf("Used=%v Fallback=%q", out.Used, out.Fallback)
	}
	coldAbs, err := mahjong.BuildAbstraction(next, mahjong.AbstractionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sameAbstraction(t, "shape change", abs, coldAbs)
}
