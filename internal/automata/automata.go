// Package automata implements the automata view of the field points-to
// graph (Figure 4 of the paper) and the three algorithms built on it:
//
//   - the NFA of an object is the FPG restricted to the nodes reachable
//     from it (Algorithm 2); it is never materialized, the FPG is read
//     directly;
//   - subset construction turns that NFA into a DFA whose states are
//     sets of FPG nodes (Algorithm 3); states are hash-consed in a
//     Universe so automata of different objects share structure (§5,
//     "shared sequential automata");
//   - a Hopcroft–Karp equivalence check over 6-tuple DFAs, with the
//     paper's modification that two states are equivalent only when
//     their output (type) sets agree, and missing transitions go to a
//     distinguished error state (Algorithm 4).
//
// SINGLETYPE-CHECK (Condition 2 of Definition 2.1) is implemented on the
// same shared DFA states: an object passes iff every DFA state reachable
// from its root has a singleton type set.
package automata

import (
	"encoding/binary"
	"sort"

	"mahjong/internal/fpg"
)

// State is a hash-consed DFA state: a set of FPG nodes. Its output is
// the set of types of those nodes; Single is >= 0 when that set is a
// singleton (and then holds the type ID).
type State struct {
	ID    int     // universe-wide id (used by the equivalence checker)
	Nodes []int32 // sorted FPG node IDs
	Types []int32 // sorted type IDs of Nodes (the output set γ')

	// Single is the unique type ID when len(Types) == 1, else -1.
	Single int32

	// trans are the outgoing transitions sorted by field ID; valid only
	// after expansion.
	trans    []transition
	expanded bool
}

type transition struct {
	field int32
	to    *State
}

// Universe hash-conses DFA states over one FPG so that automata of
// different objects share their common parts. It is not safe for
// concurrent mutation: expand everything first (Prepare/DFA), then
// Equivalent and SingleTypeOK may be called from multiple goroutines.
type Universe struct {
	g      *fpg.Graph
	states map[string]*State
	all    []*State

	roots     []*State // root state per FPG node (index = node ID), lazily filled
	singleOK  []int8   // per node: 0 unknown, 1 ok, 2 fail
	stateOK   map[*State]bool
	errorOut  int32
	numStates int
}

// NewUniverse creates an empty universe over g.
func NewUniverse(g *fpg.Graph) *Universe {
	return &Universe{
		g:        g,
		states:   make(map[string]*State),
		roots:    make([]*State, len(g.Objs)),
		singleOK: make([]int8, len(g.Objs)),
		stateOK:  make(map[*State]bool),
	}
}

// Graph returns the underlying FPG.
func (u *Universe) Graph() *fpg.Graph { return u.g }

// NumStates returns the number of distinct DFA states created so far;
// shared-automata effectiveness is measured against the sum of per-object
// state counts.
func (u *Universe) NumStates() int { return len(u.all) }

func stateKey(nodes []int32) string {
	buf := make([]byte, 0, 4*len(nodes))
	var tmp [4]byte
	for _, n := range nodes {
		binary.LittleEndian.PutUint32(tmp[:], uint32(n))
		buf = append(buf, tmp[:]...)
	}
	return string(buf)
}

// intern returns the canonical state for a sorted node set.
func (u *Universe) intern(nodes []int32) *State {
	k := stateKey(nodes)
	if s, ok := u.states[k]; ok {
		return s
	}
	types := make([]int32, 0, 2)
	seen := make(map[int32]bool, 2)
	for _, n := range nodes {
		t := int32(u.g.TypeOf[n])
		if !seen[t] {
			seen[t] = true
			types = append(types, t)
		}
	}
	sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
	s := &State{ID: len(u.all) + 1, Nodes: nodes, Types: types, Single: -1}
	if len(types) == 1 {
		s.Single = types[0]
	}
	u.states[k] = s
	u.all = append(u.all, s)
	return s
}

// Root returns the (unexpanded) root state {node}.
func (u *Universe) Root(node int) *State {
	if s := u.roots[node]; s != nil {
		return s
	}
	s := u.intern([]int32{int32(node)})
	u.roots[node] = s
	return s
}

// expand computes the transitions of s (Algorithm 3, one step): for each
// field on which any member has an out-edge, the successor state is the
// union of member targets under that field.
func (u *Universe) expand(s *State) {
	if s.expanded {
		return
	}
	s.expanded = true
	// Union of fields across members. For single-type states all members
	// have the same class and hence the same declared fields, so this
	// matches Algorithm 3's "pick any member"; for multi-type states the
	// union keeps the construction well-defined.
	fieldSet := make(map[int32][]int32)
	var fieldOrder []int32
	for _, n := range s.Nodes {
		for _, f := range u.g.FieldsOf(int(n)) {
			ff := int32(f)
			if _, ok := fieldSet[ff]; !ok {
				fieldSet[ff] = nil
				fieldOrder = append(fieldOrder, ff)
			}
		}
	}
	sort.Slice(fieldOrder, func(i, j int) bool { return fieldOrder[i] < fieldOrder[j] })
	for _, f := range fieldOrder {
		var tgts []int32
		seen := map[int32]bool{}
		for _, n := range s.Nodes {
			for _, t := range u.g.Succ(int(n), int(f)) {
				tt := int32(t)
				if !seen[tt] {
					seen[tt] = true
					tgts = append(tgts, tt)
				}
			}
		}
		if len(tgts) == 0 {
			continue
		}
		sort.Slice(tgts, func(i, j int) bool { return tgts[i] < tgts[j] })
		s.trans = append(s.trans, transition{field: f, to: u.intern(tgts)})
	}
}

// Next returns δ(s, field), or nil when the transition is absent (the
// conceptual q_error). s must have been expanded (via DFA or
// SingleTypeOK reaching it).
func (s *State) Next(field int32) *State {
	i := sort.Search(len(s.trans), func(i int) bool { return s.trans[i].field >= field })
	if i < len(s.trans) && s.trans[i].field == field {
		return s.trans[i].to
	}
	return nil
}

// Fields returns the field IDs with outgoing transitions, ascending.
func (s *State) Fields() []int32 {
	out := make([]int32, len(s.trans))
	for i, tr := range s.trans {
		out[i] = tr.field
	}
	return out
}

// SingleTypeOK implements SINGLETYPE-CHECK (Condition 2 of
// Definition 2.1) for the object at the given FPG node: every DFA state
// reachable from {node} must have a singleton type set. Results are
// memoized per node, and states proven all-single are memoized across
// objects.
func (u *Universe) SingleTypeOK(node int) bool {
	switch u.singleOK[node] {
	case 1:
		return true
	case 2:
		return false
	}
	root := u.Root(node)
	visited := []*State{}
	seen := map[*State]bool{}
	stack := []*State{root}
	seen[root] = true
	ok := true
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if u.stateOK[s] {
			continue // proven all-single on a previous traversal
		}
		if s.Single < 0 {
			ok = false
			break
		}
		visited = append(visited, s)
		u.expand(s)
		for _, tr := range s.trans {
			if !seen[tr.to] {
				seen[tr.to] = true
				stack = append(stack, tr.to)
			}
		}
	}
	if ok {
		// Everything reachable from each visited state was also visited
		// and single-typed, so all of them are proven all-single.
		for _, s := range visited {
			u.stateOK[s] = true
		}
		u.singleOK[node] = 1
		return true
	}
	u.singleOK[node] = 2
	return false
}

// DFA fully expands and returns the DFA rooted at {node}. After DFA has
// been called for every object of interest, the universe may be read
// concurrently.
func (u *Universe) DFA(node int) *State {
	root := u.Root(node)
	seen := map[*State]bool{root: true}
	stack := []*State{root}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		u.expand(s)
		for _, tr := range s.trans {
			if !seen[tr.to] {
				seen[tr.to] = true
				stack = append(stack, tr.to)
			}
		}
	}
	return root
}

// StateCount returns the number of distinct states reachable from s
// (the DFA size of one object).
func (u *Universe) StateCount(s *State) int {
	seen := map[*State]bool{s: true}
	stack := []*State{s}
	n := 0
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n++
		for _, tr := range x.trans {
			if !seen[tr.to] {
				seen[tr.to] = true
				stack = append(stack, tr.to)
			}
		}
	}
	return n
}
