package automata

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"mahjong/internal/fpg"
)

// buildFigure2 reconstructs the paper's Figure 2: two T-objects whose
// field graphs are structurally different NFAs but equivalent automata.
//
//	o1T --f--> o3U --h--> o7Y        o2T --f--> o4U --h--> o8Y
//	o1T --g--> o5X --k--> o9Y        o2T --g--> o6X --k--> o8Y
//	o3U --h--> o9Y  (both h-targets from o3)
func buildFigure2(t testing.TB) (*fpg.Graph, int, int) {
	if t != nil {
		t.Helper()
	}
	b := fpg.NewBuilder()
	o1 := b.AddObj("T")
	o2 := b.AddObj("T")
	o3 := b.AddObj("U")
	o4 := b.AddObj("U")
	o5 := b.AddObj("X")
	o6 := b.AddObj("X")
	o7 := b.AddObj("Y")
	o8 := b.AddObj("Y")
	o9 := b.AddObj("Y")
	b.AddEdge(o1, "f", o3)
	b.AddEdge(o1, "g", o5)
	b.AddEdge(o3, "h", o7)
	b.AddEdge(o3, "h", o9)
	b.AddEdge(o5, "k", o9)
	b.AddEdge(o2, "f", o4)
	b.AddEdge(o2, "g", o6)
	b.AddEdge(o4, "h", o8)
	b.AddEdge(o6, "k", o8)
	return b.Graph(), o1, o2
}

func TestFigure2Equivalent(t *testing.T) {
	g, o1, o2 := buildFigure2(t)
	u := NewUniverse(g)
	if !u.SingleTypeOK(o1) || !u.SingleTypeOK(o2) {
		t.Fatal("both T objects satisfy Condition 2")
	}
	d1, d2 := u.DFA(o1), u.DFA(o2)
	if !u.Equivalent(d1, d2) {
		t.Fatal("Figure 2 automata must be equivalent")
	}
	// Symmetry.
	if !u.Equivalent(d2, d1) {
		t.Fatal("equivalence not symmetric")
	}
}

func TestDifferentTypesNotEquivalent(t *testing.T) {
	b := fpg.NewBuilder()
	a1 := b.AddObj("A")
	a2 := b.AddObj("A")
	x := b.AddObj("X")
	y := b.AddObj("Y")
	b.AddEdge(a1, "f", x)
	b.AddEdge(a2, "f", y)
	g := b.Graph()
	u := NewUniverse(g)
	d1, d2 := u.DFA(a1), u.DFA(a2)
	if u.Equivalent(d1, d2) {
		t.Fatal("objects reaching X vs Y must differ")
	}
}

func TestMissingFieldVsNull(t *testing.T) {
	// a1.f -> null (edge to null node); a2 has no f at all. Per
	// Algorithm 4, a missing transition goes to q_error whose output
	// differs from the null type, so they are NOT equivalent.
	b := fpg.NewBuilder()
	a1 := b.AddObj("A")
	a2 := b.AddObj("A")
	b.AddEdge(a1, "f", fpg.NullNode)
	g := b.Graph()
	u := NewUniverse(g)
	d1, d2 := u.DFA(a1), u.DFA(a2)
	if u.Equivalent(d1, d2) {
		t.Fatal("null-field vs absent-field must be distinguished")
	}
}

func TestBothNullFieldsEquivalent(t *testing.T) {
	b := fpg.NewBuilder()
	a1 := b.AddObj("A")
	a2 := b.AddObj("A")
	b.AddEdge(a1, "f", fpg.NullNode)
	b.AddEdge(a2, "f", fpg.NullNode)
	g := b.Graph()
	u := NewUniverse(g)
	if !u.Equivalent(u.DFA(a1), u.DFA(a2)) {
		t.Fatal("identical null-field objects must merge")
	}
}

func TestSingleTypeCheckFails(t *testing.T) {
	// a.f -> {X, Y}: Condition 2 violated (Example 2.4 / Figure 3).
	b := fpg.NewBuilder()
	a := b.AddObj("A")
	x := b.AddObj("X")
	y := b.AddObj("Y")
	b.AddEdge(a, "f", x)
	b.AddEdge(a, "f", y)
	g := b.Graph()
	u := NewUniverse(g)
	if u.SingleTypeOK(a) {
		t.Fatal("multi-type f-targets must fail SINGLETYPE-CHECK")
	}
	// Memoized second call.
	if u.SingleTypeOK(a) {
		t.Fatal("memoized result changed")
	}
	// Same-type multi-target passes.
	b2 := fpg.NewBuilder()
	a2 := b2.AddObj("A")
	x1 := b2.AddObj("X")
	x2 := b2.AddObj("X")
	b2.AddEdge(a2, "f", x1)
	b2.AddEdge(a2, "f", x2)
	u2 := NewUniverse(b2.Graph())
	if !u2.SingleTypeOK(a2) {
		t.Fatal("same-type f-targets must pass")
	}
}

func TestCyclicAutomata(t *testing.T) {
	// Two rings of different length over the same type: a1 -> a2 -> a1
	// vs b1 -> b1. All states single-typed; automata are equivalent
	// (every path leads to type A forever).
	b := fpg.NewBuilder()
	a1 := b.AddObj("A")
	a2 := b.AddObj("A")
	c1 := b.AddObj("A")
	b.AddEdge(a1, "next", a2)
	b.AddEdge(a2, "next", a1)
	b.AddEdge(c1, "next", c1)
	g := b.Graph()
	u := NewUniverse(g)
	if !u.SingleTypeOK(a1) || !u.SingleTypeOK(c1) {
		t.Fatal("cyclic graphs must pass the check")
	}
	if !u.Equivalent(u.DFA(a1), u.DFA(c1)) {
		t.Fatal("rings of equal type must be equivalent")
	}
}

func TestSharingAcrossObjects(t *testing.T) {
	// Two objects pointing at the same subgraph share DFA states.
	b := fpg.NewBuilder()
	a1 := b.AddObj("A")
	a2 := b.AddObj("A")
	x := b.AddObj("X")
	y := b.AddObj("Y")
	b.AddEdge(a1, "f", x)
	b.AddEdge(a2, "f", x)
	b.AddEdge(x, "g", y)
	g := b.Graph()
	u := NewUniverse(g)
	u.DFA(a1)
	n1 := u.NumStates()
	u.DFA(a2)
	n2 := u.NumStates()
	// Only the new root {a2} is added; {x} and {y} are shared.
	if n2 != n1+1 {
		t.Fatalf("states grew %d -> %d, want +1", n1, n2)
	}
	// Hash-consing fast path: identical successor structure.
	if !u.Equivalent(u.Root(a1), u.Root(a2)) {
		t.Fatal("objects sharing all successors must be equivalent")
	}
}

func TestStateCount(t *testing.T) {
	g, o1, _ := buildFigure2(t)
	u := NewUniverse(g)
	d := u.DFA(o1)
	// States: {o1}, {o3}, {o5}, {o7,o9}, {o9}.
	if got := u.StateCount(d); got != 5 {
		t.Fatalf("StateCount=%d want 5", got)
	}
}

// refEquivalent is an independent reference implementation: explicit
// map-based subset construction and BFS over state pairs comparing type
// sets, with q_error modeled as a nil set.
func refEquivalent(g *fpg.Graph, a, b int) bool {
	type stateID = string
	canon := func(nodes []int) ([]int, stateID) {
		sort.Ints(nodes)
		out := nodes[:0]
		for i, n := range nodes {
			if i == 0 || n != nodes[i-1] {
				out = append(out, n)
			}
		}
		key := ""
		for _, n := range out {
			key += "," + string(rune(n+33))
		}
		return out, key
	}
	typesOf := func(nodes []int) []int {
		seen := map[int]bool{}
		var ts []int
		for _, n := range nodes {
			t := g.TypeOf[n]
			if !seen[t] {
				seen[t] = true
				ts = append(ts, t)
			}
		}
		sort.Ints(ts)
		return ts
	}
	eqInts := func(x, y []int) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	next := func(nodes []int, f int) []int {
		var out []int
		for _, n := range nodes {
			out = append(out, g.Succ(n, f)...)
		}
		return out
	}
	fieldsOf := func(nodes []int) []int {
		seen := map[int]bool{}
		var fs []int
		for _, n := range nodes {
			for _, f := range g.FieldsOf(n) {
				if !seen[f] {
					seen[f] = true
					fs = append(fs, f)
				}
			}
		}
		sort.Ints(fs)
		return fs
	}
	type pairKey struct{ a, b stateID }
	seen := map[pairKey]bool{}
	type pair struct{ x, y []int }
	sx, kx := canon([]int{a})
	sy, ky := canon([]int{b})
	queue := []pair{{sx, sy}}
	seen[pairKey{kx, ky}] = true
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		if !eqInts(typesOf(p.x), typesOf(p.y)) {
			return false
		}
		fs := map[int]bool{}
		for _, f := range fieldsOf(p.x) {
			fs[f] = true
		}
		for _, f := range fieldsOf(p.y) {
			fs[f] = true
		}
		var fss []int
		for f := range fs {
			fss = append(fss, f)
		}
		sort.Ints(fss)
		for _, f := range fss {
			nx, ny := next(p.x, f), next(p.y, f)
			// null's implicit self-loop only fires when the null node is a
			// member and the field exists somewhere; Succ handles that.
			if (len(nx) == 0) != (len(ny) == 0) {
				return false // one side hits q_error
			}
			if len(nx) == 0 {
				continue
			}
			cx, kx := canon(nx)
			cy, ky := canon(ny)
			pk := pairKey{kx, ky}
			if !seen[pk] {
				seen[pk] = true
				queue = append(queue, pair{cx, cy})
			}
		}
	}
	return true
}

// randomGraph builds a random FPG with nTypes types, nObjs objects,
// nFields field names and random edges (possibly to null).
func randomGraph(rng *rand.Rand) (*fpg.Graph, []int) {
	b := fpg.NewBuilder()
	nTypes := 1 + rng.Intn(4)
	nObjs := 2 + rng.Intn(10)
	nFields := 1 + rng.Intn(4)
	typeNames := make([]string, nTypes)
	for i := range typeNames {
		typeNames[i] = string(rune('A' + i))
	}
	fieldNames := make([]string, nFields)
	for i := range fieldNames {
		fieldNames[i] = string(rune('f' + i))
	}
	nodes := make([]int, nObjs)
	for i := range nodes {
		nodes[i] = b.AddObj(typeNames[rng.Intn(nTypes)])
	}
	nEdges := rng.Intn(3 * nObjs)
	for i := 0; i < nEdges; i++ {
		from := nodes[rng.Intn(nObjs)]
		to := fpg.NullNode
		if rng.Intn(8) != 0 {
			to = nodes[rng.Intn(nObjs)]
		}
		b.AddEdge(from, fieldNames[rng.Intn(nFields)], to)
	}
	return b.Graph(), nodes
}

// TestQuickEquivalenceVsReference cross-checks the shared Hopcroft–Karp
// implementation against the independent reference on random graphs.
func TestQuickEquivalenceVsReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, nodes := randomGraph(rng)
		u := NewUniverse(g)
		for _, n := range nodes {
			u.DFA(n)
		}
		for i := 0; i < len(nodes); i++ {
			for j := i; j < len(nodes); j++ {
				a, b := nodes[i], nodes[j]
				got := u.Equivalent(u.Root(a), u.Root(b))
				want := refEquivalent(g, a, b)
				if got != want {
					t.Logf("seed=%d a=%d b=%d got=%v want=%v", seed, a, b, got, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEquivalenceRelation checks reflexivity, symmetry and
// transitivity of the equivalence on random graphs.
func TestQuickEquivalenceRelation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, nodes := randomGraph(rng)
		u := NewUniverse(g)
		for _, n := range nodes {
			u.DFA(n)
		}
		eq := func(a, b int) bool { return u.Equivalent(u.Root(a), u.Root(b)) }
		for _, n := range nodes {
			if !eq(n, n) {
				return false
			}
		}
		for i := 0; i < 12; i++ {
			a := nodes[rng.Intn(len(nodes))]
			b := nodes[rng.Intn(len(nodes))]
			c := nodes[rng.Intn(len(nodes))]
			if eq(a, b) != eq(b, a) {
				return false
			}
			if eq(a, b) && eq(b, c) && !eq(a, c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSingleTypeVsDFA: SINGLETYPE-CHECK must agree with directly
// inspecting all reachable DFA state outputs.
func TestQuickSingleTypeVsDFA(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, nodes := randomGraph(rng)
		for _, n := range nodes {
			u1 := NewUniverse(g)
			got := u1.SingleTypeOK(n)
			u2 := NewUniverse(g)
			root := u2.DFA(n)
			want := allSingle(u2, root)
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func allSingle(u *Universe, root *State) bool {
	seen := map[*State]bool{root: true}
	stack := []*State{root}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if s.Single < 0 {
			return false
		}
		for _, f := range s.Fields() {
			n := s.Next(f)
			if !seen[n] {
				seen[n] = true
				stack = append(stack, n)
			}
		}
	}
	return true
}
