package automata

import (
	"runtime/debug"

	"mahjong/internal/failure"
	"mahjong/internal/faultinject"
)

// Equivalent implements Algorithm 4: the Hopcroft–Karp near-linear DFA
// equivalence check, adapted to 6-tuple sequential automata. Two DFAs
// are equivalent iff every pair of states merged by the check has the
// same output (type set); missing transitions are routed to a
// distinguished error state with its own output.
//
// Both roots must be fully expanded (Universe.DFA). The check allocates
// only local structures — a sparse union-find over the states it
// actually touches, which is what keeps each check near-linear in the
// smaller automaton rather than in the whole shared universe — so it is
// safe to run concurrently on a read-only universe.
func (u *Universe) Equivalent(a, b *State) bool {
	// Injection seam for the fault matrix: this code runs inside the heap
	// modeler's parallel merge workers, so a bug here is exactly the
	// "panic in a worker goroutine" case the pipeline's failure isolation
	// must survive. The pre-typed stage keeps "automata.equiv" (not the
	// enclosing stage) visible in per-stage failure counters.
	if err := faultinject.Fire(faultinject.StageEquiv); err != nil {
		panic(&failure.InternalError{Stage: faultinject.StageEquiv, Value: err, Stack: debug.Stack()})
	}
	if a == b {
		return true // hash-consing fast path: identical automata share the root
	}
	if !sameTypes(a, b) {
		return false
	}
	uf := sparseUF{parent: make(map[int]int, 16)}
	type pair struct{ p, q *State }
	uf.union(a.ID, b.ID)
	stack := []pair{{a, b}}
	for len(stack) > 0 {
		top := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, f := range unionFields(top.p, top.q) {
			n1, n2 := top.p.Next(f), top.q.Next(f)
			// A transition missing on one side goes to q_error; q_error's
			// output differs from every real state's, so the pair is
			// inequivalent unless both are missing.
			if n1 == nil || n2 == nil {
				if n1 != n2 {
					return false
				}
				continue
			}
			r1, r2 := uf.find(n1.ID), uf.find(n2.ID)
			if r1 == r2 {
				continue
			}
			// The modified output check (line 19 of Algorithm 4), applied
			// on the fly: states can only be merged when their type sets
			// agree.
			if !sameTypes(n1, n2) {
				return false
			}
			uf.union(r1, r2)
			stack = append(stack, pair{n1, n2})
		}
	}
	return true
}

// sparseUF is a map-backed union-find with path halving, sized by the
// states a single equivalence check visits (usually a handful) rather
// than the whole universe.
type sparseUF struct {
	parent map[int]int
}

func (s *sparseUF) find(x int) int {
	p, ok := s.parent[x]
	if !ok {
		s.parent[x] = x
		return x
	}
	for p != x {
		gp, ok := s.parent[p]
		if !ok {
			gp = p
		}
		s.parent[x] = gp
		x, p = p, gp
	}
	return x
}

func (s *sparseUF) union(x, y int) {
	rx, ry := s.find(x), s.find(y)
	if rx != ry {
		s.parent[ry] = rx
	}
}

// sameTypes compares the output (type) sets of two states.
func sameTypes(a, b *State) bool {
	if len(a.Types) != len(b.Types) {
		return false
	}
	for i := range a.Types {
		if a.Types[i] != b.Types[i] {
			return false
		}
	}
	return true
}

// unionFields returns the sorted union of the transition alphabets of p
// and q (Σ1 ∪ Σ2 in Algorithm 4).
func unionFields(p, q *State) []int32 {
	pf, qf := p.Fields(), q.Fields()
	out := make([]int32, 0, len(pf)+len(qf))
	i, j := 0, 0
	for i < len(pf) && j < len(qf) {
		switch {
		case pf[i] < qf[j]:
			out = append(out, pf[i])
			i++
		case pf[i] > qf[j]:
			out = append(out, qf[j])
			j++
		default:
			out = append(out, pf[i])
			i++
			j++
		}
	}
	out = append(out, pf[i:]...)
	out = append(out, qf[j:]...)
	return out
}
