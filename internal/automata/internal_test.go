package automata

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mahjong/internal/fpg"
	"mahjong/internal/unionfind"
)

func TestSparseUF(t *testing.T) {
	uf := sparseUF{parent: map[int]int{}}
	if uf.find(7) != 7 {
		t.Fatal("fresh element should be its own root")
	}
	uf.union(1, 2)
	uf.union(2, 3)
	if uf.find(1) != uf.find(3) {
		t.Fatal("transitive union broken")
	}
	if uf.find(1) == uf.find(9) {
		t.Fatal("disjoint elements merged")
	}
	uf.union(1, 1) // self-union is a no-op
	if uf.find(1) != uf.find(2) {
		t.Fatal("self-union corrupted the set")
	}
}

// TestQuickSparseVsDense: the sparse union-find must agree with the
// dense Forest on arbitrary operation sequences.
func TestQuickSparseVsDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(30)
		sp := sparseUF{parent: map[int]int{}}
		dn := unionfind.New(n)
		for i := 0; i < 60; i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if rng.Intn(2) == 0 {
				sp.union(a, b)
				dn.Union(a, b)
			} else if (sp.find(a) == sp.find(b)) != dn.Same(a, b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestUnionFields(t *testing.T) {
	b := fpg.NewBuilder()
	a1 := b.AddObj("A")
	a2 := b.AddObj("A")
	x := b.AddObj("X")
	b.AddEdge(a1, "f", x)
	b.AddEdge(a1, "h", x)
	b.AddEdge(a2, "g", x)
	b.AddEdge(a2, "h", x)
	g := b.Graph()
	u := NewUniverse(g)
	s1, s2 := u.DFA(a1), u.DFA(a2)
	got := unionFields(s1, s2)
	// Fields f, h on a1 and g, h on a2 → union of 3 distinct fields.
	if len(got) != 3 {
		t.Fatalf("unionFields=%v want 3 fields", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatal("unionFields not sorted/deduped")
		}
	}
	// Symmetric.
	rev := unionFields(s2, s1)
	if len(rev) != len(got) {
		t.Fatal("unionFields not symmetric")
	}
}

func TestStateAccessors(t *testing.T) {
	b := fpg.NewBuilder()
	a := b.AddObj("A")
	x := b.AddObj("X")
	b.AddEdge(a, "f", x)
	g := b.Graph()
	u := NewUniverse(g)
	root := u.DFA(a)
	if root.Single < 0 {
		t.Fatal("singleton root should have a single type")
	}
	fs := root.Fields()
	if len(fs) != 1 {
		t.Fatalf("fields=%v", fs)
	}
	next := root.Next(fs[0])
	if next == nil || next.Single < 0 {
		t.Fatal("transition missing")
	}
	if root.Next(999) != nil {
		t.Fatal("absent transition should be nil (q_error)")
	}
	if u.Graph() != g {
		t.Fatal("Graph accessor broken")
	}
}
