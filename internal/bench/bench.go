// Package bench is the experiment harness: it prepares benchmark
// programs (generate → pre-analysis → FPG → Mahjong heap modeling),
// runs (program × analysis × heap abstraction) cells under a
// deterministic budget, and formats every table and figure of the
// paper's evaluation (§6): Table 1, Table 2, Figure 8, Figure 9, the
// pre-analysis statistics, and the §2.1 pmd motivation numbers.
package bench

import (
	"fmt"
	"time"

	"mahjong/internal/clients"
	"mahjong/internal/core"
	"mahjong/internal/fpg"
	"mahjong/internal/lang"
	"mahjong/internal/pta"
	"mahjong/internal/synth"
)

// DefaultBudget is the deterministic work cap standing in for the
// paper's 5-hour wall-clock budget. Cells exceeding it are reported
// unscalable, exactly like the paper's "—" entries.
const DefaultBudget int64 = 160_000

// HeapKind selects the heap abstraction of a cell.
type HeapKind string

const (
	HeapAllocSite HeapKind = "alloc-site"
	HeapAllocType HeapKind = "alloc-type"
	HeapMahjong   HeapKind = "mahjong"
)

// Analysis is one context-sensitivity configuration of Table 2.
type Analysis struct {
	Name string
	Make func() pta.Selector
}

// Analyses returns the paper's analysis lineup: the context-insensitive
// baseline plus the five context-sensitive analyses of §6.2.1.
func Analyses() []Analysis {
	return []Analysis{
		{"ci", func() pta.Selector { return pta.CI{} }},
		{"2cs", func() pta.Selector { return pta.KCFA{K: 2} }},
		{"2type", func() pta.Selector { return pta.KType{K: 2} }},
		{"3type", func() pta.Selector { return pta.KType{K: 3} }},
		{"2obj", func() pta.Selector { return pta.KObj{K: 2} }},
		{"3obj", func() pta.Selector { return pta.KObj{K: 3} }},
	}
}

// AnalysisByName returns the named analysis configuration.
func AnalysisByName(name string) (Analysis, error) {
	for _, a := range Analyses() {
		if a.Name == name {
			return a, nil
		}
	}
	return Analysis{}, fmt.Errorf("bench: unknown analysis %q", name)
}

// Program bundles everything the harness precomputes per benchmark.
type Program struct {
	Name string
	Prog *lang.Program

	Pre     *pta.Result
	Graph   *fpg.Graph
	Mahjong *core.Result

	PreTime     time.Duration // ci pre-analysis
	FPGTime     time.Duration // FPG construction
	MahjongTime time.Duration // heap modeling (Algorithm 1)

	// NFA size statistics over FPG objects (§6.1.1).
	AvgNFASize float64
	MaxNFASize int
}

// Prepare generates the named benchmark and runs the Mahjong
// pre-analysis pipeline on it.
func Prepare(name string) (*Program, error) {
	prof, err := synth.ProfileByName(name)
	if err != nil {
		return nil, err
	}
	prog, err := synth.Generate(prof)
	if err != nil {
		return nil, err
	}
	return PrepareProgram(name, prog)
}

// PipelineResult bundles one run of the §6.1.1 pre-analysis pipeline:
// the context-insensitive Andersen solve, the field points-to graph,
// and the Mahjong heap modeling, with per-stage wall times.
type PipelineResult struct {
	Pre     *pta.Result
	Graph   *fpg.Graph
	Mahjong *core.Result

	PreTime, FPGTime, ModelTime time.Duration
}

// Pipeline runs the full pre-analysis pipeline on prog. It is the one
// shared definition of "the pipeline" for the harness and the root
// benchmarks — PrepareProgram and BenchmarkPreAnalysis both use it, so
// what the pre-analysis costs cannot drift between the two.
func Pipeline(prog *lang.Program) (*PipelineResult, error) {
	t0 := time.Now()
	pre, err := pta.Solve(prog, pta.Options{})
	if err != nil {
		return nil, fmt.Errorf("pre-analysis: %w", err)
	}
	if pre.Aborted {
		return nil, fmt.Errorf("pre-analysis aborted")
	}
	r := &PipelineResult{Pre: pre, PreTime: time.Since(t0)}

	t1 := time.Now()
	r.Graph = fpg.Build(pre, fpg.Options{})
	r.FPGTime = time.Since(t1)

	r.Mahjong = core.Build(r.Graph, core.Options{})
	r.ModelTime = r.Mahjong.Duration
	return r, nil
}

// PrepareProgram runs the pipeline on an arbitrary program (used by the
// CLI on parsed IR files).
func PrepareProgram(name string, prog *lang.Program) (*Program, error) {
	p := &Program{Name: name, Prog: prog}
	pr, err := Pipeline(prog)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	p.Pre = pr.Pre
	p.PreTime = pr.PreTime
	p.Graph = pr.Graph
	p.FPGTime = pr.FPGTime
	p.Mahjong = pr.Mahjong
	p.MahjongTime = pr.ModelTime

	total, max := 0, 0
	for id := 1; id < len(p.Graph.Objs); id++ {
		n := p.Graph.NFASize(id)
		total += n
		if n > max {
			max = n
		}
	}
	if p.Graph.NumObjects() > 0 {
		p.AvgNFASize = float64(total) / float64(p.Graph.NumObjects())
	}
	p.MaxNFASize = max
	return p, nil
}

// Cell is one measured (program, analysis, heap) point of Table 2.
type Cell struct {
	Program  string
	Analysis string
	Heap     HeapKind

	Scalable bool
	Time     time.Duration
	Work     int64
	CSObjs   int
	Metrics  clients.Metrics
}

// heapModel instantiates a fresh heap model of the requested kind.
func (p *Program) heapModel(kind HeapKind) pta.HeapModel {
	switch kind {
	case HeapAllocSite:
		return pta.NewAllocSiteModel()
	case HeapAllocType:
		return pta.NewAllocTypeModel()
	case HeapMahjong:
		return pta.NewMergedSiteModel(p.Mahjong.MOM)
	default:
		panic("bench: unknown heap kind " + string(kind))
	}
}

// RunCell runs one analysis cell under the given work budget
// (0 = DefaultBudget).
func (p *Program) RunCell(a Analysis, heap HeapKind, budget int64) Cell {
	if budget == 0 {
		budget = DefaultBudget
	}
	r, err := pta.Solve(p.Prog, pta.Options{
		Selector: a.Make(),
		Heap:     p.heapModel(heap),
		Budget:   pta.Budget{Work: budget},
	})
	if err != nil {
		panic("bench: " + err.Error()) // programs are pre-validated
	}
	c := Cell{
		Program:  p.Name,
		Analysis: a.Name,
		Heap:     heap,
		Scalable: !r.Aborted,
		Time:     r.Duration,
		Work:     r.Work,
		CSObjs:   r.NumCSObjs(),
	}
	if c.Scalable {
		c.Metrics = clients.Evaluate(r)
	}
	return c
}
