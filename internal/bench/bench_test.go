package bench

import (
	"strings"
	"testing"

	"mahjong/internal/clients"
)

// prepLuindex caches the smallest benchmark across tests in this file.
var prepCache = map[string]*Program{}

func prep(t *testing.T, name string) *Program {
	t.Helper()
	if p, ok := prepCache[name]; ok {
		return p
	}
	p, err := Prepare(name)
	if err != nil {
		t.Fatal(err)
	}
	prepCache[name] = p
	return p
}

func TestPrepareSmallest(t *testing.T) {
	p := prep(t, "luindex")
	if p.Graph.NumObjects() == 0 || p.Mahjong.NumMerged == 0 {
		t.Fatal("pipeline produced empty results")
	}
	if p.Mahjong.NumMerged >= p.Mahjong.NumObjects {
		t.Fatal("no merging happened")
	}
	if p.AvgNFASize <= 1 || p.MaxNFASize < int(p.AvgNFASize) {
		t.Fatalf("NFA stats implausible: avg=%.1f max=%d", p.AvgNFASize, p.MaxNFASize)
	}
}

func TestPrepareUnknown(t *testing.T) {
	if _, err := Prepare("nope"); err == nil {
		t.Fatal("want error")
	}
}

func TestAnalysisLineup(t *testing.T) {
	names := []string{"ci", "2cs", "2type", "3type", "2obj", "3obj"}
	as := Analyses()
	if len(as) != len(names) {
		t.Fatalf("analyses=%d", len(as))
	}
	for i, a := range as {
		if a.Name != names[i] {
			t.Fatalf("analysis %d = %s want %s", i, a.Name, names[i])
		}
		if a.Make().Name() != a.Name && a.Name != "ci" {
			t.Fatalf("selector name mismatch for %s", a.Name)
		}
	}
	if _, err := AnalysisByName("3obj"); err != nil {
		t.Fatal(err)
	}
	if _, err := AnalysisByName("9cs"); err == nil {
		t.Fatal("want error for unknown analysis")
	}
}

// TestCellPrecisionShape checks the Table 2 invariants on luindex: all
// cells scalable, M-A equal to A on the paper's type-dependent clients
// for every analysis, the identity-dependent escape client no more
// precise under merging, and alloc-type strictly less precise.
func TestCellPrecisionShape(t *testing.T) {
	// The near-lossless claim covers the type-dependent clients only;
	// identity-dependent metrics (escape, nullness, taint flow) may
	// legitimately coarsen under merging and are checked by ordering.
	typeDependent := func(m clients.Metrics) [4]int {
		return [4]int{m.CallGraphEdges, m.PolyCallSites, m.MayFailCasts, m.Reachable}
	}
	p := prep(t, "luindex")
	for _, a := range Analyses() {
		base := p.RunCell(a, HeapAllocSite, 0)
		mj := p.RunCell(a, HeapMahjong, 0)
		if !base.Scalable || !mj.Scalable {
			t.Fatalf("%s not scalable on luindex", a.Name)
		}
		if typeDependent(base.Metrics) != typeDependent(mj.Metrics) {
			t.Errorf("%s: type-dependent metrics differ: A=%+v M=%+v", a.Name, base.Metrics, mj.Metrics)
		}
		if base.Metrics.EscapingSites > mj.Metrics.EscapingSites ||
			base.Metrics.TaintedSinks > mj.Metrics.TaintedSinks ||
			mj.Metrics.StackAllocSites > base.Metrics.StackAllocSites {
			t.Errorf("%s: merged heap more precise than alloc-site on identity clients: A=%+v M=%+v",
				a.Name, base.Metrics, mj.Metrics)
		}
		if mj.Work > base.Work {
			t.Errorf("%s: M-A did more work (%d) than A (%d)", a.Name, mj.Work, base.Work)
		}
	}
	a3, _ := AnalysisByName("3obj")
	ty := p.RunCell(a3, HeapAllocType, 0)
	mj := p.RunCell(a3, HeapMahjong, 0)
	if ty.Metrics.MayFailCasts <= mj.Metrics.MayFailCasts {
		t.Errorf("alloc-type casts %d should exceed mahjong %d", ty.Metrics.MayFailCasts, mj.Metrics.MayFailCasts)
	}
	if ty.Metrics.PolyCallSites < mj.Metrics.PolyCallSites {
		t.Errorf("alloc-type poly sites below mahjong")
	}
}

// TestScalabilityClassification pins the paper's qualitative Table 2
// shape on one representative of each tier (kept to three programs so
// the test stays fast).
func TestScalabilityClassification(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: prepares three mid-size programs")
	}
	a3, _ := AnalysisByName("3obj")

	// Small tier: both variants scalable.
	small := prep(t, "luindex")
	if c := small.RunCell(a3, HeapAllocSite, 0); !c.Scalable {
		t.Error("luindex baseline 3obj should be scalable")
	}

	// Mid tier: baseline unscalable, Mahjong scalable.
	mid := prep(t, "checkstyle")
	if c := mid.RunCell(a3, HeapAllocSite, 0); c.Scalable {
		t.Error("checkstyle baseline 3obj should exceed the budget")
	}
	if c := mid.RunCell(a3, HeapMahjong, 0); !c.Scalable {
		t.Error("checkstyle M-3obj should be scalable")
	}

	// Big tier: both unscalable (DiverseDocs).
	big := prep(t, "JPC")
	if c := big.RunCell(a3, HeapAllocSite, 0); c.Scalable {
		t.Error("JPC baseline 3obj should exceed the budget")
	}
	if c := big.RunCell(a3, HeapMahjong, 0); c.Scalable {
		t.Error("JPC M-3obj should exceed the budget (diverse docs)")
	}
}

func TestTablesRender(t *testing.T) {
	s := NewSuite()
	s.Programs = []string{"luindex"}
	s.Repeat = 1
	var sb strings.Builder

	if err := s.Table2(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Table 2", "luindex", "3obj", "speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2 missing %q", want)
		}
	}

	sb.Reset()
	if err := s.Fig8(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "reduction") {
		t.Error("Fig8 missing reduction column")
	}

	sb.Reset()
	if err := s.Fig9(&sb, "luindex"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "class size") {
		t.Error("Fig9 missing header")
	}

	sb.Reset()
	if err := s.Table1(&sb, "luindex", 6); err != nil {
		t.Fatal(err)
	}
	table1 := sb.String()
	if !strings.Contains(table1, "java.lang.StringBuilder") && !strings.Contains(table1, "java.lang.String") {
		t.Errorf("Table1 should feature string machinery:\n%s", table1)
	}

	sb.Reset()
	if err := s.PreStats(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "avgNFA") {
		t.Error("PreStats missing NFA stats")
	}
}

func TestFig9Shape(t *testing.T) {
	// The class-size distribution must have many singletons and at
	// least one large class (the Figure 9 shape).
	p := prep(t, "luindex")
	h := p.Mahjong.SizeHistogram()
	if len(h) < 2 {
		t.Fatalf("degenerate histogram: %v", h)
	}
	if h[0][0] != 1 || h[0][1] < 10 {
		t.Errorf("expected a heavy head of singletons, got %v", h[0])
	}
	last := h[len(h)-1]
	if last[0] < 5 {
		t.Errorf("expected at least one large class, biggest size=%d", last[0])
	}
}

func TestRemark(t *testing.T) {
	p := prep(t, "luindex")
	// The largest StringBuilder class should be remarked with char[].
	for _, c := range p.Mahjong.Classes {
		if c.Type.Name == "java.lang.StringBuilder" && c.Size() > 1 {
			if got := remark(p, c); got != "char[]" {
				t.Fatalf("StringBuilder remark=%q want char[]", got)
			}
			return
		}
	}
	t.Fatal("no merged StringBuilder class found")
}
