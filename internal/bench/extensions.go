package bench

import (
	"fmt"
	"io"

	"mahjong/internal/cha"
)

// CHAComparison writes an extension table (not in the paper): the
// classic hierarchy-based call-graph constructions (CHA, RTA) against
// the context-insensitive and Mahjong-based 2-object-sensitive
// points-to call graphs, quantifying how much precision points-to
// analysis buys for call-graph clients.
func (s *Suite) CHAComparison(w io.Writer) error {
	fmt.Fprintf(w, "Extension: hierarchy-based vs points-to call graphs\n\n")
	fmt.Fprintf(w, "%-11s | %9s %9s %9s %9s | %7s %7s %7s %7s\n",
		"program", "CHA", "RTA", "ci", "M-2obj", "CHApoly", "RTApoly", "ci poly", "M poly")
	for _, name := range s.Programs {
		p, err := s.Prep(name)
		if err != nil {
			return err
		}
		chaG := cha.CHA(p.Prog)
		rtaG := cha.RTA(p.Prog)
		ciCell := s.runCell(p, mustAnalysis("ci"), HeapAllocSite)
		objCell := s.runCell(p, mustAnalysis("2obj"), HeapMahjong)
		fmt.Fprintf(w, "%-11s | %9d %9d %9s %9s | %7d %7d %7s %7s\n",
			name,
			chaG.NumEdges(), rtaG.NumEdges(),
			cellInt(ciCell, ciCell.Metrics.CallGraphEdges), cellInt(objCell, objCell.Metrics.CallGraphEdges),
			chaG.PolyCallSites(), rtaG.PolyCallSites(),
			cellInt(ciCell, ciCell.Metrics.PolyCallSites), cellInt(objCell, objCell.Metrics.PolyCallSites))
	}
	return nil
}

func mustAnalysis(name string) Analysis {
	a, err := AnalysisByName(name)
	if err != nil {
		panic(err)
	}
	return a
}
