package bench

import (
	"strings"
	"testing"
)

func TestCHAComparisonRenders(t *testing.T) {
	s := NewSuite()
	s.Programs = []string{"luindex"}
	s.Repeat = 1
	var sb strings.Builder
	if err := s.CHAComparison(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"CHA", "RTA", "M-2obj", "luindex"} {
		if !strings.Contains(out, want) {
			t.Errorf("CHAComparison missing %q:\n%s", want, out)
		}
	}
}

func TestCHAComparisonUnknownProgram(t *testing.T) {
	s := NewSuite()
	s.Programs = []string{"nope"}
	var sb strings.Builder
	if err := s.CHAComparison(&sb); err == nil {
		t.Fatal("want error for unknown program")
	}
}
