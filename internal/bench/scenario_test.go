// Searched-corpus cells for the experiment harness. External test
// package: scenario (transitively) imports the root package, which the
// bench package must not import.
package bench_test

import (
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"mahjong/internal/bench"
	"mahjong/internal/scenario"
)

// TestScenarioCorpusCells runs committed adversarial corpus programs as
// harness cells: the pipeline must prepare them, both heap abstractions
// must scale, Mahjong must not use more abstract objects than the
// allocation-site baseline, and the monotone client metrics must keep
// their over-approximation ordering.
func TestScenarioCorpusCells(t *testing.T) {
	gens, _, err := scenario.LoadCorpus(filepath.Join("..", "..", "testdata", "corpus"))
	if err != nil {
		t.Fatal(err)
	}
	ci, err := bench.AnalysisByName("ci")
	if err != nil {
		t.Fatal(err)
	}
	merged := 0
	for _, g := range gens {
		if g.Entry.Name != "combined-0" && g.Entry.Name != "fielddepth-0" && g.Entry.Name != "nearmiss-0" {
			continue
		}
		p, err := bench.PrepareProgram(g.Entry.Name, g.Prog)
		if err != nil {
			t.Fatalf("%s: %v", g.Entry.Name, err)
		}
		base := p.RunCell(ci, bench.HeapAllocSite, 0)
		mahj := p.RunCell(ci, bench.HeapMahjong, 0)
		if !base.Scalable || !mahj.Scalable {
			t.Fatalf("%s: cell unscalable (base=%v mahjong=%v)", g.Entry.Name, base.Scalable, mahj.Scalable)
		}
		if mahj.CSObjs > base.CSObjs {
			t.Errorf("%s: mahjong uses more objects (%d) than alloc-site (%d)", g.Entry.Name, mahj.CSObjs, base.CSObjs)
		}
		if mahj.CSObjs < base.CSObjs {
			merged++
		}
		if base.Metrics.CallGraphEdges > mahj.Metrics.CallGraphEdges ||
			base.Metrics.EscapingSites > mahj.Metrics.EscapingSites ||
			base.Metrics.TaintedSinks > mahj.Metrics.TaintedSinks {
			t.Errorf("%s: merged heap lost soundness on monotone metrics: base %+v, mahjong %+v",
				g.Entry.Name, base.Metrics, mahj.Metrics)
		}
	}
	if merged == 0 {
		t.Error("no corpus program caused any merging — the corpus is not exercising the abstraction")
	}
}

// TestScenarioScaleTier runs a 10x-and-up searched program through the
// full pipeline. Off by default (it is the slow tier); enable with e.g.
// MAHJONG_SCALETIER=10.
func TestScenarioScaleTier(t *testing.T) {
	scaleEnv := os.Getenv("MAHJONG_SCALETIER")
	if scaleEnv == "" {
		t.Skip("set MAHJONG_SCALETIER=10 (or higher) to run the scale tier")
	}
	scale, err := strconv.Atoi(scaleEnv)
	if err != nil || scale < 10 {
		t.Fatalf("MAHJONG_SCALETIER must be an integer >= 10, got %q", scaleEnv)
	}
	w := scenario.Want{FieldDepth: 6, PolyContainers: 2, NearMissFamilies: 2, CallGraphFanout: 12}
	f, err := scenario.Search(w, scenario.Options{Seed: 8, Scale: scale})
	if err != nil {
		t.Fatal(err)
	}
	p, err := bench.PrepareProgram("scaletier", f.Prog)
	if err != nil {
		t.Fatal(err)
	}
	ci, err := bench.AnalysisByName("ci")
	if err != nil {
		t.Fatal(err)
	}
	cell := p.RunCell(ci, bench.HeapMahjong, 10*bench.DefaultBudget)
	if !cell.Scalable {
		t.Fatalf("scale-%d program unscalable at 10x budget (%d work units)", scale, cell.Work)
	}
	t.Logf("scale %d: %d stmts, %d cs-objects, %d work units", scale, f.Est.Stmts, cell.CSObjs, cell.Work)
}
