package bench

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"

	"mahjong/internal/clients"
	"mahjong/internal/core"
	"mahjong/internal/fpg"
	"mahjong/internal/lang"
	"mahjong/internal/pta"
	"mahjong/internal/synth"
)

// The solver's hot-path optimizations (copy-cycle collapsing,
// class-indexed filter masks, pooled delta sets, object renumbering,
// and the sharded parallel engine) must be invisible in every result
// the rest of the pipeline consumes. This file runs alternative solver
// configurations over real benchmark programs and diffs everything
// downstream: per-variable points-to sets, client metrics, and the
// Mahjong merged-object counts.
//
// A cheap always-on check covers one program against the NoOpt and a
// small parallel configuration; the full sweep — every benchmark, the
// parallel-vs-sequential axis at workers ∈ {1, 2, GOMAXPROCS} with
// renumbering — is slow and runs only when MAHJONG_SLOWCHECK is set:
//
//	MAHJONG_SLOWCHECK=1 go test ./internal/bench -run SolverEquivalence

// variant is one solver configuration checked against the default.
type variant struct {
	name string
	opts pta.Options
}

func quickVariants() []variant {
	return []variant{
		{"noopt", pta.Options{NoOpt: true}},
		{"workers=2+renumber", pta.Options{Parallel: 2, Renumber: true}},
	}
}

func fullVariants() []variant {
	return append(quickVariants(),
		variant{"workers=1", pta.Options{Parallel: 1}},
		variant{"workers=2", pta.Options{Parallel: 2}},
		variant{fmt.Sprintf("workers=%d", runtime.GOMAXPROCS(0)), pta.Options{Parallel: -1}},
		variant{"renumber", pta.Options{Renumber: true}},
	)
}

func TestSolverEquivalenceLuindex(t *testing.T) {
	checkSolverEquivalence(t, "luindex", quickVariants())
}

func TestSolverEquivalenceAllBenchmarks(t *testing.T) {
	if os.Getenv("MAHJONG_SLOWCHECK") == "" {
		t.Skip("set MAHJONG_SLOWCHECK=1 to run the full A/B sweep")
	}
	for _, name := range synth.ProfileNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			checkSolverEquivalence(t, name, fullVariants())
		})
	}
}

// TestParallelOwnershipHandoffRace is the runtime half of the
// shardowner/sendmove static rules. The sharded engine's owner-writes
// discipline (only a shard's worker writes its //lint:owner-writes
// fields) and the move-on-handoff of delta bitsets (a set pushed to the
// drain barrier's //lint:adopts field is never touched again by the
// sender) are exactly the invariants those analyzers enforce on the
// source; this test puts their runtime counterparts under the race
// detector at GOMAXPROCS=4 — a width between the dedicated CI shards
// at 2 and 8 — so the static rules and the race detector gate the same
// property from both sides. Without -race it degrades to a plain
// parallel-vs-sequential equivalence pass.
func TestParallelOwnershipHandoffRace(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	prof, err := synth.ProfileByName("luindex")
	if err != nil {
		t.Fatalf("profile luindex: %v", err)
	}
	prog, err := synth.Generate(prof)
	if err != nil {
		t.Fatalf("generate luindex: %v", err)
	}
	opt, err := pta.Solve(prog, pta.Options{})
	if err != nil {
		t.Fatalf("sequential Solve: %v", err)
	}
	// Two repetitions vary the goroutine interleavings the detector
	// observes; renumbering changes which objects land in which shard,
	// so both layouts exercise the cross-shard handoff queues.
	for iter := 0; iter < 2; iter++ {
		for _, v := range []variant{
			{"workers=4", pta.Options{Parallel: 4}},
			{"workers=4+renumber", pta.Options{Parallel: 4, Renumber: true}},
		} {
			v := v
			t.Run(fmt.Sprintf("iter%d/%s", iter, v.name), func(t *testing.T) {
				checkVariant(t, "luindex", prog, opt, v)
			})
		}
	}
}

func checkSolverEquivalence(t *testing.T, name string, variants []variant) {
	t.Helper()
	prof, err := synth.ProfileByName(name)
	if err != nil {
		t.Fatalf("profile %s: %v", name, err)
	}
	prog, err := synth.Generate(prof)
	if err != nil {
		t.Fatalf("generate %s: %v", name, err)
	}
	opt, err := pta.Solve(prog, pta.Options{})
	if err != nil {
		t.Fatalf("%s: Solve: %v", name, err)
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			checkVariant(t, name, prog, opt, v)
		})
	}
}

func checkVariant(t *testing.T, name string, prog *lang.Program, opt *pta.Result, v variant) {
	t.Helper()
	naive, err := pta.Solve(prog, v.opts)
	if err != nil {
		t.Fatalf("%s: Solve(%s): %v", name, v.name, err)
	}

	// Client metrics summarize the call graph, poly-call sites,
	// may-fail casts and reachability in one comparable struct.
	if gm, wm := clients.Evaluate(opt), clients.Evaluate(naive); gm != wm {
		t.Fatalf("%s: client metrics differ:\n opt:   %+v\n naive: %+v", name, gm, wm)
	}

	// Per-variable points-to sets, compared through stable allocation
	// site labels (Obj/CSObj IDs depend on interning order, which the
	// optimizations may permute).
	for _, m := range prog.Methods {
		for _, v := range m.Locals {
			got, want := siteLabels(opt, v), siteLabels(naive, v)
			if len(got) != len(want) {
				t.Fatalf("%s: pts(%s.%s): %d vs %d objects", name, m, v.Name, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s: pts(%s.%s) differ at %d: %s vs %s", name, m, v.Name, i, got[i], want[i])
				}
			}
		}
	}

	// The Mahjong heap modeling downstream must see the same field
	// points-to relation: equal FPG sizes and merged-object counts.
	gg, wg := fpg.Build(opt, fpg.Options{}), fpg.Build(naive, fpg.Options{})
	if gg.NumObjects() != wg.NumObjects() {
		t.Fatalf("%s: FPG objects %d vs %d", name, gg.NumObjects(), wg.NumObjects())
	}
	gc, wc := core.Build(gg, core.Options{}), core.Build(wg, core.Options{})
	if gc.NumObjects != wc.NumObjects || gc.NumMerged != wc.NumMerged {
		t.Fatalf("%s: merged objects %d/%d vs %d/%d",
			name, gc.NumMerged, gc.NumObjects, wc.NumMerged, wc.NumObjects)
	}
}

func siteLabels(r *pta.Result, v *lang.Var) []string {
	var out []string
	for _, o := range r.VarObjs(v) {
		out = append(out, o.Rep.Label)
	}
	sort.Strings(out)
	return out
}
