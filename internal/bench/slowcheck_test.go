package bench

import (
	"os"
	"sort"
	"testing"

	"mahjong/internal/clients"
	"mahjong/internal/core"
	"mahjong/internal/fpg"
	"mahjong/internal/lang"
	"mahjong/internal/pta"
	"mahjong/internal/synth"
)

// The solver's hot-path optimizations (copy-cycle collapsing,
// class-indexed filter masks, pooled delta sets) must be invisible in
// every result the rest of the pipeline consumes. This file runs the
// optimized and the NoOpt solver over real benchmark programs and
// diffs everything downstream: per-variable points-to sets, client
// metrics, and the Mahjong merged-object counts.
//
// A cheap always-on check covers one program; the full sweep over
// every benchmark is slow (each program is solved twice, once
// unoptimized) and runs only when MAHJONG_SLOWCHECK is set:
//
//	MAHJONG_SLOWCHECK=1 go test ./internal/bench -run SolverEquivalence

func TestSolverEquivalenceLuindex(t *testing.T) {
	checkSolverEquivalence(t, "luindex")
}

func TestSolverEquivalenceAllBenchmarks(t *testing.T) {
	if os.Getenv("MAHJONG_SLOWCHECK") == "" {
		t.Skip("set MAHJONG_SLOWCHECK=1 to run the full A/B sweep")
	}
	for _, name := range synth.ProfileNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			checkSolverEquivalence(t, name)
		})
	}
}

func checkSolverEquivalence(t *testing.T, name string) {
	t.Helper()
	prof, err := synth.ProfileByName(name)
	if err != nil {
		t.Fatalf("profile %s: %v", name, err)
	}
	prog, err := synth.Generate(prof)
	if err != nil {
		t.Fatalf("generate %s: %v", name, err)
	}
	opt, err := pta.Solve(prog, pta.Options{})
	if err != nil {
		t.Fatalf("%s: Solve: %v", name, err)
	}
	naive, err := pta.Solve(prog, pta.Options{NoOpt: true})
	if err != nil {
		t.Fatalf("%s: Solve(NoOpt): %v", name, err)
	}

	// Client metrics summarize the call graph, poly-call sites,
	// may-fail casts and reachability in one comparable struct.
	if gm, wm := clients.Evaluate(opt), clients.Evaluate(naive); gm != wm {
		t.Fatalf("%s: client metrics differ:\n opt:   %+v\n naive: %+v", name, gm, wm)
	}

	// Per-variable points-to sets, compared through stable allocation
	// site labels (Obj/CSObj IDs depend on interning order, which the
	// optimizations may permute).
	for _, m := range prog.Methods {
		for _, v := range m.Locals {
			got, want := siteLabels(opt, v), siteLabels(naive, v)
			if len(got) != len(want) {
				t.Fatalf("%s: pts(%s.%s): %d vs %d objects", name, m, v.Name, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s: pts(%s.%s) differ at %d: %s vs %s", name, m, v.Name, i, got[i], want[i])
				}
			}
		}
	}

	// The Mahjong heap modeling downstream must see the same field
	// points-to relation: equal FPG sizes and merged-object counts.
	gg, wg := fpg.Build(opt, fpg.Options{}), fpg.Build(naive, fpg.Options{})
	if gg.NumObjects() != wg.NumObjects() {
		t.Fatalf("%s: FPG objects %d vs %d", name, gg.NumObjects(), wg.NumObjects())
	}
	gc, wc := core.Build(gg, core.Options{}), core.Build(wg, core.Options{})
	if gc.NumObjects != wc.NumObjects || gc.NumMerged != wc.NumMerged {
		t.Fatalf("%s: merged objects %d/%d vs %d/%d",
			name, gc.NumMerged, gc.NumObjects, wc.NumMerged, wc.NumObjects)
	}
}

func siteLabels(r *pta.Result, v *lang.Var) []string {
	var out []string
	for _, o := range r.VarObjs(v) {
		out = append(out, o.Rep.Label)
	}
	sort.Strings(out)
	return out
}
