package bench

import (
	"runtime"
	"testing"
	"time"

	"mahjong/internal/pta"
	"mahjong/internal/synth"
)

// TestParallelSpeedupSmoke is the CI floor on the sharded solver: with
// real parallelism available, the parallel configuration must not be
// slower than the sequential one on the largest benchmark program. The
// test is gated on GOMAXPROCS >= 2 — on a single processor the phases
// add coordination without adding parallelism, and "parallel is not
// slower" is simply not a property the engine promises there.
//
// Both sides take the best of three runs (minimum wall-clock, the
// noise-robust statistic) and the parallel side gets 25% slack, so a
// loaded CI machine does not flake the floor.
func TestParallelSpeedupSmoke(t *testing.T) {
	if p := runtime.GOMAXPROCS(0); p < 2 {
		t.Skipf("GOMAXPROCS=%d: no parallelism to measure", p)
	}
	prof, err := synth.ProfileByName("eclipse")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := synth.Generate(prof)
	if err != nil {
		t.Fatal(err)
	}
	best := func(opts pta.Options) time.Duration {
		var bestD time.Duration
		for i := 0; i < 3; i++ {
			t0 := time.Now()
			if _, err := pta.Solve(prog, opts); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(t0); i == 0 || d < bestD {
				bestD = d
			}
		}
		return bestD
	}
	seq := best(pta.Options{})
	par := best(pta.Options{Parallel: -1, Renumber: true})
	t.Logf("sequential %v, parallel %v (speedup %.2fx)", seq, par, float64(seq)/float64(par))
	if par > seq+seq/4 {
		t.Fatalf("parallel solve %v is slower than sequential %v beyond the 25%% slack", par, seq)
	}
}
