package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"mahjong/internal/core"
	"mahjong/internal/fpg"
	"mahjong/internal/synth"
)

// Suite runs the full evaluation over a list of benchmarks.
type Suite struct {
	Programs []string // defaults to all 12 profiles
	Budget   int64    // defaults to DefaultBudget
	Repeat   int      // timing repetitions per cell (median); default 3

	prepared map[string]*Program
}

// NewSuite returns a suite over all 12 benchmarks.
func NewSuite() *Suite {
	return &Suite{Programs: synth.ProfileNames(), Budget: DefaultBudget, Repeat: 3}
}

// runCell measures one cell Repeat times and returns the run with the
// median duration (the paper averages 3 runs; the median is more robust
// at millisecond scales). Metrics are identical across repetitions
// because the analysis is deterministic.
//
// The ci row is exempt from the scalability budget: it is the paper's
// pre-analysis, which by construction always completes (its work
// counter is inflated by the huge context-insensitive points-to sets
// even though its wall-clock cost is modest).
func (s *Suite) runCell(p *Program, a Analysis, heap HeapKind) Cell {
	budget := s.Budget
	if a.Name == "ci" {
		budget = 1 << 40
	}
	n := s.Repeat
	if n < 1 {
		n = 1
	}
	cells := make([]Cell, n)
	for i := range cells {
		cells[i] = p.RunCell(a, heap, budget)
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i].Time < cells[j].Time })
	return cells[n/2]
}

// Prep prepares (and caches) a benchmark program.
func (s *Suite) Prep(name string) (*Program, error) {
	if s.prepared == nil {
		s.prepared = make(map[string]*Program)
	}
	if p, ok := s.prepared[name]; ok {
		return p, nil
	}
	p, err := Prepare(name)
	if err != nil {
		return nil, err
	}
	s.prepared[name] = p
	return p, nil
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Microseconds())/1000.0)
}

// Table2 writes the main results table: for every program and every
// analysis, the baseline and Mahjong variants side by side with time,
// speedup and the three client metrics. Unscalable cells print "—".
func (s *Suite) Table2(w io.Writer) error {
	fmt.Fprintf(w, "Table 2: efficiency and precision of baseline (A) vs Mahjong-based (M-A) analyses\n")
	fmt.Fprintf(w, "(budget: %d work units; '—' = unscalable within budget, like the paper's 5h cells)\n\n", s.Budget)
	hdr := fmt.Sprintf("%-11s %-7s | %10s %10s %8s | %9s %9s | %7s %7s | %7s %7s\n",
		"program", "analysis", "A time", "M-A time", "speedup",
		"A edges", "M-A edges", "A poly", "M poly", "A casts", "M casts")
	fmt.Fprint(w, hdr)
	fmt.Fprint(w, strings.Repeat("-", len(hdr)-1)+"\n")
	for _, name := range s.Programs {
		p, err := s.Prep(name)
		if err != nil {
			return err
		}
		for _, a := range Analyses() {
			base := s.runCell(p, a, HeapAllocSite)
			mj := s.runCell(p, a, HeapMahjong)
			fmt.Fprintf(w, "%-11s %-7s | %10s %10s %8s | %9s %9s | %7s %7s | %7s %7s\n",
				name, a.Name,
				cellTime(base), cellTime(mj), speedup(base, mj),
				cellInt(base, base.Metrics.CallGraphEdges), cellInt(mj, mj.Metrics.CallGraphEdges),
				cellInt(base, base.Metrics.PolyCallSites), cellInt(mj, mj.Metrics.PolyCallSites),
				cellInt(base, base.Metrics.MayFailCasts), cellInt(mj, mj.Metrics.MayFailCasts))
		}
		fmt.Fprintln(w)
	}
	return nil
}

func cellTime(c Cell) string {
	if !c.Scalable {
		return "—"
	}
	return ms(c.Time) + "ms"
}

func cellInt(c Cell, v int) string {
	if !c.Scalable {
		return "—"
	}
	return fmt.Sprintf("%d", v)
}

func speedup(base, mj Cell) string {
	switch {
	case base.Scalable && mj.Scalable:
		if mj.Time <= 0 {
			return "-"
		}
		return fmt.Sprintf("%.1fx", float64(base.Time)/float64(mj.Time))
	case !base.Scalable && mj.Scalable:
		return ">budget"
	default:
		return "-"
	}
}

// Fig8 writes the abstract-object counts per program under the
// allocation-site abstraction vs Mahjong (Figure 8).
func (s *Suite) Fig8(w io.Writer) error {
	fmt.Fprintf(w, "Figure 8: number of abstract objects, allocation-site vs MAHJONG\n\n")
	fmt.Fprintf(w, "%-11s %12s %10s %10s\n", "program", "alloc-site", "mahjong", "reduction")
	totalA, totalM := 0, 0
	for _, name := range s.Programs {
		p, err := s.Prep(name)
		if err != nil {
			return err
		}
		a, m := p.Mahjong.NumObjects, p.Mahjong.NumMerged
		totalA += a
		totalM += m
		fmt.Fprintf(w, "%-11s %12d %10d %9.0f%%\n", name, a, m, p.Mahjong.Reduction()*100)
	}
	if totalA > 0 {
		fmt.Fprintf(w, "%-11s %12d %10d %9.0f%%\n", "average",
			totalA/len(s.Programs), totalM/len(s.Programs),
			(1-float64(totalM)/float64(totalA))*100)
	}
	return nil
}

// Fig9 writes the equivalence-class size distribution of one program
// (Figure 9: checkstyle in the paper).
func (s *Suite) Fig9(w io.Writer, program string) error {
	p, err := s.Prep(program)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 9: equivalence-class size distribution for %s\n\n", program)
	fmt.Fprintf(w, "%12s %12s\n", "class size", "#classes")
	for _, sc := range p.Mahjong.SizeHistogram() {
		fmt.Fprintf(w, "%12d %12d\n", sc[0], sc[1])
	}
	return nil
}

// Table1 writes sample equivalence classes of one program (Table 1:
// checkstyle in the paper): the largest classes per interesting type,
// with the total object count of that type and a remark naming the
// dominant field-target type.
func (s *Suite) Table1(w io.Writer, program string, rows int) error {
	p, err := s.Prep(program)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Table 1: sample equivalence classes in %s\n\n", program)
	fmt.Fprintf(w, "%4s  %-28s %6s %7s  %s\n", "rank", "type", "size", "#type", "remark")

	totalByType := map[string]int{}
	for _, c := range p.Mahjong.Classes {
		totalByType[c.Type.Name] += c.Size()
	}
	// Classes are already sorted largest-first.
	for rank, c := range p.Mahjong.Classes {
		if rank >= rows {
			break
		}
		fmt.Fprintf(w, "%4d  %-28s %6d %7d  %s\n",
			rank+1, c.Type.Name, c.Size(), totalByType[c.Type.Name], remark(p, c))
	}
	return nil
}

// remark names the dominant field-target type of a class's
// representative, mirroring Table 1's right column ("char[]", "String",
// "null", …): the most frequent target type across the representative's
// field edges, or "null" when every field may only be null.
func remark(p *Program, c core.Class) string {
	g := p.Graph
	node := g.Node(c.Rep)
	if node < 0 {
		return "?"
	}
	counts := map[string]int{}
	for _, f := range g.FieldsOf(node) {
		for _, t := range g.Succ(node, f) {
			if t == fpg.NullNode {
				counts["null"]++
			} else {
				counts[g.Objs[t].Type.Name]++
			}
		}
	}
	if len(counts) == 0 {
		return "(no fields)"
	}
	best, bestN := "", -1
	// Prefer a non-null dominant type; report "null" only when nothing
	// else is reachable (the Table 1 row 6 case).
	for name, n := range counts {
		if name == "null" {
			continue
		}
		if n > bestN || (n == bestN && name < best) {
			best, bestN = name, n
		}
	}
	if best == "" {
		return "null"
	}
	return best
}

// Motivation writes the §2.1 pmd example: 3obj under the three heap
// abstractions.
func (s *Suite) Motivation(w io.Writer) error {
	p, err := s.Prep("pmd")
	if err != nil {
		return err
	}
	a, err := AnalysisByName("3obj")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Motivation (§2.1): pmd under 3obj with three heap abstractions\n\n")
	fmt.Fprintf(w, "%-10s %12s %12s %8s %8s\n", "variant", "time", "call edges", "poly", "casts")
	for _, hk := range []HeapKind{HeapAllocSite, HeapAllocType, HeapMahjong} {
		label := map[HeapKind]string{HeapAllocSite: "3obj", HeapAllocType: "T-3obj", HeapMahjong: "M-3obj"}[hk]
		// The motivation run uses a generous budget so that even the
		// baseline completes, as in the paper's 14469.3s pmd data point.
		c := p.RunCell(a, hk, s.Budget*100)
		fmt.Fprintf(w, "%-10s %12s %12s %8s %8s\n", label,
			cellTime(c), cellInt(c, c.Metrics.CallGraphEdges),
			cellInt(c, c.Metrics.PolyCallSites), cellInt(c, c.Metrics.MayFailCasts))
	}
	return nil
}

// PreStats writes the §6.1.1 pre-analysis statistics: the time split
// (ci / FPG / Mahjong) and the FPG and NFA size statistics.
func (s *Suite) PreStats(w io.Writer) error {
	fmt.Fprintf(w, "Pre-analysis statistics (§6.1.1)\n\n")
	fmt.Fprintf(w, "%-11s | %9s %9s %11s | %8s %7s %8s | %8s %8s\n",
		"program", "ci(ms)", "FPG(ms)", "mahjong(ms)", "#objects", "#types", "#fields", "avgNFA", "maxNFA")
	var sumObjs, sumTypes, sumFields int
	for _, name := range s.Programs {
		p, err := s.Prep(name)
		if err != nil {
			return err
		}
		g := p.Graph
		sumObjs += g.NumObjects()
		sumTypes += g.NumTypes()
		sumFields += g.NumFields()
		fmt.Fprintf(w, "%-11s | %9s %9s %11s | %8d %7d %8d | %8.0f %8d\n",
			name, ms(p.PreTime), ms(p.FPGTime), ms(p.MahjongTime),
			g.NumObjects(), g.NumTypes(), g.NumFields(), p.AvgNFASize, p.MaxNFASize)
	}
	n := len(s.Programs)
	if n > 0 {
		fmt.Fprintf(w, "%-11s | %9s %9s %11s | %8d %7d %8d |\n",
			"average", "", "", "", sumObjs/n, sumTypes/n, sumFields/n)
	}
	return nil
}
