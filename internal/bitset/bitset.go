// Package bitset provides sparse, growable bit sets used to represent
// points-to sets over densely numbered abstract objects.
//
// The hot loop of a subset-based points-to analysis is repeated
// union-with-difference: propagate the part of a source set that the
// destination has not seen yet. Set is tuned for that pattern: it stores
// 64-bit words indexed from bit 0 and offers UnionDiff, which unions src
// into dst and simultaneously collects the newly added bits.
package bitset

import (
	"math/bits"
	"strconv"
	"strings"
)

const wordBits = 64

// Set is a growable bit set. The zero value is an empty set ready to use.
type Set struct {
	words []uint64
	count int // cached population count
}

// New returns an empty set with capacity hint n bits.
func New(n int) *Set {
	if n < 0 {
		n = 0
	}
	return &Set{words: make([]uint64, 0, (n+wordBits-1)/wordBits)}
}

// Len returns the number of bits set.
func (s *Set) Len() int { return s.count }

// Words returns the number of 64-bit words backing the set — the
// quantity resource budgets meter to bound live points-to memory.
func (s *Set) Words() int { return len(s.words) }

// IsEmpty reports whether no bits are set.
func (s *Set) IsEmpty() bool { return s.count == 0 }

// Contains reports whether bit i is set. Negative i is always false.
func (s *Set) Contains(i int) bool {
	if i < 0 {
		return false
	}
	w := i / wordBits
	if w >= len(s.words) {
		return false
	}
	return s.words[w]&(1<<(uint(i)%wordBits)) != 0
}

func (s *Set) grow(w int) {
	for len(s.words) <= w {
		s.words = append(s.words, 0)
	}
}

// Add sets bit i and reports whether the set changed.
func (s *Set) Add(i int) bool {
	if i < 0 {
		panic("bitset: negative bit " + strconv.Itoa(i))
	}
	w, b := i/wordBits, uint64(1)<<(uint(i)%wordBits)
	s.grow(w)
	if s.words[w]&b != 0 {
		return false
	}
	s.words[w] |= b
	s.count++
	return true
}

// Remove clears bit i and reports whether the set changed.
func (s *Set) Remove(i int) bool {
	if i < 0 {
		return false
	}
	w := i / wordBits
	if w >= len(s.words) {
		return false
	}
	b := uint64(1) << (uint(i) % wordBits)
	if s.words[w]&b == 0 {
		return false
	}
	s.words[w] &^= b
	s.count--
	return true
}

// Clear removes all bits, keeping capacity.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
	s.count = 0
}

// Clone returns a copy of s.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words)), count: s.count}
	copy(c.words, s.words)
	return c
}

// Union adds every bit of other into s and reports whether s changed.
func (s *Set) Union(other *Set) bool {
	if other == nil || other.count == 0 {
		return false
	}
	s.grow(len(other.words) - 1)
	changed := false
	for i, w := range other.words {
		old := s.words[i]
		nw := old | w
		if nw != old {
			s.words[i] = nw
			s.count += bits.OnesCount64(nw) - bits.OnesCount64(old)
			changed = true
		}
	}
	return changed
}

// UnionDiff unions src into s and returns a set holding exactly the bits
// that were newly added to s (src − old s). It returns nil when nothing
// was added, so callers can cheaply skip propagation.
func (s *Set) UnionDiff(src *Set) *Set {
	if src == nil || src.count == 0 {
		return nil
	}
	s.grow(len(src.words) - 1)
	var diff *Set
	for i, w := range src.words {
		old := s.words[i]
		add := w &^ old
		if add == 0 {
			continue
		}
		if diff == nil {
			diff = &Set{words: make([]uint64, len(src.words))}
		}
		diff.words[i] = add
		diff.count += bits.OnesCount64(add)
		s.words[i] = old | add
		s.count += bits.OnesCount64(add)
	}
	return diff
}

// UnionInto unions src into s like UnionDiff, but instead of allocating
// a fresh difference set it adds the newly inserted bits to diff (which
// must be non-nil) and returns how many bits were added. It is the
// allocation-free propagation primitive of the points-to solver: the
// destination's pending delta doubles as the diff accumulator.
func (s *Set) UnionInto(src, diff *Set) int {
	if src == nil || src.count == 0 {
		return 0
	}
	s.grow(len(src.words) - 1)
	added := 0
	for i, w := range src.words {
		add := w &^ s.words[i]
		if add == 0 {
			continue
		}
		s.words[i] |= add
		diff.grow(i)
		old := diff.words[i]
		diff.words[i] = old | add
		diff.count += bits.OnesCount64(old|add) - bits.OnesCount64(old)
		added += bits.OnesCount64(add)
	}
	s.count += added
	return added
}

// AndWith intersects s with other in place (s &= other) and reports
// whether s changed. A nil other clears s.
func (s *Set) AndWith(other *Set) bool {
	if s.count == 0 {
		return false
	}
	if other == nil {
		s.Clear()
		return true
	}
	changed := false
	for i, w := range s.words {
		var ow uint64
		if i < len(other.words) {
			ow = other.words[i]
		}
		nw := w & ow
		if nw != w {
			s.words[i] = nw
			s.count -= bits.OnesCount64(w) - bits.OnesCount64(nw)
			changed = true
		}
	}
	return changed
}

// IntersectInto sets dst = a ∩ b, reusing dst's backing storage, and
// returns dst. A nil dst allocates a fresh set. dst must not alias a or
// b. The word loop replaces the per-bit membership tests the solver's
// cast/catch filtering would otherwise perform.
func IntersectInto(dst, a, b *Set) *Set {
	if dst == nil {
		dst = &Set{}
	}
	n := min(len(a.words), len(b.words))
	dst.grow(n - 1)
	count := 0
	for i := 0; i < n; i++ {
		w := a.words[i] & b.words[i]
		dst.words[i] = w
		count += bits.OnesCount64(w)
	}
	for i := n; i < len(dst.words); i++ {
		dst.words[i] = 0
	}
	dst.count = count
	return dst
}

// IntersectRangeInto sets dst = a ∩ [lo, hi), reusing dst's backing
// storage, and returns dst. A nil dst allocates a fresh set; dst must
// not alias a. It is the word-range counterpart of IntersectInto for
// contiguously numbered object classes: when same-class objects occupy
// one ID interval, a class-filter intersection needs no mask set at all
// — just two partial-word masks and a copy of the words in between.
func IntersectRangeInto(dst, a *Set, lo, hi int) *Set {
	if dst == nil {
		dst = &Set{}
	}
	if lo < 0 {
		lo = 0
	}
	if hi > len(a.words)*wordBits {
		hi = len(a.words) * wordBits
	}
	if lo >= hi {
		dst.Clear()
		return dst
	}
	loWord, hiWord := lo/wordBits, (hi-1)/wordBits
	dst.grow(hiWord)
	count := 0
	for i := 0; i < loWord; i++ {
		dst.words[i] = 0
	}
	for i := loWord; i <= hiWord; i++ {
		w := a.words[i]
		if i == loWord {
			w &= ^uint64(0) << (uint(lo) % wordBits)
		}
		if i == hiWord && hi%wordBits != 0 {
			w &= (uint64(1) << (uint(hi) % wordBits)) - 1
		}
		dst.words[i] = w
		count += bits.OnesCount64(w)
	}
	for i := hiWord + 1; i < len(dst.words); i++ {
		dst.words[i] = 0
	}
	dst.count = count
	return dst
}

// OnesInRange returns the number of set bits in [lo, hi). It costs one
// popcount per touched word; the points-to solver uses it to detect
// deltas that lie entirely inside (or outside) a class's ID interval
// and skip the copy IntersectRangeInto would make.
func (s *Set) OnesInRange(lo, hi int) int {
	if lo < 0 {
		lo = 0
	}
	if hi > len(s.words)*wordBits {
		hi = len(s.words) * wordBits
	}
	if lo >= hi {
		return 0
	}
	loWord, hiWord := lo/wordBits, (hi-1)/wordBits
	count := 0
	for i := loWord; i <= hiWord; i++ {
		w := s.words[i]
		if i == loWord {
			w &= ^uint64(0) << (uint(lo) % wordBits)
		}
		if i == hiWord && hi%wordBits != 0 {
			w &= (uint64(1) << (uint(hi) % wordBits)) - 1
		}
		count += bits.OnesCount64(w)
	}
	return count
}

// Intersects reports whether s and other share at least one bit.
func (s *Set) Intersects(other *Set) bool {
	if other == nil {
		return false
	}
	n := min(len(s.words), len(other.words))
	for i := 0; i < n; i++ {
		if s.words[i]&other.words[i] != 0 {
			return true
		}
	}
	return false
}

// ContainsAll reports whether every bit of other is also in s.
func (s *Set) ContainsAll(other *Set) bool {
	if other == nil {
		return true
	}
	for i, w := range other.words {
		var sw uint64
		if i < len(s.words) {
			sw = s.words[i]
		}
		if w&^sw != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and other contain exactly the same bits.
func (s *Set) Equal(other *Set) bool {
	if other == nil {
		return s.count == 0
	}
	if s.count != other.count {
		return false
	}
	n := max(len(s.words), len(other.words))
	for i := 0; i < n; i++ {
		var a, b uint64
		if i < len(s.words) {
			a = s.words[i]
		}
		if i < len(other.words) {
			b = other.words[i]
		}
		if a != b {
			return false
		}
	}
	return true
}

// ForEach calls fn for each set bit in ascending order. If fn returns
// false iteration stops early.
func (s *Set) ForEach(fn func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &^= 1 << uint(b)
		}
	}
}

// Slice returns the set bits in ascending order.
func (s *Set) Slice() []int {
	out := make([]int, 0, s.count)
	s.ForEach(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// Min returns the smallest set bit, or -1 when empty.
func (s *Set) Min() int {
	for wi, w := range s.words {
		if w != 0 {
			return wi*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// String renders the set like "{1 5 9}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			b.WriteByte(' ')
		}
		first = false
		b.WriteString(strconv.Itoa(i))
		return true
	})
	b.WriteByte('}')
	return b.String()
}
