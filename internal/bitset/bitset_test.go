package bitset

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestZeroValue(t *testing.T) {
	var s Set
	if !s.IsEmpty() || s.Len() != 0 {
		t.Fatalf("zero value not empty: len=%d", s.Len())
	}
	if s.Contains(0) || s.Contains(100) {
		t.Fatal("zero value contains bits")
	}
	if !s.Add(5) {
		t.Fatal("Add(5) on empty set reported no change")
	}
	if !s.Contains(5) || s.Len() != 1 {
		t.Fatalf("after Add(5): contains=%v len=%d", s.Contains(5), s.Len())
	}
}

func TestAddRemove(t *testing.T) {
	s := New(10)
	if s.Add(3) != true || s.Add(3) != false {
		t.Fatal("Add change reporting wrong")
	}
	if s.Remove(3) != true || s.Remove(3) != false {
		t.Fatal("Remove change reporting wrong")
	}
	if s.Remove(1000) {
		t.Fatal("Remove of absent out-of-range bit reported change")
	}
	if s.Len() != 0 {
		t.Fatalf("len=%d after add/remove", s.Len())
	}
}

func TestAddNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
	}()
	New(0).Add(-1)
}

func TestContainsNegative(t *testing.T) {
	s := New(0)
	s.Add(0)
	if s.Contains(-1) {
		t.Fatal("Contains(-1) true")
	}
}

func TestUnionDiff(t *testing.T) {
	a, b := New(0), New(0)
	for _, i := range []int{1, 64, 65, 200} {
		a.Add(i)
	}
	for _, i := range []int{1, 2, 64, 300} {
		b.Add(i)
	}
	diff := a.UnionDiff(b)
	if diff == nil {
		t.Fatal("expected non-nil diff")
	}
	want := []int{2, 300}
	if got := diff.Slice(); !equalInts(got, want) {
		t.Fatalf("diff=%v want %v", got, want)
	}
	for _, i := range []int{1, 2, 64, 65, 200, 300} {
		if !a.Contains(i) {
			t.Fatalf("a missing %d after UnionDiff", i)
		}
	}
	if d := a.UnionDiff(b); d != nil {
		t.Fatalf("second UnionDiff should be nil, got %v", d)
	}
	if d := a.UnionDiff(nil); d != nil {
		t.Fatal("UnionDiff(nil) should be nil")
	}
}

func TestEqualAndContainsAll(t *testing.T) {
	a, b := New(0), New(0)
	for _, i := range []int{0, 63, 64, 127, 500} {
		a.Add(i)
		b.Add(i)
	}
	if !a.Equal(b) {
		t.Fatal("equal sets reported unequal")
	}
	// Trailing zero words must not break equality.
	b.Add(1000)
	b.Remove(1000)
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("equality broken by trailing zero words")
	}
	b.Remove(500)
	if a.Equal(b) {
		t.Fatal("unequal sets reported equal")
	}
	if !a.ContainsAll(b) {
		t.Fatal("a should contain all of b")
	}
	if b.ContainsAll(a) {
		t.Fatal("b should not contain all of a")
	}
	if !a.ContainsAll(nil) {
		t.Fatal("ContainsAll(nil) should be true")
	}
}

func TestIntersects(t *testing.T) {
	a, b := New(0), New(0)
	a.Add(100)
	b.Add(101)
	if a.Intersects(b) {
		t.Fatal("disjoint sets intersect")
	}
	b.Add(100)
	if !a.Intersects(b) {
		t.Fatal("overlapping sets do not intersect")
	}
	if a.Intersects(nil) {
		t.Fatal("Intersects(nil) true")
	}
}

func TestCloneClearMin(t *testing.T) {
	a := New(0)
	if a.Min() != -1 {
		t.Fatal("Min of empty != -1")
	}
	a.Add(70)
	a.Add(7)
	c := a.Clone()
	a.Clear()
	if a.Len() != 0 || !a.IsEmpty() {
		t.Fatal("Clear failed")
	}
	if c.Len() != 2 || !c.Contains(7) || !c.Contains(70) {
		t.Fatal("Clone affected by Clear")
	}
	if c.Min() != 7 {
		t.Fatalf("Min=%d want 7", c.Min())
	}
}

func TestString(t *testing.T) {
	s := New(0)
	if s.String() != "{}" {
		t.Fatalf("empty String=%q", s.String())
	}
	s.Add(1)
	s.Add(5)
	if s.String() != "{1 5}" {
		t.Fatalf("String=%q", s.String())
	}
}

func TestForEachEarlyStop(t *testing.T) {
	s := New(0)
	for i := 0; i < 10; i++ {
		s.Add(i * 3)
	}
	n := 0
	s.ForEach(func(int) bool {
		n++
		return n < 4
	})
	if n != 4 {
		t.Fatalf("early stop visited %d", n)
	}
}

// refSet is a map-based reference model for property testing.
type refSet map[int]bool

func (r refSet) slice() []int {
	out := make([]int, 0, len(r))
	for i := range r {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestQuickAgainstReference drives a random operation sequence against both
// Set and a map-based model and checks observable equivalence.
func TestQuickAgainstReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New(0)
		ref := refSet{}
		for op := 0; op < 300; op++ {
			i := rng.Intn(400)
			switch rng.Intn(3) {
			case 0:
				got := s.Add(i)
				want := !ref[i]
				ref[i] = true
				if got != want {
					return false
				}
			case 1:
				got := s.Remove(i)
				want := ref[i]
				delete(ref, i)
				if got != want {
					return false
				}
			case 2:
				if s.Contains(i) != ref[i] {
					return false
				}
			}
			if s.Len() != len(ref) {
				return false
			}
		}
		return equalInts(s.Slice(), ref.slice())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickUnionDiff checks UnionDiff against the set-theoretic definition.
func TestQuickUnionDiff(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := New(0), New(0)
		refA, refB := refSet{}, refSet{}
		for i := 0; i < 100; i++ {
			x := rng.Intn(300)
			if rng.Intn(2) == 0 {
				a.Add(x)
				refA[x] = true
			} else {
				b.Add(x)
				refB[x] = true
			}
		}
		diff := a.UnionDiff(b)
		wantDiff := refSet{}
		for x := range refB {
			if !refA[x] {
				wantDiff[x] = true
			}
			refA[x] = true
		}
		var gotDiff []int
		if diff != nil {
			gotDiff = diff.Slice()
		}
		return equalInts(gotDiff, wantDiff.slice()) && equalInts(a.Slice(), refA.slice())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickUnionLaws checks commutativity/idempotence of Union via Equal.
func TestQuickUnionLaws(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		a1, b1 := New(0), New(0)
		for _, x := range xs {
			a1.Add(int(x))
		}
		for _, y := range ys {
			b1.Add(int(y))
		}
		ab := a1.Clone()
		ab.Union(b1)
		ba := b1.Clone()
		ba.Union(a1)
		if !ab.Equal(ba) {
			return false
		}
		again := ab.Clone()
		if again.Union(b1) { // idempotent: second union adds nothing
			return false
		}
		return ab.ContainsAll(a1) && ab.ContainsAll(b1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUnionDiff(b *testing.B) {
	src := New(0)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		src.Add(rng.Intn(1 << 16))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst := New(1 << 16)
		dst.UnionDiff(src)
	}
}
