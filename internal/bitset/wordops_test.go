package bitset

import (
	"math/rand"
	"testing"
)

func setOf(bits ...int) *Set {
	s := New(0)
	for _, b := range bits {
		s.Add(b)
	}
	return s
}

func TestUnionInto(t *testing.T) {
	dst := setOf(1, 64, 200)
	src := setOf(1, 2, 64, 300)
	diff := New(0)
	if added := dst.UnionInto(src, diff); added != 2 {
		t.Fatalf("added=%d, want 2", added)
	}
	if !dst.Equal(setOf(1, 2, 64, 200, 300)) {
		t.Fatalf("dst=%v", dst)
	}
	if !diff.Equal(setOf(2, 300)) {
		t.Fatalf("diff=%v", diff)
	}
	// Accumulation: a second union adds its new bits to the same diff.
	if added := dst.UnionInto(setOf(2, 500), diff); added != 1 {
		t.Fatalf("second added=%d, want 1", added)
	}
	if !diff.Equal(setOf(2, 300, 500)) {
		t.Fatalf("accumulated diff=%v", diff)
	}
	// No-op union reports zero and leaves diff alone.
	if added := dst.UnionInto(setOf(1, 2), diff); added != 0 {
		t.Fatalf("no-op added=%d", added)
	}
	if added := dst.UnionInto(nil, diff); added != 0 {
		t.Fatalf("nil src added=%d", added)
	}
}

func TestUnionIntoZeroValues(t *testing.T) {
	var dst, diff Set
	src := setOf(0, 63, 64, 127, 1000)
	if added := dst.UnionInto(src, &diff); added != 5 {
		t.Fatalf("added=%d, want 5", added)
	}
	if !dst.Equal(src) || !diff.Equal(src) {
		t.Fatalf("dst=%v diff=%v", &dst, &diff)
	}
}

func TestUnionIntoMatchesUnionDiff(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		a1, a2, src := New(0), New(0), New(0)
		for i := 0; i < 50; i++ {
			b := rng.Intn(512)
			if rng.Intn(2) == 0 {
				a1.Add(b)
				a2.Add(b)
			} else {
				src.Add(b)
			}
		}
		want := a1.UnionDiff(src)
		got := New(0)
		added := a2.UnionInto(src, got)
		if want == nil {
			if added != 0 || !got.IsEmpty() {
				t.Fatalf("trial %d: UnionDiff=nil but UnionInto added %d", trial, added)
			}
		} else if !got.Equal(want) || added != want.Len() {
			t.Fatalf("trial %d: diff %v vs %v (added=%d)", trial, got, want, added)
		}
		if !a1.Equal(a2) {
			t.Fatalf("trial %d: destinations diverged: %v vs %v", trial, a1, a2)
		}
	}
}

func TestAndWith(t *testing.T) {
	s := setOf(1, 64, 200, 300)
	if !s.AndWith(setOf(64, 200, 999)) {
		t.Fatal("AndWith reported no change")
	}
	if !s.Equal(setOf(64, 200)) {
		t.Fatalf("s=%v", s)
	}
	if s.AndWith(setOf(64, 200, 300)) {
		t.Fatal("superset intersection reported change")
	}
	// Other shorter than s: the tail must be cleared.
	s2 := setOf(3, 500)
	if !s2.AndWith(setOf(3)) || !s2.Equal(setOf(3)) {
		t.Fatalf("tail not cleared: %v", s2)
	}
	// nil other clears.
	if !s2.AndWith(nil) || !s2.IsEmpty() {
		t.Fatalf("AndWith(nil) left %v", s2)
	}
	var zero Set
	if zero.AndWith(setOf(1)) {
		t.Fatal("zero-value AndWith reported change")
	}
}

func TestIntersectInto(t *testing.T) {
	a := setOf(1, 64, 200, 300)
	b := setOf(64, 300, 999)
	got := IntersectInto(nil, a, b)
	if !got.Equal(setOf(64, 300)) || got.Len() != 2 {
		t.Fatalf("got=%v len=%d", got, got.Len())
	}
	// Reuse: a wide stale dst must be fully overwritten, including words
	// beyond the new intersection's width.
	dst := setOf(5000)
	got = IntersectInto(dst, a, b)
	if got != dst || !got.Equal(setOf(64, 300)) {
		t.Fatalf("reused dst=%v", got)
	}
	// Inputs of different word lengths, zero-value operands.
	var zero Set
	if out := IntersectInto(nil, &zero, a); !out.IsEmpty() {
		t.Fatalf("zero ∩ a = %v", out)
	}
	if out := IntersectInto(nil, a, &zero); !out.IsEmpty() {
		t.Fatalf("a ∩ zero = %v", out)
	}
	// Growth past the current word length of dst.
	small := New(0)
	wide1, wide2 := setOf(100000, 100001), setOf(100001, 100002)
	if out := IntersectInto(small, wide1, wide2); !out.Equal(setOf(100001)) {
		t.Fatalf("wide intersection=%v", out)
	}
}

func TestIntersectRangeInto(t *testing.T) {
	a := setOf(1, 63, 64, 65, 200, 300)
	if got := IntersectRangeInto(nil, a, 64, 201); !got.Equal(setOf(64, 65, 200)) {
		t.Fatalf("got=%v", got)
	}
	// Word-aligned boundaries.
	if got := IntersectRangeInto(nil, a, 64, 128); !got.Equal(setOf(64, 65)) {
		t.Fatalf("aligned got=%v", got)
	}
	// Bounds within one word.
	if got := IntersectRangeInto(nil, a, 1, 2); !got.Equal(setOf(1)) {
		t.Fatalf("single-word got=%v", got)
	}
	// A wide stale dst must be fully overwritten.
	dst := setOf(5000)
	if got := IntersectRangeInto(dst, a, 0, 64); got != dst || !got.Equal(setOf(1, 63)) {
		t.Fatalf("reused dst=%v", got)
	}
	// Empty / inverted / out-of-range intervals.
	if got := IntersectRangeInto(nil, a, 301, 10000); !got.IsEmpty() {
		t.Fatalf("past-end got=%v", got)
	}
	if got := IntersectRangeInto(nil, a, 200, 200); !got.IsEmpty() {
		t.Fatalf("empty interval got=%v", got)
	}
	if got := IntersectRangeInto(nil, a, -5, 2); !got.Equal(setOf(1)) {
		t.Fatalf("negative lo got=%v", got)
	}
	var zero Set
	if got := IntersectRangeInto(nil, &zero, 0, 100); !got.IsEmpty() {
		t.Fatalf("zero operand got=%v", got)
	}
}

func TestOnesInRange(t *testing.T) {
	s := setOf(0, 1, 63, 64, 127, 128, 1000)
	cases := []struct{ lo, hi, want int }{
		{0, 64, 3},
		{0, 1, 1},
		{1, 64, 2},
		{64, 128, 2},
		{0, 1001, 7},
		{1000, 1001, 1},
		{1001, 2000, 0},
		{200, 100, 0},
		{-10, 2, 2},
		{500, 900, 0},
	}
	for _, c := range cases {
		if got := s.OnesInRange(c.lo, c.hi); got != c.want {
			t.Fatalf("OnesInRange(%d,%d)=%d, want %d", c.lo, c.hi, got, c.want)
		}
	}
	var zero Set
	if got := zero.OnesInRange(0, 100); got != 0 {
		t.Fatalf("zero set OnesInRange=%d", got)
	}
}

func TestRangeOpsRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	dst := New(0) // reused, as the solver's scratch is
	for trial := 0; trial < 200; trial++ {
		a := New(0)
		for i := 0; i < 60; i++ {
			a.Add(rng.Intn(1024))
		}
		lo := rng.Intn(1100) - 30
		hi := lo + rng.Intn(1100)
		want := map[int]bool{}
		a.ForEach(func(i int) bool {
			if i >= lo && i < hi {
				want[i] = true
			}
			return true
		})
		got := IntersectRangeInto(dst, a, lo, hi)
		if got.Len() != len(want) {
			t.Fatalf("trial %d [%d,%d): len=%d want %d", trial, lo, hi, got.Len(), len(want))
		}
		got.ForEach(func(i int) bool {
			if !want[i] {
				t.Fatalf("trial %d [%d,%d): stray bit %d", trial, lo, hi, i)
			}
			return true
		})
		if n := a.OnesInRange(lo, hi); n != len(want) {
			t.Fatalf("trial %d [%d,%d): OnesInRange=%d want %d", trial, lo, hi, n, len(want))
		}
	}
}

func TestIntersectIntoRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dst := New(0) // reused across trials, as the solver's scratch is
	for trial := 0; trial < 200; trial++ {
		a, b := New(0), New(0)
		for i := 0; i < 80; i++ {
			x := rng.Intn(2048)
			switch rng.Intn(3) {
			case 0:
				a.Add(x)
			case 1:
				b.Add(x)
			default:
				a.Add(x)
				b.Add(x)
			}
		}
		want := map[int]bool{}
		a.ForEach(func(i int) bool {
			if b.Contains(i) {
				want[i] = true
			}
			return true
		})
		got := IntersectInto(dst, a, b)
		if got.Len() != len(want) {
			t.Fatalf("trial %d: len=%d want %d", trial, got.Len(), len(want))
		}
		got.ForEach(func(i int) bool {
			if !want[i] {
				t.Fatalf("trial %d: stray bit %d", trial, i)
			}
			return true
		})
	}
}
