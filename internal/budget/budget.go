// Package budget bounds the pipeline's resource use beyond wall-clock
// deadlines. A Limits value caps the quantities that actually drive
// memory and CPU blow-ups — propagated points-to facts, live bitset
// words, automata merge pairs — and a Meter tracks consumption against
// those caps across every stage of one job (the pre-analysis, the FPG
// builder, and the heap modeler share a single Meter, so a job cannot
// dodge its budget by splitting work across stages).
//
// Checks are deliberately cheap: each charge is one atomic add plus one
// comparison, and the solver batches charges along its existing
// amortized work accounting. Exhaustion surfaces as an error wrapping
// ErrExhausted — a typed, recoverable condition — instead of the OOM
// kill the process would otherwise risk.
package budget

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// ErrExhausted is wrapped by every budget-exhaustion error; test with
// errors.Is. The facade re-exports it as mahjong.ErrBudgetExhausted.
var ErrExhausted = errors.New("resource budget exhausted")

// Limits caps one job's resource use. A zero field is unlimited; the
// zero value disables budgeting entirely.
type Limits struct {
	// Facts caps points-to facts propagated by the solver (and scanned
	// by the FPG builder). It bounds total propagation work.
	Facts int64
	// BitsetWords caps live 64-bit words held by the solver's points-to
	// sets. It bounds the dominant term of solver memory.
	BitsetWords int64
	// MergePairs caps automata equivalence checks in the heap modeler.
	// It bounds the quadratic worst case of per-type merging.
	MergePairs int64
}

// Zero reports whether no limit is set.
func (l Limits) Zero() bool { return l == Limits{} }

// Meter counts consumption against Limits. It is safe for concurrent
// use (the heap modeler's merge workers charge it in parallel). A nil
// *Meter is valid and never exhausts, so unbudgeted runs pay only a nil
// check at each seam.
type Meter struct {
	limits Limits
	facts  atomic.Int64
	words  atomic.Int64
	pairs  atomic.Int64
}

// NewMeter returns a meter enforcing l, or nil when l is zero — the
// nil meter is the "no budget" fast path.
func NewMeter(l Limits) *Meter {
	if l.Zero() {
		return nil
	}
	return &Meter{limits: l}
}

// Limits returns the caps the meter enforces (zero value for nil).
func (m *Meter) Limits() Limits {
	if m == nil {
		return Limits{}
	}
	return m.limits
}

func exhausted(resource string, limit int64) error {
	return fmt.Errorf("%w: %s limit %d exceeded", ErrExhausted, resource, limit)
}

// AddFacts charges n propagated facts; it returns an error wrapping
// ErrExhausted once the total crosses the Facts limit.
func (m *Meter) AddFacts(n int64) error {
	if m == nil || m.limits.Facts <= 0 {
		return nil
	}
	if m.facts.Add(n) > m.limits.Facts {
		return exhausted("propagated-facts", m.limits.Facts)
	}
	return nil
}

// AddWords adjusts the live bitset-word gauge by n (negative to credit
// freed storage, e.g. after a cycle collapse).
func (m *Meter) AddWords(n int64) error {
	if m == nil || m.limits.BitsetWords <= 0 {
		return nil
	}
	if m.words.Add(n) > m.limits.BitsetWords {
		return exhausted("bitset-words", m.limits.BitsetWords)
	}
	return nil
}

// AddPairs charges n automata equivalence checks.
func (m *Meter) AddPairs(n int64) error {
	if m == nil || m.limits.MergePairs <= 0 {
		return nil
	}
	if m.pairs.Add(n) > m.limits.MergePairs {
		return exhausted("merge-pairs", m.limits.MergePairs)
	}
	return nil
}

// Usage returns the current consumption (all zero for nil).
func (m *Meter) Usage() (facts, words, pairs int64) {
	if m == nil {
		return 0, 0, 0
	}
	return m.facts.Load(), m.words.Load(), m.pairs.Load()
}
