// Package cha implements the two classic cheap call-graph construction
// algorithms used as baselines against points-to-based call graphs:
//
//   - CHA (Class Hierarchy Analysis): a virtual call may target every
//     override of the declared method in any subtype of the receiver's
//     static type;
//   - RTA (Rapid Type Analysis): CHA restricted to classes actually
//     instantiated in reachable code, computed as a fixpoint.
//
// Neither needs points-to information, so both are much cheaper and
// much less precise than even a context-insensitive points-to analysis.
// They are not part of the paper's evaluation; they extend the library
// with the standard reference points a call-graph client expects and
// quantify how much precision points-to analysis (and thus Mahjong)
// buys over hierarchy-based reasoning.
package cha

import (
	"sort"

	"mahjong/internal/lang"
)

// Graph is a context-insensitive call graph.
type Graph struct {
	// Edges maps each reachable call site to its possible targets,
	// sorted by method ID.
	Edges map[*lang.Invoke][]*lang.Method
	// Reachable is the set of reachable methods.
	Reachable map[*lang.Method]bool
	// Instantiated is the set of instantiated classes (RTA only; CHA
	// reports every class with a reachable allocation or not at all).
	Instantiated map[*lang.Class]bool
}

// NumEdges counts call-graph edges.
func (g *Graph) NumEdges() int {
	n := 0
	for _, ts := range g.Edges {
		n += len(ts)
	}
	return n
}

// NumReachable counts reachable methods.
func (g *Graph) NumReachable() int { return len(g.Reachable) }

// PolyCallSites counts reachable virtual call sites with >= 2 targets.
func (g *Graph) PolyCallSites() int {
	n := 0
	for inv, ts := range g.Edges {
		if inv.Kind == lang.VirtualCall && len(ts) >= 2 {
			n++
		}
	}
	return n
}

// subtypesIndex maps each class to its (reflexive, transitive)
// subclasses, interfaces included.
func subtypesIndex(p *lang.Program) map[*lang.Class][]*lang.Class {
	idx := make(map[*lang.Class][]*lang.Class, len(p.Classes))
	for _, c := range p.Classes {
		for _, super := range p.Classes {
			if c.SubtypeOf(super) {
				idx[super] = append(idx[super], c)
			}
		}
	}
	return idx
}

// chaTargets resolves a virtual call site under CHA, optionally
// restricted to a set of instantiated classes (RTA).
func chaTargets(subtypes map[*lang.Class][]*lang.Class, inv *lang.Invoke, instantiated map[*lang.Class]bool) []*lang.Method {
	seen := map[*lang.Method]bool{}
	var out []*lang.Method
	for _, sub := range subtypes[inv.Base.Type] {
		if sub.IsInterface {
			continue
		}
		if instantiated != nil && !instantiated[sub] {
			continue
		}
		if m := sub.Dispatch(inv.Callee.Sig()); m != nil && !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// CHA builds the class-hierarchy-analysis call graph from the entry
// method: reachability is computed as a fixpoint, but dispatch uses the
// full hierarchy regardless of instantiation.
func CHA(p *lang.Program) *Graph {
	return build(p, false)
}

// RTA builds the rapid-type-analysis call graph: like CHA, but a class
// only dispatches if a reachable allocation instantiates it. The
// allocation set and the reachable set are computed as a mutual
// fixpoint.
func RTA(p *lang.Program) *Graph {
	return build(p, true)
}

func build(p *lang.Program, rta bool) *Graph {
	subtypes := subtypesIndex(p)
	g := &Graph{
		Edges:        make(map[*lang.Invoke][]*lang.Method),
		Reachable:    make(map[*lang.Method]bool),
		Instantiated: make(map[*lang.Class]bool),
	}
	if p.Entry == nil {
		return g
	}

	var worklist []*lang.Method
	reach := func(m *lang.Method) {
		if m == nil || m.IsAbstract || g.Reachable[m] {
			return
		}
		g.Reachable[m] = true
		worklist = append(worklist, m)
	}
	reach(p.Entry)

	// For RTA, virtual sites must be revisited when new classes become
	// instantiated; keep the reachable virtual sites and iterate to a
	// fixpoint over (reachable, instantiated).
	var virtSites []*lang.Invoke
	for {
		progressed := false
		for len(worklist) > 0 {
			m := worklist[len(worklist)-1]
			worklist = worklist[:len(worklist)-1]
			progressed = true
			for _, st := range m.Stmts {
				switch s := st.(type) {
				case *lang.Alloc:
					if !g.Instantiated[s.Site.Type] {
						g.Instantiated[s.Site.Type] = true
					}
				case *lang.Invoke:
					switch s.Kind {
					case lang.StaticCall, lang.SpecialCall:
						g.Edges[s] = []*lang.Method{s.Callee}
						reach(s.Callee)
					case lang.VirtualCall:
						virtSites = append(virtSites, s)
					}
				}
			}
		}
		// (Re-)resolve all virtual sites against the current state.
		changed := false
		var inst map[*lang.Class]bool
		if rta {
			inst = g.Instantiated
		}
		for _, inv := range virtSites {
			tgts := chaTargets(subtypes, inv, inst)
			if len(tgts) != len(g.Edges[inv]) {
				changed = true
				g.Edges[inv] = tgts
				for _, t := range tgts {
					reach(t)
				}
			}
		}
		if !changed && !progressed {
			break
		}
		if !changed && len(worklist) == 0 {
			break
		}
	}
	return g
}
