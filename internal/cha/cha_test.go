package cha

import (
	"testing"
	"testing/quick"

	"mahjong/internal/clients"
	"mahjong/internal/lang"
	"mahjong/internal/pta"
	"mahjong/internal/synth"
)

// buildHierProgram: Base with subclasses S1 (instantiated) and S2
// (never instantiated); a virtual call through a Base variable.
func buildHierProgram(t *testing.T) (*lang.Program, *lang.Invoke, *lang.Method, *lang.Method) {
	t.Helper()
	p := lang.NewProgram()
	base := p.NewClass("Base", nil)
	base.NewAbstractMethod("m", nil, nil)
	s1 := p.NewClass("S1", base)
	m1 := s1.NewMethod("m", false, nil, nil)
	m1.AddReturn(nil)
	s2 := p.NewClass("S2", base)
	m2 := s2.NewMethod("m", false, nil, nil)
	m2.AddReturn(nil)

	mainCls := p.NewClass("Main", nil)
	m := mainCls.NewMethod("main", true, nil, nil)
	b := m.NewVar("b", base)
	m.AddAlloc(b, s1)
	inv := m.AddVirtualCall(nil, b, "m")
	m.AddReturn(nil)
	p.SetEntry(m)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p, inv, m1, m2
}

func TestCHAOverapproximates(t *testing.T) {
	p, inv, m1, m2 := buildHierProgram(t)
	g := CHA(p)
	tgts := g.Edges[inv]
	if len(tgts) != 2 {
		t.Fatalf("CHA targets=%v want both S1.m and S2.m", tgts)
	}
	if !g.Reachable[m1] || !g.Reachable[m2] {
		t.Fatal("CHA must reach both overrides")
	}
	if g.PolyCallSites() != 1 {
		t.Fatalf("poly=%d want 1", g.PolyCallSites())
	}
}

func TestRTAUsesInstantiation(t *testing.T) {
	p, inv, m1, m2 := buildHierProgram(t)
	g := RTA(p)
	tgts := g.Edges[inv]
	if len(tgts) != 1 || tgts[0] != m1 {
		t.Fatalf("RTA targets=%v want only S1.m", tgts)
	}
	if g.Reachable[m2] {
		t.Fatal("RTA must not reach S2.m")
	}
	if g.PolyCallSites() != 0 {
		t.Fatalf("poly=%d want 0", g.PolyCallSites())
	}
}

// TestRTAFixpoint: a class instantiated only inside a method reached
// through a virtual call must still be discovered (mutual fixpoint).
func TestRTAFixpoint(t *testing.T) {
	p := lang.NewProgram()
	base := p.NewClass("Base", nil)
	base.NewAbstractMethod("m", nil, nil)
	s1 := p.NewClass("S1", base)
	m1 := s1.NewMethod("m", false, nil, nil)
	// S1.m instantiates S2 — only discoverable after S1.m is reachable.
	s2 := p.NewClass("S2", base)
	m2 := s2.NewMethod("m", false, nil, nil)
	m2.AddReturn(nil)
	tmp := m1.NewVar("tmp", base)
	m1.AddAlloc(tmp, s2)
	m1.AddVirtualCall(nil, tmp, "m")
	m1.AddReturn(nil)

	mainCls := p.NewClass("Main", nil)
	m := mainCls.NewMethod("main", true, nil, nil)
	b := m.NewVar("b", base)
	m.AddAlloc(b, s1)
	m.AddVirtualCall(nil, b, "m")
	m.AddReturn(nil)
	p.SetEntry(m)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	g := RTA(p)
	if !g.Reachable[m2] {
		t.Fatal("RTA fixpoint missed S2.m")
	}
	if !g.Instantiated[s2] {
		t.Fatal("RTA missed S2 instantiation")
	}
}

func TestEmptyEntry(t *testing.T) {
	p := lang.NewProgram()
	g := CHA(p)
	if g.NumEdges() != 0 || g.NumReachable() != 0 {
		t.Fatal("empty program should yield empty graph")
	}
}

// TestQuickPrecisionOrdering: on random programs, points-to call graphs
// are at most as large as RTA's, which is at most as large as CHA's;
// and all are supersets of the points-to graph's edges (soundness of
// the cheaper analyses w.r.t. the precise one, for this IR without
// reflection).
func TestQuickPrecisionOrdering(t *testing.T) {
	f := func(seed int64) bool {
		prog := synth.RandomProgram(seed)
		chaG := CHA(prog)
		rtaG := RTA(prog)
		pt, err := pta.Solve(prog, pta.Options{})
		if err != nil {
			t.Fatal(err)
		}
		m := clients.Evaluate(pt)
		// Edge counts: pta ≤ rta ≤ cha.
		if !(m.CallGraphEdges <= rtaG.NumEdges() && rtaG.NumEdges() <= chaG.NumEdges()) {
			t.Logf("seed=%d edges: pta=%d rta=%d cha=%d", seed, m.CallGraphEdges, rtaG.NumEdges(), chaG.NumEdges())
			return false
		}
		// Reachability: pta ⊆ rta ⊆ cha.
		for meth := range rtaG.Reachable {
			if !chaG.Reachable[meth] {
				return false
			}
		}
		// Per-site target containment: pta targets ⊆ rta targets.
		for _, inv := range pt.ReachableInvokes() {
			rtaTs := map[*lang.Method]bool{}
			for _, tm := range rtaG.Edges[inv] {
				rtaTs[tm] = true
			}
			for _, tm := range pt.CallTargets(inv) {
				if !rtaTs[tm] {
					t.Logf("seed=%d site %v: pta target %v missing from RTA", seed, inv, tm)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestOnBenchmark(t *testing.T) {
	prof, err := synth.ProfileByName("luindex")
	if err != nil {
		t.Fatal(err)
	}
	prog := synth.MustGenerate(prof)
	chaG := CHA(prog)
	rtaG := RTA(prog)
	pt, err := pta.Solve(prog, pta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := clients.Evaluate(pt)
	if !(m.CallGraphEdges <= rtaG.NumEdges() && rtaG.NumEdges() <= chaG.NumEdges()) {
		t.Fatalf("ordering violated: pta=%d rta=%d cha=%d", m.CallGraphEdges, rtaG.NumEdges(), chaG.NumEdges())
	}
	if chaG.PolyCallSites() < m.PolyCallSites {
		t.Fatalf("CHA fewer poly sites (%d) than pta (%d)", chaG.PolyCallSites(), m.PolyCallSites)
	}
}
