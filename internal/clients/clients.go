// Package clients implements the paper's three type-dependent clients
// of points-to analysis (§6): call graph construction, devirtualization
// and may-fail casting. Their precision depends only on the types of
// pointed-to objects, which is what makes the Mahjong abstraction
// near-lossless for them.
package clients

import (
	"mahjong/internal/lang"
	"mahjong/internal/pta"
)

// Metrics are the three client measurements of Table 2, plus reachable
// methods (a common sanity metric). Lower is better for all but
// Reachable.
type Metrics struct {
	// CallGraphEdges counts context-insensitive call-graph edges
	// (#call graph edges).
	CallGraphEdges int
	// PolyCallSites counts virtual call sites with two or more targets,
	// i.e. sites devirtualization cannot rewrite (#poly call sites).
	PolyCallSites int
	// MayFailCasts counts cast statements that may receive an object
	// whose type is not a subtype of the cast target (#may-fail casts).
	MayFailCasts int
	// Reachable counts reachable methods.
	Reachable int
	// EscapingSites and StackAllocSites partition the reachable
	// allocation sites by the escape client (escape.go); fewer escaping
	// sites is better.
	EscapingSites   int
	StackAllocSites int
	// MayNullLoads counts instance-field loads that may observe an
	// uninitialized field (nullness.go).
	MayNullLoads int
	// TaintedSinks counts sink calls a tainted object may reach, out of
	// TaintSinks reachable sink calls (taint.go).
	TaintedSinks int
	TaintSinks   int
}

// Evaluate computes all client metrics from a points-to result.
func Evaluate(r *pta.Result) Metrics {
	esc := Escape(r)
	return Metrics{
		CallGraphEdges:  r.NumCallGraphEdges(),
		PolyCallSites:   len(PolyCallSites(r)),
		MayFailCasts:    len(MayFailCasts(r)),
		Reachable:       r.NumReachableMethods(),
		EscapingSites:   len(esc.Escaping),
		StackAllocSites: len(esc.Stackable),
		MayNullLoads:    len(MayNullLoads(r)),
		TaintedSinks:    len(TaintedSinks(r)),
		TaintSinks:      len(TaintSinks(r)),
	}
}

// PolyCallSites returns the reachable virtual call sites that dispatch
// to two or more methods, ordered by call-site ID.
func PolyCallSites(r *pta.Result) []*lang.Invoke {
	var out []*lang.Invoke
	for _, inv := range r.ReachableInvokes() {
		if len(r.CallTargets(inv)) >= 2 {
			out = append(out, inv)
		}
	}
	return out
}

// MonoCallSites returns the reachable virtual call sites that can be
// devirtualized (exactly one target), ordered by call-site ID.
func MonoCallSites(r *pta.Result) []*lang.Invoke {
	var out []*lang.Invoke
	for _, inv := range r.ReachableInvokes() {
		if len(r.CallTargets(inv)) == 1 {
			out = append(out, inv)
		}
	}
	return out
}

// MayFailCasts returns the reachable cast statements into which an
// object of an incompatible type may flow.
func MayFailCasts(r *pta.Result) []*lang.Cast {
	var out []*lang.Cast
	for _, rc := range r.ReachableCasts() {
		for _, o := range rc.Incoming {
			if !o.Type.SubtypeOf(rc.Stmt.Type) {
				out = append(out, rc.Stmt)
				break
			}
		}
	}
	return out
}

// UncaughtExceptionTypes returns the types of exception objects that
// may escape the entry method (the over-approximation accumulated in
// the entry's synthetic $exc variable), sorted by name. An entry with
// no exception variable cannot throw.
func UncaughtExceptionTypes(r *pta.Result) []*lang.Class {
	entry := r.Prog.Entry
	if entry == nil || !entry.HasExcVar() {
		return nil
	}
	return r.VarTypes(entry.ExcVar())
}

// MayAlias reports whether two variables may point to the same abstract
// object (their context-insensitively projected points-to sets
// intersect).
//
// May-alias is exactly the client class the paper warns Mahjong is NOT
// meant for (§1): merging type-consistent objects preserves pointed-to
// *types* but deliberately conflates object *identities*, so a
// Mahjong-based analysis reports more aliases than the allocation-site
// baseline. See the integration tests for a demonstration on Figure 1.
func MayAlias(r *pta.Result, a, b *lang.Var) bool {
	return r.VarPointsTo(a).Intersects(r.VarPointsTo(b))
}

// AliasPairs counts the may-aliasing unordered pairs among the given
// variables; a coarse whole-set alias metric used to quantify the
// alias-precision loss of coarser heap abstractions.
func AliasPairs(r *pta.Result, vars []*lang.Var) int {
	n := 0
	for i := 0; i < len(vars); i++ {
		for j := i + 1; j < len(vars); j++ {
			if MayAlias(r, vars[i], vars[j]) {
				n++
			}
		}
	}
	return n
}

// SafeCasts returns the reachable casts proven safe.
func SafeCasts(r *pta.Result) []*lang.Cast {
	fail := map[*lang.Cast]bool{}
	for _, c := range MayFailCasts(r) {
		fail[c] = true
	}
	var out []*lang.Cast
	for _, rc := range r.ReachableCasts() {
		if !fail[rc.Stmt] {
			out = append(out, rc.Stmt)
		}
	}
	return out
}
