package clients

import (
	"testing"

	"mahjong/internal/lang"
	"mahjong/internal/pta"
)

// buildClientProgram constructs a program exercising all three clients:
//   - a genuinely polymorphic call (two receiver types at one site),
//   - a devirtualizable mono-call,
//   - a safe cast and a may-fail cast.
func buildClientProgram(t *testing.T) (*lang.Program, *pta.Result) {
	t.Helper()
	p := lang.NewProgram()
	base := p.NewClass("Base", nil)
	base.NewAbstractMethod("m", nil, nil)
	sub1 := p.NewClass("Sub1", base)
	sub1.NewMethod("m", false, nil, nil).AddReturn(nil)
	sub2 := p.NewClass("Sub2", base)
	sub2.NewMethod("m", false, nil, nil).AddReturn(nil)

	mainCls := p.NewClass("Main", nil)
	m := mainCls.NewMethod("main", true, nil, nil)
	a := m.NewVar("a", base)
	b := m.NewVar("b", base)
	mixed := m.NewVar("mixed", base)
	c1 := m.NewVar("c1", sub1)
	c2 := m.NewVar("c2", sub2)
	m.AddAlloc(a, sub1)
	m.AddAlloc(b, sub2)
	m.AddCopy(mixed, a)
	m.AddCopy(mixed, b)
	m.AddVirtualCall(nil, mixed, "m") // poly: Sub1.m and Sub2.m
	m.AddVirtualCall(nil, a, "m")     // mono: Sub1.m
	m.AddCast(c1, sub1, a)            // safe
	m.AddCast(c2, sub2, mixed)        // may fail (Sub1 flows in)
	m.AddReturn(nil)
	p.SetEntry(m)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	r, err := pta.Solve(p, pta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p, r
}

func TestEvaluate(t *testing.T) {
	_, r := buildClientProgram(t)
	m := Evaluate(r)
	if m.PolyCallSites != 1 {
		t.Errorf("poly=%d want 1", m.PolyCallSites)
	}
	if m.MayFailCasts != 1 {
		t.Errorf("may-fail=%d want 1", m.MayFailCasts)
	}
	// main + Sub1.m + Sub2.m reachable.
	if m.Reachable != 3 {
		t.Errorf("reachable=%d want 3", m.Reachable)
	}
	// Edges: poly site has 2 targets, mono site 1.
	if m.CallGraphEdges != 3 {
		t.Errorf("edges=%d want 3", m.CallGraphEdges)
	}
}

func TestPolyAndMonoSites(t *testing.T) {
	_, r := buildClientProgram(t)
	poly := PolyCallSites(r)
	mono := MonoCallSites(r)
	if len(poly) != 1 || len(mono) != 1 {
		t.Fatalf("poly=%d mono=%d", len(poly), len(mono))
	}
	if poly[0] == mono[0] {
		t.Fatal("same site classified twice")
	}
	// Together they cover all reachable virtual sites.
	if len(poly)+len(mono) != len(r.ReachableInvokes()) {
		t.Fatal("classification does not partition sites")
	}
}

func TestCasts(t *testing.T) {
	_, r := buildClientProgram(t)
	fail := MayFailCasts(r)
	safe := SafeCasts(r)
	if len(fail) != 1 || len(safe) != 1 {
		t.Fatalf("fail=%d safe=%d", len(fail), len(safe))
	}
	if fail[0].Type.Name != "Sub2" {
		t.Errorf("wrong failing cast: %v", fail[0])
	}
	if safe[0].Type.Name != "Sub1" {
		t.Errorf("wrong safe cast: %v", safe[0])
	}
}

func TestEmptyProgramMetrics(t *testing.T) {
	p := lang.NewProgram()
	mainCls := p.NewClass("Main", nil)
	m := mainCls.NewMethod("main", true, nil, nil)
	m.AddReturn(nil)
	p.SetEntry(m)
	r, err := pta.Solve(p, pta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	metrics := Evaluate(r)
	if metrics.CallGraphEdges != 0 || metrics.PolyCallSites != 0 || metrics.MayFailCasts != 0 {
		t.Fatalf("non-zero metrics on empty program: %+v", metrics)
	}
	if metrics.Reachable != 1 {
		t.Fatalf("reachable=%d want 1 (main)", metrics.Reachable)
	}
}

// TestCastWithEmptyIncoming: a cast whose operand never points anywhere
// is trivially safe.
func TestCastWithEmptyIncoming(t *testing.T) {
	p := lang.NewProgram()
	a := p.NewClass("A", nil)
	mainCls := p.NewClass("Main", nil)
	m := mainCls.NewMethod("main", true, nil, nil)
	x := m.NewVar("x", a)
	y := m.NewVar("y", a)
	m.AddCast(y, a, x) // x never assigned
	m.AddReturn(nil)
	p.SetEntry(m)
	r, err := pta.Solve(p, pta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(MayFailCasts(r)); n != 0 {
		t.Fatalf("empty cast reported may-fail: %d", n)
	}
	if n := len(SafeCasts(r)); n != 1 {
		t.Fatalf("safe=%d want 1", n)
	}
}

func TestUncaughtExceptionTypes(t *testing.T) {
	p := lang.NewProgram()
	errCls := p.NewClass("Err", nil)
	ioErr := p.NewClass("IOErr", errCls)
	lib := p.NewClass("Lib", nil)
	boom := lib.NewMethod("boom", true, nil, nil)
	ev := boom.NewVar("ev", ioErr)
	boom.AddAlloc(ev, ioErr)
	boom.AddThrow(ev)
	boom.AddReturn(nil)
	mainCls := p.NewClass("Main", nil)
	m := mainCls.NewMethod("main", true, nil, nil)
	m.AddStaticCall(nil, boom)
	m.AddReturn(nil)
	p.SetEntry(m)
	r, err := pta.Solve(p, pta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := UncaughtExceptionTypes(r)
	if len(got) != 1 || got[0] != ioErr {
		t.Fatalf("uncaught=%v want [IOErr]", got)
	}
}

func TestUncaughtExceptionsNone(t *testing.T) {
	p := lang.NewProgram()
	mainCls := p.NewClass("Main", nil)
	m := mainCls.NewMethod("main", true, nil, nil)
	m.AddReturn(nil)
	p.SetEntry(m)
	r, err := pta.Solve(p, pta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := UncaughtExceptionTypes(r); got != nil {
		t.Fatalf("uncaught=%v want nil", got)
	}
}

func TestMayAlias(t *testing.T) {
	p := lang.NewProgram()
	a := p.NewClass("A", nil)
	mainCls := p.NewClass("Main", nil)
	m := mainCls.NewMethod("main", true, nil, nil)
	x := m.NewVar("x", a)
	y := m.NewVar("y", a)
	z := m.NewVar("z", a)
	m.AddAlloc(x, a)
	m.AddAlloc(y, a)
	m.AddCopy(z, x)
	m.AddReturn(nil)
	p.SetEntry(m)
	r, err := pta.Solve(p, pta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if MayAlias(r, x, y) {
		t.Fatal("x and y must not alias")
	}
	if !MayAlias(r, x, z) {
		t.Fatal("x and z must alias")
	}
	if got := AliasPairs(r, []*lang.Var{x, y, z}); got != 1 {
		t.Fatalf("alias pairs=%d want 1", got)
	}
}
