// Escape / stack-allocation client.
//
// This client and its siblings (nullness.go, taint.go) extend the
// paper's type-dependent trio with clients whose precision depends on
// object *identity*, giving the Mahjong-vs-allocation-site comparison
// new axes: escape stays monotone under merging (a site only gains
// escape reasons when its object absorbs siblings), which makes it a
// usable differential oracle, while nullness deliberately is not (see
// nullness.go).
package clients

import (
	"sort"

	"mahjong/internal/lang"
	"mahjong/internal/pta"
)

// EscapeResult partitions the reachable allocation sites by a simple
// flow-insensitive escape criterion. A site's object escapes when it
// may be stored into any object field or static field, thrown, or held
// by a local of a method other than the allocating one (which covers
// returns and argument passing: the caller's or callee's variable then
// points to it). Everything else is method-confined and stack-allocable.
type EscapeResult struct {
	Escaping  []*lang.AllocSite
	Stackable []*lang.AllocSite
}

// Escape classifies every reachable allocation site. The criterion is
// evaluated per *site* against the abstraction's object for that site,
// so under a merged heap a site inherits the escape reasons of every
// site merged with it — coarser, never less sound.
func Escape(r *pta.Result) EscapeResult {
	// Object-level escape facts that apply to all merged-in sites.
	escaped := map[*pta.Obj]bool{}
	// Methods whose locals may reference the object.
	holders := map[*pta.Obj]map[*lang.Method]bool{}

	// Stored into some object's field (including array elements): the
	// object becomes heap-reachable.
	r.FieldPointsTo(func(base *pta.Obj, f *lang.Field, targets []*pta.Obj) {
		for _, o := range targets {
			escaped[o] = true
		}
	})

	// Variables whose pointees escape by statement form: static-store
	// sources (globally reachable) and thrown values (cross-method
	// control flow).
	escVars := map[*lang.Var]bool{}
	for _, m := range r.Prog.Methods {
		if m.IsAbstract || !r.ReachableMethod(m) {
			continue
		}
		for _, st := range m.Stmts {
			switch s := st.(type) {
			case *lang.StaticStore:
				escVars[s.RHS] = true
			case *lang.Throw:
				escVars[s.Value] = true
			}
		}
	}

	r.ForEachVarObj(func(v *lang.Var, o *pta.Obj) {
		hs := holders[o]
		if hs == nil {
			hs = map[*lang.Method]bool{}
			holders[o] = hs
		}
		hs[v.Method] = true
		if escVars[v] {
			escaped[o] = true
		}
	})

	var res EscapeResult
	for o, hs := range holders {
		classify(o, hs, escaped[o], &res, r)
	}
	// Objects reachable only through the heap (field targets never held
	// by a live variable) still own sites; they escaped by definition.
	for o := range escaped {
		if holders[o] == nil {
			classify(o, nil, true, &res, r)
		}
	}
	sort.Slice(res.Escaping, func(i, j int) bool { return res.Escaping[i].ID < res.Escaping[j].ID })
	sort.Slice(res.Stackable, func(i, j int) bool { return res.Stackable[i].ID < res.Stackable[j].ID })
	return res
}

func classify(o *pta.Obj, hs map[*lang.Method]bool, objEscapes bool, res *EscapeResult, r *pta.Result) {
	for _, s := range o.Sites {
		if !r.ReachableMethod(s.Method) {
			continue
		}
		esc := objEscapes
		if !esc {
			for m := range hs {
				if m != s.Method {
					esc = true
					break
				}
			}
		}
		if esc {
			res.Escaping = append(res.Escaping, s)
		} else {
			res.Stackable = append(res.Stackable, s)
		}
	}
}
