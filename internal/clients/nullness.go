package clients

import (
	"fmt"
	"sort"

	"mahjong/internal/lang"
	"mahjong/internal/pta"
)

// LoadSite names one instance-field load statement.
type LoadSite struct {
	Method *lang.Method
	Index  int // statement index within Method.Stmts
	Load   *lang.Load
}

func (l LoadSite) String() string {
	return fmt.Sprintf("%s/stmt#%d %s.%s", l.Method, l.Index, l.Load.Base.Name, l.Load.Field.Name)
}

// MayNullLoads returns the reachable instance-field loads (array element
// loads included) that may observe an uninitialized — hence null — field:
// some object the base may point to has no recorded store into the loaded
// field. Loads whose base points to nothing are vacuously non-null here
// (they never execute a dereference the analysis can see). Static-field
// loads are out of scope.
//
// Unlike escape and taint, nullness is NOT monotone under heap merging:
// merging an initialized object into an uninitialized sibling hides the
// missing store (fewer warnings), while coarser points-to sets add base
// objects (more warnings). The differential harness therefore checks
// nullness only on the exact-equivalence axes, not Mahjong-vs-alloc-site;
// it is exactly the kind of identity-dependent client the paper scopes
// Mahjong away from (§1).
func MayNullLoads(r *pta.Result) []LoadSite {
	type objField struct {
		o *pta.Obj
		f *lang.Field
	}
	written := map[objField]bool{}
	r.FieldPointsTo(func(base *pta.Obj, f *lang.Field, targets []*pta.Obj) {
		if len(targets) > 0 {
			written[objField{base, f}] = true
		}
	})

	// One sweep resolves every load base's pointees.
	bases := map[*lang.Var]bool{}
	for _, m := range r.Prog.Methods {
		if m.IsAbstract || !r.ReachableMethod(m) {
			continue
		}
		for _, st := range m.Stmts {
			if ld, ok := st.(*lang.Load); ok {
				bases[ld.Base] = true
			}
		}
	}
	baseObjs := map[*lang.Var]map[*pta.Obj]bool{}
	r.ForEachVarObj(func(v *lang.Var, o *pta.Obj) {
		if !bases[v] {
			return
		}
		set := baseObjs[v]
		if set == nil {
			set = map[*pta.Obj]bool{}
			baseObjs[v] = set
		}
		set[o] = true
	})

	var out []LoadSite
	for _, m := range r.Prog.Methods {
		if m.IsAbstract || !r.ReachableMethod(m) {
			continue
		}
		for i, st := range m.Stmts {
			ld, ok := st.(*lang.Load)
			if !ok {
				continue
			}
			for o := range baseObjs[ld.Base] {
				if !written[objField{o, ld.Field}] {
					out = append(out, LoadSite{Method: m, Index: i, Load: ld})
					break
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Method != out[j].Method {
			return out[i].Method.ID < out[j].Method.ID
		}
		return out[i].Index < out[j].Index
	})
	return out
}
