// Precision tests for the identity-dependent clients (escape, nullness,
// taint) on degenerate programs, plus MayAlias property tests driven by
// the scenario searcher. External test package: scenario imports
// clients, so these tests must not live inside package clients.
package clients_test

import (
	"testing"

	"mahjong/internal/clients"
	"mahjong/internal/lang"
	"mahjong/internal/pta"
	"mahjong/internal/scenario"
)

func solve(t *testing.T, p *lang.Program) *pta.Result {
	t.Helper()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	r, err := pta.Solve(p, pta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestNewClientsEmptyProgram: a program with no allocations, loads or
// calls reports zero for every new metric.
func TestNewClientsEmptyProgram(t *testing.T) {
	p := lang.NewProgram()
	m := p.NewClass("Main", nil).NewMethod("main", true, nil, nil)
	m.AddReturn(nil)
	p.SetEntry(m)
	r := solve(t, p)
	mt := clients.Evaluate(r)
	if mt.EscapingSites != 0 || mt.StackAllocSites != 0 {
		t.Errorf("escape on empty program: %+v", mt)
	}
	if mt.MayNullLoads != 0 {
		t.Errorf("may-null loads on empty program: %d", mt.MayNullLoads)
	}
	if mt.TaintSinks != 0 || mt.TaintedSinks != 0 {
		t.Errorf("taint on empty program: %+v", mt)
	}
}

// TestEscapeSingleClass: one class, three sites — a method-confined
// object is stackable; a static-store target and a call argument escape.
func TestEscapeSingleClass(t *testing.T) {
	p := lang.NewProgram()
	a := p.NewClass("A", nil)
	g := a.NewStaticField("g", a)
	helper := a.NewMethod("use", true, []*lang.Class{a}, nil)
	helper.AddReturn(nil)
	m := p.NewClass("Main", nil).NewMethod("main", true, nil, nil)
	x := m.NewVar("x", a)
	y := m.NewVar("y", a)
	z := m.NewVar("z", a)
	sLocal := m.AddAlloc(x, a)
	sStatic := m.AddAlloc(y, a)
	sArg := m.AddAlloc(z, a)
	m.AddStaticStore(g, y)
	m.AddStaticCall(nil, helper, z)
	m.AddReturn(nil)
	p.SetEntry(m)

	esc := clients.Escape(solve(t, p))
	if len(esc.Stackable) != 1 || esc.Stackable[0] != sLocal {
		t.Fatalf("stackable=%v want [%v]", esc.Stackable, sLocal)
	}
	if len(esc.Escaping) != 2 || esc.Escaping[0] != sStatic || esc.Escaping[1] != sArg {
		t.Fatalf("escaping=%v want [%v %v]", esc.Escaping, sStatic, sArg)
	}
}

// TestNullnessSingleClass: a load from a never-written field is may-null;
// a load from a written field is not; a load whose base points nowhere is
// vacuously non-null.
func TestNullnessSingleClass(t *testing.T) {
	p := lang.NewProgram()
	a := p.NewClass("A", nil)
	f := a.NewField("f", a)
	g := a.NewField("g", a)
	m := p.NewClass("Main", nil).NewMethod("main", true, nil, nil)
	x := m.NewVar("x", a)
	v := m.NewVar("v", a)
	q := m.NewVar("q", a)
	w := m.NewVar("w", a)
	dead := m.NewVar("dead", a)
	got := m.NewVar("got", a)
	m.AddAlloc(x, a)
	m.AddAlloc(v, a)
	m.AddStore(x, g, v)     // g written
	m.AddLoad(q, x, f)      // f never written: may-null
	m.AddLoad(w, x, g)      // g written: fine
	m.AddLoad(got, dead, f) // dead points nowhere: vacuous
	m.AddReturn(nil)
	p.SetEntry(m)

	loads := clients.MayNullLoads(solve(t, p))
	if len(loads) != 1 {
		t.Fatalf("may-null loads=%v want exactly the x.f load", loads)
	}
	if loads[0].Load.Field != f {
		t.Fatalf("flagged %s, want field f", loads[0])
	}
}

// TestNewClientsExceptionOnly: a program whose only heap activity is
// allocating and throwing an exception — the thrown object escapes, no
// loads exist, and a non-Taint class triggers no taint.
func TestNewClientsExceptionOnly(t *testing.T) {
	p := lang.NewProgram()
	errCls := p.NewClass("Err", nil)
	lib := p.NewClass("Lib", nil)
	boom := lib.NewMethod("boom", true, nil, nil)
	ev := boom.NewVar("ev", errCls)
	site := boom.AddAlloc(ev, errCls)
	boom.AddThrow(ev)
	boom.AddReturn(nil)
	m := p.NewClass("Main", nil).NewMethod("main", true, nil, nil)
	m.AddStaticCall(nil, boom)
	m.AddReturn(nil)
	p.SetEntry(m)

	r := solve(t, p)
	mt := clients.Evaluate(r)
	esc := clients.Escape(r)
	if len(esc.Escaping) != 1 || esc.Escaping[0] != site || len(esc.Stackable) != 0 {
		t.Fatalf("thrown object must escape: %+v", esc)
	}
	if mt.MayNullLoads != 0 || mt.TaintSinks != 0 || mt.TaintedSinks != 0 {
		t.Fatalf("unexpected nullness/taint on exception-only program: %+v", mt)
	}
}

// TestTaintSingleFlow: a Taint-prefixed allocation reaching a sink-named
// callee's argument is a tainted sink; clean data at a sink is not; a
// non-sink call never counts. Dotted class names use the simple name.
func TestTaintSingleFlow(t *testing.T) {
	p := lang.NewProgram()
	td := p.NewClass("io.TaintReq", nil)
	str := p.NewClass("Str", nil)
	lib := p.NewClass("Lib", nil)
	sinkA := lib.NewMethod("sinkExec", true, []*lang.Class{td}, nil)
	sinkA.AddReturn(nil)
	sinkB := lib.NewMethod("sinkLog", true, []*lang.Class{str}, nil)
	sinkB.AddReturn(nil)
	other := lib.NewMethod("format", true, []*lang.Class{td}, nil)
	other.AddReturn(nil)
	m := p.NewClass("Main", nil).NewMethod("main", true, nil, nil)
	x := m.NewVar("x", td)
	s := m.NewVar("s", str)
	m.AddAlloc(x, td)
	m.AddAlloc(s, str)
	hot := m.AddStaticCall(nil, sinkA, x)
	m.AddStaticCall(nil, sinkB, s)
	m.AddStaticCall(nil, other, x)
	m.AddReturn(nil)
	p.SetEntry(m)

	r := solve(t, p)
	if got := clients.TaintSinks(r); len(got) != 2 {
		t.Fatalf("sinks=%v want the two sink* calls", got)
	}
	tainted := clients.TaintedSinks(r)
	if len(tainted) != 1 || tainted[0] != hot {
		t.Fatalf("tainted=%v want only the sinkExec call", tainted)
	}
}

// TestMayAliasProperties checks reflexivity and symmetry of MayAlias on
// programs produced by the scenario searcher — real multi-motif programs
// rather than hand-built minimal ones. Reflexivity: a variable aliases
// itself exactly when it points to anything. Symmetry: MayAlias(a,b) ==
// MayAlias(b,a) for every pair of locals in a method.
func TestMayAliasProperties(t *testing.T) {
	wants := []scenario.Want{
		{FieldDepth: 5, PolyContainers: 2},
		{NearMissFamilies: 2, CallGraphFanout: 8},
	}
	for _, w := range wants {
		f, err := scenario.Search(w, scenario.Options{Seed: 21})
		if err != nil {
			t.Fatal(err)
		}
		r, err := pta.Solve(f.Prog, pta.Options{})
		if err != nil {
			t.Fatal(err)
		}
		checkedPairs := 0
		for _, meth := range f.Prog.Methods {
			if meth.IsAbstract || !r.ReachableMethod(meth) {
				continue
			}
			for i, a := range meth.Locals {
				pointsSomewhere := len(r.VarTypes(a)) > 0
				if got := clients.MayAlias(r, a, a); got != pointsSomewhere {
					t.Fatalf("reflexivity: MayAlias(%v,%v)=%v but points-to non-empty=%v",
						a, a, got, pointsSomewhere)
				}
				for _, b := range meth.Locals[i+1:] {
					if clients.MayAlias(r, a, b) != clients.MayAlias(r, b, a) {
						t.Fatalf("symmetry violated for %v, %v in %v", a, b, meth)
					}
					checkedPairs++
				}
			}
		}
		if checkedPairs == 0 {
			t.Fatal("searched program yielded no variable pairs to check")
		}
	}
}
