package clients

import (
	"sort"
	"strings"

	"mahjong/internal/lang"
	"mahjong/internal/pta"
)

// The taint client is convention-based, so it needs no annotation
// syntax in the IR: every allocation of a class whose simple name (the
// segment after the last '.') starts with "Taint" produces a tainted
// object, and every call whose callee's name starts with "sink" is a
// sink. A sink is tainted when any argument may point to a tainted
// object. Like the call-graph clients this is monotone under Mahjong
// merging — only type-consistent (same-type) objects merge, so a merged
// object is tainted exactly when its members are, and coarser points-to
// sets can only add tainted pointees — which makes it a valid
// Mahjong-vs-alloc-site differential oracle.

// TaintSourceObj reports whether the abstract object is a taint source
// by the naming convention.
func TaintSourceObj(o *pta.Obj) bool {
	name := o.Type.Name
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		name = name[i+1:]
	}
	return strings.HasPrefix(name, "Taint")
}

// taintSinkCall reports whether the invoke targets a sink by name.
// Virtual calls use the statically resolved declaration; overrides keep
// the name, so dispatch cannot launder a sink call.
func taintSinkCall(inv *lang.Invoke) bool {
	return inv.Callee != nil && strings.HasPrefix(inv.Callee.Name, "sink")
}

// TaintSinks returns every reachable sink call site, sorted by site ID.
func TaintSinks(r *pta.Result) []*lang.Invoke {
	var out []*lang.Invoke
	for _, m := range r.Prog.Methods {
		if m.IsAbstract || !r.ReachableMethod(m) {
			continue
		}
		for _, st := range m.Stmts {
			if inv, ok := st.(*lang.Invoke); ok && taintSinkCall(inv) {
				out = append(out, inv)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// TaintedSinks returns the reachable sink calls into which a tainted
// object may flow through some argument, sorted by site ID.
func TaintedSinks(r *pta.Result) []*lang.Invoke {
	sinks := TaintSinks(r)
	argOf := map[*lang.Var][]*lang.Invoke{}
	for _, inv := range sinks {
		for _, a := range inv.Args {
			argOf[a] = append(argOf[a], inv)
		}
	}
	tainted := map[*lang.Invoke]bool{}
	r.ForEachVarObj(func(v *lang.Var, o *pta.Obj) {
		invs := argOf[v]
		if len(invs) == 0 || !TaintSourceObj(o) {
			return
		}
		for _, inv := range invs {
			tainted[inv] = true
		}
	})
	var out []*lang.Invoke
	for _, inv := range sinks {
		if tainted[inv] {
			out = append(out, inv)
		}
	}
	return out
}
