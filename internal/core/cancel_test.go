package core

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"mahjong/internal/fpg"
	"mahjong/internal/lang"
	"mahjong/internal/pta"
)

// mergeableFPG builds an FPG with several type-consistent objects so
// that both modeling phases have real work to (not) do.
func mergeableFPG(t testing.TB) *fpg.Graph {
	t.Helper()
	p := lang.NewProgram()
	a := p.NewClass("A", nil)
	b := p.NewClass("B", nil)
	f := a.NewField("f", b)
	mainCls := p.NewClass("Main", nil)
	m := mainCls.NewMethod("main", true, nil, nil)
	for i := 0; i < 8; i++ {
		va := m.NewVar(fmt.Sprintf("a%d", i), a)
		vb := m.NewVar(fmt.Sprintf("b%d", i), b)
		m.AddAlloc(va, a)
		m.AddAlloc(vb, b)
		m.AddStore(va, f, vb)
	}
	m.AddReturn(nil)
	p.SetEntry(m)
	if err := p.Validate(); err != nil {
		t.Fatalf("program invalid: %v", err)
	}
	pre, err := pta.Solve(p, pta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return fpg.Build(pre, fpg.Options{})
}

func TestBuildContextPreCancelled(t *testing.T) {
	g := mergeableFPG(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := BuildContext(ctx, g, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want wrapped context.Canceled, got %v", err)
	}
}

func TestBuildContextBackgroundMatchesBuild(t *testing.T) {
	g := mergeableFPG(t)
	want := Build(g, Options{Workers: 1})
	got, err := BuildContext(context.Background(), g, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got.NumMerged != want.NumMerged || got.NumObjects != want.NumObjects {
		t.Fatalf("BuildContext diverged: %d/%d vs %d/%d merged/objects",
			got.NumMerged, got.NumObjects, want.NumMerged, want.NumObjects)
	}
	if got.NumMerged >= got.NumObjects {
		t.Fatalf("expected some merging, got %d of %d", got.NumMerged, got.NumObjects)
	}
}
