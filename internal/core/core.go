// Package core implements MAHJONG's heap modeler: Algorithm 1 of the
// paper. Given the field points-to graph of a pre-analysis, it merges
// every pair of type-consistent objects (Definition 2.1) by testing the
// equivalence of their sequential automata (package automata), and emits
// the merged object map (MOM) that a subsequent points-to analysis
// consumes through pta.NewMergedSiteModel.
//
// The §5 optimizations are implemented and individually controllable
// for ablation: the disjoint-set forest (package unionfind), shared
// sequential automata (package automata's Universe), and
// synchronization-free parallel type-consistency checks partitioned by
// object type.
package core

import (
	"context"
	"crypto/sha256"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mahjong/internal/automata"
	"mahjong/internal/budget"
	"mahjong/internal/failure"
	"mahjong/internal/faultinject"
	"mahjong/internal/fpg"
	"mahjong/internal/lang"
	"mahjong/internal/pta"
	"mahjong/internal/trace"
	"mahjong/internal/unionfind"
)

// RepPolicy selects the representative object of an equivalence class.
// The choice does not affect soundness; Example 3.2 shows it can affect
// M-ktype precision.
type RepPolicy int

const (
	// RepFirst picks the member with the smallest node ID (the paper's
	// "arbitrarily picked" representative, deterministically).
	RepFirst RepPolicy = iota
	// RepTypeDiverse prefers a member allocated in a class not yet used
	// by representatives of other classes of the same object type,
	// maximizing the type-context diversity available to M-ktype.
	RepTypeDiverse
)

// Options configures the heap modeler.
type Options struct {
	// Workers bounds the goroutines running per-type merging; 0 means
	// GOMAXPROCS, 1 disables parallelism (ablation).
	Workers int
	// Policy selects equivalence-class representatives.
	Policy RepPolicy
	// DisableSharing rebuilds automata in a private universe per object
	// pair instead of hash-consing them in a shared one (ablation of the
	// §5 "shared sequential automata" optimization). Semantics are
	// unchanged; only time/space differ.
	DisableSharing bool
	// Meter, when non-nil, charges the shared per-job resource budget one
	// merge pair per equivalence test; exhaustion aborts BuildContext with
	// an error wrapping budget.ErrExhausted.
	Meter *budget.Meter

	// Trace, when enabled, records a "core.build" span with one
	// "automata.equiv" child per merge worker, attributing merge pairs
	// per worker. The zero Ctx disables tracing at no cost.
	Trace trace.Ctx

	// Reuse, when non-nil, replays the partition of every type group
	// whose reachable sub-FPG fingerprint matches the captured base
	// build, skipping its DFA construction and equivalence tests. The
	// MOM is unaffected — a matching fingerprint implies the same merge
	// decisions — but DFAStates/SumDFAStates then count only the
	// re-merged groups.
	Reuse *ReuseState
	// CaptureReuse attaches a ReuseState to the Result for a later
	// build's Options.Reuse.
	CaptureReuse bool
}

// Result is the heap abstraction built by the modeler.
type Result struct {
	// MOM maps every allocation site to the representative site of its
	// equivalence class (identity for singletons).
	MOM map[*lang.AllocSite]*lang.AllocSite
	// Classes lists the equivalence classes, largest first; members are
	// ordered by FPG node ID. Singleton classes are included.
	Classes []Class
	// NumObjects is the number of pre-analysis abstract objects
	// (the allocation-site abstraction's object count).
	NumObjects int
	// NumMerged is the number of abstract objects after merging
	// (the Mahjong abstraction's object count, |H/≡|).
	NumMerged int
	// DFAStates is the number of distinct hash-consed DFA states built;
	// SumDFAStates is what it would have been without sharing.
	DFAStates    int
	SumDFAStates int
	// Duration is the wall-clock time of heap modeling (excluding the
	// pre-analysis and FPG construction).
	Duration time.Duration
	// ReusedGroups and RemergedGroups split the type groups between
	// those replayed from Options.Reuse and those merged from scratch
	// (both zero when reuse is off).
	ReusedGroups, RemergedGroups int
	// ReuseState is the captured merge summary (Options.CaptureReuse).
	ReuseState *ReuseState
}

// Class is one equivalence class of type-consistent objects.
type Class struct {
	Rep     *pta.Obj
	Members []*pta.Obj // includes Rep
	Type    *lang.Class
}

// Size returns the number of members.
func (c Class) Size() int { return len(c.Members) }

// Build runs Algorithm 1 on the FPG.
func Build(g *fpg.Graph, opts Options) *Result {
	opts.Meter = nil
	res, err := BuildContext(context.Background(), g, opts) //lint:allow ctxflow Build is the documented context-free compat shim over BuildContext
	if err != nil {
		// Background contexts are never cancelled and unmetered builds
		// cannot exhaust; any error here is a bug (or an injected fault
		// in a test driving Build directly).
		panic(err)
	}
	return res
}

// BuildContext is Build with cancellation and resource budgeting: both
// merge phases check ctx (the parallel per-type workers between
// candidate objects), and a cancelled or timed-out context aborts
// modeling with an error wrapping context.Canceled or
// context.DeadlineExceeded. A panic anywhere in the modeler — including
// inside the parallel merge workers — is recovered into a
// *failure.InternalError rather than tearing down the process; the
// first such failure cancels the remaining workers.
func BuildContext(ctx context.Context, g *fpg.Graph, opts Options) (res *Result, err error) {
	// Registered before the stage guard so the span closes tagged with
	// the recovered error (see pta.SolveContext for the idiom).
	sp := opts.Trace.Start(faultinject.StageModel)
	defer func() { sp.Close(err) }()
	defer failure.Recover(faultinject.StageModel, &err)
	if err := faultinject.Fire(faultinject.StageModel); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if ctx == nil {
		ctx = context.Background() //lint:allow ctxflow nil-context normalization at the API boundary, not a detached root
	}
	start := time.Now()
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	u := automata.NewUniverse(g)

	// Group FPG nodes by type; only groups with ≥2 members can merge.
	groups := make(map[int][]int) // type ID → node IDs
	for id := 1; id < len(g.Objs); id++ {
		t := g.TypeOf[id]
		groups[t] = append(groups[t], id)
	}
	groupList := make([][]int, 0, len(groups))
	for _, nodes := range groups {
		if len(nodes) > 1 {
			groupList = append(groupList, nodes)
		}
	}
	// Deterministic order (largest groups first helps load balancing).
	sort.Slice(groupList, func(i, j int) bool {
		if len(groupList[i]) != len(groupList[j]) {
			return len(groupList[i]) > len(groupList[j])
		}
		return groupList[i][0] < groupList[j][0]
	})

	// Merge reuse (see reuse.go): groups whose reachable sub-FPG
	// fingerprint matches the captured base build skip both phases —
	// their base partition is replayed into the union-find directly.
	// Capture and matching share one reuser so fingerprints computed for
	// matching are not hashed again at capture time.
	uf := unionfind.New(len(g.Objs))
	var rx *reuser
	if opts.Reuse != nil || opts.CaptureReuse {
		if rx = newReuser(g); !rx.ok {
			rx = nil // no unique structural keys: disable reuse
		}
	}
	fps := make(map[string][sha256.Size]byte)
	mergeList := groupList
	reusedGroups, remergedGroups := 0, 0
	if opts.Reuse != nil && rx != nil {
		mergeList = make([][]int, 0, len(groupList))
		for _, nodes := range groupList {
			tname := typeNameOf(g, nodes[0])
			fp := rx.fingerprint(nodes)
			fps[tname] = fp
			if classes, ok := opts.Reuse.match(tname, fp); ok && rx.replay(uf, classes) {
				reusedGroups++
				continue
			}
			remergedGroups++
			mergeList = append(mergeList, nodes)
		}
	}

	// Phase 1 (sequential): run SINGLETYPE-CHECK and build all DFAs in
	// the shared universe, so that phase 2 reads it without locks
	// ("all shared automata are constructed beforehand", §5).
	pass := make([]bool, len(g.Objs))
	sumStates := 0
	for _, nodes := range mergeList {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: heap modeling interrupted: %w", err)
		}
		for _, n := range nodes {
			if u.SingleTypeOK(n) {
				pass[n] = true
				root := u.DFA(n)
				sumStates += u.StateCount(root)
			}
		}
	}

	// Phase 2 (parallel): within each type group, compare each candidate
	// against the running list of class representatives. Groups touch
	// disjoint union-find trees (merging never crosses types), so the
	// shared forest needs no synchronization across groups.
	//
	// Failure isolation: a panic or budget exhaustion inside ANY worker
	// must not tear down the process (a worker panic would bypass every
	// caller-side recover). The first failure is latched through fail,
	// which also cancels mergeCtx so the other workers drain quickly;
	// partial merges stay sound but the whole result is discarded.
	mergeCtx, cancelMerge := context.WithCancel(ctx)
	defer cancelMerge()
	var (
		failOnce sync.Once
		mergeErr error
	)
	fail := func(e error) {
		failOnce.Do(func() {
			mergeErr = e
			cancelMerge()
		})
	}
	mergeGroup := func(nodes []int, pairs *int64) {
		var reps []int
		for _, n := range nodes {
			if mergeCtx.Err() != nil {
				return // partial merges stay sound; the caller discards them
			}
			if !pass[n] {
				continue
			}
			merged := false
			for _, r := range reps {
				if merr := opts.Meter.AddPairs(1); merr != nil {
					fail(merr)
					return
				}
				*pairs++
				if equivalent(u, g, opts, r, n) {
					uf.Union(r, n)
					merged = true
					break
				}
			}
			if !merged {
				reps = append(reps, n)
			}
		}
	}
	// runGroup isolates one group's merge: a recovered panic latches the
	// first error and closes the worker's span tagged with it (the first
	// close wins, so the worker loop's normal End becomes a no-op).
	runGroup := func(nodes []int, wsp trace.Span, pairs *int64) {
		defer func() {
			if r := recover(); r != nil {
				e := failure.AsInternal(faultinject.StageModel, r)
				wsp.Close(e)
				fail(e)
			}
		}()
		mergeGroup(nodes, pairs)
	}
	// Each merge worker gets its own "automata.equiv" span attributed by
	// worker index, counting the equivalence pairs it tested; the spans
	// sum to the parent's merge_pairs total. The sequential path is
	// worker 0, so traced runs always see at least one worker span.
	var totalPairs int64
	if workers == 1 || len(mergeList) < 2 {
		wsp := sp.Ctx().Start(faultinject.StageEquiv)
		wsp.Worker(0)
		var pairs int64
		for _, nodes := range mergeList {
			runGroup(nodes, wsp, &pairs)
		}
		wsp.Add("merge_pairs", pairs)
		wsp.End()
		totalPairs = pairs
	} else {
		var wg sync.WaitGroup
		var pairsTotal atomic.Int64
		work := make(chan []int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				wsp := sp.Ctx().Start(faultinject.StageEquiv)
				wsp.Worker(w)
				var pairs int64
				for nodes := range work {
					runGroup(nodes, wsp, &pairs)
				}
				wsp.Add("merge_pairs", pairs)
				wsp.End()
				pairsTotal.Add(pairs)
			}(w)
		}
		for _, nodes := range mergeList {
			work <- nodes
		}
		close(work)
		wg.Wait()
		totalPairs = pairsTotal.Load()
	}
	if mergeErr != nil {
		if ie, ok := mergeErr.(*failure.InternalError); ok {
			return nil, ie
		}
		return nil, fmt.Errorf("core: %w", mergeErr)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: heap modeling interrupted: %w", err)
	}

	res = buildResult(g, uf, opts.Policy)
	res.DFAStates = u.NumStates()
	res.SumDFAStates = sumStates
	res.ReusedGroups = reusedGroups
	res.RemergedGroups = remergedGroups
	if opts.CaptureReuse && rx != nil {
		res.ReuseState = captureReuse(rx, groupList, uf, fps)
	}
	res.Duration = time.Since(start)
	sp.Add("objects", int64(res.NumObjects))
	sp.Add("merged_objects", int64(res.NumMerged))
	sp.Add("classes", int64(len(res.Classes)))
	sp.Add("dfa_states", int64(res.DFAStates))
	sp.Add("sum_dfa_states", int64(res.SumDFAStates))
	sp.Add("merge_pairs", totalPairs)
	sp.Add("reused_groups", int64(res.ReusedGroups))
	sp.Add("remerged_groups", int64(res.RemergedGroups))
	return res, nil
}

// equivalent tests automata equivalence of two objects, honoring the
// sharing ablation.
func equivalent(u *automata.Universe, g *fpg.Graph, opts Options, a, b int) bool {
	if !opts.DisableSharing {
		return u.Equivalent(u.Root(a), u.Root(b))
	}
	// Ablation: rebuild both automata from scratch in a throwaway
	// universe, as a non-sharing implementation would.
	fresh := automata.NewUniverse(g)
	da, db := fresh.DFA(a), fresh.DFA(b)
	return fresh.Equivalent(da, db)
}

// buildResult turns the union-find partition into classes and the MOM.
func buildResult(g *fpg.Graph, uf *unionfind.Forest, policy RepPolicy) *Result {
	members := make(map[int][]int)
	for id := 1; id < len(g.Objs); id++ {
		r := uf.Find(id)
		members[r] = append(members[r], id)
	}
	roots := make([]int, 0, len(members))
	for r := range members {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(i, j int) bool {
		if len(members[roots[i]]) != len(members[roots[j]]) {
			return len(members[roots[i]]) > len(members[roots[j]])
		}
		return roots[i] < roots[j]
	})

	// Representative election. usedCtxClasses tracks, per object type,
	// the allocating classes already claimed — by singleton classes,
	// whose representative is forced, and by previously elected
	// representatives. RepTypeDiverse prefers an unclaimed allocating
	// class so that M-ktype keeps as many type contexts distinct as
	// possible (Example 3.2).
	usedCtxClasses := make(map[int]map[*lang.Class]bool)
	if policy == RepTypeDiverse {
		for _, r := range roots {
			if len(members[r]) != 1 {
				continue
			}
			t := g.TypeOf[r]
			used := usedCtxClasses[t]
			if used == nil {
				used = make(map[*lang.Class]bool)
				usedCtxClasses[t] = used
			}
			used[allocClass(g, members[r][0])] = true
		}
	}

	res := &Result{
		MOM:        make(map[*lang.AllocSite]*lang.AllocSite, g.NumObjects()),
		NumObjects: g.NumObjects(),
	}
	for _, r := range roots {
		ms := members[r]
		sort.Ints(ms)
		rep := ms[0]
		if policy == RepTypeDiverse && len(ms) > 1 {
			t := g.TypeOf[r]
			used := usedCtxClasses[t]
			if used == nil {
				used = make(map[*lang.Class]bool)
				usedCtxClasses[t] = used
			}
			for _, m := range ms {
				if !used[allocClass(g, m)] {
					rep = m
					break
				}
			}
			used[allocClass(g, rep)] = true
		}
		cls := Class{
			Rep:  g.Objs[rep],
			Type: g.Objs[rep].Type,
		}
		for _, m := range ms {
			cls.Members = append(cls.Members, g.Objs[m])
			for _, site := range g.Objs[m].Sites {
				res.MOM[site] = g.Objs[rep].Rep
			}
		}
		res.Classes = append(res.Classes, cls)
	}
	res.NumMerged = len(res.Classes)
	return res
}

// allocClass returns the class containing node's allocation site — the
// element k-type-sensitivity would use as context.
func allocClass(g *fpg.Graph, node int) *lang.Class {
	return g.Objs[node].Rep.Method.Owner
}

// HeapModel returns a pta heap model using this abstraction.
func (r *Result) HeapModel() pta.HeapModel { return pta.NewMergedSiteModel(r.MOM) }

// Reduction returns the fraction of objects removed by merging
// (the Figure 8 statistic: ~62% on the paper's benchmarks).
func (r *Result) Reduction() float64 {
	if r.NumObjects == 0 {
		return 0
	}
	return 1 - float64(r.NumMerged)/float64(r.NumObjects)
}

// SizeHistogram returns, for each equivalence class size, how many
// classes have that size (the Figure 9 scatter), as sorted (size, count)
// pairs.
func (r *Result) SizeHistogram() [][2]int {
	counts := make(map[int]int)
	for _, c := range r.Classes {
		counts[c.Size()]++
	}
	sizes := make([]int, 0, len(counts))
	for s := range counts {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)
	out := make([][2]int, len(sizes))
	for i, s := range sizes {
		out[i] = [2]int{s, counts[s]}
	}
	return out
}
