package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mahjong/internal/fpg"
	"mahjong/internal/lang"
	"mahjong/internal/pta"
)

// buildFigure1 constructs the paper's Figure 1 program and runs the
// pre-analysis pipeline up to the FPG.
func figure1FPG(t testing.TB) (*lang.Program, *fpg.Graph, []*lang.AllocSite) {
	t.Helper()
	p := lang.NewProgram()
	a := p.NewClass("A", nil)
	f := a.NewField("f", a)
	a.NewMethod("foo", false, nil, nil).AddReturn(nil)
	b := p.NewClass("B", a)
	b.NewMethod("foo", false, nil, nil).AddReturn(nil)
	c := p.NewClass("C", a)
	c.NewMethod("foo", false, nil, nil).AddReturn(nil)

	mainCls := p.NewClass("Main", nil)
	m := mainCls.NewMethod("main", true, nil, nil)
	x := m.NewVar("x", a)
	y := m.NewVar("y", a)
	z := m.NewVar("z", a)
	va := m.NewVar("a", a)
	vc := m.NewVar("c", c)
	t4 := m.NewVar("t4", a)
	t5 := m.NewVar("t5", a)
	t6 := m.NewVar("t6", a)
	var sites []*lang.AllocSite
	sites = append(sites, m.AddAlloc(x, a), m.AddAlloc(y, a), m.AddAlloc(z, a))
	sites = append(sites, m.AddAlloc(t4, b))
	m.AddStore(x, f, t4)
	sites = append(sites, m.AddAlloc(t5, c))
	m.AddStore(y, f, t5)
	sites = append(sites, m.AddAlloc(t6, c))
	m.AddStore(z, f, t6)
	m.AddLoad(va, z, f)
	m.AddVirtualCall(nil, va, "foo")
	m.AddCast(vc, c, va)
	m.AddReturn(nil)
	p.SetEntry(m)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	pre, err := pta.Solve(p, pta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p, fpg.Build(pre, fpg.Options{}), sites
}

func classOfSite(t *testing.T, res *Result, s *lang.AllocSite) Class {
	t.Helper()
	for _, c := range res.Classes {
		for _, m := range c.Members {
			if m.Rep == s {
				return c
			}
		}
	}
	t.Fatalf("site %v not in any class", s)
	return Class{}
}

func TestFigure1Merging(t *testing.T) {
	_, g, sites := figure1FPG(t)
	res := Build(g, Options{})

	// Example 2.3: o2 ≡ o3 (both .f → C objects); o1 is not mergeable
	// (its .f → B); o5 ≡ o6 (both C with null fields).
	c23 := classOfSite(t, res, sites[1])
	if c23.Size() != 2 {
		t.Fatalf("o2's class size=%d want 2", c23.Size())
	}
	if classOfSite(t, res, sites[2]).Rep != c23.Rep {
		t.Fatal("o2 and o3 must share a class")
	}
	if c1 := classOfSite(t, res, sites[0]); c1.Size() != 1 {
		t.Fatalf("o1 merged: size=%d", c1.Size())
	}
	c56 := classOfSite(t, res, sites[4])
	if c56.Size() != 2 || classOfSite(t, res, sites[5]).Rep != c56.Rep {
		t.Fatal("o5 and o6 must merge (identical null-field C objects)")
	}
	// The B object stays alone.
	if cB := classOfSite(t, res, sites[3]); cB.Size() != 1 {
		t.Fatal("B object merged")
	}
	// 6 objects → 4 merged objects.
	if res.NumObjects != 6 || res.NumMerged != 4 {
		t.Fatalf("objects %d→%d, want 6→4", res.NumObjects, res.NumMerged)
	}
	// MOM maps every site.
	if len(res.MOM) != 6 {
		t.Fatalf("MOM size=%d", len(res.MOM))
	}
	if res.MOM[sites[2]] != res.MOM[sites[1]] {
		t.Fatal("MOM disagrees with classes")
	}
}

func TestFigure1EndToEnd(t *testing.T) {
	// Run the subsequent analysis with the built abstraction and check
	// the type-dependent facts of Figure 1 are preserved.
	p, g, _ := figure1FPG(t)
	res := Build(g, Options{})
	r, err := pta.Solve(p, pta.Options{Heap: res.HeapModel()})
	if err != nil {
		t.Fatal(err)
	}
	var call *lang.Invoke
	var cast *lang.Cast
	for _, st := range p.Entry.Stmts {
		switch s := st.(type) {
		case *lang.Invoke:
			call = s
		case *lang.Cast:
			cast = s
		}
	}
	_ = cast
	if got := len(r.CallTargets(call)); got != 1 {
		t.Fatalf("a.foo() targets=%d want 1 (mono-call preserved)", got)
	}
	for _, rc := range r.ReachableCasts() {
		for _, o := range rc.Incoming {
			if o.Type.Name == "B" {
				t.Fatal("cast sees B: precision lost")
			}
		}
	}
}

func TestReduction(t *testing.T) {
	_, g, _ := figure1FPG(t)
	res := Build(g, Options{})
	want := 1 - 4.0/6.0
	if got := res.Reduction(); got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("reduction=%v want %v", got, want)
	}
	empty := &Result{}
	if empty.Reduction() != 0 {
		t.Fatal("empty reduction should be 0")
	}
}

func TestSizeHistogram(t *testing.T) {
	_, g, _ := figure1FPG(t)
	res := Build(g, Options{})
	// Classes: {o1}, {o4}, {o2,o3}, {o5,o6} → histogram {1:2, 2:2}.
	h := res.SizeHistogram()
	if len(h) != 2 || h[0] != [2]int{1, 2} || h[1] != [2]int{2, 2} {
		t.Fatalf("histogram=%v", h)
	}
}

func TestParallelDeterminism(t *testing.T) {
	_, g, _ := figure1FPG(t)
	base := Build(g, Options{Workers: 1})
	for _, workers := range []int{2, 4, 8} {
		got := Build(g, Options{Workers: workers})
		if got.NumMerged != base.NumMerged {
			t.Fatalf("workers=%d merged=%d want %d", workers, got.NumMerged, base.NumMerged)
		}
		for site, rep := range base.MOM {
			if got.MOM[site] != rep {
				t.Fatalf("workers=%d MOM differs at %v", workers, site)
			}
		}
	}
}

func TestDisableSharingSameResult(t *testing.T) {
	_, g, _ := figure1FPG(t)
	a := Build(g, Options{})
	b := Build(g, Options{DisableSharing: true})
	if a.NumMerged != b.NumMerged {
		t.Fatalf("sharing changed results: %d vs %d", a.NumMerged, b.NumMerged)
	}
	for site, rep := range a.MOM {
		if b.MOM[site] != rep {
			t.Fatal("sharing changed MOM")
		}
	}
	if a.DFAStates > a.SumDFAStates {
		t.Fatalf("shared states %d exceed unshared sum %d", a.DFAStates, a.SumDFAStates)
	}
}

// repPolicyGraph builds Figure 7's scenario: class T allocates o1 and
// o2 (sites in T), class U allocates o3; o1 ≡ o3 (both .f → X), o2 is
// separate (.f → Y).
func repPolicyGraph(t *testing.T) (*fpg.Graph, [3]int) {
	t.Helper()
	// Build via lang program to control allocating classes.
	p := lang.NewProgram()
	aCls := p.NewClass("A", nil)
	xCls := p.NewClass("X", nil)
	yCls := p.NewClass("Y", nil)
	f := aCls.NewField("f", p.Object())

	tCls := p.NewClass("T", nil)
	tm := tCls.NewMethod("allocT", true, nil, aCls)
	o1 := tm.NewVar("o1", aCls)
	o2 := tm.NewVar("o2", aCls)
	x1 := tm.NewVar("x1", p.Object())
	y1 := tm.NewVar("y1", p.Object())
	s1 := tm.AddAlloc(o1, aCls)
	tm.AddAlloc(x1, xCls)
	tm.AddStore(o1, f, x1)
	s2 := tm.AddAlloc(o2, aCls)
	tm.AddAlloc(y1, yCls)
	tm.AddStore(o2, f, y1)
	tm.AddReturn(o1)

	uCls := p.NewClass("U", nil)
	um := uCls.NewMethod("allocU", true, nil, aCls)
	o3 := um.NewVar("o3", aCls)
	x2 := um.NewVar("x2", p.Object())
	s3 := um.AddAlloc(o3, aCls)
	um.AddAlloc(x2, xCls)
	um.AddStore(o3, f, x2)
	um.AddReturn(o3)

	mainCls := p.NewClass("Main", nil)
	m := mainCls.NewMethod("main", true, nil, nil)
	r1 := m.NewVar("r1", aCls)
	r2 := m.NewVar("r2", aCls)
	m.AddStaticCall(r1, tm)
	m.AddStaticCall(r2, um)
	m.AddReturn(nil)
	p.SetEntry(m)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	pre, err := pta.Solve(p, pta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := fpg.Build(pre, fpg.Options{})
	var ids [3]int
	for id := 1; id < len(g.Objs); id++ {
		switch g.Objs[id].Rep {
		case s1:
			ids[0] = id
		case s2:
			ids[1] = id
		case s3:
			ids[2] = id
		}
	}
	return g, ids
}

func TestRepPolicy(t *testing.T) {
	g, ids := repPolicyGraph(t)

	// Both policies merge o1 ≡ o3 (A objects in classes T and U whose f
	// points to an X object and whose remaining state is identical).
	check := func(res *Result) Class {
		t.Helper()
		var found Class
		for _, c := range res.Classes {
			for _, m := range c.Members {
				if g.Node(m) == ids[0] {
					found = c
				}
			}
		}
		if found.Size() != 2 {
			t.Fatalf("o1's class=%d members, want 2", found.Size())
		}
		return found
	}

	first := Build(g, Options{Policy: RepFirst})
	cFirst := check(first)
	// RepFirst picks the smallest node ID: o1 (allocated in class T).
	if cFirst.Rep.Rep.Method.Owner.Name != "T" {
		t.Fatalf("RepFirst rep class=%s want T", cFirst.Rep.Rep.Method.Owner.Name)
	}

	diverse := Build(g, Options{Policy: RepTypeDiverse})
	cDiv := check(diverse)
	// o2 (a singleton class of the same type A, allocated in T) also has
	// a representative in T; the diverse policy prefers U for o1's class
	// when T is taken. Order of classes is by size (largest first), so
	// {o1,o3} is elected before singleton {o2}: its first member o1 is in
	// T which is still unused — both policies may coincide here. The
	// policy must at minimum keep determinism and a valid member.
	reps := map[string]bool{}
	for _, c := range diverse.Classes {
		if c.Type.Name == "A" {
			reps[c.Rep.Rep.Method.Owner.Name] = true
		}
	}
	// With diversity, the two A-classes should use two distinct
	// allocating classes (T and U) as type contexts.
	if len(reps) != 2 {
		t.Fatalf("RepTypeDiverse used classes %v, want 2 distinct", reps)
	}
	found := false
	for _, m := range cDiv.Members {
		if m == cDiv.Rep {
			found = true
		}
	}
	if !found {
		t.Fatal("representative not a member of its class")
	}
}

func TestMergeRespectsTypes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := fpg.NewBuilder()
		names := []string{"A", "B", "C"}
		fields := []string{"f", "g"}
		n := 3 + rng.Intn(10)
		nodes := make([]int, n)
		for i := range nodes {
			nodes[i] = b.AddObj(names[rng.Intn(len(names))])
		}
		for i := 0; i < 2*n; i++ {
			to := fpg.NullNode
			if rng.Intn(6) != 0 {
				to = nodes[rng.Intn(n)]
			}
			b.AddEdge(nodes[rng.Intn(n)], fields[rng.Intn(2)], to)
		}
		g := b.Graph()
		res := Build(g, Options{})
		// Invariants: every class non-empty, same-typed, MOM total and
		// idempotent, sizes add up.
		total := 0
		for _, c := range res.Classes {
			if c.Size() == 0 {
				return false
			}
			total += c.Size()
			for _, m := range c.Members {
				if m.Type != c.Type {
					return false
				}
				if res.MOM[m.Rep] != c.Rep.Rep {
					return false
				}
			}
		}
		if total != res.NumObjects || len(res.Classes) != res.NumMerged {
			return false
		}
		for _, rep := range res.MOM {
			if res.MOM[rep] != rep {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestMergedAreTypeConsistent verifies Definition 2.1 directly on the
// merged classes: for random field paths from any two members of a
// class, the reached type sets agree and are singletons.
func TestMergedAreTypeConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := fpg.NewBuilder()
		names := []string{"A", "B"}
		fields := []string{"f", "g", "h"}
		n := 4 + rng.Intn(8)
		nodes := make([]int, n)
		for i := range nodes {
			nodes[i] = b.AddObj(names[rng.Intn(len(names))])
		}
		for i := 0; i < 2*n; i++ {
			b.AddEdge(nodes[rng.Intn(n)], fields[rng.Intn(3)], nodes[rng.Intn(n)])
		}
		g := b.Graph()
		res := Build(g, Options{})
		// walk: set of nodes reached along a path.
		step := func(cur []int, f int) []int {
			var out []int
			seen := map[int]bool{}
			for _, n := range cur {
				for _, t := range g.Succ(n, f) {
					if !seen[t] {
						seen[t] = true
						out = append(out, t)
					}
				}
			}
			return out
		}
		typesOf := func(cur []int) map[int]bool {
			out := map[int]bool{}
			for _, n := range cur {
				out[g.TypeOf[n]] = true
			}
			return out
		}
		eq := func(a, b map[int]bool) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		}
		for _, c := range res.Classes {
			if c.Size() < 2 {
				continue
			}
			m1, m2 := g.Node(c.Members[0]), g.Node(c.Members[1])
			// Random paths up to length 5.
			for trial := 0; trial < 20; trial++ {
				cur1, cur2 := []int{m1}, []int{m2}
				for d := 0; d < 5; d++ {
					fld := rng.Intn(3)
					cur1, cur2 = step(cur1, fld), step(cur2, fld)
					if len(cur1) == 0 && len(cur2) == 0 {
						break
					}
					if (len(cur1) == 0) != (len(cur2) == 0) {
						return false // one side dead-ends: inconsistent merge
					}
					t1, t2 := typesOf(cur1), typesOf(cur2)
					if !eq(t1, t2) || len(t1) != 1 {
						return false // violates Definition 2.1
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
