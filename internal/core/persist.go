package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"

	"mahjong/internal/lang"
)

// The persisted form of a heap abstraction: equivalence classes of
// allocation-site labels. Labels are stable across runs because both
// the benchmark generator and the parser assign them deterministically,
// so an abstraction built once (the expensive pre-analysis + modeling)
// can be reloaded for later analyses of the same program.

type persistedAbstraction struct {
	Version int              `json:"version"`
	Objects int              `json:"objects"`
	Classes []persistedClass `json:"classes"`
}

type persistedClass struct {
	Rep     string   `json:"rep"`
	Members []string `json:"members,omitempty"` // excluding the rep
}

const persistVersion = 1

// Save writes the abstraction's merged-object map to w as JSON.
// Singleton classes are omitted (identity is implied).
func (r *Result) Save(w io.Writer) error {
	out := persistedAbstraction{Version: persistVersion, Objects: r.NumObjects}
	for _, c := range r.Classes {
		if c.Size() < 2 {
			continue
		}
		pc := persistedClass{Rep: c.Rep.Rep.Label}
		for _, m := range c.Members {
			for _, site := range m.Sites {
				if site != c.Rep.Rep {
					pc.Members = append(pc.Members, site.Label)
				}
			}
		}
		sort.Strings(pc.Members)
		out.Classes = append(out.Classes, pc)
	}
	sort.Slice(out.Classes, func(i, j int) bool { return out.Classes[i].Rep < out.Classes[j].Rep })
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// LoadMOM reads a persisted abstraction and rebinds it to prog's
// allocation sites by label, also returning the abstraction's original
// reachable-object count. Labels present in the file but absent from
// the program are an error (the file belongs to a different program
// version); program sites absent from the file stay singletons.
//
// The input is treated as untrusted (it may arrive from a corrupted
// cache entry or a truncated file): truncation, trailing garbage,
// malformed structure, and internally inconsistent classes (empty or
// duplicated labels, a site claimed by two classes, a negative object
// count) are all rejected with descriptive errors rather than producing
// a silently unsound merged-object map.
func LoadMOM(r io.Reader, prog *lang.Program) (map[*lang.AllocSite]*lang.AllocSite, int, error) {
	var in persistedAbstraction
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, 0, fmt.Errorf("core: abstraction file is truncated: %w", err)
		}
		return nil, 0, fmt.Errorf("core: decoding abstraction: %w", err)
	}
	// Anything after the JSON document is corruption, not a comment:
	// a truncated-then-concatenated cache entry must not half-parse.
	if _, err := dec.Token(); err != io.EOF {
		return nil, 0, fmt.Errorf("core: trailing data after abstraction document")
	}
	if in.Version != persistVersion {
		return nil, 0, fmt.Errorf("core: unsupported abstraction version %d", in.Version)
	}
	if in.Objects < 0 {
		return nil, 0, fmt.Errorf("core: negative object count %d", in.Objects)
	}
	byLabel := make(map[string]*lang.AllocSite, len(prog.Sites))
	for _, s := range prog.Sites {
		byLabel[s.Label] = s
	}
	mom := make(map[*lang.AllocSite]*lang.AllocSite)
	for i, pc := range in.Classes {
		if pc.Rep == "" {
			return nil, 0, fmt.Errorf("core: class %d has an empty representative label", i)
		}
		rep, ok := byLabel[pc.Rep]
		if !ok {
			return nil, 0, fmt.Errorf("core: unknown representative site %q", pc.Rep)
		}
		if prev, claimed := mom[rep]; claimed && prev != rep {
			return nil, 0, fmt.Errorf("core: site %q appears in more than one class", pc.Rep)
		}
		if _, claimed := mom[rep]; claimed {
			return nil, 0, fmt.Errorf("core: duplicate representative %q", pc.Rep)
		}
		mom[rep] = rep
		for _, ml := range pc.Members {
			if ml == "" {
				return nil, 0, fmt.Errorf("core: class %q has an empty member label", pc.Rep)
			}
			if ml == pc.Rep {
				return nil, 0, fmt.Errorf("core: class %q lists its representative as a member", pc.Rep)
			}
			m, ok := byLabel[ml]
			if !ok {
				return nil, 0, fmt.Errorf("core: unknown member site %q", ml)
			}
			if _, claimed := mom[m]; claimed {
				return nil, 0, fmt.Errorf("core: site %q appears in more than one class", ml)
			}
			if m.Type != rep.Type {
				return nil, 0, fmt.Errorf("core: persisted class mixes types: %s vs %s", m, rep)
			}
			mom[m] = rep
		}
	}
	return mom, in.Objects, nil
}
