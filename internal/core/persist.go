package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"mahjong/internal/lang"
)

// The persisted form of a heap abstraction: equivalence classes of
// allocation-site labels. Labels are stable across runs because both
// the benchmark generator and the parser assign them deterministically,
// so an abstraction built once (the expensive pre-analysis + modeling)
// can be reloaded for later analyses of the same program.

type persistedAbstraction struct {
	Version int              `json:"version"`
	Objects int              `json:"objects"`
	Classes []persistedClass `json:"classes"`
}

type persistedClass struct {
	Rep     string   `json:"rep"`
	Members []string `json:"members,omitempty"` // excluding the rep
}

const persistVersion = 1

// Save writes the abstraction's merged-object map to w as JSON.
// Singleton classes are omitted (identity is implied).
func (r *Result) Save(w io.Writer) error {
	out := persistedAbstraction{Version: persistVersion, Objects: r.NumObjects}
	for _, c := range r.Classes {
		if c.Size() < 2 {
			continue
		}
		pc := persistedClass{Rep: c.Rep.Rep.Label}
		for _, m := range c.Members {
			for _, site := range m.Sites {
				if site != c.Rep.Rep {
					pc.Members = append(pc.Members, site.Label)
				}
			}
		}
		sort.Strings(pc.Members)
		out.Classes = append(out.Classes, pc)
	}
	sort.Slice(out.Classes, func(i, j int) bool { return out.Classes[i].Rep < out.Classes[j].Rep })
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// LoadMOM reads a persisted abstraction and rebinds it to prog's
// allocation sites by label, also returning the abstraction's original
// reachable-object count. Labels present in the file but absent from
// the program are an error (the file belongs to a different program
// version); program sites absent from the file stay singletons.
func LoadMOM(r io.Reader, prog *lang.Program) (map[*lang.AllocSite]*lang.AllocSite, int, error) {
	var in persistedAbstraction
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, 0, fmt.Errorf("core: decoding abstraction: %w", err)
	}
	if in.Version != persistVersion {
		return nil, 0, fmt.Errorf("core: unsupported abstraction version %d", in.Version)
	}
	byLabel := make(map[string]*lang.AllocSite, len(prog.Sites))
	for _, s := range prog.Sites {
		byLabel[s.Label] = s
	}
	mom := make(map[*lang.AllocSite]*lang.AllocSite)
	for _, pc := range in.Classes {
		rep, ok := byLabel[pc.Rep]
		if !ok {
			return nil, 0, fmt.Errorf("core: unknown representative site %q", pc.Rep)
		}
		mom[rep] = rep
		for _, ml := range pc.Members {
			m, ok := byLabel[ml]
			if !ok {
				return nil, 0, fmt.Errorf("core: unknown member site %q", ml)
			}
			if m.Type != rep.Type {
				return nil, 0, fmt.Errorf("core: persisted class mixes types: %s vs %s", m, rep)
			}
			mom[m] = rep
		}
	}
	return mom, in.Objects, nil
}
