package core

import (
	"strings"
	"testing"

	"mahjong/internal/lang"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	prog, g, _ := figure1FPG(t)
	res := Build(g, Options{})

	var buf strings.Builder
	if err := res.Save(&buf); err != nil {
		t.Fatal(err)
	}
	mom, objs, err := LoadMOM(strings.NewReader(buf.String()), prog)
	if err != nil {
		t.Fatal(err)
	}
	if objs != res.NumObjects {
		t.Fatalf("persisted objects=%d want %d", objs, res.NumObjects)
	}
	// Loaded MOM must agree with the built one on every merged site;
	// singletons are implied and may be absent from the loaded map.
	for site, rep := range res.MOM {
		if site == rep {
			continue
		}
		if mom[site] != rep {
			t.Fatalf("site %v: loaded rep %v, want %v", site, mom[site], rep)
		}
	}
	// Reps map to themselves.
	for _, rep := range mom {
		if mom[rep] != rep {
			t.Fatal("loaded MOM not idempotent")
		}
	}
}

func TestLoadRejectsWrongProgram(t *testing.T) {
	_, g, _ := figure1FPG(t)
	res := Build(g, Options{})
	var buf strings.Builder
	if err := res.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// A different program lacks the saved labels.
	prog2 := lang.NewProgram()
	other := prog2.NewClass("Other", nil)
	m := other.NewMethod("main", true, nil, nil)
	v := m.NewVar("v", other)
	m.AddAlloc(v, other)
	m.AddReturn(nil)
	prog2.SetEntry(m)
	if _, _, err := LoadMOM(strings.NewReader(buf.String()), prog2); err == nil {
		t.Fatal("loading into the wrong program must fail")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	prog, _, _ := figure1FPG(t)
	if _, _, err := LoadMOM(strings.NewReader("not json"), prog); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, _, err := LoadMOM(strings.NewReader(`{"version": 99}`), prog); err == nil {
		t.Fatal("wrong version accepted")
	}
}
