package core

import (
	"strings"
	"testing"

	"mahjong/internal/lang"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	prog, g, _ := figure1FPG(t)
	res := Build(g, Options{})

	var buf strings.Builder
	if err := res.Save(&buf); err != nil {
		t.Fatal(err)
	}
	mom, objs, err := LoadMOM(strings.NewReader(buf.String()), prog)
	if err != nil {
		t.Fatal(err)
	}
	if objs != res.NumObjects {
		t.Fatalf("persisted objects=%d want %d", objs, res.NumObjects)
	}
	// Loaded MOM must agree with the built one on every merged site;
	// singletons are implied and may be absent from the loaded map.
	for site, rep := range res.MOM {
		if site == rep {
			continue
		}
		if mom[site] != rep {
			t.Fatalf("site %v: loaded rep %v, want %v", site, mom[site], rep)
		}
	}
	// Reps map to themselves.
	for _, rep := range mom {
		if mom[rep] != rep {
			t.Fatal("loaded MOM not idempotent")
		}
	}
}

func TestLoadRejectsWrongProgram(t *testing.T) {
	_, g, _ := figure1FPG(t)
	res := Build(g, Options{})
	var buf strings.Builder
	if err := res.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// A different program lacks the saved labels.
	prog2 := lang.NewProgram()
	other := prog2.NewClass("Other", nil)
	m := other.NewMethod("main", true, nil, nil)
	v := m.NewVar("v", other)
	m.AddAlloc(v, other)
	m.AddReturn(nil)
	prog2.SetEntry(m)
	if _, _, err := LoadMOM(strings.NewReader(buf.String()), prog2); err == nil {
		t.Fatal("loading into the wrong program must fail")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	prog, _, _ := figure1FPG(t)
	if _, _, err := LoadMOM(strings.NewReader("not json"), prog); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, _, err := LoadMOM(strings.NewReader(`{"version": 99}`), prog); err == nil {
		t.Fatal("wrong version accepted")
	}
}

// corruptMOM wraps a hand-built persisted document; version 1 unless
// the body overrides it.
func loadErr(t *testing.T, doc string) error {
	t.Helper()
	prog, _, _ := figure1FPG(t)
	_, _, err := LoadMOM(strings.NewReader(doc), prog)
	if err == nil {
		t.Fatalf("corrupt document accepted:\n%s", doc)
	}
	return err
}

// Truncating a valid abstraction at EVERY byte boundary must produce a
// descriptive error — never a panic, and never a silently partial MOM.
func TestLoadRejectsTruncation(t *testing.T) {
	prog, g, _ := figure1FPG(t)
	res := Build(g, Options{})
	var buf strings.Builder
	if err := res.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// The encoder appends a newline; losing only trailing whitespace
	// still leaves a complete document, so sweep the meaningful bytes.
	full := strings.TrimRight(buf.String(), "\n")
	for n := 0; n < len(full); n++ {
		mom, _, err := LoadMOM(strings.NewReader(full[:n]), prog)
		if err == nil {
			t.Fatalf("truncation at byte %d of %d accepted (%d-entry MOM)", n, len(full), len(mom))
		}
	}
	// The clean-truncation shape (cut mid-document) names truncation.
	_, _, err := LoadMOM(strings.NewReader(full[:len(full)/2]), prog)
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("mid-document truncation not described as such: %v", err)
	}
}

func TestLoadRejectsTrailingData(t *testing.T) {
	prog, g, _ := figure1FPG(t)
	res := Build(g, Options{})
	var buf strings.Builder
	if err := res.Save(&buf); err != nil {
		t.Fatal(err)
	}
	_, _, err := LoadMOM(strings.NewReader(buf.String()+`{"version":1}`), prog)
	if err == nil || !strings.Contains(err.Error(), "trailing data") {
		t.Fatalf("concatenated documents accepted: %v", err)
	}
}

// Bit-flipping every byte of a valid abstraction must never panic; each
// flip either still parses to a consistent document or is rejected.
func TestLoadSurvivesBitFlips(t *testing.T) {
	prog, g, _ := figure1FPG(t)
	res := Build(g, Options{})
	var buf strings.Builder
	if err := res.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := []byte(buf.String())
	for i := range full {
		mut := append([]byte(nil), full...)
		mut[i] ^= 0x20
		LoadMOM(strings.NewReader(string(mut)), prog) // must not panic
	}
}

func TestLoadRejectsInconsistentClasses(t *testing.T) {
	// Labels from figure1FPG: grep its alloc-site labels dynamically so
	// the cases survive benchmark renames.
	_, g, _ := figure1FPG(t)
	res := Build(g, Options{})
	var merged *lang.AllocSite
	var rep *lang.AllocSite
	for site, r := range res.MOM {
		if site != r {
			merged, rep = site, r
			break
		}
	}
	if merged == nil {
		t.Fatal("figure1FPG merged nothing; the corruption cases need a 2-site class")
	}
	doc := func(body string) string { return `{"version":1,"objects":3,"classes":[` + body + `]}` }

	cases := map[string]string{
		"negative objects":  `{"version":1,"objects":-1,"classes":[]}`,
		"empty rep label":   doc(`{"rep":""}`),
		"empty member":      doc(`{"rep":"` + rep.Label + `","members":[""]}`),
		"member equals rep": doc(`{"rep":"` + rep.Label + `","members":["` + rep.Label + `"]}`),
		"duplicate rep": doc(`{"rep":"` + rep.Label + `","members":["` + merged.Label + `"]},` +
			`{"rep":"` + rep.Label + `"}`),
		"member in two classes": doc(`{"rep":"` + rep.Label + `","members":["` + merged.Label + `"]},` +
			`{"rep":"` + merged.Label + `"}`),
	}
	for name, d := range cases {
		if err := loadErr(t, d); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
