// Merge reuse: the incremental half of the heap modeler.
//
// Algorithm 1 partitions each type group of the FPG independently, and
// the partition of a group is a pure function of the sub-FPG reachable
// from its members (types plus field-labeled edges — exactly what the
// sequential automata read). After an edit, most groups' reachable
// sub-graphs are unchanged, so their equivalence tests — the expensive
// part of heap modeling — would reproduce the base partition verbatim.
//
// This file fingerprints each group's reachable sub-FPG under
// *structural* keys that survive re-parsing: allocation sites are named
// "Owner.method/arity#ordinal" (ordinal of the alloc within its method
// body), fields "Owner.name", types by class name. A captured ReuseState
// maps type name → (fingerprint, partition); a later build replays the
// partition of every group whose fingerprint still matches and runs
// Algorithm 1 only on the rest.
package core

import (
	"crypto/sha256"
	"fmt"
	"hash"
	"io"
	"sort"
	"strings"

	"mahjong/internal/fpg"
	"mahjong/internal/lang"
	"mahjong/internal/unionfind"
)

// ReuseState is the portable summary of one build's merge decisions,
// captured with Options.CaptureReuse and consumed by Options.Reuse on a
// later build of an edited program.
type ReuseState struct {
	groups map[string]reuseGroup // type name → fingerprint + partition
}

type reuseGroup struct {
	fingerprint [sha256.Size]byte
	// classes is the group's partition as sorted structural site keys;
	// singleton classes are omitted (replaying them is a no-op).
	classes [][]string
}

// Groups returns the number of type groups captured.
func (s *ReuseState) Groups() int {
	if s == nil {
		return 0
	}
	return len(s.groups)
}

// match returns the captured partition for a type whose fingerprint
// still matches.
func (s *ReuseState) match(typeName string, fp [sha256.Size]byte) ([][]string, bool) {
	if s == nil {
		return nil, false
	}
	g, ok := s.groups[typeName]
	if !ok || g.fingerprint != fp {
		return nil, false
	}
	return g.classes, true
}

// reuser assigns structural keys to the nodes of one FPG and
// fingerprints type groups. ok goes false when any node lacks a unique
// structural key (a synthetic or cross-program heap model); reuse is
// then disabled rather than risking a misattributed replay.
type reuser struct {
	g      *fpg.Graph
	keys   []string       // node ID → structural site key
	nodeOf map[string]int // inverse, for replay
	ok     bool

	// digests caches each node's content hash (key, type, rendered
	// edges). Groups overlap heavily in their reachable sub-FPGs — every
	// group that stores into a shared runtime structure reaches the same
	// String/char[] cluster — so each node is rendered once, ever, and a
	// group fingerprint just folds the cached digests of its reachable
	// set.
	digests  [][sha256.Size]byte
	digested []bool
	// visitedAt is an epoch-marked scratch buffer for the per-group
	// reachability sweep (no per-group map allocation).
	visitedAt []int
	epoch     int
}

const nullKey = "~null"

func newReuser(g *fpg.Graph) *reuser {
	r := &reuser{
		g:         g,
		keys:      make([]string, len(g.Objs)),
		nodeOf:    make(map[string]int, len(g.Objs)),
		ok:        true,
		digests:   make([][sha256.Size]byte, len(g.Objs)),
		digested:  make([]bool, len(g.Objs)),
		visitedAt: make([]int, len(g.Objs)),
	}
	r.keys[fpg.NullNode] = nullKey
	r.nodeOf[nullKey] = fpg.NullNode
	ordinals := make(map[*lang.Method]map[*lang.AllocSite]int)
	for id := 1; id < len(g.Objs); id++ {
		key := siteKey(g.Objs[id].Rep, ordinals)
		if key == "" {
			r.ok = false
			return r
		}
		if _, dup := r.nodeOf[key]; dup {
			r.ok = false
			return r
		}
		r.keys[id] = key
		r.nodeOf[key] = id
	}
	return r
}

// siteKey names an allocation site by its method and the ordinal of the
// alloc within the method body — stable across re-parsing, unlike
// AllocSite.ID/Label, which embed a program-wide counter that shifts
// when any earlier method's allocation count changes.
func siteKey(site *lang.AllocSite, ordinals map[*lang.Method]map[*lang.AllocSite]int) string {
	if site == nil || site.Method == nil {
		return ""
	}
	m := site.Method
	idx, ok := ordinals[m]
	if !ok {
		idx = make(map[*lang.AllocSite]int)
		n := 0
		for _, st := range m.Stmts {
			if a, isAlloc := st.(*lang.Alloc); isAlloc {
				idx[a.Site] = n
				n++
			}
		}
		ordinals[m] = idx
	}
	ord, ok := idx[site]
	if !ok {
		return ""
	}
	return fmt.Sprintf("%s#%d", m, ord)
}

// fingerprint hashes the sub-FPG reachable from the group's members —
// the exact input of SINGLETYPE-CHECK and the automata equivalence
// tests — under structural keys, so equal fingerprints across programs
// imply equal merge decisions. One multi-root sweep collects the
// reachable set; node contents fold in as cached per-node digests.
func (r *reuser) fingerprint(nodes []int) [sha256.Size]byte {
	h := sha256.New()
	members := make([]string, len(nodes))
	for i, n := range nodes {
		members[i] = r.keys[n]
	}
	sort.Strings(members)
	for _, k := range members {
		fmt.Fprintf(h, "member %s\n", k)
	}

	r.epoch++
	var reach, stack []int
	for _, n := range nodes {
		if r.visitedAt[n] != r.epoch {
			r.visitedAt[n] = r.epoch
			stack = append(stack, n)
			reach = append(reach, n)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range r.g.Out[n] {
			for _, t := range e.Targets {
				if r.visitedAt[t] != r.epoch {
					r.visitedAt[t] = r.epoch
					stack = append(stack, t)
					reach = append(reach, t)
				}
			}
		}
	}
	sort.Slice(reach, func(i, j int) bool { return r.keys[reach[i]] < r.keys[reach[j]] })
	for _, n := range reach {
		d := r.nodeDigest(n)
		h.Write(d[:])
	}
	var fp [sha256.Size]byte
	h.Sum(fp[:0])
	return fp
}

// nodeDigest returns the cached content hash of one node: its key, its
// type, and its rendered out-edges.
func (r *reuser) nodeDigest(n int) [sha256.Size]byte {
	if !r.digested[n] {
		h := sha256.New()
		r.hashNode(h, n)
		h.Sum(r.digests[n][:0])
		r.digested[n] = true
	}
	return r.digests[n]
}

func (r *reuser) hashNode(h hash.Hash, n int) {
	typeName := ""
	if t := r.g.Types[r.g.TypeOf[n]]; t != nil {
		typeName = t.Name
	}
	fmt.Fprintf(h, "node %s : %s\n", r.keys[n], typeName)
	if n == fpg.NullNode {
		return // implicit self-loops, identical in every graph
	}
	// Out is sorted by field ID — an interning order — so re-sort the
	// rendered edge lines by field name for cross-program stability.
	lines := make([]string, 0, len(r.g.Out[n]))
	var sb strings.Builder
	for _, e := range r.g.Out[n] {
		f := r.g.Fields[e.Field]
		tgts := make([]string, len(e.Targets))
		for i, t := range e.Targets {
			tgts[i] = r.keys[t]
		}
		sort.Strings(tgts)
		sb.Reset()
		sb.WriteString("edge ")
		sb.WriteString(f.Owner.Name)
		sb.WriteByte('.')
		sb.WriteString(f.Name)
		sb.WriteString(" ->")
		for _, t := range tgts {
			sb.WriteByte(' ')
			sb.WriteString(t)
		}
		lines = append(lines, sb.String())
	}
	sort.Strings(lines)
	for _, l := range lines {
		io.WriteString(h, l)
		io.WriteString(h, "\n")
	}
}

// replay re-applies a captured partition to the union-find forest. It
// reports false — demoting the group to a normal merge — if any member
// key fails to resolve, which a matching fingerprint makes unreachable
// barring hash collisions.
func (r *reuser) replay(uf *unionfind.Forest, classes [][]string) bool {
	for _, cls := range classes {
		for _, key := range cls {
			if _, ok := r.nodeOf[key]; !ok {
				return false
			}
		}
	}
	for _, cls := range classes {
		first := r.nodeOf[cls[0]]
		for _, key := range cls[1:] {
			uf.Union(first, r.nodeOf[key])
		}
	}
	return true
}

// typeNameOf names the type group containing node.
func typeNameOf(g *fpg.Graph, node int) string {
	if t := g.Types[g.TypeOf[node]]; t != nil {
		return t.Name
	}
	return ""
}

// captureReuse snapshots the finished partition, group by group, for a
// later build to replay. fps carries fingerprints already computed
// during this build's reuse matching so they are not hashed twice.
func captureReuse(rx *reuser, groupList [][]int, uf *unionfind.Forest, fps map[string][sha256.Size]byte) *ReuseState {
	st := &ReuseState{groups: make(map[string]reuseGroup, len(groupList))}
	for _, nodes := range groupList {
		tname := typeNameOf(rx.g, nodes[0])
		fp, ok := fps[tname]
		if !ok {
			fp = rx.fingerprint(nodes)
		}
		byRoot := make(map[int][]string)
		for _, n := range nodes {
			root := uf.Find(n)
			byRoot[root] = append(byRoot[root], rx.keys[n])
		}
		roots := make([]int, 0, len(byRoot))
		for root, keys := range byRoot {
			if len(keys) > 1 {
				roots = append(roots, root)
			}
		}
		sort.Ints(roots)
		var classes [][]string
		for _, root := range roots {
			keys := byRoot[root]
			sort.Strings(keys)
			classes = append(classes, keys)
		}
		st.groups[tname] = reuseGroup{fingerprint: fp, classes: classes}
	}
	return st
}
