package core

import (
	"testing"

	"mahjong/internal/delta"
	"mahjong/internal/fpg"
	"mahjong/internal/lang"
	"mahjong/internal/pta"
	"mahjong/internal/synth"
)

// reuseFPG runs the pre-analysis pipeline up to the FPG.
func reuseFPG(t *testing.T, p *lang.Program) *fpg.Graph {
	t.Helper()
	pre, err := pta.Solve(p, pta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return fpg.Build(pre, fpg.Options{})
}

// synthProgram generates a named synthetic benchmark subject.
func synthProgram(t *testing.T, name string) *lang.Program {
	t.Helper()
	prof, err := synth.ProfileByName(name)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := synth.Generate(prof)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// mergeGroupCount counts the type groups Algorithm 1 would process
// (types with at least two objects).
func mergeGroupCount(g *fpg.Graph) int {
	byType := make(map[int]int)
	for id := 1; id < len(g.Objs); id++ {
		byType[g.TypeOf[id]]++
	}
	n := 0
	for _, c := range byType {
		if c > 1 {
			n++
		}
	}
	return n
}

func sameMOM(t *testing.T, tag string, a, b *Result) {
	t.Helper()
	if len(a.MOM) != len(b.MOM) {
		t.Fatalf("%s: MOM sizes differ: %d vs %d", tag, len(a.MOM), len(b.MOM))
	}
	for site, rep := range a.MOM {
		if b.MOM[site] != rep {
			t.Fatalf("%s: MOM[%s] = %s vs %s", tag, site, rep, b.MOM[site])
		}
	}
	if a.NumMerged != b.NumMerged || len(a.Classes) != len(b.Classes) {
		t.Fatalf("%s: merged=%d/%d classes=%d/%d", tag, a.NumMerged, b.NumMerged, len(a.Classes), len(b.Classes))
	}
}

// TestReuseIdentity: when nothing changed, every group's fingerprint
// matches, the whole partition is replayed, and not a single DFA is
// built — with a MOM identical to a from-scratch merge of the same
// graph.
func TestReuseIdentity(t *testing.T) {
	prog := synthProgram(t, "luindex")
	g := reuseFPG(t, prog)
	base := Build(g, Options{CaptureReuse: true})
	if base.ReuseState.Groups() == 0 {
		t.Fatal("no reuse state captured")
	}

	next, err := delta.Rewrite(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	g2 := reuseFPG(t, next)
	warm := Build(g2, Options{Reuse: base.ReuseState})
	cold := Build(g2, Options{})

	groups := mergeGroupCount(g2)
	if warm.ReusedGroups != groups || warm.RemergedGroups != 0 {
		t.Fatalf("reused=%d remerged=%d, want %d/0", warm.ReusedGroups, warm.RemergedGroups, groups)
	}
	if warm.DFAStates != 0 {
		t.Fatalf("full reuse still built %d DFA states", warm.DFAStates)
	}
	sameMOM(t, "identity", warm, cold)
}

// TestReuseAfterAllocEdit: inserting an allocation invalidates the
// fingerprints of the groups its object disturbs — those re-merge — but
// the replayed-plus-remerged result must be exactly the from-scratch
// MOM, and untouched groups must still be replayed.
func TestReuseAfterAllocEdit(t *testing.T) {
	prog := synthProgram(t, "luindex")
	g := reuseFPG(t, prog)
	base := Build(g, Options{CaptureReuse: true})

	// Insert one alloc at the top of a concrete non-entry method.
	var target *lang.Method
	for _, c := range prog.Classes {
		for _, m := range c.DeclaredMethods {
			if !m.IsAbstract && m != prog.Entry && m.This != nil && !m.This.Type.IsInterface && !m.This.Type.IsArray() {
				target = m
				break
			}
		}
		if target != nil {
			break
		}
	}
	if target == nil {
		t.Fatal("no editable method")
	}
	next, err := delta.Rewrite(prog, func(m *lang.Method, stmts []lang.Stmt) []lang.Stmt {
		if m != target {
			return stmts
		}
		alloc := &lang.Alloc{LHS: m.This, Site: &lang.AllocSite{Type: m.This.Type, Method: m}}
		return append([]lang.Stmt{alloc}, stmts...)
	})
	if err != nil {
		t.Fatal(err)
	}
	g2 := reuseFPG(t, next)
	warm := Build(g2, Options{Reuse: base.ReuseState})
	cold := Build(g2, Options{})

	if warm.ReusedGroups+warm.RemergedGroups != mergeGroupCount(g2) {
		t.Fatalf("reused=%d remerged=%d, want sum %d",
			warm.ReusedGroups, warm.RemergedGroups, mergeGroupCount(g2))
	}
	if warm.ReusedGroups == 0 {
		t.Fatal("one-alloc edit reused nothing")
	}
	sameMOM(t, "alloc edit", warm, cold)
	t.Logf("groups: %d reused, %d remerged", warm.ReusedGroups, warm.RemergedGroups)
}

// TestReuseChained: capture can ride on a reusing build, so delta jobs
// chain warm-to-warm.
func TestReuseChained(t *testing.T) {
	prog := synth.RandomProgram(9)
	g := reuseFPG(t, prog)
	base := Build(g, Options{CaptureReuse: true})

	cur := prog
	state := base.ReuseState
	for step := 0; step < 3; step++ {
		next, err := delta.Rewrite(cur, nil)
		if err != nil {
			t.Fatal(err)
		}
		g2 := reuseFPG(t, next)
		warm := Build(g2, Options{Reuse: state, CaptureReuse: true})
		cold := Build(g2, Options{})
		sameMOM(t, "chained", warm, cold)
		if warm.RemergedGroups != 0 {
			t.Fatalf("step %d: identity chain remerged %d groups", step, warm.RemergedGroups)
		}
		if warm.ReuseState.Groups() != state.Groups() {
			t.Fatalf("step %d: captured %d groups, had %d", step, warm.ReuseState.Groups(), state.Groups())
		}
		cur, state = next, warm.ReuseState
	}
}
