// Package delta is the incremental front half of the analysis engine:
// it canonicalizes IR at class/method granularity, content-hashes each
// unit, and diffs two programs into (a) an eligibility verdict — can
// the edit be replayed incrementally at all — and (b) structural
// translation maps that rebind the retained base analysis state
// (variables, fields, allocation sites) to the next program.
//
// The granularity contract: an edit is *body-only* when the two
// programs have the same class shapes (names, hierarchy, interfaces,
// declared fields, method signatures) and the same entry point, so they
// differ at most in method bodies. Only body-only edits are eligible
// for incremental replay (internal/pta.SolveIncrementalContext);
// anything else — a new class, a changed field, a different override
// set — changes dispatch or storage structure and falls back to a
// from-scratch solve with a recorded reason.
//
// Identity across programs is structural, never positional or global:
// classes match by name, methods by "Owner.name/arity", fields by
// owner+name, variables by index within a body-identical method, and
// allocation sites by (method, ordinal of the alloc within the body).
// AllocSite.Label is NOT a translation key — it embeds a program-wide
// counter that shifts when any earlier method's allocation count
// changes.
package delta

import (
	"crypto/sha256"
	"fmt"

	"mahjong/internal/failure"
	"mahjong/internal/faultinject"
	"mahjong/internal/lang"
	"mahjong/internal/parser"
	"mahjong/internal/trace"
)

// UnitHash is the content hash of one canonical unit (a method body or
// a class shape).
type UnitHash [sha256.Size]byte

// HashMethod content-hashes a method's canonical text (signature,
// locals, statements). Abstract methods hash their signature line.
func HashMethod(m *lang.Method) UnitHash { return sha256.Sum256([]byte(parser.MethodText(m))) }

// HashClassShape content-hashes everything about a class except its
// method bodies.
func HashClassShape(c *lang.Class) UnitHash { return sha256.Sum256([]byte(parser.ClassShape(c))) }

// Options configures Compute.
type Options struct {
	// Trace records one "delta.diff" span covering the diff. The zero
	// value disables tracing.
	Trace trace.Ctx
}

// Diff is the outcome of comparing a base program against its successor.
type Diff struct {
	Base, Next *lang.Program

	// BodyOnly reports that the programs differ at most in method
	// bodies; only then are the translation maps populated and the edit
	// eligible for incremental replay.
	BodyOnly bool
	// Reason says why BodyOnly is false ("" when it is true).
	Reason string

	// TotalMethods counts the concrete methods compared; Changed lists
	// the base methods whose body hash differs from their counterpart.
	TotalMethods int
	Changed      []*lang.Method

	// Methods maps every matched base method to its successor.
	Methods map[*lang.Method]*lang.Method
	// Vars maps variables of body-unchanged methods (this, params,
	// $ret, $exc, declared locals) to their successors.
	Vars map[*lang.Var]*lang.Var
	// Fields maps every matched field (by owner class + name).
	Fields map[*lang.Field]*lang.Field
	// Sites maps allocation sites of body-unchanged methods by their
	// ordinal within the method body.
	Sites map[*lang.AllocSite]*lang.AllocSite
	// Invokes maps call statements of body-unchanged methods by their
	// statement position (equal canonical text makes the bodies
	// positionally alike), letting the solver translate retained call
	// edges instead of re-dispatching them.
	Invokes map[*lang.Invoke]*lang.Invoke

	// Additive reports that every changed method only *grew*: each base
	// statement still renders to an identical canonical line in the
	// successor body and no local was removed or retyped. The analysis
	// is monotone, so an additive edit leaves every base fact below the
	// edited program's fixpoint — the solver can replay the whole base
	// state without any invalidation. For additive pairs the Vars,
	// Sites, and Invokes maps cover the changed methods too (matched by
	// name and canonical line instead of position).
	Additive bool

	changed map[*lang.Method]bool
}

// MethodChanged reports whether base method m's body differs in Next
// (true for every method when the diff is not BodyOnly).
func (d *Diff) MethodChanged(m *lang.Method) bool {
	if !d.BodyOnly {
		return true
	}
	return d.changed[m]
}

// Compute diffs base against next. It never fails on a mere mismatch —
// structural differences surface as BodyOnly=false with a Reason — and
// returns an error only for injected faults or internal bugs, which
// callers answer by falling back to a from-scratch solve.
func Compute(base, next *lang.Program, opts Options) (d *Diff, err error) {
	// Span-close defer precedes the stage guard so it observes the
	// recovered error (see pta.SolveContext for the idiom).
	sp := opts.Trace.Start(faultinject.StageDelta)
	defer func() { sp.Close(err) }()
	defer failure.Recover(faultinject.StageDelta, &err)
	if err := faultinject.Fire(faultinject.StageDelta); err != nil {
		return nil, fmt.Errorf("delta: diff: %w", err)
	}

	d = &Diff{
		Base:    base,
		Next:    next,
		Methods: map[*lang.Method]*lang.Method{},
		Vars:    map[*lang.Var]*lang.Var{},
		Fields:  map[*lang.Field]*lang.Field{},
		Sites:   map[*lang.AllocSite]*lang.AllocSite{},
		Invokes: map[*lang.Invoke]*lang.Invoke{},
		changed: map[*lang.Method]bool{},
	}
	d.BodyOnly, d.Reason = d.compare()
	sp.Add("methods_total", int64(d.TotalMethods))
	sp.Add("methods_changed", int64(len(d.Changed)))
	if !d.BodyOnly {
		sp.Add("shape_mismatch", 1)
	}
	return d, nil
}

// compare performs the shape check and, when it passes, builds the
// translation maps and the changed-method set.
func (d *Diff) compare() (bool, string) {
	base, next := d.Base, d.Next

	if base.Entry == nil || next.Entry == nil {
		return false, "missing entry point"
	}
	if base.Entry.String() != next.Entry.String() {
		return false, fmt.Sprintf("entry changed: %s -> %s", base.Entry, next.Entry)
	}

	// Class shapes must agree on the named (non-array) classes. Array
	// classes are created on demand by the statements that mention them,
	// so they are matched opportunistically below: a body-identical
	// method recreates exactly the arrays it uses.
	baseNamed, nextNamed := 0, 0
	for _, c := range base.Classes {
		if !c.IsArray() {
			baseNamed++
		}
	}
	for _, c := range next.Classes {
		if !c.IsArray() {
			nextNamed++
		}
	}
	if baseNamed != nextNamed {
		return false, fmt.Sprintf("class count changed: %d -> %d", baseNamed, nextNamed)
	}
	for _, bc := range base.Classes {
		if bc.IsArray() {
			continue
		}
		nc := next.Class(bc.Name)
		if nc == nil {
			return false, fmt.Sprintf("class %s removed", bc.Name)
		}
		if HashClassShape(bc) != HashClassShape(nc) {
			return false, fmt.Sprintf("class %s shape changed", bc.Name)
		}
	}

	// Shapes agree: translate fields and methods, then diff bodies.
	additive := true
	for _, bc := range base.Classes {
		nc := next.Class(bc.Name)
		if nc == nil {
			continue // base-only array class; nothing referenced it cleanly
		}
		for _, bf := range bc.DeclaredFields {
			if nf := nc.Field(bf.Name); nf != nil {
				d.Fields[bf] = nf
			}
		}
		for _, bm := range bc.DeclaredMethods {
			nm := nc.DeclaredMethod(bm.Sig())
			if nm == nil {
				continue // shape equality makes this unreachable for named classes
			}
			d.Methods[bm] = nm
			if bm.IsAbstract {
				continue
			}
			d.TotalMethods++
			if HashMethod(bm) != HashMethod(nm) || !d.translateBody(bm, nm) {
				d.changed[bm] = true
				d.Changed = append(d.Changed, bm)
				if !d.translateGrown(bm, nm) {
					additive = false
				}
			}
		}
	}
	d.Additive = additive
	return true, ""
}

// translateBody maps the variables and allocation sites of a
// body-identical method pair. It returns false — demoting the pair to
// "changed" — if the bodies are not, after all, positionally alike;
// with equal canonical text that never happens, so the checks are a
// cheap defense against hash collisions and builder drift.
func (d *Diff) translateBody(bm, nm *lang.Method) bool {
	// The solver creates a method's "$exc" variable lazily when a call
	// edge first reaches it, so a previously analyzed base method may
	// carry a $exc local its freshly parsed successor has not grown yet
	// (and its position within Locals depends on creation time). Compare
	// the named locals positionally and bind $exc by name below.
	bLocals := withoutExc(bm.Locals)
	nLocals := withoutExc(nm.Locals)
	if len(bLocals) != len(nLocals) {
		return false
	}
	for i, bv := range bLocals {
		nv := nLocals[i]
		if bv.Name != nv.Name || bv.Type.Name != nv.Type.Name {
			return false
		}
	}
	if len(bm.Stmts) != len(nm.Stmts) {
		return false
	}
	var bAllocs, nAllocs []*lang.Alloc
	for _, st := range bm.Stmts {
		if a, ok := st.(*lang.Alloc); ok {
			bAllocs = append(bAllocs, a)
		}
	}
	for _, st := range nm.Stmts {
		if a, ok := st.(*lang.Alloc); ok {
			nAllocs = append(nAllocs, a)
		}
	}
	if len(bAllocs) != len(nAllocs) {
		return false
	}
	for i, ba := range bAllocs {
		if ba.Site.Type.Name != nAllocs[i].Site.Type.Name {
			return false
		}
	}
	for i, bv := range bLocals {
		d.Vars[bv] = nLocals[i]
	}
	if bm.HasExcVar() {
		// Creating the successor's $exc here is exactly what the next
		// solve would do on its first call edge into nm.
		d.Vars[bm.ExcVar()] = nm.ExcVar()
	}
	for i, ba := range bAllocs {
		d.Sites[ba.Site] = nAllocs[i].Site
	}
	for i, st := range bm.Stmts {
		if binv, ok := st.(*lang.Invoke); ok {
			if ninv, ok := nm.Stmts[i].(*lang.Invoke); ok {
				d.Invokes[binv] = ninv
			}
		}
	}
	return true
}

// translateGrown maps a *changed* method pair whose edit only added
// statements (or reordered them — the solver treats a body as a set of
// constraints). Each base statement must render to a canonical line
// some unclaimed successor statement renders to as well, and every base
// local must survive under its name and type. Matching same-text
// statements in occurrence order is sound regardless of which
// occurrence "really" corresponds: identical lines in the same method
// impose identical constraints, so any base derivation maps to a valid
// successor derivation either way. On success the pair's variables,
// allocation sites, and call statements join the translation maps and
// the method stays in Changed (its new statements still need a cold
// pass); on failure the maps are untouched.
func (d *Diff) translateGrown(bm, nm *lang.Method) bool {
	byName := make(map[string]*lang.Var)
	for _, nv := range withoutExc(nm.Locals) {
		byName[nv.Name] = nv
	}
	bLocals := withoutExc(bm.Locals)
	vars := make(map[*lang.Var]*lang.Var, len(bLocals))
	for _, bv := range bLocals {
		nv := byName[bv.Name]
		if nv == nil || bv.Type.Name != nv.Type.Name {
			return false
		}
		vars[bv] = nv
	}

	// Key on concrete kind + text: a Load and a StaticLoad can render
	// alike when a variable shadows a class name.
	key := func(st lang.Stmt) string {
		return fmt.Sprintf("%T %s", st, parser.StmtText(st))
	}
	unclaimed := make(map[string][]lang.Stmt)
	for _, st := range nm.Stmts {
		k := key(st)
		unclaimed[k] = append(unclaimed[k], st)
	}
	type stmtPair struct{ b, n lang.Stmt }
	pairs := make([]stmtPair, 0, len(bm.Stmts))
	for _, st := range bm.Stmts {
		k := key(st)
		cands := unclaimed[k]
		if len(cands) == 0 {
			return false
		}
		pairs = append(pairs, stmtPair{st, cands[0]})
		unclaimed[k] = cands[1:]
	}

	for bv, nv := range vars {
		d.Vars[bv] = nv
	}
	if bm.HasExcVar() {
		d.Vars[bm.ExcVar()] = nm.ExcVar()
	}
	for _, p := range pairs {
		switch bs := p.b.(type) {
		case *lang.Alloc:
			d.Sites[bs.Site] = p.n.(*lang.Alloc).Site
		case *lang.Invoke:
			d.Invokes[bs] = p.n.(*lang.Invoke)
		}
	}
	return true
}

// withoutExc filters the lazily created "$exc" sink out of a Locals
// slice so positional comparison is insensitive to when (or whether)
// analysis forced its creation.
func withoutExc(vars []*lang.Var) []*lang.Var {
	out := make([]*lang.Var, 0, len(vars))
	for _, v := range vars {
		if v.Name == "$exc" {
			continue
		}
		out = append(out, v)
	}
	return out
}
