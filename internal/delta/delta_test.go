// External test package so the tests can drive internal/pta (which
// imports delta) without an import cycle.
package delta_test

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"mahjong/internal/delta"
	"mahjong/internal/faultinject"
	"mahjong/internal/lang"
	"mahjong/internal/pta"
	"mahjong/internal/synth"
	"mahjong/internal/trace"
)

// TestRewriteIdentity: a nil-edit Rewrite is a deep copy that hashes
// unit-for-unit equal to its source and diffs as "no change".
func TestRewriteIdentity(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		prog := synth.RandomProgram(seed)
		copyProg, err := delta.Rewrite(prog, nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		d, err := delta.Compute(prog, copyProg, delta.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !d.BodyOnly {
			t.Fatalf("seed %d: identity rewrite not body-only: %s", seed, d.Reason)
		}
		if len(d.Changed) != 0 {
			t.Fatalf("seed %d: identity rewrite changed %d methods, first %s", seed, len(d.Changed), d.Changed[0])
		}
		if d.TotalMethods == 0 || len(d.Vars) == 0 || len(d.Sites) == 0 {
			t.Fatalf("seed %d: translation maps empty: methods=%d vars=%d sites=%d",
				seed, d.TotalMethods, len(d.Vars), len(d.Sites))
		}
		// Every translated pair must agree on name/position semantics.
		for bv, nv := range d.Vars {
			if bv.Name != nv.Name || bv.Type.Name != nv.Type.Name {
				t.Fatalf("seed %d: var %s:%s mapped to %s:%s", seed, bv.Name, bv.Type.Name, nv.Name, nv.Type.Name)
			}
		}
		for bs, ns := range d.Sites {
			if bs.Type.Name != ns.Type.Name {
				t.Fatalf("seed %d: site of %s mapped to %s", seed, bs.Type.Name, ns.Type.Name)
			}
		}
	}
}

// TestDiffAfterBaseSolve is the $exc regression: analyzing the base
// program creates lazy "$exc" locals a fresh copy does not have, and
// the diff must not mistake that for an edit.
func TestDiffAfterBaseSolve(t *testing.T) {
	prog := synth.RandomProgram(2)
	if _, err := pta.Solve(prog, pta.Options{}); err != nil {
		t.Fatalf("solve: %v", err)
	}
	copyProg, err := delta.Rewrite(prog, nil)
	if err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	d, err := delta.Compute(prog, copyProg, delta.Options{})
	if err != nil {
		t.Fatalf("diff: %v", err)
	}
	if !d.BodyOnly || len(d.Changed) != 0 {
		t.Fatalf("solved base diffs against its own copy: BodyOnly=%v changed=%v", d.BodyOnly, d.Changed)
	}
}

// TestComputeDetectsShapeChanges: structural edits must demote the diff
// to from-scratch with a reason; a body edit must mark exactly the
// edited method.
func TestComputeDetectsShapeChanges(t *testing.T) {
	prog := synth.RandomProgram(4)

	t.Run("class added", func(t *testing.T) {
		next, err := delta.Rewrite(prog, nil)
		if err != nil {
			t.Fatal(err)
		}
		next.NewClass("Extra", nil)
		d, err := delta.Compute(prog, next, delta.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if d.BodyOnly || !strings.Contains(d.Reason, "class count") {
			t.Fatalf("BodyOnly=%v Reason=%q", d.BodyOnly, d.Reason)
		}
		// Not body-only: every method counts as changed.
		if !d.MethodChanged(prog.Entry) {
			t.Fatal("MethodChanged must be universally true on shape change")
		}
	})

	t.Run("field added", func(t *testing.T) {
		next, err := delta.Rewrite(prog, nil)
		if err != nil {
			t.Fatal(err)
		}
		var target *lang.Class
		for _, c := range next.Classes {
			if !c.IsArray() && !c.IsInterface && c != next.Object() {
				target = c
				break
			}
		}
		target.NewField("sneakyExtra", next.Object())
		d, err := delta.Compute(prog, next, delta.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if d.BodyOnly || !strings.Contains(d.Reason, "shape changed") {
			t.Fatalf("BodyOnly=%v Reason=%q", d.BodyOnly, d.Reason)
		}
	})

	t.Run("body edited", func(t *testing.T) {
		rng := rand.New(rand.NewSource(11)) //nolint:gosec // deterministic test
		next, desc, err := delta.RandomEdit(prog, rng)
		if err != nil {
			t.Fatal(err)
		}
		d, err := delta.Compute(prog, next, delta.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !d.BodyOnly {
			t.Fatalf("edit %q not body-only: %s", desc, d.Reason)
		}
		if len(d.Changed) > 1 {
			t.Fatalf("edit %q changed %d methods", desc, len(d.Changed))
		}
		for _, m := range d.Changed {
			if !d.MethodChanged(m) {
				t.Fatalf("changed method %s not reported by MethodChanged", m)
			}
			// Changed methods carry variable translations only when
			// the edit was recognized as additive (grown-body match).
			for bv := range d.Vars {
				if bv.Method == m && !d.Additive {
					t.Fatalf("changed method %s has translated var %s", m, bv.Name)
				}
			}
		}
	})
}

// TestComputeFaultInjection: the delta.diff seam must surface injected
// errors and panics as plain errors (callers fall back to cold solves),
// and record a span either way.
func TestComputeFaultInjection(t *testing.T) {
	defer faultinject.Clear()
	prog := synth.RandomProgram(1)
	next, err := delta.Rewrite(prog, nil)
	if err != nil {
		t.Fatal(err)
	}

	faultinject.Set(faultinject.OnStage(faultinject.StageDelta, faultinject.Fail(errors.New("boom"))))
	if _, err := delta.Compute(prog, next, delta.Options{}); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("injected error not surfaced: %v", err)
	}

	faultinject.Set(faultinject.OnStage(faultinject.StageDelta, faultinject.PanicWith("delta bug")))
	if _, err := delta.Compute(prog, next, delta.Options{}); err == nil || !strings.Contains(err.Error(), "delta.diff") {
		t.Fatalf("injected panic not recovered as stage error: %v", err)
	}
	faultinject.Clear()

	tr := trace.New()
	if _, err := delta.Compute(prog, next, delta.Options{Trace: tr.Root()}); err != nil {
		t.Fatal(err)
	}
	spans := tr.Snapshot().Spans
	found := false
	for _, sp := range spans {
		if sp.Stage == faultinject.StageDelta {
			found = true
		}
	}
	if !found {
		t.Fatalf("no %s span recorded (got %d spans)", faultinject.StageDelta, len(spans))
	}
}
