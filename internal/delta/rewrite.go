package delta

import (
	"fmt"
	"math/rand"

	"mahjong/internal/lang"
)

// EditFn transforms one method's statement list during Rewrite. It
// receives the ORIGINAL method and its original statements and returns
// the list the copy should carry. Returned statements may be originals,
// duplicates, or freshly constructed values referencing the original
// program's vars/fields/classes/methods — Rewrite translates everything
// into the copy. Returning the input unchanged copies the body as-is.
type EditFn func(m *lang.Method, stmts []lang.Stmt) []lang.Stmt

// Rewrite deep-copies p through the lang builder API, applying edit
// (nil = identity) to each method body. It is the edit machinery behind
// the randomized incremental-vs-cold equivalence sweeps: the copy
// shares no pointers with p, so base and next behave exactly like two
// independently parsed programs.
func Rewrite(p *lang.Program, edit EditFn) (*lang.Program, error) {
	q := lang.NewProgram()
	rw := &rewriter{
		p: p, q: q,
		classes: map[*lang.Class]*lang.Class{p.Object(): q.Object()},
		methods: map[*lang.Method]*lang.Method{},
		fields:  map[*lang.Field]*lang.Field{},
	}

	// Pass 1: classes and interfaces in creation order (supers and
	// extended interfaces precede their users in p.Classes). Array
	// classes are skipped; trClass recreates them on demand.
	for _, c := range p.Classes {
		if c == p.Object() || c.IsArray() {
			continue
		}
		var ifaces []*lang.Class
		for _, it := range c.Interfaces {
			ifaces = append(ifaces, rw.trClass(it))
		}
		if c.IsInterface {
			rw.classes[c] = q.NewInterface(c.Name, ifaces...)
		} else {
			var super *lang.Class
			if c.Super != nil && c.Super != p.Object() {
				super = rw.trClass(c.Super)
			}
			rw.classes[c] = q.NewClass(c.Name, super, ifaces...)
		}
	}

	// Pass 2: fields and method signatures.
	for _, c := range p.Classes {
		if c == p.Object() || c.IsArray() {
			continue
		}
		nc := rw.classes[c]
		for _, f := range c.DeclaredFields {
			if f.IsStatic {
				rw.fields[f] = nc.NewStaticField(f.Name, rw.trClass(f.Type))
			} else {
				rw.fields[f] = nc.NewField(f.Name, rw.trClass(f.Type))
			}
		}
		for _, m := range c.DeclaredMethods {
			var params []*lang.Class
			for _, pv := range m.Params {
				params = append(params, rw.trClass(pv.Type))
			}
			var ret *lang.Class
			if m.Ret != nil {
				ret = rw.trClass(m.Ret)
			}
			var nm *lang.Method
			if m.IsAbstract {
				nm = nc.NewAbstractMethod(m.Name, params, ret)
			} else {
				nm = nc.NewMethod(m.Name, m.IsStatic, params, ret)
			}
			for i, pv := range m.Params {
				nm.Params[i].Name = pv.Name
			}
			rw.methods[m] = nm
		}
	}

	// Pass 3: bodies, through the (possibly editing) statement copier.
	for _, c := range p.Classes {
		if c == p.Object() || c.IsArray() {
			continue
		}
		for _, m := range c.DeclaredMethods {
			if m.IsAbstract {
				continue
			}
			if err := rw.copyBody(m, edit); err != nil {
				return nil, err
			}
		}
	}

	if p.Entry != nil {
		q.SetEntry(rw.methods[p.Entry])
	}
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("delta: rewritten program invalid: %w", err)
	}
	return q, nil
}

type rewriter struct {
	p, q    *lang.Program
	classes map[*lang.Class]*lang.Class
	methods map[*lang.Method]*lang.Method
	fields  map[*lang.Field]*lang.Field
}

func (rw *rewriter) trClass(c *lang.Class) *lang.Class {
	if nc, ok := rw.classes[c]; ok {
		return nc
	}
	if c.IsArray() {
		nc := rw.q.ArrayOf(rw.trClass(c.Elem))
		rw.classes[c] = nc
		return nc
	}
	panic(fmt.Sprintf("delta: class %s referenced before declaration", c.Name))
}

func (rw *rewriter) trField(f *lang.Field) *lang.Field {
	if nf, ok := rw.fields[f]; ok {
		return nf
	}
	// Array element pseudo-fields are created with their array class.
	nf := rw.trClass(f.Owner).Field(f.Name)
	if nf == nil {
		panic(fmt.Sprintf("delta: field %s not translatable", f))
	}
	rw.fields[f] = nf
	return nf
}

// copyBody copies m's declared locals and (edited) statements into its
// already-created counterpart.
func (rw *rewriter) copyBody(m *lang.Method, edit EditFn) error {
	nm := rw.methods[m]
	vars := map[*lang.Var]*lang.Var{}
	if m.This != nil {
		vars[m.This] = nm.This
	}
	for i, pv := range m.Params {
		vars[pv] = nm.Params[i]
	}
	if m.RetVar != nil {
		vars[m.RetVar] = nm.RetVar
	}
	trVar := func(v *lang.Var) *lang.Var {
		if v == nil {
			return nil
		}
		if nv, ok := vars[v]; ok {
			return nv
		}
		if v.Name == "$exc" {
			nv := nm.ExcVar()
			vars[v] = nv
			return nv
		}
		nv := nm.NewVar(v.Name, rw.trClass(v.Type))
		vars[v] = nv
		return nv
	}
	// Declare locals up-front in source order so body-identical methods
	// get positionally identical Locals.
	for _, v := range m.Locals {
		if v == m.This || v == m.RetVar || v.Name == "$exc" {
			continue
		}
		if isParam(m, v) {
			continue
		}
		trVar(v)
	}

	stmts := m.Stmts
	if edit != nil {
		stmts = edit(m, stmts)
	}
	for _, st := range stmts {
		if err := rw.copyStmt(nm, trVar, st); err != nil {
			return fmt.Errorf("delta: rewrite %s: %w", m, err)
		}
	}
	return nil
}

func isParam(m *lang.Method, v *lang.Var) bool {
	for _, pv := range m.Params {
		if pv == v {
			return true
		}
	}
	return false
}

func (rw *rewriter) copyStmt(nm *lang.Method, trVar func(*lang.Var) *lang.Var, st lang.Stmt) error {
	switch s := st.(type) {
	case *lang.Alloc:
		nm.AddAlloc(trVar(s.LHS), rw.trClass(s.Site.Type))
	case *lang.Copy:
		nm.AddCopy(trVar(s.LHS), trVar(s.RHS))
	case *lang.Load:
		nm.AddLoad(trVar(s.LHS), trVar(s.Base), rw.trField(s.Field))
	case *lang.Store:
		nm.AddStore(trVar(s.Base), rw.trField(s.Field), trVar(s.RHS))
	case *lang.StaticLoad:
		nm.AddStaticLoad(trVar(s.LHS), rw.trField(s.Field))
	case *lang.StaticStore:
		nm.AddStaticStore(rw.trField(s.Field), trVar(s.RHS))
	case *lang.Cast:
		nm.AddCast(trVar(s.LHS), rw.trClass(s.Type), trVar(s.RHS))
	case *lang.Invoke:
		args := make([]*lang.Var, len(s.Args))
		for i, a := range s.Args {
			args[i] = trVar(a)
		}
		switch s.Kind {
		case lang.VirtualCall:
			nm.AddVirtualCall(trVar(s.LHS), trVar(s.Base), s.Callee.Name, args...)
		case lang.StaticCall:
			nm.AddStaticCall(trVar(s.LHS), rw.methods[s.Callee], args...)
		case lang.SpecialCall:
			nm.AddSpecialCall(trVar(s.LHS), trVar(s.Base), rw.methods[s.Callee], args...)
		}
	case *lang.Return:
		nm.AddReturn(trVar(s.Value))
	case *lang.Throw:
		nm.AddThrow(trVar(s.Value))
	case *lang.Catch:
		nm.AddCatch(trVar(s.LHS), rw.trClass(s.Type))
	default:
		return fmt.Errorf("unknown statement %T", st)
	}
	return nil
}

// RandomEdit applies one random, validity-preserving, body-only edit to
// a random concrete method of p and returns the edited copy plus a
// description of the edit. The edit vocabulary — drop a statement,
// duplicate one, swap two adjacent ones, insert an allocation or a copy
// — keeps class shapes intact, so every chain of RandomEdits stays
// eligible for incremental replay.
func RandomEdit(p *lang.Program, rng *rand.Rand) (*lang.Program, string, error) {
	var candidates []*lang.Method
	for _, c := range p.Classes {
		for _, m := range c.DeclaredMethods {
			if !m.IsAbstract {
				candidates = append(candidates, m)
			}
		}
	}
	if len(candidates) == 0 {
		return nil, "", fmt.Errorf("delta: no concrete methods to edit")
	}
	target := candidates[rng.Intn(len(candidates))]
	op, desc := randomBodyEdit(target, rng)
	edited, err := Rewrite(p, func(m *lang.Method, stmts []lang.Stmt) []lang.Stmt {
		if m != target {
			return stmts
		}
		return op(stmts)
	})
	if err != nil {
		return nil, "", err
	}
	return edited, fmt.Sprintf("%s in %s", desc, target), nil
}

// randomBodyEdit picks an edit applicable to m; the self-copy insertion
// is the universal fallback (always valid, always changes the body
// text).
func randomBodyEdit(m *lang.Method, rng *rand.Rand) (func([]lang.Stmt) []lang.Stmt, string) {
	editable := func(st lang.Stmt) bool {
		switch st.(type) {
		case *lang.Return, *lang.Throw:
			return false
		}
		return true
	}
	editableIdx := func(stmts []lang.Stmt) []int {
		var idx []int
		for i, st := range stmts {
			if editable(st) {
				idx = append(idx, i)
			}
		}
		return idx
	}
	switch rng.Intn(4) {
	case 0: // drop a random droppable statement
		return func(stmts []lang.Stmt) []lang.Stmt {
			idx := editableIdx(stmts)
			if len(idx) == 0 {
				return stmts
			}
			i := idx[rng.Intn(len(idx))]
			out := append([]lang.Stmt{}, stmts[:i]...)
			return append(out, stmts[i+1:]...)
		}, "drop statement"
	case 1: // duplicate a random statement
		return func(stmts []lang.Stmt) []lang.Stmt {
			idx := editableIdx(stmts)
			if len(idx) == 0 {
				return stmts
			}
			i := idx[rng.Intn(len(idx))]
			out := append([]lang.Stmt{}, stmts[:i+1]...)
			out = append(out, stmts[i])
			return append(out, stmts[i+1:]...)
		}, "duplicate statement"
	case 2: // swap two adjacent statements
		return func(stmts []lang.Stmt) []lang.Stmt {
			idx := editableIdx(stmts)
			for _, i := range rng.Perm(len(idx)) {
				j := idx[i]
				if j+1 < len(stmts) && editable(stmts[j+1]) {
					out := append([]lang.Stmt{}, stmts...)
					out[j], out[j+1] = out[j+1], out[j]
					return out
				}
			}
			return stmts
		}, "swap adjacent statements"
	default: // insert an allocation into a random var, or a self-copy
		if v := randomAllocatable(m, rng); v != nil {
			if typ := concreteAllocType(v); typ != nil {
				ins := &lang.Alloc{LHS: v, Site: &lang.AllocSite{Type: typ, Method: m}}
				return func(stmts []lang.Stmt) []lang.Stmt {
					return append([]lang.Stmt{ins}, stmts...)
				}, fmt.Sprintf("insert alloc %s = new %s", v.Name, typ.Name)
			}
			return func(stmts []lang.Stmt) []lang.Stmt {
				return append([]lang.Stmt{&lang.Copy{LHS: v, RHS: v}}, stmts...)
			}, fmt.Sprintf("insert self-copy of %s", v.Name)
		}
		return func(stmts []lang.Stmt) []lang.Stmt { return stmts }, "no-op"
	}
}

// randomAllocatable picks a non-synthetic variable of m (nil if none).
func randomAllocatable(m *lang.Method, rng *rand.Rand) *lang.Var {
	var vs []*lang.Var
	for _, v := range m.Locals {
		if v == m.This || v == m.RetVar || v.Name == "$exc" || isParam(m, v) {
			continue
		}
		vs = append(vs, v)
	}
	if len(vs) == 0 {
		if m.RetVar != nil {
			return m.RetVar
		}
		return nil
	}
	return vs[rng.Intn(len(vs))]
}

// concreteAllocType picks a class assignable to v by walking down from
// v's own static type (nil for interface/array-typed vars with no
// class subtype — the caller falls back to a self-copy).
func concreteAllocType(v *lang.Var) *lang.Class {
	if !v.Type.IsInterface && !v.Type.IsArray() {
		return v.Type
	}
	return nil
}
