// Package export renders analysis results in interchange formats:
// Graphviz DOT and JSON for call graphs, and DOT for field points-to
// graphs. These are library conveniences for downstream tooling (call
// graph diffing, visualization) rather than part of the paper's
// evaluation.
package export

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"mahjong/internal/fpg"
	"mahjong/internal/lang"
	"mahjong/internal/pta"
)

// CallGraphDOT writes the context-insensitive call graph in DOT format.
// Nodes are methods; one edge per (call site, target), labeled with the
// call-site id. Output is deterministic.
func CallGraphDOT(w io.Writer, r *pta.Result) error {
	var b strings.Builder
	b.WriteString("digraph callgraph {\n")
	b.WriteString("  rankdir=LR;\n  node [shape=box, fontsize=10];\n")

	// Stable node ids: method id.
	methods := map[*lang.Method]bool{}
	edges := r.CallGraphEdges()
	for _, e := range edges {
		methods[e.Site.In] = true
		methods[e.Callee] = true
	}
	sorted := make([]*lang.Method, 0, len(methods))
	for m := range methods {
		sorted = append(sorted, m)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	for _, m := range sorted {
		fmt.Fprintf(&b, "  m%d [label=%q];\n", m.ID, m.String())
	}
	for _, e := range edges {
		fmt.Fprintf(&b, "  m%d -> m%d [label=\"#%d\"];\n", e.Site.In.ID, e.Callee.ID, e.Site.ID)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// callGraphJSON is the JSON shape of an exported call graph.
type callGraphJSON struct {
	Methods []methodJSON `json:"methods"`
	Edges   []edgeJSON   `json:"edges"`
}

type methodJSON struct {
	ID     int    `json:"id"`
	Name   string `json:"name"`
	Static bool   `json:"static"`
}

type edgeJSON struct {
	Site   int    `json:"site"`
	Label  string `json:"label"`
	Caller int    `json:"caller"`
	Callee int    `json:"callee"`
}

// CallGraphJSON writes the context-insensitive call graph as JSON.
func CallGraphJSON(w io.Writer, r *pta.Result) error {
	out := callGraphJSON{}
	seen := map[*lang.Method]bool{}
	add := func(m *lang.Method) {
		if !seen[m] {
			seen[m] = true
			out.Methods = append(out.Methods, methodJSON{ID: m.ID, Name: m.String(), Static: m.IsStatic})
		}
	}
	for _, e := range r.CallGraphEdges() {
		add(e.Site.In)
		add(e.Callee)
		out.Edges = append(out.Edges, edgeJSON{
			Site: e.Site.ID, Label: e.Site.Label(),
			Caller: e.Site.In.ID, Callee: e.Callee.ID,
		})
	}
	sort.Slice(out.Methods, func(i, j int) bool { return out.Methods[i].ID < out.Methods[j].ID })
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// FPGDOT writes a field points-to graph in DOT format. Nodes carry the
// object label and type; the null node is a point. When mom is non-nil,
// objects merged into the same equivalence class share a fill color
// class (rendered via the same "group" attribute).
func FPGDOT(w io.Writer, g *fpg.Graph, mom map[*lang.AllocSite]*lang.AllocSite) error {
	var b strings.Builder
	b.WriteString("digraph fpg {\n")
	b.WriteString("  node [shape=ellipse, fontsize=9];\n")
	b.WriteString("  n0 [label=\"null\", shape=point];\n")
	for id := 1; id < len(g.Objs); id++ {
		o := g.Objs[id]
		attrs := fmt.Sprintf("label=\"%s\\n%s\"", o.Rep.Label, o.Type.Name)
		if mom != nil {
			if rep, ok := mom[o.Rep]; ok && rep != o.Rep {
				attrs += fmt.Sprintf(", group=\"%s\"", rep.Label)
			}
		}
		fmt.Fprintf(&b, "  n%d [%s];\n", id, attrs)
	}
	for id := 1; id < len(g.Objs); id++ {
		for _, f := range g.FieldsOf(id) {
			for _, tgt := range g.Succ(id, f) {
				fmt.Fprintf(&b, "  n%d -> n%d [label=%q];\n", id, tgt, g.Fields[f].Name)
			}
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
