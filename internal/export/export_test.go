package export

import (
	"encoding/json"
	"strings"
	"testing"

	"mahjong/internal/core"
	"mahjong/internal/fpg"
	"mahjong/internal/lang"
	"mahjong/internal/pta"
	"mahjong/internal/synth"
)

func solveFig1(t *testing.T) (*synth.Figure1, *pta.Result) {
	t.Helper()
	f := synth.NewFigure1()
	r, err := pta.Solve(f.Prog, pta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return f, r
}

func TestCallGraphDOT(t *testing.T) {
	_, r := solveFig1(t)
	var sb strings.Builder
	if err := CallGraphDOT(&sb, r); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"digraph callgraph", "Main.main/0", "C.foo/0", "->"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "B.foo") {
		t.Error("unreachable B.foo exported")
	}
	// Deterministic output.
	var sb2 strings.Builder
	if err := CallGraphDOT(&sb2, r); err != nil {
		t.Fatal(err)
	}
	if sb.String() != sb2.String() {
		t.Error("DOT output nondeterministic")
	}
}

func TestCallGraphJSON(t *testing.T) {
	_, r := solveFig1(t)
	var sb strings.Builder
	if err := CallGraphJSON(&sb, r); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Methods []struct {
			ID   int    `json:"id"`
			Name string `json:"name"`
		} `json:"methods"`
		Edges []struct {
			Caller int `json:"caller"`
			Callee int `json:"callee"`
		} `json:"edges"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if len(decoded.Edges) != 1 {
		t.Fatalf("edges=%d want 1 (only a.foo())", len(decoded.Edges))
	}
	if len(decoded.Methods) != 2 {
		t.Fatalf("methods=%d want 2 (main and C.foo)", len(decoded.Methods))
	}
}

func TestFPGDOT(t *testing.T) {
	f, r := solveFig1(t)
	g := fpg.Build(r, fpg.Options{})
	res := core.Build(g, core.Options{})
	var sb strings.Builder
	if err := FPGDOT(&sb, g, res.MOM); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"digraph fpg", "null", "group="} {
		if !strings.Contains(out, want) {
			t.Errorf("FPG DOT missing %q", want)
		}
	}
	// All six objects present.
	for _, s := range f.Sites {
		if !strings.Contains(out, s.Label) {
			t.Errorf("missing site %s", s.Label)
		}
	}
	// Nil MOM also works.
	var sb2 strings.Builder
	if err := FPGDOT(&sb2, g, nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb2.String(), "group=") {
		t.Error("group attribute without MOM")
	}
}

func TestExportEmptyProgram(t *testing.T) {
	p := lang.NewProgram()
	mainCls := p.NewClass("Main", nil)
	m := mainCls.NewMethod("main", true, nil, nil)
	m.AddReturn(nil)
	p.SetEntry(m)
	r, err := pta.Solve(p, pta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := CallGraphDOT(&sb, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "digraph callgraph") {
		t.Error("missing header on empty graph")
	}
	sb.Reset()
	if err := CallGraphJSON(&sb, r); err != nil {
		t.Fatal(err)
	}
}
