// Package failure defines the typed error that pipeline stages produce
// when they recover a panic at a stage boundary.
//
// Every entry point of the Mahjong pipeline — the points-to solver
// (pta.SolveContext), the FPG builder (fpg.BuildContext), the heap
// modeler (core.BuildContext, including its parallel merge workers),
// client evaluation, and the mahjongd job workers — converts an escaping
// panic into an *InternalError carrying the stage name and the captured
// stack, instead of letting it unwind the process. One poisoned program
// then fails one job; the daemon, its worker pool, and its caches stay
// healthy, and per-stage failure counters surface in /metrics.
//
// The public facade aliases the type as mahjong.InternalError, so
// callers outside internal/ can match it with errors.As.
package failure

import (
	"fmt"
	"runtime/debug"
)

// InternalError is a panic recovered at a pipeline-stage boundary.
type InternalError struct {
	// Stage names the seam that recovered the panic ("pta.solve",
	// "core.build", "automata.equiv", "clients.evaluate", "server.job",
	// …); the faultinject package declares the canonical names.
	Stage string
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

func (e *InternalError) Error() string {
	return fmt.Sprintf("internal error in %s: %v", e.Stage, e.Value)
}

// Unwrap exposes a panic value that already was an error, so that
// errors.Is/As reach through (a hook that panics with a sentinel error
// stays matchable).
func (e *InternalError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// AsInternal converts a value recovered by recover() into an
// *InternalError. A value that already is one keeps its original stage
// and stack (an inner seam recovered first); anything else is wrapped
// with the given stage and the current stack.
func AsInternal(stage string, r any) *InternalError {
	if ie, ok := r.(*InternalError); ok {
		return ie
	}
	return &InternalError{Stage: stage, Value: r, Stack: debug.Stack()}
}

// Recover is the deferred stage guard:
//
//	func Stage(...) (res T, err error) {
//		defer failure.Recover("stage.name", &err)
//		...
//	}
//
// It converts an in-flight panic into an *InternalError assigned to
// *errp. When no panic is in flight it does nothing, preserving the
// function's normal return values.
func Recover(stage string, errp *error) {
	if r := recover(); r != nil {
		*errp = AsInternal(stage, r)
	}
}
