// Package faultinject provides deterministic fault-injection hook
// points at every seam of the Mahjong pipeline. It is build-tag-free
// and nil-by-default: in production no hook is installed and each seam
// costs a single atomic pointer load, so the hooks stay compiled into
// the binary the tests actually exercise.
//
// Tests install a Hook (and/or a Mutator for byte-level corruption)
// with Set/SetMutator, drive the system, and Clear. A hook observes the
// stage name of the seam that fired and decides the fault: return an
// error to inject a failure, panic to simulate a bug, sleep to simulate
// a slow stage, or return nil to let the stage proceed. Combinators
// (OnStage, Once, Times) scope a fault to one seam and a bounded number
// of firings, which is how a test injects a fault into the primary run
// while letting the degraded re-run succeed.
//
// The mahjongd fault-injection matrix (internal/server, `make
// faultmatrix`) drives the daemon through every stage fault under the
// race detector.
package faultinject

import (
	"sync/atomic"

	"mahjong/internal/failure"
)

// Canonical stage names, matching the failure.InternalError stages the
// seams report. Hooks and metrics share this vocabulary.
const (
	// StageSolve fires at the entry of every points-to solve
	// (pre-analysis and main analysis alike).
	StageSolve = "pta.solve"
	// StageCollapse fires at the start of each copy-cycle condensation
	// pass, i.e. while the solver's Tarjan state is about to be live.
	StageCollapse = "pta.collapse"
	// StageFPG fires at the entry of field points-to graph construction.
	StageFPG = "fpg.build"
	// StageModel fires at the entry of the heap modeler.
	StageModel = "core.build"
	// StageEquiv fires before each automata equivalence check, inside
	// the modeler's (possibly parallel) merge workers.
	StageEquiv = "automata.equiv"
	// StageClients fires before client-metric evaluation.
	StageClients = "clients.evaluate"
	// StageCacheLoad guards rebinding of cached abstraction bytes; the
	// Mutator (not the Hook) fires here to corrupt the bytes.
	StageCacheLoad = "server.cache.load"
	// StageJob fires when a mahjongd worker picks up a job, before any
	// pipeline stage runs.
	StageJob = "server.job"
	// StageDelta fires at the entry of incremental IR diffing (unit
	// hashing, shape comparison, base→next translation maps). A fault
	// here must fall back to a from-scratch solve, never fail the job.
	StageDelta = "delta.diff"
	// StageSeed fires before the incremental solver's taint closure and
	// warm seeding. A fault discards the partially seeded solver and
	// falls back to a cold solve.
	StageSeed = "pta.seed"
	// StageQuery fires when mahjongd answers a demand-driven
	// /jobs/{id}/query request, before any (bounded) demand solve runs.
	StageQuery = "server.query"
	// StageShardSolve fires inside each parallel propagation worker at
	// the start of a sharded solve phase — while per-shard rings and
	// cross-shard queues are live. A fault here simulates a worker dying
	// mid-phase; the engine must stop its siblings and surface the fault
	// through the coordinator instead of deadlocking termination
	// detection.
	StageShardSolve = "pta.shard.solve"
	// StageRenumber fires before the class-contiguous object renumbering
	// pass that lays out reserved per-class CSObj ID ranges.
	StageRenumber = "pta.renumber"
	// StageAdmit fires during admission control on POST /jobs, after
	// validation but before the job is enqueued. A fault here rejects
	// the submission (retriable 503) without creating queue state; it
	// must never wedge the intake path.
	StageAdmit = "server.admit"
	// StageQueue fires when a worker dequeues a job, before the job
	// pipeline (StageJob) runs — the seam for faults in the scheduler
	// hand-off itself. A fault fails that one job; the worker and the
	// queue survive.
	StageQueue = "server.queue"
)

// Hook decides what happens at a seam: return nil to proceed, an error
// to inject a failure, or panic/sleep for crash and latency faults.
type Hook func(stage string) error

// Mutator transforms bytes flowing through a seam (cache corruption).
type Mutator func(stage string, data []byte) []byte

var (
	activeHook    atomic.Pointer[Hook]
	activeMutator atomic.Pointer[Mutator]
)

// Set installs h as the process-wide hook (nil uninstalls).
func Set(h Hook) {
	if h == nil {
		activeHook.Store(nil)
		return
	}
	activeHook.Store(&h)
}

// Clear uninstalls the hook and the mutator.
func Clear() {
	activeHook.Store(nil)
	activeMutator.Store(nil)
}

// SetMutator installs m as the process-wide mutator (nil uninstalls).
func SetMutator(m Mutator) {
	if m == nil {
		activeMutator.Store(nil)
		return
	}
	activeMutator.Store(&m)
}

// Fire runs the installed hook at a seam; without one it returns nil at
// the cost of one atomic load. A hook that panics (PanicWith) unwinds
// out of Fire before the seam's own wrapping code runs, so Fire tags
// the panic value with the seam's stage itself: the *failure.
// InternalError it re-raises keeps the injection point visible even
// when an outer stage guard is the one that recovers it.
func Fire(stage string) error {
	p := activeHook.Load()
	if p == nil {
		return nil
	}
	defer func() {
		if r := recover(); r != nil {
			panic(failure.AsInternal(stage, r))
		}
	}()
	return (*p)(stage)
}

// Mutate passes data through the installed mutator; without one it
// returns data unchanged.
func Mutate(stage string, data []byte) []byte {
	p := activeMutator.Load()
	if p == nil {
		return data
	}
	return (*p)(stage, data)
}

// OnStage scopes h to a single stage; other seams proceed normally.
func OnStage(stage string, h Hook) Hook {
	return func(s string) error {
		if s != stage {
			return nil
		}
		return h(s)
	}
}

// Times fires h for the first n matching calls only, then lets the seam
// proceed — the shape of a transient fault, and what lets a degraded
// re-run through the same seam succeed.
func Times(n int64, h Hook) Hook {
	var count atomic.Int64
	return func(s string) error {
		if count.Add(1) > n {
			return nil
		}
		return h(s)
	}
}

// Once is Times(1, h).
func Once(h Hook) Hook { return Times(1, h) }

// PanicWith returns a hook that panics with v (a simulated bug).
func PanicWith(v any) Hook {
	return func(string) error { panic(v) }
}

// Fail returns a hook that injects err.
func Fail(err error) Hook {
	return func(string) error { return err }
}
