package faultinject

import (
	"errors"
	"testing"

	"mahjong/internal/failure"
)

func TestFireWithoutHookIsNil(t *testing.T) {
	Clear()
	if err := Fire(StageSolve); err != nil {
		t.Fatalf("no hook installed, got %v", err)
	}
	data := []byte("abc")
	if got := Mutate(StageCacheLoad, data); string(got) != "abc" {
		t.Fatalf("no mutator installed, got %q", got)
	}
}

func TestSetAndClear(t *testing.T) {
	t.Cleanup(Clear)
	boom := errors.New("boom")
	Set(Fail(boom))
	if err := Fire(StageFPG); !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	Clear()
	if err := Fire(StageFPG); err != nil {
		t.Fatalf("hook survived Clear: %v", err)
	}
}

func TestOnStageScopesToOneSeam(t *testing.T) {
	t.Cleanup(Clear)
	boom := errors.New("boom")
	Set(OnStage(StageModel, Fail(boom)))
	if err := Fire(StageSolve); err != nil {
		t.Fatalf("other seam affected: %v", err)
	}
	if err := Fire(StageModel); !errors.Is(err, boom) {
		t.Fatalf("target seam unaffected: %v", err)
	}
}

// Times counts EVERY Fire call, not just matching ones — so to fault a
// stage exactly once, the counter must sit inside the stage filter:
// OnStage(stage, Once(h)). The other nesting, Once(OnStage(stage, h)),
// spends its single shot on whichever seam fires first (in mahjongd
// that is always server.job) and never reaches the target. This test
// pins down both orders so the trap stays documented.
func TestCombinatorNestingOrder(t *testing.T) {
	t.Cleanup(Clear)
	boom := errors.New("boom")

	Set(OnStage(StageEquiv, Once(Fail(boom))))
	if err := Fire(StageJob); err != nil {
		t.Fatalf("unrelated seam consumed the fault: %v", err)
	}
	if err := Fire(StageEquiv); !errors.Is(err, boom) {
		t.Fatalf("first matching fire should fault, got %v", err)
	}
	if err := Fire(StageEquiv); err != nil {
		t.Fatalf("Once fired twice: %v", err)
	}

	Set(Once(OnStage(StageEquiv, Fail(boom))))
	if err := Fire(StageJob); err != nil {
		t.Fatalf("OnStage let a non-matching stage fault: %v", err)
	}
	// The single shot is already spent on StageJob above.
	if err := Fire(StageEquiv); err != nil {
		t.Fatalf("wrong nesting unexpectedly reached the target stage: %v", err)
	}
}

func TestTimes(t *testing.T) {
	t.Cleanup(Clear)
	boom := errors.New("boom")
	Set(OnStage(StageSolve, Times(2, Fail(boom))))
	for i := 0; i < 2; i++ {
		if err := Fire(StageSolve); !errors.Is(err, boom) {
			t.Fatalf("fire %d: want boom, got %v", i, err)
		}
	}
	if err := Fire(StageSolve); err != nil {
		t.Fatalf("Times(2) fired a third time: %v", err)
	}
}

// A hook that panics unwinds out of Fire before the seam's own wrapping
// code can run, so Fire tags the panic with the seam's stage itself.
func TestFireTagsHookPanics(t *testing.T) {
	t.Cleanup(Clear)
	Set(OnStage(StageCollapse, PanicWith("injected bug")))
	defer func() {
		r := recover()
		ie, ok := r.(*failure.InternalError)
		if !ok {
			t.Fatalf("want *failure.InternalError panic, got %T %v", r, r)
		}
		if ie.Stage != StageCollapse {
			t.Fatalf("panic tagged %q, want %q", ie.Stage, StageCollapse)
		}
	}()
	Fire(StageCollapse)
	t.Fatal("Fire did not panic")
}

// A hook panicking with an already-typed InternalError keeps its
// original stage (an inner seam tagged it first).
func TestFirePreservesTypedPanics(t *testing.T) {
	t.Cleanup(Clear)
	inner := &failure.InternalError{Stage: StageEquiv, Value: "bug"}
	Set(PanicWith(inner))
	defer func() {
		ie, ok := recover().(*failure.InternalError)
		if !ok || ie != inner {
			t.Fatalf("typed panic not preserved: %v", ie)
		}
	}()
	Fire(StageModel)
}

func TestMutator(t *testing.T) {
	t.Cleanup(Clear)
	SetMutator(func(stage string, data []byte) []byte {
		if stage != StageCacheLoad {
			return data
		}
		out := append([]byte(nil), data...)
		for i := range out {
			out[i] ^= 0xff
		}
		return out
	})
	if got := Mutate(StageCacheLoad, []byte{0x00}); got[0] != 0xff {
		t.Fatalf("mutator not applied: %v", got)
	}
	if got := Mutate(StageJob, []byte{0x00}); got[0] != 0x00 {
		t.Fatalf("mutator leaked to another stage: %v", got)
	}
	Clear()
	if got := Mutate(StageCacheLoad, []byte{0x00}); got[0] != 0x00 {
		t.Fatalf("mutator survived Clear: %v", got)
	}
}
