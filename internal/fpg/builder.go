package fpg

import (
	"fmt"
	"sort"

	"mahjong/internal/lang"
	"mahjong/internal/pta"
)

// Builder constructs a Graph directly from (type, field, edge)
// descriptions, without running a points-to analysis. It backs unit and
// property tests of the automata layer and the heap modeler, and the
// examples that demonstrate the automata view in isolation.
type Builder struct {
	prog    *lang.Program
	holder  *lang.Method
	g       *Graph
	fields  map[string]*lang.Field
	classes map[string]*lang.Class
	edges   map[int]map[int][]int // node → field → targets
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	prog := lang.NewProgram()
	holderCls := prog.NewClass("$synthetic.Holder", nil)
	holder := holderCls.NewMethod("alloc", true, nil, nil)
	g := &Graph{
		nodeOf:  make(map[*pta.Obj]int),
		typeOf:  make(map[*lang.Class]int),
		fieldOf: make(map[*lang.Field]int),
	}
	g.Objs = append(g.Objs, nil)
	g.TypeOf = append(g.TypeOf, NullType)
	g.Types = append(g.Types, nil)
	g.Out = append(g.Out, nil)
	return &Builder{
		prog:    prog,
		holder:  holder,
		g:       g,
		fields:  make(map[string]*lang.Field),
		classes: make(map[string]*lang.Class),
		edges:   make(map[int]map[int][]int),
	}
}

// class returns (creating on demand) the synthetic class named typeName.
func (b *Builder) class(typeName string) *lang.Class {
	if c, ok := b.classes[typeName]; ok {
		return c
	}
	c := b.prog.NewClass(typeName, nil)
	b.classes[typeName] = c
	return c
}

// AddObj adds an abstract object of the named type and returns its node ID.
func (b *Builder) AddObj(typeName string) int {
	c := b.class(typeName)
	site := &lang.AllocSite{
		ID:     len(b.prog.Sites),
		Type:   c,
		Method: b.holder,
		Label:  fmt.Sprintf("synthetic/%s#%d", typeName, len(b.prog.Sites)),
	}
	b.prog.Sites = append(b.prog.Sites, site)
	o := &pta.Obj{ID: len(b.g.Objs) - 1, Type: c, Rep: site, Sites: []*lang.AllocSite{site}}
	return b.g.addNode(o)
}

// AddEdge adds the FPG edge (from, field, to). Use NullNode for null.
func (b *Builder) AddEdge(from int, field string, to int) {
	f, ok := b.fields[field]
	if !ok {
		f = b.prog.Object().NewField("$"+field, b.prog.Object())
		b.fields[field] = f
	}
	fid := b.g.fieldID(f)
	m := b.edges[from]
	if m == nil {
		m = make(map[int][]int)
		b.edges[from] = m
	}
	m[fid] = append(m[fid], to)
}

// Graph finalizes and returns the graph. The builder must not be used
// afterwards.
func (b *Builder) Graph() *Graph {
	for node, byField := range b.edges {
		var es []Edge
		for fid, tgts := range byField {
			sort.Ints(tgts)
			es = append(es, Edge{Field: fid, Targets: dedupSorted(tgts)})
		}
		sort.Slice(es, func(i, j int) bool { return es[i].Field < es[j].Field })
		b.g.Out[node] = es
	}
	return b.g
}
