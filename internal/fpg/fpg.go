// Package fpg builds the field points-to graph (FPG) of §2.2.1 from a
// pre-analysis result.
//
// Nodes are the abstract heap objects discovered by the (allocation-site
// based, context-insensitive) pre-analysis, plus a dummy null node: per
// the paper, if o.f may be null then (o, f, o_null) is an edge, and the
// null node has a self-loop on every field. Edges (o_i, f, o_j) mean
// that o_i.f may point to o_j.
//
// The graph is the input of both the Mahjong heap modeler (package core)
// and the automata layer (package automata): the FPG rooted at an object
// o is read directly as the sequential automaton A_o of Figure 4.
package fpg

import (
	"context"
	"fmt"
	"sort"

	"mahjong/internal/budget"
	"mahjong/internal/failure"
	"mahjong/internal/faultinject"
	"mahjong/internal/lang"
	"mahjong/internal/pta"
	"mahjong/internal/trace"
)

// NullNode is the node ID of the dummy null object.
const NullNode = 0

// NullType is the type ID assigned to the null node ("a special type for
// o_null", §4.1).
const NullType = 0

// Edge is one labeled edge group: all successors of a node under one field.
type Edge struct {
	Field   int   // field ID (index into Graph.Fields)
	Targets []int // sorted node IDs
}

// Graph is the field points-to graph.
type Graph struct {
	// Objs maps node ID → abstract object; Objs[0] is nil (the null node).
	Objs []*pta.Obj
	// TypeOf maps node ID → type ID; TypeOf[0] == NullType.
	TypeOf []int
	// Types maps type ID → class; Types[0] is nil (the null type).
	Types []*lang.Class
	// Fields maps field ID → field.
	Fields []*lang.Field
	// Out maps node ID → edges sorted by field ID. The null node's
	// conceptual self-loops on every field are implicit (see Succ).
	Out [][]Edge

	nodeOf  map[*pta.Obj]int
	typeOf  map[*lang.Class]int
	fieldOf map[*lang.Field]int
}

// Options configures FPG construction.
type Options struct {
	// OmitNullNode drops null edges entirely (fields that may be null
	// simply lack an out-edge). This is the ablation knob for the
	// null-field handling of Table 1 (row "null") and §3.6.2.
	OmitNullNode bool

	// Meter, when non-nil, charges the shared per-job resource budget
	// for each field points-to fact the builder materializes; exhaustion
	// aborts BuildContext with an error wrapping budget.ErrExhausted.
	Meter *budget.Meter

	// Trace, when enabled, records an "fpg.build" span carrying object/
	// field/fact counters. The zero Ctx disables tracing at no cost.
	Trace trace.Ctx
}

// Build constructs the FPG from a points-to result. The result is
// expected to come from the pre-analysis (context-insensitive,
// allocation-site heap model), but any result works: points-to sets are
// projected context-insensitively.
//
// Build is the uncancellable, unmetered form; it panics on the (only
// injectable) failure paths, mirroring core.Build. Pipeline callers use
// BuildContext.
func Build(r *pta.Result, opts Options) *Graph {
	opts.Meter = nil
	g, err := BuildContext(context.Background(), r, opts) //lint:allow ctxflow Build is the documented context-free compat shim over BuildContext
	if err != nil {
		panic(err)
	}
	return g
}

// BuildContext constructs the FPG like Build, honoring cancellation and
// the resource budget in opts.Meter. A recovered panic in the builder is
// returned as a *failure.InternalError with stage "fpg.build".
func BuildContext(ctx context.Context, r *pta.Result, opts Options) (g *Graph, err error) {
	// Registered before the stage guard so the span closes tagged with
	// the recovered error (see pta.SolveContext for the idiom).
	sp := opts.Trace.Start(faultinject.StageFPG)
	defer func() { sp.Close(err) }()
	defer failure.Recover(faultinject.StageFPG, &err)
	if err := faultinject.Fire(faultinject.StageFPG); err != nil {
		return nil, fmt.Errorf("fpg: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("fpg: %w", err)
	}
	g = &Graph{
		nodeOf:  make(map[*pta.Obj]int),
		typeOf:  make(map[*lang.Class]int),
		fieldOf: make(map[*lang.Field]int),
	}
	// Node 0: null.
	g.Objs = append(g.Objs, nil)
	g.TypeOf = append(g.TypeOf, NullType)
	g.Types = append(g.Types, nil)
	g.Out = append(g.Out, nil)

	// Canonical node order: allocation-site creation order (AllocSite.ID),
	// not heap-model interning order. Interning follows solver processing
	// order, which a warm-seeded incremental solve (pta.SolveIncremental)
	// visits differently than a cold one; pinning node IDs to the program
	// makes the graph — and everything downstream of it, including MOM
	// representative election in package core — a pure function of the
	// analyzed program and its points-to facts.
	objs := append([]*pta.Obj(nil), r.Objs()...)
	sort.Slice(objs, func(i, j int) bool {
		oi, oj := objs[i], objs[j]
		if oi.Rep != nil && oj.Rep != nil && oi.Rep != oj.Rep {
			return oi.Rep.ID < oj.Rep.ID
		}
		return oi.ID < oj.ID
	})
	for _, o := range objs {
		g.addNode(o)
	}

	// Field points-to facts from the analysis. The callback cannot return
	// an error, so budget exhaustion is latched in buildErr and the
	// remaining facts are skipped cheaply.
	type key struct {
		node  int
		field int
	}
	edges := make(map[key][]int)
	var buildErr error
	var fieldFacts int64
	r.FieldPointsTo(func(base *pta.Obj, field *lang.Field, targets []*pta.Obj) {
		if buildErr != nil {
			return
		}
		bn, ok := g.nodeOf[base]
		if !ok {
			return
		}
		if merr := opts.Meter.AddFacts(int64(len(targets))); merr != nil {
			buildErr = merr
			return
		}
		fieldFacts += int64(len(targets))
		fid := g.fieldID(field)
		k := key{bn, fid}
		for _, t := range targets {
			if tn, ok := g.nodeOf[t]; ok {
				edges[k] = append(edges[k], tn)
			}
		}
	})
	if buildErr != nil {
		return nil, fmt.Errorf("fpg: %w", buildErr)
	}

	// Null-field completion: every instance field of every object that has
	// no recorded target may be null.
	if !opts.OmitNullNode {
		for id := 1; id < len(g.Objs); id++ {
			if id&1023 == 1023 {
				if err := ctx.Err(); err != nil {
					return nil, fmt.Errorf("fpg: %w", err)
				}
			}
			for _, f := range g.Objs[id].Type.InstanceFields() {
				k := key{id, g.fieldID(f)}
				if len(edges[k]) == 0 {
					edges[k] = []int{NullNode}
				}
			}
		}
	}

	// Materialize sorted adjacency.
	byNode := make(map[int][]Edge)
	for k, tgts := range edges {
		sort.Ints(tgts)
		tgts = dedupSorted(tgts)
		byNode[k.node] = append(byNode[k.node], Edge{Field: k.field, Targets: tgts})
	}
	for id := 1; id < len(g.Objs); id++ {
		es := byNode[id]
		sort.Slice(es, func(i, j int) bool { return es[i].Field < es[j].Field })
		g.Out[id] = es
	}
	sp.Add("objects", int64(g.NumObjects()))
	sp.Add("types", int64(g.NumTypes()))
	sp.Add("fields", int64(g.NumFields()))
	sp.Add("field_facts", fieldFacts)
	return g, nil
}

func dedupSorted(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

func (g *Graph) addNode(o *pta.Obj) int {
	if id, ok := g.nodeOf[o]; ok {
		return id
	}
	id := len(g.Objs)
	g.Objs = append(g.Objs, o)
	g.TypeOf = append(g.TypeOf, g.typeID(o.Type))
	g.Out = append(g.Out, nil)
	g.nodeOf[o] = id
	return id
}

func (g *Graph) typeID(c *lang.Class) int {
	if id, ok := g.typeOf[c]; ok {
		return id
	}
	id := len(g.Types)
	g.Types = append(g.Types, c)
	g.typeOf[c] = id
	return id
}

func (g *Graph) fieldID(f *lang.Field) int {
	if id, ok := g.fieldOf[f]; ok {
		return id
	}
	id := len(g.Fields)
	g.Fields = append(g.Fields, f)
	g.fieldOf[f] = id
	return id
}

// NumObjects returns the number of real (non-null) nodes.
func (g *Graph) NumObjects() int { return len(g.Objs) - 1 }

// NumTypes returns the number of distinct object types (excluding null).
func (g *Graph) NumTypes() int { return len(g.Types) - 1 }

// NumFields returns the number of distinct fields appearing in the graph.
func (g *Graph) NumFields() int { return len(g.Fields) }

// Node returns the node ID of an abstract object, or -1.
func (g *Graph) Node(o *pta.Obj) int {
	if id, ok := g.nodeOf[o]; ok {
		return id
	}
	return -1
}

// Succ returns the successors of node under field, handling the null
// node's implicit self-loop. A nil slice means the transition is absent
// (q_error in the equivalence checker).
func (g *Graph) Succ(node, field int) []int {
	if node == NullNode {
		return nullSelf
	}
	es := g.Out[node]
	i := sort.Search(len(es), func(i int) bool { return es[i].Field >= field })
	if i < len(es) && es[i].Field == field {
		return es[i].Targets
	}
	return nil
}

var nullSelf = []int{NullNode}

// FieldsOf returns the field IDs on which node has outgoing edges,
// ascending. The null node reports none: its self-loops are implicit.
func (g *Graph) FieldsOf(node int) []int {
	es := g.Out[node]
	out := make([]int, len(es))
	for i, e := range es {
		out[i] = e.Field
	}
	return out
}

// Reachable returns all node IDs reachable from root (inclusive),
// ascending. This is the state set Q of the NFA A_root (Algorithm 2).
func (g *Graph) Reachable(root int) []int {
	seen := make(map[int]bool)
	stack := []int{root}
	seen[root] = true
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.Out[n] {
			for _, t := range e.Targets {
				if !seen[t] {
					seen[t] = true
					stack = append(stack, t)
				}
			}
		}
	}
	out := make([]int, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// NFASize returns |Q| of the NFA rooted at node (the reachable set size),
// the per-object size statistic reported in §6.1.1.
func (g *Graph) NFASize(node int) int { return len(g.Reachable(node)) }

// String summarizes the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("FPG{objects: %d, types: %d, fields: %d}", g.NumObjects(), g.NumTypes(), g.NumFields())
}
