package fpg

import (
	"testing"

	"mahjong/internal/lang"
	"mahjong/internal/pta"
)

// buildLinked builds: main allocates Node n1 {next -> Leaf}, Node n2
// (next never assigned → null), and a Leaf; runs CI pre-analysis.
func buildLinked(t *testing.T) (*lang.Program, *pta.Result, []*lang.AllocSite) {
	t.Helper()
	p := lang.NewProgram()
	leaf := p.NewClass("Leaf", nil)
	node := p.NewClass("Node", nil)
	next := node.NewField("next", leaf)
	mainCls := p.NewClass("Main", nil)
	m := mainCls.NewMethod("main", true, nil, nil)
	n1 := m.NewVar("n1", node)
	n2 := m.NewVar("n2", node)
	l := m.NewVar("l", leaf)
	s1 := m.AddAlloc(n1, node)
	s2 := m.AddAlloc(n2, node)
	s3 := m.AddAlloc(l, leaf)
	m.AddStore(n1, next, l)
	m.AddReturn(nil)
	p.SetEntry(m)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	r, err := pta.Solve(p, pta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p, r, []*lang.AllocSite{s1, s2, s3}
}

func TestBuildBasic(t *testing.T) {
	_, r, sites := buildLinked(t)
	g := Build(r, Options{})
	if g.NumObjects() != 3 {
		t.Fatalf("objects=%d want 3", g.NumObjects())
	}
	if g.NumTypes() != 2 {
		t.Fatalf("types=%d want 2", g.NumTypes())
	}
	// n1.next -> leaf; n2.next -> null.
	var n1, n2, lf int
	for id := 1; id < len(g.Objs); id++ {
		switch g.Objs[id].Rep {
		case sites[0]:
			n1 = id
		case sites[1]:
			n2 = id
		case sites[2]:
			lf = id
		}
	}
	if n1 == 0 || n2 == 0 || lf == 0 {
		t.Fatal("nodes not found")
	}
	fid := g.Fields[0]
	_ = fid
	if got := g.Succ(n1, g.FieldsOf(n1)[0]); len(got) != 1 || got[0] != lf {
		t.Fatalf("n1.next=%v want [leaf]", got)
	}
	if got := g.Succ(n2, g.FieldsOf(n2)[0]); len(got) != 1 || got[0] != NullNode {
		t.Fatalf("n2.next=%v want [null]", got)
	}
	// Type IDs distinguish null.
	if g.TypeOf[NullNode] != NullType || g.TypeOf[n1] == NullType {
		t.Fatal("type ids wrong")
	}
}

func TestOmitNullNode(t *testing.T) {
	_, r, sites := buildLinked(t)
	g := Build(r, Options{OmitNullNode: true})
	var n2 int
	for id := 1; id < len(g.Objs); id++ {
		if g.Objs[id].Rep == sites[1] {
			n2 = id
		}
	}
	if len(g.FieldsOf(n2)) != 0 {
		t.Fatalf("n2 should have no edges, got %v", g.FieldsOf(n2))
	}
}

func TestNullSelfLoop(t *testing.T) {
	_, r, _ := buildLinked(t)
	g := Build(r, Options{})
	for f := 0; f < g.NumFields(); f++ {
		got := g.Succ(NullNode, f)
		if len(got) != 1 || got[0] != NullNode {
			t.Fatalf("null.%d=%v want self-loop", f, got)
		}
	}
}

func TestReachableAndNFASize(t *testing.T) {
	b := NewBuilder()
	a := b.AddObj("A")
	x := b.AddObj("X")
	y := b.AddObj("Y")
	z := b.AddObj("Z") // unreachable from a
	b.AddEdge(a, "f", x)
	b.AddEdge(x, "g", y)
	b.AddEdge(y, "h", x) // cycle x->y->x
	b.AddEdge(z, "f", z)
	g := b.Graph()
	reach := g.Reachable(a)
	if len(reach) != 3 {
		t.Fatalf("reachable=%v want 3 nodes", reach)
	}
	if g.NFASize(a) != 3 || g.NFASize(z) != 1 {
		t.Fatalf("NFA sizes: a=%d z=%d", g.NFASize(a), g.NFASize(z))
	}
}

func TestBuilderDedup(t *testing.T) {
	b := NewBuilder()
	a := b.AddObj("A")
	x := b.AddObj("X")
	b.AddEdge(a, "f", x)
	b.AddEdge(a, "f", x)
	g := b.Graph()
	if got := g.Succ(a, 0); len(got) != 1 {
		t.Fatalf("duplicate edges kept: %v", got)
	}
}

func TestGraphString(t *testing.T) {
	b := NewBuilder()
	b.AddObj("A")
	g := b.Graph()
	if got := g.String(); got != "FPG{objects: 1, types: 1, fields: 0}" {
		t.Fatalf("String=%q", got)
	}
}

func TestNodeLookup(t *testing.T) {
	_, r, _ := buildLinked(t)
	g := Build(r, Options{})
	for id := 1; id < len(g.Objs); id++ {
		if g.Node(g.Objs[id]) != id {
			t.Fatal("Node lookup mismatch")
		}
	}
	if g.Node(&pta.Obj{}) != -1 {
		t.Fatal("unknown object should map to -1")
	}
}
