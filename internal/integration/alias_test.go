package integration

import (
	"testing"

	"mahjong/internal/clients"
	"mahjong/internal/core"
	"mahjong/internal/fpg"
	"mahjong/internal/lang"
	"mahjong/internal/pta"
	"mahjong/internal/synth"
)

// TestMahjongNotForAliasClients demonstrates the paper's §1 caveat on
// Figure 1: after Mahjong merges o2 ≡ o3, the variables y and z (and
// their f-fields' contents) alias under M-A even though the baseline
// proves them disjoint — while every type-dependent metric is
// unchanged. Mahjong targets type-dependent clients, not may-alias.
func TestMahjongNotForAliasClients(t *testing.T) {
	f := synth.NewFigure1()

	base, err := pta.Solve(f.Prog, pta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := fpg.Build(base, fpg.Options{})
	res := core.Build(g, core.Options{})
	merged, err := pta.Solve(f.Prog, pta.Options{Heap: res.HeapModel()})
	if err != nil {
		t.Fatal(err)
	}

	var y, z *lang.Var
	for _, v := range f.Prog.Entry.Locals {
		switch v.Name {
		case "y":
			y = v
		case "z":
			z = v
		}
	}
	if y == nil || z == nil {
		t.Fatal("variables not found")
	}

	if clients.MayAlias(base, y, z) {
		t.Fatal("baseline must prove y and z disjoint")
	}
	if !clients.MayAlias(merged, y, z) {
		t.Fatal("after merging o2 ≡ o3, y and z must alias")
	}

	// The alias-pair count over main's locals grows...
	locals := f.Prog.Entry.Locals
	if clients.AliasPairs(merged, locals) <= clients.AliasPairs(base, locals) {
		t.Fatal("Mahjong should lose alias precision on Figure 1")
	}
	// ... while every type-dependent metric is untouched.
	if clients.Evaluate(base) != clients.Evaluate(merged) {
		t.Fatalf("type-dependent metrics changed: %+v vs %+v",
			clients.Evaluate(base), clients.Evaluate(merged))
	}
}

// TestAliasMonotone: abstraction coarsening can only add alias pairs.
func TestAliasMonotone(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		prog := synth.RandomProgram(seed)
		base, err := pta.Solve(prog, pta.Options{})
		if err != nil {
			t.Fatal(err)
		}
		g := fpg.Build(base, fpg.Options{})
		res := core.Build(g, core.Options{})
		merged, err := pta.Solve(prog, pta.Options{Heap: res.HeapModel()})
		if err != nil {
			t.Fatal(err)
		}
		ty, err := pta.Solve(prog, pta.Options{Heap: pta.NewAllocTypeModel()})
		if err != nil {
			t.Fatal(err)
		}
		locals := prog.Entry.Locals
		b, m, ta := clients.AliasPairs(base, locals), clients.AliasPairs(merged, locals), clients.AliasPairs(ty, locals)
		if !(b <= m && m <= ta) {
			t.Fatalf("seed %d: alias pairs not monotone: site=%d mahjong=%d type=%d", seed, b, m, ta)
		}
	}
}
