package integration

import (
	"testing"

	"mahjong/internal/core"
	"mahjong/internal/fpg"
	"mahjong/internal/lang"
	"mahjong/internal/pta"
)

// buildExample32 constructs the Figure 7 / Example 3.2 scenario:
//
//	class T { allocT(): o1 = new Box (f -> X), o2 = new Box (f -> Y) }
//	class U { allocU(): o3 = new Box (f -> X) }
//
// o1 ≡ o3 (both boxes hold an X), o2 holds a Y and stays separate.
// Under plain 2type, o1 and o2 share the context element T, so
// Box.get() conflates them. Under M-2type, o1 merges with o3; if the
// representative is o3 (allocated in U), the merged box uses context U
// while o2 keeps T — M-2type becomes MORE precise than 2type. If the
// representative is o1, M-2type equals 2type here.
func buildExample32(t *testing.T) (*lang.Program, *lang.Var, *lang.Var) {
	t.Helper()
	p := lang.NewProgram()
	obj := p.Object()
	x := p.NewClass("X", nil)
	y := p.NewClass("Y", nil)
	box := p.NewClass("Box", nil)
	f := box.NewField("f", obj)
	get := box.NewMethod("get", false, nil, obj)
	gv := get.NewVar("gv", obj)
	get.AddLoad(gv, get.This, f)
	get.AddReturn(gv)

	tCls := p.NewClass("T", nil)
	allocT := tCls.NewMethod("allocT", true, []*lang.Class{obj}, box)
	{
		o1 := allocT.NewVar("o1", box)
		o2 := allocT.NewVar("o2", box)
		vx := allocT.NewVar("vx", obj)
		vy := allocT.NewVar("vy", obj)
		allocT.AddAlloc(o1, box)
		allocT.AddAlloc(vx, x)
		allocT.AddStore(o1, f, vx)
		allocT.AddAlloc(o2, box)
		allocT.AddAlloc(vy, y)
		allocT.AddStore(o2, f, vy)
		// Return o1 or o2 depending on the (ignored) parameter:
		// flow-insensitively, both escape; keep only o1 returned and pass
		// o2 out via a second method to keep points-to sets separable.
		allocT.AddReturn(o1)
		allocT.AddReturn(o2)
	}
	uCls := p.NewClass("U", nil)
	allocU := uCls.NewMethod("allocU", true, nil, box)
	{
		o3 := allocU.NewVar("o3", box)
		vx := allocU.NewVar("vx", obj)
		allocU.AddAlloc(o3, box)
		allocU.AddAlloc(vx, x)
		allocU.AddStore(o3, f, vx)
		allocU.AddReturn(o3)
	}

	mainCls := p.NewClass("Main", nil)
	m := mainCls.NewMethod("main", true, nil, nil)
	dummy := m.NewVar("dummy", obj)
	b12 := m.NewVar("b12", box)
	b3 := m.NewVar("b3", box)
	r1 := m.NewVar("r1", obj)
	r3 := m.NewVar("r3", obj)
	m.AddAlloc(dummy, x)
	m.AddStaticCall(b12, allocT, dummy)
	m.AddStaticCall(b3, allocU)
	m.AddVirtualCall(r1, b12, "get")
	m.AddVirtualCall(r3, b3, "get")
	m.AddReturn(nil)
	p.SetEntry(m)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p, r1, r3
}

// typeNames projects VarTypes to a name set.
func typeNames(r *pta.Result, v *lang.Var) map[string]bool {
	out := map[string]bool{}
	for _, c := range r.VarTypes(v) {
		out[c.Name] = true
	}
	return out
}

func TestExample32RepresentativeMatters(t *testing.T) {
	prog, _, r3 := buildExample32(t)

	pre, err := pta.Solve(prog, pta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := fpg.Build(pre, fpg.Options{})

	// Baseline 2type: o3's get() runs under context [U], but b3's
	// points-to includes only o3, so r3 = {X} already; the conflation
	// hits b12 (o1 and o2 share [T]): r1 sees X and Y under any type-
	// sensitive analysis — that part cannot be fixed by Mahjong (o2 is
	// genuinely separate). The observable difference of Example 3.2 is
	// in the CONTEXT PARTITION: with a U-representative, the merged
	// {o1,o3} box gets its own context, splitting Box.get's analysis.
	base, err := pta.Solve(prog, pta.Options{Selector: pta.KType{K: 2}})
	if err != nil {
		t.Fatal(err)
	}
	baseCtxs := getContexts(base)

	for _, tc := range []struct {
		name   string
		policy core.RepPolicy
	}{
		{"first", core.RepFirst},
		{"diverse", core.RepTypeDiverse},
	} {
		res := core.Build(g, core.Options{Policy: tc.policy})
		merged, err := pta.Solve(prog, pta.Options{Selector: pta.KType{K: 2}, Heap: res.HeapModel()})
		if err != nil {
			t.Fatal(err)
		}
		// Soundness in all cases: r3 must still include X.
		if !typeNames(merged, r3)["X"] {
			t.Fatalf("%s: r3 lost X", tc.name)
		}
		mergedCtxs := getContexts(merged)
		switch tc.policy {
		case core.RepFirst:
			// Representative o1 (class T): the merged box and o2 share
			// context T — M-2type analyzes get under fewer or equal
			// contexts than 2type.
			if mergedCtxs > baseCtxs {
				t.Fatalf("first: contexts grew: %d > %d", mergedCtxs, baseCtxs)
			}
		case core.RepTypeDiverse:
			// Representative o3 (class U): merged box uses U, o2 uses T —
			// the partition has two classes, like the baseline's best case.
			if mergedCtxs < 2 {
				t.Fatalf("diverse: get() analyzed under %d contexts, want >=2", mergedCtxs)
			}
		}
	}
}

// getContexts counts distinct contexts under which Box.get is analyzed,
// via the context-sensitive method count minus the context-insensitive
// one (get is the only instance method, so the difference isolates it).
func getContexts(r *pta.Result) int {
	return r.NumCSMethods() - r.NumReachableMethods() + 1
}
