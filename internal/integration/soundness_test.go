// Package integration holds cross-package property tests of the whole
// pipeline: the soundness and abstraction-ordering invariants from
// DESIGN.md §6, checked on randomly generated programs.
package integration

import (
	"testing"
	"testing/quick"

	"mahjong/internal/clients"
	"mahjong/internal/core"
	"mahjong/internal/fpg"
	"mahjong/internal/lang"
	"mahjong/internal/pta"
	"mahjong/internal/synth"
)

// pipeline runs pre-analysis + FPG + Mahjong for a program.
func pipeline(t testing.TB, prog *lang.Program) (*pta.Result, *core.Result) {
	t.Helper()
	pre, err := pta.Solve(prog, pta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := fpg.Build(pre, fpg.Options{})
	return pre, core.Build(g, core.Options{})
}

// typeSet returns the set of type names a variable may point to.
func typeSet(r *pta.Result, v *lang.Var) map[string]bool {
	out := map[string]bool{}
	for _, c := range r.VarTypes(v) {
		out[c.Name] = true
	}
	return out
}

func supersetOf(sup, sub map[string]bool) bool {
	for k := range sub {
		if !sup[k] {
			return false
		}
	}
	return true
}

// TestQuickMahjongTypeSoundness: for every variable of a random
// program and every analysis, the set of pointed-to TYPES under the
// Mahjong abstraction is a superset of the baseline's (merging can only
// coarsen, §3.6.2 soundness).
func TestQuickMahjongTypeSoundness(t *testing.T) {
	selectors := []pta.Selector{pta.CI{}, pta.KCFA{K: 2}, pta.KObj{K: 2}, pta.KType{K: 2}}
	f := func(seed int64) bool {
		prog := synth.RandomProgram(seed)
		_, mh := pipeline(t, prog)
		for _, sel := range selectors {
			base, err := pta.Solve(prog, pta.Options{Selector: sel})
			if err != nil {
				t.Fatal(err)
			}
			merged, err := pta.Solve(prog, pta.Options{Selector: sel, Heap: mh.HeapModel()})
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range prog.Methods {
				for _, v := range m.Locals {
					if !supersetOf(typeSet(merged, v), typeSet(base, v)) {
						t.Logf("seed=%d sel=%s var=%s: base types %v not ⊆ mahjong types %v",
							seed, sel.Name(), v, typeSet(base, v), typeSet(merged, v))
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickClientMetricOrdering: client metrics are monotone in
// abstraction coarseness: baseline ≤ mahjong ≤ alloc-type for all three
// clients (they can only get worse as objects merge), and the reachable
// method sets grow the same way.
func TestQuickClientMetricOrdering(t *testing.T) {
	f := func(seed int64) bool {
		prog := synth.RandomProgram(seed)
		_, mh := pipeline(t, prog)
		base, err := pta.Solve(prog, pta.Options{})
		if err != nil {
			t.Fatal(err)
		}
		merged, err := pta.Solve(prog, pta.Options{Heap: mh.HeapModel()})
		if err != nil {
			t.Fatal(err)
		}
		ty, err := pta.Solve(prog, pta.Options{Heap: pta.NewAllocTypeModel()})
		if err != nil {
			t.Fatal(err)
		}
		b, m, ta := clients.Evaluate(base), clients.Evaluate(merged), clients.Evaluate(ty)
		ok := b.CallGraphEdges <= m.CallGraphEdges && m.CallGraphEdges <= ta.CallGraphEdges &&
			b.PolyCallSites <= m.PolyCallSites && m.PolyCallSites <= ta.PolyCallSites &&
			b.MayFailCasts <= m.MayFailCasts && m.MayFailCasts <= ta.MayFailCasts &&
			b.Reachable <= m.Reachable && m.Reachable <= ta.Reachable
		if !ok {
			t.Logf("seed=%d base=%+v mahjong=%+v type=%+v", seed, b, m, ta)
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickObjectCountOrdering: #objects(alloc-type) ≤ #objects(mahjong)
// ≤ #objects(alloc-site): Mahjong sits strictly between the two
// classical abstractions in coarseness.
func TestQuickObjectCountOrdering(t *testing.T) {
	f := func(seed int64) bool {
		prog := synth.RandomProgram(seed)
		_, mh := pipeline(t, prog)
		ty, err := pta.Solve(prog, pta.Options{Heap: pta.NewAllocTypeModel()})
		if err != nil {
			t.Fatal(err)
		}
		nType := len(ty.Objs())
		return nType <= mh.NumMerged && mh.NumMerged <= mh.NumObjects
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMOMWellFormed: the merged-object map is total over reachable
// sites, idempotent, and type-preserving on random programs.
func TestQuickMOMWellFormed(t *testing.T) {
	f := func(seed int64) bool {
		prog := synth.RandomProgram(seed)
		pre, mh := pipeline(t, prog)
		for _, o := range pre.Objs() {
			rep, ok := mh.MOM[o.Rep]
			if !ok {
				return false
			}
			if rep.Type != o.Rep.Type {
				return false
			}
			if mh.MOM[rep] != rep {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDeterministicPipeline: two runs over the same seed produce
// identical abstractions and metrics.
func TestQuickDeterministicPipeline(t *testing.T) {
	f := func(seed int64) bool {
		p1 := synth.RandomProgram(seed)
		p2 := synth.RandomProgram(seed)
		if p1.Stats() != p2.Stats() {
			return false
		}
		_, m1 := pipeline(t, p1)
		_, m2 := pipeline(t, p2)
		if m1.NumMerged != m2.NumMerged || m1.NumObjects != m2.NumObjects {
			return false
		}
		r1, err := pta.Solve(p1, pta.Options{Selector: pta.KObj{K: 2}, Heap: m1.HeapModel()})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := pta.Solve(p2, pta.Options{Selector: pta.KObj{K: 2}, Heap: m2.HeapModel()})
		if err != nil {
			t.Fatal(err)
		}
		return clients.Evaluate(r1) == clients.Evaluate(r2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBudgetMonotone: with a larger budget, a run discovers at
// least as many call-graph edges (partial results grow monotonically).
func TestQuickBudgetMonotone(t *testing.T) {
	f := func(seed int64) bool {
		prog := synth.RandomProgram(seed)
		small, err := pta.Solve(prog, pta.Options{Budget: pta.Budget{Work: 50}})
		if err != nil {
			t.Fatal(err)
		}
		big, err := pta.Solve(prog, pta.Options{Budget: pta.Budget{Work: 1 << 30}})
		if err != nil {
			t.Fatal(err)
		}
		if big.Aborted {
			return false
		}
		return small.NumCallGraphEdges() <= big.NumCallGraphEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
