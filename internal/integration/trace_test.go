package integration

// Span-accounting and golden-file tests for the pipeline tracer: the
// full pipeline runs over the examples/ programs and the span tree must
// be well-formed (every span closed, children inside their parents) with
// counter deltas that sum to exactly the totals the pipeline reports via
// pta.Stats / Report.Solver / clients.Metrics. Failure paths (injected
// panics, budget exhaustion, cancellation) must still yield a closed
// span tree tagged with the failure.

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mahjong"
	"mahjong/internal/faultinject"
	"mahjong/internal/trace"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the trace golden files from the current run")

// examplePrograms loads every textual-IR program shipped under
// examples/ plus the benchmarks the runnable examples analyze.
func examplePrograms(t *testing.T) map[string]*mahjong.Program {
	t.Helper()
	progs := make(map[string]*mahjong.Program)
	irs, err := filepath.Glob("../../examples/*/*.ir")
	if err != nil {
		t.Fatal(err)
	}
	if len(irs) == 0 {
		t.Fatal("no .ir files under examples/: the tracing tests need them")
	}
	for _, path := range irs {
		prog, err := mahjong.LoadProgram(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		progs[strings.TrimSuffix(filepath.Base(path), ".ir")] = prog
	}
	for _, bench := range []string{"pmd", "checkstyle"} {
		prog, err := mahjong.GenerateBenchmark(bench)
		if err != nil {
			t.Fatalf("benchmark %s: %v", bench, err)
		}
		progs[bench] = prog
	}
	return progs
}

// tracedRun executes the full pipeline (abstraction build + main
// analysis + clients) single-threaded under one tracer and returns the
// snapshot alongside the pipeline's own accounting.
func tracedRun(t *testing.T, prog *mahjong.Program, analysis string) (*trace.Trace, *mahjong.Abstraction, *mahjong.Report) {
	t.Helper()
	tracer := trace.New()
	abs, err := mahjong.BuildAbstractionContext(context.Background(), prog, mahjong.AbstractionOptions{
		Workers: 1,
		Trace:   tracer.Root(),
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := mahjong.AnalyzeContext(context.Background(), prog, mahjong.Config{
		Analysis:    analysis,
		Heap:        mahjong.HeapMahjong,
		Abstraction: abs,
		Trace:       tracer.Root(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return tracer.Snapshot(), abs, rep
}

// spansOf returns the indices of snap's spans with the given stage, in
// export (pre-)order.
func spansOf(snap *trace.Trace, stage string) []int {
	var out []int
	for i := range snap.Spans {
		if snap.Spans[i].Stage == stage {
			out = append(out, i)
		}
	}
	return out
}

// childrenOf returns the indices of parent's direct children.
func childrenOf(snap *trace.Trace, parent int) []int {
	var out []int
	for i := range snap.Spans {
		if snap.Spans[i].Parent == parent {
			out = append(out, i)
		}
	}
	return out
}

func wantCounter(t *testing.T, snap *trace.Trace, span int, name string, want int64) {
	t.Helper()
	got, ok := snap.Spans[span].Counter(name)
	if !ok {
		t.Errorf("span %s#%d has no %q counter", snap.Spans[span].Stage, span, name)
		return
	}
	if got != want {
		t.Errorf("span %s#%d counter %s = %d, want %d", snap.Spans[span].Stage, span, name, got, want)
	}
}

func TestSpanAccounting(t *testing.T) {
	for name, prog := range examplePrograms(t) {
		t.Run(name, func(t *testing.T) {
			snap, abs, rep := tracedRun(t, prog, "2obj")
			if err := snap.WellFormed(); err != nil {
				t.Fatalf("span tree malformed: %v", err)
			}
			for _, s := range snap.Spans {
				if s.Fail != "" {
					t.Fatalf("span %s failed on a healthy run: %s (%s)", s.Stage, s.Fail, s.Error)
				}
			}

			// The stages appear in pipeline order: pre-analysis solve,
			// FPG, heap modeling, main solve, clients.
			solves := spansOf(snap, faultinject.StageSolve)
			if len(solves) != 2 {
				t.Fatalf("want 2 pta.solve spans (pre + main), got %d", len(solves))
			}
			if len(spansOf(snap, faultinject.StageFPG)) != 1 ||
				len(spansOf(snap, faultinject.StageModel)) != 1 ||
				len(spansOf(snap, faultinject.StageClients)) != 1 {
				t.Fatalf("missing pipeline stage spans: %+v", snap.Spans)
			}

			// Main-analysis solve counters equal Report.Solver exactly.
			main := solves[1]
			st := rep.Solver
			wantCounter(t, snap, main, "nodes", int64(st.Nodes))
			wantCounter(t, snap, main, "edges", int64(st.Edges))
			wantCounter(t, snap, main, "copy_edges", int64(st.CopyEdges))
			wantCounter(t, snap, main, "collapsed_sccs", int64(st.CollapsedSCCs))
			wantCounter(t, snap, main, "collapsed_nodes", int64(st.CollapsedNodes))
			wantCounter(t, snap, main, "scc_passes", int64(st.SCCPasses))
			wantCounter(t, snap, main, "propagated_bits", st.PropagatedBits)
			wantCounter(t, snap, main, "filter_masks", int64(st.FilterMasks))
			wantCounter(t, snap, main, "filter_mask_hits", st.FilterMaskHits)
			wantCounter(t, snap, main, "worklist_peak", int64(st.WorklistPeak))
			wantCounter(t, snap, main, "work", rep.Work)

			// Per-pass collapse children sum to the parent's totals.
			for _, solve := range solves {
				var sccs, nodes int64
				passes := 0
				for _, c := range childrenOf(snap, solve) {
					if snap.Spans[c].Stage != faultinject.StageCollapse {
						continue
					}
					passes++
					v, _ := snap.Spans[c].Counter("collapsed_sccs")
					sccs += v
					v, _ = snap.Spans[c].Counter("collapsed_nodes")
					nodes += v
				}
				wantSCCs, _ := snap.Spans[solve].Counter("collapsed_sccs")
				wantNodes, _ := snap.Spans[solve].Counter("collapsed_nodes")
				wantPasses, _ := snap.Spans[solve].Counter("scc_passes")
				if sccs != wantSCCs || nodes != wantNodes || int64(passes) != wantPasses {
					t.Errorf("collapse children of solve#%d sum to sccs=%d nodes=%d passes=%d, parent says %d/%d/%d",
						solve, sccs, nodes, passes, wantSCCs, wantNodes, wantPasses)
				}
			}

			// Heap-modeling counters match the built abstraction, and the
			// per-worker equivalence spans sum to the parent's merge_pairs.
			model := spansOf(snap, faultinject.StageModel)[0]
			wantCounter(t, snap, model, "objects", int64(abs.Objects))
			wantCounter(t, snap, model, "merged_objects", int64(abs.MergedObjects))
			var pairs int64
			workers := 0
			for _, c := range childrenOf(snap, model) {
				if snap.Spans[c].Stage != faultinject.StageEquiv {
					continue
				}
				workers++
				v, _ := snap.Spans[c].Counter("merge_pairs")
				pairs += v
			}
			if workers == 0 {
				t.Fatal("no automata.equiv worker spans under core.build")
			}
			wantCounter(t, snap, model, "merge_pairs", pairs)

			// Client metrics mirror Report.Metrics.
			cl := spansOf(snap, faultinject.StageClients)[0]
			wantCounter(t, snap, cl, "call_graph_edges", int64(rep.Metrics.CallGraphEdges))
			wantCounter(t, snap, cl, "poly_call_sites", int64(rep.Metrics.PolyCallSites))
			wantCounter(t, snap, cl, "may_fail_casts", int64(rep.Metrics.MayFailCasts))
			wantCounter(t, snap, cl, "reachable_methods", int64(rep.Metrics.Reachable))
		})
	}
}

// scrubbedJSON renders a snapshot with timings zeroed — the normalizer
// the golden files are recorded under.
func scrubbedJSON(t *testing.T, snap *trace.Trace) []byte {
	t.Helper()
	snap.Scrub()
	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceExportGolden pins the scrubbed JSON export: two runs of the
// same program must be byte-identical, and the quickstart program's
// trace must match the checked-in golden file (refresh with
// `go test ./internal/integration -run TraceExportGolden -update-golden`).
func TestTraceExportGolden(t *testing.T) {
	progs := examplePrograms(t)
	for _, name := range []string{"quickstart", "exceptions"} {
		prog, ok := progs[name]
		if !ok {
			t.Fatalf("example program %s missing", name)
		}
		t.Run(name, func(t *testing.T) {
			snapA, _, _ := tracedRun(t, prog, "2obj")
			snapB, _, _ := tracedRun(t, prog, "2obj")
			a, b := scrubbedJSON(t, snapA), scrubbedJSON(t, snapB)
			if !bytes.Equal(a, b) {
				t.Fatalf("two runs exported different scrubbed traces:\n%s\n---\n%s", a, b)
			}
			golden := filepath.Join("testdata", name+"_trace.golden")
			if *updateGolden {
				if err := os.WriteFile(golden, a, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("reading golden (run with -update-golden to record): %v", err)
			}
			if !bytes.Equal(a, want) {
				t.Fatalf("trace drifted from %s (re-record with -update-golden if intended):\ngot:\n%s", golden, a)
			}
		})
	}
}

// failedStage finds the first span of the given stage carrying a
// failure tag.
func failedStage(snap *trace.Trace, stage string) *trace.SpanInfo {
	for i := range snap.Spans {
		if snap.Spans[i].Stage == stage && snap.Spans[i].Fail != "" {
			return &snap.Spans[i]
		}
	}
	return nil
}

// TestTracePanicPaths injects a panic into each pipeline stage and
// checks the property the tracer promises: the snapshot is still a
// well-formed (fully closed) tree and the struck stage's span carries
// the panic tag.
func TestTracePanicPaths(t *testing.T) {
	prog, err := mahjong.LoadProgram("../../examples/quickstart/quickstart.ir")
	if err != nil {
		t.Fatal(err)
	}
	// Cycle collapsing needs a program with copy cycles; the synthetic
	// pmd benchmark reliably triggers collapse passes.
	collapseProg, err := mahjong.GenerateBenchmark("pmd")
	if err != nil {
		t.Fatal(err)
	}
	stages := []string{
		faultinject.StageSolve,
		faultinject.StageCollapse,
		faultinject.StageFPG,
		faultinject.StageModel,
		faultinject.StageEquiv,
		faultinject.StageClients,
	}
	for _, stage := range stages {
		t.Run(stage, func(t *testing.T) {
			prog := prog
			if stage == faultinject.StageCollapse {
				prog = collapseProg
			}
			t.Cleanup(faultinject.Clear)
			faultinject.Set(faultinject.OnStage(stage, faultinject.Once(faultinject.PanicWith("injected: "+stage))))
			tracer := trace.New()
			abs, err := mahjong.BuildAbstractionContext(context.Background(), prog, mahjong.AbstractionOptions{
				Workers: 1,
				Trace:   tracer.Root(),
			})
			if err == nil && stage != faultinject.StageClients {
				// Collapse may not trigger on a tiny program; solve-side
				// stages must fail the build.
				if stage != faultinject.StageCollapse {
					t.Fatalf("abstraction build survived a %s panic", stage)
				}
				t.Skip("no collapse pass ran on this program")
			}
			if err == nil {
				// clients.evaluate runs in the main analysis, not the build.
				_, err = mahjong.AnalyzeContext(context.Background(), prog, mahjong.Config{
					Analysis: "ci", Heap: mahjong.HeapMahjong, Abstraction: abs, Trace: tracer.Root(),
				})
				if err == nil {
					t.Fatalf("analysis survived a %s panic", stage)
				}
			}
			var ie *mahjong.InternalError
			if !errors.As(err, &ie) {
				t.Fatalf("injected panic surfaced as %T %v, want *InternalError", err, err)
			}
			snap := tracer.Snapshot()
			if werr := snap.WellFormed(); werr != nil {
				t.Fatalf("span tree after %s panic is malformed: %v\n%+v", stage, werr, snap.Spans)
			}
			switch stage {
			case faultinject.StageCollapse:
				// The panic strikes mid-pass and unwinds THROUGH the
				// collapse span to the solve-stage guard: the collapse
				// span closes as aborted, the solve span carries the
				// typed panic.
				sp := failedStage(snap, stage)
				if sp == nil || sp.Fail != trace.FailAborted {
					t.Fatalf("collapse span not tagged aborted: %+v", snap.Spans)
				}
				if solve := failedStage(snap, faultinject.StageSolve); solve == nil || solve.Fail != trace.FailPanic {
					t.Fatalf("solve span not tagged panic after a collapse strike: %+v", snap.Spans)
				}
			default:
				sp := failedStage(snap, stage)
				if sp == nil {
					t.Fatalf("no failed %s span in the snapshot: %+v", stage, snap.Spans)
				}
				if sp.Fail != trace.FailPanic {
					t.Fatalf("%s span fail class = %q, want %q", stage, sp.Fail, trace.FailPanic)
				}
			}
		})
	}
}

// TestTraceBudgetAndCancelPaths exercises the two non-panic failure
// modes: resource-budget exhaustion and context cancellation both close
// the whole tree with the right tags.
func TestTraceBudgetAndCancelPaths(t *testing.T) {
	prog, err := mahjong.GenerateBenchmark("pmd")
	if err != nil {
		t.Fatal(err)
	}

	t.Run("budget", func(t *testing.T) {
		tracer := trace.New()
		_, err := mahjong.BuildAbstractionContext(context.Background(), prog, mahjong.AbstractionOptions{
			Workers:   1,
			Resources: mahjong.ResourceBudget{Facts: 10},
			Trace:     tracer.Root(),
		})
		if err == nil || !errors.Is(err, mahjong.ErrBudgetExhausted) {
			t.Fatalf("10-fact budget did not exhaust: %v", err)
		}
		snap := tracer.Snapshot()
		if werr := snap.WellFormed(); werr != nil {
			t.Fatalf("span tree after budget exhaustion malformed: %v", werr)
		}
		sp := failedStage(snap, faultinject.StageSolve)
		if sp == nil || sp.Fail != trace.FailBudget {
			t.Fatalf("pre-analysis span not tagged budget: %+v", snap.Spans)
		}
	})

	t.Run("cancel", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		tracer := trace.New()
		_, err := mahjong.AnalyzeContext(ctx, prog, mahjong.Config{
			Analysis: "ci", Heap: mahjong.HeapAllocSite, Trace: tracer.Root(),
		})
		if err == nil || !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled context did not cancel: %v", err)
		}
		snap := tracer.Snapshot()
		if werr := snap.WellFormed(); werr != nil {
			t.Fatalf("span tree after cancellation malformed: %v", werr)
		}
		sp := failedStage(snap, faultinject.StageSolve)
		if sp == nil || sp.Fail != trace.FailCancelled {
			t.Fatalf("solve span not tagged cancelled: %+v", snap.Spans)
		}
	})
}
