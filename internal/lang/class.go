package lang

import "fmt"

// Class is a class, interface or array type. Array types have Elem set
// and a single instance pseudo-field named "[]".
type Class struct {
	ID          int
	Name        string
	Super       *Class   // nil only for java.lang.Object
	Interfaces  []*Class // directly implemented/extended interfaces
	IsInterface bool
	Elem        *Class // element type when this is an array class

	DeclaredFields  []*Field
	DeclaredMethods []*Method

	prog        *Program
	fieldByName map[string]*Field
	methodBySig map[Sig]*Method
	allFields   []*Field // cache: declared + inherited instance fields
}

// Sig identifies a method within a class by name and arity. The IR does
// not model parameter-type overloading; name+arity is the dispatch key.
type Sig struct {
	Name  string
	Arity int
}

func (s Sig) String() string { return fmt.Sprintf("%s/%d", s.Name, s.Arity) }

func (c *Class) String() string { return c.Name }

// IsArray reports whether c is an array type.
func (c *Class) IsArray() bool { return c.Elem != nil }

// NewField declares an instance field on c.
func (c *Class) NewField(name string, typ *Class) *Field {
	return c.newField(name, typ, false)
}

// NewStaticField declares a static field on c.
func (c *Class) NewStaticField(name string, typ *Class) *Field {
	return c.newField(name, typ, true)
}

func (c *Class) newField(name string, typ *Class, static bool) *Field {
	if _, dup := c.fieldByName[name]; dup {
		panic(fmt.Sprintf("lang: duplicate field %s.%s", c.Name, name))
	}
	if typ == nil {
		panic(fmt.Sprintf("lang: field %s.%s has nil type", c.Name, name))
	}
	f := &Field{
		ID:       len(c.prog.Fields),
		Name:     name,
		Owner:    c,
		Type:     typ,
		IsStatic: static,
	}
	c.fieldByName[name] = f
	c.DeclaredFields = append(c.DeclaredFields, f)
	c.prog.Fields = append(c.prog.Fields, f)
	c.allFields = nil // invalidate cache up-front; subclasses cache lazily
	return f
}

// Field resolves an instance or static field by name, searching c and
// then its superclasses. Returns nil when absent.
func (c *Class) Field(name string) *Field {
	for k := c; k != nil; k = k.Super {
		if f, ok := k.fieldByName[name]; ok {
			return f
		}
	}
	return nil
}

// InstanceFields returns the instance fields of c including inherited
// ones, superclass fields first. The result is cached and must not be
// mutated.
func (c *Class) InstanceFields() []*Field {
	if c.allFields != nil {
		return c.allFields
	}
	var out []*Field
	if c.Super != nil {
		out = append(out, c.Super.InstanceFields()...)
	}
	for _, f := range c.DeclaredFields {
		if !f.IsStatic {
			out = append(out, f)
		}
	}
	c.allFields = out
	return out
}

// NewMethod declares a method on c. paramTypes excludes the receiver;
// ret may be nil for void. Non-static, non-abstract methods get a `this`
// variable automatically.
func (c *Class) NewMethod(name string, static bool, paramTypes []*Class, ret *Class) *Method {
	return c.newMethod(name, static, false, paramTypes, ret)
}

// NewAbstractMethod declares an abstract (or interface) method: it has a
// signature but no body and never becomes a dispatch target itself.
func (c *Class) NewAbstractMethod(name string, paramTypes []*Class, ret *Class) *Method {
	return c.newMethod(name, false, true, paramTypes, ret)
}

func (c *Class) newMethod(name string, static, abstract bool, paramTypes []*Class, ret *Class) *Method {
	sig := Sig{Name: name, Arity: len(paramTypes)}
	if _, dup := c.methodBySig[sig]; dup {
		panic(fmt.Sprintf("lang: duplicate method %s.%s", c.Name, sig))
	}
	m := &Method{
		ID:         len(c.prog.Methods),
		Owner:      c,
		Name:       name,
		IsStatic:   static,
		IsAbstract: abstract,
		Ret:        ret,
		prog:       c.prog,
	}
	if !static {
		m.This = m.NewVar("this", c)
	}
	for i, pt := range paramTypes {
		m.Params = append(m.Params, m.NewVar(fmt.Sprintf("p%d", i), pt))
	}
	if ret != nil {
		m.RetVar = m.NewVar("$ret", ret)
	}
	c.methodBySig[sig] = m
	c.DeclaredMethods = append(c.DeclaredMethods, m)
	c.prog.Methods = append(c.prog.Methods, m)
	return m
}

// DeclaredMethod returns the method declared directly on c with the
// given signature, or nil.
func (c *Class) DeclaredMethod(sig Sig) *Method { return c.methodBySig[sig] }

// LookupMethod resolves sig against c and its superclasses (the static
// resolution used at call sites). It also searches interfaces so that
// interface calls type-check. Returns nil when absent.
func (c *Class) LookupMethod(sig Sig) *Method {
	for k := c; k != nil; k = k.Super {
		if m, ok := k.methodBySig[sig]; ok {
			return m
		}
	}
	var searchIfaces func(k *Class) *Method
	searchIfaces = func(k *Class) *Method {
		for _, it := range k.Interfaces {
			if m, ok := it.methodBySig[sig]; ok {
				return m
			}
			if m := searchIfaces(it); m != nil {
				return m
			}
		}
		if k.Super != nil {
			return searchIfaces(k.Super)
		}
		return nil
	}
	return searchIfaces(c)
}

// Dispatch performs dynamic dispatch: it resolves sig against the runtime
// class c, walking up superclasses, and returns the first concrete
// implementation, or nil if none exists.
func (c *Class) Dispatch(sig Sig) *Method {
	for k := c; k != nil; k = k.Super {
		if m, ok := k.methodBySig[sig]; ok && !m.IsAbstract {
			return m
		}
	}
	return nil
}

// SubtypeOf reports whether c <: other under the IR's rules: reflexivity,
// superclass chain, transitive interface implementation, array
// covariance (T[] <: U[] iff T <: U) and T[] <: Object.
func (c *Class) SubtypeOf(other *Class) bool {
	if c == other {
		return true
	}
	if other == nil {
		return false
	}
	if c.IsArray() {
		if other == c.prog.objectClass {
			return true
		}
		if other.IsArray() {
			return c.Elem.SubtypeOf(other.Elem)
		}
		return false
	}
	for k := c; k != nil; k = k.Super {
		if k == other {
			return true
		}
		for _, it := range k.Interfaces {
			if it.subIface(other) {
				return true
			}
		}
	}
	return false
}

func (c *Class) subIface(other *Class) bool {
	if c == other {
		return true
	}
	for _, it := range c.Interfaces {
		if it.subIface(other) {
			return true
		}
	}
	return false
}

// Field is an instance or static field.
type Field struct {
	ID       int
	Name     string
	Owner    *Class
	Type     *Class
	IsStatic bool
}

func (f *Field) String() string { return f.Owner.Name + "." + f.Name }
