package lang

import "fmt"

// Exception modeling. The IR treats exceptions the way flow-insensitive
// points-to analyses (Doop's exception analysis, simplified) do:
//
//   - every concrete method has a synthetic exception variable $exc of
//     type Object, created on first use;
//   - `throw v` copies v into the method's $exc;
//   - every call site propagates the callee's $exc into the caller's
//     $exc (the exception may escape the callee);
//   - `x = catch T` captures, type-filtered, from the method's own $exc
//     (which accumulates the method's throws and everything its callees
//     may throw). Flow-insensitively an exception may be both caught
//     and escape, so catching does not remove it from $exc — a sound
//     over-approximation.
//
// The entry method's $exc therefore over-approximates the program's
// uncaught exceptions (see clients.UncaughtExceptionTypes).

// Throw is `throw value`.
type Throw struct {
	Value *Var
}

// Catch is `lhs = catch T`: lhs receives every exception object of a
// subtype of T that this method or its (transitive) callees may throw.
type Catch struct {
	LHS  *Var
	Type *Class
}

func (*Throw) stmt() {}
func (*Catch) stmt() {}

func (s *Throw) String() string { return "throw " + s.Value.Name }
func (s *Catch) String() string {
	return fmt.Sprintf("%s = catch %s", s.LHS.Name, s.Type.Name)
}

// ExcVar returns the method's synthetic exception variable, creating it
// on first use. Only call on concrete methods.
func (m *Method) ExcVar() *Var {
	if m.excVar == nil {
		if m.IsAbstract {
			panic("lang: exception variable on abstract method " + m.String())
		}
		m.excVar = m.NewVar("$exc", m.prog.Object())
	}
	return m.excVar
}

// HasExcVar reports whether the method's exception variable was created
// (i.e. the method throws, catches, or contains any call).
func (m *Method) HasExcVar() bool { return m.excVar != nil }

// AddThrow appends `throw v`.
func (m *Method) AddThrow(v *Var) {
	m.ExcVar() // ensure the sink exists
	m.addStmt(&Throw{Value: v})
}

// AddCatch appends `lhs = catch typ`.
func (m *Method) AddCatch(lhs *Var, typ *Class) {
	m.ExcVar()
	m.addStmt(&Catch{LHS: lhs, Type: typ})
}
