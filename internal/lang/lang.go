// Package lang defines the object-oriented intermediate representation
// analyzed by this repository.
//
// The IR is a compact stand-in for the Java bytecode that the Mahjong
// paper analyzes through Doop/Soot: classes with single inheritance plus
// interfaces, instance and static fields, virtual/static/special calls,
// casts, allocation sites, and arrays (modeled as classes with a single
// element pseudo-field named "[]"). It deliberately exercises exactly the
// language features points-to analysis and the Mahjong heap abstraction
// care about: field-access paths, subtyping, dynamic dispatch and casts.
//
// A Program is built either programmatically (see the New* and Add*
// methods, used by the synthetic benchmark generator) or from the textual
// format understood by package parser.
package lang

import "fmt"

// ElemField is the name of the pseudo-field that models array element
// access: a load `x = a[i]` is represented as a Load of field "[]".
const ElemField = "[]"

// Program is a closed world of classes plus a designated entry method.
type Program struct {
	classes map[string]*Class

	Classes []*Class     // in creation order; arrays included
	Fields  []*Field     // all fields, instance and static
	Methods []*Method    // all methods
	Sites   []*AllocSite // all allocation sites
	Entry   *Method      // analysis root; must be static

	objectClass *Class
	invokeCount int
}

// NewProgram returns a program containing only the root class
// "java.lang.Object".
func NewProgram() *Program {
	p := &Program{classes: make(map[string]*Class)}
	p.objectClass = p.NewClass("java.lang.Object", nil)
	return p
}

// Object returns the root class of the hierarchy.
func (p *Program) Object() *Class { return p.objectClass }

// Class returns the class with the given name, or nil.
func (p *Program) Class(name string) *Class { return p.classes[name] }

// ConcreteSubtypes returns the allocatable classes conforming to t: every
// non-interface class c with c.SubtypeOf(t), in declaration order. When t
// itself is concrete it is included; for an interface with no implementors
// the result is empty (such a type has no valid allocation).
func (p *Program) ConcreteSubtypes(t *Class) []*Class {
	var out []*Class
	for _, c := range p.Classes {
		if !c.IsInterface && c.SubtypeOf(t) {
			out = append(out, c)
		}
	}
	return out
}

// NewClass creates a (non-interface) class. A nil super means the class
// extends java.lang.Object, except for Object itself. It panics if the
// name is already taken; IR construction errors are programming errors.
func (p *Program) NewClass(name string, super *Class, interfaces ...*Class) *Class {
	return p.newClass(name, super, false, interfaces)
}

// NewInterface creates an interface type. Interfaces have Object as
// super for subtyping purposes and may extend other interfaces.
func (p *Program) NewInterface(name string, extends ...*Class) *Class {
	return p.newClass(name, nil, true, extends)
}

func (p *Program) newClass(name string, super *Class, isInterface bool, interfaces []*Class) *Class {
	if _, dup := p.classes[name]; dup {
		panic(fmt.Sprintf("lang: duplicate class %q", name))
	}
	if super == nil && p.objectClass != nil {
		super = p.objectClass
	}
	for _, it := range interfaces {
		if it == nil || !it.IsInterface {
			panic(fmt.Sprintf("lang: class %q implements non-interface", name))
		}
	}
	c := &Class{
		ID:          len(p.Classes),
		Name:        name,
		Super:       super,
		Interfaces:  interfaces,
		IsInterface: isInterface,
		prog:        p,
		fieldByName: make(map[string]*Field),
		methodBySig: make(map[Sig]*Method),
	}
	p.classes[name] = c
	p.Classes = append(p.Classes, c)
	return c
}

// ArrayOf returns the array class with the given element type, creating
// it on first use. The array class subtypes Object and carries a single
// instance pseudo-field named "[]" typed at the element type.
func (p *Program) ArrayOf(elem *Class) *Class {
	name := elem.Name + "[]"
	if c, ok := p.classes[name]; ok {
		return c
	}
	c := p.NewClass(name, p.objectClass)
	c.Elem = elem
	c.NewField(ElemField, elem)
	return c
}

// SetEntry designates the analysis entry point; it must be static.
func (p *Program) SetEntry(m *Method) {
	if m == nil || !m.IsStatic {
		panic("lang: entry method must be a static method")
	}
	p.Entry = m
}

// Stats summarises program size.
type Stats struct {
	Classes    int
	Interfaces int
	Methods    int
	Fields     int
	Stmts      int
	AllocSites int
	CallSites  int
}

// Stats returns size counters for the program.
func (p *Program) Stats() Stats {
	var s Stats
	for _, c := range p.Classes {
		if c.IsInterface {
			s.Interfaces++
		} else {
			s.Classes++
		}
	}
	s.Methods = len(p.Methods)
	s.Fields = len(p.Fields)
	s.AllocSites = len(p.Sites)
	for _, m := range p.Methods {
		s.Stmts += len(m.Stmts)
		for _, st := range m.Stmts {
			if _, ok := st.(*Invoke); ok {
				s.CallSites++
			}
		}
	}
	return s
}
