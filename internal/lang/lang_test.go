package lang

import (
	"strings"
	"testing"
)

// buildHierarchy creates: Object <- A <- B, A <- C, interface I (B implements I).
func buildHierarchy(t *testing.T) (*Program, *Class, *Class, *Class, *Class) {
	t.Helper()
	p := NewProgram()
	i := p.NewInterface("I")
	a := p.NewClass("A", nil)
	b := p.NewClass("B", a, i)
	c := p.NewClass("C", a)
	return p, a, b, c, i
}

func TestSubtyping(t *testing.T) {
	p, a, b, c, i := buildHierarchy(t)
	obj := p.Object()
	cases := []struct {
		sub, sup *Class
		want     bool
	}{
		{a, a, true},
		{b, a, true},
		{c, a, true},
		{a, b, false},
		{b, c, false},
		{b, i, true},
		{c, i, false},
		{a, obj, true},
		{i, obj, true},
		{obj, a, false},
	}
	for _, tc := range cases {
		if got := tc.sub.SubtypeOf(tc.sup); got != tc.want {
			t.Errorf("%s <: %s = %v, want %v", tc.sub, tc.sup, got, tc.want)
		}
	}
}

func TestTransitiveInterfaces(t *testing.T) {
	p := NewProgram()
	i1 := p.NewInterface("I1")
	i2 := p.NewInterface("I2", i1)
	a := p.NewClass("A", nil, i2)
	b := p.NewClass("B", a)
	if !a.SubtypeOf(i1) || !a.SubtypeOf(i2) {
		t.Fatal("A should implement I1 and I2")
	}
	if !b.SubtypeOf(i1) {
		t.Fatal("B should inherit I1 from A")
	}
}

func TestArrays(t *testing.T) {
	p, a, b, _, _ := buildHierarchy(t)
	aArr := p.ArrayOf(a)
	bArr := p.ArrayOf(b)
	if p.ArrayOf(a) != aArr {
		t.Fatal("ArrayOf not memoized")
	}
	if aArr.Name != "A[]" || !aArr.IsArray() || aArr.Elem != a {
		t.Fatalf("bad array class %+v", aArr)
	}
	if !bArr.SubtypeOf(aArr) {
		t.Fatal("B[] <: A[] (covariance) failed")
	}
	if aArr.SubtypeOf(bArr) {
		t.Fatal("A[] should not subtype B[]")
	}
	if !aArr.SubtypeOf(p.Object()) {
		t.Fatal("A[] <: Object failed")
	}
	if f := aArr.Field(ElemField); f == nil || f.Type != a {
		t.Fatal("array element pseudo-field missing or mistyped")
	}
}

func TestDispatch(t *testing.T) {
	p, a, b, c, _ := buildHierarchy(t)
	afoo := a.NewMethod("foo", false, nil, nil)
	bfoo := b.NewMethod("foo", false, nil, nil)
	// C does not override foo.
	sig := Sig{Name: "foo", Arity: 0}
	if got := b.Dispatch(sig); got != bfoo {
		t.Fatalf("dispatch on B = %v, want B.foo", got)
	}
	if got := c.Dispatch(sig); got != afoo {
		t.Fatalf("dispatch on C = %v, want A.foo", got)
	}
	if got := p.Object().Dispatch(sig); got != nil {
		t.Fatalf("dispatch on Object = %v, want nil", got)
	}
	// Abstract methods are skipped by Dispatch but found by LookupMethod.
	d := p.NewClass("D", nil)
	dbar := d.NewAbstractMethod("bar", nil, nil)
	e := p.NewClass("E", d)
	ebar := e.NewMethod("bar", false, nil, nil)
	if got := e.Dispatch(Sig{"bar", 0}); got != ebar {
		t.Fatalf("dispatch E.bar = %v", got)
	}
	if got := d.Dispatch(Sig{"bar", 0}); got != nil {
		t.Fatalf("dispatch on abstract D.bar = %v, want nil", got)
	}
	if got := d.LookupMethod(Sig{"bar", 0}); got != dbar {
		t.Fatalf("lookup D.bar = %v", got)
	}
}

func TestFieldResolution(t *testing.T) {
	p, a, b, _, _ := buildHierarchy(t)
	fa := a.NewField("f", a)
	fb := b.NewField("g", p.Object())
	if b.Field("f") != fa {
		t.Fatal("inherited field not found")
	}
	if a.Field("g") != nil {
		t.Fatal("subclass field visible from superclass")
	}
	got := b.InstanceFields()
	if len(got) != 2 || got[0] != fa || got[1] != fb {
		t.Fatalf("InstanceFields(B)=%v", got)
	}
}

func TestStaticFields(t *testing.T) {
	p, a, _, _, _ := buildHierarchy(t)
	sf := a.NewStaticField("CACHE", a)
	if !sf.IsStatic {
		t.Fatal("static flag lost")
	}
	for _, f := range a.InstanceFields() {
		if f == sf {
			t.Fatal("static field listed among instance fields")
		}
	}
	_ = p
}

func TestDuplicateClassPanics(t *testing.T) {
	p := NewProgram()
	p.NewClass("A", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate class did not panic")
		}
	}()
	p.NewClass("A", nil)
}

func TestBuilderAndValidate(t *testing.T) {
	p, a, b, _, _ := buildHierarchy(t)
	fa := a.NewField("f", a)
	afoo := a.NewMethod("foo", false, nil, a)
	afoo.AddReturn(afoo.This)
	b.NewMethod("foo", false, nil, a).AddReturn(nil) // void-ish? no: has RetVar

	main := p.Class("A").prog.Class("A") // silly round-trip via map
	if main != a {
		t.Fatal("Class lookup broken")
	}

	mainCls := p.NewClass("Main", nil)
	m := mainCls.NewMethod("main", true, nil, nil)
	x := m.NewVar("x", a)
	y := m.NewVar("y", a)
	m.AddAlloc(x, b)
	m.AddCopy(y, x)
	m.AddStore(x, fa, y)
	m.AddLoad(y, x, fa)
	m.AddCast(y, b, x)
	m.AddVirtualCall(y, x, "foo")
	p.SetEntry(m)

	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}

	st := p.Stats()
	if st.AllocSites != 1 || st.CallSites != 1 {
		t.Fatalf("stats=%+v", st)
	}
	if st.Classes < 5 || st.Interfaces != 1 {
		t.Fatalf("stats=%+v", st)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	p := NewProgram()
	a := p.NewClass("A", nil)
	other := p.NewClass("Other", nil)
	om := other.NewMethod("m", true, nil, nil)
	foreign := om.NewVar("v", a)

	mainCls := p.NewClass("Main", nil)
	m := mainCls.NewMethod("main", true, nil, nil)
	m.AddCopy(foreign, foreign) // vars from the wrong method
	p.SetEntry(m)
	err := p.Validate()
	if err == nil {
		t.Fatal("expected validation error")
	}
	if !strings.Contains(err.Error(), "belongs to another method") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestValidateNoEntry(t *testing.T) {
	p := NewProgram()
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "no entry") {
		t.Fatalf("want no-entry error, got %v", err)
	}
}

func TestEntryMustBeStatic(t *testing.T) {
	p := NewProgram()
	a := p.NewClass("A", nil)
	m := a.NewMethod("run", false, nil, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("SetEntry(instance method) did not panic")
		}
	}()
	p.SetEntry(m)
}

func TestAllocSiteLabels(t *testing.T) {
	p := NewProgram()
	a := p.NewClass("A", nil)
	mc := p.NewClass("Main", nil)
	m := mc.NewMethod("main", true, nil, nil)
	x := m.NewVar("x", a)
	s1 := m.AddAlloc(x, a)
	s2 := m.AddAlloc(x, a)
	if s1.Label == s2.Label {
		t.Fatalf("alloc site labels collide: %q", s1.Label)
	}
	if s1.ID == s2.ID {
		t.Fatal("alloc site ids collide")
	}
	if len(p.Sites) != 2 {
		t.Fatalf("program sites=%d", len(p.Sites))
	}
}

func TestStmtStrings(t *testing.T) {
	p := NewProgram()
	a := p.NewClass("A", nil)
	f := a.NewField("f", a)
	foo := a.NewMethod("foo", false, []*Class{a}, a)
	foo.AddReturn(foo.This)
	mc := p.NewClass("Main", nil)
	m := mc.NewMethod("main", true, nil, nil)
	x := m.NewVar("x", a)
	y := m.NewVar("y", a)
	m.AddAlloc(x, a)
	m.AddStore(x, f, y)
	m.AddLoad(y, x, f)
	m.AddCast(y, a, x)
	m.AddVirtualCall(y, x, "foo", x)
	want := []string{
		"x = new A",
		"x.f = y",
		"y = x.f",
		"y = (A) x",
		"y = virtualinvoke x.foo(x)",
	}
	for i, w := range want {
		if got := m.Stmts[i].String(); got != w {
			t.Errorf("stmt %d: %q want %q", i, got, w)
		}
	}
}

func TestExcVarLazyCreation(t *testing.T) {
	p := NewProgram()
	a := p.NewClass("A", nil)
	m := a.NewMethod("quiet", true, nil, nil)
	m.AddReturn(nil)
	if m.HasExcVar() {
		t.Fatal("$exc created without throw/catch/call")
	}
	ev := m.ExcVar()
	if ev == nil || ev.Name != "$exc" || !m.HasExcVar() {
		t.Fatalf("ExcVar=%v", ev)
	}
	if m.ExcVar() != ev {
		t.Fatal("ExcVar not memoized")
	}
}

func TestExcVarOnAbstractPanics(t *testing.T) {
	p := NewProgram()
	a := p.NewClass("A", nil)
	m := a.NewAbstractMethod("abs", nil, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("ExcVar on abstract method did not panic")
		}
	}()
	m.ExcVar()
}

func TestThrowCatchBuilders(t *testing.T) {
	p := NewProgram()
	a := p.NewClass("A", nil)
	errCls := p.NewClass("Err", nil)
	m := a.NewMethod("run", true, nil, nil)
	v := m.NewVar("v", errCls)
	m.AddAlloc(v, errCls)
	m.AddThrow(v)
	c := m.NewVar("c", errCls)
	m.AddCatch(c, errCls)
	m.AddReturn(nil)
	p.SetEntry(m)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := m.Stmts[1].String(); got != "throw v" {
		t.Fatalf("Throw.String=%q", got)
	}
	if got := m.Stmts[2].String(); got != "c = catch Err" {
		t.Fatalf("Catch.String=%q", got)
	}
}
