package lang

import "fmt"

// Method is a method with an optional body (abstract methods have none).
type Method struct {
	ID         int
	Owner      *Class
	Name       string
	IsStatic   bool
	IsAbstract bool

	This   *Var // nil for static methods
	Params []*Var
	Ret    *Class // nil for void
	RetVar *Var   // nil for void; every `return v` copies into it

	Locals []*Var // all variables, including this/params/RetVar
	Stmts  []Stmt

	prog   *Program
	excVar *Var // synthetic $exc; see exceptions.go
}

// Sig returns the method's dispatch signature.
func (m *Method) Sig() Sig { return Sig{Name: m.Name, Arity: len(m.Params)} }

func (m *Method) String() string { return m.Owner.Name + "." + m.Sig().String() }

// NewVar declares a local variable in m.
func (m *Method) NewVar(name string, typ *Class) *Var {
	if typ == nil {
		panic(fmt.Sprintf("lang: var %s in %s has nil type", name, m.Name))
	}
	v := &Var{Index: len(m.Locals), Name: name, Type: typ, Method: m}
	m.Locals = append(m.Locals, v)
	return v
}

// Var is a method-local variable (including this, parameters and the
// synthetic return variable).
type Var struct {
	Index  int // position within Method.Locals
	Name   string
	Type   *Class
	Method *Method
}

func (v *Var) String() string {
	if v.Method == nil {
		return v.Name
	}
	return v.Method.String() + "#" + v.Name
}

// AllocSite is a `new T` occurrence; the unit of the allocation-site
// heap abstraction.
type AllocSite struct {
	ID     int
	Type   *Class
	Method *Method
	Label  string // stable human-readable tag, e.g. "Main.main/new A#0"
}

func (s *AllocSite) String() string { return s.Label }

func (m *Method) addStmt(s Stmt) {
	if m.IsAbstract {
		panic("lang: adding statement to abstract method " + m.String())
	}
	m.Stmts = append(m.Stmts, s)
}

// AddAlloc appends `lhs = new typ` and returns its allocation site.
func (m *Method) AddAlloc(lhs *Var, typ *Class) *AllocSite {
	if typ.IsInterface {
		panic("lang: cannot allocate interface " + typ.Name)
	}
	site := &AllocSite{
		ID:     len(m.prog.Sites),
		Type:   typ,
		Method: m,
		Label:  fmt.Sprintf("%s/new %s#%d", m.String(), typ.Name, len(m.prog.Sites)),
	}
	m.prog.Sites = append(m.prog.Sites, site)
	m.addStmt(&Alloc{LHS: lhs, Site: site})
	return site
}

// AddCopy appends `lhs = rhs`.
func (m *Method) AddCopy(lhs, rhs *Var) { m.addStmt(&Copy{LHS: lhs, RHS: rhs}) }

// AddLoad appends `lhs = base.field`.
func (m *Method) AddLoad(lhs, base *Var, field *Field) {
	if field.IsStatic {
		panic("lang: instance load of static field " + field.String())
	}
	m.addStmt(&Load{LHS: lhs, Base: base, Field: field})
}

// AddStore appends `base.field = rhs`.
func (m *Method) AddStore(base *Var, field *Field, rhs *Var) {
	if field.IsStatic {
		panic("lang: instance store of static field " + field.String())
	}
	m.addStmt(&Store{Base: base, Field: field, RHS: rhs})
}

// AddStaticLoad appends `lhs = Owner.field`.
func (m *Method) AddStaticLoad(lhs *Var, field *Field) {
	if !field.IsStatic {
		panic("lang: static load of instance field " + field.String())
	}
	m.addStmt(&StaticLoad{LHS: lhs, Field: field})
}

// AddStaticStore appends `Owner.field = rhs`.
func (m *Method) AddStaticStore(field *Field, rhs *Var) {
	if !field.IsStatic {
		panic("lang: static store of instance field " + field.String())
	}
	m.addStmt(&StaticStore{Field: field, RHS: rhs})
}

// AddCast appends `lhs = (typ) rhs`.
func (m *Method) AddCast(lhs *Var, typ *Class, rhs *Var) {
	m.addStmt(&Cast{LHS: lhs, Type: typ, RHS: rhs})
}

// AddVirtualCall appends `lhs = base.name(args...)`; lhs may be nil.
// The callee signature must resolve against base's static type.
func (m *Method) AddVirtualCall(lhs, base *Var, name string, args ...*Var) *Invoke {
	sig := Sig{Name: name, Arity: len(args)}
	decl := base.Type.LookupMethod(sig)
	if decl == nil {
		panic(fmt.Sprintf("lang: virtual call %s.%s unresolved in %s", base.Type.Name, sig, m))
	}
	return m.addInvoke(&Invoke{Kind: VirtualCall, LHS: lhs, Base: base, Callee: decl, Args: args})
}

// AddStaticCall appends `lhs = callee(args...)` for a static callee.
func (m *Method) AddStaticCall(lhs *Var, callee *Method, args ...*Var) *Invoke {
	if !callee.IsStatic {
		panic("lang: static call to instance method " + callee.String())
	}
	return m.addInvoke(&Invoke{Kind: StaticCall, LHS: lhs, Callee: callee, Args: args})
}

// AddSpecialCall appends a non-virtual instance call (constructor,
// private or super call): the callee is fixed, not dispatched.
func (m *Method) AddSpecialCall(lhs, base *Var, callee *Method, args ...*Var) *Invoke {
	if callee.IsStatic || callee.IsAbstract {
		panic("lang: special call must target a concrete instance method: " + callee.String())
	}
	return m.addInvoke(&Invoke{Kind: SpecialCall, LHS: lhs, Base: base, Callee: callee, Args: args})
}

func (m *Method) addInvoke(inv *Invoke) *Invoke {
	if len(inv.Args) != len(inv.Callee.Params) {
		panic(fmt.Sprintf("lang: arity mismatch calling %s from %s", inv.Callee, m))
	}
	inv.ID = m.prog.nextInvokeID()
	inv.In = m
	m.addStmt(inv)
	return inv
}

// AddReturn appends `return v` (v nil for a bare return).
func (m *Method) AddReturn(v *Var) {
	if v != nil && m.RetVar == nil {
		panic("lang: value return from void method " + m.String())
	}
	m.addStmt(&Return{Value: v})
}
