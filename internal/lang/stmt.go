package lang

import "fmt"

// Stmt is one IR statement. The points-to analysis consumes statements
// through a type switch; control flow within a method is irrelevant to a
// flow-insensitive analysis, so statements form a bag, not a CFG.
type Stmt interface {
	stmt()
	String() string
}

// Alloc is `lhs = new T` (T given by Site.Type).
type Alloc struct {
	LHS  *Var
	Site *AllocSite
}

// Copy is `lhs = rhs`.
type Copy struct {
	LHS, RHS *Var
}

// Load is `lhs = base.field` (field "[]" for array element loads).
type Load struct {
	LHS, Base *Var
	Field     *Field
}

// Store is `base.field = rhs` (field "[]" for array element stores).
type Store struct {
	Base  *Var
	Field *Field
	RHS   *Var
}

// StaticLoad is `lhs = C.field`.
type StaticLoad struct {
	LHS   *Var
	Field *Field
}

// StaticStore is `C.field = rhs`.
type StaticStore struct {
	Field *Field
	RHS   *Var
}

// Cast is `lhs = (T) rhs`. The analysis filters the flow by T; the
// may-fail-casting client inspects the unfiltered points-to set of rhs.
type Cast struct {
	LHS  *Var
	Type *Class
	RHS  *Var
}

// InvokeKind discriminates call statements.
type InvokeKind int8

const (
	// VirtualCall dispatches on the runtime type of Base.
	VirtualCall InvokeKind = iota
	// StaticCall targets a fixed static method; Base is nil.
	StaticCall
	// SpecialCall targets a fixed instance method (constructor/super).
	SpecialCall
)

func (k InvokeKind) String() string {
	switch k {
	case VirtualCall:
		return "virtualinvoke"
	case StaticCall:
		return "staticinvoke"
	case SpecialCall:
		return "specialinvoke"
	}
	return fmt.Sprintf("InvokeKind(%d)", int(k))
}

// Invoke is a call statement; the *Invoke value itself serves as the
// call site (e.g. as a k-CFA context element).
type Invoke struct {
	ID     int     // globally unique call-site id
	In     *Method // containing method
	Kind   InvokeKind
	LHS    *Var    // nil when the result is unused or the callee is void
	Base   *Var    // receiver; nil for static calls
	Callee *Method // static target, or statically resolved declaration for virtual calls
	Args   []*Var
}

// Return is `return value` (Value nil for void returns).
type Return struct {
	Value *Var
}

func (*Alloc) stmt()       {}
func (*Copy) stmt()        {}
func (*Load) stmt()        {}
func (*Store) stmt()       {}
func (*StaticLoad) stmt()  {}
func (*StaticStore) stmt() {}
func (*Cast) stmt()        {}
func (*Invoke) stmt()      {}
func (*Return) stmt()      {}

func (s *Alloc) String() string { return fmt.Sprintf("%s = new %s", s.LHS.Name, s.Site.Type.Name) }
func (s *Copy) String() string  { return fmt.Sprintf("%s = %s", s.LHS.Name, s.RHS.Name) }
func (s *Load) String() string {
	return fmt.Sprintf("%s = %s.%s", s.LHS.Name, s.Base.Name, s.Field.Name)
}
func (s *Store) String() string {
	return fmt.Sprintf("%s.%s = %s", s.Base.Name, s.Field.Name, s.RHS.Name)
}
func (s *StaticLoad) String() string {
	return fmt.Sprintf("%s = %s", s.LHS.Name, s.Field)
}
func (s *StaticStore) String() string {
	return fmt.Sprintf("%s = %s", s.Field, s.RHS.Name)
}
func (s *Cast) String() string {
	return fmt.Sprintf("%s = (%s) %s", s.LHS.Name, s.Type.Name, s.RHS.Name)
}
func (s *Return) String() string {
	if s.Value == nil {
		return "return"
	}
	return "return " + s.Value.Name
}

func (s *Invoke) String() string {
	out := ""
	if s.LHS != nil {
		out = s.LHS.Name + " = "
	}
	recv := ""
	if s.Base != nil {
		recv = s.Base.Name + "."
	}
	args := ""
	for i, a := range s.Args {
		if i > 0 {
			args += ", "
		}
		args += a.Name
	}
	switch s.Kind {
	case VirtualCall:
		return fmt.Sprintf("%s%s %s%s(%s)", out, s.Kind, recv, s.Callee.Sig().Name, args)
	default:
		return fmt.Sprintf("%s%s %s%s.%s(%s)", out, s.Kind, recv, s.Callee.Owner.Name, s.Callee.Sig().Name, args)
	}
}

// Label returns a stable human-readable call-site tag.
func (s *Invoke) Label() string {
	return fmt.Sprintf("%s/call#%d", s.In.String(), s.ID)
}

func (p *Program) nextInvokeID() int {
	p.invokeCount++
	return p.invokeCount - 1
}
