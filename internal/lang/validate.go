package lang

import (
	"errors"
	"fmt"
)

// Validate checks structural well-formedness of the program: an entry
// point exists, every statement references variables of its own method,
// assignments are type-compatible under loose OO rules (either direction
// of the subtype relation is allowed, as after an implicit downcast the
// IR does not re-check), and virtual calls resolve. It returns all
// problems found, joined.
func (p *Program) Validate() error {
	var errs []error
	report := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}
	if p.Entry == nil {
		report("program has no entry method")
	} else if !p.Entry.IsStatic {
		report("entry method %s is not static", p.Entry)
	}
	for _, c := range p.Classes {
		if c != p.objectClass && c.Super == nil && !c.IsInterface {
			report("class %s has no superclass", c.Name)
		}
		for k := c.Super; k != nil; k = k.Super {
			if k == c {
				report("class %s participates in an inheritance cycle", c.Name)
				break
			}
		}
	}
	for _, m := range p.Methods {
		if m.IsAbstract && len(m.Stmts) > 0 {
			report("abstract method %s has a body", m)
		}
		for i, st := range m.Stmts {
			if err := m.checkStmt(st); err != nil {
				report("%s stmt %d (%s): %v", m, i, st, err)
			}
		}
	}
	return errors.Join(errs...)
}

// assignable is the loose compatibility used by the validator: identical,
// upcast, or downcast (the IR trusts explicit program structure; the
// analysis itself applies precise filtering only at Cast statements).
func assignable(src, dst *Class) bool {
	return src.SubtypeOf(dst) || dst.SubtypeOf(src)
}

func (m *Method) checkVar(v *Var, role string) error {
	if v == nil {
		return fmt.Errorf("nil %s variable", role)
	}
	if v.Method != m {
		return fmt.Errorf("%s variable %s belongs to another method", role, v)
	}
	return nil
}

func (m *Method) checkStmt(st Stmt) error {
	switch s := st.(type) {
	case *Alloc:
		if err := m.checkVar(s.LHS, "lhs"); err != nil {
			return err
		}
		if !assignable(s.Site.Type, s.LHS.Type) {
			return fmt.Errorf("alloc of %s not assignable to %s", s.Site.Type, s.LHS.Type)
		}
	case *Copy:
		if err := m.checkVar(s.LHS, "lhs"); err != nil {
			return err
		}
		if err := m.checkVar(s.RHS, "rhs"); err != nil {
			return err
		}
		if !assignable(s.RHS.Type, s.LHS.Type) {
			return fmt.Errorf("copy %s to %s incompatible", s.RHS.Type, s.LHS.Type)
		}
	case *Load:
		if err := m.checkVar(s.LHS, "lhs"); err != nil {
			return err
		}
		if err := m.checkVar(s.Base, "base"); err != nil {
			return err
		}
		if s.Base.Type.Field(s.Field.Name) == nil && !s.Base.Type.IsInterface && s.Base.Type != m.prog.objectClass {
			return fmt.Errorf("type %s has no field %s", s.Base.Type, s.Field.Name)
		}
	case *Store:
		if err := m.checkVar(s.Base, "base"); err != nil {
			return err
		}
		if err := m.checkVar(s.RHS, "rhs"); err != nil {
			return err
		}
	case *StaticLoad:
		if err := m.checkVar(s.LHS, "lhs"); err != nil {
			return err
		}
		if !s.Field.IsStatic {
			return fmt.Errorf("static load of instance field %s", s.Field)
		}
	case *StaticStore:
		if err := m.checkVar(s.RHS, "rhs"); err != nil {
			return err
		}
		if !s.Field.IsStatic {
			return fmt.Errorf("static store of instance field %s", s.Field)
		}
	case *Cast:
		if err := m.checkVar(s.LHS, "lhs"); err != nil {
			return err
		}
		if err := m.checkVar(s.RHS, "rhs"); err != nil {
			return err
		}
		if !assignable(s.Type, s.LHS.Type) {
			return fmt.Errorf("cast to %s not assignable to %s", s.Type, s.LHS.Type)
		}
	case *Invoke:
		if s.LHS != nil {
			if err := m.checkVar(s.LHS, "lhs"); err != nil {
				return err
			}
			if s.Callee.Ret == nil {
				return fmt.Errorf("void callee %s assigned to %s", s.Callee, s.LHS)
			}
		}
		if s.Kind == StaticCall {
			if s.Base != nil {
				return errors.New("static call with receiver")
			}
		} else {
			if err := m.checkVar(s.Base, "receiver"); err != nil {
				return err
			}
		}
		if s.Kind == VirtualCall && s.Base.Type.LookupMethod(s.Callee.Sig()) == nil {
			return fmt.Errorf("virtual callee %s unresolvable from %s", s.Callee.Sig(), s.Base.Type)
		}
		for i, a := range s.Args {
			if err := m.checkVar(a, fmt.Sprintf("arg%d", i)); err != nil {
				return err
			}
		}
	case *Return:
		if s.Value != nil {
			if err := m.checkVar(s.Value, "return"); err != nil {
				return err
			}
			if m.RetVar == nil {
				return errors.New("value return in void method")
			}
		}
	case *Throw:
		if err := m.checkVar(s.Value, "throw"); err != nil {
			return err
		}
	case *Catch:
		if err := m.checkVar(s.LHS, "catch"); err != nil {
			return err
		}
		if !assignable(s.Type, s.LHS.Type) {
			return fmt.Errorf("catch of %s not assignable to %s", s.Type, s.LHS.Type)
		}
	default:
		return fmt.Errorf("unknown statement type %T", st)
	}
	return nil
}
