package lint

import (
	"go/ast"
	"go/types"

	"mahjong/internal/lint/flow"
)

// AtomicMix flags fields that are accessed through sync/atomic in one
// place and by plain loads or stores in another. Mixed access is a data
// race even when the plain side "only reads": the atomic users
// establish no happens-before with it, so the reader can observe torn
// or stale values — and the race detector only catches the schedules
// that actually collide.
//
// This is exactly the race mahjong shipped before the parallel-solver
// hardening pass: unionfind.Forest kept a plain int `sets` counter that
// Union updated with atomic.AddInt64 while Sets() read it bare. The fix
// (an atomic.Int64 field) is the pattern this analyzer enforces
// module-wide: once any access site of a field goes through
// sync/atomic, every access must.
//
// Mutex-guarded plain access is flagged too, with its own message: a
// mutex synchronizes only with other critical sections on the same
// mutex, never with sync/atomic users of the field (the SharedAtomic
// and SharedGuarded points of the ownership lattice do not mix). The
// durable fix is the atomic.Int64/Uint64/Pointer wrapper types, which
// make plain access unrepresentable.
//
// The analyzer runs module-wide (RunModule): the atomic site and the
// plain site of the pre-fix race could as easily have lived in
// different packages if the counter had been exported.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc: "a field accessed via sync/atomic anywhere must be accessed via sync/atomic everywhere; " +
		"plain (even mutex-guarded) reads and writes of the same field race with the atomic users",
	RunModule: runAtomicMix,
}

func runAtomicMix(mp *ModulePass) {
	// Pass 1: every field that is the &-target of a sync/atomic function
	// call anywhere in the load, plus the selector nodes inside those
	// calls (exempt from pass 2).
	atomicFields := make(map[*types.Var]bool)
	inAtomicCall := make(map[*ast.SelectorExpr]bool)
	for _, pkg := range mp.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeOf(pkg.Info, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
					return true
				}
				for _, arg := range call.Args {
					un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok {
						continue
					}
					field := flow.FieldOf(pkg.Info, un.X)
					if field == nil {
						continue
					}
					atomicFields[field] = true
					markSelectors(inAtomicCall, un.X)
				}
				return true
			})
		}
	}
	if len(atomicFields) == 0 {
		return
	}

	// Pass 2: any other selector resolving to one of those fields is a
	// plain access.
	for _, pkg := range mp.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				guarded := callsLock(pkg.Info, fd)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					sel, ok := n.(*ast.SelectorExpr)
					if !ok || inAtomicCall[sel] {
						return true
					}
					field := flow.FieldOf(pkg.Info, sel)
					if field == nil {
						return true
					}
					if !atomicFields[field] {
						return true
					}
					if guarded {
						mp.Reportf(sel.Pos(), "field %s is accessed via sync/atomic elsewhere; this mutex-guarded plain access still races — a mutex never synchronizes with the atomic users (use the atomic access everywhere, or an atomic.Int64-style typed field)", field.Name())
					} else {
						mp.Reportf(sel.Pos(), "field %s is accessed via sync/atomic elsewhere; this plain access races with the atomic users (torn/stale reads the race detector may never schedule) — use sync/atomic here too, or an atomic.Int64-style typed field", field.Name())
					}
					return true
				})
			}
		}
	}
}

// markSelectors records every selector under e as living inside an
// atomic call's address argument.
func markSelectors(set map[*ast.SelectorExpr]bool, e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			set[sel] = true
		}
		return true
	})
}

// callsLock reports whether fd calls a Lock/RLock method anywhere —
// used only to pick the sharper "mutex does not help" message.
func callsLock(info *types.Info, fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock" {
				found = true
			}
		}
		return !found
	})
	return found
}
