package lint

import (
	"go/ast"
	"go/types"
)

// BitsetAlias enforces the borrowed-bitset discipline that PR 2's delta-set
// pooling made load-bearing in the solver hot path.
//
// The solver recycles *bitset.Set delta sets through a free list (grabSet /
// releaseSet). Two aliasing mistakes turn that optimization into silent
// unsoundness — a released set is re-grabbed, Cleared, and refilled for an
// unrelated pointer node, so a stale alias reads (or corrupts) another
// node's points-to facts:
//
//   - retention: a function that receives a *bitset.Set as a parameter
//     borrows it for the duration of the call. Storing it in a struct
//     field, a map/slice element, or returning it extends the alias past
//     the borrow, beyond the caller's releaseSet.
//
//   - use-after-release: touching a set after passing it to releaseSet —
//     the set may already be another node's live delta.
//
//   - cross-shard escape: passing a borrowed set into a send/push call
//     (the parallel engine's SPSC shard queues). The receiving worker
//     adopts a message's set into its OWN pool, so a borrowed set that
//     crosses a queue ends up owned by two pools on two goroutines — the
//     sender's caller releases it while the receiver still reads it.
//     Senders must clone into an owned set (grabSet + Union) first, which
//     is what the solver's shard workers do.
//
// The pool accessors themselves (grabSet, releaseSet) are exempt: they are
// the ownership boundary the rule protects. Package bitset is exempt too —
// its methods legitimately return and retain sets they own.
var BitsetAlias = &Analyzer{
	Name: "bitsetalias",
	Doc: "a borrowed *bitset.Set (parameter or pooled delta) must not be retained in a field, " +
		"returned, sent over a shard queue, or touched after releaseSet",
	Run: runBitsetAlias,
}

func runBitsetAlias(pass *Pass) {
	if pass.Name == "bitset" {
		return
	}
	// Only packages that use the bitset package can hold one of its sets.
	usesBitset := false
	for _, imp := range pass.Types.Imports() {
		if imp.Name() == "bitset" {
			usesBitset = true
		}
	}
	if !usesBitset {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if fn.Name.Name != "releaseSet" && fn.Name.Name != "grabSet" {
				checkBorrowedParams(pass, fn)
			}
			checkUseAfterRelease(pass, fn)
		}
	}
}

// checkBorrowedParams flags escapes of *bitset.Set parameters.
func checkBorrowedParams(pass *Pass, fn *ast.FuncDecl) {
	borrowed := make(map[types.Object]bool)
	for _, field := range fn.Type.Params.List {
		for _, name := range field.Names {
			obj := pass.Info.Defs[name]
			if obj != nil && isPtrToNamed(obj.Type(), "bitset", "Set") {
				borrowed[obj] = true
			}
		}
	}
	if len(borrowed) == 0 {
		return
	}
	isBorrowedIdent := func(e ast.Expr) types.Object {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if obj := pass.Info.Uses[id]; obj != nil && borrowed[obj] {
				return obj
			}
		}
		return nil
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// A send/push callee hands its message to another goroutine,
			// whose worker adopts the set into its own pool. A borrowed set
			// must not ride along — directly or inside the message literal.
			name := ""
			switch fun := ast.Unparen(n.Fun).(type) {
			case *ast.Ident:
				name = fun.Name
			case *ast.SelectorExpr:
				name = fun.Sel.Name
			}
			if name != "send" && name != "push" {
				return true
			}
			for _, arg := range n.Args {
				obj := isBorrowedIdent(arg)
				if obj == nil {
					if lit, ok := ast.Unparen(arg).(*ast.CompositeLit); ok {
						for _, elt := range lit.Elts {
							v := elt
							if kv, ok := elt.(*ast.KeyValueExpr); ok {
								v = kv.Value
							}
							if o := isBorrowedIdent(v); o != nil {
								obj = o
							}
						}
					}
				}
				if obj != nil {
					pass.Reportf(arg.Pos(), "borrowed *bitset.Set parameter %s crosses a shard-queue send: the receiver adopts the set into its own pool while the lender's caller still releases it — clone into an owned set (grabSet + Union) before sending", obj.Name())
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if obj := isBorrowedIdent(res); obj != nil {
					pass.Reportf(res.Pos(), "borrowed *bitset.Set parameter %s is returned: the alias outlives the borrow and will dangle once the caller releases the set back to the pool", obj.Name())
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				var rhs ast.Expr
				switch {
				case len(n.Rhs) == len(n.Lhs):
					rhs = n.Rhs[i]
				case len(n.Rhs) == 1:
					rhs = n.Rhs[0]
				default:
					continue
				}
				// Retention is a store through a field or element — a
				// destination that persists after the call returns.
				switch ast.Unparen(lhs).(type) {
				case *ast.SelectorExpr, *ast.IndexExpr:
				default:
					continue
				}
				obj := isBorrowedIdent(rhs)
				if obj == nil {
					// x.f = append(x.f, p) and friends: look one call deep.
					if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
						for _, arg := range call.Args {
							if o := isBorrowedIdent(arg); o != nil {
								obj = o
							}
						}
					}
				}
				if obj != nil {
					pass.Reportf(n.Pos(), "borrowed *bitset.Set parameter %s is retained in %s: the pool may hand the same set to an unrelated pointer node, corrupting its points-to facts", obj.Name(), types.ExprString(lhs))
				}
			}
		}
		return true
	})
}

// checkUseAfterRelease flags statements that touch a set after it was passed
// to releaseSet earlier in the same statement list.
func checkUseAfterRelease(pass *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			scanStmtList(pass, n.List)
		case *ast.CaseClause:
			scanStmtList(pass, n.Body)
		case *ast.CommClause:
			scanStmtList(pass, n.Body)
		}
		return true
	})
}

// scanStmtList walks one straight-line statement list. A release inside a
// nested block (an if-branch that usually continues or returns, a loop body,
// a deferred closure) is deliberately NOT propagated to the statements after
// it — whether it executed is flow-dependent, and the nested list gets its
// own scan. The analyzer trades those flow-dependent cases for zero false
// positives on the solver's release-and-continue idiom.
func scanStmtList(pass *Pass, list []ast.Stmt) {
	released := make(map[types.Object]bool)
	for _, stmt := range list {
		// A fresh binding ends the released state of that variable.
		if asg, ok := stmt.(*ast.AssignStmt); ok {
			for _, lhs := range asg.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := pass.Info.Defs[id]; obj != nil {
						delete(released, obj)
					} else if obj := pass.Info.Uses[id]; obj != nil {
						delete(released, obj)
					}
				}
			}
		}
		for obj := range released {
			if usesObject(pass.Info, stmt, obj) {
				pass.Reportf(stmt.Pos(), "%s is used after releaseSet(%s): the set may already be another node's live delta (release it on the last use instead)", obj.Name(), obj.Name())
				delete(released, obj) // one report per release
			}
		}
		ast.Inspect(stmt, func(m ast.Node) bool {
			switch m.(type) {
			// Releases in nested statement lists or deferred/spawned
			// closures are conditional or later-executed; they do not mark
			// the set released for the remainder of THIS list.
			case *ast.BlockStmt, *ast.CaseClause, *ast.CommClause,
				*ast.FuncLit, *ast.DeferStmt, *ast.GoStmt:
				return false
			}
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := ""
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				name = fun.Name
			case *ast.SelectorExpr:
				name = fun.Sel.Name
			}
			if name != "releaseSet" || len(call.Args) != 1 {
				return true
			}
			if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
				if obj := pass.Info.Uses[id]; obj != nil && isPtrToNamed(obj.Type(), "bitset", "Set") {
					released[obj] = true
				}
			}
			return true
		})
	}
}
