package lint

import (
	"go/ast"
	"go/token"
)

// CtxFlow enforces threaded cancellation in library code.
//
// PR 1 threaded context.Context from the daemon down through every pipeline
// stage (the solver worklist, the Tarjan pass, the merge workers all poll
// it); that chain only cancels if no link manufactures a fresh root context.
// A context.Background()/TODO() inside internal/ detaches everything below
// it from the caller's deadline and from graceful shutdown — exactly the bug
// this PR fixed in the mahjongd job runner. The documented compat shims
// (pta.Solve, fpg.Build, core.Build, nil-context normalization) carry
// //lint:allow justifications.
//
// Comparing contexts with == or != is flagged too: context identity is not
// a semantic property (context.WithValue(context.Background(), …) is
// semantically background but compares unequal) and the comparison panics
// outright on uncomparable Context implementations. Ask ctx.Done() == nil —
// "can this context ever be cancelled?" — instead.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "forbid context.Background/TODO and context identity comparison in internal library code; " +
		"contexts must be threaded from the caller so deadlines and shutdown propagate",
	Run: runCtxFlow,
}

func runCtxFlow(pass *Pass) {
	if !pass.UnderInternal() {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := calleeOf(pass.Info, n)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
					return true
				}
				if name := fn.Name(); name == "Background" || name == "TODO" {
					pass.Reportf(n.Pos(), "context.%s() in internal library code detaches callees from the caller's deadline and from graceful shutdown; thread the caller's context (a documented compat shim needs a //lint:allow ctxflow justification)", name)
				}
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if isContextType(pass.Info, n.X) && isContextType(pass.Info, n.Y) {
					pass.Reportf(n.Pos(), "contexts compared with %s: context identity is not a semantic property (a value-carrying child of context.Background is still background, and the comparison panics on uncomparable implementations); check ctx.Done() == nil or pass an explicit option", n.Op)
				}
			}
			return true
		})
	}
}
