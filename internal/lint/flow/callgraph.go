package flow

import (
	"go/ast"
	"go/types"
)

// A CallGraph is the package-local static call graph: declared
// functions and methods of one package, with an edge for every direct
// call between them (calls through function values and interfaces are
// not resolved — the analyses built on this ask "is this function in
// the worker's call tree", and the shard workers call their helpers
// directly). Function literals are attributed to the declaration that
// lexically encloses them: a worker's goroutine body belongs to the
// worker.
type CallGraph struct {
	decls   map[*types.Func]*ast.FuncDecl
	callees map[*types.Func][]*types.Func
}

// NewCallGraph builds the call graph of the package's files.
func NewCallGraph(files []*ast.File, info *types.Info) *CallGraph {
	cg := &CallGraph{
		decls:   make(map[*types.Func]*ast.FuncDecl),
		callees: make(map[*types.Func][]*types.Func),
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			cg.decls[fn] = fd
			seen := make(map[*types.Func]bool)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				var id *ast.Ident
				switch fun := ast.Unparen(call.Fun).(type) {
				case *ast.Ident:
					id = fun
				case *ast.SelectorExpr:
					id = fun.Sel
				default:
					return true
				}
				callee, ok := info.Uses[id].(*types.Func)
				if !ok || seen[callee] {
					return true
				}
				seen[callee] = true
				cg.callees[fn] = append(cg.callees[fn], callee)
				return true
			})
		}
	}
	return cg
}

// DeclOf returns the syntax of fn when it is declared in this package.
func (cg *CallGraph) DeclOf(fn *types.Func) *ast.FuncDecl { return cg.decls[fn] }

// ReachableFrom returns the set of package-local functions transitively
// callable from roots (roots included).
func (cg *CallGraph) ReachableFrom(roots []*types.Func) map[*types.Func]bool {
	reach := make(map[*types.Func]bool)
	var stack []*types.Func
	for _, r := range roots {
		if !reach[r] {
			reach[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		fn := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, callee := range cg.callees[fn] {
			if _, local := cg.decls[callee]; local && !reach[callee] {
				reach[callee] = true
				stack = append(stack, callee)
			}
		}
	}
	return reach
}

// MethodsOf returns the declared methods whose receiver's named type is
// typ.
func (cg *CallGraph) MethodsOf(typ *types.Named) []*types.Func {
	var out []*types.Func
	for fn := range cg.decls {
		if RecvNamed(fn) == typ {
			out = append(out, fn)
		}
	}
	return out
}

// RecvNamed returns the named type of fn's receiver, nil for plain
// functions.
func RecvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}
