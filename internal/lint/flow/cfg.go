// Package flow is the dataflow layer under mahjongvet's analyzers: it
// builds per-function control-flow graphs from go/ast + go/types,
// computes reaching definitions over them, and classifies values on a
// small access-path ownership lattice (local / borrowed / sent /
// shared-atomic / shared-guarded).
//
// The existing analyzer suite (PR 4) is syntactic and type-based; the
// invariants that now carry correctness — the parallel solver's
// owner-writes shard discipline, the set-clone handoff over SPSC
// queues, the sched queue-slot lifecycle — are *dataflow* properties:
// whether a use follows a move on some path, whether a release is
// reached on every path, whether a write happens inside the owning
// worker's call tree. This package gives analyzers the machinery to ask
// those questions, in the same stdlib-only style as the rest of
// internal/lint (no x/tools, no SSA: a statement-granular CFG with
// conditional edges is enough for every rule the suite enforces, and is
// two orders of magnitude less code).
//
// Like the paper's heap abstraction, the analyses here are deliberately
// lightweight flow-sensitive approximations over access paths — precise
// enough to turn the type checker into a bug finder, cheap enough to
// run on every `make lint`.
package flow

import (
	"go/ast"
	"go/token"
)

// A Graph is the control-flow graph of one function body. Blocks hold
// straight-line sequences of atomic nodes (simple statements plus the
// condition expressions of branches); composite statements are
// decomposed into blocks and edges, so walking a block's Nodes never
// descends into a nested body.
type Graph struct {
	Blocks []*Block
	// Entry is the first executed block; Exit is the synthetic block
	// every return, panic, and fall-off-the-end edge targets. Exit
	// holds no nodes.
	Entry, Exit *Block
	// Defers lists the function's defer statements in source order.
	// Deferred calls run on every exit path — normal or panicking — so
	// path analyses treat them as a postlude to Exit rather than as
	// ordinary nodes.
	Defers []*ast.DeferStmt

	blockOf map[ast.Node]*Block
}

// An Edge is one control transfer. When Cond is non-nil the edge is
// taken only if Cond evaluates to !Neg — the true branch of `if c` is
// {Cond: c, Neg: false}, the false branch {Cond: c, Neg: true}.
// Switch-case and select edges carry no condition (Cond nil): they
// over-approximate as always-takable.
type Edge struct {
	To   *Block
	Cond ast.Expr
	Neg  bool
}

// A Block is one straight-line sequence: control enters at the first
// node and leaves through Out after the last. Nodes are "atomic" —
// simple statements, declarations, and branch-condition expressions —
// never composite statements with nested bodies.
type Block struct {
	Index int
	Nodes []ast.Node
	Out   []Edge
}

// Succs returns the successor blocks, conditions stripped.
func (b *Block) Succs() []*Block {
	out := make([]*Block, len(b.Out))
	for i, e := range b.Out {
		out[i] = e.To
	}
	return out
}

// BlockOf returns the block holding node n (a node previously placed by
// the builder: a simple statement or a branch condition), or nil.
func (g *Graph) BlockOf(n ast.Node) *Block { return g.blockOf[n] }

// builder carries the construction state: the current block under
// append, and the branch-target stacks that resolve break, continue,
// goto, and fallthrough.
type builder struct {
	g   *Graph
	cur *Block

	// breakTo/continueTo are the innermost targets for unlabeled
	// branch statements; the labeled maps resolve `break L` etc.
	breakTo    []*Block
	continueTo []*Block
	labelBreak map[string]*Block
	labelCont  map[string]*Block
	gotoTo     map[string]*Block
	// pendingGotos holds forward gotos awaiting their label.
	pendingGotos map[string][]*Block
}

// New builds the CFG of body (a function's *ast.BlockStmt). A nil body
// (declaration without definition) yields a graph whose entry falls
// straight to exit.
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{blockOf: make(map[ast.Node]*Block)}
	b := &builder{
		g:            g,
		labelBreak:   make(map[string]*Block),
		labelCont:    make(map[string]*Block),
		gotoTo:       make(map[string]*Block),
		pendingGotos: make(map[string][]*Block),
	}
	g.Entry = b.newBlock()
	g.Exit = b.newBlock()
	b.cur = g.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.jump(g.Exit)
	return g
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// add places an atomic node in the current block.
func (b *builder) add(n ast.Node) {
	if n == nil {
		return
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
	b.g.blockOf[n] = b.cur
}

// jump ends the current block with an unconditional edge to to and
// leaves cur pointing at a fresh (unreachable until linked) block.
func (b *builder) jump(to *Block) {
	b.cur.Out = append(b.cur.Out, Edge{To: to})
	b.cur = b.newBlock()
}

// branch ends the current block with a two-way conditional edge.
func (b *builder) branch(cond ast.Expr, then, els *Block) {
	b.cur.Out = append(b.cur.Out,
		Edge{To: then, Cond: cond},
		Edge{To: els, Cond: cond, Neg: true})
	b.cur = b.newBlock()
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		condBlk := b.cur
		after := b.newBlock()
		then := b.newBlock()
		condBlk.Out = append(condBlk.Out, Edge{To: then, Cond: s.Cond})
		b.cur = then
		b.stmtList(s.Body.List)
		b.jump(after)
		if s.Else != nil {
			els := b.newBlock()
			condBlk.Out = append(condBlk.Out, Edge{To: els, Cond: s.Cond, Neg: true})
			b.cur = els
			b.stmt(s.Else)
			b.jump(after)
		} else {
			condBlk.Out = append(condBlk.Out, Edge{To: after, Cond: s.Cond, Neg: true})
		}
		b.cur = after

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		post := head
		if s.Post != nil {
			post = b.newBlock()
		}
		b.cur.Out = append(b.cur.Out, Edge{To: head})
		b.cur = head
		if s.Cond != nil {
			b.add(s.Cond)
			b.cur.Out = append(b.cur.Out,
				Edge{To: body, Cond: s.Cond},
				Edge{To: after, Cond: s.Cond, Neg: true})
		} else {
			b.cur.Out = append(b.cur.Out, Edge{To: body})
		}
		b.pushLoop(after, post)
		b.cur = body
		b.stmtList(s.Body.List)
		b.popLoop()
		b.jump(post)
		if s.Post != nil {
			b.cur = post
			b.stmt(s.Post)
			b.jump(head)
		}
		b.cur = after

	case *ast.RangeStmt:
		// X is evaluated once on entry; the per-iteration key/value
		// bindings live in the loop head so each iteration re-defines
		// them (range bindings are the head's def events — see
		// DefinesObj).
		b.add(s.X)
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		b.cur.Out = append(b.cur.Out, Edge{To: head})
		b.cur = head
		if s.Key != nil {
			b.add(s.Key)
		}
		if s.Value != nil {
			b.add(s.Value)
		}
		b.cur.Out = append(b.cur.Out, Edge{To: body}, Edge{To: after})
		b.pushLoop(after, head)
		b.cur = body
		b.stmtList(s.Body.List)
		b.popLoop()
		b.jump(head)
		b.cur = after

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.caseBodies(s.Body.List, true)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.caseBodies(s.Body.List, false)

	case *ast.SelectStmt:
		head := b.cur
		after := b.newBlock()
		b.breakTo = append(b.breakTo, after)
		for _, cl := range s.Body.List {
			comm := cl.(*ast.CommClause)
			blk := b.newBlock()
			head.Out = append(head.Out, Edge{To: blk})
			b.cur = blk
			if comm.Comm != nil {
				b.stmt(comm.Comm)
			}
			b.stmtList(comm.Body)
			b.jump(after)
		}
		b.breakTo = b.breakTo[:len(b.breakTo)-1]
		// A select with no default blocks until a case fires, so there
		// is no head→after edge; with a default one of the clause
		// edges is always takable anyway.
		b.cur = after

	case *ast.LabeledStmt:
		name := s.Label.Name
		// Pre-create the break/continue targets so `break L` inside
		// the labeled statement resolves; loops rewire continue below.
		target := b.newBlock()
		b.jump(target)
		b.cur = target
		b.gotoTo[name] = target
		for _, from := range b.pendingGotos[name] {
			from.Out = append(from.Out, Edge{To: target})
		}
		delete(b.pendingGotos, name)
		switch inner := s.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			after := b.newBlock()
			b.labelBreak[name] = after
			if _, isLoop := inner.(*ast.ForStmt); isLoop {
				b.labelCont[name] = target
			}
			if _, isLoop := inner.(*ast.RangeStmt); isLoop {
				b.labelCont[name] = target
			}
			b.stmt(s.Stmt)
			b.jump(after)
			b.cur = after
		default:
			b.stmt(s.Stmt)
		}

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			to := b.branchTarget(s, b.breakTo, b.labelBreak)
			if to != nil {
				b.jump(to)
			}
		case token.CONTINUE:
			to := b.branchTarget(s, b.continueTo, b.labelCont)
			if to != nil {
				b.jump(to)
			}
		case token.GOTO:
			if s.Label != nil {
				if to, ok := b.gotoTo[s.Label.Name]; ok {
					b.jump(to)
				} else {
					from := b.cur
					b.pendingGotos[s.Label.Name] = append(b.pendingGotos[s.Label.Name], from)
					b.cur = b.newBlock()
				}
			}
		case token.FALLTHROUGH:
			// Handled positionally by caseBodies: the clause's jump
			// edge is redirected to the next clause body.
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.g.Exit)

	case *ast.DeferStmt:
		b.add(s)
		b.g.Defers = append(b.g.Defers, s)

	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			b.jump(b.g.Exit)
		}

	case *ast.EmptyStmt:
		// nothing

	default:
		// AssignStmt, DeclStmt, IncDecStmt, SendStmt, GoStmt, …
		b.add(s)
	}
}

// caseBodies lowers the clauses of a switch or type switch: the head
// fans out to every clause body (conditions are over-approximated as
// always-takable), falling through when a clause ends in fallthrough,
// and to after when no default clause exists.
func (b *builder) caseBodies(clauses []ast.Stmt, exprCases bool) {
	head := b.cur
	after := b.newBlock()
	b.breakTo = append(b.breakTo, after)
	bodies := make([]*Block, len(clauses))
	hasDefault := false
	for i := range clauses {
		bodies[i] = b.newBlock()
	}
	for i, cs := range clauses {
		cl := cs.(*ast.CaseClause)
		if cl.List == nil {
			hasDefault = true
		}
		head.Out = append(head.Out, Edge{To: bodies[i]})
		b.cur = bodies[i]
		if exprCases {
			for _, e := range cl.List {
				b.add(e)
			}
		}
		fallsThrough := false
		for _, s := range cl.Body {
			if br, ok := s.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
				continue
			}
			b.stmt(s)
		}
		if fallsThrough && i+1 < len(bodies) {
			b.jump(bodies[i+1])
		} else {
			b.jump(after)
		}
	}
	if !hasDefault {
		head.Out = append(head.Out, Edge{To: after})
	}
	b.breakTo = b.breakTo[:len(b.breakTo)-1]
	b.cur = after
}

func (b *builder) pushLoop(brk, cont *Block) {
	b.breakTo = append(b.breakTo, brk)
	b.continueTo = append(b.continueTo, cont)
}

func (b *builder) popLoop() {
	b.breakTo = b.breakTo[:len(b.breakTo)-1]
	b.continueTo = b.continueTo[:len(b.continueTo)-1]
}

func (b *builder) branchTarget(s *ast.BranchStmt, stack []*Block, labeled map[string]*Block) *Block {
	if s.Label != nil {
		return labeled[s.Label.Name]
	}
	if len(stack) > 0 {
		return stack[len(stack)-1]
	}
	return nil
}

// isPanicCall reports whether e is a call to the panic builtin.
func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}
