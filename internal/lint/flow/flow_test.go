package flow_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"mahjong/internal/lint/flow"
)

// check parses and type-checks one dependency-free source file and
// returns the named function plus the shared type info.
func check(t *testing.T, src, fn string) (*ast.FuncDecl, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "flowtest.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{}
	if _, err := conf.Check("flowtest", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == fn {
			return fd, info
		}
	}
	t.Fatalf("no function %q", fn)
	return nil, nil
}

// findCall returns the statement node whose call target is named name.
func findCall(t *testing.T, g *flow.Graph, info *types.Info, name string) ast.Node {
	t.Helper()
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			found := false
			ast.Inspect(n, func(c ast.Node) bool {
				if call, ok := c.(*ast.CallExpr); ok {
					if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == name {
						found = true
					}
				}
				return !found
			})
			if found {
				return n
			}
		}
	}
	t.Fatalf("no call to %q placed in the graph", name)
	return nil
}

const branchSrc = `package flowtest

func release(x int) {}
func use(x int)     {}

// moveThenBranch mirrors the solver's store-then-return shape: the
// moved path returns before the trailing release.
func moveThenBranch(cond bool, x int) {
	if cond {
		release(x)
		return
	}
	use(x)
}
`

func TestWalkRespectsBranches(t *testing.T) {
	fd, info := check(t, branchSrc, "moveThenBranch")
	g := flow.New(fd.Body)
	rel := findCall(t, g, info, "release")

	// From the release, the only reachable statement is the return —
	// use(x) sits on the other branch.
	var seen []string
	w := &flow.Walk{G: g}
	exit := w.From(rel, func(n ast.Node) bool {
		if _, ok := n.(*ast.ReturnStmt); ok {
			seen = append(seen, "return")
		}
		var obj types.Object
		for id, o := range info.Uses {
			if id.Name == "x" {
				obj = o
				break
			}
		}
		if obj != nil && flow.UsesObj(info, n, obj) {
			seen = append(seen, "use-of-x")
		}
		return true
	})
	if !exit {
		t.Fatalf("release path must reach exit")
	}
	for _, s := range seen {
		if s == "use-of-x" {
			t.Fatalf("walk from release leaked onto the other branch: %v", seen)
		}
	}
}

const loopSrc = `package flowtest

func grab() int    { return 0 }
func send(x int)   {}
func after(x int)  {}

func loopMove(work []int) {
	for range work {
		x := grab()
		send(x)
	}
	var y int
	after(y)
}
`

func TestWalkKillsOnRedefinition(t *testing.T) {
	fd, info := check(t, loopSrc, "loopMove")
	g := flow.New(fd.Body)
	send := findCall(t, g, info, "send")

	var xObj types.Object
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if asg, ok := n.(*ast.AssignStmt); ok && asg.Tok == token.DEFINE {
			if id, ok := asg.Lhs[0].(*ast.Ident); ok && id.Name == "x" {
				xObj = info.Defs[id]
			}
		}
		return true
	})
	if xObj == nil {
		t.Fatal("no def of x")
	}

	// Walking from the send with redefinitions of x as kills: the loop
	// back edge re-defines x, so no reachable node may use it.
	w := &flow.Walk{G: g, Kill: func(n ast.Node) bool { return flow.DefinesObj(info, n, xObj) }}
	usedAfter := false
	reached := w.From(send, func(n ast.Node) bool {
		if flow.UsesObj(info, n, xObj) {
			usedAfter = true
		}
		return true
	})
	if usedAfter {
		t.Fatal("x used after send despite the loop redefinition kill")
	}
	if !reached {
		t.Fatal("exit must stay reachable through the loop-exit edge")
	}
}

const okSrc = `package flowtest

func acquire() (int, bool) { return 0, true }
func free(x int)           {}

func guarded() {
	for {
		x, ok := acquire()
		if !ok {
			return
		}
		free(x)
	}
}
`

func TestEdgeProvesFalsePrunesFailedAcquire(t *testing.T) {
	fd, info := check(t, okSrc, "guarded")
	g := flow.New(fd.Body)
	acq := findCall(t, g, info, "acquire")

	var okObj types.Object
	for id, o := range info.Defs {
		if id.Name == "ok" {
			okObj = o
		}
	}
	if okObj == nil {
		t.Fatal("no def of ok")
	}

	// Without pruning, the !ok return reaches exit release-free; with
	// EdgeProvesFalse pruning, every surviving path frees x first.
	killOnFree := func(n ast.Node) bool {
		found := false
		ast.Inspect(n, func(c ast.Node) bool {
			if call, ok := c.(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "free" {
					found = true
				}
			}
			return !found
		})
		return found
	}
	unpruned := &flow.Walk{G: g, Kill: killOnFree}
	if got := unpruned.From(acq, nil); !got {
		t.Fatal("without pruning the !ok path must reach exit")
	}
	pruned := &flow.Walk{
		G:     g,
		Kill:  killOnFree,
		Prune: func(e flow.Edge) bool { return flow.EdgeProvesFalse(info, e, okObj) },
	}
	if got := pruned.From(acq, nil); got {
		t.Fatal("pruning the proven-false ok edge must cut the leak path")
	}
}

const reachSrc = `package flowtest

func grabSet() int { return 0 }

func classify(p int, cond bool) int {
	v := p
	if cond {
		v = grabSet()
	}
	return v
}
`

func TestReachingDefsAndOwnership(t *testing.T) {
	fd, info := check(t, reachSrc, "classify")
	g := flow.New(fd.Body)
	var params []*ast.Ident
	for _, f := range fd.Type.Params.List {
		params = append(params, f.Names...)
	}
	r := flow.Reach(g, info, params)

	// The v in `return v` must see both definitions: the copy of the
	// parameter and the grabSet call.
	var retUse *ast.Ident
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if ret, ok := n.(*ast.ReturnStmt); ok {
			retUse = ret.Results[0].(*ast.Ident)
		}
		return true
	})
	defs := r.At(retUse)
	if len(defs) != 2 {
		t.Fatalf("got %d reaching defs at return, want 2 (param copy + grabSet): %v", len(defs), defs)
	}

	// Ownership joins to Borrowed: one reaching def copies the
	// parameter, and Borrowed > Local on the escape ladder.
	owners := map[string]bool{"grabSet": true}
	if o := flow.OwnerOf(r, retUse, owners); o != flow.Borrowed {
		t.Fatalf("OwnerOf(v at return) = %v, want borrowed (join of borrowed param and local grab)", o)
	}
}

func TestJoinKeepsMostEscaped(t *testing.T) {
	cases := []struct {
		a, b, want flow.Ownership
	}{
		{flow.Local, flow.Borrowed, flow.Borrowed},
		{flow.Sent, flow.Local, flow.Sent},
		{flow.SharedGuarded, flow.SharedAtomic, flow.SharedAtomic},
		{flow.Local, flow.Local, flow.Local},
	}
	for _, c := range cases {
		if got := flow.Join(c.a, c.b); got != c.want {
			t.Errorf("Join(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}
