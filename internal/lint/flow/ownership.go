package flow

import (
	"go/ast"
	"go/types"
	"strings"
)

// The ownership lattice. Every value an analyzer tracks sits somewhere
// on a five-point escape ladder, ordered by how far the value has
// escaped the current function's control:
//
//	Local < Borrowed < Sent < SharedGuarded < SharedAtomic
//
// Local values were produced here and are exclusively ours (a pool
// grab, a fresh allocation). Borrowed values belong to a caller for the
// duration of the call (parameters). Sent values have been moved away —
// over a shard queue, or into a structure whose owner adopts what is
// stored in it — and must not be touched again. The two Shared states
// describe struct fields accessed concurrently: SharedGuarded under a
// mutex, SharedAtomic through sync/atomic. Join takes the maximum:
// merging control-flow paths keeps the most-escaped state, which is the
// sound direction for every rule built on the lattice.
type Ownership uint8

const (
	// Local: produced in this function from an owned source.
	Local Ownership = iota
	// Borrowed: a caller's value, lent for the duration of the call.
	Borrowed
	// Sent: moved into a queue or adopting structure; later use is a
	// use-after-move.
	Sent
	// SharedGuarded: a field accessed under a mutex.
	SharedGuarded
	// SharedAtomic: a field accessed through sync/atomic; every access
	// must be.
	SharedAtomic
)

func (o Ownership) String() string {
	switch o {
	case Local:
		return "local"
	case Borrowed:
		return "borrowed"
	case Sent:
		return "sent"
	case SharedGuarded:
		return "shared-guarded"
	case SharedAtomic:
		return "shared-atomic"
	}
	return "unknown"
}

// Join merges two lattice points, keeping the most-escaped state.
func Join(a, b Ownership) Ownership {
	if b > a {
		return b
	}
	return a
}

// OwnerOf classifies the ownership of the value a local variable holds
// at one of its uses, by joining the classification of every reaching
// definition: a parameter is Borrowed; a fresh allocation (new, a
// composite-literal address, or a call to an owner-returning function
// named in owners, e.g. "grabSet") is Local; a copy of another local
// follows that local one step. Anything unresolvable is Borrowed — the
// conservative point for the retain/move rules built on this.
func OwnerOf(r *ReachingDefs, use *ast.Ident, owners map[string]bool) Ownership {
	return ownerOf(r, use, owners, 0)
}

func ownerOf(r *ReachingDefs, use *ast.Ident, owners map[string]bool, depth int) Ownership {
	if depth > 4 {
		return Borrowed
	}
	defs := r.At(use)
	if len(defs) == 0 {
		return Borrowed
	}
	o := Local
	for _, d := range defs {
		o = Join(o, classifyDef(r, d, owners, depth))
	}
	return o
}

func classifyDef(r *ReachingDefs, d Def, owners map[string]bool, depth int) Ownership {
	if d.RHS == nil {
		// Parameter, named result, zero-value declaration, or range
		// binding: not produced here.
		if id, ok := d.Node.(*ast.Ident); ok {
			if _, isParam := r.info.Defs[id].(*types.Var); isParam && d.RHS == nil {
				return Borrowed
			}
		}
		return Borrowed
	}
	switch rhs := ast.Unparen(d.RHS).(type) {
	case *ast.CallExpr:
		name := ""
		switch fun := ast.Unparen(rhs.Fun).(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		}
		if owners[name] || name == "new" {
			return Local
		}
		return Borrowed
	case *ast.UnaryExpr:
		if _, ok := ast.Unparen(rhs.X).(*ast.CompositeLit); ok {
			return Local
		}
	case *ast.CompositeLit:
		return Local
	case *ast.Ident:
		return ownerOf(r, rhs, owners, depth+1)
	}
	return Borrowed
}

// PathOf renders the access path of expression e: the root object (a
// local variable, parameter, or package-level var) and the dotted field
// chain from it, with index operations erased ("s.pending[i]" is the
// path s.pending — ownership discipline attaches to the field, not the
// element). ok is false for expressions that are not access paths
// (calls, literals, arithmetic).
func PathOf(info *types.Info, e ast.Expr) (root types.Object, path string, ok bool) {
	var parts []string
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := info.Uses[x]
			if obj == nil {
				obj = info.Defs[x]
			}
			if obj == nil {
				return nil, "", false
			}
			parts = append(parts, x.Name)
			for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
				parts[i], parts[j] = parts[j], parts[i]
			}
			return obj, strings.Join(parts, "."), true
		case *ast.SelectorExpr:
			parts = append(parts, x.Sel.Name)
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil, "", false
		}
	}
}

// FieldOf resolves a selector expression to the struct field it reads
// or writes, unwrapping index and dereference operations around it
// ("&f.sets", "s.pending[i]"). nil when e does not end at a field.
func FieldOf(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
				if f, ok := sel.Obj().(*types.Var); ok {
					return f
				}
			}
			return nil
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}
