package flow

import (
	"go/ast"
	"go/types"
)

// Reaching definitions over the CFG: for every use of a function-local
// variable, which assignments may have produced the value it reads.
// This is the classic gen/kill bitvector analysis at block granularity,
// iterated to fixpoint; uses are then resolved by a single in-block
// scan. Analyzers consume it through ReachingDefs.At — most
// prominently the ownership classifier, which joins the ownership of a
// value's reaching definitions (a set whose defs all come from the
// worker's own pool is Local; one def from a parameter makes it
// Borrowed).

// A Def is one definition event of a local variable.
type Def struct {
	Obj types.Object
	// Node is the defining node: an *ast.AssignStmt, *ast.DeclStmt,
	// range-binding *ast.Ident, or — for parameters and named results —
	// the declaring *ast.Ident itself (a virtual definition at entry).
	Node ast.Node
	// RHS is the defining expression when the definition has one (the
	// matching right-hand side of an assignment), nil for parameters,
	// zero-value declarations, and range bindings.
	RHS ast.Expr
}

// ReachingDefs holds the fixpoint solution for one function.
type ReachingDefs struct {
	g    *Graph
	info *types.Info
	defs []Def
	// defsOf[obj] lists indices into defs.
	defsOf map[types.Object][]int
	// in[b] is the def set live at block b's entry.
	in []bitvec
}

type bitvec []uint64

func newBitvec(n int) bitvec { return make(bitvec, (n+63)/64) }

func (v bitvec) set(i int)      { v[i/64] |= 1 << (i % 64) }
func (v bitvec) clear(i int)    { v[i/64] &^= 1 << (i % 64) }
func (v bitvec) has(i int) bool { return v[i/64]&(1<<(i%64)) != 0 }

// or merges w into v, reporting whether v changed.
func (v bitvec) or(w bitvec) bool {
	changed := false
	for i := range v {
		old := v[i]
		v[i] |= w[i]
		changed = changed || v[i] != old
	}
	return changed
}

// Reach computes reaching definitions for fn's graph g. params are the
// declaring identifiers of the function's parameters and named results,
// which act as virtual definitions at entry.
func Reach(g *Graph, info *types.Info, params []*ast.Ident) *ReachingDefs {
	r := &ReachingDefs{g: g, info: info, defsOf: make(map[types.Object][]int)}
	addDef := func(obj types.Object, node ast.Node, rhs ast.Expr) {
		if obj == nil {
			return
		}
		r.defsOf[obj] = append(r.defsOf[obj], len(r.defs))
		r.defs = append(r.defs, Def{Obj: obj, Node: node, RHS: rhs})
	}
	var entryDefs []int
	for _, p := range params {
		if obj := info.Defs[p]; obj != nil {
			entryDefs = append(entryDefs, len(r.defs))
			addDef(obj, p, nil)
		}
	}
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			r.eachDef(n, func(obj types.Object, rhs ast.Expr) {
				addDef(obj, n, rhs)
			})
		}
	}

	nd := len(r.defs)
	gen := make([]bitvec, len(g.Blocks))
	kill := make([]bitvec, len(g.Blocks))
	r.in = make([]bitvec, len(g.Blocks))
	out := make([]bitvec, len(g.Blocks))
	for i := range g.Blocks {
		gen[i], kill[i] = newBitvec(nd), newBitvec(nd)
		r.in[i], out[i] = newBitvec(nd), newBitvec(nd)
	}
	// Per-block gen/kill: a later def of the same object kills earlier
	// ones (within the block and from outside).
	for bi, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			r.eachDef(n, func(obj types.Object, rhs ast.Expr) {
				for _, di := range r.defsOf[obj] {
					if r.defs[di].Node == n && (rhs == nil || r.defs[di].RHS == rhs) {
						for _, other := range r.defsOf[obj] {
							gen[bi].clear(other)
							kill[bi].set(other)
						}
						gen[bi].set(di)
						kill[bi].clear(di)
						break
					}
				}
			})
		}
	}
	for _, di := range entryDefs {
		r.in[g.Entry.Index].set(di)
	}

	// Fixpoint: out = gen ∪ (in − kill); in = ∪ out(preds).
	changed := true
	for changed {
		changed = false
		for bi, blk := range g.Blocks {
			o := out[bi]
			copy(o, r.in[bi])
			for i := range o {
				o[i] = (o[i] &^ kill[bi][i]) | gen[bi][i]
			}
			for _, e := range blk.Out {
				if r.in[e.To.Index].or(o) {
					changed = true
				}
			}
		}
	}
	return r
}

// eachDef invokes f for every definition event node n carries, pairing
// each defined object with its right-hand side when one exists.
func (r *ReachingDefs) eachDef(n ast.Node, f func(types.Object, ast.Expr)) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		for i, lhs := range n.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			obj := r.info.Defs[id]
			if obj == nil {
				obj = r.info.Uses[id]
			}
			var rhs ast.Expr
			if len(n.Rhs) == len(n.Lhs) {
				rhs = n.Rhs[i]
			} else if len(n.Rhs) == 1 {
				rhs = n.Rhs[0]
			}
			f(obj, rhs)
		}
	case *ast.DeclStmt:
		gen, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gen.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				var rhs ast.Expr
				if i < len(vs.Values) {
					rhs = vs.Values[i]
				}
				f(r.info.Defs[name], rhs)
			}
		}
	case *ast.Ident:
		// Range binding placed in a loop head by the builder.
		if obj := r.info.Defs[n]; obj != nil {
			f(obj, nil)
		} else if obj := r.info.Uses[n]; obj != nil {
			f(obj, nil)
		}
	}
}

// At returns the definitions of use's object that may reach it. use
// must be an identifier inside a node the builder placed (any simple
// statement or branch condition).
func (r *ReachingDefs) At(use *ast.Ident) []Def {
	obj := r.info.Uses[use]
	if obj == nil {
		return nil
	}
	// Locate the placed node holding the use, then replay the block up
	// to it. The innermost containing node wins (a condition expression
	// is placed separately from the statements around it).
	var blk *Block
	var host ast.Node
	for n, b := range r.g.blockOf {
		if n.Pos() <= use.Pos() && use.End() <= n.End() {
			if host == nil || n.End()-n.Pos() < host.End()-host.Pos() {
				host, blk = n, b
			}
		}
	}
	if blk == nil {
		return nil
	}
	hostIdx := 0
	for i, bn := range blk.Nodes {
		if bn == host {
			hostIdx = i
			break
		}
	}
	live := newBitvec(len(r.defs))
	copy(live, r.in[blk.Index])
	for _, n := range blk.Nodes[:hostIdx] {
		r.eachDef(n, func(o types.Object, rhs ast.Expr) {
			if o != obj {
				return
			}
			for _, other := range r.defsOf[obj] {
				live.clear(other)
			}
			for _, di := range r.defsOf[obj] {
				if r.defs[di].Node == n && (rhs == nil || r.defs[di].RHS == rhs) {
					live.set(di)
					break
				}
			}
		})
	}
	var out []Def
	for _, di := range r.defsOf[obj] {
		if live.has(di) {
			out = append(out, r.defs[di])
		}
	}
	return out
}
