package flow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the path-query side of the dataflow layer: forward walks
// over the CFG from a given node, with analyzer-supplied kill
// predicates and edge pruning. The two analyses built on it — "does any
// path from this move reach a use" (sendmove) and "does any path from
// this acquire reach exit without a release" (slotbalance) — are both
// may-path existence questions, which a worklist walk answers exactly
// on the statement-granular graph.

// A Walk visits the nodes reachable after a starting node.
type Walk struct {
	// G is the graph to walk.
	G *Graph
	// Kill stops the current path at a node (the node itself is not
	// visited). Typical kills: a redefinition of the tracked variable,
	// a release of the tracked resource.
	Kill func(ast.Node) bool
	// Prune drops an edge from the walk. Typical use: skipping the
	// branch a boolean guard proves dead for the tracked fact (the
	// `if !ok { return }` after a failed acquire).
	Prune func(Edge) bool
}

// From walks forward from node start (exclusive). visit is called for
// every reachable node until it returns false; reachedExit reports
// whether some un-killed path reached the function exit. Each block is
// entered at most once from its top, which is sound because Kill and
// Prune are path-independent predicates.
func (w *Walk) From(start ast.Node, visit func(ast.Node) bool) (reachedExit bool) {
	blk := w.G.BlockOf(start)
	if blk == nil {
		return false
	}
	// Finish start's own block first, from the node after start.
	idx := 0
	for i, n := range blk.Nodes {
		if n == start {
			idx = i + 1
			break
		}
	}
	seen := make([]bool, len(w.G.Blocks))
	var queue []*Block
	enqueue := func(b *Block) {
		if !seen[b.Index] {
			seen[b.Index] = true
			queue = append(queue, b)
		}
	}
	// scan visits one block's nodes from position from; it reports
	// false when the path was killed inside the block.
	scan := func(b *Block, from int) bool {
		for _, n := range b.Nodes[from:] {
			if w.Kill != nil && w.Kill(n) {
				return false
			}
			if visit != nil && !visit(n) {
				visit = nil // stop visiting, keep computing reachability
			}
		}
		return true
	}
	follow := func(b *Block) {
		for _, e := range b.Out {
			if w.Prune != nil && w.Prune(e) {
				continue
			}
			enqueue(e.To)
		}
	}
	if scan(blk, idx) {
		follow(blk)
	}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		if b == w.G.Exit {
			reachedExit = true
			continue
		}
		if scan(b, 0) {
			follow(b)
		}
	}
	return reachedExit
}

// DefinesObj reports whether node n (re)defines obj: an assignment or
// short declaration with obj on the left-hand side, a var declaration
// of obj, or a range binding of obj (range key/value identifiers are
// placed as loop-head nodes by the builder).
func DefinesObj(info *types.Info, n ast.Node, obj types.Object) bool {
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				if info.Defs[id] == obj || info.Uses[id] == obj {
					return true
				}
			}
		}
	case *ast.DeclStmt:
		gen, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return false
		}
		for _, spec := range gen.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, name := range vs.Names {
				if info.Defs[name] == obj {
					return true
				}
			}
		}
	case *ast.Ident:
		// A bare identifier node is a range binding (see the builder).
		return info.Defs[n] == obj || info.Uses[n] == obj
	}
	return false
}

// UsesObj reports whether any identifier under n reads obj. Identifiers
// that are pure (re)definition sites — left-hand sides of the node when
// it is an assignment — do not count.
func UsesObj(info *types.Info, n ast.Node, obj types.Object) bool {
	lhsIdent := map[*ast.Ident]bool{}
	if asg, ok := n.(*ast.AssignStmt); ok {
		for _, lhs := range asg.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				lhsIdent[id] = true
			}
		}
	}
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if id, ok := c.(*ast.Ident); ok && !lhsIdent[id] && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// EdgeProvesFalse reports whether taking e implies the boolean variable
// obj is false: the edge condition, after stripping negations, is obj
// itself and the polarity works out to false. It is how path walks
// prune the not-acquired branch after a `v, ok := acquire()` pattern
// (`if !ok { return }` — the return path never held the resource).
func EdgeProvesFalse(info *types.Info, e Edge, obj types.Object) bool {
	cond := e.Cond
	neg := e.Neg
	for {
		un, ok := ast.Unparen(cond).(*ast.UnaryExpr)
		if !ok || un.Op != token.NOT {
			break
		}
		cond, neg = un.X, !neg
	}
	id, ok := ast.Unparen(cond).(*ast.Ident)
	if !ok || info.Uses[id] != obj {
		return false
	}
	// The edge is taken when cond evaluates to !neg, and cond is obj —
	// so traversing it proves obj == !neg.
	return neg
}
