package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"mahjong/internal/lint/flow"
)

// This file is the bridge between the analyzer framework and the
// dataflow layer: cached per-function CFGs and reaching-definitions
// solutions on Package (several analyzers ask for the same function's
// graph), and the scanner for the declarative //lint: markers the
// dataflow analyzers key on.

// CFG returns the control-flow graph of fn's body, built on first use
// and cached for the lifetime of the load.
func (p *Package) CFG(fn *ast.FuncDecl) *flow.Graph {
	if p.cfgs == nil {
		p.cfgs = make(map[*ast.FuncDecl]*flow.Graph)
	}
	if g, ok := p.cfgs[fn]; ok {
		return g
	}
	g := flow.New(fn.Body)
	p.cfgs[fn] = g
	return g
}

// Reaching returns the reaching-definitions solution for fn, cached
// like CFG. Parameters and named results act as definitions at entry.
func (p *Package) Reaching(fn *ast.FuncDecl) *flow.ReachingDefs {
	if p.reaches == nil {
		p.reaches = make(map[*ast.FuncDecl]*flow.ReachingDefs)
	}
	if r, ok := p.reaches[fn]; ok {
		return r
	}
	var params []*ast.Ident
	collect := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			params = append(params, f.Names...)
		}
	}
	collect(fn.Recv)
	collect(fn.Type.Params)
	collect(fn.Type.Results)
	r := flow.Reach(p.CFG(fn), p.Info, params)
	p.reaches[fn] = r
	return r
}

// Declarative dataflow markers. The shard-ownership and move rules need
// to know which declarations carry which role; rather than hard-coding
// identifier names, the code under analysis declares them with marker
// comments, the same way //lint:allow declares suppressions:
//
//	//lint:shard-worker       on a type — its methods are the worker
//	                          call tree of a parallel phase
//	//lint:owner-writes       on a struct field — during a phase only
//	                          the owning worker writes it
//	//lint:phase-sequential   on a function — must never be reachable
//	                          from a shard worker (it mutates state the
//	                          phase froze)
//	//lint:adopts             on a struct field — storing into it
//	                          transfers ownership of the stored value
//
// Text after the marker is free-form justification, encouraged but not
// required (unlike //lint:allow, a marker adds checking rather than
// removing it).
type markers struct {
	ownedFields map[types.Object]bool
	adoptFields map[types.Object]bool
	workerTypes map[*types.Named]bool
	seqFuncs    map[*types.Func]bool
}

func (m *markers) empty() bool {
	return len(m.ownedFields) == 0 && len(m.adoptFields) == 0 &&
		len(m.workerTypes) == 0 && len(m.seqFuncs) == 0
}

// hasMarker reports whether any comment in the groups carries
// //lint:<name>.
func hasMarker(name string, groups ...*ast.CommentGroup) bool {
	want := "//lint:" + name
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			if c.Text == want || strings.HasPrefix(c.Text, want+" ") {
				return true
			}
		}
	}
	return false
}

// collectMarkers scans the package's declarations for dataflow markers.
func collectMarkers(pass *Pass) *markers {
	m := &markers{
		ownedFields: make(map[types.Object]bool),
		adoptFields: make(map[types.Object]bool),
		workerTypes: make(map[*types.Named]bool),
		seqFuncs:    make(map[*types.Func]bool),
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch decl := decl.(type) {
			case *ast.FuncDecl:
				if hasMarker("phase-sequential", decl.Doc) {
					if fn, ok := pass.Info.Defs[decl.Name].(*types.Func); ok {
						m.seqFuncs[fn] = true
					}
				}
			case *ast.GenDecl:
				for _, spec := range decl.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if hasMarker("shard-worker", decl.Doc, ts.Doc, ts.Comment) {
						if obj, ok := pass.Info.Defs[ts.Name].(*types.TypeName); ok {
							if named, ok := obj.Type().(*types.Named); ok {
								m.workerTypes[named] = true
							}
						}
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, field := range st.Fields.List {
						owned := hasMarker("owner-writes", field.Doc, field.Comment)
						adopts := hasMarker("adopts", field.Doc, field.Comment)
						if !owned && !adopts {
							continue
						}
						for _, name := range field.Names {
							obj := pass.Info.Defs[name]
							if obj == nil {
								continue
							}
							if owned {
								m.ownedFields[obj] = true
							}
							if adopts {
								m.adoptFields[obj] = true
							}
						}
					}
				}
			}
		}
	}
	return m
}
