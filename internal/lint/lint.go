// Package lint is mahjongvet's analysis framework: a small, dependency-free
// reimplementation of the golang.org/x/tools/go/analysis surface, specialized
// for this module's project-specific invariants.
//
// Mahjong's central guarantee — merging type-consistent objects preserves the
// call graph — only holds if the implementation honors invariants the
// compiler cannot see: deterministic persist/export output (the daemon's
// cache keys hash it), panic-recovery seams at every stage boundary,
// borrowed-bitset discipline in the solver hot path, and threaded
// cancellation. The analyzers in this package (see Analyzers) encode those
// invariants as machine-checked static analyses; cmd/mahjongvet is the
// multichecker driver and `make lint` runs it over the whole module.
//
// The framework is stdlib-only on purpose: the build environment forbids new
// module dependencies, so packages are loaded through `go list -export` and
// type-checked with go/types against the toolchain's own export data (see
// Load). The Analyzer/Pass API deliberately mirrors go/analysis so the suite
// can migrate to x/tools (and `go vet -vettool`) without rewriting analyzers
// if vendoring that dependency ever becomes possible.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check. Exactly one of Run (invoked
// once per loaded package) or RunModule (invoked once over the whole load,
// for cross-package registry checks) must be set.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //lint:allow comments.
	Name string
	// Doc is the one-paragraph description shown by `mahjongvet -list`.
	Doc string
	// Run analyzes a single package.
	Run func(*Pass)
	// RunModule analyzes all loaded packages together.
	RunModule func(*ModulePass)
}

// A Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos     token.Position
	Message string
	Check   string // the reporting analyzer's name
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Check)
}

// A Pass carries one package through one analyzer.
type Pass struct {
	*Package
	// Forced marks a linttest fixture run: scope predicates (InScope,
	// UnderInternal) answer true so fixtures under testdata exercise
	// analyzers that otherwise key on real module paths.
	Forced bool

	check string
	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
		Check:   p.check,
	})
}

// InScope reports whether the package under analysis is one of paths (or the
// pass is a forced fixture run).
func (p *Pass) InScope(paths ...string) bool {
	if p.Forced {
		return true
	}
	for _, path := range paths {
		if p.Path == path {
			return true
		}
	}
	return false
}

// UnderInternal reports whether the package lives under an internal/ tree
// (library code, as opposed to cmd/, examples/, or the public facade).
func (p *Pass) UnderInternal() bool {
	return p.Forced || strings.Contains(p.Path, "/internal/") || strings.HasPrefix(p.Path, "internal/")
}

// A ModulePass carries the whole load through a RunModule analyzer.
type ModulePass struct {
	Fset *token.FileSet
	Pkgs []*Package
	// Forced marks a linttest fixture run (see Pass.Forced).
	Forced bool

	check string
	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (m *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	*m.diags = append(*m.diags, Diagnostic{
		Pos:     m.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
		Check:   m.check,
	})
}

// Analyzers returns mahjongvet's analyzer suite: the five syntactic
// invariant checks, plus the four concurrency-ownership analyzers built
// on the internal/lint/flow dataflow layer.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		CtxFlow, RecoverSeam, BitsetAlias, MapDeterminism, StageHook,
		ShardOwner, AtomicMix, SendMove, SlotBalance,
	}
}

// RunAnalyzers runs analyzers over pkgs, applies //lint:allow suppressions,
// and returns the surviving diagnostics sorted by position. forced marks a
// linttest fixture run (see Pass.Forced).
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer, forced bool) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		switch {
		case a.Run != nil:
			for _, pkg := range pkgs {
				a.Run(&Pass{Package: pkg, Forced: forced, check: a.Name, diags: &diags})
			}
		case a.RunModule != nil:
			var fset *token.FileSet
			if len(pkgs) > 0 {
				fset = pkgs[0].Fset
			}
			a.RunModule(&ModulePass{Fset: fset, Pkgs: pkgs, Forced: forced, check: a.Name, diags: &diags})
		}
	}
	diags = applyAllows(pkgs, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return diags
}

// allowKey identifies one (file, line, analyzer) suppression.
type allowKey struct {
	file  string
	line  int
	check string
}

// applyAllows drops diagnostics suppressed by a justified
//
//	//lint:allow <analyzer> <justification>
//
// comment on the same line or the line directly above. An allow without a
// justification suppresses nothing and is itself reported: the comment is
// the audit trail for why the invariant may be broken at that site. The
// analyzer name must exist in the registry — a typo would otherwise create
// a dead suppression that silently stops guarding nothing, so unknown
// names are reported too (validated against the full suite, not the -run
// subset, so partial runs don't flag allows for analyzers they skipped).
func applyAllows(pkgs []*Package, diags []Diagnostic) []Diagnostic {
	known := make(map[string]bool)
	var names []string
	for _, a := range Analyzers() {
		known[a.Name] = true
		names = append(names, a.Name)
	}
	allowed := make(map[allowKey]bool)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, "//lint:allow")
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Slash)
					fields := strings.Fields(rest)
					if len(fields) < 2 {
						diags = append(diags, Diagnostic{
							Pos:     pos,
							Message: "//lint:allow requires an analyzer name and a justification: //lint:allow <analyzer> <why this site may break the invariant>",
							Check:   "lint",
						})
						continue
					}
					if !known[fields[0]] {
						diags = append(diags, Diagnostic{
							Pos:     pos,
							Message: fmt.Sprintf("//lint:allow names unknown analyzer %q — the suppression is dead and guards nothing (known: %s)", fields[0], strings.Join(names, ", ")),
							Check:   "lint",
						})
						continue
					}
					allowed[allowKey{pos.Filename, pos.Line, fields[0]}] = true
					allowed[allowKey{pos.Filename, pos.Line + 1, fields[0]}] = true
				}
			}
		}
	}
	if len(allowed) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		if !allowed[allowKey{d.Pos.Filename, d.Pos.Line, d.Check}] {
			kept = append(kept, d)
		}
	}
	return kept
}
