package lint_test

import (
	"strings"
	"testing"

	"mahjong/internal/lint"
	"mahjong/internal/lint/linttest"
)

func TestCtxFlow(t *testing.T) {
	linttest.Run(t, ".", []*lint.Analyzer{lint.CtxFlow}, "./testdata/src/ctxflow")
}

func TestRecoverSeam(t *testing.T) {
	linttest.Run(t, ".", []*lint.Analyzer{lint.RecoverSeam}, "./testdata/src/recoverseam/...")
}

func TestBitsetAlias(t *testing.T) {
	linttest.Run(t, ".", []*lint.Analyzer{lint.BitsetAlias}, "./testdata/src/bitsetalias")
}

func TestMapDeterminism(t *testing.T) {
	linttest.Run(t, ".", []*lint.Analyzer{lint.MapDeterminism}, "./testdata/src/mapdeterminism")
}

func TestShardOwner(t *testing.T) {
	linttest.Run(t, ".", []*lint.Analyzer{lint.ShardOwner}, "./testdata/src/shardowner")
}

func TestAtomicMix(t *testing.T) {
	linttest.Run(t, ".", []*lint.Analyzer{lint.AtomicMix}, "./testdata/src/atomicmix")
}

func TestSendMove(t *testing.T) {
	linttest.Run(t, ".", []*lint.Analyzer{lint.SendMove}, "./testdata/src/sendmove")
}

func TestSlotBalance(t *testing.T) {
	linttest.Run(t, ".", []*lint.Analyzer{lint.SlotBalance}, "./testdata/src/slotbalance")
}

func TestStageHook(t *testing.T) {
	linttest.Run(t, ".", []*lint.Analyzer{lint.StageHook}, "./testdata/src/stagehook/...")
}

func TestStageHookMissingRegistry(t *testing.T) {
	linttest.Run(t, ".", []*lint.Analyzer{lint.StageHook}, "./testdata/src/stagehooknoreg/...")
}

// TestAllowJustification asserts on the //lint:allow mechanism directly: a
// justified allow suppresses the finding on its line (or the line below),
// while an unjustified allow suppresses nothing and is itself reported. The
// fixture cannot express this with want comments — the allow comment is the
// line's one comment — so the diagnostics are checked here.
func TestAllowJustification(t *testing.T) {
	_, diags := linttest.Analyze(t, ".", []*lint.Analyzer{lint.CtxFlow}, "./testdata/src/allow")
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want exactly 2 (unjustified allow + unsuppressed finding):\n%v", len(diags), diags)
	}
	var sawAllow, sawCtxflow bool
	for _, d := range diags {
		switch d.Check {
		case "lint":
			if !strings.Contains(d.Message, "justification") {
				t.Errorf("lint diagnostic does not explain the missing justification: %s", d.Message)
			}
			sawAllow = true
		case "ctxflow":
			sawCtxflow = true
		default:
			t.Errorf("unexpected check %q: %s", d.Check, d.Message)
		}
	}
	if !sawAllow || !sawCtxflow {
		t.Fatalf("want one lint and one ctxflow diagnostic, got %v", diags)
	}
}

// TestAllowUnknownAnalyzer asserts that an //lint:allow naming a
// nonexistent analyzer is reported as a dead suppression instead of
// silently disabling nothing — the typo'd allow must not swallow the
// finding it sat next to, and a justified allow with a correct name
// still suppresses.
func TestAllowUnknownAnalyzer(t *testing.T) {
	_, diags := linttest.Analyze(t, ".", []*lint.Analyzer{lint.CtxFlow}, "./testdata/src/allowunknown")
	var deadAllows, ctxflow int
	for _, d := range diags {
		switch d.Check {
		case "lint":
			if !strings.Contains(d.Message, "unknown analyzer") {
				t.Errorf("lint diagnostic does not name the unknown analyzer: %s", d.Message)
			}
			if !strings.Contains(d.Message, "known:") {
				t.Errorf("lint diagnostic does not list the known analyzers: %s", d.Message)
			}
			deadAllows++
		case "ctxflow":
			ctxflow++
		default:
			t.Errorf("unexpected check %q: %s", d.Check, d.Message)
		}
	}
	if deadAllows != 2 || ctxflow != 1 {
		t.Fatalf("got %d dead-allow and %d ctxflow diagnostics, want 2 and 1:\n%v", deadAllows, ctxflow, diags)
	}
}

// TestAnalyzersWellFormed guards the suite's own registry: every analyzer
// has a name, documentation, and exactly one run hook — the properties the
// driver and the allow mechanism rely on.
func TestAnalyzersWellFormed(t *testing.T) {
	seen := make(map[string]bool)
	for _, a := range lint.Analyzers() {
		if a.Name == "" || a.Doc == "" {
			t.Errorf("analyzer %+v lacks a name or doc", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if (a.Run == nil) == (a.RunModule == nil) {
			t.Errorf("analyzer %s must set exactly one of Run and RunModule", a.Name)
		}
	}
	for _, want := range []string{
		"ctxflow", "recoverseam", "bitsetalias", "mapdeterminism", "stagehook",
		"shardowner", "atomicmix", "sendmove", "slotbalance",
	} {
		if !seen[want] {
			t.Errorf("analyzer %s missing from Analyzers()", want)
		}
	}
}
