// Package linttest verifies lint analyzers against testdata fixtures, in the
// style of golang.org/x/tools/go/analysis/analysistest: fixture source lines
// carry
//
//	code under test // want "regexp" "another regexp"
//
// comments naming, as regular expressions, the diagnostic messages the
// analyzers must report on that line. Every diagnostic must match an
// expectation on its line and every expectation must be matched by a
// diagnostic; either mismatch fails the test.
//
// Fixtures run with lint's Forced flag set, so scope predicates that key on
// real module import paths (Pass.InScope, Pass.UnderInternal) answer true for
// packages under testdata.
package linttest

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"mahjong/internal/lint"
)

// quotedRE matches one Go-quoted string literal inside a want comment.
var quotedRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// expectation is one want pattern awaiting a matching diagnostic.
type expectation struct {
	re       *regexp.Regexp
	raw      string
	consumed bool
}

// Run loads the packages matching patterns (resolved relative to dir, which
// is relative to the test's working directory), runs analyzers over them with
// fixture scoping forced, and matches the resulting diagnostics against the
// fixtures' want expectations.
func Run(t *testing.T, dir string, analyzers []*lint.Analyzer, patterns ...string) {
	t.Helper()
	pkgs, diags := Analyze(t, dir, analyzers, patterns...)

	wants := make(map[string][]*expectation)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					idx := strings.Index(c.Text, "// want ")
					if idx < 0 {
						continue
					}
					pos := pkg.Fset.Position(c.Slash)
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					quoted := quotedRE.FindAllString(c.Text[idx:], -1)
					if len(quoted) == 0 {
						t.Fatalf("%s: want comment carries no quoted pattern: %s", key, c.Text)
					}
					for _, q := range quoted {
						pat, err := strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s: unquoting want pattern %s: %v", key, q, err)
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: compiling want pattern %q: %v", key, pat, err)
						}
						wants[key] = append(wants[key], &expectation{re: re, raw: pat})
					}
				}
			}
		}
	}

	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.consumed && w.re.MatchString(d.Message) {
				w.consumed = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s: %s [%s]", key, d.Message, d.Check)
		}
	}

	keys := make([]string, 0, len(wants))
	for key := range wants {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		for _, w := range wants[key] {
			if !w.consumed {
				t.Errorf("missing diagnostic at %s: no finding matched %q", key, w.raw)
			}
		}
	}
}

// Analyze loads the fixture packages and returns them along with the
// diagnostics the analyzers produce (allow suppression applied, positions
// sorted). Tests that assert on diagnostics directly — rather than through
// want comments — use this; Run is the want-comment front end.
func Analyze(t *testing.T, dir string, analyzers []*lint.Analyzer, patterns ...string) ([]*lint.Package, []lint.Diagnostic) {
	t.Helper()
	pkgs, err := lint.Load(dir, patterns...)
	if err != nil {
		t.Fatalf("loading fixtures %v: %v", patterns, err)
	}
	return pkgs, lint.RunAnalyzers(pkgs, analyzers, true)
}
