package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"mahjong/internal/lint/flow"
)

// A Package is one type-checked package of the load: syntax plus full type
// information, the unit a per-package analyzer sees.
type Package struct {
	Path  string // import path
	Name  string // package name
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// Lazily built dataflow caches (see flowpass.go).
	cfgs    map[*ast.FuncDecl]*flow.Graph
	reaches map[*ast.FuncDecl]*flow.ReachingDefs
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
}

// Load type-checks the packages matching patterns (resolved relative to dir)
// and returns them in dependency order, ready for analysis.
//
// The loader is deliberately stdlib-only: it shells out to `go list -export
// -deps` for package metadata and export-data locations, parses the matched
// packages from source, and type-checks them with go/types, importing
// dependencies (the standard library included) through the toolchain's own
// export data. Only non-test GoFiles are analyzed — tests routinely and
// legitimately break the pipeline invariants (context.Background in tests is
// fine; fault-injection tests panic on purpose).
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Name,Dir,GoFiles,Export,Standard,DepOnly",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listedPkg
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("no packages matched %s", strings.Join(patterns, " "))
	}

	fset := token.NewFileSet()
	imp := &loadImporter{
		exports: exports,
		sources: make(map[string]*types.Package),
	}
	imp.gc = importer.ForCompiler(fset, "gc", imp.lookup)

	var pkgs []*Package
	// `go list -deps` emits dependencies before dependents, so by the time a
	// package is checked every module-internal import is already in sources.
	for _, t := range targets {
		files := make([]*ast.File, 0, len(t.GoFiles))
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %v", filepath.Join(t.Dir, name), err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Implicits:  make(map[ast.Node]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", t.ImportPath, err)
		}
		imp.sources[t.ImportPath] = tpkg
		pkgs = append(pkgs, &Package{
			Path:  t.ImportPath,
			Name:  tpkg.Name(),
			Fset:  fset,
			Files: files,
			Types: tpkg,
			Info:  info,
		})
	}
	return pkgs, nil
}

// loadImporter resolves imports during type-checking: packages already
// checked from source are returned directly (keeping object identity
// consistent across the load); everything else — the standard library and
// module packages outside the pattern — comes from compiler export data.
type loadImporter struct {
	exports map[string]string
	sources map[string]*types.Package
	gc      types.Importer
}

func (l *loadImporter) lookup(path string) (io.ReadCloser, error) {
	file, ok := l.exports[path]
	if !ok {
		return nil, fmt.Errorf("no export data recorded for %q", path)
	}
	return os.Open(file)
}

func (l *loadImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := l.sources[path]; ok {
		return p, nil
	}
	return l.gc.Import(path)
}
