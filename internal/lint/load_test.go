package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule materializes a synthetic module under a temp dir:
// files maps module-relative paths to contents.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for rel, content := range files {
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestLoadMultiPackageModule drives Load end to end over a synthetic
// two-package module: both packages come back in dependency order with
// full type information, the standard library resolves through export
// data, and cross-package objects keep source identity (the dependency's
// *types.Package is the same pointer whether seen as a target or as an
// import of the dependent).
func TestLoadMultiPackageModule(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module example.com/synth\n\ngo 1.21\n",
		"sub/sub.go": `package sub

// T is consumed across the package boundary.
type T struct{ N int }

func Make(n int) T { return T{N: n} }
`,
		"app/app.go": `package app

import (
	"fmt"

	"example.com/synth/sub"
)

func Describe(n int) string {
	v := sub.Make(n)
	return fmt.Sprintf("%d", v.N)
}
`,
	})
	pkgs, err := Load(dir, "./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("got %d packages, want 2: %v", len(pkgs), pkgs)
	}
	// go list -deps order: dependencies before dependents.
	if pkgs[0].Path != "example.com/synth/sub" || pkgs[1].Path != "example.com/synth/app" {
		t.Fatalf("unexpected package order: %s, %s", pkgs[0].Path, pkgs[1].Path)
	}
	sub, app := pkgs[0], pkgs[1]
	if sub.Name != "sub" || app.Name != "app" {
		t.Fatalf("unexpected package names: %q, %q", sub.Name, app.Name)
	}
	if len(app.Files) != 1 || app.Info == nil || app.Types == nil {
		t.Fatalf("app package not fully populated: %+v", app)
	}
	// Source identity across the load: app's view of sub must be the
	// checked-from-source package, not a parallel export-data copy —
	// analyzers compare types.Objects across packages.
	for _, imp := range app.Types.Imports() {
		if imp.Path() == "example.com/synth/sub" && imp != sub.Types {
			t.Fatalf("app imports a different *types.Package for sub than the load returned")
		}
	}
	if obj := sub.Types.Scope().Lookup("Make"); obj == nil {
		t.Fatalf("sub.Make missing from the checked package scope")
	}
}

// TestLoadVendoredPackage exercises the vendor path: a dependency that
// exists only under vendor/ must resolve through the toolchain's export
// data like any other out-of-pattern import.
func TestLoadVendoredPackage(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module example.com/synth\n\ngo 1.21\n\n" +
			"require example.com/vdep v0.0.0-00010101000000-000000000000\n",
		"vendor/modules.txt": "# example.com/vdep v0.0.0-00010101000000-000000000000\n" +
			"## explicit; go 1.21\nexample.com/vdep\n",
		"vendor/example.com/vdep/vdep.go": "package vdep\n\nfunc Seven() int { return 7 }\n",
		"app/app.go": `package app

import "example.com/vdep"

var X = vdep.Seven()
`,
	})
	pkgs, err := Load(dir, "./app")
	if err != nil {
		t.Fatalf("Load with vendored dependency: %v", err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "example.com/synth/app" {
		t.Fatalf("got %v, want just example.com/synth/app (vendor dirs are dep-only)", pkgs)
	}
	x := pkgs[0].Types.Scope().Lookup("X")
	if x == nil || x.Type().String() != "int" {
		t.Fatalf("X did not type-check against the vendored package: %v", x)
	}
}

// TestLoadNoMatch: patterns that resolve to zero analyzable module
// packages are an error, not an empty analysis that would vacuously
// pass CI. A standard-library pattern exercises Load's own filter — go
// list resolves "fmt" happily, but std packages are never targets.
func TestLoadNoMatch(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module example.com/synth\n\ngo 1.21\n",
		"a/a.go": "package a\n",
	})
	if _, err := Load(dir, "fmt"); err == nil {
		t.Fatal("Load matched nothing analyzable but returned no error")
	} else if !strings.Contains(err.Error(), "no packages matched") {
		t.Fatalf("unexpected error for empty match: %v", err)
	}
	// A pattern go list itself rejects surfaces the go list failure.
	if _, err := Load(dir, "./nosuchdir/..."); err == nil || !strings.Contains(err.Error(), "go list") {
		t.Fatalf("unexpected error for unresolvable pattern: %v", err)
	}
}

// TestLoadBrokenDependency: a dependency that fails to compile has no
// export data to type-check the target against; the go list failure
// surfaces with the compiler's own message.
func TestLoadBrokenDependency(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":           "module example.com/synth\n\ngo 1.21\n",
		"broken/broken.go": "package broken\n\nfunc Bad() int { return \"x\" }\n",
		"app/app.go":       "package app\n\nimport \"example.com/synth/broken\"\n\nvar X = broken.Bad()\n",
	})
	_, err := Load(dir, "./app")
	if err == nil {
		t.Fatal("Load of a target with a broken dependency must fail")
	}
	if !strings.Contains(err.Error(), "go list") || !strings.Contains(err.Error(), "broken") {
		t.Fatalf("error does not surface the go list build failure: %v", err)
	}
}

// TestLoadImporterMissingExport unit-tests the importer's lookup error:
// an import path go list recorded no export data for (a build that was
// skipped or failed upstream) must fail with a diagnosable message, not
// a nil reader.
func TestLoadImporterMissingExport(t *testing.T) {
	imp := &loadImporter{exports: map[string]string{}}
	if _, err := imp.lookup("example.com/ghost"); err == nil {
		t.Fatal("lookup of an unrecorded path must fail")
	} else if !strings.Contains(err.Error(), `no export data recorded for "example.com/ghost"`) {
		t.Fatalf("unexpected lookup error: %v", err)
	}
}
