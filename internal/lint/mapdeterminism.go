package lint

import (
	"go/ast"
	"go/types"
)

// MapDeterminism guards the canonicalization that mahjongd's abstraction
// cache depends on: cache keys are content hashes of Save/export output, and
// /metrics is scraped and diffed, so every byte of that output must be a
// pure function of the analyzed program — never of Go's randomized map
// iteration order.
//
// In the output-producing packages (internal/core's persist layer,
// internal/export, internal/server), the analyzer flags `for … range m` over
// a map when the loop body
//
//   - appends to a slice that is never passed to a sort.* / slices.Sort*
//     call later in the same function (the collect-then-sort idiom is the
//     sanctioned pattern, as in core.(*Result).Save), or
//
//   - writes directly to an encoder or writer (fmt.Fprint*, Encode, Write,
//     WriteString): no later sort can repair bytes already emitted in map
//     order.
//
// Iteration that only fills another map or aggregates order-independent
// values (sums, counters) is not flagged.
var MapDeterminism = &Analyzer{
	Name: "mapdeterminism",
	Doc: "map iteration feeding Save/export//metrics output must be canonicalized " +
		"(collect, sort, then emit); cache keys hash that output",
	Run: runMapDeterminism,
}

func runMapDeterminism(pass *Pass) {
	if !pass.InScope("mahjong/internal/core", "mahjong/internal/export", "mahjong/internal/server") {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkMapLoops(pass, fn)
		}
	}
}

func checkMapLoops(pass *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.Info.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapLoopBody(pass, fn, rng)
		return true
	})
}

func checkMapLoopBody(pass *Pass, fn *ast.FuncDecl, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok {
					continue
				}
				id, ok := ast.Unparen(call.Fun).(*ast.Ident)
				if !ok || id.Name != "append" {
					continue
				}
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
					continue
				}
				if i >= len(n.Lhs) {
					continue
				}
				target := n.Lhs[i]
				if !sortedLater(pass, fn, rng, target) {
					pass.Reportf(n.Pos(), "%s accumulates in map-iteration order and is never sorted afterwards in %s: persisted/exported output built from it is nondeterministic, which breaks cache keys and diffable /metrics (collect, sort.*, then emit)", types.ExprString(target), fn.Name.Name)
				}
			}
		case *ast.CallExpr:
			if reportDirectEmit(pass, n) {
				return false
			}
		}
		return true
	})
}

// sortedLater reports whether target is passed to a sort.* or slices.Sort*
// call after the range loop, within the same function.
func sortedLater(pass *Pass, fn *ast.FuncDecl, rng *ast.RangeStmt, target ast.Expr) bool {
	want := types.ExprString(target)
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		callee := calleeOf(pass.Info, call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		if p := callee.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if types.ExprString(arg) == want {
				found = true
			}
		}
		return !found
	})
	return found
}

// reportDirectEmit flags calls inside a map loop that push bytes straight to
// an encoder or writer.
func reportDirectEmit(pass *Pass, call *ast.CallExpr) bool {
	callee := calleeOf(pass.Info, call)
	if callee == nil {
		return false
	}
	name := callee.Name()
	if pkg := callee.Pkg(); pkg != nil && pkg.Path() == "fmt" {
		if name == "Fprintf" || name == "Fprintln" || name == "Fprint" {
			pass.Reportf(call.Pos(), "fmt.%s inside map iteration emits bytes in map order; no later sort can canonicalize them — collect into a slice, sort, then write", name)
			return true
		}
		return false
	}
	if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
		switch name {
		case "Encode", "Write", "WriteString", "WriteByte", "WriteRune":
			pass.Reportf(call.Pos(), "%s inside map iteration emits bytes in map order; no later sort can canonicalize them — collect into a slice, sort, then write", name)
			return true
		}
	}
	return false
}
