package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// RecoverSeam enforces the panic-isolation contract of docs/ROBUSTNESS.md:
// one poisoned program fails one job, never the process, and the failing
// stage stays attributable.
//
// Three checks:
//
//  1. Entry points — every exported package-level function in internal/pta,
//     internal/fpg, internal/core, and internal/clients that takes a
//     context.Context and returns an error is a pipeline stage boundary and
//     must install `defer failure.Recover(stage, &err)` on its named error
//     result, so an escaping panic becomes a typed *mahjong.InternalError.
//
//  2. Recovered values — in the stage packages and the server, a deferred
//     recover() whose value is assigned to an error variable must wrap it
//     with failure.AsInternal (or assign through failure.Recover): a raw
//     `err = rec.(error)`-style assignment loses the stage name and the
//     stack that /metrics and degradation decisions depend on.
//
//  3. Stage names — everywhere in the module, the stage argument of
//     failure.Recover/failure.AsInternal and the Stage field of a
//     failure.InternalError literal must be a constant matching the
//     `pkg.func` convention of docs/ROBUSTNESS.md ("pta.solve",
//     "core.build", …), with the package segment agreeing with the package
//     the seam guards.
var RecoverSeam = &Analyzer{
	Name: "recoverseam",
	Doc: "every pipeline entry point defers failure.Recover with a canonical stage name; " +
		"recovered panics are never assigned to errors without failure.AsInternal",
	Run: runRecoverSeam,
}

// stagePackages are the packages whose exported context-taking entry points
// must carry a stage guard, and whose deferred recovers are audited.
var stagePackages = map[string]string{
	"pta":     "mahjong/internal/pta",
	"fpg":     "mahjong/internal/fpg",
	"core":    "mahjong/internal/core",
	"clients": "mahjong/internal/clients",
	"server":  "mahjong/internal/server",
}

// stageNameRE is the docs/ROBUSTNESS.md naming convention: a stage-package
// segment, a dot, and a lowercase seam name ("pta.solve", "server.cache.load").
var stageNameRE = regexp.MustCompile(`^(pta|fpg|core|automata|clients|server|delta)\.[a-z][a-z.]*[a-z]$`)

func runRecoverSeam(pass *Pass) {
	// The failure and faultinject packages are the recovery mechanism, not
	// seams: they forward a caller-supplied stage parameter, which is not a
	// constant and is validated at the caller instead.
	if pass.Name == "failure" || pass.Name == "faultinject" {
		return
	}
	inStagePkg := false
	if path, ok := stagePackages[pass.Name]; ok {
		inStagePkg = pass.Forced || pass.Path == path
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if inStagePkg && pass.Name != "server" {
				checkEntryPoint(pass, fn)
			}
			if inStagePkg {
				checkDeferredRecovers(pass, fn)
			}
		}
		// Stage-name convention holds module-wide: the facade and the
		// automata package install guards for stages they do not own.
		ast.Inspect(f, func(n ast.Node) bool {
			checkStageNames(pass, n)
			return true
		})
	}
}

// checkEntryPoint enforces check 1 on one declaration.
func checkEntryPoint(pass *Pass, fn *ast.FuncDecl) {
	if fn.Recv != nil || !fn.Name.IsExported() {
		return
	}
	sig, ok := pass.Info.Defs[fn.Name].Type().(*types.Signature)
	if !ok || !hasContextParam(sig) {
		return
	}
	errResult := namedErrorResult(sig)
	if !resultsIncludeError(sig) {
		return
	}
	if errResult == nil {
		pass.Reportf(fn.Name.Pos(), "entry point %s.%s must name its error result so a deferred failure.Recover can assign the recovered panic to it", pass.Name, fn.Name.Name)
		return
	}
	for _, stmt := range fn.Body.List {
		def, ok := stmt.(*ast.DeferStmt)
		if !ok {
			continue
		}
		callee := calleeOf(pass.Info, def.Call)
		if callee == nil || !strings.HasPrefix(callee.Name(), "Recover") || !fromPackage(callee, "failure", "mahjong/internal/failure") {
			continue
		}
		if len(def.Call.Args) >= 2 {
			checkRecoverTarget(pass, def.Call.Args[1], errResult)
		}
		// The stage argument itself is validated by the module-wide
		// stage-name walk, which sees this same call expression.
		return // guarded
	}
	pass.Reportf(fn.Name.Pos(), "exported entry point %s.%s takes a context and returns an error but never defers failure.Recover*: an escaping panic would unwind the caller instead of failing one job (docs/ROBUSTNESS.md)", pass.Name, fn.Name.Name)
}

// checkRecoverTarget verifies the &err argument addresses the entry point's
// named error result.
func checkRecoverTarget(pass *Pass, arg ast.Expr, errResult types.Object) {
	un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok {
		return
	}
	id, ok := ast.Unparen(un.X).(*ast.Ident)
	if !ok {
		return
	}
	if pass.Info.Uses[id] != errResult {
		pass.Reportf(arg.Pos(), "failure.Recover must capture the entry point's named error result (&%s), not %s: otherwise the recovered panic never reaches the caller", errResult.Name(), id.Name)
	}
}

// checkDeferredRecovers enforces check 2: deferred recover() values assigned
// to error variables must pass through failure.AsInternal.
func checkDeferredRecovers(pass *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn, func(n ast.Node) bool {
		def, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		lit, ok := ast.Unparen(def.Call.Fun).(*ast.FuncLit)
		if !ok {
			return true
		}
		// Identifiers bound from recover() inside this deferred closure.
		recovered := make(map[types.Object]bool)
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			asg, ok := m.(*ast.AssignStmt)
			if !ok || len(asg.Rhs) != 1 {
				return true
			}
			if call, ok := ast.Unparen(asg.Rhs[0]).(*ast.CallExpr); ok {
				id, isIdent := ast.Unparen(call.Fun).(*ast.Ident)
				_, isBuiltin := pass.Info.Uses[id].(*types.Builtin)
				if isIdent && id.Name == "recover" && isBuiltin {
					for _, lhs := range asg.Lhs {
						if lid, ok := lhs.(*ast.Ident); ok {
							if obj := pass.Info.Defs[lid]; obj != nil {
								recovered[obj] = true
							} else if obj := pass.Info.Uses[lid]; obj != nil {
								recovered[obj] = true
							}
						}
					}
				}
			}
			return true
		})
		if len(recovered) == 0 {
			return true
		}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			asg, ok := m.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range asg.Lhs {
				if i >= len(asg.Rhs) {
					break
				}
				lt := pass.Info.TypeOf(lhs)
				if lt == nil || lt.String() != "error" {
					continue
				}
				rhs := asg.Rhs[i]
				usesRec := false
				for obj := range recovered {
					if usesObject(pass.Info, rhs, obj) {
						usesRec = true
					}
				}
				if !usesRec {
					continue
				}
				if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
					if fn := calleeOf(pass.Info, call); fn != nil && fromPackage(fn, "failure", "mahjong/internal/failure") {
						// The stage argument is validated by the module-wide
						// stage-name walk, which sees this same call.
						continue
					}
				}
				pass.Reportf(rhs.Pos(), "recovered panic assigned to an error without failure.AsInternal: the stage name and stack are lost, so /metrics cannot attribute the failure and degradation cannot classify it")
			}
			return true
		})
		return true
	})
}

// checkStageNames enforces check 3 at a single node, module-wide.
func checkStageNames(pass *Pass, n ast.Node) {
	switch n := n.(type) {
	case *ast.CallExpr:
		fn := calleeOf(pass.Info, n)
		if fn == nil || !fromPackage(fn, "failure", "mahjong/internal/failure") {
			return
		}
		if (strings.HasPrefix(fn.Name(), "Recover") || fn.Name() == "AsInternal") && len(n.Args) >= 1 {
			pkgSeg := ""
			if _, ok := stagePackages[pass.Name]; ok {
				pkgSeg = pass.Name
			}
			checkStageArg(pass, n.Args[0], pkgSeg)
		}
	case *ast.CompositeLit:
		t := pass.Info.TypeOf(n)
		if t == nil {
			return
		}
		if named, ok := t.(*types.Named); !ok || named.Obj().Name() != "InternalError" || !fromPackage(named.Obj(), "failure", "mahjong/internal/failure") {
			return
		}
		for _, elt := range n.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Stage" {
				checkStageArg(pass, kv.Value, "")
			}
		}
	}
}

// checkStageArg validates one stage-name expression. pkgSeg, when non-empty,
// is the package segment the stage must belong to (a seam in internal/pta
// must not report a core.* stage).
func checkStageArg(pass *Pass, arg ast.Expr, pkgSeg string) {
	val, ok := stringVal(pass.Info, arg)
	if !ok {
		pass.Reportf(arg.Pos(), "stage name must be a string constant (use the faultinject.Stage* constants): a computed stage defeats the registry cross-check")
		return
	}
	if !stageNameRE.MatchString(val) {
		pass.Reportf(arg.Pos(), "stage name %q does not follow the pkg.func convention of docs/ROBUSTNESS.md (e.g. %q)", val, "pta.solve")
		return
	}
	if pkgSeg != "" && !strings.HasPrefix(val, pkgSeg+".") {
		pass.Reportf(arg.Pos(), "stage name %q names another package's seam; a guard in package %s must report a %s.* stage so failures stay attributable", val, pkgSeg, pkgSeg)
	}
}

func hasContextParam(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i).Type().String() == "context.Context" {
			return true
		}
	}
	return false
}

func resultsIncludeError(sig *types.Signature) bool {
	for i := 0; i < sig.Results().Len(); i++ {
		if sig.Results().At(i).Type().String() == "error" {
			return true
		}
	}
	return false
}

// namedErrorResult returns the named error result variable, if any.
func namedErrorResult(sig *types.Signature) types.Object {
	for i := 0; i < sig.Results().Len(); i++ {
		r := sig.Results().At(i)
		if r.Type().String() == "error" && r.Name() != "" && r.Name() != "_" {
			return r
		}
	}
	return nil
}
