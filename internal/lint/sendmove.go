package lint

import (
	"go/ast"
	"go/types"

	"mahjong/internal/lint/flow"
)

// SendMove is the dataflow upgrade of bitsetalias's syntactic send rule:
// a *bitset.Set that crosses an ownership boundary is *moved*, and any
// later use of the same variable on any control-flow path is a
// use-after-move.
//
// Two kinds of statement move a set:
//
//   - passing it to a send/push call (the parallel engine's SPSC shard
//     queues) — the receiving worker adopts the message's set into its
//     own pool;
//
//   - storing it into a struct field marked //lint:adopts (e.g. the
//     shard worker's fired map, whose entries the coordinator releases
//     during the drain barrier).
//
// After a move the sender holds a dangling alias: the adopter will
// Clear and refill — or release — the set on its own schedule. Unlike
// bitsetalias (which only flags borrowed *parameters* at the send
// itself), this analyzer walks the CFG forward from each move, so the
// solver's store-then-return shape passes while a use on a merged
// branch is caught:
//
//	w.fired[id] = delta   // move into an adopting field
//	return                // ok: nothing uses delta afterwards
//
//	send(msg{set: s})
//	if retry { send(msg{set: s}) }   // flagged: s was moved above
//
// A redefinition of the variable (s = grabSet(), s re-bound by a loop)
// ends the moved state on that path. Stores into unmarked fields do NOT
// move — the solver's publish-then-fill idiom (s.pending[id] = p;
// p.Add(obj)) is a retained store the owner keeps using by design.
var SendMove = &Analyzer{
	Name: "sendmove",
	Doc: "a *bitset.Set passed to a shard-queue send/push or stored into an //lint:adopts field " +
		"is moved; using the variable afterwards on any path is a use-after-move",
	Run: runSendMove,
}

func runSendMove(pass *Pass) {
	if pass.Name == "bitset" {
		return
	}
	usesBitset := false
	for _, imp := range pass.Types.Imports() {
		if imp.Name() == "bitset" {
			usesBitset = true
		}
	}
	if !usesBitset {
		return
	}
	m := collectMarkers(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkMoves(pass, m, fn)
		}
	}
}

// move records one ownership transfer: obj moved away at CFG node at.
type move struct {
	at   ast.Node
	obj  types.Object
	what string // "a shard-queue send" / "the adopting field w.fired"
}

func checkMoves(pass *Pass, m *markers, fn *ast.FuncDecl) {
	g := pass.CFG(fn)
	var moves []move
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			moves = append(moves, movesIn(pass, m, n)...)
		}
	}
	for _, mv := range moves {
		w := &flow.Walk{
			G:    g,
			Kill: func(n ast.Node) bool { return flow.DefinesObj(pass.Info, n, mv.obj) },
		}
		reported := false
		w.From(mv.at, func(n ast.Node) bool {
			if reported || !flow.UsesObj(pass.Info, n, mv.obj) {
				return true
			}
			// One report per move: the first use in walk order.
			reported = true
			pass.Reportf(n.Pos(), "%s is used after being moved into %s: the adopter clears or releases the set on its own schedule, so this alias dangles — clone before moving, or re-grab a fresh set", mv.obj.Name(), mv.what)
			return false
		})
	}
}

// movesIn extracts the moves a single CFG node performs.
func movesIn(pass *Pass, m *markers, n ast.Node) []move {
	var out []move
	setIdent := func(e ast.Expr) types.Object {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		obj := pass.Info.Uses[id]
		if obj == nil || !isPtrToNamed(obj.Type(), "bitset", "Set") {
			return nil
		}
		return obj
	}
	ast.Inspect(n, func(c ast.Node) bool {
		switch c := c.(type) {
		case *ast.FuncLit:
			// A closure body is its own CFG context; its statements are
			// not sequenced with this node's successors.
			return false
		case *ast.CallExpr:
			if fn := calleeOf(pass.Info, c); fn != nil {
				if name := fn.Name(); name != "send" && name != "push" {
					return true
				}
			} else {
				name := ""
				switch fun := ast.Unparen(c.Fun).(type) {
				case *ast.Ident:
					name = fun.Name
				case *ast.SelectorExpr:
					name = fun.Sel.Name
				}
				if name != "send" && name != "push" {
					return true
				}
			}
			for _, arg := range c.Args {
				if obj := setIdent(arg); obj != nil {
					out = append(out, move{n, obj, "a shard-queue send"})
					continue
				}
				if lit, ok := ast.Unparen(arg).(*ast.CompositeLit); ok {
					for _, elt := range lit.Elts {
						v := elt
						if kv, ok := elt.(*ast.KeyValueExpr); ok {
							v = kv.Value
						}
						if obj := setIdent(v); obj != nil {
							out = append(out, move{n, obj, "a shard-queue send"})
						}
					}
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range c.Lhs {
				if len(c.Rhs) != len(c.Lhs) {
					break
				}
				field := flow.FieldOf(pass.Info, lhs)
				if field == nil || !m.adoptFields[field] {
					continue
				}
				if obj := setIdent(c.Rhs[i]); obj != nil {
					out = append(out, move{n, obj, "the adopting field " + types.ExprString(lhs)})
				}
			}
		}
		return true
	})
	return out
}
