package lint

import (
	"go/ast"
	"go/types"

	"mahjong/internal/lint/flow"
)

// ShardOwner enforces the parallel solver's owner-writes discipline.
//
// During a propagation phase the coordinator's arrays (pending sets,
// queued flags) are sharded by the class-contiguous renumbering: each
// worker owns a contiguous slice of them and is the only goroutine
// allowed to write its slice. Between phase barriers the coordinator
// owns everything. The discipline lives in comments today; this
// analyzer makes it machine-checked through three declarative markers
// (see flowpass.go):
//
//	//lint:shard-worker       on the worker type whose methods form the
//	                          in-phase call tree
//	//lint:owner-writes       on each coordinator field the workers shard
//	//lint:phase-sequential   on coordinator functions frozen for the
//	                          phase (path-compressing find, the serial
//	                          addPts entry points)
//
// Two rules follow. An //lint:owner-writes field may be written by
// worker-type methods (the owner, writing its shard) and by functions
// outside the worker call tree entirely (the coordinator, between
// barriers) — but a plain helper reachable from a worker that writes
// the field has no shard to own, so the write is a cross-shard hazard.
// And a //lint:phase-sequential function must not be reachable from the
// worker call tree at all: the classic instance is union-find's
// path-compressing find, which mutates parent links every caller
// reads — the parallel engine flattens the forest before the phase
// precisely so workers never need it.
//
// The worker call tree is the package-local static call graph reachable
// from the worker type's methods; function literals (goroutine bodies)
// belong to the declaration that encloses them, so `go func() {
// w.run() }()` keeps w.run in the tree.
var ShardOwner = &Analyzer{
	Name: "shardowner",
	Doc: "//lint:owner-writes fields may only be written by //lint:shard-worker methods or " +
		"outside the worker call tree; //lint:phase-sequential functions must be unreachable from workers",
	Run: runShardOwner,
}

func runShardOwner(pass *Pass) {
	m := collectMarkers(pass)
	if len(m.workerTypes) == 0 {
		return
	}
	cg := flow.NewCallGraph(pass.Files, pass.Info)
	var roots []*types.Func
	for typ := range m.workerTypes {
		roots = append(roots, cg.MethodsOf(typ)...)
	}
	world := cg.ReachableFrom(roots)

	for fn := range world {
		fd := cg.DeclOf(fn)
		if fd == nil {
			continue
		}
		isWorkerMethod := m.workerTypes[flow.RecvNamed(fn)]
		if !isWorkerMethod && !m.seqFuncs[fn] {
			checkOwnedWrites(pass, m, fn, fd)
		}
		if !m.seqFuncs[fn] {
			checkSeqCalls(pass, m, fd)
		}
	}
}

// checkOwnedWrites flags writes to //lint:owner-writes fields from a
// function that runs in the worker call tree without being a worker
// method.
func checkOwnedWrites(pass *Pass, m *markers, fn *types.Func, fd *ast.FuncDecl) {
	report := func(pos ast.Node, field *types.Var) {
		pass.Reportf(pos.Pos(), "cross-shard hazard: owner-written field %s is written from %s, which runs in the shard-worker call tree but is not a worker method — during a phase only the owning worker may write its shard (move the write into the worker, or behind the phase barrier)", field.Name(), fn.Name())
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if field := flow.FieldOf(pass.Info, lhs); field != nil && m.ownedFields[field] {
					report(lhs, field)
				}
			}
		case *ast.IncDecStmt:
			if field := flow.FieldOf(pass.Info, n.X); field != nil && m.ownedFields[field] {
				report(n.X, field)
			}
		}
		return true
	})
}

// checkSeqCalls flags direct calls from the worker call tree into
// //lint:phase-sequential functions. Only the boundary call is
// reported: a sequential function calling another sequential function
// is the coordinator's business.
func checkSeqCalls(pass *Pass, m *markers, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeOf(pass.Info, call)
		if callee == nil || !m.seqFuncs[callee] {
			return true
		}
		pass.Reportf(call.Pos(), "phase-sequential function %s is called from the shard-worker call tree: it mutates coordinator state frozen for the phase (the engine flattens/serializes so workers never need it — run it between phase barriers)", callee.Name())
		return true
	})
}
