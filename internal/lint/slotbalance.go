package lint

import (
	"go/ast"
	"go/types"

	"mahjong/internal/lint/flow"
)

// SlotBalance checks that acquired scheduler resources reach a release
// on every control-flow path, including the paths a panic takes.
//
// Two acquire/release protocols are covered:
//
//   - sched queue slots: Queue.Pop hands out a per-class in-flight slot
//     that Queue.Done must return (Done also feeds the service-time
//     EWMA that admission control estimates queue waits from). A leaked
//     slot permanently shrinks the class's concurrency share, and the
//     EWMA silently degrades — the kind of bug that only surfaces as
//     slow starvation under load.
//
//   - trace spans: Ctx.Start opens a span that End/Close/FailTag/
//     CloseAborted must close. An unclosed span corrupts the tracer's
//     open-span accounting and loses the stage timing the export relies
//     on.
//
// The check is a may-path walk on the CFG: from each acquire, a release
// kills the path; reaching function exit un-killed is a leak. The
// not-acquired branch of `it, ok := q.Pop(); if !ok { return }` is
// pruned — the edge proves ok is false, so that return never held a
// slot. Panic edges are handled by convention, matching recoverseam: a
// deferred release (defer sp.CloseAborted(), defer q.Done(...)) covers
// every path including unwinding; without one, any call to a module
// function that is not itself recover-guarded may panic past the
// release, and the acquire is flagged.
//
// Ownership transfers are respected: a span stored into a struct field,
// returned, or passed to another function escapes this function's
// balance obligation (the adopter closes it — server.go's j.qspan
// lifecycle). A Pop whose release is delegated to a helper that calls
// Done (directly or deferred) is balanced at the helper call.
var SlotBalance = &Analyzer{
	Name: "slotbalance",
	Doc: "every sched.Queue.Pop slot and trace span Start must reach its release (Done / " +
		"End-Close-FailTag-CloseAborted) on all CFG paths; panic paths require a deferred release",
	RunModule: runSlotBalance,
}

// spanClosers are the Span methods that close the span.
var spanClosers = map[string]bool{
	"End": true, "Close": true, "FailTag": true, "CloseAborted": true,
}

func runSlotBalance(mp *ModulePass) {
	// Module-wide context: which packages are part of this load (their
	// functions can panic; everything imported from export data is
	// outside the module's recover conventions and treated as total),
	// every function's syntax, and which functions release a sched slot
	// on the caller's behalf.
	loaded := make(map[string]bool)
	decls := make(map[*types.Func]*ast.FuncDecl)
	releasers := make(map[*types.Func]bool)
	for _, pkg := range mp.Pkgs {
		loaded[pkg.Types.Path()] = true
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				decls[fn] = fd
				if containsSchedDone(pkg.Info, fd.Body) {
					releasers[fn] = true
				}
			}
		}
	}
	for _, pkg := range mp.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkSlots(mp, pkg, fd, loaded, decls, releasers)
				checkSpans(mp, pkg, fd, loaded, decls)
			}
		}
	}
}

// isSchedCall reports whether call invokes the named method of
// sched.Queue.
func isSchedCall(info *types.Info, call *ast.CallExpr, method string) bool {
	fn := calleeOf(info, call)
	return fn != nil && fn.Name() == method && fromPackage(fn, "sched", "mahjong/internal/sched")
}

// containsSchedDone reports whether n contains a sched Done call
// outside nested function literals.
func containsSchedDone(info *types.Info, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if _, ok := c.(*ast.FuncLit); ok && c != n {
			// A closure's Done runs when the closure runs — except a
			// deferred one, which is this function's own exit path.
			return false
		}
		if call, ok := c.(*ast.CallExpr); ok && isSchedCall(info, call, "Done") {
			found = true
		}
		return !found
	})
	if found {
		return true
	}
	ast.Inspect(n, func(c ast.Node) bool {
		def, ok := c.(*ast.DeferStmt)
		if !ok {
			return !found
		}
		ast.Inspect(def.Call, func(d ast.Node) bool {
			if call, ok := d.(*ast.CallExpr); ok && isSchedCall(info, call, "Done") {
				found = true
			}
			return !found
		})
		return !found
	})
	return found
}

// checkSlots verifies Pop/Done balance in one function.
func checkSlots(mp *ModulePass, pkg *Package, fd *ast.FuncDecl, loaded map[string]bool, decls map[*types.Func]*ast.FuncDecl, releasers map[*types.Func]bool) {
	g := pkg.CFG(fd)
	// releaseIn: a direct Done, or a call into a helper that Dones.
	releaseIn := func(n ast.Node) bool {
		found := false
		ast.Inspect(n, func(c ast.Node) bool {
			if _, ok := c.(*ast.FuncLit); ok {
				return false
			}
			if call, ok := c.(*ast.CallExpr); ok {
				if isSchedCall(pkg.Info, call, "Done") {
					found = true
				} else if fn := calleeOf(pkg.Info, call); fn != nil && releasers[fn] {
					found = true
				}
			}
			return !found
		})
		return found
	}
	deferredRelease := hasDeferredRelease(pkg.Info, fd.Body, func(call *ast.CallExpr) bool {
		if isSchedCall(pkg.Info, call, "Done") {
			return true
		}
		fn := calleeOf(pkg.Info, call)
		return fn != nil && releasers[fn]
	})
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			asg, ok := n.(*ast.AssignStmt)
			if !ok || len(asg.Rhs) != 1 {
				continue
			}
			call, ok := ast.Unparen(asg.Rhs[0]).(*ast.CallExpr)
			if !ok || !isSchedCall(pkg.Info, call, "Pop") {
				continue
			}
			var okObj types.Object
			if len(asg.Lhs) == 2 {
				if id, ok := ast.Unparen(asg.Lhs[1]).(*ast.Ident); ok && id.Name != "_" {
					okObj = pkg.Info.Defs[id]
					if okObj == nil {
						okObj = pkg.Info.Uses[id]
					}
				}
			}
			checkBalance(mp, pkg, fd, g, n, balanceCheck{
				kind:     "sched queue slot from " + types.ExprString(call.Fun),
				fix:      "call Done on every path, ideally `defer q.Done(...)` right after the acquire",
				release:  releaseIn,
				okObj:    okObj,
				deferred: deferredRelease,
				loaded:   loaded,
				decls:    decls,
			})
		}
	}
}

// checkSpans verifies Start/close balance for trace spans held in a
// local variable for the function's own duration.
func checkSpans(mp *ModulePass, pkg *Package, fd *ast.FuncDecl, loaded map[string]bool, decls map[*types.Func]*ast.FuncDecl) {
	g := pkg.CFG(fd)
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			asg, ok := n.(*ast.AssignStmt)
			if !ok || len(asg.Rhs) != 1 || len(asg.Lhs) != 1 {
				continue
			}
			call, ok := ast.Unparen(asg.Rhs[0]).(*ast.CallExpr)
			if !ok {
				continue
			}
			fn := calleeOf(pkg.Info, call)
			if fn == nil || fn.Name() != "Start" || !fromPackage(fn, "trace", "mahjong/internal/trace") {
				continue
			}
			id, ok := ast.Unparen(asg.Lhs[0]).(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			sp := pkg.Info.Defs[id]
			if sp == nil {
				sp = pkg.Info.Uses[id]
			}
			if sp == nil || spanEscapes(pkg.Info, fd.Body, sp) {
				// The span's ownership moves elsewhere (field store,
				// return, passed along): the adopter closes it.
				continue
			}
			releaseIn := func(n ast.Node) bool { return closesSpan(pkg.Info, n, sp) }
			deferred := hasDeferredRelease(pkg.Info, fd.Body, func(call *ast.CallExpr) bool {
				return closesSpan(pkg.Info, call, sp)
			})
			label := "trace span " + sp.Name()
			if len(call.Args) > 0 {
				if stage, ok := stringVal(pkg.Info, call.Args[0]); ok {
					label = "trace span " + sp.Name() + " (" + stage + ")"
				}
			}
			checkBalance(mp, pkg, fd, g, n, balanceCheck{
				kind:     label,
				fix:      "close it on every path — the module convention is `defer " + sp.Name() + ".CloseAborted()` right after Start, with End/Close on the success path",
				release:  releaseIn,
				okObj:    nil,
				deferred: deferred,
				loaded:   loaded,
				decls:    decls,
			})
		}
	}
}

// balanceCheck bundles the per-resource parameters of one walk.
type balanceCheck struct {
	kind     string
	fix      string
	release  func(ast.Node) bool
	okObj    types.Object // prune edges proving this bool false (failed acquire)
	deferred bool
	loaded   map[string]bool
	decls    map[*types.Func]*ast.FuncDecl
}

// checkBalance walks forward from the acquire node and reports leaks.
func checkBalance(mp *ModulePass, pkg *Package, fd *ast.FuncDecl, g *flow.Graph, acquire ast.Node, c balanceCheck) {
	if c.deferred {
		// A deferred release covers every path out of the function,
		// panics included.
		return
	}
	released := false
	var panicky ast.Node
	w := &flow.Walk{
		G: g,
		Kill: func(n ast.Node) bool {
			if c.release(n) {
				released = true
				return true
			}
			return false
		},
	}
	if c.okObj != nil {
		w.Prune = func(e flow.Edge) bool { return flow.EdgeProvesFalse(pkg.Info, e, c.okObj) }
	}
	leaks := w.From(acquire, func(n ast.Node) bool {
		if panicky == nil && mayPanic(pkg.Info, n, c.loaded, c.decls) {
			panicky = n
		}
		return true
	})
	switch {
	case leaks:
		mp.Reportf(acquire.Pos(), "%s is not released on every path: some path reaches return without the release — %s", c.kind, c.fix)
	case !released:
		mp.Reportf(acquire.Pos(), "%s is never released in this function — %s", c.kind, c.fix)
	case panicky != nil:
		mp.Reportf(acquire.Pos(), "%s leaks if a call between acquire and release panics (first such call at line %d is not recover-guarded) — release in a defer so unwinding returns it", c.kind, pkg.Fset.Position(panicky.Pos()).Line)
	}
}

// hasDeferredRelease reports whether some defer in body (directly or
// via a deferred closure) performs a release.
func hasDeferredRelease(info *types.Info, body *ast.BlockStmt, isRelease func(*ast.CallExpr) bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		def, ok := n.(*ast.DeferStmt)
		if !ok {
			return !found
		}
		if isRelease(def.Call) {
			found = true
			return false
		}
		if lit, ok := def.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(d ast.Node) bool {
				if call, ok := d.(*ast.CallExpr); ok && isRelease(call) {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// closesSpan reports whether n contains a closing method call on the
// span object sp, outside nested function literals.
func closesSpan(info *types.Info, n ast.Node, sp types.Object) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if _, ok := c.(*ast.FuncLit); ok && c != n {
			return false
		}
		call, ok := c.(*ast.CallExpr)
		if !ok {
			return !found
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || !spanClosers[sel.Sel.Name] {
			return !found
		}
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && info.Uses[id] == sp {
			found = true
		}
		return !found
	})
	return found
}

// spanEscapes reports whether the span object is used anywhere except
// as the receiver of a method call: passed as an argument, stored,
// returned, or aliased — all transfers of the balance obligation.
func spanEscapes(info *types.Info, body *ast.BlockStmt, sp types.Object) bool {
	receiverUse := make(map[*ast.Ident]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && info.Uses[id] == sp {
				receiverUse[id] = true
			}
		}
		return true
	})
	escapes := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == sp && !receiverUse[id] {
			escapes = true
		}
		return !escapes
	})
	return escapes
}

// mayPanic reports whether executing n can panic out of this function:
// an explicit panic, or a call to a function from a loaded module
// package that is not itself recover-guarded. Calls resolved from
// export data (the standard library, out-of-load packages) are assumed
// total — the rule encodes the module's recoverseam convention, not a
// whole-program analysis.
func mayPanic(info *types.Info, n ast.Node, loaded map[string]bool, decls map[*types.Func]*ast.FuncDecl) bool {
	may := false
	ast.Inspect(n, func(c ast.Node) bool {
		if _, ok := c.(*ast.FuncLit); ok && c != n {
			return false
		}
		call, ok := c.(*ast.CallExpr)
		if !ok {
			return !may
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
			if _, shadowed := info.Uses[id].(*types.Func); !shadowed {
				may = true
				return false
			}
		}
		fn := calleeOf(info, call)
		if fn == nil || fn.Pkg() == nil || !loaded[fn.Pkg().Path()] {
			return !may
		}
		fd := decls[fn]
		if fd == nil || !recoverGuarded(fd) {
			may = true
		}
		return !may
	})
	return may
}

// recoverGuarded reports whether fd installs a recover seam: a deferred
// closure calling recover, or a deferred call into the failure
// package's recovery helpers.
func recoverGuarded(fd *ast.FuncDecl) bool {
	guarded := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		def, ok := n.(*ast.DeferStmt)
		if !ok {
			return !guarded
		}
		ast.Inspect(def.Call, func(d ast.Node) bool {
			switch d := d.(type) {
			case *ast.Ident:
				if d.Name == "recover" {
					guarded = true
				}
			case *ast.SelectorExpr:
				if d.Sel.Name == "Recover" {
					guarded = true
				}
			}
			return !guarded
		})
		return !guarded
	})
	return guarded
}
