package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// StageHook cross-checks the module's three stage registries so they cannot
// drift as stages are added:
//
//  1. declarations — the faultinject package's Stage* string constants are
//     the canonical vocabulary ("pta.solve", "core.build", …);
//
//  2. seams — every declared stage must be wired to at least one
//     faultinject.Fire or faultinject.Mutate call, so the fault matrix can
//     actually inject a failure there (an unseamed stage is untestable);
//
//  3. metrics — the server's knownStages registry pre-declares every stage
//     as a mahjongd_stage_failures_total label, so /metrics exposes a
//     stable, zero-valued series per stage instead of materializing labels
//     only after the first failure;
//
//  4. traces — every span opened with trace.Ctx.Start must name a declared
//     stage, so span trees, the fault matrix, and the /metrics duration
//     histograms all speak the same vocabulary.
//
// Cross-checks in both directions: a stage used with failure.Recover /
// failure.AsInternal (or fired at a seam, or opened as a trace span) must be
// declared; a declared stage must be seamed and listed in knownStages; a
// knownStages entry must match a declared constant.
//
// The analyzer needs the whole module in view: it runs only when both the
// faultinject and server packages are part of the load (mahjongvet's
// default ./... always includes them).
var StageHook = &Analyzer{
	Name: "stagehook",
	Doc: "faultinject Stage* constants, Fire/Mutate seams, failure.Recover uses and the " +
		"server's knownStages metrics registry must agree",
	RunModule: runStageHook,
}

// stageUse records where a stage string was seen.
type stageUse struct {
	pos  token.Pos
	what string
}

func runStageHook(m *ModulePass) {
	var fiPkg, serverPkg *Package
	for _, pkg := range m.Pkgs {
		switch pkg.Name {
		case "faultinject":
			fiPkg = pkg
		case "server":
			serverPkg = pkg
		}
	}
	if fiPkg == nil || serverPkg == nil {
		return // partial load: the registries are not in view
	}

	// Registry 1: Stage* constants in faultinject.
	declared := make(map[string]token.Pos)
	for _, f := range fiPkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if !strings.HasPrefix(name.Name, "Stage") || i >= len(vs.Values) {
						continue
					}
					if val, ok := stringVal(fiPkg.Info, vs.Values[i]); ok {
						declared[val] = name.Pos()
					}
				}
			}
		}
	}

	// Registry 2: Fire/Mutate seams; registry 3 inputs: failure.* uses;
	// registry 4 inputs: trace span Start calls.
	seamed := make(map[string]bool)
	var failureUses, seamUses, traceUses []struct {
		stage string
		use   stageUse
	}
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					fn := calleeOf(pkg.Info, n)
					if fn == nil || len(n.Args) == 0 {
						return true
					}
					switch {
					case fromPackage(fn, "faultinject", "mahjong/internal/faultinject") &&
						(fn.Name() == "Fire" || fn.Name() == "Mutate"):
						if val, ok := stringVal(pkg.Info, n.Args[0]); ok {
							seamed[val] = true
							seamUses = append(seamUses, struct {
								stage string
								use   stageUse
							}{val, stageUse{n.Args[0].Pos(), "faultinject." + fn.Name()}})
						}
					case fromPackage(fn, "failure", "mahjong/internal/failure") &&
						(strings.HasPrefix(fn.Name(), "Recover") || fn.Name() == "AsInternal"):
						if val, ok := stringVal(pkg.Info, n.Args[0]); ok {
							failureUses = append(failureUses, struct {
								stage string
								use   stageUse
							}{val, stageUse{n.Args[0].Pos(), "failure." + fn.Name()}})
						}
					case fromPackage(fn, "trace", "mahjong/internal/trace") && fn.Name() == "Start":
						if val, ok := stringVal(pkg.Info, n.Args[0]); ok {
							traceUses = append(traceUses, struct {
								stage string
								use   stageUse
							}{val, stageUse{n.Args[0].Pos(), "trace.Ctx.Start"}})
						} else {
							m.Reportf(n.Args[0].Pos(), "trace span name is not a constant string: span stages must be faultinject Stage* constants so traces, the fault matrix and /metrics share one vocabulary")
						}
					}
				case *ast.KeyValueExpr:
					// failure.InternalError{Stage: …} literals count as uses.
					if key, ok := n.Key.(*ast.Ident); ok && key.Name == "Stage" {
						if obj := pkg.Info.Uses[key]; obj != nil && fromPackage(obj, "failure", "mahjong/internal/failure") {
							if val, ok := stringVal(pkg.Info, n.Value); ok {
								failureUses = append(failureUses, struct {
									stage string
									use   stageUse
								}{val, stageUse{n.Value.Pos(), "failure.InternalError literal"}})
							}
						}
					}
				}
				return true
			})
		}
	}

	// Registry 3: the server's knownStages metrics pre-declaration.
	known := make(map[string]bool)
	var knownEntries []struct {
		stage string
		pos   token.Pos
	}
	foundKnown := false
	for _, f := range serverPkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			vs, ok := n.(*ast.ValueSpec)
			if !ok {
				return true
			}
			for i, name := range vs.Names {
				if name.Name != "knownStages" || i >= len(vs.Values) {
					continue
				}
				foundKnown = true
				if lit, ok := vs.Values[i].(*ast.CompositeLit); ok {
					for _, elt := range lit.Elts {
						if val, ok := stringVal(serverPkg.Info, elt); ok {
							known[val] = true
							knownEntries = append(knownEntries, struct {
								stage string
								pos   token.Pos
							}{val, elt.Pos()})
						}
					}
				}
			}
			return true
		})
	}
	if !foundKnown {
		pos := token.NoPos
		if len(serverPkg.Files) > 0 {
			pos = serverPkg.Files[0].Name.Pos()
		}
		m.Reportf(pos, "package server declares no knownStages registry: /metrics cannot pre-declare per-stage failure counters, so stage labels appear only after the first failure")
		return
	}

	// Cross-check 1: stages used with failure must be declared.
	for _, u := range failureUses {
		if _, ok := declared[u.stage]; !ok {
			m.Reportf(u.use.pos, "stage %q is used with %s but not declared as a faultinject Stage* constant: the fault matrix and /metrics registries cannot see it", u.stage, u.use.what)
		}
	}
	// Cross-check 2a: fired stages must be declared.
	for _, u := range seamUses {
		if _, ok := declared[u.stage]; !ok {
			m.Reportf(u.use.pos, "stage %q is fired at a %s seam but not declared as a faultinject Stage* constant", u.stage, u.use.what)
		}
	}
	// Cross-check 1b: trace span names must come from the stage registry.
	for _, u := range traceUses {
		if _, ok := declared[u.stage]; !ok {
			m.Reportf(u.use.pos, "trace span stage %q is not declared as a faultinject Stage* constant: span trees must use the registered stage vocabulary", u.stage)
		}
	}
	// Cross-check 2b: declared stages must be seamed and known to metrics.
	for stage, pos := range declared {
		if !seamed[stage] {
			m.Reportf(pos, "stage constant %q has no faultinject.Fire/Mutate seam: the fault matrix cannot inject a failure there, so its recovery path is untestable", stage)
		}
		if !known[stage] {
			m.Reportf(pos, "stage constant %q is missing from the server's knownStages registry: its mahjongd_stage_failures_total series would appear only after the first failure", stage)
		}
	}
	// Cross-check 3: knownStages entries must be declared constants.
	for _, e := range knownEntries {
		if _, ok := declared[e.stage]; !ok {
			m.Reportf(e.pos, "knownStages entry %q does not match any faultinject Stage* constant: the metrics registry has drifted from the stage vocabulary", e.stage)
		}
	}
}
