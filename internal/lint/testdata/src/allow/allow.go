// Package allow is a linttest fixture for the //lint:allow mechanism itself,
// asserted on directly in lint_test.go rather than through want comments (an
// allow comment cannot also carry a want comment — a line holds one comment).
//
// Expected diagnostics, exactly two:
//
//   - a "lint" diagnostic at the unjustified allow below: the justification
//     is the audit trail, so an allow without one suppresses nothing and is
//     itself reported;
//
//   - the ctxflow diagnostic on that same line, which the unjustified allow
//     failed to suppress.
package allow

import "context"

var bad = context.Background() //lint:allow ctxflow

// A justified allow suppresses the finding on its own line…
var shimmed = context.Background() //lint:allow ctxflow fixture: justified allow on the same line

//lint:allow ctxflow fixture: justified allow on the line above suppresses too
var shimmedAbove = context.TODO()
