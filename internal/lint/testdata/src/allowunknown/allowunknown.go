// Package allowunknown is a linttest fixture for //lint:allow analyzer-name
// validation, asserted on directly in lint_test.go (an allow comment cannot
// also carry a want comment — a line holds one comment).
//
// Expected diagnostics, exactly three:
//
//   - a "lint" diagnostic at the typo'd allow below: "ctxflw" names no
//     analyzer, so the suppression is dead and must not pass silently;
//
//   - the ctxflow diagnostic on that same line, which the dead allow
//     failed to suppress;
//
//   - a "lint" diagnostic for the allow naming an analyzer that never
//     existed, on a line with nothing to suppress — dead suppressions are
//     reported wherever they sit, not only where they mask a finding.
package allowunknown

import "context"

var typod = context.Background() //lint:allow ctxflw justified in words but the name is a typo

// A correctly named, justified allow still works.
var shimmed = context.Background() //lint:allow ctxflow fixture: justified allow on the same line

//lint:allow nosuchanalyzer this analyzer never existed
var fine = 1
