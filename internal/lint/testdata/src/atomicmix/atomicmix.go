// Package atomicmix is a linttest fixture for the atomicmix analyzer.
// Forest below reproduces, almost line for line, the union-find race
// the module shipped before the parallel-solver hardening: a plain
// int64 set counter that Union updated through atomic.AddInt64 while
// Sets read it bare. The production fix was an atomic.Int64 field; the
// analyzer exists so the mixed form can never come back.
package atomicmix

import (
	"sync"
	"sync/atomic"
)

// Forest is the pre-fix union-find bookkeeping shape.
type Forest struct {
	parent []int32
	sets   int64 // disjoint-set count; see the race below
}

func NewForest(n int) *Forest {
	f := &Forest{parent: make([]int32, n)}
	f.sets = int64(n) // want "field sets is accessed via sync/atomic elsewhere; this plain access races"
	return f
}

// Union merges two sets, decrementing the counter atomically — which
// silently declares every OTHER access site atomic too.
func (f *Forest) Union(a, b int32) {
	f.parent[b] = a
	atomic.AddInt64(&f.sets, -1)
}

// Sets is the racy read: no happens-before with Union's AddInt64.
func (f *Forest) Sets() int {
	return int(f.sets) // want "field sets is accessed via sync/atomic elsewhere; this plain access races"
}

// guarded shows the subtler mistake: taking a mutex around the plain
// access. The mutex orders this critical section against other users of
// the same mutex — and nothing else; Union never locks it.
type guarded struct {
	mu     sync.Mutex
	hits   int64
	misses int64
}

func (g *guarded) record() {
	atomic.AddInt64(&g.hits, 1)
}

func (g *guarded) snapshot() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.hits // want "mutex-guarded plain access still races"
}

// misses is only ever touched under the mutex — consistent, no finding.
func (g *guarded) miss() {
	g.mu.Lock()
	g.misses++
	g.mu.Unlock()
}

// allAtomic is the fixed form: every access goes through sync/atomic.
type allAtomic struct {
	n int64
}

func (a *allAtomic) inc() { atomic.AddInt64(&a.n, 1) }

func (a *allAtomic) get() int64 { return atomic.LoadInt64(&a.n) }
