// Package bitsetalias is a linttest fixture for the bitsetalias analyzer:
// the borrowed-bitset discipline around a grabSet/releaseSet pool like the
// solver's. It imports the real bitset package so type matching works as it
// does on module code.
package bitsetalias

import "mahjong/internal/bitset"

type node struct {
	delta  *bitset.Set
	deltas []*bitset.Set
	byID   map[int]*bitset.Set
}

// pool mirrors the solver's delta-set free list. Its accessors are the
// ownership boundary and are exempt by name: releaseSet legitimately retains
// the set it takes back.
type pool struct {
	free []*bitset.Set
}

func (p *pool) grabSet() *bitset.Set {
	if n := len(p.free); n > 0 {
		s := p.free[n-1]
		p.free = p.free[:n-1]
		s.Clear()
		return s
	}
	return bitset.New(64)
}

func (p *pool) releaseSet(s *bitset.Set) {
	p.free = append(p.free, s)
}

// retainInField stores a borrowed set past the borrow.
func (n *node) retainInField(s *bitset.Set) {
	n.delta = s // want "retained in n.delta"
}

// retainInSlice escapes through an append one call deep.
func (n *node) retainInSlice(s *bitset.Set) {
	n.deltas = append(n.deltas, s) // want "retained in n.deltas"
}

// retainInMap escapes through a map element.
func (n *node) retainInMap(id int, s *bitset.Set) {
	n.byID[id] = s // want "retained in n.byID"
}

// passthrough returns the borrow, so the alias outlives it.
func passthrough(s *bitset.Set) *bitset.Set {
	return s // want "is returned"
}

// useAfterRelease touches a set the pool may already have handed to an
// unrelated node.
func (p *pool) useAfterRelease() int {
	s := p.grabSet()
	s.Add(1)
	p.releaseSet(s)
	return s.Len() // want "used after releaseSet"
}

// regrab is fine: the fresh binding ends the released state. No finding.
func (p *pool) regrab() int {
	s := p.grabSet()
	p.releaseSet(s)
	s = p.grabSet()
	defer p.releaseSet(s)
	return s.Len()
}

// releaseAndContinue is the solver's hot-path idiom: the release sits in a
// branch that always leaves the loop iteration, so the use after the branch
// never follows it. No finding.
func (p *pool) releaseAndContinue(work []int) int {
	total := 0
	for _, w := range work {
		s := p.grabSet()
		if w < 0 {
			p.releaseSet(s)
			continue
		}
		s.Add(w)
		total += s.Len()
		p.releaseSet(s)
	}
	return total
}

// readOnly borrows without escaping. No finding.
func readOnly(s *bitset.Set) int {
	return s.Len()
}

// msg and queue mirror the parallel solver's cross-shard SPSC messages:
// the receiving worker adopts msg.set into its own pool, so whatever is
// sent must be owned by the message, never borrowed.
type msg struct {
	set *bitset.Set
	to  int32
}

type queue struct{ buf []msg }

// push is a queue producer; m.set is owned by the message by contract
// (msg is not a *bitset.Set parameter, so the retention rules do not
// apply to it). No finding.
func (q *queue) push(m msg) { q.buf = append(q.buf, m) }

type worker struct {
	p   pool
	out []*queue
}

// send routes a message to a peer queue. No finding.
func (w *worker) send(dest int, m msg) { w.out[dest].push(m) }

// sendBorrowedInLiteral leaks a borrowed set across the queue inside the
// message literal: the receiver will adopt it while our caller releases it.
func (w *worker) sendBorrowedInLiteral(s *bitset.Set) {
	w.send(0, msg{set: s}) // want "crosses a shard-queue send"
}

// pushBorrowedInLiteral is the same escape one level lower, on the queue
// producer itself.
func (w *worker) pushBorrowedInLiteral(s *bitset.Set) {
	w.out[0].push(msg{set: s, to: 7}) // want "crosses a shard-queue send"
}

// sendClone is the mandated idiom: clone the borrow into an owned set
// and send that. No finding.
func (w *worker) sendClone(s *bitset.Set) {
	owned := w.p.grabSet()
	owned.Union(s)
	w.send(0, msg{set: owned})
}
