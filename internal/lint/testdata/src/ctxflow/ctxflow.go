// Package ctxflow is a linttest fixture for the ctxflow analyzer: fresh root
// contexts and context identity comparison in library code.
package ctxflow

import "context"

func detached() {
	ctx := context.Background() // want "context.Background\\(\\) in internal library code detaches callees"
	_ = ctx
	_ = context.TODO() // want "context.TODO\\(\\) in internal library code detaches callees"
}

func compared(a, b context.Context) bool {
	if a == b { // want "contexts compared with =="
		return true
	}
	return a != b // want "contexts compared with !="
}

// shim is the sanctioned escape hatch: a justified allow suppresses the
// finding and documents why the invariant may be broken here.
func shim() context.Context {
	return context.Background() //lint:allow ctxflow fixture compat shim: callers without a context deliberately get a background root
}

// threaded passes the caller's context through — the pattern the analyzer
// exists to enforce. No finding.
func threaded(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithCancel(ctx)
}

// doneNil is the sanctioned cancellability test: asking whether the context
// can ever fire, instead of comparing identities. No finding.
func doneNil(ctx context.Context) bool {
	return ctx.Done() == nil
}
