// Package mapdeterminism is a linttest fixture for the mapdeterminism
// analyzer: map iteration feeding persisted or exported output.
package mapdeterminism

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// unsorted accumulates keys in map-iteration order and never canonicalizes
// them: bytes built from the slice differ run to run.
func unsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "accumulates in map-iteration order and is never sorted"
	}
	return keys
}

// collectThenSort is the sanctioned idiom. No finding.
func collectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// directEmit pushes bytes straight to a writer from inside the loop; no
// later sort can repair the order.
func directEmit(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s %d\n", k, v) // want "fmt.Fprintf inside map iteration emits bytes in map order"
	}
}

// methodEmit does the same through an encoder-style method.
func methodEmit(b *strings.Builder, m map[string]bool) {
	for k := range m {
		b.WriteString(k) // want "WriteString inside map iteration emits bytes in map order"
	}
}

// mapToMap re-keys into another map: order never reaches output. No finding.
func mapToMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// aggregate folds order-independent values. No finding.
func aggregate(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// sliceRange is not a map range at all. No finding.
func sliceRange(xs []string, w io.Writer) {
	for _, x := range xs {
		fmt.Fprintln(w, x)
	}
}
