// Package pta is a linttest fixture for the recoverseam analyzer. Its
// package name matches a real stage package, so the entry-point and
// deferred-recover checks apply; it imports the real failure and faultinject
// packages so callee resolution works exactly as it does on module code.
package pta

import (
	"context"
	"fmt"

	"mahjong/internal/failure"
	"mahjong/internal/faultinject"
)

// Guarded is the sanctioned entry-point shape: context in, named error out,
// a deferred failure.Recover capturing it under the package's own stage.
// No finding.
func Guarded(ctx context.Context, work int) (res int, err error) {
	defer failure.Recover(faultinject.StageSolve, &err)
	return work, nil
}

// Unguarded is a stage boundary with no seam: an escaping panic would unwind
// the caller instead of failing one job.
func Unguarded(ctx context.Context, work int) (res int, err error) { // want "never defers failure.Recover"
	return work, nil
}

// Unnamed cannot hand a recovered panic to its caller: there is no named
// error result for failure.Recover to assign.
func Unnamed(ctx context.Context) error { // want "must name its error result"
	return nil
}

// WrongTarget defers the seam but captures a local instead of the named
// result, so the recovered panic never reaches the caller.
func WrongTarget(ctx context.Context) (err error) {
	var scratch error
	defer failure.Recover(faultinject.StageSolve, &scratch) // want "must capture the entry point's named error result"
	return scratch
}

// WrongStage guards a pta entry point under another package's stage name,
// making failures unattributable.
func WrongStage(ctx context.Context) (err error) {
	defer failure.Recover("core.build", &err) // want "names another package's seam"
	return nil
}

// BadConvention uses a stage name outside the pkg.func convention.
func BadConvention(ctx context.Context) (err error) {
	defer failure.Recover("PTA-SOLVE", &err) // want "does not follow the pkg.func convention"
	return nil
}

// Computed defeats the registry cross-check with a non-constant stage.
func Computed(ctx context.Context, n int) (err error) {
	defer failure.Recover(fmt.Sprintf("pta.shard%d", n), &err) // want "stage name must be a string constant"
	return nil
}

// rawRecover assigns the recovered value straight to an error, losing the
// stage name and stack.
func rawRecover(ctx context.Context) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = rec.(error) // want "without failure.AsInternal"
		}
	}()
	return nil
}

// wrappedRecover is the sanctioned deferred-recover shape. No finding.
func wrappedRecover(ctx context.Context) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = failure.AsInternal(faultinject.StageSolve, rec)
		}
	}()
	return nil
}

// literalStage exercises the InternalError{Stage: …} literal check.
func literalStage() error {
	return &failure.InternalError{Stage: "Bad Stage"} // want "does not follow the pkg.func convention"
}
