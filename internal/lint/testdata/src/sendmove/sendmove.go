// Package sendmove is a linttest fixture for the sendmove analyzer: the
// use-after-move discipline for *bitset.Set values that cross an
// ownership boundary — a shard-queue send/push, or a store into an
// //lint:adopts field. It mirrors the shapes in internal/pta's shard
// workers, including the ones the old syntactic bitsetalias rule could
// not tell apart.
package sendmove

import "mahjong/internal/bitset"

// msg is a shard-queue message; the receiver adopts its set.
type msg struct {
	target int
	set    *bitset.Set
}

// queue stands in for the SPSC shard queue.
type queue struct {
	buf []msg
}

func (q *queue) send(m msg) { q.buf = append(q.buf, m) }

// sink mirrors shardState: fired entries are adopted by the coordinator
// during the drain barrier, so a store into it transfers ownership.
type sink struct {
	fired map[int]*bitset.Set //lint:adopts the drain barrier releases these
	// pending is deliberately unmarked: the owner publishes the set and
	// keeps filling it (the solver's publish-then-fill idiom).
	pending map[int]*bitset.Set
}

// pool is the local free list, as in the solver.
type pool struct{ free []*bitset.Set }

func (p *pool) grabSet() *bitset.Set {
	if n := len(p.free); n > 0 {
		s := p.free[n-1]
		p.free = p.free[:n-1]
		return s
	}
	return bitset.New(64)
}

// useAfterSend keeps touching a set it already gave away.
func (p *pool) useAfterSend(q *queue, target int) {
	s := p.grabSet()
	s.Add(target)
	q.send(msg{target: target, set: s})
	s.Add(target + 1) // want "s is used after being moved into a shard-queue send"
}

// sendThenReturn is the good shape: nothing after the move.
func (p *pool) sendThenReturn(q *queue, target int) {
	s := p.grabSet()
	s.Add(target)
	q.send(msg{target: target, set: s})
}

// storeThenReturn mirrors shardState.process: the store into the
// adopting map is the last touch on that path.
func (p *pool) storeThenReturn(k *sink, id int, big bool) {
	delta := p.grabSet()
	delta.Add(id)
	if big {
		k.fired[id] = delta
		return
	}
	p.free = append(p.free, delta)
}

// useAfterAdopt reads through the alias after the adopting store.
func (p *pool) useAfterAdopt(k *sink, id int) int {
	delta := p.grabSet()
	delta.Add(id)
	k.fired[id] = delta
	return delta.Len() // want "delta is used after being moved into the adopting field k.fired"
}

// branchMerge moves on one branch only; the use after the join is a
// use-after-move on that path. The old straight-line rule missed this.
func (p *pool) branchMerge(q *queue, id int, flush bool) {
	s := p.grabSet()
	s.Add(id)
	if flush {
		q.send(msg{target: id, set: s})
	}
	s.Add(id + 1) // want "s is used after being moved into a shard-queue send"
}

// regrabbed re-binds the variable after the move: the fresh set is
// owned again, so the later use is fine.
func (p *pool) regrabbed(q *queue, id int) {
	s := p.grabSet()
	q.send(msg{target: id, set: s})
	s = p.grabSet()
	s.Add(id)
}

// loopRebind moves inside a loop whose next iteration re-grabs: the
// back edge redefines s, so no use-after-move.
func (p *pool) loopRebind(q *queue, ids []int) {
	for _, id := range ids {
		s := p.grabSet()
		s.Add(id)
		q.send(msg{target: id, set: s})
	}
}

// publishThenFill stores into the UNMARKED pending map and keeps
// writing through the alias — the solver's owner-side idiom, not a
// move; no finding.
func (p *pool) publishThenFill(k *sink, id int) {
	s := p.grabSet()
	k.pending[id] = s
	s.Add(id)
}
