// Package shardowner is a linttest fixture for the shardowner
// analyzer: the parallel solver's owner-writes discipline, declared
// through //lint:shard-worker, //lint:owner-writes and
// //lint:phase-sequential markers and enforced over the package-local
// call graph.
package shardowner

// state is the coordinator, a miniature of the solver: pending and
// queued are sharded across workers during a phase, parent is the
// union-find forest frozen by the pre-phase flatten.
type state struct {
	pending []int  //lint:owner-writes sharded by class-contiguous ranges
	queued  []bool //lint:owner-writes
	parent  []int
	epoch   int
}

// find path-compresses parent links — every caller observes the
// mutation, so it must never run while workers read the forest.
//
//lint:phase-sequential the pre-phase flatten exists so workers never need this
func (s *state) find(x int) int {
	for s.parent[x] != x {
		s.parent[x] = s.parent[s.parent[x]]
		x = s.parent[x]
	}
	return x
}

// barrier runs between phases; the coordinator owns everything here.
func (s *state) barrier() {
	for i := range s.queued {
		s.queued[i] = false // coordinator, outside the worker tree: fine
		s.pending[i] = 0
	}
	s.epoch++
	_ = s.find(0) // called outside the worker tree: the coordinator may compress
}

// worker owns one contiguous shard of the coordinator's arrays for the
// duration of a phase.
//
//lint:shard-worker
type worker struct {
	id   int
	lo   int
	hi   int
	eng  *state
	next []int
}

// run is the phase body: writes to the owned fields from worker methods
// are the owner writing its shard — allowed.
func (w *worker) run() {
	for i := w.lo; i < w.hi; i++ {
		w.eng.pending[i] = w.id
		w.eng.queued[i] = true
	}
	w.step()
}

// step shows the two hazards.
func (w *worker) step() {
	stash(w.eng, w.lo)       // pulls stash into the worker call tree
	root := w.eng.find(w.lo) // want "phase-sequential function find is called from the shard-worker call tree"
	w.next = append(w.next, root)
	go func() {
		// Goroutine bodies belong to the enclosing worker method.
		w.eng.queued[w.hi-1] = true // owner writing its shard: fine
		leak(w.eng)
	}()
}

// stash is a plain helper reachable from the worker: it has no shard of
// its own, so its write is a cross-shard hazard.
func stash(s *state, id int) {
	s.queued[id] = true // want "cross-shard hazard: owner-written field queued is written from stash"
}

// leak is reached only through the worker's goroutine closure — still
// the worker call tree.
func leak(s *state) {
	s.pending[0]++ // want "cross-shard hazard: owner-written field pending is written from leak"
}

// rebuild is never called from a worker; its writes are coordinator
// work between barriers.
func rebuild(s *state) {
	for i := range s.pending {
		s.pending[i] = 0
	}
}
