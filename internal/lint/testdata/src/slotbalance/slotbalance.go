// Package slotbalance is a linttest fixture for the slotbalance
// analyzer: sched.Queue Pop/Done slot balance and trace span
// Start/close balance, on all CFG paths including the ones a panic
// takes. It imports the real sched and trace packages so method
// matching works as it does on module code.
package slotbalance

import (
	"time"

	"mahjong/internal/sched"
	"mahjong/internal/trace"
)

// risky is a module function with no recover seam: per the module
// convention it may panic out of its caller.
func risky(it *sched.Item) {
	_ = it.Payload
}

// shielded installs a recover seam, so callers survive its panics.
func shielded(it *sched.Item) {
	defer func() { _ = recover() }()
	_ = it.Payload
}

// balancedLoop is the well-formed worker shape: the not-acquired branch
// is pruned, and both continue paths release before looping.
func balancedLoop(q *sched.Queue) {
	for {
		it, ok := q.Pop()
		if !ok {
			return
		}
		if it.Payload == nil {
			q.Done(it.Class, 0)
			continue
		}
		q.Done(it.Class, time.Millisecond)
	}
}

// leakOnBranch forgets the early-return path.
func leakOnBranch(q *sched.Queue, drop bool) {
	it, ok := q.Pop() // want "sched queue slot from q.Pop is not released on every path"
	if !ok {
		return
	}
	if drop {
		return
	}
	q.Done(it.Class, 0)
}

// drainForever never calls Done at all: every iteration leaks the
// previous slot.
func drainForever(q *sched.Queue) {
	for {
		it, ok := q.Pop() // want "sched queue slot from q.Pop is never released"
		if !ok {
			return
		}
		_ = it
	}
}

// panicLeak releases on every normal path but calls an unguarded module
// function while holding the slot, with no deferred Done.
func panicLeak(q *sched.Queue) {
	it, ok := q.Pop() // want "sched queue slot from q.Pop leaks if a call between acquire and release panics"
	if !ok {
		return
	}
	risky(it)
	q.Done(it.Class, 0)
}

// deferredDone is the durable shape: the defer releases on panic paths
// too, so the unguarded call is fine.
func deferredDone(q *sched.Queue) {
	it, ok := q.Pop()
	if !ok {
		return
	}
	defer q.Done(it.Class, 0)
	risky(it)
}

// guardedCall holds the slot across a call that recovers its own
// panics — balanced without a defer.
func guardedCall(q *sched.Queue) {
	it, ok := q.Pop()
	if !ok {
		return
	}
	shielded(it)
	q.Done(it.Class, 0)
}

// handle releases the caller's slot (it calls Done), so delegating to
// it balances the acquire.
func handle(q *sched.Queue, it *sched.Item) {
	defer q.Done(it.Class, 0)
	risky(it)
}

func delegated(q *sched.Queue) {
	it, ok := q.Pop()
	if !ok {
		return
	}
	handle(q, it)
}

// spanBalanced closes on the one path there is, nothing panicky in
// between.
func spanBalanced(tc trace.Ctx) {
	sp := tc.Start("fixture.ok")
	sp.Add("facts", 1)
	sp.End()
}

// spanLeak forgets the error path.
func spanLeak(tc trace.Ctx, fail bool) {
	sp := tc.Start("fixture.leak") // want "trace span sp .fixture.leak. is not released on every path"
	if fail {
		return
	}
	sp.End()
}

// spanPanic holds an open span across an unguarded module call.
func spanPanic(tc trace.Ctx, it *sched.Item) {
	sp := tc.Start("fixture.panic") // want "trace span sp .fixture.panic. leaks if a call between acquire and release panics"
	risky(it)
	sp.End()
}

// spanDeferred follows the module convention: CloseAborted in a defer
// right after Start, End on the success path.
func spanDeferred(tc trace.Ctx, it *sched.Item) {
	sp := tc.Start("fixture.deferred")
	defer sp.CloseAborted()
	risky(it)
	sp.End()
}

// holder adopts a span stored into it.
type holder struct {
	qspan trace.Span
}

// spanEscapes hands the span's ownership to the holder (server.go's
// j.qspan lifecycle): the balance obligation moves with it, no finding.
func spanEscapes(tc trace.Ctx, h *holder) {
	sp := tc.Start("fixture.escape")
	h.qspan = sp
}
