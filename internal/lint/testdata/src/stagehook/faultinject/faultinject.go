// Package faultinject is a linttest fixture standing in for the real
// faultinject package (the stagehook analyzer matches it by package name):
// it declares the Stage* vocabulary and the Fire/Mutate seams.
package faultinject

const (
	// StageGood is seamed below and listed in the fixture server's
	// knownStages. No finding.
	StageGood = "pta.solve"
	// StageUnseamed is declared and known to metrics but wired to no
	// Fire/Mutate seam, so the fault matrix cannot inject a failure there.
	StageUnseamed = "core.build" // want "has no faultinject.Fire/Mutate seam"
	// StageUnknown is seamed but missing from the server's knownStages, so
	// its metrics series would appear only after the first failure.
	StageUnknown = "fpg.build" // want "missing from the server's knownStages registry"
	// StageDelta, StageSeed and StageQuery mirror the incremental-engine
	// stages: declared, seamed below, and listed in the fixture server's
	// knownStages. No finding on any of them.
	StageDelta = "delta.diff"
	StageSeed  = "pta.seed"
	StageQuery = "server.query"
)

// Fire mirrors the real seam entry point.
func Fire(stage string) error {
	_ = stage
	return nil
}

// Mutate mirrors the real mutation seam.
func Mutate(stage string, v any) any {
	_ = stage
	return v
}
