// Package server is a linttest fixture standing in for the real server
// package (the stagehook analyzer matches it by package name): it carries the
// knownStages metrics registry.
package server

// knownStages pre-declares the per-stage failure series. "fpg.build" is
// deliberately absent (reported at its Stage* constant) and "zz.stray"
// matches no declared constant.
var knownStages = []string{
	"pta.solve",
	"core.build",
	"delta.diff",
	"pta.seed",
	"server.query",
	"zz.stray", // want "does not match any faultinject Stage. constant"
}
