// Package use is a linttest fixture exercising stagehook's use-site
// cross-checks: stages fired at seams or attached to failures must be part
// of the declared vocabulary. It imports the real failure package and the
// fixture faultinject package.
package use

import (
	"mahjong/internal/failure"
	"mahjong/internal/trace"

	fi "mahjong/internal/lint/testdata/src/stagehook/faultinject"
)

func seams() {
	_ = fi.Fire(fi.StageGood)
	_ = fi.Fire(fi.StageUnknown)
	_ = fi.Fire(fi.StageDelta)
	_ = fi.Fire(fi.StageSeed)
	_ = fi.Fire(fi.StageQuery)
	_ = fi.Fire("qq.undeclared") // want "fired at a faultinject.Fire seam but not declared"
}

func uses() {
	_ = failure.AsInternal("zz.unknown", "boom") // want "is used with failure.AsInternal but not declared"
}

func spans(tc trace.Ctx, dynamic string) {
	sp := tc.Start(fi.StageGood) // a declared stage: no finding
	sp.End()
	tc.Start("qq.offbook").End() // want "trace span stage .qq.offbook. is not declared"
	tc.Start(dynamic).End()      // want "trace span name is not a constant string"
}
