// Package use is a linttest fixture exercising stagehook's use-site
// cross-checks: stages fired at seams or attached to failures must be part
// of the declared vocabulary. It imports the real failure package and the
// fixture faultinject package.
package use

import (
	"mahjong/internal/failure"

	fi "mahjong/internal/lint/testdata/src/stagehook/faultinject"
)

func seams() {
	_ = fi.Fire(fi.StageGood)
	_ = fi.Fire(fi.StageUnknown)
	_ = fi.Fire("qq.undeclared") // want "fired at a faultinject.Fire seam but not declared"
}

func uses() {
	_ = failure.AsInternal("zz.unknown", "boom") // want "is used with failure.AsInternal but not declared"
}
