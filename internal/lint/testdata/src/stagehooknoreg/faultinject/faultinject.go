// Package faultinject is the minimal stage-vocabulary fixture for the
// stagehooknoreg tree: the companion server package lacks a knownStages
// registry entirely.
package faultinject

const StageGood = "pta.solve"

// Fire mirrors the real seam entry point; the constant above is seamed in
// seam.go so the missing-registry report is the tree's only finding.
func Fire(stage string) error {
	_ = stage
	return nil
}
