package faultinject

// wire keeps StageGood seamed, isolating the missing-knownStages report.
func wire() error {
	return Fire(StageGood)
}
