// Package server deliberately declares no knownStages registry: /metrics
// could not pre-declare per-stage failure counters.
package server // want "declares no knownStages registry"
