package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// calleeOf resolves a call expression to the declared function or method it
// invokes, or nil for calls through function values, built-ins, and type
// conversions.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// fromPackage reports whether obj is declared in a package named name whose
// import path is canonical or ends in "/<name>" — the latter so linttest
// fixtures (testdata/src/.../<name>) stand in for the real registry
// packages. Objects from unrelated same-named third-party packages cannot
// occur: the module has no dependencies, and mahjongvet is project-specific.
func fromPackage(obj types.Object, name, canonical string) bool {
	pkg := obj.Pkg()
	if pkg == nil || pkg.Name() != name {
		return false
	}
	return pkg.Path() == canonical || strings.HasSuffix(pkg.Path(), "/"+name)
}

// stringVal returns the constant string value of e, if it has one.
func stringVal(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// isContextType reports whether e's static type is context.Context.
func isContextType(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	return t != nil && t.String() == "context.Context"
}

// isPtrToNamed reports whether t is *pkgName.typeName for a package whose
// name is pkgName (path checked as in fromPackage).
func isPtrToNamed(t types.Type, pkgName, typeName string) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && obj.Pkg().Name() == pkgName
}

// usesObject reports whether any identifier under n resolves to obj.
func usesObject(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if id, ok := c.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// funcScope pairs a function-like node with its result list, so checks can
// relate statements to the enclosing function's named returns.
func resultList(n ast.Node) *ast.FieldList {
	switch fn := n.(type) {
	case *ast.FuncDecl:
		return fn.Type.Results
	case *ast.FuncLit:
		return fn.Type.Results
	}
	return nil
}
