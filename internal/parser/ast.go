package parser

// Syntax tree produced by the parser, resolved by build.go. Names are
// kept as strings here; semantic resolution happens in a second phase so
// that declaration order in the source does not matter.

type fileAST struct {
	classes    []*classDecl
	entryClass string
	entryName  string
	entryArity int
	entryLine  int
}

type classDecl struct {
	line        int
	name        string
	isInterface bool
	super       string   // "" for none / Object
	interfaces  []string // implements (classes) or extends (interfaces)
	fields      []*fieldDecl
	methods     []*methodDecl
}

type fieldDecl struct {
	line   int
	name   string
	typ    typeRef
	static bool
}

type methodDecl struct {
	line     int
	name     string
	static   bool
	abstract bool
	params   []paramDecl
	ret      typeRef // zero value means void
	body     []*stmtAST
}

type paramDecl struct {
	name string
	typ  typeRef
}

// typeRef is a source-level type: a dotted class name plus array depth.
type typeRef struct {
	name string // "" means void
	dims int
}

func (t typeRef) isVoid() bool { return t.name == "" }

type stmtKind int8

const (
	sVarDecl  stmtKind = iota // var lhs : typ
	sNew                      // lhs = new typ
	sCopy                     // lhs = rhs
	sGetField                 // lhs = base.sel   (base var → Load, class → StaticLoad)
	sSetField                 // base.sel = rhs
	sGetElem                  // lhs = rhs[]
	sSetElem                  // lhs[] = rhs
	sCast                     // lhs = (typ) rhs
	sCall                     // [lhs =] base.sel(args)  (base var → virtual, class → static)
	sSpecial                  // [lhs =] special base.typ.sel(args)
	sReturn                   // return [rhs]
	sThrow                    // throw rhs
	sCatch                    // lhs = catch typ
)

type stmtAST struct {
	kind stmtKind
	line int
	lhs  string   // assigned variable, or declared variable for sVarDecl
	rhs  string   // source variable
	base []string // dotted receiver: either a local var (1 part) or a class name
	sel  string   // field or method name
	typ  typeRef  // for sVarDecl/sNew/sCast, and callee class for sSpecial
	args []string
}
