package parser

import (
	"fmt"
	"sort"

	"mahjong/internal/lang"
)

// build resolves a fileAST into a lang.Program in four passes:
// classes are created in topological extends-order, then fields and
// method signatures are declared, then bodies are built, then the entry
// point is resolved. Declaration order in the source therefore does not
// matter.
func build(name string, f *fileAST) (*lang.Program, error) {
	b := &builder{file: name, prog: lang.NewProgram()}
	if err := b.declareClasses(f.classes); err != nil {
		return nil, err
	}
	if err := b.declareMembers(f.classes); err != nil {
		return nil, err
	}
	if err := b.buildBodies(f.classes); err != nil {
		return nil, err
	}
	entry := b.prog.Class(f.entryClass)
	if entry == nil {
		return nil, b.errf(f.entryLine, "entry class %q not declared", f.entryClass)
	}
	m := entry.DeclaredMethod(lang.Sig{Name: f.entryName, Arity: f.entryArity})
	if m == nil {
		return nil, b.errf(f.entryLine, "entry method %s.%s/%d not declared", f.entryClass, f.entryName, f.entryArity)
	}
	if !m.IsStatic {
		return nil, b.errf(f.entryLine, "entry method %s must be static", m)
	}
	b.prog.SetEntry(m)
	if err := b.prog.Validate(); err != nil {
		return nil, fmt.Errorf("%s: validation failed: %w", name, err)
	}
	return b.prog, nil
}

type builder struct {
	file string
	prog *lang.Program
}

func (b *builder) errf(line int, format string, args ...any) error {
	return fmt.Errorf("%s:%d: %s", b.file, line, fmt.Sprintf(format, args...))
}

// declareClasses creates all classes in an order compatible with the
// extends/implements relation.
func (b *builder) declareClasses(decls []*classDecl) error {
	byName := make(map[string]*classDecl, len(decls))
	for _, d := range decls {
		if _, dup := byName[d.name]; dup {
			return b.errf(d.line, "duplicate class %q", d.name)
		}
		if d.name == "java.lang.Object" {
			return b.errf(d.line, "java.lang.Object is built in and cannot be redeclared")
		}
		byName[d.name] = d
	}
	// Topological order over super + interface dependencies.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	state := make(map[string]int, len(decls))
	var visit func(d *classDecl) error
	visit = func(d *classDecl) error {
		switch state[d.name] {
		case black:
			return nil
		case grey:
			return b.errf(d.line, "inheritance cycle through %q", d.name)
		}
		state[d.name] = grey
		deps := d.interfaces
		if d.super != "" {
			deps = append([]string{d.super}, deps...)
		}
		for _, dep := range deps {
			if dd, ok := byName[dep]; ok {
				if err := visit(dd); err != nil {
					return err
				}
			} else if dep != "java.lang.Object" {
				return b.errf(d.line, "class %q depends on undeclared %q", d.name, dep)
			}
		}
		state[d.name] = black

		var super *lang.Class
		if d.super != "" {
			super = b.prog.Class(d.super)
			if super.IsInterface {
				return b.errf(d.line, "class %q extends interface %q", d.name, d.super)
			}
		}
		ifaces := make([]*lang.Class, 0, len(d.interfaces))
		for _, in := range d.interfaces {
			ic := b.prog.Class(in)
			if !ic.IsInterface {
				return b.errf(d.line, "%q is not an interface", in)
			}
			ifaces = append(ifaces, ic)
		}
		if d.isInterface {
			b.prog.NewInterface(d.name, ifaces...)
		} else {
			b.prog.NewClass(d.name, super, ifaces...)
		}
		return nil
	}
	for _, d := range decls {
		if err := visit(d); err != nil {
			return err
		}
	}
	return nil
}

func (b *builder) resolveType(line int, tr typeRef) (*lang.Class, error) {
	c := b.prog.Class(tr.name)
	if c == nil {
		return nil, b.errf(line, "unknown type %q", tr.name)
	}
	for i := 0; i < tr.dims; i++ {
		c = b.prog.ArrayOf(c)
	}
	return c, nil
}

func (b *builder) declareMembers(decls []*classDecl) error {
	for _, d := range decls {
		c := b.prog.Class(d.name)
		for _, fd := range d.fields {
			ft, err := b.resolveType(fd.line, fd.typ)
			if err != nil {
				return err
			}
			if c.Field(fd.name) != nil && c.DeclaredMethod(lang.Sig{}) == nil {
				// allow shadowing of inherited fields? The IR forbids it to
				// keep field resolution unambiguous.
				if f := c.Field(fd.name); f != nil && f.Owner != c {
					return b.errf(fd.line, "field %s shadows %s", fd.name, f)
				}
			}
			if fd.static {
				c.NewStaticField(fd.name, ft)
			} else {
				c.NewField(fd.name, ft)
			}
		}
		for _, md := range d.methods {
			var params []*lang.Class
			for _, pd := range md.params {
				pt, err := b.resolveType(md.line, pd.typ)
				if err != nil {
					return err
				}
				params = append(params, pt)
			}
			var ret *lang.Class
			if !md.ret.isVoid() {
				var err error
				ret, err = b.resolveType(md.line, md.ret)
				if err != nil {
					return err
				}
			}
			var m *lang.Method
			if md.abstract {
				m = c.NewAbstractMethod(md.name, params, ret)
			} else {
				m = c.NewMethod(md.name, md.static, params, ret)
			}
			for i, pd := range md.params {
				m.Params[i].Name = pd.name
			}
		}
	}
	return nil
}

func (b *builder) buildBodies(decls []*classDecl) error {
	for _, d := range decls {
		c := b.prog.Class(d.name)
		for _, md := range d.methods {
			if md.abstract {
				continue
			}
			m := c.DeclaredMethod(lang.Sig{Name: md.name, Arity: len(md.params)})
			if err := b.buildBody(m, md); err != nil {
				return err
			}
		}
	}
	return nil
}

type bodyScope struct {
	b    *builder
	m    *lang.Method
	vars map[string]*lang.Var
}

func (s *bodyScope) lookup(line int, name string) (*lang.Var, error) {
	if v, ok := s.vars[name]; ok {
		return v, nil
	}
	return nil, s.b.errf(line, "undeclared variable %q in %s", name, s.m)
}

// resolveBase resolves the dotted base of a field access or call: a
// single-part name that is a local variable wins; otherwise the whole
// dotted name must be a class.
func (s *bodyScope) resolveBase(line int, parts []string) (*lang.Var, *lang.Class, error) {
	if len(parts) == 1 {
		if v, ok := s.vars[parts[0]]; ok {
			return v, nil, nil
		}
	}
	name := dotted(parts)
	if c := s.b.prog.Class(name); c != nil {
		return nil, c, nil
	}
	return nil, nil, s.b.errf(line, "%q is neither a variable nor a class", name)
}

func (b *builder) buildBody(m *lang.Method, md *methodDecl) error {
	s := &bodyScope{b: b, m: m, vars: make(map[string]*lang.Var)}
	if m.This != nil {
		s.vars["this"] = m.This
	}
	for _, pv := range m.Params {
		s.vars[pv.Name] = pv
	}
	for _, st := range md.body {
		if err := b.buildStmt(s, st); err != nil {
			return err
		}
	}
	return nil
}

func (b *builder) buildStmt(s *bodyScope, st *stmtAST) error {
	m := s.m
	switch st.kind {
	case sVarDecl:
		if _, dup := s.vars[st.lhs]; dup {
			return b.errf(st.line, "variable %q redeclared", st.lhs)
		}
		t, err := b.resolveType(st.line, st.typ)
		if err != nil {
			return err
		}
		s.vars[st.lhs] = m.NewVar(st.lhs, t)

	case sNew:
		lhs, err := s.lookup(st.line, st.lhs)
		if err != nil {
			return err
		}
		t, err := b.resolveType(st.line, st.typ)
		if err != nil {
			return err
		}
		m.AddAlloc(lhs, t)

	case sCopy:
		lhs, err := s.lookup(st.line, st.lhs)
		if err != nil {
			return err
		}
		rhs, err := s.lookup(st.line, st.rhs)
		if err != nil {
			return err
		}
		m.AddCopy(lhs, rhs)

	case sGetField:
		lhs, err := s.lookup(st.line, st.lhs)
		if err != nil {
			return err
		}
		base, cls, err := s.resolveBase(st.line, st.base)
		if err != nil {
			return err
		}
		if base != nil {
			f := base.Type.Field(st.sel)
			if f == nil || f.IsStatic {
				return b.errf(st.line, "type %s has no instance field %q", base.Type, st.sel)
			}
			m.AddLoad(lhs, base, f)
		} else {
			f := cls.Field(st.sel)
			if f == nil || !f.IsStatic {
				return b.errf(st.line, "class %s has no static field %q", cls, st.sel)
			}
			m.AddStaticLoad(lhs, f)
		}

	case sSetField:
		rhs, err := s.lookup(st.line, st.rhs)
		if err != nil {
			return err
		}
		base, cls, err := s.resolveBase(st.line, st.base)
		if err != nil {
			return err
		}
		if base != nil {
			f := base.Type.Field(st.sel)
			if f == nil || f.IsStatic {
				return b.errf(st.line, "type %s has no instance field %q", base.Type, st.sel)
			}
			m.AddStore(base, f, rhs)
		} else {
			f := cls.Field(st.sel)
			if f == nil || !f.IsStatic {
				return b.errf(st.line, "class %s has no static field %q", cls, st.sel)
			}
			m.AddStaticStore(f, rhs)
		}

	case sGetElem:
		lhs, err := s.lookup(st.line, st.lhs)
		if err != nil {
			return err
		}
		arr, err := s.lookup(st.line, st.rhs)
		if err != nil {
			return err
		}
		f := arr.Type.Field(lang.ElemField)
		if f == nil {
			return b.errf(st.line, "%s is not an array type", arr.Type)
		}
		m.AddLoad(lhs, arr, f)

	case sSetElem:
		arr, err := s.lookup(st.line, st.lhs)
		if err != nil {
			return err
		}
		rhs, err := s.lookup(st.line, st.rhs)
		if err != nil {
			return err
		}
		f := arr.Type.Field(lang.ElemField)
		if f == nil {
			return b.errf(st.line, "%s is not an array type", arr.Type)
		}
		m.AddStore(arr, f, rhs)

	case sCast:
		lhs, err := s.lookup(st.line, st.lhs)
		if err != nil {
			return err
		}
		rhs, err := s.lookup(st.line, st.rhs)
		if err != nil {
			return err
		}
		t, err := b.resolveType(st.line, st.typ)
		if err != nil {
			return err
		}
		m.AddCast(lhs, t, rhs)

	case sCall:
		var lhs *lang.Var
		if st.lhs != "" {
			var err error
			lhs, err = s.lookup(st.line, st.lhs)
			if err != nil {
				return err
			}
		}
		args, err := b.lookupArgs(s, st)
		if err != nil {
			return err
		}
		base, cls, err := s.resolveBase(st.line, st.base)
		if err != nil {
			return err
		}
		if base != nil {
			sig := lang.Sig{Name: st.sel, Arity: len(args)}
			if base.Type.LookupMethod(sig) == nil {
				return b.errf(st.line, "no method %s on %s", sig, base.Type)
			}
			m.AddVirtualCall(lhs, base, st.sel, args...)
		} else {
			callee := cls.DeclaredMethod(lang.Sig{Name: st.sel, Arity: len(args)})
			if callee == nil || !callee.IsStatic {
				return b.errf(st.line, "no static method %s/%d on %s", st.sel, len(args), cls)
			}
			m.AddStaticCall(lhs, callee, args...)
		}

	case sSpecial:
		var lhs *lang.Var
		if st.lhs != "" {
			var err error
			lhs, err = s.lookup(st.line, st.lhs)
			if err != nil {
				return err
			}
		}
		base, err := s.lookup(st.line, st.base[0])
		if err != nil {
			return err
		}
		cls := b.prog.Class(st.typ.name)
		if cls == nil {
			return b.errf(st.line, "unknown class %q in special call", st.typ.name)
		}
		args, err := b.lookupArgs(s, st)
		if err != nil {
			return err
		}
		callee := cls.DeclaredMethod(lang.Sig{Name: st.sel, Arity: len(args)})
		if callee == nil || callee.IsStatic || callee.IsAbstract {
			return b.errf(st.line, "no concrete instance method %s/%d on %s", st.sel, len(args), cls)
		}
		m.AddSpecialCall(lhs, base, callee, args...)

	case sReturn:
		if st.rhs == "" {
			m.AddReturn(nil)
		} else {
			v, err := s.lookup(st.line, st.rhs)
			if err != nil {
				return err
			}
			m.AddReturn(v)
		}

	case sThrow:
		v, err := s.lookup(st.line, st.rhs)
		if err != nil {
			return err
		}
		m.AddThrow(v)

	case sCatch:
		lhs, err := s.lookup(st.line, st.lhs)
		if err != nil {
			return err
		}
		t, err := b.resolveType(st.line, st.typ)
		if err != nil {
			return err
		}
		m.AddCatch(lhs, t)

	default:
		return b.errf(st.line, "internal: unknown stmt kind %d", st.kind)
	}
	return nil
}

func (b *builder) lookupArgs(s *bodyScope, st *stmtAST) ([]*lang.Var, error) {
	args := make([]*lang.Var, 0, len(st.args))
	for _, a := range st.args {
		v, err := s.lookup(st.line, a)
		if err != nil {
			return nil, err
		}
		args = append(args, v)
	}
	return args, nil
}

// sortedKeys is a small helper used by tests.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
