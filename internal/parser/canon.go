package parser

import (
	"strings"

	"mahjong/internal/lang"
)

// MethodText renders one method in the canonical textual form used by
// Print: signature line, declared locals, then one line per statement.
// Two methods with equal MethodText parse/build to structurally
// identical bodies (same locals in the same order, same statements,
// same allocation-site sequence), which is what makes the text a sound
// content-hash unit for incremental diffing (internal/delta).
func MethodText(m *lang.Method) string {
	var b strings.Builder
	printMethod(&b, m)
	return b.String()
}

// StmtText renders one statement in the canonical line form MethodText
// uses. Statements with equal StmtText impose identical points-to
// constraints up to the (name-preserving) renaming of their method's
// variables and allocation sites — the property internal/delta's
// grown-body matching relies on.
func StmtText(st lang.Stmt) string { return stmtText(st) }

// ClassShape renders the merge-relevant shape of a class: kind, name,
// super, interfaces, declared fields, and declared method signatures —
// everything about the class except method bodies. Programs whose
// classes all share shapes differ at most in method bodies, the
// granularity at which internal/delta can solve incrementally.
func ClassShape(c *lang.Class) string {
	var b strings.Builder
	if c.IsInterface {
		b.WriteString("interface ")
	} else {
		b.WriteString("class ")
	}
	b.WriteString(c.Name)
	if c.Super != nil {
		b.WriteString(" extends ")
		b.WriteString(c.Super.Name)
	}
	for _, it := range c.Interfaces {
		b.WriteString(" implements ")
		b.WriteString(it.Name)
	}
	b.WriteByte('\n')
	for _, f := range c.DeclaredFields {
		if f.IsStatic {
			b.WriteString("  static")
		}
		b.WriteString("  field ")
		b.WriteString(f.Name)
		b.WriteString(": ")
		b.WriteString(f.Type.Name)
		b.WriteByte('\n')
	}
	for _, m := range c.DeclaredMethods {
		if m.IsStatic {
			b.WriteString("  static")
		}
		if m.IsAbstract {
			b.WriteString("  abstract")
		}
		b.WriteString("  method ")
		b.WriteString(m.Name)
		b.WriteByte('(')
		for i, pv := range m.Params {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(pv.Type.Name)
		}
		b.WriteString("): ")
		if m.Ret != nil {
			b.WriteString(m.Ret.Name)
		} else {
			b.WriteString("void")
		}
		b.WriteByte('\n')
	}
	return b.String()
}
