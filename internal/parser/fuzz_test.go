package parser

import (
	"strings"
	"testing"
)

// FuzzParse checks that the parser never panics and that every program
// it accepts survives the Print→Parse round trip with identical
// statistics. Run the seed corpus with `go test`; explore with
// `go test -fuzz=FuzzParse ./internal/parser`.
func FuzzParse(f *testing.F) {
	seeds := []string{
		figure1Src,
		"",
		"entry A.m/0",
		"class A {}\nentry A.m/0",
		"class A { method m(): void { return } }\nentry A.m/0",
		"class A { static method m(): void { return } }\nentry A.m/0",
		"class A { field f: A\n static method m(): void { var x: A\n x = new A\n x.f = x\n x = x.f\n return } }\nentry A.m/0",
		"interface I {}\nclass A implements I { static method m(): void { return } }\nentry A.m/0",
		"class A { static method m(): void { var x: A[]\n x = new A[]\n return } }\nentry A.m/0",
		"class A { static method m(p: A): void { A.m(p) } }\nentry A.m/1",
		"class A extends B {}\nclass B {}\nentry B.m/0",
		"class A { method m(): void { return } \n static method s(): void { var x: A\n x = new A\n special x.A.m() } }\nentry A.s/0",
		"class \x00 {}",
		"class A { field f: }",
		"class A { method m(: void {} }",
		strings.Repeat("class A {}\n", 3),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse("fuzz.ir", src)
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		text := Print(prog)
		prog2, err := Parse("fuzz2.ir", text)
		if err != nil {
			t.Fatalf("printed form rejected: %v\n--- source ---\n%s\n--- printed ---\n%s", err, src, text)
		}
		if prog.Stats() != prog2.Stats() {
			t.Fatalf("stats drift: %+v vs %+v", prog.Stats(), prog2.Stats())
		}
	})
}

// FuzzLexer checks the lexer in isolation: arbitrary bytes must either
// tokenize or produce an error, never panic.
func FuzzLexer(f *testing.F) {
	f.Add("class A { }")
	f.Add("[]()=:,./")
	f.Add("\xff\xfe")
	f.Add("// comment only")
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := lex(src)
		if err != nil {
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].kind != tokEOF {
			t.Fatal("token stream must end with EOF")
		}
	})
}
