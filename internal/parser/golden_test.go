// External test package: the in-package form would cycle now that
// internal/pta (via internal/delta) imports the parser.
package parser_test

import (
	"os"
	"path/filepath"
	"testing"

	"mahjong/internal/clients"
	"mahjong/internal/parser"
	"mahjong/internal/pta"
)

// TestGoldenLuindex parses the checked-in dump of the luindex
// benchmark (produced by cmd/synthgen), verifying that the parser
// handles a full-scale program and that the text is a stable fixpoint
// of Print∘Parse.
func TestGoldenLuindex(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "luindex.ir"))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := parser.Parse("luindex.ir", string(data))
	if err != nil {
		t.Fatal(err)
	}
	st := prog.Stats()
	if st.AllocSites < 500 || st.Methods < 200 {
		t.Fatalf("golden program suspiciously small: %+v", st)
	}

	// Print → Parse → Print is a fixpoint.
	text1 := parser.Print(prog)
	prog2, err := parser.Parse("reprint.ir", text1)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if parser.Print(prog2) != text1 {
		t.Fatal("printer not a fixpoint on golden file")
	}
	if prog.Stats() != prog2.Stats() {
		t.Fatal("stats drifted across round trip")
	}
}

// TestGoldenAnalysisStable pins the context-insensitive client metrics
// of the golden program: any unintended semantic change to the parser,
// the solver or the clients shows up as a diff here.
func TestGoldenAnalysisStable(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "luindex.ir"))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := parser.Parse("luindex.ir", string(data))
	if err != nil {
		t.Fatal(err)
	}
	r, err := pta.Solve(prog, pta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := clients.Evaluate(r)
	want := clients.Metrics{
		CallGraphEdges: 1057, PolyCallSites: 24, MayFailCasts: 68, Reachable: 249,
		EscapingSites: 854, StackAllocSites: 4, MayNullLoads: 20,
	}
	if m != want {
		t.Fatalf("golden metrics drifted: got %+v want %+v\n"+
			"(if the generator or analysis changed intentionally, regenerate "+
			"testdata/luindex.ir with `go run ./cmd/synthgen -benchmark=luindex` "+
			"and update this expectation)", m, want)
	}
}
