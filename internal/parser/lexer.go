// Package parser implements the textual form of the lang IR: a lexer, a
// recursive-descent parser, a semantic builder producing *lang.Program,
// and a printer whose output round-trips through the parser.
//
// The format (see testdata and the README) looks like:
//
//	class A extends B implements I {
//	  field f: A
//	  static field CACHE: A[]
//	  method foo(p: A): A {
//	    var x: A
//	    x = new A
//	    x.f = p
//	    x = p.foo(x)
//	    return x
//	  }
//	}
//	entry Main.main/0
package parser

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokLBrace
	tokRBrace
	tokLParen
	tokRParen
	tokColon
	tokComma
	tokAssign
	tokDot
	tokArr   // the two-character token "[]"
	tokSlash // used in entry arity: Main.main/0
	tokInt
)

var tokenNames = map[tokenKind]string{
	tokEOF: "end of file", tokIdent: "identifier", tokLBrace: "'{'",
	tokRBrace: "'}'", tokLParen: "'('", tokRParen: "')'", tokColon: "':'",
	tokComma: "','", tokAssign: "'='", tokDot: "'.'", tokArr: "'[]'",
	tokSlash: "'/'", tokInt: "integer",
}

type token struct {
	kind tokenKind
	text string
	line int
}

func (t token) String() string {
	if t.kind == tokIdent || t.kind == tokInt {
		return fmt.Sprintf("%q", t.text)
	}
	return tokenNames[t.kind]
}

// lex splits src into tokens. Comments run from "//" to end of line.
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '{':
			toks = append(toks, token{tokLBrace, "{", line})
			i++
		case c == '}':
			toks = append(toks, token{tokRBrace, "}", line})
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", line})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", line})
			i++
		case c == ':':
			toks = append(toks, token{tokColon, ":", line})
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", line})
			i++
		case c == '=':
			toks = append(toks, token{tokAssign, "=", line})
			i++
		case c == '.':
			toks = append(toks, token{tokDot, ".", line})
			i++
		case c == '/':
			toks = append(toks, token{tokSlash, "/", line})
			i++
		case c == '[':
			if i+1 < n && src[i+1] == ']' {
				toks = append(toks, token{tokArr, "[]", line})
				i += 2
			} else {
				return nil, fmt.Errorf("line %d: '[' must be followed by ']'", line)
			}
		case isIdentStart(rune(c)):
			j := i
			for j < n && isIdentPart(rune(src[j])) {
				j++
			}
			toks = append(toks, token{tokIdent, src[i:j], line})
			i = j
		case c >= '0' && c <= '9':
			j := i
			for j < n && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			toks = append(toks, token{tokInt, src[i:j], line})
			i = j
		default:
			return nil, fmt.Errorf("line %d: unexpected character %q", line, rune(c))
		}
	}
	toks = append(toks, token{tokEOF, "", line})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_' || r == '$'
}

func isIdentPart(r rune) bool {
	return isIdentStart(r) || unicode.IsDigit(r)
}

// keywords of the top-level and statement grammar. They are contextual:
// an identifier is a keyword only where the grammar expects one, so
// variables named e.g. "field" still lex as identifiers.
const (
	kwClass      = "class"
	kwInterface  = "interface"
	kwExtends    = "extends"
	kwImplements = "implements"
	kwField      = "field"
	kwStatic     = "static"
	kwMethod     = "method"
	kwAbstract   = "abstract"
	kwVar        = "var"
	kwNew        = "new"
	kwReturn     = "return"
	kwEntry      = "entry"
	kwSpecial    = "special"
	kwVoid       = "void"
	kwThrow      = "throw"
	kwCatch      = "catch"
)

// dotted joins name parts for error messages.
func dotted(parts []string) string { return strings.Join(parts, ".") }
