package parser

import (
	"fmt"

	"mahjong/internal/lang"
)

// Parse parses the textual IR in src and returns the resolved program.
// name is used in error messages (typically a file name).
func Parse(name, src string) (*lang.Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	p := &parser{name: name, toks: toks}
	ast, err := p.file()
	if err != nil {
		return nil, err
	}
	return build(name, ast)
}

type parser struct {
	name string
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) peek() token { return p.toks[p.pos+1] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errf(line int, format string, args ...any) error {
	return fmt.Errorf("%s:%d: %s", p.name, line, fmt.Sprintf(format, args...))
}

func (p *parser) expect(k tokenKind) (token, error) {
	t := p.cur()
	if t.kind != k {
		return t, p.errf(t.line, "expected %s, found %s", tokenNames[k], t)
	}
	return p.next(), nil
}

// atKeyword reports whether the current token is the given contextual keyword.
func (p *parser) atKeyword(kw string) bool {
	t := p.cur()
	return t.kind == tokIdent && t.text == kw
}

func (p *parser) file() (*fileAST, error) {
	f := &fileAST{}
	for {
		t := p.cur()
		switch {
		case t.kind == tokEOF:
			if f.entryName == "" {
				return nil, p.errf(t.line, "missing 'entry' declaration")
			}
			return f, nil
		case p.atKeyword(kwClass), p.atKeyword(kwInterface):
			cd, err := p.classDecl()
			if err != nil {
				return nil, err
			}
			f.classes = append(f.classes, cd)
		case p.atKeyword(kwEntry):
			p.next()
			cls, err := p.dottedName()
			if err != nil {
				return nil, err
			}
			if len(cls) < 2 {
				return nil, p.errf(t.line, "entry must be Class.method, found %q", dotted(cls))
			}
			f.entryClass = dotted(cls[:len(cls)-1])
			f.entryName = cls[len(cls)-1]
			f.entryLine = t.line
			if p.cur().kind == tokSlash {
				p.next()
				it, err := p.expect(tokInt)
				if err != nil {
					return nil, err
				}
				for _, c := range it.text {
					f.entryArity = f.entryArity*10 + int(c-'0')
				}
			}
		default:
			return nil, p.errf(t.line, "expected 'class', 'interface' or 'entry', found %s", t)
		}
	}
}

// dottedName parses ident (. ident)* and returns the parts.
func (p *parser) dottedName() ([]string, error) {
	t, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	parts := []string{t.text}
	for p.cur().kind == tokDot {
		// Only continue when an identifier follows: "x.f = y" must not
		// swallow the '=' position.
		if p.peek().kind != tokIdent {
			break
		}
		p.next()
		t, err = p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		parts = append(parts, t.text)
	}
	return parts, nil
}

// typeRefAfter parses a dotted type name with optional [] suffixes.
func (p *parser) typeRef() (typeRef, error) {
	if p.atKeyword(kwVoid) {
		p.next()
		return typeRef{}, nil
	}
	parts, err := p.dottedName()
	if err != nil {
		return typeRef{}, err
	}
	tr := typeRef{name: dotted(parts)}
	for p.cur().kind == tokArr {
		p.next()
		tr.dims++
	}
	return tr, nil
}

func (p *parser) classDecl() (*classDecl, error) {
	t := p.next() // class | interface
	cd := &classDecl{line: t.line, isInterface: t.text == kwInterface}
	nameParts, err := p.dottedName()
	if err != nil {
		return nil, err
	}
	cd.name = dotted(nameParts)
	if p.atKeyword(kwExtends) {
		p.next()
		sup, err := p.dottedName()
		if err != nil {
			return nil, err
		}
		if cd.isInterface {
			cd.interfaces = append(cd.interfaces, dotted(sup))
			for p.cur().kind == tokComma {
				p.next()
				more, err := p.dottedName()
				if err != nil {
					return nil, err
				}
				cd.interfaces = append(cd.interfaces, dotted(more))
			}
		} else {
			cd.super = dotted(sup)
		}
	}
	if p.atKeyword(kwImplements) {
		if cd.isInterface {
			return nil, p.errf(p.cur().line, "interface %s cannot use 'implements'", cd.name)
		}
		p.next()
		for {
			in, err := p.dottedName()
			if err != nil {
				return nil, err
			}
			cd.interfaces = append(cd.interfaces, dotted(in))
			if p.cur().kind != tokComma {
				break
			}
			p.next()
		}
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	for p.cur().kind != tokRBrace {
		if p.cur().kind == tokEOF {
			return nil, p.errf(cd.line, "unterminated class %s", cd.name)
		}
		static := false
		if p.atKeyword(kwStatic) {
			p.next()
			static = true
		}
		abstract := false
		if p.atKeyword(kwAbstract) {
			p.next()
			abstract = true
		}
		switch {
		case p.atKeyword(kwField):
			if abstract {
				return nil, p.errf(p.cur().line, "field cannot be abstract")
			}
			fd, err := p.fieldDecl(static)
			if err != nil {
				return nil, err
			}
			cd.fields = append(cd.fields, fd)
		case p.atKeyword(kwMethod):
			md, err := p.methodDecl(static, abstract || cd.isInterface)
			if err != nil {
				return nil, err
			}
			cd.methods = append(cd.methods, md)
		default:
			return nil, p.errf(p.cur().line, "expected 'field' or 'method' in class %s, found %s", cd.name, p.cur())
		}
	}
	p.next() // }
	return cd, nil
}

func (p *parser) fieldDecl(static bool) (*fieldDecl, error) {
	t := p.next() // field
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokColon); err != nil {
		return nil, err
	}
	tr, err := p.typeRef()
	if err != nil {
		return nil, err
	}
	if tr.isVoid() {
		return nil, p.errf(t.line, "field %s cannot be void", name.text)
	}
	return &fieldDecl{line: t.line, name: name.text, typ: tr, static: static}, nil
}

func (p *parser) methodDecl(static, abstract bool) (*methodDecl, error) {
	t := p.next() // method
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	md := &methodDecl{line: t.line, name: name.text, static: static, abstract: abstract}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	for p.cur().kind != tokRParen {
		pn, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokColon); err != nil {
			return nil, err
		}
		tr, err := p.typeRef()
		if err != nil {
			return nil, err
		}
		if tr.isVoid() {
			return nil, p.errf(pn.line, "parameter %s cannot be void", pn.text)
		}
		md.params = append(md.params, paramDecl{name: pn.text, typ: tr})
		if p.cur().kind == tokComma {
			p.next()
		}
	}
	p.next() // )
	if _, err := p.expect(tokColon); err != nil {
		return nil, err
	}
	md.ret, err = p.typeRef()
	if err != nil {
		return nil, err
	}
	if md.abstract {
		return md, nil
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	for p.cur().kind != tokRBrace {
		if p.cur().kind == tokEOF {
			return nil, p.errf(md.line, "unterminated method %s", md.name)
		}
		st, err := p.stmt()
		if err != nil {
			return nil, err
		}
		md.body = append(md.body, st)
	}
	p.next() // }
	return md, nil
}

func (p *parser) argList() ([]string, error) {
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	var args []string
	for p.cur().kind != tokRParen {
		a, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		args = append(args, a.text)
		if p.cur().kind == tokComma {
			p.next()
		}
	}
	p.next() // )
	return args, nil
}

func (p *parser) stmt() (*stmtAST, error) {
	t := p.cur()
	switch {
	case p.atKeyword(kwVar):
		p.next()
		name, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokColon); err != nil {
			return nil, err
		}
		tr, err := p.typeRef()
		if err != nil {
			return nil, err
		}
		if tr.isVoid() {
			return nil, p.errf(t.line, "variable %s cannot be void", name.text)
		}
		return &stmtAST{kind: sVarDecl, line: t.line, lhs: name.text, typ: tr}, nil

	case p.atKeyword(kwReturn):
		p.next()
		st := &stmtAST{kind: sReturn, line: t.line}
		if p.cur().kind == tokIdent && !p.startsStmt() {
			st.rhs = p.next().text
		}
		return st, nil

	case p.atKeyword(kwThrow):
		p.next()
		v, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		return &stmtAST{kind: sThrow, line: t.line, rhs: v.text}, nil

	case p.atKeyword(kwSpecial):
		return p.specialCall(t.line, "")

	case t.kind == tokIdent:
		return p.assignOrCall()

	default:
		return nil, p.errf(t.line, "expected statement, found %s", t)
	}
}

// startsStmt reports whether the current identifier begins a new
// statement keyword, used to disambiguate a bare `return` followed by
// another statement.
func (p *parser) startsStmt() bool {
	switch p.cur().text {
	case kwVar, kwReturn, kwSpecial, kwThrow:
		return true
	}
	// `x = ...`, `x.f = ...`, `x.m(...)`, `x[] = ...` all continue with
	// '=', '.', '(' or '[]'; a lone identifier at end of body is a return value.
	switch p.peek().kind {
	case tokAssign, tokDot, tokLParen, tokArr:
		return true
	}
	return false
}

func (p *parser) specialCall(line int, lhs string) (*stmtAST, error) {
	p.next() // special
	recv, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokDot); err != nil {
		return nil, err
	}
	parts, err := p.dottedName()
	if err != nil {
		return nil, err
	}
	if len(parts) < 2 {
		return nil, p.errf(line, "special call needs Class.method after receiver")
	}
	args, err := p.argList()
	if err != nil {
		return nil, err
	}
	return &stmtAST{
		kind: sSpecial, line: line, lhs: lhs,
		base: []string{recv.text},
		typ:  typeRef{name: dotted(parts[:len(parts)-1])},
		sel:  parts[len(parts)-1],
		args: args,
	}, nil
}

// assignOrCall parses statements that begin with an identifier.
func (p *parser) assignOrCall() (*stmtAST, error) {
	line := p.cur().line
	first, err := p.dottedName()
	if err != nil {
		return nil, err
	}
	switch p.cur().kind {
	case tokArr: // x[] = y
		p.next()
		if len(first) != 1 {
			return nil, p.errf(line, "array store base must be a variable, found %q", dotted(first))
		}
		if _, err := p.expect(tokAssign); err != nil {
			return nil, err
		}
		rhs, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		return &stmtAST{kind: sSetElem, line: line, lhs: first[0], rhs: rhs.text}, nil

	case tokLParen: // base.m(args) with no lhs
		if len(first) < 2 {
			return nil, p.errf(line, "call needs a receiver or class qualifier: %q", dotted(first))
		}
		args, err := p.argList()
		if err != nil {
			return nil, err
		}
		return &stmtAST{kind: sCall, line: line, base: first[:len(first)-1], sel: first[len(first)-1], args: args}, nil

	case tokAssign:
		p.next()
		if len(first) > 1 { // base.f = rhs  (instance or static store)
			rhs, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			return &stmtAST{kind: sSetField, line: line, base: first[:len(first)-1], sel: first[len(first)-1], rhs: rhs.text}, nil
		}
		return p.assignRHS(line, first[0])

	default:
		return nil, p.errf(line, "expected '=', '(' or '[]' after %q, found %s", dotted(first), p.cur())
	}
}

// assignRHS parses the right-hand side of `lhs = ...`.
func (p *parser) assignRHS(line int, lhs string) (*stmtAST, error) {
	switch {
	case p.atKeyword(kwCatch):
		p.next()
		tr, err := p.typeRef()
		if err != nil {
			return nil, err
		}
		if tr.isVoid() {
			return nil, p.errf(line, "cannot catch void")
		}
		return &stmtAST{kind: sCatch, line: line, lhs: lhs, typ: tr}, nil

	case p.atKeyword(kwNew):
		p.next()
		tr, err := p.typeRef()
		if err != nil {
			return nil, err
		}
		if tr.isVoid() {
			return nil, p.errf(line, "cannot allocate void")
		}
		return &stmtAST{kind: sNew, line: line, lhs: lhs, typ: tr}, nil

	case p.atKeyword(kwSpecial):
		return p.specialCall(line, lhs)

	case p.cur().kind == tokLParen: // cast: lhs = (T) rhs
		p.next()
		tr, err := p.typeRef()
		if err != nil {
			return nil, err
		}
		if tr.isVoid() {
			return nil, p.errf(line, "cannot cast to void")
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		rhs, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		return &stmtAST{kind: sCast, line: line, lhs: lhs, typ: tr, rhs: rhs.text}, nil

	case p.cur().kind == tokIdent:
		parts, err := p.dottedName()
		if err != nil {
			return nil, err
		}
		switch p.cur().kind {
		case tokLParen: // lhs = base.m(args)
			if len(parts) < 2 {
				return nil, p.errf(line, "call needs a receiver or class qualifier: %q", dotted(parts))
			}
			args, err := p.argList()
			if err != nil {
				return nil, err
			}
			return &stmtAST{kind: sCall, line: line, lhs: lhs, base: parts[:len(parts)-1], sel: parts[len(parts)-1], args: args}, nil
		case tokArr: // lhs = rhs[]
			p.next()
			if len(parts) != 1 {
				return nil, p.errf(line, "array load base must be a variable, found %q", dotted(parts))
			}
			return &stmtAST{kind: sGetElem, line: line, lhs: lhs, rhs: parts[0]}, nil
		default:
			if len(parts) == 1 { // lhs = rhs
				return &stmtAST{kind: sCopy, line: line, lhs: lhs, rhs: parts[0]}, nil
			}
			// lhs = base.f (instance or static load)
			return &stmtAST{kind: sGetField, line: line, lhs: lhs, base: parts[:len(parts)-1], sel: parts[len(parts)-1]}, nil
		}

	default:
		return nil, p.errf(line, "unexpected %s after '='", p.cur())
	}
}
