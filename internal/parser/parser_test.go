package parser

import (
	"strings"
	"testing"

	"mahjong/internal/lang"
)

// figure1Src is the motivating program of the paper (Figure 1) in the
// textual IR.
const figure1Src = `
// Figure 1 of the Mahjong paper.
class A {
  field f: A
  method foo(): void { return }
}
class B extends A {
  method foo(): void { return }
}
class C extends A {
  method foo(): void { return }
}
class Main {
  static method main(): void {
    var x: A
    var y: A
    var z: A
    var a: A
    var c: C
    var t: A
    x = new A
    y = new A
    z = new A
    t = new B
    x.f = t
    t = new C
    y.f = t
    t = new C
    z.f = t
    a = z.f
    a.foo()
    c = (C) a
    return
  }
}
entry Main.main/0
`

func mustParse(t *testing.T, src string) *lang.Program {
	t.Helper()
	p, err := Parse("test.ir", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return p
}

func TestParseFigure1(t *testing.T) {
	p := mustParse(t, figure1Src)
	st := p.Stats()
	if st.AllocSites != 6 {
		t.Fatalf("alloc sites=%d want 6", st.AllocSites)
	}
	if st.CallSites != 1 {
		t.Fatalf("call sites=%d want 1", st.CallSites)
	}
	a := p.Class("A")
	if a == nil || a.Field("f") == nil {
		t.Fatal("class A or field f missing")
	}
	b := p.Class("B")
	if !b.SubtypeOf(a) {
		t.Fatal("B <: A missing")
	}
	if p.Entry == nil || p.Entry.Name != "main" {
		t.Fatal("entry not set")
	}
}

func TestDeclarationOrderIrrelevant(t *testing.T) {
	src := `
class B extends A {}
class A implements I {}
interface I {}
class Main { static method main(): void { return } }
entry Main.main
`
	p := mustParse(t, src)
	if !p.Class("B").SubtypeOf(p.Class("I")) {
		t.Fatal("B should implement I via A")
	}
}

func TestInterfaceExtends(t *testing.T) {
	src := `
interface I {}
interface J extends I {}
class A implements J {
  method m(): void { return }
}
class Main { static method main(): void { return } }
entry Main.main/0
`
	p := mustParse(t, src)
	if !p.Class("A").SubtypeOf(p.Class("I")) {
		t.Fatal("A <: I via J failed")
	}
}

func TestArraysAndStatics(t *testing.T) {
	src := `
class A {
  static field CACHE: A[]
}
class Main {
  static method main(): void {
    var arr: A[]
    var x: A
    arr = new A[]
    x = new A
    arr[] = x
    x = arr[]
    A.CACHE = arr
    arr = A.CACHE
    return
  }
}
entry Main.main/0
`
	p := mustParse(t, src)
	arr := p.Class("A[]")
	if arr == nil || !arr.IsArray() {
		t.Fatal("array class not created")
	}
	cache := p.Class("A").Field("CACHE")
	if cache == nil || !cache.IsStatic || cache.Type != arr {
		t.Fatalf("CACHE resolved wrong: %+v", cache)
	}
	// Statement mix: 2 allocs, elem store/load, static store/load.
	m := p.Entry
	kinds := map[string]int{}
	for _, st := range m.Stmts {
		switch st.(type) {
		case *lang.Alloc:
			kinds["alloc"]++
		case *lang.Load:
			kinds["load"]++
		case *lang.Store:
			kinds["store"]++
		case *lang.StaticLoad:
			kinds["sload"]++
		case *lang.StaticStore:
			kinds["sstore"]++
		}
	}
	for k, want := range map[string]int{"alloc": 2, "load": 1, "store": 1, "sload": 1, "sstore": 1} {
		if kinds[k] != want {
			t.Errorf("%s count=%d want %d (stmts: %v)", k, kinds[k], want, m.Stmts)
		}
	}
}

func TestCallsAllKinds(t *testing.T) {
	src := `
class A {
  method init(v: A): void { return }
  method id(v: A): A { return v }
  static method make(): A {
    var a: A
    a = new A
    return a
  }
}
class B extends A {
  method id(v: A): A {
    var r: A
    r = special this.A.id(v)
    return r
  }
}
class Main {
  static method main(): void {
    var a: A
    var b: A
    a = A.make()
    b = new B
    special b.A.init(a)
    a = b.id(a)
    b.id(a)
    return
  }
}
entry Main.main/0
`
	p := mustParse(t, src)
	var kinds []lang.InvokeKind
	for _, st := range p.Entry.Stmts {
		if inv, ok := st.(*lang.Invoke); ok {
			kinds = append(kinds, inv.Kind)
		}
	}
	want := []lang.InvokeKind{lang.StaticCall, lang.SpecialCall, lang.VirtualCall, lang.VirtualCall}
	if len(kinds) != len(want) {
		t.Fatalf("kinds=%v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("call %d kind=%v want %v", i, kinds[i], want[i])
		}
	}
}

func TestAbstractAndInterfaceMethods(t *testing.T) {
	src := `
interface Runnable {
  method run(): void
}
class Base {
  abstract method step(): Base
}
class Impl extends Base implements Runnable {
  method step(): Base { return this }
  method run(): void { return }
}
class Main {
  static method main(): void {
    var r: Runnable
    var b: Base
    var i: Impl
    i = new Impl
    r = i
    b = i
    r.run()
    b = b.step()
    return
  }
}
entry Main.main/0
`
	p := mustParse(t, src)
	run := p.Class("Runnable").DeclaredMethod(lang.Sig{Name: "run", Arity: 0})
	if run == nil || !run.IsAbstract {
		t.Fatal("interface method should be abstract")
	}
	if got := p.Class("Impl").Dispatch(lang.Sig{Name: "step", Arity: 0}); got == nil || got.Owner.Name != "Impl" {
		t.Fatalf("dispatch Impl.step=%v", got)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"lex", "class A { \x01 }", "unexpected character"},
		{"lbracket", "class A[ {}", "'[' must be followed"},
		{"noentry", "class A {}", "missing 'entry'"},
		{"badentry", "class A {}\nentry A.main/0", "not declared"},
		{"cycle", "class A extends B {}\nclass B extends A {}\nentry A.m/0", "cycle"},
		{"undeclared-super", "class A extends Zzz {}\nentry A.m/0", "undeclared"},
		{"dup-class", "class A {}\nclass A {}\nentry A.m/0", "duplicate class"},
		{"undeclared-var", "class M { static method main(): void { x = new M } }\nentry M.main/0", "undeclared variable"},
		{"unknown-type", "class M { static method main(): void { var x: Q } }\nentry M.main/0", `unknown type "Q"`},
		{"no-field", "class M { static method main(): void { var x: M\n x = new M\n x = x.f } }\nentry M.main/0", "no instance field"},
		{"no-method", "class M { static method main(): void { var x: M\n x = new M\n x.foo() } }\nentry M.main/0", "no method"},
		{"redeclare", "class M { static method main(): void { var x: M\n var x: M } }\nentry M.main/0", "redeclared"},
		{"object-redecl", "class java.lang.Object {}\nentry X.m/0", "built in"},
		{"iface-implements", "interface I implements I {}\nentry X.m/0", "cannot use 'implements'"},
		{"void-var", "class M { static method main(): void { var x: void } }\nentry M.main/0", "cannot be void"},
		{"instance-entry", "class M { method main(): void { return } }\nentry M.main/0", "must be static"},
		{"extends-iface", "interface I {}\nclass A extends I {}\nentry A.m/0", "extends interface"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.name+".ir", tc.src)
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// TestRoundTrip checks Print∘Parse is a fixpoint: parsing the printed
// form and printing again yields identical text.
func TestRoundTrip(t *testing.T) {
	for _, src := range []string{figure1Src} {
		p1 := mustParse(t, src)
		text1 := Print(p1)
		p2, err := Parse("printed.ir", text1)
		if err != nil {
			t.Fatalf("reparse failed: %v\n--- printed ---\n%s", err, text1)
		}
		text2 := Print(p2)
		if text1 != text2 {
			t.Fatalf("round trip not stable:\n--- first ---\n%s\n--- second ---\n%s", text1, text2)
		}
		s1, s2 := p1.Stats(), p2.Stats()
		if s1 != s2 {
			t.Fatalf("stats changed across round trip: %+v vs %+v", s1, s2)
		}
	}
}

func TestPrintContainsDecls(t *testing.T) {
	p := mustParse(t, figure1Src)
	out := Print(p)
	for _, want := range []string{
		"class B extends A {", "field f: A", "static method main(): void",
		"x = new A", "a.foo()", "c = (C) a", "entry Main.main/0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("printed output missing %q\n%s", want, out)
		}
	}
}

func TestSortedKeysHelper(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2}
	got := sortedKeys(m)
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("sortedKeys=%v", got)
	}
}

func TestThrowCatch(t *testing.T) {
	src := `
class Err {}
class IOErr extends Err {}
class Lib {
  static method fail(): void {
    var e: IOErr
    e = new IOErr
    throw e
    return
  }
}
class Main {
  static method main(): void {
    var c: Err
    Lib.fail()
    c = catch Err
    return
  }
}
entry Main.main/0
`
	p := mustParse(t, src)
	var throws, catches int
	for _, m := range p.Methods {
		for _, st := range m.Stmts {
			switch st.(type) {
			case *lang.Throw:
				throws++
			case *lang.Catch:
				catches++
			}
		}
	}
	if throws != 1 || catches != 1 {
		t.Fatalf("throws=%d catches=%d", throws, catches)
	}
	// Round trip.
	text := Print(p)
	if !strings.Contains(text, "throw e") || !strings.Contains(text, "c = catch Err") {
		t.Fatalf("printed form missing exception stmts:\n%s", text)
	}
	p2, err := Parse("reprint.ir", text)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if p.Stats() != p2.Stats() {
		t.Fatal("stats drift across exception round trip")
	}
}

func TestThrowErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"undeclared-throw", "class M { static method m(): void { throw x } }\nentry M.m/0", "undeclared variable"},
		{"catch-void", "class M { static method m(): void { var x: M\n x = catch void } }\nentry M.m/0", "cannot catch void"},
		{"catch-unknown", "class M { static method m(): void { var x: M\n x = catch Q } }\nentry M.m/0", "unknown type"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.name, tc.src)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err=%v want contains %q", err, tc.want)
			}
		})
	}
}
