package parser

import (
	"fmt"
	"strings"

	"mahjong/internal/lang"
)

// Print renders a program in the textual IR format accepted by Parse.
// Array classes are omitted (they are created on demand by the parser)
// and synthetic variables (this, parameters, $ret) are not re-declared.
// Print(Parse(s)) is semantically idempotent; see the round-trip tests.
func Print(p *lang.Program) string {
	var b strings.Builder
	for _, c := range p.Classes {
		if c == p.Object() || c.IsArray() {
			continue
		}
		printClass(&b, p, c)
		b.WriteByte('\n')
	}
	if p.Entry != nil {
		fmt.Fprintf(&b, "entry %s.%s/%d\n", p.Entry.Owner.Name, p.Entry.Name, len(p.Entry.Params))
	}
	return b.String()
}

func typeName(c *lang.Class) string { return c.Name }

func printClass(b *strings.Builder, p *lang.Program, c *lang.Class) {
	if c.IsInterface {
		fmt.Fprintf(b, "interface %s", c.Name)
		if len(c.Interfaces) > 0 {
			b.WriteString(" extends ")
			writeNameList(b, c.Interfaces)
		}
	} else {
		fmt.Fprintf(b, "class %s", c.Name)
		if c.Super != nil && c.Super != p.Object() {
			fmt.Fprintf(b, " extends %s", c.Super.Name)
		}
		if len(c.Interfaces) > 0 {
			b.WriteString(" implements ")
			writeNameList(b, c.Interfaces)
		}
	}
	b.WriteString(" {\n")
	for _, f := range c.DeclaredFields {
		if f.IsStatic {
			fmt.Fprintf(b, "  static field %s: %s\n", f.Name, typeName(f.Type))
		} else {
			fmt.Fprintf(b, "  field %s: %s\n", f.Name, typeName(f.Type))
		}
	}
	for _, m := range c.DeclaredMethods {
		printMethod(b, m)
	}
	b.WriteString("}\n")
}

func writeNameList(b *strings.Builder, cs []*lang.Class) {
	for i, c := range cs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name)
	}
}

func printMethod(b *strings.Builder, m *lang.Method) {
	b.WriteString("  ")
	if m.IsStatic {
		b.WriteString("static ")
	}
	if m.IsAbstract && !m.Owner.IsInterface {
		b.WriteString("abstract ")
	}
	fmt.Fprintf(b, "method %s(", m.Name)
	for i, pv := range m.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(b, "%s: %s", pv.Name, typeName(pv.Type))
	}
	b.WriteString("): ")
	if m.Ret == nil {
		b.WriteString("void")
	} else {
		b.WriteString(typeName(m.Ret))
	}
	if m.IsAbstract {
		b.WriteByte('\n')
		return
	}
	b.WriteString(" {\n")
	declared := map[*lang.Var]bool{m.This: true, m.RetVar: true}
	for _, pv := range m.Params {
		declared[pv] = true
	}
	for _, v := range m.Locals {
		if v.Name == "$exc" {
			continue // synthetic; recreated on demand by throw/catch/calls
		}
		if !declared[v] {
			fmt.Fprintf(b, "    var %s: %s\n", v.Name, typeName(v.Type))
		}
	}
	for _, st := range m.Stmts {
		fmt.Fprintf(b, "    %s\n", stmtText(st))
	}
	b.WriteString("  }\n")
}

func stmtText(st lang.Stmt) string {
	switch s := st.(type) {
	case *lang.Alloc:
		return fmt.Sprintf("%s = new %s", s.LHS.Name, typeName(s.Site.Type))
	case *lang.Copy:
		return fmt.Sprintf("%s = %s", s.LHS.Name, s.RHS.Name)
	case *lang.Load:
		if s.Field.Name == lang.ElemField {
			return fmt.Sprintf("%s = %s[]", s.LHS.Name, s.Base.Name)
		}
		return fmt.Sprintf("%s = %s.%s", s.LHS.Name, s.Base.Name, s.Field.Name)
	case *lang.Store:
		if s.Field.Name == lang.ElemField {
			return fmt.Sprintf("%s[] = %s", s.Base.Name, s.RHS.Name)
		}
		return fmt.Sprintf("%s.%s = %s", s.Base.Name, s.Field.Name, s.RHS.Name)
	case *lang.StaticLoad:
		return fmt.Sprintf("%s = %s.%s", s.LHS.Name, s.Field.Owner.Name, s.Field.Name)
	case *lang.StaticStore:
		return fmt.Sprintf("%s.%s = %s", s.Field.Owner.Name, s.Field.Name, s.RHS.Name)
	case *lang.Cast:
		return fmt.Sprintf("%s = (%s) %s", s.LHS.Name, typeName(s.Type), s.RHS.Name)
	case *lang.Invoke:
		var b strings.Builder
		if s.LHS != nil {
			b.WriteString(s.LHS.Name)
			b.WriteString(" = ")
		}
		switch s.Kind {
		case lang.VirtualCall:
			fmt.Fprintf(&b, "%s.%s", s.Base.Name, s.Callee.Name)
		case lang.StaticCall:
			fmt.Fprintf(&b, "%s.%s", s.Callee.Owner.Name, s.Callee.Name)
		case lang.SpecialCall:
			fmt.Fprintf(&b, "special %s.%s.%s", s.Base.Name, s.Callee.Owner.Name, s.Callee.Name)
		}
		b.WriteByte('(')
		for i, a := range s.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(a.Name)
		}
		b.WriteByte(')')
		return b.String()
	case *lang.Return:
		if s.Value == nil {
			return "return"
		}
		return "return " + s.Value.Name
	case *lang.Throw:
		return "throw " + s.Value.Name
	case *lang.Catch:
		return fmt.Sprintf("%s = catch %s", s.LHS.Name, typeName(s.Type))
	default:
		return fmt.Sprintf("// unknown stmt %T", st)
	}
}
