package pta

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"mahjong/internal/lang"
)

// bigProgram builds a program whose solve performs well over 4096 work
// units (the solver's cancellation-check stride): allocs copies of many
// objects down a long chain of variables.
func bigProgram(t testing.TB) *lang.Program {
	t.Helper()
	p := lang.NewProgram()
	a := p.NewClass("A", nil)
	mainCls := p.NewClass("Main", nil)
	m := mainCls.NewMethod("main", true, nil, nil)
	const allocs, chain = 64, 256
	v := m.NewVar("v0", a)
	for i := 0; i < allocs; i++ {
		m.AddAlloc(v, a)
	}
	prev := v
	for i := 1; i <= chain; i++ {
		next := m.NewVar(fmt.Sprintf("v%d", i), a)
		m.AddCopy(next, prev)
		prev = next
	}
	m.AddReturn(nil)
	p.SetEntry(m)
	if err := p.Validate(); err != nil {
		t.Fatalf("bigProgram invalid: %v", err)
	}
	return p
}

func TestSolveContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SolveContext(ctx, bigProgram(t), Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want wrapped context.Canceled, got %v", err)
	}
}

func TestSolveContextExpiredDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := SolveContext(ctx, bigProgram(t), Options{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want wrapped context.DeadlineExceeded, got %v", err)
	}
}

// flipCtx reports no error for its first two Err calls (the pre-run
// check plus one in-loop check), then reports cancellation — a
// deterministic stand-in for a context cancelled mid-solve. Per the
// context.Context contract it advertises cancellability with a non-nil
// Done channel (the solver uses Done() != nil to decide whether the
// context can ever fire and is worth polling).
type flipCtx struct {
	context.Context
	calls int
	done  chan struct{}
}

func (c *flipCtx) Done() <-chan struct{} { return c.done }

func (c *flipCtx) Err() error {
	c.calls++
	if c.calls > 2 {
		return context.Canceled
	}
	return nil
}

func TestSolveContextMidRunCancellation(t *testing.T) {
	prog := bigProgram(t)
	fc := &flipCtx{Context: context.Background(), done: make(chan struct{})}
	_, err := SolveContext(fc, prog, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want wrapped context.Canceled mid-run, got %v", err)
	}
	if fc.calls <= 2 {
		t.Fatalf("solver never reached the worklist-loop cancellation check (%d Err calls)", fc.calls)
	}
}

// uncomparableCtx has an uncomparable dynamic type (a struct carrying a
// slice, passed by value). The pre-fix solver compared
// ctx != context.Background(), and interface comparison PANICS when the
// dynamic type is uncomparable — an arbitrary caller-supplied context
// could crash the solve before it started.
type uncomparableCtx struct {
	context.Context
	_ []int
}

func TestSolveContextUncomparableImplementation(t *testing.T) {
	prog := bigProgram(t)
	res, err := SolveContext(uncomparableCtx{Context: context.Background()}, prog, Options{})
	if err != nil {
		t.Fatalf("solve under an uncomparable context: %v (the old identity comparison panicked here)", err)
	}
	if res.Work == 0 {
		t.Fatal("solve did no work")
	}
}

// A value-carrying child of context.Background is semantically background:
// it can never be cancelled and carries no deadline. The old identity
// comparison misclassified it as cancellable; the Done()==nil check must
// treat it exactly like Background.
func TestSolveContextValueOnlyChildIsBackground(t *testing.T) {
	prog := bigProgram(t)
	type key struct{}
	want, err := SolveContext(context.Background(), prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := SolveContext(context.WithValue(context.Background(), key{}, "v"), prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Work != want.Work || got.Aborted != want.Aborted {
		t.Fatalf("value-only child diverged from Background: work %d vs %d", got.Work, want.Work)
	}
}

func TestSolveContextBackgroundUnchanged(t *testing.T) {
	prog := bigProgram(t)
	want, err := Solve(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := SolveContext(context.Background(), prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Work != want.Work || got.Aborted != want.Aborted {
		t.Fatalf("SolveContext(Background) diverged: work %d vs %d", got.Work, want.Work)
	}
}

// Budget semantics must survive the refactor: overruns still return a
// partial result with Aborted=true and a nil error, not a ctx error.
func TestSolveContextBudgetStillAborts(t *testing.T) {
	r, err := SolveContext(context.Background(), bigProgram(t), Options{Budget: Budget{Work: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Aborted {
		t.Fatal("want Aborted=true on budget overrun")
	}
}
