package pta

import (
	"runtime/debug"

	"mahjong/internal/bitset"
	"mahjong/internal/failure"
	"mahjong/internal/faultinject"
	"mahjong/internal/unionfind"
)

// Copy-cycle collapsing.
//
// Filter-free copy edges that form a cycle force every member onto the
// same points-to set at the fixpoint, yet the naive solver re-propagates
// each fact once per member, per lap. The solver therefore condenses
// strongly connected components of the copy subgraph onto one
// representative node (union-find), so a cycle propagates once.
//
// Detection is lazy, in the spirit of Nuutila's online SCC variant:
// rather than paying a reachability query on every copy-edge insertion,
// the solver counts insertions (solver.newCopyEdges) and runs one
// iterative SCC pass over the current copy subgraph when the count
// crosses solver.sccTrigger; the trigger then scales with the graph so
// the total condensation cost stays O(E · log E). The pass runs only
// between worklist pops — never inside statement processing — so no
// interior pointers into solver.nodes are live while nodes are merged.
//
// Collapsing is semantics-preserving: members of a filter-free copy
// cycle have provably equal sets at the fixpoint, and after a merge the
// representative re-propagates its full set once so that every
// inherited successor edge and varInfo observes every fact.

const sccMinTrigger = 128

// collapseCycles runs one condensation pass and resets the trigger.
func (s *solver) collapseCycles() {
	// Each pass gets its own child span under the solve span. A budget
	// or cancellation sentinel (or a panic) can unwind mid-Tarjan, past
	// this frame without returning; the deferred CloseAborted closes the
	// span during that unwind — no recover here, the sentinel must keep
	// travelling to run()'s handler — while the normal path's End wins
	// when the pass completes.
	csp := s.span.Ctx().Start(faultinject.StageCollapse)
	defer csp.CloseAborted()
	// Injection seam for the fault matrix: a typed error panics through
	// the run loop's sentinel recovery (which re-raises non-sentinels)
	// into the stage guard, reproducing a bug striking while Tarjan
	// state is live; the pre-typed stage keeps "pta.collapse" visible in
	// per-stage failure counters.
	if err := faultinject.Fire(faultinject.StageCollapse); err != nil {
		panic(&failure.InternalError{Stage: faultinject.StageCollapse, Value: err, Stack: debug.Stack()})
	}
	sccsBefore, nodesBefore := s.stats.CollapsedSCCs, s.stats.CollapsedNodes
	s.newCopyEdges = 0
	s.stats.SCCPasses++
	s.tarjanCopySCCs()
	// Re-arm: another pass only after the copy subgraph has grown by a
	// constant fraction, keeping the amortized cost near-linear.
	s.sccTrigger = s.stats.CopyEdges / 4
	if s.sccTrigger < sccMinTrigger {
		s.sccTrigger = sccMinTrigger
	}
	// Per-pass deltas: summed over all collapse spans they equal the
	// solve span's totals — the accounting the integration test checks.
	csp.Add("collapsed_sccs", int64(s.stats.CollapsedSCCs-sccsBefore))
	csp.Add("collapsed_nodes", int64(s.stats.CollapsedNodes-nodesBefore))
	csp.End()
}

// tarjanCopySCCs finds SCCs of the filter-free copy subgraph (over
// current representatives) with an iterative Tarjan walk and collapses
// every component of size >= 2.
func (s *solver) tarjanCopySCCs() {
	n := len(s.nodes)
	index := make([]int32, n) // 0 = unvisited, else order+1
	low := make([]int32, n)
	onStack := make([]bool, n)
	var stack []int32 // Tarjan's component stack
	var next int32 = 1

	type frame struct {
		v  int32
		ei int // next successor index to examine
	}
	var dfs []frame

	for root := 0; root < n; root++ {
		if root&1023 == 1023 {
			// Deadline/cancellation polling mid-pass: the condensation walk
			// performs real work outside the fact counter, and a pass over
			// a large graph must still honor the job's deadline. The
			// sentinel unwinds through the frames above; the abandoned
			// Tarjan state is local to this call and simply dropped.
			s.pollInterrupt()
		}
		if index[root] != 0 || s.find(root) != root {
			continue
		}
		dfs = append(dfs[:0], frame{v: int32(root)})
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, int32(root))
		onStack[root] = true

		for len(dfs) > 0 {
			f := &dfs[len(dfs)-1]
			v := int(f.v)
			succ := s.nodes[v].succ
			advanced := false
			for f.ei < len(succ) {
				e := succ[f.ei]
				f.ei++
				if e.filter != nil {
					continue
				}
				w := s.find(e.to)
				if w == v {
					continue
				}
				if index[w] == 0 {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, int32(w))
					onStack[w] = true
					dfs = append(dfs, frame{v: int32(w)})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// v is finished: fold its lowlink into the parent and pop.
			dfs = dfs[:len(dfs)-1]
			if len(dfs) > 0 {
				p := int(dfs[len(dfs)-1].v)
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] != index[v] {
				continue
			}
			// v is an SCC root: pop its component off the stack.
			base := len(stack) - 1
			for stack[base] != int32(v) {
				base--
			}
			comp := stack[base:]
			for _, m := range comp {
				onStack[m] = false
			}
			if len(comp) > 1 {
				s.collapse(comp)
			}
			stack = stack[:base]
		}
	}
}

// collapse merges the member nodes of one copy SCC onto a union-find
// representative: points-to sets, pending deltas, successor edges and
// var payloads all move to the representative, and the merged set is
// queued for one full re-propagation so every inherited edge and site
// list observes every fact exactly once more.
func (s *solver) collapse(members []int32) {
	if s.reps == nil {
		s.reps = unionfind.New(len(s.nodes))
	} else {
		s.reps.Grow(len(s.nodes))
	}
	for _, m := range members[1:] {
		s.reps.Union(int(members[0]), int(m))
	}
	rep := s.reps.Find(int(members[0]))
	s.stats.CollapsedSCCs++
	s.stats.CollapsedNodes += len(members) - 1

	for _, m32 := range members {
		m := int(m32)
		if m == rep {
			continue
		}
		// Fold the member's set and pending delta into the rep. addPts
		// resolves through find, which now lands on rep.
		s.addPts(rep, &s.nodes[m].pts)
		if p := s.pending[m]; p != nil {
			s.addPts(rep, p)
			s.pending[m] = nil
			s.releaseSet(p)
		}
		mn := &s.nodes[m]
		rn := &s.nodes[rep]
		rn.succ = append(rn.succ, mn.succ...)
		if mn.info != nil {
			rn.merged = append(rn.merged, mn.info)
		}
		rn.merged = append(rn.merged, mn.merged...)
		// Release the member's now-dead storage; the node stays as a
		// forwarding entry (its info pointer keeps serving processStmt).
		// The freed words are credited back to the resource meter, so
		// collapsing lowers budget pressure the way it lowers RSS.
		if s.meter != nil {
			s.meter.AddWords(int64(-mn.pts.Words())) //nolint:errcheck // credits cannot exhaust
		}
		mn.pts = bitset.Set{}
		mn.succ = nil
		mn.edgeSet = nil
		mn.merged = nil
	}
	s.rebuildSucc(rep)

	// One full re-propagation of the merged set: successor edges
	// inherited from members may not have seen facts the rep already
	// had (and vice versa). Propagation is idempotent, so replaying the
	// whole set is safe, and it happens once per collapse rather than
	// once per member per lap of the former cycle.
	if !s.nodes[rep].pts.IsEmpty() {
		p := s.pending[rep]
		if p == nil {
			p = s.grabSet()
			s.pending[rep] = p
		}
		p.Union(&s.nodes[rep].pts)
		s.queue(rep)
	}
}

// rebuildSucc canonicalizes rep's successor list after a merge:
// targets resolved to representatives, duplicates removed, filter-free
// self-loops dropped.
func (s *solver) rebuildSucc(rep int) {
	n := &s.nodes[rep]
	out := n.succ[:0]
	var set map[edge]struct{}
	if len(n.succ) > dupEdgeThreshold {
		set = make(map[edge]struct{}, len(n.succ))
	}
	for _, e := range n.succ {
		e.to = s.find(e.to)
		if e.to == rep && e.filter == nil {
			continue
		}
		if set != nil {
			if _, dup := set[e]; dup {
				continue
			}
			set[e] = struct{}{}
		} else {
			dup := false
			for _, kept := range out {
				if kept == e {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
		}
		out = append(out, e)
	}
	// Zero the tail so dropped edges do not pin memory.
	for i := len(out); i < len(n.succ); i++ {
		n.succ[i] = edge{}
	}
	n.succ = out
	n.edgeSet = set
}
