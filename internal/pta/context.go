// Package pta implements a whole-program, flow-insensitive, subset-based
// points-to analysis with on-the-fly call-graph construction, in the
// style of Doop's analyses that the Mahjong paper builds on.
//
// Three axes are pluggable:
//
//   - context sensitivity (Selector): context-insensitive, k-call-site
//     (k-CFA), k-object and k-type sensitivity;
//   - heap abstraction (HeapModel): allocation-site, allocation-type and
//     the Mahjong merged-object abstraction (built by package core);
//   - budget: a deterministic cap on propagation work used to reproduce
//     the paper's "unscalable within 5 hours" cells.
package pta

import (
	"fmt"
	"strings"
)

// Context is an interned, immutable calling context: a bounded sequence
// of context elements (call sites, heap objects or classes), newest
// element first. Two equal contexts are pointer-identical, so contexts
// can be used directly as map keys.
type Context struct {
	parent *Context // context without the newest element; nil only for the empty context
	elem   any      // newest element: *lang.Invoke, *Obj or *lang.Class
	depth  int
}

// Depth returns the number of elements in the context.
func (c *Context) Depth() int {
	if c == nil {
		return 0
	}
	return c.depth
}

// Elements returns the context's elements oldest first.
func (c *Context) Elements() []any {
	out := make([]any, c.Depth())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = c.elem
		c = c.parent
	}
	return out
}

// String renders the context like "[site#1, site#4]" (oldest first).
func (c *Context) String() string {
	if c == nil || c.depth == 0 {
		return "[]"
	}
	parts := make([]string, 0, c.depth)
	for _, e := range c.Elements() {
		parts = append(parts, fmt.Sprint(e))
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

type ctxKey struct {
	parent *Context
	elem   any
}

// ContextTable interns contexts so that structural equality coincides
// with pointer equality.
type ContextTable struct {
	empty  *Context
	intern map[ctxKey]*Context
}

// NewContextTable returns a table containing only the empty context.
func NewContextTable() *ContextTable {
	return &ContextTable{
		empty:  &Context{},
		intern: make(map[ctxKey]*Context),
	}
}

// Empty returns the empty context.
func (t *ContextTable) Empty() *Context { return t.empty }

// append1 returns ctx extended with elem (no truncation).
func (t *ContextTable) append1(ctx *Context, elem any) *Context {
	k := ctxKey{ctx, elem}
	if c, ok := t.intern[k]; ok {
		return c
	}
	c := &Context{parent: ctx, elem: elem, depth: ctx.depth + 1}
	t.intern[k] = c
	return c
}

// Push appends elem to ctx and truncates the result to its newest k
// elements. Push with k <= 0 yields the empty context.
func (t *ContextTable) Push(ctx *Context, elem any, k int) *Context {
	if k <= 0 {
		return t.empty
	}
	kept := newestElems(ctx, k-1) // oldest first
	out := t.empty
	for _, e := range kept {
		out = t.append1(out, e)
	}
	return t.append1(out, elem)
}

// Truncate returns the context holding only the newest k elements of ctx.
func (t *ContextTable) Truncate(ctx *Context, k int) *Context {
	if k <= 0 {
		return t.empty
	}
	if ctx.Depth() <= k {
		return ctx
	}
	out := t.empty
	for _, e := range newestElems(ctx, k) {
		out = t.append1(out, e)
	}
	return out
}

// newestElems returns the newest min(k, depth) elements of ctx,
// oldest first.
func newestElems(ctx *Context, k int) []any {
	if k > ctx.Depth() {
		k = ctx.Depth()
	}
	out := make([]any, k)
	for i := k - 1; i >= 0; i-- {
		out[i] = ctx.elem
		ctx = ctx.parent
	}
	return out
}
