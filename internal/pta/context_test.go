package pta

import (
	"testing"
	"testing/quick"
)

func TestContextInterning(t *testing.T) {
	tbl := NewContextTable()
	e1, e2 := new(int), new(int)
	c1 := tbl.Push(tbl.Empty(), e1, 2)
	c2 := tbl.Push(tbl.Empty(), e1, 2)
	if c1 != c2 {
		t.Fatal("equal contexts not interned to same pointer")
	}
	c3 := tbl.Push(c1, e2, 2)
	c4 := tbl.Push(c2, e2, 2)
	if c3 != c4 {
		t.Fatal("two-element contexts not interned")
	}
	if c3 == c1 {
		t.Fatal("distinct contexts interned together")
	}
	if c3.Depth() != 2 {
		t.Fatalf("depth=%d want 2", c3.Depth())
	}
}

func TestContextTruncationOnPush(t *testing.T) {
	tbl := NewContextTable()
	es := []*int{new(int), new(int), new(int), new(int)}
	c := tbl.Empty()
	for _, e := range es {
		c = tbl.Push(c, e, 2)
	}
	// Only the newest 2 elements survive.
	elems := c.Elements()
	if len(elems) != 2 || elems[0] != es[2] || elems[1] != es[3] {
		t.Fatalf("elements=%v want [es2 es3]", elems)
	}
}

func TestPushZeroK(t *testing.T) {
	tbl := NewContextTable()
	c := tbl.Push(tbl.Empty(), new(int), 0)
	if c != tbl.Empty() {
		t.Fatal("Push with k=0 should yield the empty context")
	}
}

func TestTruncate(t *testing.T) {
	tbl := NewContextTable()
	es := []*int{new(int), new(int), new(int)}
	c := tbl.Empty()
	for _, e := range es {
		c = tbl.Push(c, e, 5)
	}
	if got := tbl.Truncate(c, 5); got != c {
		t.Fatal("truncate to larger k must be identity")
	}
	t1 := tbl.Truncate(c, 1)
	if t1.Depth() != 1 || t1.Elements()[0] != es[2] {
		t.Fatalf("Truncate(1) kept %v", t1.Elements())
	}
	if tbl.Truncate(c, 0) != tbl.Empty() {
		t.Fatal("Truncate(0) != empty")
	}
	// Truncation of equal suffixes interns to the same context.
	c2 := tbl.Push(tbl.Push(tbl.Empty(), new(int), 5), es[2], 5)
	if tbl.Truncate(c2, 1) != t1 {
		t.Fatal("suffix contexts should be interned together")
	}
}

func TestContextString(t *testing.T) {
	tbl := NewContextTable()
	if s := tbl.Empty().String(); s != "[]" {
		t.Fatalf("empty=%q", s)
	}
	var nilCtx *Context
	if s := nilCtx.String(); s != "[]" {
		t.Fatalf("nil=%q", s)
	}
	c := tbl.Push(tbl.Empty(), "a", 3)
	c = tbl.Push(c, "b", 3)
	if s := c.String(); s != "[a, b]" {
		t.Fatalf("ctx=%q", s)
	}
}

// TestQuickPushKeepsNewestK: pushing any element sequence with limit k
// always yields the newest k elements in order.
func TestQuickPushKeepsNewestK(t *testing.T) {
	f := func(raw []uint8, k8 uint8) bool {
		k := int(k8%4) + 1
		tbl := NewContextTable()
		elems := make([]any, len(raw))
		pool := map[uint8]*int{}
		for i, r := range raw {
			if pool[r] == nil {
				pool[r] = new(int)
			}
			elems[i] = pool[r]
		}
		c := tbl.Empty()
		for _, e := range elems {
			c = tbl.Push(c, e, k)
		}
		want := elems
		if len(want) > k {
			want = want[len(want)-k:]
		}
		got := c.Elements()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
