package pta

import (
	"testing"

	"mahjong/internal/lang"
)

// buildThrower constructs:
//
//	Err extends Object; IOErr extends Err; RuntimeErr extends Err
//	Lib.mayFail(): throws new IOErr
//	Lib.bug(): throws new RuntimeErr
//	Main.main(): calls both through a helper; catches Err from the
//	helper; the catch sees both, the entry $exc also sees both.
func buildThrower(t *testing.T) (*lang.Program, *lang.Var, *lang.Class, *lang.Class) {
	t.Helper()
	p := lang.NewProgram()
	err := p.NewClass("Err", nil)
	ioErr := p.NewClass("IOErr", err)
	rtErr := p.NewClass("RuntimeErr", err)

	lib := p.NewClass("Lib", nil)
	mayFail := lib.NewMethod("mayFail", true, nil, nil)
	e1 := mayFail.NewVar("e1", ioErr)
	mayFail.AddAlloc(e1, ioErr)
	mayFail.AddThrow(e1)
	mayFail.AddReturn(nil)
	bug := lib.NewMethod("bug", true, nil, nil)
	e2 := bug.NewVar("e2", rtErr)
	bug.AddAlloc(e2, rtErr)
	bug.AddThrow(e2)
	bug.AddReturn(nil)

	helper := lib.NewMethod("runBoth", true, nil, nil)
	helper.AddStaticCall(nil, mayFail)
	helper.AddStaticCall(nil, bug)
	helper.AddReturn(nil)

	mainCls := p.NewClass("Main", nil)
	m := mainCls.NewMethod("main", true, nil, nil)
	caught := m.NewVar("caught", err)
	m.AddStaticCall(nil, helper)
	m.AddCatch(caught, err)
	m.AddReturn(nil)
	p.SetEntry(m)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p, caught, ioErr, rtErr
}

func TestExceptionPropagation(t *testing.T) {
	p, caught, ioErr, rtErr := buildThrower(t)
	for _, sel := range []Selector{CI{}, KCFA{K: 2}, KObj{K: 2}, KType{K: 2}} {
		r, err := Solve(p, Options{Selector: sel})
		if err != nil {
			t.Fatal(err)
		}
		types := map[string]bool{}
		for _, c := range r.VarTypes(caught) {
			types[c.Name] = true
		}
		if !types["IOErr"] || !types["RuntimeErr"] {
			t.Fatalf("%s: caught types=%v want both IOErr and RuntimeErr", sel.Name(), types)
		}
		// The entry's $exc also sees both (catch does not subtract,
		// flow-insensitively).
		excTypes := map[*lang.Class]bool{}
		for _, c := range r.VarTypes(p.Entry.ExcVar()) {
			excTypes[c] = true
		}
		if !excTypes[ioErr] || !excTypes[rtErr] {
			t.Fatalf("%s: entry $exc=%v", sel.Name(), excTypes)
		}
	}
}

func TestCatchTypeFilter(t *testing.T) {
	// A catch of IOErr must not receive the RuntimeErr.
	p, _, ioErr, _ := buildThrower(t)
	m := p.Entry
	narrow := m.NewVar("narrow", ioErr)
	m.AddCatch(narrow, ioErr)
	r, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	objs := r.VarObjs(narrow)
	if len(objs) != 1 || objs[0].Type != ioErr {
		t.Fatalf("narrow catch sees %v, want only IOErr", objs)
	}
}

func TestNoThrowNoExceptions(t *testing.T) {
	p := lang.NewProgram()
	mainCls := p.NewClass("Main", nil)
	m := mainCls.NewMethod("main", true, nil, nil)
	m.AddReturn(nil)
	p.SetEntry(m)
	r, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.HasExcVar() {
		// Created lazily only when calls/throws exist; main has neither.
		t.Fatal("exception variable created for throw-free program")
	}
	_ = r
}

func TestThrowAcrossVirtualCall(t *testing.T) {
	// An exception thrown in a virtually-dispatched method reaches the
	// caller's catch.
	p := lang.NewProgram()
	err := p.NewClass("Err", nil)
	iface := p.NewInterface("Task")
	iface.NewAbstractMethod("run", nil, nil)
	impl := p.NewClass("Impl", nil, iface)
	run := impl.NewMethod("run", false, nil, nil)
	ev := run.NewVar("ev", err)
	run.AddAlloc(ev, err)
	run.AddThrow(ev)
	run.AddReturn(nil)

	mainCls := p.NewClass("Main", nil)
	m := mainCls.NewMethod("main", true, nil, nil)
	tsk := m.NewVar("tsk", iface)
	caught := m.NewVar("caught", err)
	m.AddAlloc(tsk, impl)
	m.AddVirtualCall(nil, tsk, "run")
	m.AddCatch(caught, err)
	m.AddReturn(nil)
	p.SetEntry(m)
	r := solveCI(t, p)
	if got := len(r.VarObjs(caught)); got != 1 {
		t.Fatalf("caught %d objs, want 1", got)
	}
}

// TestExceptionsDontPerturbCallGraph: exception edges carry values, not
// dispatch; adding a throw/catch pair must not change call-graph edges.
func TestExceptionsDontPerturbCallGraph(t *testing.T) {
	build := func(withExc bool) *lang.Program {
		p := lang.NewProgram()
		err := p.NewClass("Err", nil)
		lib := p.NewClass("Lib", nil)
		work := lib.NewMethod("work", true, nil, nil)
		if withExc {
			ev := work.NewVar("ev", err)
			work.AddAlloc(ev, err)
			work.AddThrow(ev)
		}
		work.AddReturn(nil)
		mainCls := p.NewClass("Main", nil)
		m := mainCls.NewMethod("main", true, nil, nil)
		m.AddStaticCall(nil, work)
		if withExc {
			c := m.NewVar("c", err)
			m.AddCatch(c, err)
		}
		m.AddReturn(nil)
		p.SetEntry(m)
		return p
	}
	r1 := solveCI(t, build(false))
	r2 := solveCI(t, build(true))
	if r1.NumCallGraphEdges() != r2.NumCallGraphEdges() {
		t.Fatalf("exception statements changed call graph: %d vs %d",
			r1.NumCallGraphEdges(), r2.NumCallGraphEdges())
	}
}
