package pta

import (
	"fmt"

	"mahjong/internal/lang"
)

// Obj is an abstract heap object: the unit produced by a heap
// abstraction. Under the allocation-site abstraction each allocation
// site maps to its own Obj; coarser abstractions map several sites to
// one Obj.
type Obj struct {
	ID    int
	Type  *lang.Class
	Rep   *lang.AllocSite   // representative allocation site
	Sites []*lang.AllocSite // all sites merged into this object

	// Merged reports whether more than one allocation site was merged.
	Merged bool
	// CtxInsensitive forces the solver to model this object (and heap
	// contexts derived from it) context-insensitively, per §3.6.1:
	// M-A always models merged objects context-insensitively.
	CtxInsensitive bool
}

func (o *Obj) String() string { return o.Rep.Label }

// HeapModel maps allocation sites to abstract objects.
type HeapModel interface {
	// Name identifies the abstraction in reports ("alloc-site",
	// "alloc-type", "mahjong").
	Name() string
	// Obj returns the abstract object for site, creating it on first use.
	Obj(site *lang.AllocSite) *Obj
	// Objs returns all objects created so far.
	Objs() []*Obj
}

// AllocSiteModel is the conventional allocation-site abstraction:
// one object per allocation site.
type AllocSiteModel struct {
	bySite map[*lang.AllocSite]*Obj
	objs   []*Obj
}

// NewAllocSiteModel returns an empty allocation-site abstraction.
func NewAllocSiteModel() *AllocSiteModel {
	return &AllocSiteModel{bySite: make(map[*lang.AllocSite]*Obj)}
}

func (m *AllocSiteModel) Name() string { return "alloc-site" }

func (m *AllocSiteModel) Obj(site *lang.AllocSite) *Obj {
	if o, ok := m.bySite[site]; ok {
		return o
	}
	o := &Obj{ID: len(m.objs), Type: site.Type, Rep: site, Sites: []*lang.AllocSite{site}}
	m.bySite[site] = o
	m.objs = append(m.objs, o)
	return o
}

func (m *AllocSiteModel) Objs() []*Obj { return m.objs }

// AllocTypeModel is the naive allocation-type abstraction of §2.1:
// all objects of the same type are merged, one object per type.
type AllocTypeModel struct {
	byType map[*lang.Class]*Obj
	objs   []*Obj
}

// NewAllocTypeModel returns an empty allocation-type abstraction.
func NewAllocTypeModel() *AllocTypeModel {
	return &AllocTypeModel{byType: make(map[*lang.Class]*Obj)}
}

func (m *AllocTypeModel) Name() string { return "alloc-type" }

func (m *AllocTypeModel) Obj(site *lang.AllocSite) *Obj {
	if o, ok := m.byType[site.Type]; ok {
		if o.Rep != site {
			o.Sites = append(o.Sites, site)
			o.Merged = true
		}
		return o
	}
	o := &Obj{ID: len(m.objs), Type: site.Type, Rep: site, Sites: []*lang.AllocSite{site}}
	m.byType[site.Type] = o
	m.objs = append(m.objs, o)
	return o
}

func (m *AllocTypeModel) Objs() []*Obj { return m.objs }

// MergedSiteModel implements the Mahjong heap abstraction: allocation
// sites are partitioned by a merged-object map (MOM) produced by package
// core, and each equivalence class becomes one abstract object whose
// representative is the class's representative site. Merged objects are
// marked context-insensitive per §3.6.1.
type MergedSiteModel struct {
	mom   map[*lang.AllocSite]*lang.AllocSite
	byRep map[*lang.AllocSite]*Obj
	objs  []*Obj
}

// NewMergedSiteModel builds a model from a merged-object map. Sites
// absent from the map behave as singletons.
func NewMergedSiteModel(mom map[*lang.AllocSite]*lang.AllocSite) *MergedSiteModel {
	return &MergedSiteModel{
		mom:   mom,
		byRep: make(map[*lang.AllocSite]*Obj),
	}
}

func (m *MergedSiteModel) Name() string { return "mahjong" }

func (m *MergedSiteModel) Obj(site *lang.AllocSite) *Obj {
	rep, ok := m.mom[site]
	if !ok {
		rep = site
	}
	if rep.Type != site.Type {
		panic(fmt.Sprintf("pta: MOM merges across types: %s vs %s", rep, site))
	}
	if o, ok := m.byRep[rep]; ok {
		if site != rep {
			o.Sites = append(o.Sites, site)
			o.Merged = true
			o.CtxInsensitive = true
		}
		return o
	}
	o := &Obj{ID: len(m.objs), Type: rep.Type, Rep: rep, Sites: []*lang.AllocSite{site}}
	if site != rep {
		// The representative itself may never be reached; still record it.
		o.Sites = []*lang.AllocSite{rep, site}
		o.Merged = true
		o.CtxInsensitive = true
	}
	m.byRep[rep] = o
	m.objs = append(m.objs, o)
	return o
}

func (m *MergedSiteModel) Objs() []*Obj { return m.objs }
