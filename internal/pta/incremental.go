package pta

import (
	"context"
	"fmt"
	"sort"

	"mahjong/internal/bitset"
	"mahjong/internal/delta"
	"mahjong/internal/failure"
	"mahjong/internal/faultinject"
	"mahjong/internal/lang"
)

// Incremental re-solving.
//
// SolveIncrementalContext replays a body-only edit through the solver
// without redoing the propagation work for the unaffected part of the
// program. The scheme is monotone warm-seeding:
//
//  1. A taint closure over the *base* solver's final state marks every
//     node whose points-to set could differ in the edited program: the
//     locals of changed methods, everything downstream of a tainted
//     node (copy/cast successors, loads through tainted bases, field
//     nodes stored through tainted bases), and the This/Params/return/
//     exception plumbing of every call edge whose caller changed or
//     whose receiver is tainted. A method all of whose base in-call-
//     edges are tainted may no longer be reachable, so it is treated
//     like a changed method (reach-taint).
//  2. A fresh solver is built for the edited program and fast-forwarded
//     to the base fixpoint (see seedSolver): untainted sets are
//     installed and frozen, unchanged methods' constraints go in
//     without replay, and untainted base call edges are rewired
//     structurally instead of re-dispatched.
//  3. The ordinary worklist run then executes. It re-derives only what
//     the seed did not carry — changed and dirty methods process cold,
//     and their propagation cascades stop wherever they meet a node
//     that already holds the fact (an empty delta queues nothing).
//
// Soundness of the result does not rest on the taint closure: whatever
// is seeded, the run converges to the least fixpoint *above* the seed.
// The closure's job is exactness — it guarantees the seed stays below
// the edited program's least fixpoint (any fact at an untainted node
// has a derivation that uses only untainted nodes and unchanged
// methods, so the edited program re-derives it), which makes the warm
// fixpoint equal to a cold solve's. The A/B equivalence gate in
// incremental_test.go checks that equality over randomized edits.
type IncrementalStats struct {
	// Used reports that warm seeding was actually applied; when false,
	// Fallback names the reason the solve ran from scratch instead.
	Used     bool
	Fallback string

	// TotalMethods and ChangedMethods mirror the diff; DirtyMethods
	// additionally counts methods invalidated by reach-taint.
	TotalMethods   int
	ChangedMethods int
	DirtyMethods   int

	// BaseNodes is the base solver's node count, TaintedNodes how many
	// of its representatives the closure invalidated.
	BaseNodes    int
	TaintedNodes int

	// Seeded* count the new-solver nodes that received a warm set, and
	// SeededFacts the points-to facts installed. SkippedNodes counts
	// untainted nodes whose sets could not be translated (under-seeding
	// is safe; it only costs replay work).
	SeededVars    int
	SeededFields  int
	SeededStatics int
	SkippedNodes  int
	SeededFacts   int64

	// InstalledMethods counts unchanged methods whose constraints were
	// installed without replay, TranslatedCallEdges the retained call
	// edges rewired without re-dispatching their receivers.
	InstalledMethods    int
	TranslatedCallEdges int
}

// SolveIncremental is SolveIncrementalContext without cancellation.
func SolveIncremental(prog *lang.Program, opts Options, base *Result, d *delta.Diff) (*Result, *IncrementalStats, error) {
	return SolveIncrementalContext(context.Background(), prog, opts, base, d) //lint:allow ctxflow documented context-free compat shim over SolveIncrementalContext
}

// SolveIncrementalContext solves prog, warm-seeded from a retained base
// Result when the edit described by d is eligible (body-only, context-
// insensitive, allocation-site heap, complete base). Ineligible or
// faulted preparations fall back to a from-scratch solve — the returned
// IncrementalStats says which happened and why. The Result is
// indistinguishable from SolveContext's either way.
func SolveIncrementalContext(ctx context.Context, prog *lang.Program, opts Options, base *Result, d *delta.Diff) (res *Result, stats *IncrementalStats, err error) {
	// The inner solves carry their own pta.solve guard; this one catches
	// panics in the incremental plumbing itself (eligibility, stats).
	defer failure.Recover(faultinject.StageSeed, &err)
	stats = &IncrementalStats{}
	if base != nil && base.solver != nil {
		stats.BaseNodes = len(base.solver.nodes)
	}
	if d != nil {
		stats.TotalMethods = d.TotalMethods
		stats.ChangedMethods = len(d.Changed)
	}
	reason := incrementalEligibility(prog, opts, base, d)
	if reason == "" {
		seedFn, serr := prepareSeed(opts, base, d, stats)
		if serr != nil {
			// Injected StageSeed faults and internal bugs land here: the
			// incremental path is an optimization, so degrade to a cold
			// solve rather than failing the job.
			reason = "seed preparation failed: " + serr.Error()
		} else {
			warm := opts
			warm.seed = seedFn
			res, err = SolveContext(ctx, prog, warm)
			if err != nil {
				return nil, stats, err
			}
			stats.Used = true
			return res, stats, nil
		}
	}
	stats.Fallback = reason
	res, err = SolveContext(ctx, prog, opts)
	return res, stats, err
}

// incrementalEligibility returns "" when warm seeding applies, else the
// reason it does not.
func incrementalEligibility(prog *lang.Program, opts Options, base *Result, d *delta.Diff) string {
	if base == nil || base.solver == nil {
		return "no base result"
	}
	if base.Aborted {
		return "base result is partial (work budget aborted)"
	}
	if d == nil {
		return "no diff"
	}
	if !d.BodyOnly {
		return "shape change: " + d.Reason
	}
	if d.Base != base.Prog || d.Next != prog {
		return "diff does not link the base and edited programs"
	}
	if !isCISelector(base.Opts.Selector) || !isCISelector(opts.Selector) {
		return "context-sensitive analysis"
	}
	if _, ok := base.Opts.Heap.(*AllocSiteModel); !ok {
		return "base heap model is not alloc-site"
	}
	if opts.Heap != nil {
		m, ok := opts.Heap.(*AllocSiteModel)
		if !ok {
			return "heap model is not alloc-site"
		}
		if len(m.Objs()) != 0 {
			return "heap model already populated"
		}
	}
	return ""
}

func isCISelector(sel Selector) bool {
	if sel == nil {
		return true
	}
	_, ok := sel.(CI)
	return ok
}

// prepareSeed runs the taint closure over the base solver under the
// "pta.seed" stage guard and returns the seeding closure the new solve
// will execute. The closure itself runs inside SolveContext, under the
// "pta.solve" guard.
func prepareSeed(opts Options, base *Result, d *delta.Diff, st *IncrementalStats) (fn func(*solver) error, err error) {
	// Span-close defer precedes the stage guard so it observes the
	// recovered error (the pta.solve idiom).
	sp := opts.Trace.Start(faultinject.StageSeed)
	defer func() { sp.Close(err) }()
	defer failure.Recover(faultinject.StageSeed, &err)
	if err := faultinject.Fire(faultinject.StageSeed); err != nil {
		return nil, fmt.Errorf("pta: seed: %w", err)
	}

	t := newTainter(base.solver, d)
	if d.Additive {
		// A grown body only adds constraints; the analysis is monotone,
		// so every base fact is still below the edited program's fixpoint
		// and the whole base state replays without any invalidation.
		sp.Add("additive", 1)
	} else {
		t.run()
	}
	st.TaintedNodes = t.count
	st.DirtyMethods = len(t.dirty)
	sp.Add("base_nodes", int64(len(base.solver.nodes)))
	sp.Add("tainted_nodes", int64(t.count))
	sp.Add("changed_methods", int64(len(d.Changed)))
	sp.Add("dirty_methods", int64(len(t.dirty)))
	return func(s *solver) error {
		return seedSolver(s, base.solver, d, t, st)
	}, nil
}

// tainter computes the invalidation closure over a finished base solver.
type tainter struct {
	bs *solver
	d  *delta.Diff

	tainted []bool // by representative node id
	count   int
	nodeWL  []int

	dirty    map[*lang.Method]bool // changed bodies + reach-tainted methods
	methodWL []*lang.Method

	byCaller    map[*lang.Method][]callEdgeKey
	byInv       map[*lang.Invoke][]callEdgeKey
	inEdges     map[*lang.Method]int
	taintedIn   map[*lang.Method]int
	edgeTainted map[callEdgeKey]bool
}

func newTainter(bs *solver, d *delta.Diff) *tainter {
	t := &tainter{
		bs:          bs,
		d:           d,
		tainted:     make([]bool, len(bs.nodes)),
		dirty:       make(map[*lang.Method]bool),
		byCaller:    make(map[*lang.Method][]callEdgeKey),
		byInv:       make(map[*lang.Invoke][]callEdgeKey),
		inEdges:     make(map[*lang.Method]int),
		taintedIn:   make(map[*lang.Method]int),
		edgeTainted: make(map[callEdgeKey]bool),
	}
	for k := range bs.callEdges {
		t.byCaller[k.inv.In] = append(t.byCaller[k.inv.In], k)
		t.byInv[k.inv] = append(t.byInv[k.inv], k)
		t.inEdges[k.callee]++
	}
	return t
}

// run drives the closure to its fixpoint. The result is a set, so the
// (map-iteration-dependent) processing order does not affect it.
func (t *tainter) run() {
	for _, m := range t.d.Changed {
		t.markDirty(m)
	}
	for len(t.methodWL) > 0 || len(t.nodeWL) > 0 {
		if n := len(t.methodWL); n > 0 {
			m := t.methodWL[n-1]
			t.methodWL = t.methodWL[:n-1]
			t.processDirty(m)
			continue
		}
		n := len(t.nodeWL)
		id := t.nodeWL[n-1]
		t.nodeWL = t.nodeWL[:n-1]
		t.processNode(id)
	}
}

func (t *tainter) markDirty(m *lang.Method) {
	if !t.dirty[m] {
		t.dirty[m] = true
		t.methodWL = append(t.methodWL, m)
	}
}

func (t *tainter) markNode(id int) {
	rep := t.bs.find(id)
	if !t.tainted[rep] {
		t.tainted[rep] = true
		t.count++
		t.nodeWL = append(t.nodeWL, rep)
	}
}

func (t *tainter) markVar(v *lang.Var) {
	for _, id := range t.bs.varIndex[v] {
		t.markNode(id)
	}
}

// processDirty invalidates everything a rewritten (or possibly
// unreachable) method body contributed: all of its variables' nodes and
// every call edge it owns.
func (t *tainter) processDirty(m *lang.Method) {
	for _, v := range m.Locals {
		t.markVar(v)
	}
	for _, k := range t.byCaller[m] {
		t.taintEdge(k)
	}
}

// processNode propagates taint across everything derived from the
// node's set: successor edges, loads and stores through it, and calls
// dispatched on it.
func (t *tainter) processNode(rep int) {
	n := &t.bs.nodes[rep]
	for _, e := range n.succ {
		t.markNode(e.to)
	}
	if n.info != nil {
		t.taintInfo(n.info, &n.pts)
	}
	for _, in := range n.merged {
		t.taintInfo(in, &n.pts)
	}
}

func (t *tainter) taintInfo(info *varInfo, pts *bitset.Set) {
	for _, ld := range info.loads {
		t.markNode(ld.lhs)
	}
	for _, stn := range info.stores {
		field := stn.field
		pts.ForEach(func(obj int) bool {
			if fid, ok := t.bs.fieldNodes[fieldKey{obj, field}]; ok {
				t.markNode(fid)
			}
			return true
		})
	}
	for _, inv := range info.invokes {
		for _, k := range t.byInv[inv] {
			t.taintEdge(k)
		}
	}
}

// taintEdge invalidates the facts one call edge installs: the callee's
// This and Params, the caller's result variable, and the caller's
// exception sink. When a callee's base in-edges are all tainted its
// reachability is uncertain, so it becomes dirty (unless it is the
// entry, which is reachable by definition).
func (t *tainter) taintEdge(k callEdgeKey) {
	if t.edgeTainted[k] {
		return
	}
	t.edgeTainted[k] = true
	t.taintedIn[k.callee]++
	if k.callee.This != nil {
		t.markVar(k.callee.This)
	}
	for _, p := range k.callee.Params {
		t.markVar(p)
	}
	if k.inv.LHS != nil {
		t.markVar(k.inv.LHS)
	}
	if k.inv.In.HasExcVar() {
		t.markVar(k.inv.In.ExcVar())
	}
	if k.callee != t.bs.prog.Entry && t.taintedIn[k.callee] == t.inEdges[k.callee] {
		t.markDirty(k.callee)
	}
}

// objUnknown marks a not-yet-computed entry in the object translation
// cache; untranslatable objects are cached as -1.
const objUnknown = -2

// objTranslator rebinds base context-sensitive object IDs (the bit
// positions of base points-to sets) to the edited program's IDs through
// the allocation-site map of the diff.
type objTranslator struct {
	s, bs *solver
	d     *delta.Diff
	cache []int
}

func newObjTranslator(s, bs *solver, d *delta.Diff) *objTranslator {
	t := &objTranslator{s: s, bs: bs, d: d, cache: make([]int, len(bs.csobjs))}
	for i := range t.cache {
		t.cache[i] = objUnknown
	}
	return t
}

func (t *objTranslator) trObj(b int) int {
	if t.cache[b] != objUnknown {
		return t.cache[b]
	}
	r := -1
	o := t.bs.csobjs[b]
	// Context-insensitive only: under the alloc-site model Obj.Rep is
	// the allocation site itself, and the site map carries it across.
	if o.Ctx == t.bs.emptyHeap {
		if nsite := t.d.Sites[o.Obj.Rep]; nsite != nil {
			r = t.s.csObj(t.s.emptyHeap, t.s.opts.Heap.Obj(nsite))
		}
	}
	t.cache[b] = r
	return r
}

// seeder carries the state of one warm-seeding pass over the new solver.
type seeder struct {
	s, bs *solver
	d     *delta.Diff
	t     *tainter
	tr    *objTranslator
	st    *IncrementalStats
	buf   []int

	// frozen marks (by new-solver node id) the nodes whose sets were
	// installed from the base fixpoint. Replays into a frozen node are
	// skipped: under the taint closure its set is already final, and
	// under an additive edit it is closed under every base constraint,
	// so either way an install-time replay cannot add a fact.
	frozen []bool

	// nodeMap translates base node ids to new-solver ids (-1 where no
	// seeded counterpart exists). bulk is set when an additive edit let
	// every base node map: the whole base edge structure is then copied
	// mechanically and the per-statement passes only register sites.
	nodeMap []int
	bulk    bool
}

// seedSolver fast-forwards the fresh solver s to the base fixpoint:
//
//  1. Every untainted base node's set — translated through the
//     structural maps of delta.Diff — is installed directly into the
//     new node's bitset with no worklist entry, and the node is marked
//     frozen (its set is final).
//  2. Every unchanged, non-dirty, base-reachable method is pre-marked
//     reachable and its constraints are installed without replaying
//     into frozen targets: statement edges are inserted, load/store/
//     invoke sites registered, and field edges derived straight from
//     the seeded receiver sets. Per-object work happens once per site,
//     never per propagation.
//  3. The base call graph is replayed structurally: each untainted
//     retained call edge is rewired to the edited program — callee
//     reachability, argument/return/exception plumbing, call-graph
//     entries — without dispatching a single receiver object. Receiver
//     This-bindings are part of the seeded sets.
//
// The ordinary worklist run then re-derives only the changed region.
// Iteration follows the base program's declaration and reach order
// (never Go map order) so repeated runs build identical solvers.
func seedSolver(s, bs *solver, d *delta.Diff, t *tainter, st *IncrementalStats) (err error) {
	// The seed runs before run()'s sentinel recovery, so detach the
	// resource meter (settled in one batch at the end, with plain-error
	// reporting) and catch the time/work-budget sentinels here.
	meter := s.meter
	s.meter = nil
	defer func() { s.meter = meter }()
	defer func() {
		switch r := recover(); r {
		case nil:
		case errBudgetSentinel:
			err = fmt.Errorf("pta: seed aborted: work budget exhausted")
		case errCancelSentinel:
			if err = s.ctx.Err(); err == nil {
				err = context.Canceled
			}
		default:
			panic(r)
		}
	}()

	x := &seeder{s: s, bs: bs, d: d, t: t, tr: newObjTranslator(s, bs, d), st: st}
	x.frozen = make([]bool, 0, len(bs.nodes))
	x.nodeMap = make([]int, len(bs.nodes))
	for i := range x.nodeMap {
		x.nodeMap[i] = -1
	}
	if err := x.seedSets(); err != nil {
		return err
	}
	if d.Additive {
		x.bulk = x.copyEdges()
	}
	if err := x.installMethods(); err != nil {
		return err
	}
	if err := x.translateCalls(); err != nil {
		return err
	}
	if meter != nil {
		words := 0
		for i := range s.nodes {
			words += s.nodes[i].pts.Words()
		}
		if err := meter.AddWords(int64(words)); err != nil {
			return err
		}
		if err := meter.AddFacts(s.work); err != nil {
			return err
		}
	}
	return nil
}

// seedSets installs the translated base points-to sets (phase 1).
func (x *seeder) seedSets() error {
	s, bs, d := x.s, x.bs, x.d

	// Variable nodes, in class/method/local declaration order.
	for _, bc := range bs.prog.Classes {
		if err := x.interrupted(); err != nil {
			return err
		}
		for _, bm := range bc.DeclaredMethods {
			if bm.IsAbstract {
				continue
			}
			// Changed methods are covered too when the diff mapped their
			// variables (additive edits): in taint mode their locals are
			// all tainted and seedNode skips them anyway.
			for _, bv := range bm.Locals {
				nv := d.Vars[bv]
				if nv == nil {
					continue
				}
				baseID, ok := bs.varNodes[varKey{bs.emptyHeap, bv}]
				if !ok {
					continue // method not reachable in the base solve
				}
				if err := x.seedNode(baseID, &x.st.SeededVars, func() int {
					return s.varNode(s.emptyHeap, nv)
				}); err != nil {
					return err
				}
			}
		}
	}

	// Field nodes: the map is the only index, so sort its keys by
	// (object ID, field ID) for a deterministic pass.
	fkeys := make([]fieldKey, 0, len(bs.fieldNodes))
	for k := range bs.fieldNodes {
		fkeys = append(fkeys, k)
	}
	sort.Slice(fkeys, func(i, j int) bool {
		if fkeys[i].obj != fkeys[j].obj {
			return fkeys[i].obj < fkeys[j].obj
		}
		return fkeys[i].field.ID < fkeys[j].field.ID
	})
	for _, k := range fkeys {
		nf := d.Fields[k.field]
		if nf == nil {
			continue // e.g. an array class the edited program no longer creates
		}
		nObj := x.tr.trObj(k.obj)
		if nObj < 0 {
			continue
		}
		baseID := bs.fieldNodes[k]
		if err := x.seedNode(baseID, &x.st.SeededFields, func() int {
			return s.fieldNode(nObj, nf)
		}); err != nil {
			return err
		}
	}

	// Static field nodes, in program field-declaration order.
	for _, f := range bs.prog.Fields {
		if !f.IsStatic {
			continue
		}
		baseID, ok := bs.staticNodes[f]
		if !ok {
			continue
		}
		nf := d.Fields[f]
		if nf == nil {
			continue
		}
		if err := x.seedNode(baseID, &x.st.SeededStatics, func() int {
			return s.staticNode(nf)
		}); err != nil {
			return err
		}
	}
	return nil
}

func (x *seeder) interrupted() error {
	if x.s.ctx != nil {
		if err := x.s.ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// seedNode copies one untainted base node's translated set into the new
// node mk() creates and freezes it — an untainted set, even an empty
// one, is already the edited program's final set. Tainted nodes are not
// created here (they stay unfrozen and fill by propagation); nodes
// whose sets are not fully translatable are skipped — skipping can only
// under-seed, which costs replay work but never exactness.
func (x *seeder) seedNode(baseID int, counter *int, mk func() int) error {
	rep := x.bs.find(baseID)
	if x.t.tainted[rep] {
		return nil
	}
	src := &x.bs.nodes[rep].pts
	ok := true
	x.buf = x.buf[:0]
	src.ForEach(func(b int) bool {
		nb := x.tr.trObj(b)
		if nb < 0 {
			ok = false
			return false
		}
		x.buf = append(x.buf, nb)
		return true
	})
	if !ok {
		x.st.SkippedNodes++
		return nil
	}
	nid := mk()
	x.markFrozen(nid)
	x.nodeMap[baseID] = nid
	n := &x.s.nodes[nid] // after mk(): it may grow s.nodes
	added := int64(0)
	for _, b := range x.buf {
		if n.pts.Add(b) {
			added++
		}
	}
	x.st.SeededFacts += added
	*counter++
	return nil
}

// markFrozen grows by append (amortized, not a fresh copy per node: the
// seed freezes nodes as it creates them, so id is almost always exactly
// len(frozen)).
func (x *seeder) markFrozen(id int) {
	for id >= len(x.frozen) {
		x.frozen = append(x.frozen, false)
	}
	x.frozen[id] = true
}

// isFrozen reports whether the new node's set was installed from the
// base fixpoint. No collapse runs before the worklist loop, so find()
// is the identity throughout the seed; it is applied anyway for form.
func (x *seeder) isFrozen(id int) bool {
	id = x.s.find(id)
	return id < len(x.frozen) && x.frozen[id]
}

// edge inserts a statement-installed flow edge, replaying the source
// set only into unfrozen targets (a frozen target already holds every
// fact the replay would push).
func (x *seeder) edge(from, to int, filter *lang.Class) {
	x.s.addEdgeIf(from, to, filter, !x.isFrozen(to))
}

// copyEdges translates the base solver's entire flow-edge structure —
// statement edges and every object-derived load/store/call edge — by
// renaming node ids, skipping the per-object re-derivation that
// otherwise dominates a warm solve. Valid only for additive edits (no
// base edge lost its derivation) on a never-collapsed base (ids are
// their own representatives), and only when every base node found a
// seeded counterpart. Returns false to fall back to per-statement
// installation; a partial copy is harmless then — the copied edges are
// all still valid and addEdgeIf deduplicates against them.
func (x *seeder) copyEdges() bool {
	bs, s := x.bs, x.s
	if bs.reps != nil || x.st.SkippedNodes > 0 {
		return false
	}
	for _, nid := range x.nodeMap {
		if nid < 0 {
			return false
		}
	}
	classes := make(map[*lang.Class]*lang.Class)
	edges, copyEdges := 0, 0
	// Flush the counters even on a fallback return: partially copied
	// edges stay (they are valid; the per-statement path deduplicates
	// against them) and must stay counted.
	defer func() {
		s.stats.Edges += edges
		s.stats.CopyEdges += copyEdges
		s.newCopyEdges += copyEdges
	}()
	for id := range bs.nodes {
		succ := bs.nodes[id].succ
		if len(succ) == 0 {
			continue
		}
		nid := x.nodeMap[id]
		n := &s.nodes[nid]
		for _, e := range succ {
			filter := e.filter
			if filter != nil {
				nc, ok := classes[filter]
				if !ok {
					nc = x.d.Next.Class(filter.Name)
					classes[filter] = nc
				}
				if nc == nil {
					return false // a filter class the edited program lacks
				}
				filter = nc
				if s.par != nil {
					// Bulk-copied edges bypass addEdgeIf, so the parallel
					// engine's filter registry must learn the class here.
					s.par.trackFilter(filter)
				}
			} else {
				copyEdges++
			}
			n.succ = append(n.succ, edge{to: x.nodeMap[e.to], filter: filter})
			edges++
		}
		// No edgeSet is built here even past dupEdgeThreshold: the copied
		// lists are duplicate-free by construction, and addEdgeIf indexes
		// a node lazily if a later insert ever needs the dedup.
	}
	return true
}

// installMethods (phase 2) pre-marks every unchanged, non-dirty,
// base-reachable method and installs its constraints without worklist
// replay. Dirty methods — reachability uncertain after the edit — are
// left out entirely; if the edited program still reaches one, the
// ordinary makeReachable processes it cold.
func (x *seeder) installMethods() error {
	s := x.s
	empty := s.ctxt.Empty()
	for _, bk := range x.bs.reachList {
		if err := x.interrupted(); err != nil {
			return err
		}
		bm := bk.m
		if x.d.MethodChanged(bm) || x.t.dirty[bm] {
			continue
		}
		nm := x.d.Methods[bm]
		if nm == nil || len(bm.Stmts) != len(nm.Stmts) {
			continue
		}
		nk := csMethodKey{empty, nm}
		if s.reachable[nk] {
			// A needsDispatch replay below already reached it cold; its
			// constraints are fully installed.
			continue
		}
		s.reachable[nk] = true
		s.reachList = append(s.reachList, nk)
		s.ciMethods[nm] = true
		s.chargeWork(1)
		x.st.InstalledMethods++
		for i, st := range nm.Stmts {
			x.installStmt(empty, nm, bm.Stmts[i], st)
		}
	}
	return nil
}

// installStmt is processStmt for an unchanged method: identical
// registration and edge structure, but derived work is read off the
// frozen sets once instead of replayed per propagation, and nothing is
// pushed into a frozen target. bst is the statement's base-program
// counterpart (the bodies are positionally alike). In bulk mode every
// edge this would insert — statement edges and per-object derivations
// alike — was already copied wholesale, so only the side tables are
// registered: load/store/invoke sites, cast sites.
func (x *seeder) installStmt(ctx *Context, m *lang.Method, bst, st lang.Stmt) {
	s := x.s
	switch stmt := st.(type) {
	case *lang.Alloc:
		obj := s.opts.Heap.Obj(stmt.Site)
		var hctx *Context
		if obj.CtxInsensitive {
			hctx = s.emptyHeap
		} else {
			hctx = s.opts.Selector.HeapContext(s.ctxt, ctx, obj)
		}
		cs := s.csObj(hctx, obj)
		lhs := s.varNode(ctx, stmt.LHS)
		if !x.isFrozen(lhs) {
			s.addPtsOne(lhs, cs)
		}

	case *lang.Copy:
		if x.bulk {
			return
		}
		x.edge(s.varNode(ctx, stmt.RHS), s.varNode(ctx, stmt.LHS), nil)

	case *lang.Cast:
		rhs := s.varNode(ctx, stmt.RHS)
		if !x.bulk {
			x.edge(rhs, s.varNode(ctx, stmt.LHS), stmt.Type)
		}
		ck := castInstKey{ctx, stmt}
		if !s.castSeen[ck] {
			s.castSeen[ck] = true
			s.casts = append(s.casts, castSite{stmt: stmt, rhsNode: rhs})
		}

	case *lang.Load:
		base := s.varNode(ctx, stmt.Base)
		ls := loadSite{field: stmt.Field, lhs: s.varNode(ctx, stmt.LHS)}
		s.nodes[base].info.loads = append(s.nodes[base].info.loads, ls)
		if x.bulk {
			return // field edges for the seeded receivers were copied
		}
		if x.isFrozen(base) {
			x.replayFrozen(base, func(obj int) { x.edge(s.fieldNode(obj, ls.field), ls.lhs, nil) })
		} else {
			s.replayBase(base, func(obj int) { s.applyLoad(obj, ls) })
		}

	case *lang.Store:
		base := s.varNode(ctx, stmt.Base)
		ss := storeSite{field: stmt.Field, rhs: s.varNode(ctx, stmt.RHS)}
		s.nodes[base].info.stores = append(s.nodes[base].info.stores, ss)
		if x.bulk {
			return // field edges for the seeded receivers were copied
		}
		if x.isFrozen(base) {
			x.replayFrozen(base, func(obj int) { x.edge(ss.rhs, s.fieldNode(obj, ss.field), nil) })
		} else {
			s.replayBase(base, func(obj int) { s.applyStore(obj, ss) })
		}

	case *lang.StaticLoad:
		if x.bulk {
			return
		}
		x.edge(s.staticNode(stmt.Field), s.varNode(ctx, stmt.LHS), nil)

	case *lang.StaticStore:
		if x.bulk {
			return
		}
		x.edge(s.varNode(ctx, stmt.RHS), s.staticNode(stmt.Field), nil)

	case *lang.Invoke:
		if stmt.Kind == lang.StaticCall {
			return // the retained call edge is translated in translateCalls
		}
		base := s.varNode(ctx, stmt.Base)
		s.nodes[base].info.invokes = append(s.nodes[base].info.invokes, stmt)
		if binv, ok := bst.(*lang.Invoke); ok && x.isFrozen(base) && !x.needsDispatch(binv) {
			return // call edges are translated in translateCalls
		}
		s.replayBase(base, func(obj int) { s.applyInvoke(ctx, obj, stmt) })

	case *lang.Return:
		if x.bulk {
			return
		}
		if stmt.Value != nil && m.RetVar != nil {
			x.edge(s.varNode(ctx, stmt.Value), s.varNode(ctx, m.RetVar), nil)
		}

	case *lang.Throw:
		if x.bulk {
			return
		}
		x.edge(s.varNode(ctx, stmt.Value), s.varNode(ctx, m.ExcVar()), nil)

	case *lang.Catch:
		if x.bulk {
			return
		}
		x.edge(s.varNode(ctx, m.ExcVar()), s.varNode(ctx, stmt.LHS), stmt.Type)

	default:
		panic(fmt.Sprintf("pta: unknown statement %T", st))
	}
}

// replayFrozen iterates a frozen (final) set. A snapshot like
// replayBase's is unnecessary — frozen sets never grow — but fieldNode
// may append to s.nodes, so the set pointer must be re-read per
// element; Clone sidesteps that for the same price as replayBase.
func (x *seeder) replayFrozen(base int, fn func(obj int)) {
	pts := x.s.ptsAt(base)
	if pts.IsEmpty() {
		return
	}
	snap := pts.Clone()
	snap.ForEach(func(i int) bool {
		fn(i)
		return true
	})
}

// needsDispatch reports whether a frozen-receiver call site still needs
// the per-object dispatch replay: when any base callee's This variable
// is not frozen in the new solver (tainted, changed callee, or an
// untranslatable set), the receiver bindings this site's untainted
// edges contributed are not re-derived anywhere else, so the site falls
// back to the ordinary replay — translateCalls then deduplicates the
// edges it re-adds.
func (x *seeder) needsDispatch(binv *lang.Invoke) bool {
	for _, k := range x.t.byInv[binv] {
		if k.callee.This == nil {
			continue
		}
		nThis := x.d.Vars[k.callee.This]
		if nThis == nil {
			return true
		}
		if !x.isFrozen(x.s.varNode(x.s.ctxt.Empty(), nThis)) {
			return true
		}
	}
	return false
}

// translateCalls (phase 3) replays the base call graph for unchanged,
// non-dirty callers: each untainted retained edge is installed directly
// — callee reachability, call-graph entries, argument/return/exception
// wiring — without dispatching receiver objects. Receiver This-bindings
// are already part of the seeded sets for every edge this skips
// (needsDispatch caught the rest at install time). A changed callee is
// processed cold by the makeReachable inside translateEdge.
func (x *seeder) translateCalls() error {
	empty := x.s.ctxt.Empty()
	for _, bk := range x.bs.reachList {
		if err := x.interrupted(); err != nil {
			return err
		}
		bm := bk.m
		if x.d.MethodChanged(bm) || x.t.dirty[bm] {
			continue
		}
		for _, st := range bm.Stmts {
			binv, ok := st.(*lang.Invoke)
			if !ok {
				continue
			}
			edges := x.t.byInv[binv]
			if len(edges) == 0 {
				continue
			}
			ninv := x.d.Invokes[binv]
			if ninv == nil {
				continue
			}
			if len(edges) > 1 {
				// byInv holds map-ordered slices; canonicalize so repeated
				// runs install edges (and create nodes) in one order.
				sort.Slice(edges, func(i, j int) bool {
					return edges[i].callee.String() < edges[j].callee.String()
				})
			}
			for _, k := range edges {
				if x.t.edgeTainted[k] {
					continue // re-derived by propagation through the tainted region
				}
				ncallee := x.d.Methods[k.callee]
				if ncallee == nil || ncallee.IsAbstract {
					continue
				}
				x.translateEdge(empty, ninv, ncallee)
			}
		}
	}
	return nil
}

func (x *seeder) translateEdge(empty *Context, inv *lang.Invoke, callee *lang.Method) {
	s := x.s
	s.makeReachable(empty, callee)
	k := callEdgeKey{empty, inv, empty, callee}
	if s.callEdges[k] {
		return
	}
	s.callEdges[k] = true
	tgts := s.ciEdges[inv]
	if tgts == nil {
		tgts = make(map[*lang.Method]bool)
		s.ciEdges[inv] = tgts
	}
	tgts[callee] = true
	if !x.bulk { // bulk copy already carried the parameter/return/exception edges
		for i, a := range inv.Args {
			x.edge(s.varNode(empty, a), s.varNode(empty, callee.Params[i]), nil)
		}
		if inv.LHS != nil && callee.RetVar != nil {
			x.edge(s.varNode(empty, callee.RetVar), s.varNode(empty, inv.LHS), nil)
		}
		x.edge(s.varNode(empty, callee.ExcVar()), s.varNode(empty, inv.In.ExcVar()), nil)
	}
	x.st.TranslatedCallEdges++
}
