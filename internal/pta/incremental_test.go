package pta

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"mahjong/internal/delta"
	"mahjong/internal/faultinject"
	"mahjong/internal/lang"
	"mahjong/internal/synth"
)

// assertSameAnalysis is the incremental A/B gate's comparator: the warm
// and cold results analyzed the SAME program object, so every fact can
// be compared through shared lang identities — per-variable points-to
// sets (as allocation-site labels), the call graph, reachable-method
// counts, and cast facts.
func assertSameAnalysis(t *testing.T, tag string, prog *lang.Program, warm, cold *Result) {
	t.Helper()
	if got, want := warm.NumReachableMethods(), cold.NumReachableMethods(); got != want {
		t.Fatalf("%s: reachable methods %d (warm) vs %d (cold)", tag, got, want)
	}
	for _, m := range prog.Methods {
		for _, v := range m.Locals {
			got, want := varSiteLabels(warm, v), varSiteLabels(cold, v)
			if !equalStrings(got, want) {
				t.Fatalf("%s: pts(%s.%s) differ:\n warm: %v\n cold: %v", tag, m, v.Name, got, want)
			}
		}
	}
	ge, we := warm.CallGraphEdges(), cold.CallGraphEdges()
	if len(ge) != len(we) {
		t.Fatalf("%s: %d (warm) vs %d (cold) call edges", tag, len(ge), len(we))
	}
	for i := range ge {
		if ge[i] != we[i] {
			t.Fatalf("%s: call edge %d: %v->%v (warm) vs %v->%v (cold)", tag, i,
				ge[i].Site.Label(), ge[i].Callee, we[i].Site.Label(), we[i].Callee)
		}
	}
	gc, wc := castSets(warm), castSets(cold)
	if len(gc) != len(wc) {
		t.Fatalf("%s: %d (warm) vs %d (cold) reachable casts", tag, len(gc), len(wc))
	}
	for stmt, labels := range gc {
		if !equalStrings(labels, wc[stmt]) {
			t.Fatalf("%s: cast %v incoming differ:\n warm: %v\n cold: %v", tag, stmt, labels, wc[stmt])
		}
	}
}

// incrementalSubjects returns the equivalence sweep's subjects: random
// programs plus a generated benchmark, per the acceptance criterion of
// >= 3 synthetic subjects.
func incrementalSubjects(t *testing.T) []struct {
	name string
	prog *lang.Program
} {
	t.Helper()
	luindex, err := synth.ProfileByName("luindex")
	if err != nil {
		t.Fatalf("profile: %v", err)
	}
	gen, err := synth.Generate(luindex)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return []struct {
		name string
		prog *lang.Program
	}{
		{"rand1", synth.RandomProgram(1)},
		{"rand7", synth.RandomProgram(7)},
		{"rand13", synth.RandomProgram(13)},
		{"luindex", gen},
	}
}

// TestIncrementalEquivalenceRandomEdits is the A/B gate: chains of
// random body-only edits, each step solved warm (seeded from the
// previous step's result — itself possibly warm) and cold, must agree
// exactly. This is the incremental analogue of
// TestOptimizedSolverEquivalence.
func TestIncrementalEquivalenceRandomEdits(t *testing.T) {
	const steps = 5
	for _, sub := range incrementalSubjects(t) {
		rng := rand.New(rand.NewSource(42)) //nolint:gosec // deterministic test sweep
		cur := sub.prog
		curRes, err := Solve(cur, Options{})
		if err != nil {
			t.Fatalf("%s: cold base solve: %v", sub.name, err)
		}
		for i := 0; i < steps; i++ {
			next, desc, err := delta.RandomEdit(cur, rng)
			if err != nil {
				t.Fatalf("%s step %d: edit: %v", sub.name, i, err)
			}
			d, err := delta.Compute(cur, next, delta.Options{})
			if err != nil {
				t.Fatalf("%s step %d: diff: %v", sub.name, i, err)
			}
			if !d.BodyOnly {
				t.Fatalf("%s step %d (%s): edit not body-only: %s", sub.name, i, desc, d.Reason)
			}
			warm, st, err := SolveIncremental(next, Options{}, curRes, d)
			if err != nil {
				t.Fatalf("%s step %d (%s): incremental solve: %v", sub.name, i, desc, err)
			}
			if !st.Used {
				t.Fatalf("%s step %d (%s): fell back to cold solve: %s", sub.name, i, desc, st.Fallback)
			}
			cold, err := Solve(next, Options{})
			if err != nil {
				t.Fatalf("%s step %d (%s): cold solve: %v", sub.name, i, desc, err)
			}
			assertSameAnalysis(t, fmt.Sprintf("%s step %d (%s)", sub.name, i, desc), next, warm, cold)
			cur, curRes = next, warm
		}
	}
}

// TestIncrementalEquivalenceFallbacks checks that every ineligible
// configuration degrades to a from-scratch solve with a recorded
// reason — and still returns the exact cold result.
func TestIncrementalEquivalenceFallbacks(t *testing.T) {
	prog := synth.RandomProgram(3)
	base, err := Solve(prog, Options{})
	if err != nil {
		t.Fatalf("base solve: %v", err)
	}
	identical, err := delta.Rewrite(prog, nil)
	if err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	d, err := delta.Compute(prog, identical, delta.Options{})
	if err != nil {
		t.Fatalf("diff: %v", err)
	}
	if !d.BodyOnly || len(d.Changed) != 0 {
		t.Fatalf("identity rewrite diffs: BodyOnly=%v changed=%d", d.BodyOnly, len(d.Changed))
	}

	check := func(tag string, res *Result, st *IncrementalStats, err error, wantReason string, coldOpts Options) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", tag, err)
		}
		if st.Used {
			t.Fatalf("%s: expected fallback, got warm solve", tag)
		}
		if st.Fallback == "" || wantReason != "" && !containsStr(st.Fallback, wantReason) {
			t.Fatalf("%s: fallback reason %q, want substring %q", tag, st.Fallback, wantReason)
		}
		cold, err := Solve(identical, coldOpts)
		if err != nil {
			t.Fatalf("%s: cold: %v", tag, err)
		}
		assertSameAnalysis(t, tag, identical, res, cold)
	}

	// No base result at all.
	res, st, err := SolveIncremental(identical, Options{}, nil, d)
	check("nil base", res, st, err, "no base result", Options{})

	// Shape change: the edited program grew a class.
	shaped, err := delta.Rewrite(prog, nil)
	if err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	shaped.NewClass("ExtraClass", nil)
	ds, err := delta.Compute(prog, shaped, delta.Options{})
	if err != nil {
		t.Fatalf("diff: %v", err)
	}
	if ds.BodyOnly {
		t.Fatal("class addition not detected as shape change")
	}
	res, st, err = SolveIncremental(shaped, Options{}, base, ds)
	if err != nil {
		t.Fatalf("shape change: %v", err)
	}
	if st.Used || !containsStr(st.Fallback, "shape change") {
		t.Fatalf("shape change: Used=%v Fallback=%q", st.Used, st.Fallback)
	}

	// Context-sensitive selector is ineligible.
	res, st, err = SolveIncremental(identical, Options{Selector: KObj{K: 2}}, base, d)
	check("kobj selector", res, st, err, "context-sensitive", Options{Selector: KObj{K: 2}})

	// Non-alloc-site heap model is ineligible.
	res, st, err = SolveIncremental(identical, Options{Heap: NewAllocTypeModel()}, base, d)
	check("alloc-type heap", res, st, err, "not alloc-site", Options{Heap: NewAllocTypeModel()})

	// A partial (work-budget aborted) base retains no usable state.
	partial, err := Solve(prog, Options{Budget: Budget{Work: 1}})
	if err != nil {
		t.Fatalf("partial solve: %v", err)
	}
	if !partial.Aborted {
		t.Fatal("tiny budget did not abort")
	}
	res, st, err = SolveIncremental(identical, Options{}, partial, d)
	check("aborted base", res, st, err, "partial", Options{})
}

// TestIncrementalEquivalenceSeedFault injects a fault at the pta.seed
// seam: the incremental path must degrade to a cold solve — never fail
// the analysis — and record the injection in the fallback reason.
func TestIncrementalEquivalenceSeedFault(t *testing.T) {
	defer faultinject.Clear()
	prog := synth.RandomProgram(5)
	base, err := Solve(prog, Options{})
	if err != nil {
		t.Fatalf("base solve: %v", err)
	}
	rng := rand.New(rand.NewSource(9)) //nolint:gosec // deterministic test
	next, desc, err := delta.RandomEdit(prog, rng)
	if err != nil {
		t.Fatalf("edit: %v", err)
	}
	d, err := delta.Compute(prog, next, delta.Options{})
	if err != nil {
		t.Fatalf("diff: %v", err)
	}

	for _, mode := range []struct {
		name string
		hook faultinject.Hook
	}{
		{"error", faultinject.Fail(errors.New("injected seed fault"))},
		{"panic", faultinject.PanicWith("injected seed bug")},
	} {
		faultinject.Set(faultinject.OnStage(faultinject.StageSeed, mode.hook))
		warm, st, err := SolveIncremental(next, Options{}, base, d)
		faultinject.Clear()
		if err != nil {
			t.Fatalf("%s (%s): incremental solve failed hard: %v", mode.name, desc, err)
		}
		if st.Used || !containsStr(st.Fallback, "seed preparation failed") {
			t.Fatalf("%s: Used=%v Fallback=%q", mode.name, st.Used, st.Fallback)
		}
		cold, err := Solve(next, Options{})
		if err != nil {
			t.Fatalf("cold: %v", err)
		}
		assertSameAnalysis(t, "seed fault "+mode.name, next, warm, cold)
	}
}

// TestIncrementalReplayWorkReduction is the deterministic speedup gate
// behind the BENCH_incremental.json numbers: after a one-method edit on
// a benchmark-scale subject, the warm solve's propagation work counter
// must come in at <= 1/5 of the cold solve's. Work is a deterministic
// counter, so this cannot flake the way wall-clock ratios do.
func TestIncrementalReplayWorkReduction(t *testing.T) {
	prof, err := synth.ProfileByName("checkstyle")
	if err != nil {
		t.Fatalf("profile: %v", err)
	}
	prog, err := synth.Generate(prof)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	base, err := Solve(prog, Options{})
	if err != nil {
		t.Fatalf("base solve: %v", err)
	}

	// One-method edit: prepend a semantically inert self-copy to the
	// first concrete instance method, changing exactly one body hash.
	var target *lang.Method
	for _, c := range prog.Classes {
		for _, m := range c.DeclaredMethods {
			if !m.IsAbstract && m != prog.Entry && m.This != nil {
				target = m
				break
			}
		}
		if target != nil {
			break
		}
	}
	if target == nil {
		t.Fatal("no editable method")
	}
	next, err := delta.Rewrite(prog, func(m *lang.Method, stmts []lang.Stmt) []lang.Stmt {
		if m != target {
			return stmts
		}
		return append([]lang.Stmt{&lang.Copy{LHS: m.This, RHS: m.This}}, stmts...)
	})
	if err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	d, err := delta.Compute(prog, next, delta.Options{})
	if err != nil {
		t.Fatalf("diff: %v", err)
	}
	if !d.BodyOnly || len(d.Changed) != 1 {
		t.Fatalf("expected exactly one changed method, got BodyOnly=%v changed=%d", d.BodyOnly, len(d.Changed))
	}

	warm, st, err := SolveIncremental(next, Options{}, base, d)
	if err != nil {
		t.Fatalf("incremental solve: %v", err)
	}
	if !st.Used {
		t.Fatalf("fell back: %s", st.Fallback)
	}
	cold, err := Solve(next, Options{})
	if err != nil {
		t.Fatalf("cold solve: %v", err)
	}
	assertSameAnalysis(t, "one-method edit on "+prof.Name, next, warm, cold)
	if warm.Work*5 > cold.Work {
		t.Fatalf("warm solve did %d work vs cold %d: less than the required 5x reduction (stats %+v)",
			warm.Work, cold.Work, st)
	}
	t.Logf("one-method edit on %s: cold work %d, warm work %d (%.1fx), seeded %d facts into %d vars / %d fields / %d statics, %d/%d nodes tainted",
		prof.Name, cold.Work, warm.Work, float64(cold.Work)/float64(warm.Work),
		st.SeededFacts, st.SeededVars, st.SeededFields, st.SeededStatics, st.TaintedNodes, st.BaseNodes)
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
