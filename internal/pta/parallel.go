package pta

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"mahjong/internal/bitset"
	"mahjong/internal/faultinject"
	"mahjong/internal/lang"
	"mahjong/internal/trace"
)

// The parallel engine: phase-alternating sharded propagation.
//
// Andersen solving interleaves two kinds of work. Propagation (pushing
// points-to deltas across existing edges) is data-parallel; graph
// growth (statement processing on var deltas, edge insertion, call
// discovery, cycle collapsing) mutates shared maps and the node slice.
// Rather than lock the growth paths, the engine alternates: the
// sequential loop runs until the worklist is wide enough to amortize a
// phase, then freezes the graph shape and fans the worklist out to N
// shard workers that do propagation only, deferring every var-site
// reaction. At phase end the deferred deltas fire sequentially, growing
// the graph and refilling the worklist for the next round.
//
// During a phase each node belongs to exactly one shard and only its
// owner writes its pts/pending/queued state ("owner writes"): local
// destinations update directly, remote destinations receive cloned
// deltas over per-pair SPSC queues. Termination is detected from
// monotone sent/recv counters plus per-worker idle flags: a message
// increments sent before it is enqueued and recv only after it is
// applied, so "sent == recv and everyone idle" (confirmed by a second
// scan) means no work exists anywhere. A worker that dies — injected
// fault, budget sentinel, real bug — records its panic and raises the
// stopped flag, which both siblings and the detector honor, so failure
// degrades the run instead of deadlocking it; the coordinator folds
// stats and re-raises the recorded value. See docs/PARALLEL.md.
type parEngine struct {
	s         *solver
	threshold int // minimum worklist length that triggers a phase

	// Phase-frozen snapshots, rebuilt by prep(). flat is the flattened
	// union-find (Find path-compresses, so workers must not call it);
	// shardOf is the sticky node->shard assignment; siteful marks nodes
	// whose deltas must be stashed for deferred var-site firing.
	flat    []int32
	shardOf []int32
	load    []int
	siteful []bool

	shards []*shardState

	// Distinct filter classes ever attached to an edge; prep extends
	// each one's mask so workers only ever read masks.
	filterSeen map[*lang.Class]bool
	filterList []*lang.Class

	sent, recv atomic.Int64
	parWork    atomic.Int64
	stopped    atomic.Bool
	baseWork   int64 // s.work at phase start, for budget checks

	failMu   sync.Mutex
	failVal  any
	meterErr error
}

// defaultParThreshold is the worklist length below which a parallel
// phase costs more in goroutine churn than it wins; overridable per
// run through Options.parThreshold (tests force tiny phases with it).
const defaultParThreshold = 64

// normalizeWorkers maps Options.Parallel onto a worker count: negative
// means one per GOMAXPROCS, and anything below 2 is the sequential
// path.
func normalizeWorkers(p int) int {
	if p < 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > 64 {
		p = 64
	}
	return p
}

func newParEngine(s *solver, workers, threshold int) *parEngine {
	if threshold <= 0 {
		threshold = defaultParThreshold
	}
	e := &parEngine{
		s:          s,
		threshold:  threshold,
		load:       make([]int, workers),
		shards:     make([]*shardState, workers),
		filterSeen: make(map[*lang.Class]bool),
	}
	for i := range e.shards {
		e.shards[i] = &shardState{
			eng:        e,
			id:         i,
			in:         make([]*spsc, workers),
			remoteTgts: make([][]int32, workers),
			fired:      make(map[int32]*bitset.Set),
		}
	}
	for i, w := range e.shards {
		for j := range w.in {
			if j != i {
				w.in[j] = newSPSC()
			}
		}
	}
	s.stats.ShardWorkers = workers
	return e
}

// trackFilter records a filter class the first time an edge carries it.
func (e *parEngine) trackFilter(cls *lang.Class) {
	if e.filterSeen[cls] {
		return
	}
	e.filterSeen[cls] = true
	e.filterList = append(e.filterList, cls)
}

// runPhase executes one parallel propagation phase. Called from the
// sequential run loop; any worker failure re-raises here so the
// sentinels reach run()'s recover and real bugs reach the stage guard.
func (e *parEngine) runPhase() {
	s := e.s
	sp := s.span.Ctx().Start(faultinject.StageShardSolve)
	defer sp.CloseAborted()
	e.prep()
	e.baseWork = s.work
	e.parWork.Store(0)
	e.sent.Store(0)
	e.recv.Store(0)
	e.stopped.Store(false)
	e.failVal = nil
	e.meterErr = nil
	for _, w := range e.shards {
		w.idle.Store(0)
	}
	var wg sync.WaitGroup
	for _, w := range e.shards {
		wg.Add(1)
		go func(w *shardState) {
			defer wg.Done()
			w.run(sp)
		}(w)
	}
	epochs := e.detect()
	wg.Wait()
	e.fold(sp, epochs)
	if fv := e.failVal; fv != nil {
		// Partial phase work is already folded and remains sound (facts
		// are monotone); residual rings/queues are abandoned exactly like
		// the sequential worklist on an abort.
		if fv == errMeterSentinel && s.meterErr == nil {
			s.meterErr = e.meterErr
		}
		e.failVal = nil
		panic(fv)
	}
	sp.End()
	// Back on one goroutine: return undelivered remainders to the
	// sequential worklist and fire the deferred var-site reactions in
	// deterministic (ascending node id) order.
	e.drain()
	e.fireSites()
}

// prep freezes the graph for a phase: flattens the union-find, extends
// every filter mask over newly interned objects, assigns shards to new
// nodes, recomputes which nodes carry statement sites, and deals the
// sequential worklist out to the owners' rings.
func (e *parEngine) prep() {
	s := e.s
	n := len(s.nodes)
	if cap(e.flat) < n {
		e.flat = make([]int32, n)
	} else {
		e.flat = e.flat[:n]
	}
	for i := 0; i < n; i++ {
		e.flat[i] = int32(s.find(i))
	}
	for _, cls := range e.filterList {
		s.mask(cls)
	}
	e.partition(n)
	if cap(e.siteful) < n {
		e.siteful = make([]bool, n)
	} else {
		e.siteful = e.siteful[:n]
	}
	for i := 0; i < n; i++ {
		e.siteful[i] = nodeHasSites(&s.nodes[i])
	}
	for {
		id, ok := s.worklist.pop()
		if !ok {
			break
		}
		if rep := int(e.flat[id]); rep != id {
			// Collapsed while queued: hand the delta to the
			// representative (which lands back on this worklist and is
			// dealt on a later iteration of this very loop).
			s.queued[id] = false
			if p := s.pending[id]; p != nil {
				s.pending[id] = nil
				s.addPts(rep, p)
				s.releaseSet(p)
			}
			continue
		}
		if p := s.pending[id]; p == nil || p.IsEmpty() {
			s.queued[id] = false
			s.pending[id] = nil
			s.releaseSet(p)
			continue
		}
		e.shards[e.shardOf[id]].ring.push(id)
	}
}

func nodeHasSites(n *node) bool {
	if vi := n.info; vi != nil && len(vi.loads)+len(vi.stores)+len(vi.invokes) > 0 {
		return true
	}
	for _, vi := range n.merged {
		if len(vi.loads)+len(vi.stores)+len(vi.invokes) > 0 {
			return true
		}
	}
	return false
}

// partition extends the sticky node->shard assignment to newly created
// nodes: a node follows its first already-assigned successor (copy
// chains cluster onto one shard, the cheap approximation of a greedy
// edge cut) unless that shard is overloaded, in which case it goes to
// the least-loaded shard. Assignments never change afterwards — the
// owner-writes discipline depends on that.
func (e *parEngine) partition(n int) {
	w := len(e.shards)
	for id := len(e.shardOf); id < n; id++ {
		best := -1
		for _, ed := range e.s.nodes[id].succ {
			if t := int(e.flat[ed.to]); t < id {
				best = int(e.shardOf[t])
				break
			}
		}
		if best >= 0 && e.load[best] > id/w+16 {
			best = -1 // affinity shard overloaded; rebalance
		}
		if best < 0 {
			best = 0
			for i := 1; i < w; i++ {
				if e.load[i] < e.load[best] {
					best = i
				}
			}
		}
		e.shardOf = append(e.shardOf, int32(best))
		e.load[best]++
	}
}

// detect is the epoch-based termination detector. Each epoch scans the
// monotone sent/recv counters and every worker's idle flag; two
// consecutive identical all-idle scans with sent == recv prove global
// quiescence (a message in flight always shows as sent > recv, and a
// worker's ring can only be non-empty while its own flag is busy). A
// failure raised by any worker stops the scan immediately — never wait
// for messages a dead worker can no longer consume.
func (e *parEngine) detect() int {
	epochs := 0
	for !e.stopped.Load() {
		epochs++
		s1, r1 := e.sent.Load(), e.recv.Load()
		if s1 == r1 && e.allIdle() {
			s2, r2 := e.sent.Load(), e.recv.Load()
			if s1 == s2 && r1 == r2 && e.allIdle() {
				e.stopped.Store(true)
				break
			}
		}
		runtime.Gosched()
	}
	return epochs
}

func (e *parEngine) allIdle() bool {
	for _, w := range e.shards {
		if w.idle.Load() == 0 {
			return false
		}
	}
	return true
}

// recordFailure stores the first panic value raised by a worker and
// stops the phase.
func (e *parEngine) recordFailure(r any) {
	e.failMu.Lock()
	if e.failVal == nil {
		e.failVal = r
	}
	e.failMu.Unlock()
	e.stopped.Store(true)
}

func (e *parEngine) recordMeterErr(err error) {
	e.failMu.Lock()
	if e.meterErr == nil {
		e.meterErr = err
	}
	e.failMu.Unlock()
}

// fold merges worker- and engine-local counters into the solver stats.
// It runs even when the phase failed, so partial work stays accounted.
func (e *parEngine) fold(sp trace.Span, epochs int) {
	s := e.s
	s.work += e.parWork.Swap(0)
	sent := e.sent.Load()
	s.stats.CrossShardDeltas += sent
	s.stats.ShardPhases++
	s.stats.TerminationEpochs += epochs
	for _, w := range e.shards {
		s.stats.PropagatedBits += w.propagatedBits
		s.stats.FilterMaskHits += w.maskHits
		s.stats.RangeFilterHits += w.rangeHits
		if w.ring.peak > s.stats.ShardWorklistPeak {
			s.stats.ShardWorklistPeak = w.ring.peak
		}
		w.propagatedBits, w.maskHits, w.rangeHits, w.sent, w.work = 0, 0, 0, 0, 0
	}
	sp.Add("cross_shard_deltas", sent)
	sp.Add("termination_epochs", int64(epochs))
}

// drain returns phase residue to the sequential structures: messages no
// worker consumed (possible only after an interrupted phase, but
// harmless to handle always) and still-queued ring entries. Premature
// termination is therefore a correctness non-event — anything missed
// re-enters the ordinary worklist.
func (e *parEngine) drain() {
	s := e.s
	for _, w := range e.shards {
		for _, q := range w.in {
			if q == nil {
				continue
			}
			for {
				m, ok := q.pop()
				if !ok {
					break
				}
				if m.targets == nil {
					s.addPts(int(m.to), m.set)
				} else {
					for _, t := range m.targets {
						s.addPts(int(t), m.set)
					}
				}
				s.releaseSet(m.set)
			}
		}
		for {
			id, ok := w.ring.pop()
			if !ok {
				break
			}
			// queued[id] is still true and pending[id] still holds the
			// delta; the sequential loop picks both up as-is.
			s.worklist.push(id)
		}
	}
}

// fireSites runs the deferred var-site reactions in ascending node id
// order — the one scheduling-dependent output of a phase made
// deterministic again before it can grow the graph.
func (e *parEngine) fireSites() {
	s := e.s
	total := 0
	for _, w := range e.shards {
		total += len(w.fired)
	}
	if total == 0 {
		return
	}
	ids := make([]int32, 0, total)
	for _, w := range e.shards {
		for id := range w.fired {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id32 := range ids {
		w := e.shards[e.shardOf[id32]]
		set := w.fired[id32]
		id := int(id32)
		if info := s.nodes[id].info; info != nil {
			s.processVarDelta(info, set)
		}
		for _, vi := range s.nodes[id].merged {
			s.processVarDelta(vi, set)
		}
		s.releaseSet(set)
	}
	for _, w := range e.shards {
		clear(w.fired)
	}
}
