package pta

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"mahjong/internal/delta"
	"mahjong/internal/failure"
	"mahjong/internal/faultinject"
	"mahjong/internal/lang"
	"mahjong/internal/synth"
)

// compareResults asserts that two runs over the same shared program
// agree on every label-stable output: reachable methods, per-variable
// points-to sets, the call graph, and cast facts. IDs are deliberately
// not compared — renumbering and scheduling permute them.
func compareResults(t *testing.T, tag string, prog *lang.Program, got, want *Result) {
	t.Helper()
	if g, w := got.NumReachableMethods(), want.NumReachableMethods(); g != w {
		t.Fatalf("%s: reachable methods %d vs %d", tag, g, w)
	}
	if g, w := got.NumCSObjs(), want.NumCSObjs(); g != w {
		t.Fatalf("%s: interned objects %d vs %d", tag, g, w)
	}
	for _, m := range prog.Methods {
		for _, v := range m.Locals {
			g, w := varSiteLabels(got, v), varSiteLabels(want, v)
			if !equalStrings(g, w) {
				t.Fatalf("%s: pts(%s.%s) differ:\n got:  %v\n want: %v", tag, m, v.Name, g, w)
			}
		}
	}
	ge, we := got.CallGraphEdges(), want.CallGraphEdges()
	if len(ge) != len(we) {
		t.Fatalf("%s: %d vs %d call edges", tag, len(ge), len(we))
	}
	for i := range ge {
		if ge[i] != we[i] {
			t.Fatalf("%s: edge %d: %v->%v vs %v->%v", tag, i,
				ge[i].Site.Label(), ge[i].Callee, we[i].Site.Label(), we[i].Callee)
		}
	}
	gc, wc := castSets(got), castSets(want)
	if len(gc) != len(wc) {
		t.Fatalf("%s: %d vs %d reachable casts", tag, len(gc), len(wc))
	}
	for stmt, labels := range gc {
		if !equalStrings(labels, wc[stmt]) {
			t.Fatalf("%s: cast %v incoming differ:\n got:  %v\n want: %v", tag, stmt, labels, wc[stmt])
		}
	}
}

// TestRenumberEquivalence: class-contiguous renumbering must change IDs
// only. The KObj selector produces context-sensitive (tail) objects, so
// both the pure-reserved and the mixed reserved+tail layouts are
// exercised.
func TestRenumberEquivalence(t *testing.T) {
	selectors := []Selector{nil, KObj{K: 2}}
	for seed := int64(1); seed <= 10; seed++ {
		prog := synth.RandomProgram(seed)
		for _, sel := range selectors {
			name := "ci"
			if sel != nil {
				name = sel.Name()
			}
			tag := fmt.Sprintf("seed %d %s", seed, name)
			ren, err := Solve(prog, Options{Selector: sel, Renumber: true})
			if err != nil {
				t.Fatalf("%s: Solve(Renumber): %v", tag, err)
			}
			base, err := Solve(prog, Options{Selector: sel})
			if err != nil {
				t.Fatalf("%s: Solve: %v", tag, err)
			}
			compareResults(t, tag, prog, ren, base)
			if sel == nil {
				// Context-insensitive: every object lands in a reserved
				// slot, so range filters stay enabled throughout.
				if ren.solver.tailObjs != 0 {
					t.Fatalf("%s: %d tail objects under CI", tag, ren.solver.tailObjs)
				}
			}
		}
	}
}

// TestRenumberSpansMatchSubtypeOf checks the structural invariant the
// range fast path relies on: for every span-eligible filter class, the
// interned objects inside [lo,hi) are exactly its subtypes.
func TestRenumberSpansMatchSubtypeOf(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		prog := synth.RandomProgram(seed)
		r, err := Solve(prog, Options{Renumber: true})
		if err != nil {
			t.Fatalf("seed %d: Solve: %v", seed, err)
		}
		s := r.solver
		if s.ren == nil {
			t.Fatalf("seed %d: renumbering not built", seed)
		}
		for cls, sp := range s.ren.spans {
			if cls.IsInterface || cls.IsArray() {
				t.Fatalf("seed %d: span built for ineligible class %s", seed, cls.Name)
			}
			for _, id32 := range s.internLog {
				id := int(id32)
				if id >= s.ren.reserved {
					continue // tail object, not covered by spans
				}
				in := id >= sp.lo && id < sp.hi
				if want := s.csobjs[id].Obj.Type.SubtypeOf(cls); in != want {
					t.Fatalf("seed %d: span %s [%d,%d): object %d (%s) in=%v SubtypeOf=%v",
						seed, cls.Name, sp.lo, sp.hi, id, s.csobjs[id], in, want)
				}
			}
		}
	}
}

// TestParallelSolverEquivalence is the sharded-engine A/B mirroring the
// NoOpt equivalence test: randomized worker counts (2..GOMAXPROCS+2,
// i.e. deliberately also oversubscribed), with and without renumbering,
// against the sequential solver. The tiny parThreshold forces many
// short phases on the small synthetic programs, maximizing phase
// boundary and cross-shard traffic coverage.
func TestParallelSolverEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	maxW := runtime.GOMAXPROCS(0) + 2
	for seed := int64(1); seed <= 10; seed++ {
		prog := synth.RandomProgram(seed)
		seq, err := Solve(prog, Options{})
		if err != nil {
			t.Fatalf("seed %d: Solve: %v", seed, err)
		}
		for trial := 0; trial < 3; trial++ {
			workers := 2 + rng.Intn(maxW-1)
			renumber := trial%2 == 1
			tag := fmt.Sprintf("seed %d workers %d renumber %v", seed, workers, renumber)
			par, err := Solve(prog, Options{Parallel: workers, Renumber: renumber, parThreshold: 1})
			if err != nil {
				t.Fatalf("%s: Solve: %v", tag, err)
			}
			compareResults(t, tag, prog, par, seq)
			if st := par.Stats(); st.ShardWorkers != workers {
				t.Fatalf("%s: stats report %d workers", tag, st.ShardWorkers)
			}
		}
	}
}

// TestParallelContextSensitiveEquivalence repeats the A/B under the
// KObj selector, whose context-sensitive objects take the tail-ID path
// when renumbering is on.
func TestParallelContextSensitiveEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		prog := synth.RandomProgram(seed)
		seq, err := Solve(prog, Options{Selector: KObj{K: 2}})
		if err != nil {
			t.Fatalf("seed %d: Solve: %v", seed, err)
		}
		par, err := Solve(prog, Options{Selector: KObj{K: 2}, Parallel: 3, Renumber: true, parThreshold: 1})
		if err != nil {
			t.Fatalf("seed %d: Solve(parallel): %v", seed, err)
		}
		compareResults(t, fmt.Sprintf("seed %d kobj", seed), prog, par, seq)
	}
}

// TestParallelDeterministicLabels: two parallel runs with the same
// options must agree with each other on every label-stable output even
// though internal scheduling differs.
func TestParallelDeterministicLabels(t *testing.T) {
	prog := synth.RandomProgram(3)
	a, err := Solve(prog, Options{Parallel: 4, parThreshold: 1})
	if err != nil {
		t.Fatalf("run a: %v", err)
	}
	b, err := Solve(prog, Options{Parallel: 4, parThreshold: 1})
	if err != nil {
		t.Fatalf("run b: %v", err)
	}
	compareResults(t, "a-vs-b", prog, a, b)
}

// TestParallelNoOptForcesSequential: NoOpt is the naive reference
// configuration and must disable the engine and the renumbering even
// when both are requested.
func TestParallelNoOptForcesSequential(t *testing.T) {
	prog := synth.RandomProgram(2)
	r, err := Solve(prog, Options{Parallel: 4, Renumber: true, NoOpt: true})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if r.solver.par != nil || r.solver.ren != nil {
		t.Fatalf("NoOpt run built par=%v ren=%v", r.solver.par != nil, r.solver.ren != nil)
	}
	if st := r.Stats(); st.ShardPhases != 0 || st.ShardWorkers != 0 || st.RangeFilterHits != 0 {
		t.Fatalf("NoOpt run reports parallel stats: %+v", st)
	}
}

// TestParallelWorkBudgetAborts: the work budget must abort a parallel
// run with a partial result, exactly like the sequential path — the
// abort sentinel unwinds out of a worker, through the coordinator, to
// run()'s recover.
func TestParallelWorkBudgetAborts(t *testing.T) {
	prog := synth.RandomProgram(5)
	full, err := Solve(prog, Options{Parallel: 3, parThreshold: 1})
	if err != nil {
		t.Fatalf("unbudgeted: %v", err)
	}
	r, err := Solve(prog, Options{Parallel: 3, parThreshold: 1, Budget: Budget{Work: full.Work / 4}})
	if err != nil {
		t.Fatalf("budgeted: %v", err)
	}
	if !r.Aborted {
		t.Fatal("budgeted parallel run did not abort")
	}
}

// TestParallelWorkerPanicDegrades: a panic injected inside a shard
// worker (StageShardSolve) must neither deadlock termination detection
// nor kill the process — it surfaces as a typed *failure.InternalError
// attributed to the worker stage.
func TestParallelWorkerPanicDegrades(t *testing.T) {
	defer faultinject.Clear()
	faultinject.Set(faultinject.OnStage(faultinject.StageShardSolve, faultinject.Once(faultinject.PanicWith("worker died"))))
	prog := synth.RandomProgram(4)
	_, err := Solve(prog, Options{Parallel: 3, parThreshold: 1})
	if err == nil {
		t.Fatal("injected worker panic produced no error")
	}
	var ie *failure.InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v, want *failure.InternalError", err)
	}
	if ie.Stage != faultinject.StageShardSolve {
		t.Fatalf("failure stage = %q, want %q", ie.Stage, faultinject.StageShardSolve)
	}
}

// TestParallelWorkerErrorDegrades: an error injected at the worker seam
// behaves like the panic case (typed failure, clean stop), covering the
// Fail-hook arm of the fault matrix.
func TestParallelWorkerErrorDegrades(t *testing.T) {
	defer faultinject.Clear()
	boom := errors.New("injected shard fault")
	faultinject.Set(faultinject.OnStage(faultinject.StageShardSolve, faultinject.Once(faultinject.Fail(boom))))
	prog := synth.RandomProgram(4)
	_, err := Solve(prog, Options{Parallel: 3, parThreshold: 1})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrap of %v", err, boom)
	}
	var ie *failure.InternalError
	if !errors.As(err, &ie) || ie.Stage != faultinject.StageShardSolve {
		t.Fatalf("err = %v, want InternalError at %s", err, faultinject.StageShardSolve)
	}
}

// TestRenumberFaultInjection covers the StageRenumber seam: an injected
// error fails the solve before any work happens, and a subsequent clean
// run succeeds.
func TestRenumberFaultInjection(t *testing.T) {
	defer faultinject.Clear()
	boom := errors.New("renumber fault")
	faultinject.Set(faultinject.OnStage(faultinject.StageRenumber, faultinject.Once(faultinject.Fail(boom))))
	prog := synth.RandomProgram(2)
	if _, err := Solve(prog, Options{Renumber: true}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrap of %v", err, boom)
	}
	if _, err := Solve(prog, Options{Renumber: true}); err != nil {
		t.Fatalf("clean retry failed: %v", err)
	}
}

// TestParallelIncrementalEquivalence: the warm-started incremental
// solve must keep its equivalence guarantee when the re-solve runs the
// parallel engine with renumbering.
func TestParallelIncrementalEquivalence(t *testing.T) {
	base := synth.RandomProgram(7)
	baseRes, err := Solve(base, Options{})
	if err != nil {
		t.Fatalf("base solve: %v", err)
	}
	rng := rand.New(rand.NewSource(7))
	next, desc, err := delta.RandomEdit(base, rng)
	if err != nil {
		t.Fatalf("edit: %v", err)
	}
	d, err := delta.Compute(base, next, delta.Options{})
	if err != nil {
		t.Fatalf("diff: %v", err)
	}
	warm, st, err := SolveIncremental(next, Options{Parallel: 3, Renumber: true, parThreshold: 1}, baseRes, d)
	if err != nil {
		t.Fatalf("incremental solve (%s): %v", desc, err)
	}
	if !st.Used {
		t.Fatalf("fell back to cold solve: %s", st.Fallback)
	}
	cold, err := Solve(next, Options{})
	if err != nil {
		t.Fatalf("cold solve: %v", err)
	}
	compareResults(t, "incremental-parallel", next, warm, cold)
}
