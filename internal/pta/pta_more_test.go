package pta

import (
	"testing"
	"time"

	"mahjong/internal/lang"
)

func TestSelectorNames(t *testing.T) {
	cases := []struct {
		sel  Selector
		want string
	}{
		{CI{}, "ci"},
		{KCFA{K: 2}, "2cs"},
		{KObj{K: 3}, "3obj"},
		{KType{K: 2}, "2type"},
	}
	for _, c := range cases {
		if got := c.sel.Name(); got != c.want {
			t.Errorf("Name()=%q want %q", got, c.want)
		}
	}
}

// TestMergedObjectsContextInsensitive: with a MOM merging two sites, the
// merged object must appear as a single CSObj even under deep object
// sensitivity (§3.6.1: M-A models merged objects context-insensitively).
func TestMergedObjectsContextInsensitive(t *testing.T) {
	p := lang.NewProgram()
	obj := p.Object()
	box := p.NewClass("Box", nil)
	val := box.NewField("val", obj)
	fill := box.NewMethod("fill", false, nil, nil)
	inner := fill.NewVar("inner", obj)
	innerSite := fill.AddAlloc(inner, box)
	fill.AddStore(fill.This, val, inner)
	fill.AddReturn(nil)

	mainCls := p.NewClass("Main", nil)
	m := mainCls.NewMethod("main", true, nil, nil)
	b1 := m.NewVar("b1", box)
	b2 := m.NewVar("b2", box)
	s1 := m.AddAlloc(b1, box)
	s2 := m.AddAlloc(b2, box)
	m.AddVirtualCall(nil, b1, "fill")
	m.AddVirtualCall(nil, b2, "fill")
	m.AddReturn(nil)
	p.SetEntry(m)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}

	// Baseline 3obj: the inner allocation gets one heap context per
	// outer box (plus recursive inner-in-inner contexts).
	base, err := Solve(p, Options{Selector: KObj{K: 3}})
	if err != nil {
		t.Fatal(err)
	}
	baseInner := countCSObjsOf(base, innerSite)
	if baseInner < 2 {
		t.Fatalf("baseline inner CSObjs=%d, want >=2 (per-receiver contexts)", baseInner)
	}

	// Mahjong with all three Box sites merged: a single CSObj.
	mom := map[*lang.AllocSite]*lang.AllocSite{
		s1: s1, s2: s1, innerSite: s1,
	}
	merged, err := Solve(p, Options{Selector: KObj{K: 3}, Heap: NewMergedSiteModel(mom)})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, cs := range merged.CSObjs() {
		if cs.Obj.Rep == s1 {
			count++
			if cs.Ctx.Depth() != 0 {
				t.Fatalf("merged object has non-empty heap context %v", cs.Ctx)
			}
		}
	}
	if count != 1 {
		t.Fatalf("merged object CSObjs=%d want 1", count)
	}
}

func countCSObjsOf(r *Result, site *lang.AllocSite) int {
	n := 0
	for _, cs := range r.CSObjs() {
		for _, s := range cs.Obj.Sites {
			if s == site {
				n++
			}
		}
	}
	return n
}

// TestKTypeContextElements: under k-type sensitivity, context elements
// are the classes containing allocation sites, so two receivers
// allocated in the same class share a context.
func TestKTypeContextElements(t *testing.T) {
	prog, ga, _, _, _ := buildContainer(t)
	r, err := Solve(prog, Options{Selector: KType{K: 2}})
	if err != nil {
		t.Fatal(err)
	}
	// Both boxes are allocated in Main, so 2type merges their contexts
	// and ga sees both stored objects (coarser than 2obj).
	if got := len(r.VarObjs(ga)); got != 2 {
		t.Fatalf("2type: ga sees %d objs, want 2", got)
	}
	// Context elements must be classes.
	for _, cs := range r.CSObjs() {
		for _, e := range cs.Ctx.Elements() {
			if _, ok := e.(*lang.Class); !ok {
				t.Fatalf("ktype context element %T, want *lang.Class", e)
			}
		}
	}
}

// TestKObjContextElements: under k-object sensitivity context elements
// are abstract objects, and allocations inside instance methods get
// per-receiver heap contexts.
func TestKObjContextElements(t *testing.T) {
	// Box.fill allocates an inner object: its heap context must carry
	// the receiver box.
	p := lang.NewProgram()
	obj := p.Object()
	box := p.NewClass("Box", nil)
	val := box.NewField("val", obj)
	fill := box.NewMethod("fill", false, nil, nil)
	inner := fill.NewVar("inner", obj)
	leaf := p.NewClass("Leaf", nil)
	innerSite := fill.AddAlloc(inner, leaf)
	fill.AddStore(fill.This, val, inner)
	fill.AddReturn(nil)
	mainCls := p.NewClass("Main", nil)
	m := mainCls.NewMethod("main", true, nil, nil)
	b1 := m.NewVar("b1", box)
	b2 := m.NewVar("b2", box)
	m.AddAlloc(b1, box)
	m.AddAlloc(b2, box)
	m.AddVirtualCall(nil, b1, "fill")
	m.AddVirtualCall(nil, b2, "fill")
	m.AddReturn(nil)
	p.SetEntry(m)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}

	r, err := Solve(p, Options{Selector: KObj{K: 2}})
	if err != nil {
		t.Fatal(err)
	}
	deepInner := 0
	for _, cs := range r.CSObjs() {
		for _, e := range cs.Ctx.Elements() {
			if _, ok := e.(*Obj); !ok {
				t.Fatalf("kobj context element %T, want *pta.Obj", e)
			}
		}
		if cs.Obj.Rep == innerSite {
			if cs.Ctx.Depth() != 1 {
				t.Fatalf("inner heap context depth=%d want 1", cs.Ctx.Depth())
			}
			deepInner++
		}
	}
	if deepInner != 2 {
		t.Fatalf("inner CSObjs=%d want 2 (one per receiver box)", deepInner)
	}
}

// TestKCFAContextElements: call-site sensitivity uses invokes.
func TestKCFAContextElements(t *testing.T) {
	prog, ra, _, _, _ := buildWrapper(t)
	r, err := Solve(prog, Options{Selector: KCFA{K: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.VarObjs(ra)) != 1 {
		t.Fatal("2cs should separate the wrapper calls")
	}
	found := false
	for _, cs := range r.CSObjs() {
		for _, e := range cs.Ctx.Elements() {
			if _, ok := e.(*lang.Invoke); !ok {
				t.Fatalf("kcfa context element %T, want *lang.Invoke", e)
			}
			found = true
		}
	}
	_ = found // heap contexts may be empty at k=2 with shallow programs
}

func TestVarTypesSorted(t *testing.T) {
	f := buildFigure1(t)
	r, err := Solve(f.prog, Options{Heap: NewAllocTypeModel()})
	if err != nil {
		t.Fatal(err)
	}
	types := r.VarTypes(f.varA)
	if len(types) != 2 || types[0].Name != "B" || types[1].Name != "C" {
		t.Fatalf("VarTypes=%v want [B C]", types)
	}
}

func TestFieldPointsToDeterministic(t *testing.T) {
	f := buildFigure1(t)
	r := solveCI(t, f.prog)
	var order1, order2 []string
	collect := func(out *[]string) func(*Obj, *lang.Field, []*Obj) {
		return func(base *Obj, field *lang.Field, targets []*Obj) {
			s := base.String() + "." + field.Name + "->"
			for _, t := range targets {
				s += t.String() + ","
			}
			*out = append(*out, s)
		}
	}
	r.FieldPointsTo(collect(&order1))
	r.FieldPointsTo(collect(&order2))
	if len(order1) != 3 {
		t.Fatalf("field facts=%d want 3 (x.f, y.f, z.f)", len(order1))
	}
	for i := range order1 {
		if order1[i] != order2[i] {
			t.Fatal("FieldPointsTo iteration nondeterministic")
		}
	}
}

func TestCallGraphEdgesSorted(t *testing.T) {
	f := buildFigure1(t)
	r := solveCI(t, f.prog)
	edges := r.CallGraphEdges()
	if len(edges) != r.NumCallGraphEdges() {
		t.Fatal("edge list and count disagree")
	}
	for i := 1; i < len(edges); i++ {
		if edges[i-1].Site.ID > edges[i].Site.ID {
			t.Fatal("edges not sorted by site")
		}
	}
}

func TestTimeBudget(t *testing.T) {
	// A generous work budget with a tiny time budget must abort quickly.
	f := buildFigure1(t)
	r, err := Solve(f.prog, Options{Budget: Budget{Time: time.Nanosecond}})
	if err != nil {
		t.Fatal(err)
	}
	// Figure 1 is tiny, so it may finish before the clock is checked;
	// what matters is that the run returns and the flag is coherent.
	if r.Aborted && r.Work == 0 {
		t.Fatal("aborted with zero work")
	}
}

func TestNumQueries(t *testing.T) {
	f := buildFigure1(t)
	r := solveCI(t, f.prog)
	if r.NumNodes() == 0 || r.NumCSObjs() != 6 {
		t.Fatalf("nodes=%d csobjs=%d", r.NumNodes(), r.NumCSObjs())
	}
	if r.NumCSMethods() != r.NumReachableMethods() {
		t.Fatal("ci: cs-methods should equal reachable methods")
	}
}

// TestDispatchToInheritedMethod: a subclass without an override
// dispatches to the superclass implementation.
func TestDispatchToInheritedMethod(t *testing.T) {
	p := lang.NewProgram()
	a := p.NewClass("A", nil)
	afoo := a.NewMethod("foo", false, nil, nil)
	afoo.AddReturn(nil)
	b := p.NewClass("B", a) // no override
	mainCls := p.NewClass("Main", nil)
	m := mainCls.NewMethod("main", true, nil, nil)
	x := m.NewVar("x", a)
	m.AddAlloc(x, b)
	inv := m.AddVirtualCall(nil, x, "foo")
	m.AddReturn(nil)
	p.SetEntry(m)
	r := solveCI(t, p)
	tgts := r.CallTargets(inv)
	if len(tgts) != 1 || tgts[0] != afoo {
		t.Fatalf("targets=%v want [A.foo]", tgts)
	}
}

// TestInterfaceDispatch: calls through an interface-typed receiver
// dispatch on the runtime class.
func TestInterfaceDispatch(t *testing.T) {
	p := lang.NewProgram()
	i := p.NewInterface("I")
	i.NewAbstractMethod("run", nil, nil)
	impl := p.NewClass("Impl", nil, i)
	irun := impl.NewMethod("run", false, nil, nil)
	irun.AddReturn(nil)
	mainCls := p.NewClass("Main", nil)
	m := mainCls.NewMethod("main", true, nil, nil)
	v := m.NewVar("v", i)
	m.AddAlloc(v, impl)
	inv := m.AddVirtualCall(nil, v, "run")
	m.AddReturn(nil)
	p.SetEntry(m)
	r := solveCI(t, p)
	tgts := r.CallTargets(inv)
	if len(tgts) != 1 || tgts[0] != irun {
		t.Fatalf("targets=%v want [Impl.run]", tgts)
	}
}

// TestUnrelatedReceiverSkipped: if an imprecise abstraction makes an
// object of an unrelated type flow into a receiver, dispatch silently
// skips it rather than crashing.
func TestUnrelatedReceiverSkipped(t *testing.T) {
	p := lang.NewProgram()
	obj := p.Object()
	a := p.NewClass("A", nil)
	afoo := a.NewMethod("foo", false, nil, nil)
	afoo.AddReturn(nil)
	u := p.NewClass("Unrelated", nil)
	mainCls := p.NewClass("Main", nil)
	m := mainCls.NewMethod("main", true, nil, nil)
	raw := m.NewVar("raw", obj)
	recv := m.NewVar("recv", a)
	m.AddAlloc(raw, a)
	m.AddAlloc(raw, u)
	m.AddCast(recv, a, raw)
	inv := m.AddVirtualCall(nil, recv, "foo")
	m.AddReturn(nil)
	p.SetEntry(m)
	r := solveCI(t, p)
	// The cast filter keeps Unrelated out, and dispatch finds only A.foo.
	tgts := r.CallTargets(inv)
	if len(tgts) != 1 || tgts[0] != afoo {
		t.Fatalf("targets=%v want [A.foo]", tgts)
	}
}

// TestReceiverWithoutImplementation: dispatch failure on a class with
// no implementation must be ignored, not panic.
func TestReceiverWithoutImplementation(t *testing.T) {
	p := lang.NewProgram()
	obj := p.Object()
	i := p.NewInterface("I")
	i.NewAbstractMethod("run", nil, nil)
	impl := p.NewClass("Impl", nil, i)
	irun := impl.NewMethod("run", false, nil, nil)
	irun.AddReturn(nil)
	// Bare implements I but never defines run (would be abstract in
	// Java; the IR permits it and the analysis must tolerate it).
	bare := p.NewClass("Bare", nil, i)
	mainCls := p.NewClass("Main", nil)
	m := mainCls.NewMethod("main", true, nil, nil)
	v := m.NewVar("v", i)
	vo := m.NewVar("vo", obj)
	m.AddAlloc(v, impl)
	m.AddAlloc(vo, bare)
	m.AddCopy(v, vo) // widening to interface? vo is Object: use cast
	inv := m.AddVirtualCall(nil, v, "run")
	m.AddReturn(nil)
	p.SetEntry(m)
	// Validation rejects Object→I copy? assignable allows either
	// direction, so it passes; the analysis must not crash on Bare.
	if err := p.Validate(); err != nil {
		t.Skipf("validator rejected the setup: %v", err)
	}
	r := solveCI(t, p)
	tgts := r.CallTargets(inv)
	if len(tgts) != 1 || tgts[0] != irun {
		t.Fatalf("targets=%v want [Impl.run] only", tgts)
	}
}
