package pta

import (
	"testing"

	"mahjong/internal/lang"
)

// figure1 builds the paper's Figure 1 program programmatically:
//
//	x = new A; y = new A; z = new A
//	x.f = new B; y.f = new C; z.f = new C
//	a = z.f; a.foo(); c = (C) a
type fig1 struct {
	prog          *lang.Program
	a, b, c       *lang.Class
	afoo          *lang.Method
	bfoo, cfoo    *lang.Method
	varA          *lang.Var
	varC          *lang.Var
	call          *lang.Invoke
	cast          *lang.Cast
	sites         []*lang.AllocSite // o1..o6 in paper order
	x, y, z       *lang.Var
	main          *lang.Method
	fieldF        *lang.Field
	varT          *lang.Var
	classesByName map[string]*lang.Class
}

func buildFigure1(t testing.TB) *fig1 {
	t.Helper()
	p := lang.NewProgram()
	a := p.NewClass("A", nil)
	f := a.NewField("f", a)
	afoo := a.NewMethod("foo", false, nil, nil)
	afoo.AddReturn(nil)
	b := p.NewClass("B", a)
	bfoo := b.NewMethod("foo", false, nil, nil)
	bfoo.AddReturn(nil)
	c := p.NewClass("C", a)
	cfoo := c.NewMethod("foo", false, nil, nil)
	cfoo.AddReturn(nil)

	mainCls := p.NewClass("Main", nil)
	m := mainCls.NewMethod("main", true, nil, nil)
	x := m.NewVar("x", a)
	y := m.NewVar("y", a)
	z := m.NewVar("z", a)
	va := m.NewVar("a", a)
	vc := m.NewVar("c", c)
	t4 := m.NewVar("t4", a)
	t5 := m.NewVar("t5", a)
	t6 := m.NewVar("t6", a)

	var sites []*lang.AllocSite
	sites = append(sites, m.AddAlloc(x, a)) // o1
	sites = append(sites, m.AddAlloc(y, a)) // o2
	sites = append(sites, m.AddAlloc(z, a)) // o3
	sites = append(sites, m.AddAlloc(t4, b))
	m.AddStore(x, f, t4) // x.f = o4(B)
	s5 := m.AddAlloc(t5, c)
	m.AddStore(y, f, t5) // y.f = o5(C)
	s6 := m.AddAlloc(t6, c)
	m.AddStore(z, f, t6) // z.f = o6(C)
	sites = append(sites, s5, s6)
	m.AddLoad(va, z, f) // a = z.f
	call := m.AddVirtualCall(nil, va, "foo")
	m.AddCast(vc, c, va) // c = (C) a
	var cast *lang.Cast
	for _, st := range m.Stmts {
		if cs, ok := st.(*lang.Cast); ok {
			cast = cs
		}
	}
	m.AddReturn(nil)
	p.SetEntry(m)
	if err := p.Validate(); err != nil {
		t.Fatalf("figure1 invalid: %v", err)
	}
	return &fig1{
		prog: p, a: a, b: b, c: c, afoo: afoo, bfoo: bfoo, cfoo: cfoo,
		varA: va, varC: vc, call: call, cast: cast, sites: sites,
		x: x, y: y, z: z, main: m, fieldF: f, varT: t4,
	}
}

func solveCI(t testing.TB, prog *lang.Program) *Result {
	t.Helper()
	r, err := Solve(prog, Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if r.Aborted {
		t.Fatal("unexpected abort")
	}
	return r
}

func objTypes(objs []*Obj) map[string]bool {
	out := map[string]bool{}
	for _, o := range objs {
		out[o.Type.Name] = true
	}
	return out
}

func TestFigure1AllocSiteCI(t *testing.T) {
	f := buildFigure1(t)
	r := solveCI(t, f.prog)

	// x, y, z point to distinct singleton objects o1, o2, o3.
	for _, v := range []*lang.Var{f.x, f.y, f.z} {
		objs := r.VarObjs(v)
		if len(objs) != 1 || objs[0].Type != f.a {
			t.Fatalf("%s points to %v, want one A object", v.Name, objs)
		}
	}
	// a = z.f points only to o6 of type C (alloc-site abstraction).
	aObjs := r.VarObjs(f.varA)
	if len(aObjs) != 1 || aObjs[0].Type != f.c || aObjs[0].Rep != f.sites[5] {
		t.Fatalf("a points to %v, want exactly o6(C)", aObjs)
	}
	// a.foo() is a mono-call to C.foo.
	tgts := r.CallTargets(f.call)
	if len(tgts) != 1 || tgts[0] != f.cfoo {
		t.Fatalf("call targets=%v want [C.foo]", tgts)
	}
	// The cast (C) a is safe.
	casts := r.ReachableCasts()
	if len(casts) != 1 {
		t.Fatalf("reachable casts=%d want 1", len(casts))
	}
	for _, o := range casts[0].Incoming {
		if !o.Type.SubtypeOf(f.c) {
			t.Fatalf("cast sees non-C object %v", o)
		}
	}
}

func TestFigure1AllocTypeImprecise(t *testing.T) {
	f := buildFigure1(t)
	r, err := Solve(f.prog, Options{Heap: NewAllocTypeModel()})
	if err != nil {
		t.Fatal(err)
	}
	// Under the allocation-type abstraction o1, o2, o3 are merged, so
	// x.f, y.f, z.f alias and `a` also sees the B object (§2.1).
	types := objTypes(r.VarObjs(f.varA))
	if !types["B"] || !types["C"] {
		t.Fatalf("a sees %v, want both B and C under alloc-type", types)
	}
	if got := len(r.CallTargets(f.call)); got != 2 {
		t.Fatalf("call targets=%d want 2 (poly-call)", got)
	}
	// The cast now may fail: a B object flows in.
	casts := r.ReachableCasts()
	mayFail := false
	for _, o := range casts[0].Incoming {
		if !o.Type.SubtypeOf(f.c) {
			mayFail = true
		}
	}
	if !mayFail {
		t.Fatal("cast should be may-fail under alloc-type")
	}
}

func TestFigure1MahjongStyleMerge(t *testing.T) {
	f := buildFigure1(t)
	// Manually merge o2 and o3 (the type-consistent pair per Example 2.3).
	mom := map[*lang.AllocSite]*lang.AllocSite{
		f.sites[1]: f.sites[1],
		f.sites[2]: f.sites[1],
	}
	r, err := Solve(f.prog, Options{Heap: NewMergedSiteModel(mom)})
	if err != nil {
		t.Fatal(err)
	}
	// a now sees o5 and o6 (both C) but not the B object: precision for
	// type-dependent clients is preserved.
	types := objTypes(r.VarObjs(f.varA))
	if types["B"] {
		t.Fatalf("a sees B after Mahjong merge: %v", types)
	}
	if !types["C"] {
		t.Fatalf("a lost C: %v", types)
	}
	if got := len(r.CallTargets(f.call)); got != 1 {
		t.Fatalf("call targets=%d want 1 after merge", got)
	}
	// Object count shrank by one.
	if n, m := countObjs(t, f), len(r.Objs()); m != n-1 {
		t.Fatalf("objs=%d want %d", m, n-1)
	}
}

func countObjs(t *testing.T, f *fig1) int {
	r := solveCI(t, f.prog)
	return len(r.Objs())
}

// linkedChain builds a program where context sensitivity matters:
// an identity wrapper `Id.wrap(v)` called from two sites with different
// objects. CI conflates the returns; 1-CFA and 2obj keep them apart.
func buildWrapper(t testing.TB) (*lang.Program, *lang.Var, *lang.Var, *lang.Class, *lang.Class) {
	t.Helper()
	p := lang.NewProgram()
	a := p.NewClass("A", nil)
	b := p.NewClass("B", nil)
	idCls := p.NewClass("Id", nil)
	obj := p.Object()
	wrap := idCls.NewMethod("wrap", true, []*lang.Class{obj}, obj)
	wrap.AddReturn(wrap.Params[0])

	mainCls := p.NewClass("Main", nil)
	m := mainCls.NewMethod("main", true, nil, nil)
	va := m.NewVar("va", obj)
	vb := m.NewVar("vb", obj)
	ra := m.NewVar("ra", obj)
	rb := m.NewVar("rb", obj)
	m.AddAlloc(va, a)
	m.AddAlloc(vb, b)
	m.AddStaticCall(ra, wrap, va)
	m.AddStaticCall(rb, wrap, vb)
	m.AddReturn(nil)
	p.SetEntry(m)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p, ra, rb, a, b
}

func TestContextSensitivityWrapper(t *testing.T) {
	prog, ra, rb, a, b := buildWrapper(t)

	ci := solveCI(t, prog)
	// CI merges both calls: ra and rb each see both objects.
	if got := len(ci.VarObjs(ra)); got != 2 {
		t.Fatalf("ci: ra sees %d objs, want 2", got)
	}

	for _, sel := range []Selector{KCFA{K: 1}, KCFA{K: 2}} {
		r, err := Solve(prog, Options{Selector: sel})
		if err != nil {
			t.Fatal(err)
		}
		raObjs, rbObjs := r.VarObjs(ra), r.VarObjs(rb)
		if len(raObjs) != 1 || raObjs[0].Type != a {
			t.Fatalf("%s: ra sees %v, want [A]", sel.Name(), raObjs)
		}
		if len(rbObjs) != 1 || rbObjs[0].Type != b {
			t.Fatalf("%s: rb sees %v, want [B]", sel.Name(), rbObjs)
		}
	}
}

// buildContainer builds the classic object-sensitivity example: two Box
// instances whose set/get go through an internal this-call chain of
// depth 2, so 1-CFA merges the stores while k-object-sensitivity keeps
// the receivers apart.
func buildContainer(t testing.TB) (*lang.Program, *lang.Var, *lang.Var, *lang.Class, *lang.Class) {
	t.Helper()
	p := lang.NewProgram()
	obj := p.Object()
	a := p.NewClass("A", nil)
	b := p.NewClass("B", nil)
	box := p.NewClass("Box", nil)
	val := box.NewField("val", obj)
	setImpl := box.NewMethod("setImpl", false, []*lang.Class{obj}, nil)
	setImpl.AddStore(setImpl.This, val, setImpl.Params[0])
	setImpl.AddReturn(nil)
	set := box.NewMethod("set", false, []*lang.Class{obj}, nil)
	set.AddVirtualCall(nil, set.This, "setImpl", set.Params[0])
	set.AddReturn(nil)
	getImpl := box.NewMethod("getImpl", false, nil, obj)
	tmp := getImpl.NewVar("tmp", obj)
	getImpl.AddLoad(tmp, getImpl.This, val)
	getImpl.AddReturn(tmp)
	get := box.NewMethod("get", false, nil, obj)
	g := get.NewVar("g", obj)
	get.AddVirtualCall(g, get.This, "getImpl")
	get.AddReturn(g)

	mainCls := p.NewClass("Main", nil)
	m := mainCls.NewMethod("main", true, nil, nil)
	b1 := m.NewVar("b1", box)
	b2 := m.NewVar("b2", box)
	va := m.NewVar("va", obj)
	vb := m.NewVar("vb", obj)
	ga := m.NewVar("ga", obj)
	gb := m.NewVar("gb", obj)
	m.AddAlloc(b1, box)
	m.AddAlloc(b2, box)
	m.AddAlloc(va, a)
	m.AddAlloc(vb, b)
	m.AddVirtualCall(nil, b1, "set", va)
	m.AddVirtualCall(nil, b2, "set", vb)
	m.AddVirtualCall(ga, b1, "get")
	m.AddVirtualCall(gb, b2, "get")
	m.AddReturn(nil)
	p.SetEntry(m)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p, ga, gb, a, b
}

func TestObjectSensitivityBeatsCallSite(t *testing.T) {
	prog, ga, gb, a, b := buildContainer(t)

	// 1-CFA: the internal this-call chain merges the two boxes' contents
	// (setImpl/getImpl each have a single call site).
	r1, err := Solve(prog, Options{Selector: KCFA{K: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(r1.VarObjs(ga)); got != 2 {
		t.Fatalf("1cs: ga sees %d objs, want 2 (imprecise)", got)
	}

	// 2obj separates the two Box receivers.
	for _, sel := range []Selector{KObj{K: 2}, KObj{K: 3}} {
		r2, err := Solve(prog, Options{Selector: sel})
		if err != nil {
			t.Fatal(err)
		}
		gaObjs, gbObjs := r2.VarObjs(ga), r2.VarObjs(gb)
		if len(gaObjs) != 1 || gaObjs[0].Type != a {
			t.Fatalf("%s: ga sees %v, want [A]", sel.Name(), gaObjs)
		}
		if len(gbObjs) != 1 || gbObjs[0].Type != b {
			t.Fatalf("%s: gb sees %v, want [B]", sel.Name(), gbObjs)
		}
	}

	// 2type on this program also works: the two boxes are allocated in
	// the same class, so type-sensitivity merges them again.
	rt, err := Solve(prog, Options{Selector: KType{K: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rt.VarObjs(ga)); got != 2 {
		t.Fatalf("2type: ga sees %d objs, want 2 (coarser than 2obj)", got)
	}
}

func TestVirtualDispatchHierarchy(t *testing.T) {
	f := buildFigure1(t)
	r := solveCI(t, f.prog)
	// Dispatch must pick C.foo for a C receiver even though the declared
	// callee is A.foo.
	tgts := r.CallTargets(f.call)
	if len(tgts) != 1 || tgts[0].Owner != f.c {
		t.Fatalf("dispatch=%v", tgts)
	}
	if !r.ReachableMethod(f.cfoo) || r.ReachableMethod(f.bfoo) {
		t.Fatal("reachability wrong: want C.foo reachable, B.foo not")
	}
}

func TestStaticFieldsFlow(t *testing.T) {
	p := lang.NewProgram()
	a := p.NewClass("A", nil)
	holder := p.NewClass("Holder", nil)
	sf := holder.NewStaticField("S", a)
	mainCls := p.NewClass("Main", nil)
	m := mainCls.NewMethod("main", true, nil, nil)
	x := m.NewVar("x", a)
	y := m.NewVar("y", a)
	m.AddAlloc(x, a)
	m.AddStaticStore(sf, x)
	m.AddStaticLoad(y, sf)
	m.AddReturn(nil)
	p.SetEntry(m)
	r := solveCI(t, p)
	if got := len(r.VarObjs(y)); got != 1 {
		t.Fatalf("y sees %d objs", got)
	}
}

func TestArrayFlow(t *testing.T) {
	p := lang.NewProgram()
	a := p.NewClass("A", nil)
	arr := p.ArrayOf(a)
	elem := arr.Field(lang.ElemField)
	mainCls := p.NewClass("Main", nil)
	m := mainCls.NewMethod("main", true, nil, nil)
	va := m.NewVar("va", arr)
	x := m.NewVar("x", a)
	y := m.NewVar("y", a)
	m.AddAlloc(va, arr)
	m.AddAlloc(x, a)
	m.AddStore(va, elem, x)
	m.AddLoad(y, va, elem)
	m.AddReturn(nil)
	p.SetEntry(m)
	r := solveCI(t, p)
	objs := r.VarObjs(y)
	if len(objs) != 1 || objs[0].Type != a {
		t.Fatalf("y sees %v", objs)
	}
}

func TestCastFiltering(t *testing.T) {
	// x holds an A and a B; y = (B) x must only hold the B.
	p := lang.NewProgram()
	a := p.NewClass("A", nil)
	b := p.NewClass("B", a)
	mainCls := p.NewClass("Main", nil)
	m := mainCls.NewMethod("main", true, nil, nil)
	x := m.NewVar("x", a)
	y := m.NewVar("y", b)
	m.AddAlloc(x, a)
	m.AddAlloc(x, b)
	m.AddCast(y, b, x)
	m.AddReturn(nil)
	p.SetEntry(m)
	r := solveCI(t, p)
	objs := r.VarObjs(y)
	if len(objs) != 1 || objs[0].Type != b {
		t.Fatalf("cast filter failed: y sees %v", objs)
	}
	// The may-fail client still sees both incoming objects.
	casts := r.ReachableCasts()
	if len(casts) != 1 || len(casts[0].Incoming) != 2 {
		t.Fatalf("incoming=%v", casts)
	}
}

func TestBudgetAbort(t *testing.T) {
	f := buildFigure1(t)
	r, err := Solve(f.prog, Options{Budget: Budget{Work: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Aborted {
		t.Fatal("expected budget abort")
	}
	// Determinism: same budget, same work counter.
	r2, _ := Solve(f.prog, Options{Budget: Budget{Work: 3}})
	if r.Work != r2.Work {
		t.Fatalf("budget abort nondeterministic: %d vs %d", r.Work, r2.Work)
	}
}

func TestNoEntryError(t *testing.T) {
	p := lang.NewProgram()
	if _, err := Solve(p, Options{}); err == nil {
		t.Fatal("want error for missing entry")
	}
}

func TestSpecialCallBindsReceiver(t *testing.T) {
	p := lang.NewProgram()
	a := p.NewClass("A", nil)
	fld := a.NewField("f", a)
	init := a.NewMethod("init", false, []*lang.Class{a}, nil)
	init.AddStore(init.This, fld, init.Params[0])
	init.AddReturn(nil)
	// B overrides init, but a special call must NOT dispatch to it.
	b := p.NewClass("B", a)
	binit := b.NewMethod("init", false, []*lang.Class{a}, nil)
	binit.AddReturn(nil)

	mainCls := p.NewClass("Main", nil)
	m := mainCls.NewMethod("main", true, nil, nil)
	x := m.NewVar("x", a)
	v := m.NewVar("v", a)
	out := m.NewVar("out", a)
	m.AddAlloc(x, b)
	m.AddAlloc(v, a)
	m.AddSpecialCall(nil, x, init, v)
	m.AddLoad(out, x, fld)
	m.AddReturn(nil)
	p.SetEntry(m)
	r := solveCI(t, p)
	if got := len(r.VarObjs(out)); got != 1 {
		t.Fatalf("special call broken: out sees %d objs", got)
	}
	if r.ReachableMethod(binit) {
		t.Fatal("special call dispatched virtually to B.init")
	}
}

func TestRecursionTerminates(t *testing.T) {
	p := lang.NewProgram()
	a := p.NewClass("A", nil)
	node := p.NewClass("Node", nil)
	next := node.NewField("next", node)
	mainCls := p.NewClass("Main", nil)
	rec := mainCls.NewMethod("build", true, []*lang.Class{node}, node)
	n2 := rec.NewVar("n2", node)
	rec.AddAlloc(n2, node)
	rec.AddStore(n2, next, rec.Params[0])
	out := rec.NewVar("out", node)
	rec.AddStaticCall(out, rec, n2) // recursion; base case below
	rec.AddReturn(out)
	rec.AddReturn(n2) // flow-insensitive base case

	m := mainCls.NewMethod("main", true, nil, nil)
	n0 := m.NewVar("n0", node)
	res := m.NewVar("res", node)
	m.AddAlloc(n0, node)
	m.AddStaticCall(res, rec, n0)
	m.AddReturn(nil)
	p.SetEntry(m)
	_ = a
	for _, sel := range []Selector{CI{}, KCFA{K: 2}, KObj{K: 2}, KType{K: 3}} {
		r, err := Solve(p, Options{Selector: sel, Budget: Budget{Work: 1 << 20}})
		if err != nil {
			t.Fatal(err)
		}
		if r.Aborted {
			t.Fatalf("%s: recursion did not terminate within budget", sel.Name())
		}
		if len(r.VarObjs(res)) == 0 {
			t.Fatalf("%s: res empty", sel.Name())
		}
	}
}

func TestMergedSiteModelCrossTypePanics(t *testing.T) {
	f := buildFigure1(t)
	mom := map[*lang.AllocSite]*lang.AllocSite{
		f.sites[3]: f.sites[4], // B site merged into C site: invalid
		f.sites[4]: f.sites[4],
	}
	defer func() {
		if recover() == nil {
			t.Fatal("cross-type MOM did not panic")
		}
	}()
	model := NewMergedSiteModel(mom)
	model.Obj(f.sites[4])
	model.Obj(f.sites[3])
}
