package pta

import (
	"mahjong/internal/lang"
)

// Class-contiguous object renumbering.
//
// CSObj IDs are the bit positions of every points-to set, so their
// layout decides both bitset density and how much a class filter
// (cast/catch edge) costs. The default layout is interning order —
// whatever order the solve happens to discover objects in — which
// scatters same-class objects across the ID space and forces every
// filtered propagation through a class-indexed mask set.
//
// The renumbering pass (PAPERS.md: "Improving bit-vector representation
// of points-to sets using class hierarchy", arXiv:1108.2683) instead
// reserves one contiguous ID block per class, with blocks laid out in
// hierarchy pre-order over the superclass tree. Two invariants follow:
//
//  1. Same-class objects are adjacent, so points-to sets of
//     monomorphic-ish variables occupy few machine words.
//  2. The subtype set of any non-interface, non-array filter class is
//     exactly one ID interval [lo, hi) — its pre-order subtree — so a
//     filtered propagation becomes bitset.IntersectRangeInto over that
//     interval: two partial-word masks, no mask set, no per-object
//     subtype tests. (Interface and array filters keep the classic
//     masks: their implementors are not contiguous under single
//     inheritance.)
//
// Blocks are *reserved*, not eagerly populated: csObj interns lazily
// into the class's next free slot, so the observable object population
// (NumCSObjs, which objects exist) is unchanged — only the IDs differ.
// The ID space admits holes (s.csobjs carries nil for never-interned
// slots), which is safe because points-to bits only ever reference
// interned IDs. Objects with a non-empty heap context — only produced
// by context-sensitive selectors — get dynamic IDs past the reserved
// region ("tail" IDs); any tail object disables the range fast path for
// the rest of the run (masks stay correct regardless), so the common
// context-insensitive configuration keeps pure range filtering.
type renumbering struct {
	// reserved is the total number of reserved ID slots (the tail
	// region starts here).
	reserved int
	// blocks is each class's reserved slot range with its allocation
	// cursor; nil entry (class absent) sends the object to the tail.
	blocks map[*lang.Class]*classBlock
	// spans maps span-eligible filter classes (non-interface, non-array)
	// to the [lo, hi) ID interval that contains exactly their subtypes'
	// reserved blocks.
	spans map[*lang.Class]classSpan
}

type classBlock struct {
	next, hi int // next free slot; block is exhausted when next == hi
}

type classSpan struct {
	lo, hi int
}

// buildRenumbering lays out the reserved blocks for prog under the
// given heap model. Per-class capacities are the number of distinct
// abstract objects the model can produce for that class — exact for
// the three built-in models, a safe upper bound (sites per class) for
// anything else. A model that somehow overflows its block degrades to
// tail IDs, never to an error.
func buildRenumbering(prog *lang.Program, heap HeapModel) *renumbering {
	caps := classCapacities(prog, heap)

	// Children lists over the superclass tree, in class creation order
	// (deterministic). Interfaces and arrays have Super == Object, so
	// they sit inside Object's subtree and Object's span covers every
	// allocatable class — which matches SubtypeOf: everything (arrays
	// included) is a subtype of Object.
	children := make(map[*lang.Class][]*lang.Class, len(prog.Classes))
	var roots []*lang.Class
	for _, c := range prog.Classes {
		if c.Super == nil {
			roots = append(roots, c)
		} else {
			children[c.Super] = append(children[c.Super], c)
		}
	}

	r := &renumbering{
		blocks: make(map[*lang.Class]*classBlock, len(prog.Classes)),
		spans:  make(map[*lang.Class]classSpan, len(prog.Classes)),
	}
	cursor := 0
	// Iterative pre-order DFS; the post frame closes a class's subtree
	// span once all descendants have been laid out.
	type frame struct {
		c    *lang.Class
		post bool
	}
	var stack []frame
	for i := len(roots) - 1; i >= 0; i-- {
		stack = append(stack, frame{c: roots[i]})
	}
	lo := make(map[*lang.Class]int, len(prog.Classes))
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if f.post {
			if !f.c.IsInterface && !f.c.IsArray() {
				r.spans[f.c] = classSpan{lo: lo[f.c], hi: cursor}
			}
			continue
		}
		lo[f.c] = cursor
		if n := caps[f.c]; n > 0 {
			r.blocks[f.c] = &classBlock{next: cursor, hi: cursor + n}
			cursor += n
		}
		stack = append(stack, frame{c: f.c, post: true})
		kids := children[f.c]
		for i := len(kids) - 1; i >= 0; i-- {
			stack = append(stack, frame{c: kids[i]})
		}
	}
	r.reserved = cursor
	return r
}

// classCapacities returns, per class, how many distinct abstract
// objects the heap model can produce for it.
func classCapacities(prog *lang.Program, heap HeapModel) map[*lang.Class]int {
	caps := make(map[*lang.Class]int)
	switch m := heap.(type) {
	case *AllocTypeModel:
		_ = m // one object per allocated type
		for _, site := range prog.Sites {
			if caps[site.Type] == 0 {
				caps[site.Type] = 1
			}
		}
	case *MergedSiteModel:
		// One object per MOM equivalence class; the MOM never merges
		// across types (Obj panics otherwise), so counting distinct
		// representatives per type is exact.
		reps := make(map[*lang.AllocSite]bool, len(prog.Sites))
		for _, site := range prog.Sites {
			rep, ok := m.mom[site]
			if !ok {
				rep = site
			}
			if !reps[rep] {
				reps[rep] = true
				caps[site.Type]++
			}
		}
	default:
		// AllocSiteModel, and the safe upper bound for foreign models:
		// at most one object per allocation site of the class.
		for _, site := range prog.Sites {
			caps[site.Type]++
		}
	}
	return caps
}

// span returns the reserved-ID interval holding exactly filter's
// subtypes, when filter is span-eligible.
func (r *renumbering) span(filter *lang.Class) (classSpan, bool) {
	sp, ok := r.spans[filter]
	return sp, ok
}
