package pta

import (
	"sort"

	"mahjong/internal/bitset"
	"mahjong/internal/lang"
)

// CSObjs returns all context-sensitive objects, indexed by their IDs
// (the bit positions of points-to sets). Under Options.Renumber the
// slice may contain nil holes — reserved class-block slots no object
// was ever interned into; points-to bits only ever reference non-nil
// entries, so consumers that dereference at set bits are unaffected,
// but a full scan must skip nils.
func (r *Result) CSObjs() []*CSObj { return r.solver.csobjs }

// Objs returns the abstract objects the heap model created during the run.
func (r *Result) Objs() []*Obj { return r.solver.opts.Heap.Objs() }

// NumCSObjs returns the number of context-sensitive objects interned
// during the run (the non-nil CSObjs entries — not the slice length,
// which under Options.Renumber includes reserved holes).
func (r *Result) NumCSObjs() int { return r.solver.numCSObjs }

// NumNodes returns the number of pointer nodes in the flow graph.
func (r *Result) NumNodes() int { return len(r.solver.nodes) }

// NumReachableMethods returns context-insensitively distinct reachable methods.
func (r *Result) NumReachableMethods() int { return len(r.solver.ciMethods) }

// NumCSMethods returns (context, method) pairs analyzed.
func (r *Result) NumCSMethods() int { return len(r.solver.reachList) }

// ReachableMethod reports whether m is reachable under any context.
func (r *Result) ReachableMethod(m *lang.Method) bool { return r.solver.ciMethods[m] }

// VarPointsTo returns the context-insensitive projection of v's
// points-to set: the union over all analyzed contexts, as a set of
// CSObj IDs.
func (r *Result) VarPointsTo(v *lang.Var) *bitset.Set {
	out := bitset.New(0)
	for _, id := range r.solver.varIndex[v] {
		out.Union(r.solver.ptsAt(id))
	}
	return out
}

// VarObjs returns the abstract objects v may point to, deduplicated and
// ordered by object ID.
func (r *Result) VarObjs(v *lang.Var) []*Obj {
	seen := map[*Obj]bool{}
	var out []*Obj
	r.VarPointsTo(v).ForEach(func(i int) bool {
		o := r.solver.csobjs[i].Obj
		if !seen[o] {
			seen[o] = true
			out = append(out, o)
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ForEachVarObj calls fn for every (variable, abstract object) pair of
// the result: v may point to o under some analyzed context. Unlike
// VarPointsTo/VarObjs it materializes no per-variable sets, so whole-
// program clients (escape, nullness, taint) can sweep all variables
// cheaply. Pairs arrive in no particular order and a pair may repeat
// when a variable points to the same object under several contexts; fn
// must be idempotent.
func (r *Result) ForEachVarObj(fn func(v *lang.Var, o *Obj)) {
	for v, ids := range r.solver.varIndex {
		for _, id := range ids {
			r.solver.ptsAt(id).ForEach(func(i int) bool {
				fn(v, r.solver.csobjs[i].Obj)
				return true
			})
		}
	}
}

// VarTypes returns the set of types v may point to, sorted by name.
func (r *Result) VarTypes(v *lang.Var) []*lang.Class {
	seen := map[*lang.Class]bool{}
	var out []*lang.Class
	for _, o := range r.VarObjs(v) {
		if !seen[o.Type] {
			seen[o.Type] = true
			out = append(out, o.Type)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// FieldPointsTo returns the context-insensitive points-to relation for
// object fields: for each (abstract object, field) pair that has a
// points-to set, fn is called with the union over heap contexts as
// abstract objects. It drives the FPG builder.
func (r *Result) FieldPointsTo(fn func(base *Obj, field *lang.Field, targets []*Obj)) {
	type objField struct {
		obj   *Obj
		field *lang.Field
	}
	merged := make(map[objField]map[*Obj]bool)
	for k, nodeID := range r.solver.fieldNodes {
		base := r.solver.csobjs[k.obj].Obj
		key := objField{base, k.field}
		tgts := merged[key]
		if tgts == nil {
			tgts = make(map[*Obj]bool)
			merged[key] = tgts
		}
		r.solver.ptsAt(nodeID).ForEach(func(i int) bool {
			tgts[r.solver.csobjs[i].Obj] = true
			return true
		})
	}
	keys := make([]objField, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].obj.ID != keys[j].obj.ID {
			return keys[i].obj.ID < keys[j].obj.ID
		}
		return keys[i].field.ID < keys[j].field.ID
	})
	for _, k := range keys {
		set := merged[k]
		out := make([]*Obj, 0, len(set))
		for o := range set {
			out = append(out, o)
		}
		sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
		fn(k.obj, k.field, out)
	}
}

// CallEdge is one context-insensitive call-graph edge.
type CallEdge struct {
	Site   *lang.Invoke
	Callee *lang.Method
}

// CallGraphEdges returns the context-insensitive call graph as a sorted
// edge list (by call-site ID, then callee ID).
func (r *Result) CallGraphEdges() []CallEdge {
	var out []CallEdge
	for inv, tgts := range r.solver.ciEdges {
		for m := range tgts {
			out = append(out, CallEdge{Site: inv, Callee: m})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Site.ID != out[j].Site.ID {
			return out[i].Site.ID < out[j].Site.ID
		}
		return out[i].Callee.ID < out[j].Callee.ID
	})
	return out
}

// NumCallGraphEdges counts context-insensitive call-graph edges.
func (r *Result) NumCallGraphEdges() int {
	n := 0
	for _, tgts := range r.solver.ciEdges {
		n += len(tgts)
	}
	return n
}

// CallTargets returns the distinct dispatch targets discovered for a
// call site, sorted by method ID.
func (r *Result) CallTargets(inv *lang.Invoke) []*lang.Method {
	tgts := r.solver.ciEdges[inv]
	out := make([]*lang.Method, 0, len(tgts))
	for m := range tgts {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ReachableCast is one reachable cast statement together with the types
// that may flow into it (the unfiltered points-to set of its operand,
// unioned over contexts).
type ReachableCast struct {
	Stmt     *lang.Cast
	Incoming []*Obj
}

// ReachableCasts returns every cast statement reached by the analysis
// (deduplicated over contexts), with incoming abstract objects, sorted
// by the order casts were first discovered.
func (r *Result) ReachableCasts() []ReachableCast {
	byStmt := make(map[*lang.Cast]map[*Obj]bool)
	var order []*lang.Cast
	for _, cs := range r.solver.casts {
		set := byStmt[cs.stmt]
		if set == nil {
			set = make(map[*Obj]bool)
			byStmt[cs.stmt] = set
			order = append(order, cs.stmt)
		}
		r.solver.ptsAt(cs.rhsNode).ForEach(func(i int) bool {
			set[r.solver.csobjs[i].Obj] = true
			return true
		})
	}
	out := make([]ReachableCast, 0, len(order))
	for _, stmt := range order {
		objs := make([]*Obj, 0, len(byStmt[stmt]))
		for o := range byStmt[stmt] {
			objs = append(objs, o)
		}
		sort.Slice(objs, func(i, j int) bool { return objs[i].ID < objs[j].ID })
		out = append(out, ReachableCast{Stmt: stmt, Incoming: objs})
	}
	return out
}

// ReachableInvokes returns every virtual call site reached by the
// analysis, sorted by site ID. Static and special calls are excluded:
// they are never poly-calls.
func (r *Result) ReachableInvokes() []*lang.Invoke {
	var out []*lang.Invoke
	for inv := range r.solver.ciEdges {
		if inv.Kind == lang.VirtualCall {
			out = append(out, inv)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
