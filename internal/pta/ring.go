package pta

// intRing is the solver's worklist: an index-based FIFO ring over node
// ids. The previous implementation resliced a []int (`wl = wl[1:]`),
// which both pinned the consumed prefix for the life of the run and
// re-allocated on every append-past-capacity; the ring reuses one
// power-of-two backing array and is allocation-free in steady state.
// Pop order is identical to the old FIFO, keeping runs deterministic.
type intRing struct {
	buf  []int32
	head int // index of the oldest element
	n    int // number of queued elements
	peak int // high-water mark, reported via Stats
}

func (r *intRing) len() int { return r.n }

// push appends id at the tail, doubling the backing array when full.
func (r *intRing) push(id int) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = int32(id)
	r.n++
	if r.n > r.peak {
		r.peak = r.n
	}
}

// pop removes and returns the oldest element; ok is false when empty.
func (r *intRing) pop() (id int, ok bool) {
	if r.n == 0 {
		return 0, false
	}
	id = int(r.buf[r.head])
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return id, true
}

// grow doubles capacity (min 64, always a power of two) and linearizes
// the queued elements so head/tail arithmetic stays a mask.
func (r *intRing) grow() {
	newCap := len(r.buf) * 2
	if newCap < 64 {
		newCap = 64
	}
	buf := make([]int32, newCap)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = buf
	r.head = 0
}
