package pta

import "testing"

func TestRingFIFOOrder(t *testing.T) {
	var r intRing
	for i := 0; i < 100; i++ {
		r.push(i)
	}
	for i := 0; i < 100; i++ {
		id, ok := r.pop()
		if !ok || id != i {
			t.Fatalf("pop %d = (%d, %v)", i, id, ok)
		}
	}
	if _, ok := r.pop(); ok {
		t.Fatal("pop on empty ring reported ok")
	}
}

func TestRingWraparound(t *testing.T) {
	var r intRing
	// Interleave pushes and pops so head walks around the buffer many
	// times; order must stay FIFO across every wrap.
	next, expect := 0, 0
	for round := 0; round < 1000; round++ {
		for i := 0; i < 7; i++ {
			r.push(next)
			next++
		}
		for i := 0; i < 5; i++ {
			id, ok := r.pop()
			if !ok || id != expect {
				t.Fatalf("round %d: pop = (%d, %v), want %d", round, id, ok, expect)
			}
			expect++
		}
	}
	for {
		id, ok := r.pop()
		if !ok {
			break
		}
		if id != expect {
			t.Fatalf("drain: got %d want %d", id, expect)
		}
		expect++
	}
	if expect != next {
		t.Fatalf("drained %d items, pushed %d", expect, next)
	}
}

// TestRingReusesCapacity pins the fix for the old worklist's
// backing-array retention: `wl = wl[1:]` kept every consumed element
// reachable and re-allocated on append. The ring must reach a steady
// state where pushes reuse the same backing array, bounded by the
// high-water mark rather than the total number of operations.
func TestRingReusesCapacity(t *testing.T) {
	var r intRing
	for i := 0; i < 48; i++ { // high-water mark: 48 < 64
		r.push(i)
	}
	capAfterFill := len(r.buf)
	// A million steady-state operations must not grow the buffer.
	for i := 0; i < 1_000_000; i++ {
		if _, ok := r.pop(); !ok {
			t.Fatal("unexpected empty")
		}
		r.push(i)
	}
	if len(r.buf) != capAfterFill {
		t.Fatalf("steady state grew the ring: %d -> %d", capAfterFill, len(r.buf))
	}
	if r.peak != 48 {
		t.Fatalf("peak=%d, want 48", r.peak)
	}
}
