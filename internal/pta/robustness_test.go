package pta

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"mahjong/internal/budget"
	"mahjong/internal/faultinject"
	"mahjong/internal/lang"
)

// chainProgram builds a program with a single allocation copied down a
// chain of n variables: n filter-free copy edges, enough to trip the
// solver's SCC trigger (and, for n >= 1024, the Tarjan pass's interrupt
// poll, which fires every 1024 roots).
func chainProgram(t testing.TB, n int) *lang.Program {
	t.Helper()
	p := lang.NewProgram()
	a := p.NewClass("A", nil)
	mainCls := p.NewClass("Main", nil)
	m := mainCls.NewMethod("main", true, nil, nil)
	prev := m.NewVar("v0", a)
	m.AddAlloc(prev, a)
	for i := 1; i <= n; i++ {
		next := m.NewVar(fmt.Sprintf("v%d", i), a)
		m.AddCopy(next, prev)
		prev = next
	}
	m.AddReturn(nil)
	p.SetEntry(m)
	if err := p.Validate(); err != nil {
		t.Fatalf("chainProgram invalid: %v", err)
	}
	return p
}

// Meter exhaustion is a hard error wrapping budget.ErrExhausted — not
// the legacy Budget.Work abort, which returns a partial result.
func TestSolveContextMeterFactsExhaustion(t *testing.T) {
	meter := budget.NewMeter(budget.Limits{Facts: 10})
	res, err := SolveContext(context.Background(), bigProgram(t), Options{Meter: meter})
	if !errors.Is(err, budget.ErrExhausted) {
		t.Fatalf("want error wrapping budget.ErrExhausted, got %v", err)
	}
	if res != nil {
		t.Fatal("exhausted solve must not return a partial Result")
	}
}

func TestSolveContextMeterWordsExhaustion(t *testing.T) {
	meter := budget.NewMeter(budget.Limits{BitsetWords: 2})
	_, err := SolveContext(context.Background(), bigProgram(t), Options{Meter: meter})
	if !errors.Is(err, budget.ErrExhausted) {
		t.Fatalf("want error wrapping budget.ErrExhausted, got %v", err)
	}
}

// After an exhausted run, a fresh unbudgeted solve of the same program
// must behave exactly as if the failed run never happened: all solver
// state is per-run, nothing pooled leaks across.
func TestSolveCleanAfterMeterExhaustion(t *testing.T) {
	prog := bigProgram(t)
	want, err := Solve(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	meter := budget.NewMeter(budget.Limits{Facts: 25})
	if _, err := SolveContext(context.Background(), prog, Options{Meter: meter}); !errors.Is(err, budget.ErrExhausted) {
		t.Fatalf("want exhaustion, got %v", err)
	}
	got, err := SolveContext(context.Background(), prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Work != want.Work {
		t.Fatalf("solve after exhausted run diverged: work %d, want %d", got.Work, want.Work)
	}
}

// Cancellation arriving just as a condensation pass begins must unwind
// through the Tarjan walk via the sentinel panic: the chain is long
// enough (>1024 copy nodes) that tarjanCopySCCs itself polls the
// context mid-pass, so the abandoned DFS state is simply dropped. The
// solver must come back clean for the next run, and the failed run must
// leak no goroutines.
func TestSolveContextCancelDuringCollapse(t *testing.T) {
	prog := chainProgram(t, 4096)
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	t.Cleanup(faultinject.Clear)
	fired := false
	faultinject.Set(faultinject.OnStage(faultinject.StageCollapse, func(string) error {
		fired = true
		cancel() // the next interrupt poll — inside the Tarjan pass — observes this
		return nil
	}))
	_, err := SolveContext(ctx, prog, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want error wrapping context.Canceled, got %v", err)
	}
	if !fired {
		t.Fatal("the collapse seam never fired: the program did not trigger a condensation pass")
	}
	faultinject.Clear()

	// The same program must still solve to completion afterwards.
	if _, err := SolveContext(context.Background(), prog, Options{}); err != nil {
		t.Fatalf("solve after cancelled collapse failed: %v", err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutines leaked across cancelled solve: %d before, %d after", before, n)
	}
}

// A words budget small enough to survive initial propagation but not
// the growth that follows a condensation pass exhausts mid-solve with
// collapse machinery armed; the sentinel must unwind without corrupting
// anything a later solve depends on.
func TestSolveContextMeterExhaustionWithCollapseArmed(t *testing.T) {
	prog := chainProgram(t, 4096)
	meter := budget.NewMeter(budget.Limits{BitsetWords: 8})
	if _, err := SolveContext(context.Background(), prog, Options{Meter: meter}); !errors.Is(err, budget.ErrExhausted) {
		t.Fatalf("want exhaustion, got %v", err)
	}
	if _, err := SolveContext(context.Background(), prog, Options{}); err != nil {
		t.Fatalf("solve after exhausted run failed: %v", err)
	}
}
