package pta

import (
	"fmt"

	"mahjong/internal/lang"
)

// Selector chooses calling contexts and heap contexts; it is the
// context-sensitivity axis of the analysis.
type Selector interface {
	// Name identifies the sensitivity in reports ("ci", "2cs", "3obj", …).
	Name() string
	// CalleeContext picks the context under which callee is analyzed for
	// a call from callerCtx at inv. recv is the context-sensitive
	// receiver object, nil for static calls.
	CalleeContext(t *ContextTable, callerCtx *Context, inv *lang.Invoke, callee *lang.Method, recv *CSObj) *Context
	// HeapContext picks the heap context for an object allocated while
	// analyzing a method under allocCtx.
	HeapContext(t *ContextTable, allocCtx *Context, obj *Obj) *Context
}

// CI is the context-insensitive selector.
type CI struct{}

func (CI) Name() string { return "ci" }

func (CI) CalleeContext(t *ContextTable, _ *Context, _ *lang.Invoke, _ *lang.Method, _ *CSObj) *Context {
	return t.Empty()
}

func (CI) HeapContext(t *ContextTable, _ *Context, _ *Obj) *Context { return t.Empty() }

// KCFA is k-call-site sensitivity: methods are analyzed per sequence of
// the k most recent call sites; heap contexts keep k-1 call sites, the
// convention the paper cites for allocation sites.
type KCFA struct{ K int }

func (s KCFA) Name() string { return fmt.Sprintf("%dcs", s.K) }

func (s KCFA) CalleeContext(t *ContextTable, callerCtx *Context, inv *lang.Invoke, _ *lang.Method, _ *CSObj) *Context {
	return t.Push(callerCtx, inv, s.K)
}

func (s KCFA) HeapContext(t *ContextTable, allocCtx *Context, _ *Obj) *Context {
	return t.Truncate(allocCtx, s.K-1)
}

// KObj is k-object sensitivity: the context of a callee is the receiver
// object plus the k-1 allocator objects that lead to it; static calls
// inherit the caller's context. Heap contexts keep k-1 elements.
type KObj struct{ K int }

func (s KObj) Name() string { return fmt.Sprintf("%dobj", s.K) }

func (s KObj) CalleeContext(t *ContextTable, callerCtx *Context, _ *lang.Invoke, _ *lang.Method, recv *CSObj) *Context {
	if recv == nil {
		return callerCtx
	}
	return t.Push(recv.Ctx, recv.Obj, s.K)
}

func (s KObj) HeapContext(t *ContextTable, allocCtx *Context, _ *Obj) *Context {
	return t.Truncate(allocCtx, s.K-1)
}

// KType is k-type sensitivity: like k-object sensitivity, but every
// object context element is replaced by the class that contains the
// object's allocation site (Smaragdakis et al., the paper's [39]).
type KType struct{ K int }

func (s KType) Name() string { return fmt.Sprintf("%dtype", s.K) }

// typeElem is the class containing the allocation site of obj's
// representative. For a merged object this uses the representative site,
// which is exactly the §3.6.1 rule for M-ktype (and what Example 3.2
// shows can cut either way for precision).
func typeElem(obj *Obj) *lang.Class { return obj.Rep.Method.Owner }

func (s KType) CalleeContext(t *ContextTable, callerCtx *Context, _ *lang.Invoke, _ *lang.Method, recv *CSObj) *Context {
	if recv == nil {
		return callerCtx
	}
	return t.Push(recv.Ctx, typeElem(recv.Obj), s.K)
}

func (s KType) HeapContext(t *ContextTable, allocCtx *Context, _ *Obj) *Context {
	return t.Truncate(allocCtx, s.K-1)
}
