package pta

import (
	"runtime"
	"sync/atomic"
	"time"

	"mahjong/internal/bitset"
	"mahjong/internal/failure"
	"mahjong/internal/faultinject"
	"mahjong/internal/lang"
	"mahjong/internal/trace"
)

// This file holds the per-shard machinery of the parallel engine: the
// lock-free SPSC delta queues, the sticky greedy partitioner, and the
// worker loop. The phase orchestration lives in parallel.go.

// shardMsg is one cross-shard points-to delta. set is owned by the
// message (cloned by the sender from a sender-local pool, adopted into
// the receiver's pool after application — sets never travel back).
// When targets is nil the delta applies to the single node `to`;
// otherwise it applies to every node in targets (one unfiltered source
// delta fanned out to all of a shard's destinations in one message).
type shardMsg struct {
	set     *bitset.Set
	to      int32
	targets []int32
}

const spscChunkLen = 128

// spscChunk is one fixed-size segment of an spsc queue. Chunks are
// linked through an atomic pointer: the producer publishes a new chunk
// before publishing the first message stored in it, so the consumer
// always observes the link before it needs to follow it.
type spscChunk struct {
	next atomic.Pointer[spscChunk]
	buf  [spscChunkLen]shardMsg
}

// spsc is a single-producer single-consumer unbounded queue of
// shardMsgs. Synchronization is a single atomic counter: the producer
// writes a slot and then increments count (the atomic add is the
// release that publishes the slot), the consumer observes count > 0
// (acquire) and then reads the slot. Each side keeps its own cursor in
// plain fields only it touches.
type spsc struct {
	count atomic.Int64
	_     [7]int64 // keep the producer/consumer cursors off the counter's cache line

	// consumer-only cursor
	head    *spscChunk
	headIdx int
	_       [6]int64

	// producer-only cursor
	tail    *spscChunk
	tailIdx int
}

func newSPSC() *spsc {
	c := &spscChunk{}
	return &spsc{head: c, tail: c}
}

// push appends m; called only by the producing worker.
func (q *spsc) push(m shardMsg) {
	if q.tailIdx == spscChunkLen {
		nc := &spscChunk{}
		q.tail.next.Store(nc)
		q.tail = nc
		q.tailIdx = 0
	}
	q.tail.buf[q.tailIdx] = m
	q.tailIdx++
	q.count.Add(1)
}

// pop removes the oldest message; called only by the consuming worker
// (or by the coordinator after all workers have stopped).
func (q *spsc) pop() (shardMsg, bool) {
	if q.count.Load() == 0 {
		return shardMsg{}, false
	}
	if q.headIdx == spscChunkLen {
		q.head = q.head.next.Load()
		q.headIdx = 0
	}
	m := q.head.buf[q.headIdx]
	q.head.buf[q.headIdx] = shardMsg{} // drop set/slice references for GC
	q.headIdx++
	q.count.Add(-1)
	return m, true
}

// shardState is one propagation worker: a shard of nodes it exclusively
// owns, a private worklist ring over those nodes, one inbound SPSC
// queue per peer, and private set/scratch pools so the hot path
// allocates nothing and shares nothing mutable.
//
//lint:shard-worker its methods and goroutine bodies are the in-phase call tree the shardowner analyzer polices
type shardState struct {
	eng *parEngine
	id  int

	ring intRing
	in   []*spsc // in[w] carries messages from worker w; in[id] is nil

	free    []*bitset.Set
	scratch bitset.Set

	// fired collects, per processed node, the union of deltas whose
	// var-site reactions (loads/stores/invokes — all graph growth) are
	// deferred to the sequential coordinator at phase end.
	fired map[int32]*bitset.Set //lint:adopts the drain barrier owns and releases stored sets

	// remoteTgts[w] accumulates, during one node's fan-out, the
	// destinations owned by worker w that the unfiltered delta must
	// reach; flushed as one message per destination shard.
	remoteTgts [][]int32

	idle atomic.Int32
	_    [7]int64 // idle is scanned by the detector; pad it away from the hot fields below

	// worker-local counters, folded into solver stats at phase end
	work           int64
	propagatedBits int64
	maskHits       int64
	rangeHits      int64
	sent           int64
	polls          int
}

// grabSet returns an empty set from the worker's private pool.
func (w *shardState) grabSet() *bitset.Set {
	if n := len(w.free); n > 0 {
		p := w.free[n-1]
		w.free = w.free[:n-1]
		return p
	}
	return &bitset.Set{}
}

func (w *shardState) releaseSet(p *bitset.Set) {
	if p == nil {
		return
	}
	p.Clear()
	w.free = append(w.free, p)
}

// run is the worker loop for one parallel phase. It alternates draining
// inbound queues with bounded batches of local propagation, publishes
// an idle flag when it finds neither, and exits when the coordinator's
// termination detector (or a sibling's failure) sets stopped. Any panic
// — injected fault, budget sentinel, real bug — is recorded with the
// engine and stops the phase; the coordinator re-raises it after
// folding stats, so a dying worker degrades the run instead of
// deadlocking termination.
func (w *shardState) run(phaseSpan trace.Span) {
	defer func() {
		if r := recover(); r != nil {
			w.eng.recordFailure(r)
		}
	}()
	wsp := phaseSpan.Ctx().Start(faultinject.StageShardSolve)
	wsp.Worker(w.id)
	defer wsp.CloseAborted()
	if err := faultinject.Fire(faultinject.StageShardSolve); err != nil {
		// Tag the injected error with this seam before it unwinds through
		// the coordinator, so the failure names the worker stage rather
		// than the outer pta.solve guard.
		panic(failure.AsInternal(faultinject.StageShardSolve, err))
	}
	idleSpins := 0
	for {
		if w.eng.stopped.Load() {
			break
		}
		progress := false
		for _, q := range w.in {
			if q == nil {
				continue
			}
			for {
				m, ok := q.pop()
				if !ok {
					break
				}
				w.idle.Store(0)
				w.apply(m)
				progress = true
			}
		}
		// A bounded batch keeps the inbound queues fresh: peers block on
		// nothing, but their rings grow if we never service our queues.
		for i := 0; i < 64; i++ {
			id, ok := w.ring.pop()
			if !ok {
				break
			}
			w.idle.Store(0)
			w.process(id)
			progress = true
		}
		if progress {
			idleSpins = 0
			continue
		}
		// No local work and no inbound messages: publish idleness for the
		// termination detector, then back off. Ordering matters — a
		// message that lands after our queue scan but before the Store is
		// still in flight (sent > recv), so the detector cannot
		// terminate on our stale idle flag.
		w.idle.Store(1)
		idleSpins++
		if idleSpins < 8 {
			runtime.Gosched()
		} else {
			time.Sleep(20 * time.Microsecond)
		}
	}
	wsp.Add("propagated_bits", w.propagatedBits)
	wsp.Add("sent_msgs", w.sent)
	wsp.End()
}

// apply merges one inbound delta into its target nodes (all owned by
// this worker) and adopts the message's set into the local pool.
func (w *shardState) apply(m shardMsg) {
	if m.targets == nil {
		w.localAddPts(int(m.to), m.set)
	} else {
		for _, t := range m.targets {
			w.localAddPts(int(t), m.set)
		}
	}
	w.releaseSet(m.set)
	w.eng.recv.Add(1)
}

// process propagates one owned node's pending delta across its
// (frozen) successor edges, routing cross-shard destinations through
// the SPSC queues, and stashes the delta for deferred var-site firing
// when the node carries statement sites.
func (w *shardState) process(id int) {
	e := w.eng
	s := e.s
	s.queued[id] = false
	delta := s.pending[id]
	s.pending[id] = nil
	if delta == nil || delta.IsEmpty() {
		w.releaseSet(delta)
		return
	}
	w.chargeWork(int64(delta.Len()))
	w.propagatedBits += int64(delta.Len())
	succ := s.nodes[id].succ
	for _, ed := range succ {
		t := int(e.flat[ed.to])
		dest := int(e.shardOf[t])
		if ed.filter == nil {
			if dest == w.id {
				w.localAddPts(t, delta)
			} else {
				w.remoteTgts[dest] = append(w.remoteTgts[dest], int32(t))
			}
			continue
		}
		fd := w.filtered(delta, ed.filter)
		if fd == nil || fd.IsEmpty() {
			continue
		}
		if dest == w.id {
			w.localAddPts(t, fd)
		} else {
			set := w.grabSet()
			set.Union(fd)
			w.send(dest, shardMsg{set: set, to: int32(t)})
		}
	}
	for dest, tgts := range w.remoteTgts {
		if len(tgts) == 0 {
			continue
		}
		set := w.grabSet()
		set.Union(delta)
		w.send(dest, shardMsg{set: set, targets: append([]int32(nil), tgts...)})
		w.remoteTgts[dest] = tgts[:0]
	}
	if e.siteful[id] {
		// Var-site reactions grow the graph; defer them. The delta moves
		// into the fired map (no clone) — ownership transfers, so it must
		// not be released here.
		if f := w.fired[int32(id)]; f != nil {
			f.Union(delta)
		} else {
			w.fired[int32(id)] = delta
			return
		}
	}
	w.releaseSet(delta)
}

// localAddPts is addPts restricted to nodes this worker owns: it may
// touch pts/pending/queued only at indices whose shard is w.id, which
// is what makes the unsynchronized element writes race-free.
func (w *shardState) localAddPts(t int, set *bitset.Set) {
	s := w.eng.s
	p := s.pending[t]
	fresh := p == nil
	if fresh {
		p = w.grabSet()
	}
	wordsBefore := s.nodes[t].pts.Words()
	if s.nodes[t].pts.UnionInto(set, p) == 0 {
		if fresh {
			w.releaseSet(p)
		}
		return
	}
	if fresh {
		s.pending[t] = p
	}
	if !s.queued[t] {
		s.queued[t] = true
		w.ring.push(t)
	}
	w.chargeWords(s.nodes[t].pts.Words() - wordsBefore)
}

// send routes a message to dest's inbound queue from this worker. The
// sent counter increments before the push so an in-flight message is
// always visible to the termination detector as sent > recv.
func (w *shardState) send(dest int, m shardMsg) {
	w.eng.sent.Add(1)
	w.sent++
	w.eng.shards[dest].in[w.id].push(m)
}

// filtered is the worker-side filter: identical semantics to
// solver.filtered, but reading the coordinator-prepared masks without
// extending them and using worker-private scratch.
func (w *shardState) filtered(delta *bitset.Set, filter *lang.Class) *bitset.Set {
	s := w.eng.s
	if s.ren != nil && s.tailObjs == 0 {
		if sp, ok := s.ren.span(filter); ok {
			w.rangeHits++
			if delta.OnesInRange(sp.lo, sp.hi) == delta.Len() {
				return delta //lint:allow bitsetalias documented borrow passthrough: the delta lies entirely inside the filter's ID range, so the filtered set IS the input
			}
			return bitset.IntersectRangeInto(&w.scratch, delta, sp.lo, sp.hi)
		}
	}
	w.maskHits++
	m := s.masks[filter]
	return bitset.IntersectInto(&w.scratch, delta, &m.set)
}

// chargeWork mirrors solver.chargeWork for the parallel phase: work
// accrues to a shared atomic checked against the budget, the meter is
// charged directly (it is internally synchronized), and ctx/deadline
// are polled periodically. All aborts unwind by sentinel panic, which
// the worker's recover hands to the coordinator.
func (w *shardState) chargeWork(units int64) {
	e := w.eng
	s := e.s
	w.work += units
	total := e.parWork.Add(units)
	if s.opts.Budget.Work > 0 && e.baseWork+total > s.opts.Budget.Work {
		panic(errBudgetSentinel)
	}
	if err := s.meter.AddFacts(units); err != nil {
		e.recordMeterErr(err)
		panic(errMeterSentinel)
	}
	w.polls++
	if w.polls&255 == 0 {
		if s.hasTimeout && time.Now().After(s.deadline) {
			panic(errBudgetSentinel)
		}
		if s.ctx != nil && s.ctx.Err() != nil {
			panic(errCancelSentinel)
		}
	}
}

func (w *shardState) chargeWords(words int) {
	e := w.eng
	if e.s.meter == nil || words == 0 {
		return
	}
	if err := e.s.meter.AddWords(int64(words)); err != nil {
		e.recordMeterErr(err)
		panic(errMeterSentinel)
	}
}
