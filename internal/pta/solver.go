package pta

import (
	"context"
	"errors"
	"fmt"
	"time"

	"mahjong/internal/bitset"
	"mahjong/internal/lang"
)

// CSObj is a context-sensitive abstract object: an abstract object plus
// the heap context it was allocated under. CSObjs are interned; their
// IDs index points-to bit sets.
type CSObj struct {
	ID  int
	Ctx *Context
	Obj *Obj
}

func (o *CSObj) String() string {
	if o.Ctx.Depth() == 0 {
		return o.Obj.String()
	}
	return o.Ctx.String() + ":" + o.Obj.String()
}

// Budget bounds an analysis run. Work is a deterministic propagation
// counter (points-to facts processed); Time is an optional wall-clock
// cap. A zero field means unlimited.
type Budget struct {
	Work int64
	Time time.Duration
}

// ErrBudget is reported (wrapped) when a run exceeds its Budget.
var ErrBudget = errors.New("pta: budget exhausted")

// Options configures a points-to analysis run.
type Options struct {
	Heap     HeapModel // defaults to NewAllocSiteModel()
	Selector Selector  // defaults to CI{}
	Budget   Budget
}

// nodeKind discriminates pointer nodes.
type nodeKind int8

const (
	nVar nodeKind = iota
	nInstField
	nStaticField
)

type edge struct {
	to     int
	filter *lang.Class // non-nil for cast edges: only subtypes flow
}

// node is one pointer in the pointer-flow graph.
type node struct {
	kind nodeKind
	pts  bitset.Set
	succ []edge

	// var-node payload (nil for field nodes)
	info *varInfo
}

// varInfo carries the statements that must react when the points-to set
// of a variable grows: field accesses via the variable and calls
// dispatched on it.
type varInfo struct {
	ctx     *Context
	v       *lang.Var
	loads   []*lang.Load
	stores  []*lang.Store
	invokes []*lang.Invoke
}

type varKey struct {
	ctx *Context
	v   *lang.Var
}

type fieldKey struct {
	obj   int // CSObj ID
	field *lang.Field
}

type csMethodKey struct {
	ctx *Context
	m   *lang.Method
}

type callEdgeKey struct {
	callerCtx *Context
	inv       *lang.Invoke
	calleeCtx *Context
	callee    *lang.Method
}

// castSite records one reachable cast occurrence (per context) for the
// may-fail-casting client.
type castSite struct {
	stmt    *lang.Cast
	rhsNode int
}

// Solver runs the analysis. Create one per run via Solve.
type solver struct {
	prog *lang.Program
	opts Options
	ctxt *ContextTable

	nodes []*node

	varNodes    map[varKey]int
	fieldNodes  map[fieldKey]int
	staticNodes map[*lang.Field]int
	varIndex    map[*lang.Var][]int // all context variants of a variable

	csobjs    []*CSObj
	objCtxIdx map[ctxObjKey]int

	reachable  map[csMethodKey]bool
	reachList  []csMethodKey
	callEdges  map[callEdgeKey]bool
	ciEdges    map[*lang.Invoke]map[*lang.Method]bool
	ciMethods  map[*lang.Method]bool
	casts      []castSite
	castSeen   map[castInstKey]bool
	virtSeen   map[virtKey]bool
	emptyHeap  *Context
	work       int64
	deadline   time.Time
	hasTimeout bool
	ctx        context.Context // nil when cancellation is not requested

	worklist []int
	queued   []bool
	pending  []*bitset.Set
}

type ctxObjKey struct {
	ctx *Context
	obj *Obj
}

type castInstKey struct {
	ctx  *Context
	stmt *lang.Cast
}

type virtKey struct {
	ctx *Context
	inv *lang.Invoke
	obj int // receiver CSObj id
}

// Result is the outcome of a points-to analysis run.
type Result struct {
	Prog     *lang.Program
	Opts     Options
	Aborted  bool  // true when the budget ran out (partial result)
	Work     int64 // propagation work performed
	Duration time.Duration

	solver *solver
}

// Solve runs the points-to analysis on prog with the given options.
// A budget overrun returns a partial Result with Aborted=true and a nil
// error; hard misconfigurations return an error.
func Solve(prog *lang.Program, opts Options) (*Result, error) {
	return SolveContext(context.Background(), prog, opts)
}

// SolveContext is Solve with cancellation: the worklist loop checks ctx
// alongside the Budget, and a cancelled or timed-out context aborts the
// run with an error wrapping context.Canceled or
// context.DeadlineExceeded. Budget overruns keep Solve's semantics
// (partial Result, Aborted=true, nil error).
func SolveContext(ctx context.Context, prog *lang.Program, opts Options) (*Result, error) {
	if prog.Entry == nil {
		return nil, errors.New("pta: program has no entry method")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("pta: analysis not started: %w", err)
	}
	if opts.Heap == nil {
		opts.Heap = NewAllocSiteModel()
	}
	if opts.Selector == nil {
		opts.Selector = CI{}
	}
	s := &solver{
		prog:        prog,
		opts:        opts,
		ctxt:        NewContextTable(),
		varNodes:    make(map[varKey]int),
		fieldNodes:  make(map[fieldKey]int),
		staticNodes: make(map[*lang.Field]int),
		varIndex:    make(map[*lang.Var][]int),
		objCtxIdx:   make(map[ctxObjKey]int),
		reachable:   make(map[csMethodKey]bool),
		callEdges:   make(map[callEdgeKey]bool),
		ciEdges:     make(map[*lang.Invoke]map[*lang.Method]bool),
		ciMethods:   make(map[*lang.Method]bool),
		castSeen:    make(map[castInstKey]bool),
		virtSeen:    make(map[virtKey]bool),
	}
	s.emptyHeap = s.ctxt.Empty()
	if ctx != context.Background() {
		s.ctx = ctx
	}
	start := time.Now()
	if opts.Budget.Time > 0 {
		s.deadline = start.Add(opts.Budget.Time)
		s.hasTimeout = true
	}
	aborted, cancelled := s.run()
	if cancelled {
		return nil, fmt.Errorf("pta: analysis interrupted after %d work units: %w", s.work, ctx.Err())
	}
	return &Result{
		Prog:     prog,
		Opts:     opts,
		Aborted:  aborted,
		Work:     s.work,
		Duration: time.Since(start),
		solver:   s,
	}, nil
}

// run executes the worklist loop; aborted reports a budget overrun,
// cancelled a context cancellation.
func (s *solver) run() (aborted, cancelled bool) {
	defer func() {
		// chargeWork unwinds deep processing chains via panic when the
		// budget runs out or the context is cancelled; anything else is a
		// real bug and is re-raised.
		switch r := recover(); r {
		case nil:
		case errBudgetSentinel:
			aborted = true
		case errCancelSentinel:
			cancelled = true
		default:
			panic(r)
		}
	}()
	s.makeReachable(s.ctxt.Empty(), s.prog.Entry)
	for len(s.worklist) > 0 {
		id := s.worklist[0]
		s.worklist = s.worklist[1:]
		s.queued[id] = false
		delta := s.pending[id]
		s.pending[id] = nil
		if delta == nil || delta.IsEmpty() {
			continue
		}
		s.chargeWork(int64(delta.Len()))
		n := s.nodes[id]
		for _, e := range n.succ {
			s.addPts(e.to, s.filtered(delta, e.filter))
		}
		if n.info != nil {
			s.processVarDelta(n.info, delta)
		}
	}
	return false, false
}

var (
	errBudgetSentinel = new(int)
	errCancelSentinel = new(int)
)

func (s *solver) chargeWork(units int64) {
	s.work += units
	if s.opts.Budget.Work > 0 && s.work > s.opts.Budget.Work {
		panic(errBudgetSentinel)
	}
	if s.work%4096 < units { // periodic checks, amortized over ~4096 units
		if s.hasTimeout && time.Now().After(s.deadline) {
			panic(errBudgetSentinel)
		}
		if s.ctx != nil && s.ctx.Err() != nil {
			panic(errCancelSentinel)
		}
	}
}

// filtered returns delta restricted to objects whose type is a subtype
// of filter; a nil filter returns delta unchanged.
func (s *solver) filtered(delta *bitset.Set, filter *lang.Class) *bitset.Set {
	if filter == nil {
		return delta
	}
	out := bitset.New(0)
	delta.ForEach(func(i int) bool {
		if s.csobjs[i].Obj.Type.SubtypeOf(filter) {
			out.Add(i)
		}
		return true
	})
	return out
}

func (s *solver) newNode(kind nodeKind, info *varInfo) int {
	id := len(s.nodes)
	s.nodes = append(s.nodes, &node{kind: kind, info: info})
	s.queued = append(s.queued, false)
	s.pending = append(s.pending, nil)
	return id
}

func (s *solver) varNode(ctx *Context, v *lang.Var) int {
	k := varKey{ctx, v}
	if id, ok := s.varNodes[k]; ok {
		return id
	}
	id := s.newNode(nVar, &varInfo{ctx: ctx, v: v})
	s.varNodes[k] = id
	s.varIndex[v] = append(s.varIndex[v], id)
	return id
}

func (s *solver) fieldNode(obj int, f *lang.Field) int {
	k := fieldKey{obj, f}
	if id, ok := s.fieldNodes[k]; ok {
		return id
	}
	id := s.newNode(nInstField, nil)
	s.fieldNodes[k] = id
	return id
}

func (s *solver) staticNode(f *lang.Field) int {
	if id, ok := s.staticNodes[f]; ok {
		return id
	}
	id := s.newNode(nStaticField, nil)
	s.staticNodes[f] = id
	return id
}

// csObj interns the (heap context, object) pair.
func (s *solver) csObj(ctx *Context, o *Obj) int {
	k := ctxObjKey{ctx, o}
	if id, ok := s.objCtxIdx[k]; ok {
		return id
	}
	id := len(s.csobjs)
	s.csobjs = append(s.csobjs, &CSObj{ID: id, Ctx: ctx, Obj: o})
	s.objCtxIdx[k] = id
	return id
}

// addPts merges set into node id's points-to set, queueing the newly
// added part for propagation.
func (s *solver) addPts(id int, set *bitset.Set) {
	if set == nil || set.IsEmpty() {
		return
	}
	n := s.nodes[id]
	diff := n.pts.UnionDiff(set)
	if diff == nil {
		return
	}
	if s.pending[id] == nil {
		s.pending[id] = diff
	} else {
		s.pending[id].Union(diff)
	}
	if !s.queued[id] {
		s.queued[id] = true
		s.worklist = append(s.worklist, id)
	}
}

func (s *solver) addPtsOne(id, obj int) {
	one := bitset.New(obj + 1)
	one.Add(obj)
	s.addPts(id, one)
}

// addEdge inserts a flow edge and replays the source's current
// points-to set across it. Duplicate edges are suppressed.
func (s *solver) addEdge(from, to int, filter *lang.Class) {
	if from == to && filter == nil {
		return
	}
	n := s.nodes[from]
	for _, e := range n.succ {
		if e.to == to && e.filter == filter {
			return
		}
	}
	n.succ = append(n.succ, edge{to: to, filter: filter})
	if !n.pts.IsEmpty() {
		s.addPts(to, s.filtered(&n.pts, filter))
	}
}

// makeReachable marks (ctx, m) reachable and processes its body once.
func (s *solver) makeReachable(ctx *Context, m *lang.Method) {
	k := csMethodKey{ctx, m}
	if s.reachable[k] {
		return
	}
	if m.IsAbstract {
		panic(fmt.Sprintf("pta: abstract method %s became reachable", m))
	}
	s.reachable[k] = true
	s.reachList = append(s.reachList, k)
	s.ciMethods[m] = true
	s.chargeWork(1)
	for _, st := range m.Stmts {
		s.processStmt(ctx, m, st)
	}
}

func (s *solver) processStmt(ctx *Context, m *lang.Method, st lang.Stmt) {
	switch stmt := st.(type) {
	case *lang.Alloc:
		obj := s.opts.Heap.Obj(stmt.Site)
		var hctx *Context
		if obj.CtxInsensitive {
			hctx = s.emptyHeap
		} else {
			hctx = s.opts.Selector.HeapContext(s.ctxt, ctx, obj)
		}
		cs := s.csObj(hctx, obj)
		s.addPtsOne(s.varNode(ctx, stmt.LHS), cs)

	case *lang.Copy:
		s.addEdge(s.varNode(ctx, stmt.RHS), s.varNode(ctx, stmt.LHS), nil)

	case *lang.Cast:
		rhs := s.varNode(ctx, stmt.RHS)
		s.addEdge(rhs, s.varNode(ctx, stmt.LHS), stmt.Type)
		ck := castInstKey{ctx, stmt}
		if !s.castSeen[ck] {
			s.castSeen[ck] = true
			s.casts = append(s.casts, castSite{stmt: stmt, rhsNode: rhs})
		}

	case *lang.Load:
		base := s.varNode(ctx, stmt.Base)
		info := s.nodes[base].info
		info.loads = append(info.loads, stmt)
		s.replayBase(ctx, base, func(obj int) { s.applyLoad(ctx, obj, stmt) })

	case *lang.Store:
		base := s.varNode(ctx, stmt.Base)
		info := s.nodes[base].info
		info.stores = append(info.stores, stmt)
		s.replayBase(ctx, base, func(obj int) { s.applyStore(ctx, obj, stmt) })

	case *lang.StaticLoad:
		s.addEdge(s.staticNode(stmt.Field), s.varNode(ctx, stmt.LHS), nil)

	case *lang.StaticStore:
		s.addEdge(s.varNode(ctx, stmt.RHS), s.staticNode(stmt.Field), nil)

	case *lang.Invoke:
		switch stmt.Kind {
		case lang.StaticCall:
			calleeCtx := s.opts.Selector.CalleeContext(s.ctxt, ctx, stmt, stmt.Callee, nil)
			s.addCallEdge(ctx, stmt, calleeCtx, stmt.Callee, -1)
		default: // virtual and special calls dispatch/bind per receiver object
			base := s.varNode(ctx, stmt.Base)
			info := s.nodes[base].info
			info.invokes = append(info.invokes, stmt)
			s.replayBase(ctx, base, func(obj int) { s.applyInvoke(ctx, obj, stmt) })
		}

	case *lang.Return:
		if stmt.Value != nil && m.RetVar != nil {
			s.addEdge(s.varNode(ctx, stmt.Value), s.varNode(ctx, m.RetVar), nil)
		}

	case *lang.Throw:
		s.addEdge(s.varNode(ctx, stmt.Value), s.varNode(ctx, m.ExcVar()), nil)

	case *lang.Catch:
		s.addEdge(s.varNode(ctx, m.ExcVar()), s.varNode(ctx, stmt.LHS), stmt.Type)

	default:
		panic(fmt.Sprintf("pta: unknown statement %T", st))
	}
}

// replayBase applies fn to every object already in base's points-to set;
// future objects are handled by processVarDelta.
func (s *solver) replayBase(_ *Context, base int, fn func(obj int)) {
	pts := &s.nodes[base].pts
	if pts.IsEmpty() {
		return
	}
	pts.ForEach(func(i int) bool {
		fn(i)
		return true
	})
}

// processVarDelta reacts to growth of a variable's points-to set.
func (s *solver) processVarDelta(info *varInfo, delta *bitset.Set) {
	ctx := info.ctx
	delta.ForEach(func(obj int) bool {
		for _, ld := range info.loads {
			s.applyLoad(ctx, obj, ld)
		}
		for _, st := range info.stores {
			s.applyStore(ctx, obj, st)
		}
		for _, inv := range info.invokes {
			s.applyInvoke(ctx, obj, inv)
		}
		return true
	})
}

func (s *solver) applyLoad(ctx *Context, obj int, ld *lang.Load) {
	s.addEdge(s.fieldNode(obj, ld.Field), s.varNode(ctx, ld.LHS), nil)
}

func (s *solver) applyStore(ctx *Context, obj int, st *lang.Store) {
	s.addEdge(s.varNode(ctx, st.RHS), s.fieldNode(obj, st.Field), nil)
}

func (s *solver) applyInvoke(ctx *Context, obj int, inv *lang.Invoke) {
	vk := virtKey{ctx, inv, obj}
	if s.virtSeen[vk] {
		return
	}
	s.virtSeen[vk] = true
	recv := s.csobjs[obj]
	var callee *lang.Method
	if inv.Kind == lang.SpecialCall {
		callee = inv.Callee
	} else {
		callee = recv.Obj.Type.Dispatch(inv.Callee.Sig())
		if callee == nil {
			// No implementation for this runtime type (e.g. an object of an
			// unrelated type flowed here imprecisely); skip, as a JVM would
			// never reach this state.
			return
		}
	}
	calleeCtx := s.opts.Selector.CalleeContext(s.ctxt, ctx, inv, callee, recv)
	s.addCallEdge(ctx, inv, calleeCtx, callee, obj)
}

// addCallEdge links a (caller, call-site) to a (calleeCtx, callee):
// binds the receiver, wires argument/return edges once per edge, and
// makes the callee reachable.
func (s *solver) addCallEdge(callerCtx *Context, inv *lang.Invoke, calleeCtx *Context, callee *lang.Method, recvObj int) {
	s.makeReachable(calleeCtx, callee)
	if recvObj >= 0 && callee.This != nil {
		s.addPtsOne(s.varNode(calleeCtx, callee.This), recvObj)
	}
	k := callEdgeKey{callerCtx, inv, calleeCtx, callee}
	if s.callEdges[k] {
		return
	}
	s.callEdges[k] = true
	tgts := s.ciEdges[inv]
	if tgts == nil {
		tgts = make(map[*lang.Method]bool)
		s.ciEdges[inv] = tgts
	}
	tgts[callee] = true
	for i, a := range inv.Args {
		s.addEdge(s.varNode(callerCtx, a), s.varNode(calleeCtx, callee.Params[i]), nil)
	}
	if inv.LHS != nil && callee.RetVar != nil {
		s.addEdge(s.varNode(calleeCtx, callee.RetVar), s.varNode(callerCtx, inv.LHS), nil)
	}
	// Exceptions escaping the callee may escape the caller too. The edge
	// is added unconditionally: the callee's $exc may only be populated
	// later (e.g. by a throw in one of its own callees), and an edge
	// over still-empty sets costs nothing.
	s.addEdge(s.varNode(calleeCtx, callee.ExcVar()), s.varNode(callerCtx, inv.In.ExcVar()), nil)
}
