package pta

import (
	"context"
	"errors"
	"fmt"
	"time"

	"mahjong/internal/bitset"
	"mahjong/internal/budget"
	"mahjong/internal/failure"
	"mahjong/internal/faultinject"
	"mahjong/internal/lang"
	"mahjong/internal/trace"
	"mahjong/internal/unionfind"
)

// CSObj is a context-sensitive abstract object: an abstract object plus
// the heap context it was allocated under. CSObjs are interned; their
// IDs index points-to bit sets.
type CSObj struct {
	ID  int
	Ctx *Context
	Obj *Obj
}

func (o *CSObj) String() string {
	if o.Ctx.Depth() == 0 {
		return o.Obj.String()
	}
	return o.Ctx.String() + ":" + o.Obj.String()
}

// Budget bounds an analysis run. Work is a deterministic propagation
// counter (points-to facts processed); Time is an optional wall-clock
// cap. A zero field means unlimited.
type Budget struct {
	Work int64
	Time time.Duration
}

// ErrBudget is reported (wrapped) when a run exceeds its Budget.
var ErrBudget = errors.New("pta: budget exhausted")

// Options configures a points-to analysis run.
type Options struct {
	Heap     HeapModel // defaults to NewAllocSiteModel()
	Selector Selector  // defaults to CI{}
	Budget   Budget

	// Meter, when non-nil, charges resource budgets (propagated facts,
	// live bitset words) as the solve runs; exhausting it aborts the run
	// with an error wrapping budget.ErrExhausted. Unlike Budget.Work —
	// which reproduces the paper's "unscalable" cells as a partial
	// result with Aborted=true — meter exhaustion is a hard failure the
	// caller is expected to degrade from. The same meter is shared
	// across pipeline stages so one job draws on one budget.
	Meter *budget.Meter

	// NoOpt disables the solver's semantics-preserving optimizations
	// (copy-cycle collapsing, class-indexed filter masks, object
	// renumbering, and the parallel engine) and falls back to the naive
	// propagation strategy. Results are identical, only slower; the
	// flag exists for A/B equivalence tests and ablation benchmarks.
	NoOpt bool

	// Parallel selects the sharded parallel propagation engine: 0 or 1
	// runs the sequential solver, n >= 2 runs n propagation workers,
	// and any negative value means one worker per GOMAXPROCS. The
	// engine alternates sequential graph-growth steps (statement
	// processing, edge insertion, cycle collapsing) with parallel
	// propagation phases over a sharded snapshot of the constraint
	// graph; see docs/PARALLEL.md. Results are equivalent to the
	// sequential solver up to object/node numbering. NoOpt forces the
	// sequential path.
	Parallel int

	// Renumber lays out CSObj IDs class-contiguously (class-hierarchy
	// pre-order with one reserved ID block per class) instead of in
	// interning order, densifying points-to bitsets and turning
	// non-interface class filters into [lo,hi) word-range
	// intersections. Semantics-preserving: only IDs change, and every
	// Result accessor reports stable site/label-based views. Ignored
	// under NoOpt.
	Renumber bool

	// parThreshold is the minimum sequential worklist length that
	// triggers a parallel propagation phase; 0 selects the engine
	// default. Package-private: a test knob to force phase churn on
	// small synthetic programs.
	parThreshold int

	// Trace, when enabled, records a "pta.solve" span for the run (with
	// per-pass "pta.collapse" child spans) carrying the Stats counters
	// as span deltas. The zero Ctx disables tracing at no cost.
	Trace trace.Ctx

	// seed, when non-nil, pre-populates the freshly constructed solver
	// before the worklist runs (the incremental warm start installed by
	// SolveIncrementalContext). Package-private on purpose: a seed is
	// only sound if every fact it installs lies below the program's
	// least fixpoint, an invariant the incremental taint closure
	// guarantees and arbitrary callers cannot.
	seed func(*solver) error
}

// nodeKind discriminates pointer nodes.
type nodeKind int8

const (
	nVar nodeKind = iota
	nInstField
	nStaticField
)

type edge struct {
	to     int
	filter *lang.Class // non-nil for cast edges: only subtypes flow
}

// dupEdgeThreshold is the successor count past which a node switches
// from linear duplicate scanning to a hash-set index in addEdge.
const dupEdgeThreshold = 8

// node is one pointer in the pointer-flow graph. Nodes are stored by
// value in solver.nodes to avoid a pointer dereference per propagation
// step; take fresh references after any call that may append a node.
type node struct {
	kind nodeKind
	pts  bitset.Set
	succ []edge

	// edgeSet indexes succ for O(1) duplicate detection once the list
	// outgrows dupEdgeThreshold; nil below it.
	edgeSet map[edge]struct{}

	// info is the var-node payload (nil for field nodes). It stays on
	// the node that created it even after the node is collapsed into a
	// cycle representative, so statement processing can keep appending
	// sites through the original id.
	info *varInfo

	// merged holds the varInfos of nodes collapsed into this
	// representative: a delta arriving here must fire their sites too.
	merged []*varInfo
}

// loadSite / storeSite are load/store statements with their non-base
// endpoints pre-resolved to node ids, so reacting to a points-to delta
// costs no map lookups.
type loadSite struct {
	field *lang.Field
	lhs   int
}

type storeSite struct {
	field *lang.Field
	rhs   int
}

// varInfo carries the statements that must react when the points-to set
// of a variable grows: field accesses via the variable and calls
// dispatched on it.
type varInfo struct {
	ctx     *Context
	v       *lang.Var
	loads   []loadSite
	stores  []storeSite
	invokes []*lang.Invoke
}

type varKey struct {
	ctx *Context
	v   *lang.Var
}

type fieldKey struct {
	obj   int // CSObj ID
	field *lang.Field
}

type csMethodKey struct {
	ctx *Context
	m   *lang.Method
}

type callEdgeKey struct {
	callerCtx *Context
	inv       *lang.Invoke
	calleeCtx *Context
	callee    *lang.Method
}

// castSite records one reachable cast occurrence (per context) for the
// may-fail-casting client.
type castSite struct {
	stmt    *lang.Cast
	rhsNode int
}

// classMask is the class-indexed filter mask of one cast/catch filter
// class: the set of CSObj IDs whose runtime type is a subtype. It is
// extended incrementally as csObj interns new objects, so each object
// pays one SubtypeOf test per distinct filter class instead of one per
// filtered propagation. upTo indexes s.internLog, not the csobjs slice:
// under renumbering, objects intern into reserved slots out of ID
// order, so "which objects are new since last time" is a question about
// the interning log, not about the tail of the ID space.
type classMask struct {
	set  bitset.Set
	upTo int // internLog entries indexed so far
}

// Solver runs the analysis. Create one per run via Solve.
type solver struct {
	prog *lang.Program
	opts Options
	ctxt *ContextTable

	nodes []node

	varNodes    map[varKey]int
	fieldNodes  map[fieldKey]int
	staticNodes map[*lang.Field]int
	varIndex    map[*lang.Var][]int // all context variants of a variable

	// csobjs maps CSObj ID -> object. Without renumbering it is dense
	// (IDs are interning order); with renumbering it may carry nil
	// holes for reserved-but-never-interned slots, so iterate via
	// internLog or points-to bits, never by scanning the slice.
	csobjs    []*CSObj
	objCtxIdx map[ctxObjKey]int
	// internLog records CSObj IDs in interning order — the solver's
	// own discovery order, which renumbering divorces from ID order.
	// Mask extension and equivalence tests iterate it.
	internLog []int32
	numCSObjs int // interned objects (== non-nil csobjs entries)
	tailObjs  int // objects past the reserved region; >0 disables range filters

	ren *renumbering // nil unless Options.Renumber is in effect
	par *parEngine   // nil unless Options.Parallel selects >= 2 workers

	reachable  map[csMethodKey]bool
	reachList  []csMethodKey
	callEdges  map[callEdgeKey]bool
	ciEdges    map[*lang.Invoke]map[*lang.Method]bool
	ciMethods  map[*lang.Method]bool
	casts      []castSite
	castSeen   map[castInstKey]bool
	emptyHeap  *Context
	work       int64
	deadline   time.Time
	hasTimeout bool
	ctx        context.Context // nil when cancellation is not requested
	meter      *budget.Meter   // nil when no resource budget is set
	meterErr   error           // the exhaustion error behind errMeterSentinel

	worklist intRing
	queued   []bool        //lint:owner-writes sharded by the class-contiguous renumbering during parallel phases
	pending  []*bitset.Set //lint:owner-writes each worker writes only its shard's entries mid-phase
	freeSets []*bitset.Set // cleared delta sets, reused by grabSet

	// copy-cycle collapsing state (nil/zero under Options.NoOpt)
	reps         *unionfind.Forest // nil until the first collapse
	newCopyEdges int               // copy edges since the last SCC pass
	sccTrigger   int               // pass when newCopyEdges reaches this

	masks   map[*lang.Class]*classMask
	scratch bitset.Set // filtered() output buffer, consumed immediately

	stats Stats
	span  trace.Span // the run's "pta.solve" span; zero when untraced
}

type ctxObjKey struct {
	ctx *Context
	obj *Obj
}

type castInstKey struct {
	ctx  *Context
	stmt *lang.Cast
}

// Result is the outcome of a points-to analysis run.
type Result struct {
	Prog     *lang.Program
	Opts     Options
	Aborted  bool  // true when the budget ran out (partial result)
	Work     int64 // propagation work performed
	Duration time.Duration

	solver *solver
}

// Solve runs the points-to analysis on prog with the given options.
// A budget overrun returns a partial Result with Aborted=true and a nil
// error; hard misconfigurations return an error.
func Solve(prog *lang.Program, opts Options) (*Result, error) {
	return SolveContext(context.Background(), prog, opts) //lint:allow ctxflow Solve is the documented context-free compat shim over SolveContext
}

// SolveContext is Solve with cancellation: the worklist loop checks ctx
// alongside the Budget, and a cancelled or timed-out context aborts the
// run with an error wrapping context.Canceled or
// context.DeadlineExceeded. Budget overruns keep Solve's semantics
// (partial Result, Aborted=true, nil error).
func SolveContext(ctx context.Context, prog *lang.Program, opts Options) (res *Result, err error) {
	// The span-closing defer is registered before the stage guard so it
	// runs after Recover has converted any panic into the named error:
	// the span closes tagged with the failure the caller will see.
	sp := opts.Trace.Start(faultinject.StageSolve)
	defer func() {
		if err == nil && res != nil && res.Aborted {
			sp.FailTag(trace.FailBudget, "work budget exhausted (partial result)")
			return
		}
		sp.Close(err)
	}()
	// Panic isolation: a bug (or injected fault) escaping the solve
	// surfaces as a typed *failure.InternalError instead of unwinding
	// the caller — in mahjongd, failing one job instead of the daemon.
	// The run loop's budget/cancel sentinels are recovered earlier, in
	// run(); only genuine panics reach this guard.
	defer failure.Recover(faultinject.StageSolve, &err)
	if prog.Entry == nil {
		return nil, errors.New("pta: program has no entry method")
	}
	if ctx == nil {
		ctx = context.Background() //lint:allow ctxflow nil-context normalization at the API boundary, not a detached root
	}
	// The injection seam precedes the deadline check so a hook-injected
	// slow stage is observed by the job's context like any real stall.
	if err := faultinject.Fire(faultinject.StageSolve); err != nil {
		return nil, fmt.Errorf("pta: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("pta: analysis not started: %w", err)
	}
	if opts.Heap == nil {
		opts.Heap = NewAllocSiteModel()
	}
	if opts.Selector == nil {
		opts.Selector = CI{}
	}
	// Pre-size the hot maps from program shape: statement count bounds
	// the context-insensitive node/edge population, and undersized maps
	// pay for themselves many times over in incremental rehashing.
	st := prog.Stats()
	s := &solver{
		prog:        prog,
		opts:        opts,
		ctxt:        NewContextTable(),
		varNodes:    make(map[varKey]int, st.Stmts),
		fieldNodes:  make(map[fieldKey]int, 2*st.AllocSites),
		staticNodes: make(map[*lang.Field]int),
		varIndex:    make(map[*lang.Var][]int, st.Stmts),
		objCtxIdx:   make(map[ctxObjKey]int, st.AllocSites),
		reachable:   make(map[csMethodKey]bool, st.Methods),
		callEdges:   make(map[callEdgeKey]bool, st.Stmts),
		ciEdges:     make(map[*lang.Invoke]map[*lang.Method]bool, st.Methods),
		ciMethods:   make(map[*lang.Method]bool, st.Methods),
		castSeen:    make(map[castInstKey]bool),
		masks:       make(map[*lang.Class]*classMask),
		sccTrigger:  sccMinTrigger,
	}
	s.emptyHeap = s.ctxt.Empty()
	s.span = sp
	// Poll the context only when it can actually fire. A nil Done channel
	// means the context can never be cancelled and carries no deadline —
	// context.Background(), or any value-only child of it. The previous
	// identity comparison (ctx != context.Background()) misclassified
	// semantically-background contexts like context.WithValue(Background,…)
	// and panics outright on uncomparable Context implementations.
	if ctx.Done() != nil {
		s.ctx = ctx
	}
	s.meter = opts.Meter
	if opts.Renumber && !opts.NoOpt {
		// The renumbering layout must exist before any object interns —
		// including warm-seeded ones — so it runs ahead of opts.seed.
		rsp := sp.Ctx().Start(faultinject.StageRenumber)
		defer rsp.CloseAborted() // no-op on the normal path; closes the span if the seam panics
		if err := faultinject.Fire(faultinject.StageRenumber); err != nil {
			rsp.Close(err)
			return nil, fmt.Errorf("pta: renumbering failed: %w", err)
		}
		s.ren = buildRenumbering(prog, opts.Heap)
		s.csobjs = make([]*CSObj, s.ren.reserved)
		rsp.Add("reserved_slots", int64(s.ren.reserved))
		rsp.Add("span_classes", int64(len(s.ren.spans)))
		rsp.End()
	}
	if workers := normalizeWorkers(opts.Parallel); workers >= 2 && !opts.NoOpt {
		s.par = newParEngine(s, workers, opts.parThreshold)
	}
	start := time.Now()
	if opts.Budget.Time > 0 {
		s.deadline = start.Add(opts.Budget.Time)
		s.hasTimeout = true
	}
	if opts.seed != nil {
		// Warm-start seeding: install retained facts below the fixpoint
		// with no worklist entries, so the run converges by constraint
		// replay instead of propagation cascades. Seed errors (resource
		// exhaustion, cancellation) abort before any solving happened.
		if err := opts.seed(s); err != nil {
			return nil, fmt.Errorf("pta: seeding failed: %w", err)
		}
	}
	aborted, cancelled, exhausted := s.run()
	s.recordSpan(sp)
	if cancelled {
		return nil, fmt.Errorf("pta: analysis interrupted after %d work units: %w", s.work, ctx.Err())
	}
	if exhausted {
		return nil, fmt.Errorf("pta: analysis stopped after %d work units: %w", s.work, s.meterErr)
	}
	return &Result{
		Prog:     prog,
		Opts:     opts,
		Aborted:  aborted,
		Work:     s.work,
		Duration: time.Since(start),
		solver:   s,
	}, nil
}

// recordSpan mirrors the run's Stats onto the solve span so the
// span-accounting tests can cross-check trace counters against
// Result.Stats and Report.Solver. Called on every non-panicking exit
// from run(), including budget/cancel aborts where the partial counters
// are still meaningful.
func (s *solver) recordSpan(sp trace.Span) {
	st := s.stats
	sp.Add("nodes", int64(len(s.nodes)))
	sp.Add("edges", int64(st.Edges))
	sp.Add("copy_edges", int64(st.CopyEdges))
	sp.Add("collapsed_sccs", int64(st.CollapsedSCCs))
	sp.Add("collapsed_nodes", int64(st.CollapsedNodes))
	sp.Add("scc_passes", int64(st.SCCPasses))
	sp.Add("propagated_bits", st.PropagatedBits)
	sp.Add("filter_masks", int64(st.FilterMasks))
	sp.Add("filter_mask_hits", st.FilterMaskHits)
	sp.Add("worklist_peak", int64(s.worklist.peak))
	sp.Add("work", s.work)
	if s.ren != nil {
		sp.Add("range_filter_hits", st.RangeFilterHits)
		sp.Add("tail_objects", int64(s.tailObjs))
	}
	if s.par != nil {
		sp.Add("shard_workers", int64(st.ShardWorkers))
		sp.Add("shard_phases", int64(st.ShardPhases))
		sp.Add("cross_shard_deltas", st.CrossShardDeltas)
		sp.Add("termination_epochs", int64(st.TerminationEpochs))
	}
}

// run executes the worklist loop; aborted reports a legacy work-budget
// overrun, cancelled a context cancellation, exhausted a resource-meter
// overrun (the error itself is in s.meterErr).
func (s *solver) run() (aborted, cancelled, exhausted bool) {
	defer func() {
		// chargeWork/chargeWords unwind deep processing chains via panic
		// when a budget runs out or the context is cancelled — including
		// mid-collapse, while a Tarjan pass is active; anything else is a
		// real bug and is re-raised (to be typed by SolveContext's stage
		// guard).
		switch r := recover(); r {
		case nil:
		case errBudgetSentinel:
			aborted = true
		case errCancelSentinel:
			cancelled = true
		case errMeterSentinel:
			exhausted = true
		default:
			panic(r)
		}
	}()
	s.makeReachable(s.ctxt.Empty(), s.prog.Entry)
	for {
		if !s.opts.NoOpt && s.newCopyEdges >= s.sccTrigger {
			s.collapseCycles()
		}
		if s.par != nil && s.worklist.len() >= s.par.threshold {
			// Enough independent propagation queued up to amortize a
			// parallel phase: freeze the graph, fan the worklist out to
			// the shard workers, then fold the deferred graph-growth work
			// (var-site firing) back into this sequential loop.
			s.par.runPhase()
			continue
		}
		id, ok := s.worklist.pop()
		if !ok {
			break
		}
		s.queued[id] = false
		delta := s.pending[id]
		s.pending[id] = nil
		if rep := s.find(id); rep != id {
			// Collapsed while queued: its delta (if any) belongs to the
			// representative now.
			if delta != nil {
				s.addPts(rep, delta)
				s.releaseSet(delta)
			}
			continue
		}
		if delta == nil || delta.IsEmpty() {
			s.releaseSet(delta)
			continue
		}
		s.chargeWork(int64(delta.Len()))
		s.stats.PropagatedBits += int64(delta.Len())
		// Do not hold a *node across the calls below: processing may
		// append to s.nodes and invalidate interior pointers. Edges
		// appended to succ mid-loop are fine to miss — addEdge replays
		// the full points-to set (delta included) across new edges.
		succ := s.nodes[id].succ
		for _, e := range succ {
			s.addPts(e.to, s.filtered(delta, e.filter))
		}
		if info := s.nodes[id].info; info != nil {
			s.processVarDelta(info, delta)
		}
		for _, vi := range s.nodes[id].merged {
			s.processVarDelta(vi, delta)
		}
		s.releaseSet(delta)
	}
	return false, false, false
}

var (
	errBudgetSentinel = new(int)
	errCancelSentinel = new(int)
	errMeterSentinel  = new(int)
)

func (s *solver) chargeWork(units int64) {
	s.work += units
	if s.opts.Budget.Work > 0 && s.work > s.opts.Budget.Work {
		panic(errBudgetSentinel)
	}
	if err := s.meter.AddFacts(units); err != nil {
		s.meterErr = err
		panic(errMeterSentinel)
	}
	if s.work%4096 < units { // periodic checks, amortized over ~4096 units
		if s.hasTimeout && time.Now().After(s.deadline) {
			panic(errBudgetSentinel)
		}
		if s.ctx != nil && s.ctx.Err() != nil {
			panic(errCancelSentinel)
		}
	}
}

// chargeWords meters growth (or, negative, shrinkage) of live
// points-to-set storage. Like chargeWork it unwinds via sentinel, so
// exhaustion aborts cleanly from any depth — including mid-collapse.
func (s *solver) chargeWords(words int) {
	if s.meter == nil || words == 0 {
		return
	}
	if err := s.meter.AddWords(int64(words)); err != nil {
		s.meterErr = err
		panic(errMeterSentinel)
	}
}

// pollInterrupt is the no-work-charged variant of chargeWork's periodic
// checks, called from the collapse pass (which performs graph work that
// the deterministic fact counter deliberately excludes).
func (s *solver) pollInterrupt() {
	if s.hasTimeout && time.Now().After(s.deadline) {
		panic(errBudgetSentinel)
	}
	if s.ctx != nil && s.ctx.Err() != nil {
		panic(errCancelSentinel)
	}
}

// find resolves a node id to its cycle representative; the identity
// until the first collapse (and always under NoOpt).
//
//lint:phase-sequential path-compresses parent links; the engine flattens the forest pre-phase so workers never need it
func (s *solver) find(id int) int {
	if s.reps == nil || id >= s.reps.Len() {
		return id
	}
	return s.reps.Find(id)
}

// ptsAt returns the points-to set of id's representative. The pointer
// is only valid until the next node append or collapse.
func (s *solver) ptsAt(id int) *bitset.Set {
	return &s.nodes[s.find(id)].pts
}

// grabSet returns an empty delta set, reusing a released one if
// available (the steady state allocates nothing).
func (s *solver) grabSet() *bitset.Set {
	if n := len(s.freeSets); n > 0 {
		p := s.freeSets[n-1]
		s.freeSets = s.freeSets[:n-1]
		return p
	}
	return &bitset.Set{}
}

func (s *solver) releaseSet(p *bitset.Set) {
	if p == nil {
		return
	}
	p.Clear()
	s.freeSets = append(s.freeSets, p)
}

// mask returns filter's class-indexed object mask, extending it over
// any CSObjs interned since the last use.
//
//lint:phase-sequential lazily extends the mask map; prep warms every mask so workers only ever read them
func (s *solver) mask(filter *lang.Class) *bitset.Set {
	m := s.masks[filter]
	if m == nil {
		m = &classMask{}
		s.masks[filter] = m
		s.stats.FilterMasks++
	}
	for _, id := range s.internLog[m.upTo:] {
		if s.csobjs[id].Obj.Type.SubtypeOf(filter) {
			m.set.Add(int(id))
		}
	}
	m.upTo = len(s.internLog)
	return &m.set
}

// filtered returns delta restricted to objects whose type is a subtype
// of filter; a nil filter returns delta unchanged. The result may alias
// the solver's scratch buffer and must be consumed before the next
// filtered call.
func (s *solver) filtered(delta *bitset.Set, filter *lang.Class) *bitset.Set {
	if filter == nil {
		return delta //lint:allow bitsetalias documented borrow passthrough: the result aliases an input the caller already borrows and must be consumed before the next filtered call
	}
	if s.opts.NoOpt {
		out := bitset.New(0)
		delta.ForEach(func(i int) bool {
			if s.csobjs[i].Obj.Type.SubtypeOf(filter) {
				out.Add(i)
			}
			return true
		})
		return out
	}
	if s.ren != nil && s.tailObjs == 0 {
		if sp, ok := s.ren.span(filter); ok {
			// Renumbering invariant: every subtype of a non-interface,
			// non-array filter lives in one reserved ID interval, so the
			// filter is a word-range intersection — and when the whole
			// delta already lies inside the range, no copy at all.
			s.stats.RangeFilterHits++
			if delta.OnesInRange(sp.lo, sp.hi) == delta.Len() {
				return delta //lint:allow bitsetalias documented borrow passthrough: the delta lies entirely inside the filter's ID range, so the filtered set IS the input
			}
			return bitset.IntersectRangeInto(&s.scratch, delta, sp.lo, sp.hi)
		}
	}
	s.stats.FilterMaskHits++
	return bitset.IntersectInto(&s.scratch, delta, s.mask(filter))
}

func (s *solver) newNode(kind nodeKind, info *varInfo) int {
	id := len(s.nodes)
	s.nodes = append(s.nodes, node{kind: kind, info: info})
	s.queued = append(s.queued, false)
	s.pending = append(s.pending, nil)
	return id
}

func (s *solver) varNode(ctx *Context, v *lang.Var) int {
	k := varKey{ctx, v}
	if id, ok := s.varNodes[k]; ok {
		return id
	}
	id := s.newNode(nVar, &varInfo{ctx: ctx, v: v})
	s.varNodes[k] = id
	s.varIndex[v] = append(s.varIndex[v], id)
	return id
}

func (s *solver) fieldNode(obj int, f *lang.Field) int {
	k := fieldKey{obj, f}
	if id, ok := s.fieldNodes[k]; ok {
		return id
	}
	id := s.newNode(nInstField, nil)
	s.fieldNodes[k] = id
	return id
}

func (s *solver) staticNode(f *lang.Field) int {
	if id, ok := s.staticNodes[f]; ok {
		return id
	}
	id := s.newNode(nStaticField, nil)
	s.staticNodes[f] = id
	return id
}

// csObj interns the (heap context, object) pair. Under renumbering a
// context-insensitive object takes the next free slot of its class's
// reserved ID block; context-sensitive objects (and block overflow from
// a foreign heap model) take dynamic tail IDs past the reserved region,
// which disables the range-filter fast path but never affects
// correctness.
func (s *solver) csObj(ctx *Context, o *Obj) int {
	k := ctxObjKey{ctx, o}
	if id, ok := s.objCtxIdx[k]; ok {
		return id
	}
	id := -1
	if s.ren != nil {
		if ctx == s.emptyHeap {
			if blk := s.ren.blocks[o.Type]; blk != nil && blk.next < blk.hi {
				id = blk.next
				blk.next++
			}
		}
		if id < 0 {
			id = len(s.csobjs)
			s.csobjs = append(s.csobjs, nil)
			s.tailObjs++
		}
		s.csobjs[id] = &CSObj{ID: id, Ctx: ctx, Obj: o}
	} else {
		id = len(s.csobjs)
		s.csobjs = append(s.csobjs, &CSObj{ID: id, Ctx: ctx, Obj: o})
	}
	s.numCSObjs++
	s.internLog = append(s.internLog, int32(id))
	s.objCtxIdx[k] = id
	return id
}

// addPts merges set into node id's points-to set, queueing the newly
// added part for propagation. set is only read, never retained.
//
//lint:phase-sequential calls find and the global worklist; workers use localAddPts on owned shards instead
func (s *solver) addPts(id int, set *bitset.Set) {
	if set == nil || set.IsEmpty() {
		return
	}
	id = s.find(id)
	p := s.pending[id]
	fresh := p == nil
	if fresh {
		p = s.grabSet()
	}
	wordsBefore := s.nodes[id].pts.Words()
	if s.nodes[id].pts.UnionInto(set, p) == 0 {
		if fresh {
			s.releaseSet(p)
		}
		return
	}
	if fresh {
		s.pending[id] = p
	}
	s.queue(id)
	s.chargeWords(s.nodes[id].pts.Words() - wordsBefore)
}

// addPtsOne adds a single object without building a one-bit set.
//
//lint:phase-sequential see addPts
func (s *solver) addPtsOne(id, obj int) {
	id = s.find(id)
	wordsBefore := s.nodes[id].pts.Words()
	if !s.nodes[id].pts.Add(obj) {
		return
	}
	s.chargeWords(s.nodes[id].pts.Words() - wordsBefore)
	p := s.pending[id]
	if p == nil {
		p = s.grabSet()
		s.pending[id] = p
	}
	p.Add(obj)
	s.queue(id)
}

//lint:phase-sequential pushes onto the coordinator's global worklist; workers queue onto their private rings instead
func (s *solver) queue(id int) {
	if !s.queued[id] {
		s.queued[id] = true
		s.worklist.push(id)
	}
}

// addEdge inserts a flow edge and replays the source's current
// points-to set across it. Duplicate edges are suppressed — by a linear
// scan while the successor list is short, by a hash set once it grows.
func (s *solver) addEdge(from, to int, filter *lang.Class) {
	s.addEdgeIf(from, to, filter, true)
}

// addEdgeIf is addEdge with the replay made optional. The warm seeder
// passes replay=false for edges whose target's set was installed from
// the base fixpoint and already contains everything the source would
// push — skipping those full-set unions is most of the seeding win.
func (s *solver) addEdgeIf(from, to int, filter *lang.Class, replay bool) {
	from, to = s.find(from), s.find(to)
	if from == to && filter == nil {
		return
	}
	n := &s.nodes[from]
	e := edge{to: to, filter: filter}
	if n.edgeSet != nil {
		if _, dup := n.edgeSet[e]; dup {
			return
		}
		n.edgeSet[e] = struct{}{}
	} else {
		for _, old := range n.succ {
			if old == e {
				return
			}
		}
		if len(n.succ) >= dupEdgeThreshold {
			n.edgeSet = make(map[edge]struct{}, len(n.succ)+1)
			for _, old := range n.succ {
				n.edgeSet[old] = struct{}{}
			}
			n.edgeSet[e] = struct{}{}
		}
	}
	n.succ = append(n.succ, e)
	s.stats.Edges++
	if filter == nil {
		s.stats.CopyEdges++
		s.newCopyEdges++
	} else if s.par != nil {
		// The parallel engine pre-extends every filter's mask before a
		// phase (workers read masks but never build them), so each
		// distinct filter class must be on record the moment its first
		// edge exists.
		s.par.trackFilter(filter)
	}
	if replay && !n.pts.IsEmpty() {
		s.addPts(to, s.filtered(&n.pts, filter))
	}
}

// makeReachable marks (ctx, m) reachable and processes its body once.
func (s *solver) makeReachable(ctx *Context, m *lang.Method) {
	k := csMethodKey{ctx, m}
	if s.reachable[k] {
		return
	}
	if m.IsAbstract {
		panic(fmt.Sprintf("pta: abstract method %s became reachable", m))
	}
	s.reachable[k] = true
	s.reachList = append(s.reachList, k)
	s.ciMethods[m] = true
	s.chargeWork(1)
	for _, st := range m.Stmts {
		s.processStmt(ctx, m, st)
	}
}

func (s *solver) processStmt(ctx *Context, m *lang.Method, st lang.Stmt) {
	switch stmt := st.(type) {
	case *lang.Alloc:
		obj := s.opts.Heap.Obj(stmt.Site)
		var hctx *Context
		if obj.CtxInsensitive {
			hctx = s.emptyHeap
		} else {
			hctx = s.opts.Selector.HeapContext(s.ctxt, ctx, obj)
		}
		cs := s.csObj(hctx, obj)
		s.addPtsOne(s.varNode(ctx, stmt.LHS), cs)

	case *lang.Copy:
		s.addEdge(s.varNode(ctx, stmt.RHS), s.varNode(ctx, stmt.LHS), nil)

	case *lang.Cast:
		rhs := s.varNode(ctx, stmt.RHS)
		s.addEdge(rhs, s.varNode(ctx, stmt.LHS), stmt.Type)
		ck := castInstKey{ctx, stmt}
		if !s.castSeen[ck] {
			s.castSeen[ck] = true
			s.casts = append(s.casts, castSite{stmt: stmt, rhsNode: rhs})
		}

	case *lang.Load:
		base := s.varNode(ctx, stmt.Base)
		ls := loadSite{field: stmt.Field, lhs: s.varNode(ctx, stmt.LHS)}
		info := s.nodes[base].info
		info.loads = append(info.loads, ls)
		s.replayBase(base, func(obj int) { s.applyLoad(obj, ls) })

	case *lang.Store:
		base := s.varNode(ctx, stmt.Base)
		ss := storeSite{field: stmt.Field, rhs: s.varNode(ctx, stmt.RHS)}
		info := s.nodes[base].info
		info.stores = append(info.stores, ss)
		s.replayBase(base, func(obj int) { s.applyStore(obj, ss) })

	case *lang.StaticLoad:
		s.addEdge(s.staticNode(stmt.Field), s.varNode(ctx, stmt.LHS), nil)

	case *lang.StaticStore:
		s.addEdge(s.varNode(ctx, stmt.RHS), s.staticNode(stmt.Field), nil)

	case *lang.Invoke:
		switch stmt.Kind {
		case lang.StaticCall:
			calleeCtx := s.opts.Selector.CalleeContext(s.ctxt, ctx, stmt, stmt.Callee, nil)
			s.addCallEdge(ctx, stmt, calleeCtx, stmt.Callee, -1)
		default: // virtual and special calls dispatch/bind per receiver object
			base := s.varNode(ctx, stmt.Base)
			info := s.nodes[base].info
			info.invokes = append(info.invokes, stmt)
			s.replayBase(base, func(obj int) { s.applyInvoke(ctx, obj, stmt) })
		}

	case *lang.Return:
		if stmt.Value != nil && m.RetVar != nil {
			s.addEdge(s.varNode(ctx, stmt.Value), s.varNode(ctx, m.RetVar), nil)
		}

	case *lang.Throw:
		s.addEdge(s.varNode(ctx, stmt.Value), s.varNode(ctx, m.ExcVar()), nil)

	case *lang.Catch:
		s.addEdge(s.varNode(ctx, m.ExcVar()), s.varNode(ctx, stmt.LHS), stmt.Type)

	default:
		panic(fmt.Sprintf("pta: unknown statement %T", st))
	}
}

// replayBase applies fn to every object already in base's points-to
// set; future objects are handled by processVarDelta. It iterates a
// snapshot: callbacks may grow the live set through addPts (e.g. the
// self-load `x = x.f`), and bits added mid-replay reach fn later via
// the pending delta instead of a mutating iteration.
func (s *solver) replayBase(base int, fn func(obj int)) {
	pts := s.ptsAt(base)
	if pts.IsEmpty() {
		return
	}
	snap := pts.Clone()
	snap.ForEach(func(i int) bool {
		fn(i)
		return true
	})
}

// processVarDelta reacts to growth of a variable's points-to set.
func (s *solver) processVarDelta(info *varInfo, delta *bitset.Set) {
	ctx := info.ctx
	delta.ForEach(func(obj int) bool {
		for _, ld := range info.loads {
			s.applyLoad(obj, ld)
		}
		for _, st := range info.stores {
			s.applyStore(obj, st)
		}
		for _, inv := range info.invokes {
			s.applyInvoke(ctx, obj, inv)
		}
		return true
	})
}

func (s *solver) applyLoad(obj int, ld loadSite) {
	s.addEdge(s.fieldNode(obj, ld.field), ld.lhs, nil)
}

func (s *solver) applyStore(obj int, st storeSite) {
	s.addEdge(st.rhs, s.fieldNode(obj, st.field), nil)
}

// applyInvoke dispatches inv on receiver object obj and wires the call
// edge. There is deliberately no (ctx, inv, obj) seen-cache in front of
// it: deltas are disjoint from previously propagated bits, so a pair
// can repeat only through a statement replay overlapping a pending
// delta or a post-collapse re-propagation — both bounded — and
// addCallEdge deduplicates the edge itself. The former cache's hashing
// and rehash churn dominated the solver's profile.
func (s *solver) applyInvoke(ctx *Context, obj int, inv *lang.Invoke) {
	recv := s.csobjs[obj]
	var callee *lang.Method
	if inv.Kind == lang.SpecialCall {
		callee = inv.Callee
	} else {
		callee = recv.Obj.Type.Dispatch(inv.Callee.Sig())
		if callee == nil {
			// No implementation for this runtime type (e.g. an object of an
			// unrelated type flowed here imprecisely); skip, as a JVM would
			// never reach this state.
			return
		}
	}
	calleeCtx := s.opts.Selector.CalleeContext(s.ctxt, ctx, inv, callee, recv)
	s.addCallEdge(ctx, inv, calleeCtx, callee, obj)
}

// addCallEdge links a (caller, call-site) to a (calleeCtx, callee):
// binds the receiver, wires argument/return edges once per edge, and
// makes the callee reachable.
func (s *solver) addCallEdge(callerCtx *Context, inv *lang.Invoke, calleeCtx *Context, callee *lang.Method, recvObj int) {
	s.makeReachable(calleeCtx, callee)
	if recvObj >= 0 && callee.This != nil {
		s.addPtsOne(s.varNode(calleeCtx, callee.This), recvObj)
	}
	k := callEdgeKey{callerCtx, inv, calleeCtx, callee}
	if s.callEdges[k] {
		return
	}
	s.callEdges[k] = true
	tgts := s.ciEdges[inv]
	if tgts == nil {
		tgts = make(map[*lang.Method]bool)
		s.ciEdges[inv] = tgts
	}
	tgts[callee] = true
	for i, a := range inv.Args {
		s.addEdge(s.varNode(callerCtx, a), s.varNode(calleeCtx, callee.Params[i]), nil)
	}
	if inv.LHS != nil && callee.RetVar != nil {
		s.addEdge(s.varNode(calleeCtx, callee.RetVar), s.varNode(callerCtx, inv.LHS), nil)
	}
	// Exceptions escaping the callee may escape the caller too. The edge
	// is added unconditionally: the callee's $exc may only be populated
	// later (e.g. by a throw in one of its own callees), and an edge
	// over still-empty sets costs nothing.
	s.addEdge(s.varNode(calleeCtx, callee.ExcVar()), s.varNode(callerCtx, inv.In.ExcVar()), nil)
}
