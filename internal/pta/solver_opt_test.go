package pta

import (
	"fmt"
	"sort"
	"testing"

	"mahjong/internal/lang"
	"mahjong/internal/synth"
)

// buildSelfLoadChain builds the program that exposed the replayBase
// mutation-during-iteration bug:
//
//	n1 = new A; n2 = new A; n3 = new A
//	n1.f = n2; n2.f = n3
//	x = n1
//	x = x.f        // lhs and base are the same variable
//
// The load both reads x's set and grows it, so replaying the base set
// while iterating it live would skip elements (or loop). At the
// fixpoint x must point to all three objects.
func buildSelfLoadChain(t *testing.T) (*lang.Program, *lang.Var) {
	t.Helper()
	p := lang.NewProgram()
	a := p.NewClass("A", nil)
	f := a.NewField("f", a)
	mainCls := p.NewClass("Main", nil)
	m := mainCls.NewMethod("main", true, nil, nil)
	n1 := m.NewVar("n1", a)
	n2 := m.NewVar("n2", a)
	n3 := m.NewVar("n3", a)
	x := m.NewVar("x", a)
	m.AddAlloc(n1, a)
	m.AddAlloc(n2, a)
	m.AddAlloc(n3, a)
	m.AddStore(n1, f, n2)
	m.AddStore(n2, f, n3)
	m.AddCopy(x, n1)
	m.AddLoad(x, x, f) // x = x.f
	m.AddReturn(nil)
	p.SetEntry(m)
	if err := p.Validate(); err != nil {
		t.Fatalf("program invalid: %v", err)
	}
	return p, x
}

func TestSelfLoadReplayRegression(t *testing.T) {
	for _, noOpt := range []bool{false, true} {
		prog, x := buildSelfLoadChain(t)
		r, err := Solve(prog, Options{NoOpt: noOpt})
		if err != nil {
			t.Fatalf("Solve(noOpt=%v): %v", noOpt, err)
		}
		objs := r.VarObjs(x)
		if len(objs) != 3 {
			t.Fatalf("noOpt=%v: x points to %d objects (%v), want 3", noOpt, len(objs), objs)
		}
	}
}

// buildCopyCycle builds a program whose n variables form one large
// filter-free copy cycle fed by a single allocation, with a load/store
// pair hanging off one member so that merged varInfos keep firing.
func buildCopyCycle(t *testing.T, n int) (*lang.Program, []*lang.Var, *lang.Var) {
	t.Helper()
	p := lang.NewProgram()
	a := p.NewClass("A", nil)
	f := a.NewField("f", a)
	mainCls := p.NewClass("Main", nil)
	m := mainCls.NewMethod("main", true, nil, nil)
	vars := make([]*lang.Var, n)
	for i := range vars {
		vars[i] = m.NewVar(fmt.Sprintf("v%d", i), a)
	}
	m.AddAlloc(vars[0], a)
	for i := range vars {
		m.AddCopy(vars[(i+1)%n], vars[i])
	}
	// A store and a load through a cycle member: the field points-to
	// relation must survive the member being folded into a rep.
	other := m.NewVar("other", a)
	out := m.NewVar("out", a)
	m.AddAlloc(other, a)
	m.AddStore(vars[n/2], f, other)
	m.AddLoad(out, vars[n/3], f)
	m.AddReturn(nil)
	p.SetEntry(m)
	if err := p.Validate(); err != nil {
		t.Fatalf("program invalid: %v", err)
	}
	return p, vars, out
}

func TestCopyCycleCollapse(t *testing.T) {
	// 4*sccMinTrigger copy edges guarantees the lazy trigger fires.
	prog, vars, out := buildCopyCycle(t, 4*sccMinTrigger)
	r, err := Solve(prog, Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	st := r.Stats()
	if st.CollapsedSCCs < 1 {
		t.Fatalf("no SCC collapsed: %+v", st)
	}
	if st.CollapsedNodes < len(vars)-1 {
		t.Fatalf("collapsed %d nodes, want >= %d", st.CollapsedNodes, len(vars)-1)
	}
	for _, v := range vars {
		objs := r.VarObjs(v)
		if len(objs) != 1 {
			t.Fatalf("%s points to %d objects, want 1 (the allocation circulating the cycle)", v.Name, len(objs))
		}
	}
	if objs := r.VarObjs(out); len(objs) != 1 {
		t.Fatalf("out points to %d objects, want 1 (field load through collapsed node)", len(objs))
	}

	// The NoOpt run must agree object-for-object and report no collapses.
	rn, err := Solve(prog, Options{NoOpt: true})
	if err != nil {
		t.Fatalf("Solve(NoOpt): %v", err)
	}
	if sn := rn.Stats(); sn.CollapsedSCCs != 0 || sn.SCCPasses != 0 || sn.FilterMaskHits != 0 {
		t.Fatalf("NoOpt run used optimizations: %+v", sn)
	}
	for _, v := range append(vars, out) {
		if got, want := varSiteLabels(r, v), varSiteLabels(rn, v); !equalStrings(got, want) {
			t.Fatalf("%s: opt=%v noopt=%v", v.Name, got, want)
		}
	}
}

// TestFilterMasksMatchSubtypeOf cross-checks every class mask the
// solver built against the per-bit SubtypeOf test it replaces.
func TestFilterMasksMatchSubtypeOf(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		prog := synth.RandomProgram(seed)
		r, err := Solve(prog, Options{})
		if err != nil {
			t.Fatalf("seed %d: Solve: %v", seed, err)
		}
		s := r.solver
		if len(s.masks) == 0 {
			continue // program happened to have no reachable casts
		}
		for cls, m := range s.masks {
			// upTo indexes the interning log, not the ID space: under
			// renumbering objects intern into reserved slots out of ID
			// order, and the log is what mask extension walks.
			if m.upTo > len(s.internLog) {
				t.Fatalf("seed %d: mask %s covers %d of %d interned objects", seed, cls.Name, m.upTo, len(s.internLog))
			}
			for _, id32 := range s.internLog[:m.upTo] {
				id := int(id32)
				want := s.csobjs[id].Obj.Type.SubtypeOf(cls)
				if got := m.set.Contains(id); got != want {
					t.Fatalf("seed %d: mask %s bit %d (%s) = %v, SubtypeOf = %v",
						seed, cls.Name, id, s.csobjs[id], got, want)
				}
			}
		}
	}
}

// varSiteLabels projects a variable's points-to set onto stable
// allocation-site labels. Obj and CSObj IDs depend on interning order,
// which the optimizations may permute, so equivalence checks must
// compare through the underlying lang.AllocSite identities instead.
func varSiteLabels(r *Result, v *lang.Var) []string {
	var out []string
	for _, o := range r.VarObjs(v) {
		out = append(out, o.Rep.Label)
	}
	sort.Strings(out)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// castKey is a stable identity for a reachable cast's incoming set.
func castSets(r *Result) map[*lang.Cast][]string {
	out := make(map[*lang.Cast][]string)
	for _, rc := range r.ReachableCasts() {
		var labels []string
		for _, o := range rc.Incoming {
			labels = append(labels, o.Rep.Label)
		}
		sort.Strings(labels)
		out[rc.Stmt] = labels
	}
	return out
}

// TestOptimizedSolverEquivalence is the randomized A/B: for a spread of
// generated programs and selectors, the optimized solver must produce
// exactly the same points-to sets, call graph, reachable-method set and
// cast facts as the naive NoOpt solver.
func TestOptimizedSolverEquivalence(t *testing.T) {
	selectors := []Selector{nil, KObj{K: 2}} // nil = default CI
	for seed := int64(1); seed <= 10; seed++ {
		prog := synth.RandomProgram(seed)
		for _, sel := range selectors {
			name := "ci"
			if sel != nil {
				name = sel.Name()
			}
			opt, err := Solve(prog, Options{Selector: sel})
			if err != nil {
				t.Fatalf("seed %d %s: Solve: %v", seed, name, err)
			}
			naive, err := Solve(prog, Options{Selector: sel, NoOpt: true})
			if err != nil {
				t.Fatalf("seed %d %s: Solve(NoOpt): %v", seed, name, err)
			}

			if got, want := opt.NumReachableMethods(), naive.NumReachableMethods(); got != want {
				t.Fatalf("seed %d %s: reachable methods %d vs %d", seed, name, got, want)
			}

			// Per-variable points-to sets over every local of every method.
			for _, m := range prog.Methods {
				for _, v := range m.Locals {
					got, want := varSiteLabels(opt, v), varSiteLabels(naive, v)
					if !equalStrings(got, want) {
						t.Fatalf("seed %d %s: pts(%s.%s) differ:\n opt:   %v\n naive: %v",
							seed, name, m, v.Name, got, want)
					}
				}
			}

			// Call graph: both edge lists are sorted by stable lang IDs
			// over the same shared program, so they must match 1:1.
			ge, we := opt.CallGraphEdges(), naive.CallGraphEdges()
			if len(ge) != len(we) {
				t.Fatalf("seed %d %s: %d vs %d call edges", seed, name, len(ge), len(we))
			}
			for i := range ge {
				if ge[i] != we[i] {
					t.Fatalf("seed %d %s: edge %d: %v->%v vs %v->%v", seed, name, i,
						ge[i].Site.Label(), ge[i].Callee, we[i].Site.Label(), we[i].Callee)
				}
			}

			// Casts: discovery order may differ, so compare as a map.
			gc, wc := castSets(opt), castSets(naive)
			if len(gc) != len(wc) {
				t.Fatalf("seed %d %s: %d vs %d reachable casts", seed, name, len(gc), len(wc))
			}
			for stmt, labels := range gc {
				if !equalStrings(labels, wc[stmt]) {
					t.Fatalf("seed %d %s: cast %v incoming differ:\n opt:   %v\n naive: %v",
						seed, name, stmt, labels, wc[stmt])
				}
			}
		}
	}
}
