package pta

// Stats are the solver's internal performance counters, exposed through
// Result.Stats for observability (cmd/mahjong -stats, mahjongd
// /metrics) and for the optimization regression tests. All counters are
// deterministic for a given program and Options, except under a
// parallel solve (Options.Parallel >= 2) where scheduling-dependent
// counters — PropagatedBits, FilterMaskHits, RangeFilterHits,
// CrossShardDeltas, TerminationEpochs, ShardPhases — vary run to run
// (the analysis *result* stays equivalent; only how much redundant
// propagation the schedule produced differs).
type Stats struct {
	// Nodes is the number of pointer nodes created (including nodes
	// later folded into a cycle representative).
	Nodes int `json:"nodes"`
	// Edges is the number of distinct flow edges inserted.
	Edges int `json:"edges"`
	// CopyEdges is the filter-free subset of Edges — the subgraph the
	// cycle collapser condenses.
	CopyEdges int `json:"copy_edges"`
	// CollapsedSCCs counts copy cycles collapsed onto a representative;
	// CollapsedNodes counts the member nodes folded away.
	CollapsedSCCs  int `json:"collapsed_sccs"`
	CollapsedNodes int `json:"collapsed_nodes"`
	// SCCPasses counts condensation passes over the copy subgraph.
	SCCPasses int `json:"scc_passes"`
	// PropagatedBits is the total number of points-to facts pushed out
	// of the worklist (the solver's real throughput measure; equals
	// Result.Work for unaborted runs).
	PropagatedBits int64 `json:"propagated_bits"`
	// FilterMasks is the number of distinct cast/catch filter classes
	// for which a class-indexed object mask was built; FilterMaskHits
	// counts filtered propagations served by a mask's word-level
	// intersection instead of per-object subtype tests.
	FilterMasks    int   `json:"filter_masks"`
	FilterMaskHits int64 `json:"filter_mask_hits"`
	// RangeFilterHits counts filtered propagations served by a
	// renumbered [lo,hi) word-range intersection — cheaper than even a
	// mask hit, since no mask set is consulted at all.
	RangeFilterHits int64 `json:"range_filter_hits,omitempty"`
	// TailObjects counts objects interned past the renumbered reserved
	// blocks (context-sensitive objects and reserved-block overflow); a
	// nonzero value disables the range fast path for the whole run.
	TailObjects int `json:"tail_objects,omitempty"`
	// WorklistPeak is the high-water mark of the worklist ring.
	WorklistPeak int `json:"worklist_peak"`

	// Parallel-engine counters; all zero on sequential runs.
	//
	// ShardWorkers is the worker count the engine ran with; ShardPhases
	// the number of parallel propagation phases; CrossShardDeltas the
	// points-to delta messages exchanged between shards over the SPSC
	// queues; TerminationEpochs the detector scans summed over phases;
	// ShardWorklistPeak the high-water mark across per-shard rings.
	// There is no steal counter: ownership of a node's points-to state
	// is what makes worker writes lock-free, so the engine deliberately
	// never steals (see docs/PARALLEL.md).
	ShardWorkers      int   `json:"shard_workers,omitempty"`
	ShardPhases       int   `json:"shard_phases,omitempty"`
	CrossShardDeltas  int64 `json:"cross_shard_deltas,omitempty"`
	TerminationEpochs int   `json:"termination_epochs,omitempty"`
	ShardWorklistPeak int   `json:"shard_worklist_peak,omitempty"`
}

// Stats returns the solver's performance counters for this run.
func (r *Result) Stats() Stats {
	st := r.solver.stats
	st.Nodes = len(r.solver.nodes)
	st.WorklistPeak = r.solver.worklist.peak
	if r.solver.ren != nil {
		st.TailObjects = r.solver.tailObjs
	}
	return st
}
