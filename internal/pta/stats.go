package pta

// Stats are the solver's internal performance counters, exposed through
// Result.Stats for observability (cmd/mahjong -stats, mahjongd
// /metrics) and for the optimization regression tests. All counters are
// deterministic for a given program and Options.
type Stats struct {
	// Nodes is the number of pointer nodes created (including nodes
	// later folded into a cycle representative).
	Nodes int `json:"nodes"`
	// Edges is the number of distinct flow edges inserted.
	Edges int `json:"edges"`
	// CopyEdges is the filter-free subset of Edges — the subgraph the
	// cycle collapser condenses.
	CopyEdges int `json:"copy_edges"`
	// CollapsedSCCs counts copy cycles collapsed onto a representative;
	// CollapsedNodes counts the member nodes folded away.
	CollapsedSCCs  int `json:"collapsed_sccs"`
	CollapsedNodes int `json:"collapsed_nodes"`
	// SCCPasses counts condensation passes over the copy subgraph.
	SCCPasses int `json:"scc_passes"`
	// PropagatedBits is the total number of points-to facts pushed out
	// of the worklist (the solver's real throughput measure; equals
	// Result.Work for unaborted runs).
	PropagatedBits int64 `json:"propagated_bits"`
	// FilterMasks is the number of distinct cast/catch filter classes
	// for which a class-indexed object mask was built; FilterMaskHits
	// counts filtered propagations served by a mask's word-level
	// intersection instead of per-object subtype tests.
	FilterMasks    int   `json:"filter_masks"`
	FilterMaskHits int64 `json:"filter_mask_hits"`
	// WorklistPeak is the high-water mark of the worklist ring.
	WorklistPeak int `json:"worklist_peak"`
}

// Stats returns the solver's performance counters for this run.
func (r *Result) Stats() Stats {
	st := r.solver.stats
	st.Nodes = len(r.solver.nodes)
	st.WorklistPeak = r.solver.worklist.peak
	return st
}
