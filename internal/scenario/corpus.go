package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"mahjong/internal/lang"
	"mahjong/internal/parser"
)

// NamedWant pairs a corpus family name with its property targets.
type NamedWant struct {
	Name string
	Want Want
}

// CorpusWants returns the committed corpus' property families: the four
// target property classes, with thresholds chosen to strictly exceed
// the fixed 12-subject suite profile (field depth 2, zero polymorphic
// containers at 3+ types, zero near-miss families beyond depth 1, zero
// factory chains, fanout <= 10 — see TestSearchBeyondSuite), plus a
// combined stressor.
func CorpusWants() []NamedWant {
	return []NamedWant{
		{"fielddepth", Want{FieldDepth: 8}},
		{"polycontainers", Want{PolyContainers: 3, PolyContainerTypes: 4}},
		{"nearmiss", Want{NearMissFamilies: 2, NearMissFamilySize: 3, NearMissDepth: 3}},
		{"factorychain", Want{FactoryChainLen: 6}},
		{"fanout", Want{CallGraphFanout: 16}},
		{"combined", Want{
			FieldDepth: 6, PolyContainers: 2, NearMissFamilies: 2,
			FactoryChainLen: 4, CallGraphFanout: 12,
		}},
	}
}

// CorpusEntry is one committed program's provenance record.
type CorpusEntry struct {
	Name     string   `json:"name"`
	File     string   `json:"file"`
	Seed     int64    `json:"seed"`
	Scale    int      `json:"scale"`
	Want     Want     `json:"want"`
	Spec     Spec     `json:"spec"`
	Stmts    int      `json:"stmts"`
	Estimate Estimate `json:"estimate"`
	SHA256   string   `json:"sha256"`
}

// Manifest records how the corpus was produced, so `synthgen -search`
// can regenerate it byte-for-byte.
type Manifest struct {
	Generator string        `json:"generator"`
	Seed      int64         `json:"seed"`
	Scale     int           `json:"scale"`
	Entries   []CorpusEntry `json:"entries"`
}

// Generated is one searched corpus program plus its manifest entry.
type Generated struct {
	Entry CorpusEntry
	Prog  *lang.Program
	IR    string
}

// GenerateCorpus searches two programs per corpus family, fully
// determined by (seed, scale) — no wall clock, no map iteration order
// reaches the output — so regeneration is byte-for-byte reproducible.
func GenerateCorpus(seed int64, scale int) ([]Generated, error) {
	if scale < 1 {
		scale = 1
	}
	var out []Generated
	for i, nw := range CorpusWants() {
		for v := 0; v < 2; v++ {
			s := seed + int64(i*10+v)
			f, err := Search(nw.Want, Options{Seed: s, Scale: scale})
			if err != nil {
				return nil, fmt.Errorf("corpus %s-%d: %w", nw.Name, v, err)
			}
			ir := parser.Print(f.Prog)
			sum := sha256.Sum256([]byte(ir))
			name := fmt.Sprintf("%s-%d", nw.Name, v)
			out = append(out, Generated{
				Entry: CorpusEntry{
					Name:     name,
					File:     name + ".ir",
					Seed:     s,
					Scale:    scale,
					Want:     nw.Want,
					Spec:     f.Spec,
					Stmts:    f.Est.Stmts,
					Estimate: f.Est,
					SHA256:   hex.EncodeToString(sum[:]),
				},
				Prog: f.Prog,
				IR:   ir,
			})
		}
	}
	return out, nil
}

// WriteCorpus writes the .ir files and manifest.json into dir.
func WriteCorpus(dir string, seed int64, scale int, gens []Generated) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	man := Manifest{Generator: "synthgen -search", Seed: seed, Scale: scale}
	for _, g := range gens {
		if err := os.WriteFile(filepath.Join(dir, g.Entry.File), []byte(g.IR), 0o644); err != nil {
			return err
		}
		man.Entries = append(man.Entries, g.Entry)
	}
	sort.Slice(man.Entries, func(i, j int) bool { return man.Entries[i].Name < man.Entries[j].Name })
	buf, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "manifest.json"), append(buf, '\n'), 0o644)
}

// LoadCorpus reads a corpus directory, verifying each program against
// its manifest checksum and re-parsing it.
func LoadCorpus(dir string) ([]Generated, Manifest, error) {
	var man Manifest
	buf, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, man, err
	}
	if err := json.Unmarshal(buf, &man); err != nil {
		return nil, man, fmt.Errorf("corpus manifest: %w", err)
	}
	var out []Generated
	for _, e := range man.Entries {
		ir, err := os.ReadFile(filepath.Join(dir, e.File))
		if err != nil {
			return nil, man, err
		}
		sum := sha256.Sum256(ir)
		if got := hex.EncodeToString(sum[:]); got != e.SHA256 {
			return nil, man, fmt.Errorf("corpus %s: checksum mismatch (manifest %s, file %s) — regenerate with synthgen -search", e.Name, e.SHA256, got)
		}
		prog, err := parser.Parse(e.File, string(ir))
		if err != nil {
			return nil, man, fmt.Errorf("corpus %s: %w", e.Name, err)
		}
		out = append(out, Generated{Entry: e, Prog: prog, IR: string(ir)})
	}
	return out, man, nil
}
