package scenario

import (
	"path/filepath"
	"testing"
)

// TestCorpusManifestConsistent: the committed manifest's recorded
// estimates meet their wants, the spec cost matches the recorded
// statement count, and re-estimating the committed program reproduces
// the manifest numbers (checksums are already verified by LoadCorpus).
func TestCorpusManifestConsistent(t *testing.T) {
	gens, man, err := LoadCorpus(filepath.Join("..", "..", "testdata", "corpus"))
	if err != nil {
		t.Fatal(err)
	}
	if man.Seed != 1 || man.Scale != 1 {
		t.Fatalf("committed corpus provenance seed=%d scale=%d, want 1/1", man.Seed, man.Scale)
	}
	for _, g := range gens {
		e := g.Entry
		if !e.Want.Met(e.Estimate) {
			t.Errorf("%s: recorded estimate %+v does not meet want %+v", e.Name, e.Estimate, e.Want)
		}
		if e.Spec.Cost() != e.Stmts {
			t.Errorf("%s: spec cost %d != recorded stmts %d", e.Name, e.Spec.Cost(), e.Stmts)
		}
		if got := g.Prog.Stats().Stmts; got != e.Stmts {
			t.Errorf("%s: program has %d stmts, manifest says %d", e.Name, got, e.Stmts)
		}
		if re := e.Want.Thresholds().Estimate(g.Prog); re != e.Estimate {
			t.Errorf("%s: re-estimate %+v != manifest estimate %+v", e.Name, re, e.Estimate)
		}
	}
}

// TestGenerateCorpusDeterministic: the library layer under `synthgen
// -search` is itself byte-for-byte deterministic in (seed, scale).
func TestGenerateCorpusDeterministic(t *testing.T) {
	a, err := GenerateCorpus(7, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateCorpus(7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].IR != b[i].IR || a[i].Entry.SHA256 != b[i].Entry.SHA256 {
			t.Fatalf("entry %s not reproducible", a[i].Entry.Name)
		}
	}
}

// TestGenerateCorpusScaleTier: the 10x tier regenerates with the same
// families but an order of magnitude more motif mass per program.
func TestGenerateCorpusScaleTier(t *testing.T) {
	if testing.Short() {
		t.Skip("scale tier generation skipped in -short")
	}
	base, err := GenerateCorpus(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	big, err := GenerateCorpus(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(big) != len(base) {
		t.Fatalf("scale tier has %d entries, base %d", len(big), len(base))
	}
	var baseStmts, bigStmts int
	for i := range base {
		baseStmts += base[i].Entry.Stmts
		bigStmts += big[i].Entry.Stmts
		if !big[i].Entry.Want.Met(big[i].Entry.Estimate) {
			t.Errorf("scale entry %s does not meet its want", big[i].Entry.Name)
		}
	}
	if bigStmts < 5*baseStmts {
		t.Fatalf("scale tier total %d stmts, base %d — not a 10x tier", bigStmts, baseStmts)
	}
}
