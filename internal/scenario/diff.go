package scenario

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"mahjong"
	"mahjong/internal/clients"
	"mahjong/internal/delta"
	"mahjong/internal/lang"
	"mahjong/internal/parser"
	"mahjong/internal/pta"
)

// An Axis is one A/B comparison the differential harness runs a program
// through. Check analyzes the program both ways and returns a non-empty
// divergence description when the axis' oracle is violated; an error
// means the comparison itself could not run (infrastructure failure,
// not a divergence).
type Axis interface {
	Name() string
	Check(ctx context.Context, prog *lang.Program) (string, error)
}

// StandardAxes returns the four A/B axes:
//
//   - mahjong-vs-allocsite: an *ordering* oracle. The merged heap must
//     over-approximate the allocation-site baseline on the monotone
//     clients (call graph, casts, reachability, escape, taint);
//     nullness is exempt because it is not monotone under merging (see
//     clients.MayNullLoads).
//   - parallel-vs-sequential, warm-vs-cold incremental, and renumber
//     on/off: *equality* oracles — the repo documents all three as
//     result-identical, so any observable difference in metrics or
//     result projections is a bug.
func StandardAxes() []Axis {
	return []Axis{heapAxis{}, parallelAxis{}, incrementalAxis{}, renumberAxis{}}
}

// Divergence is one axis failure, with the shrunken reproducer when
// RunAndShrink produced one.
type Divergence struct {
	Axis         string
	Detail       string
	Reproducer   *lang.Program
	ReproducerIR string
}

// RunDifferential checks prog on every axis and collects divergences.
func RunDifferential(ctx context.Context, prog *lang.Program, axes []Axis) ([]Divergence, error) {
	var out []Divergence
	for _, ax := range axes {
		detail, err := ax.Check(ctx, prog)
		if err != nil {
			return out, fmt.Errorf("axis %s: %w", ax.Name(), err)
		}
		if detail != "" {
			out = append(out, Divergence{Axis: ax.Name(), Detail: detail})
		}
	}
	return out, nil
}

// RunAndShrink is RunDifferential plus automatic reproducer
// minimization: each divergence is shrunk to the smallest program on
// which its axis still diverges.
func RunAndShrink(ctx context.Context, prog *lang.Program, axes []Axis, so ShrinkOptions) ([]Divergence, error) {
	divs, err := RunDifferential(ctx, prog, axes)
	if err != nil {
		return divs, err
	}
	byName := map[string]Axis{}
	for _, ax := range axes {
		byName[ax.Name()] = ax
	}
	for i := range divs {
		ax := byName[divs[i].Axis]
		small := Shrink(prog, func(q *lang.Program) bool {
			d, err := ax.Check(ctx, q)
			return err == nil && d != ""
		}, so)
		divs[i].Reproducer = small
		divs[i].ReproducerIR = parser.Print(small)
	}
	return divs, nil
}

// ---- axis: Mahjong vs allocation-site (ordering oracle) ----

type heapAxis struct{}

func (heapAxis) Name() string { return "mahjong-vs-allocsite" }

func (heapAxis) Check(ctx context.Context, prog *lang.Program) (string, error) {
	base, err := mahjong.AnalyzeContext(ctx, prog, mahjong.Config{Analysis: "ci", Heap: mahjong.HeapAllocSite})
	if err != nil {
		return "", err
	}
	abs, err := mahjong.BuildAbstractionContext(ctx, prog, mahjong.AbstractionOptions{})
	if err != nil {
		return "", err
	}
	merged, err := mahjong.AnalyzeContext(ctx, prog, mahjong.Config{Analysis: "ci", Heap: mahjong.HeapMahjong, Abstraction: abs})
	if err != nil {
		return "", err
	}
	a, m := base.Metrics, merged.Metrics
	type ord struct {
		name     string
		lo, hi   int
		strictly string // which side must not exceed the other
	}
	checks := []ord{
		{"CallGraphEdges", a.CallGraphEdges, m.CallGraphEdges, "allocsite<=mahjong"},
		{"PolyCallSites", a.PolyCallSites, m.PolyCallSites, "allocsite<=mahjong"},
		{"MayFailCasts", a.MayFailCasts, m.MayFailCasts, "allocsite<=mahjong"},
		{"Reachable", a.Reachable, m.Reachable, "allocsite<=mahjong"},
		{"EscapingSites", a.EscapingSites, m.EscapingSites, "allocsite<=mahjong"},
		{"TaintSinks", a.TaintSinks, m.TaintSinks, "allocsite<=mahjong"},
		{"TaintedSinks", a.TaintedSinks, m.TaintedSinks, "allocsite<=mahjong"},
		{"StackAllocSites", m.StackAllocSites, a.StackAllocSites, "mahjong<=allocsite"},
	}
	for _, c := range checks {
		if c.lo > c.hi {
			return fmt.Sprintf("%s ordering violated (%s): %d vs %d", c.name, c.strictly, c.lo, c.hi), nil
		}
	}
	// Set-level soundness: every escaping site and tainted sink of the
	// baseline must survive the merge.
	if d := subsetOf("EscapingSites", escapeLabels(base.Result()), escapeLabels(merged.Result())); d != "" {
		return d, nil
	}
	if d := subsetOf("TaintedSinks", sinkLabels(base.Result()), sinkLabels(merged.Result())); d != "" {
		return d, nil
	}
	// Type-set soundness per variable (the pointed-to *type* sets are
	// what the paper proves near-lossless): baseline subset of merged.
	for _, meth := range prog.Methods {
		if meth.IsAbstract || !base.Result().ReachableMethod(meth) {
			continue
		}
		for _, v := range meth.Locals {
			bt := typeNames(base.Result().VarTypes(v))
			mt := typeNames(merged.Result().VarTypes(v))
			if d := subsetOf("VarTypes("+v.String()+")", bt, mt); d != "" {
				return d, nil
			}
		}
	}
	return "", nil
}

// ---- axis: parallel vs sequential (equality oracle) ----

type parallelAxis struct{}

func (parallelAxis) Name() string { return "parallel-vs-sequential" }

func (parallelAxis) Check(ctx context.Context, prog *lang.Program) (string, error) {
	seq, err := analysisSignature(ctx, prog, mahjong.Config{Analysis: "2obj", Heap: mahjong.HeapAllocSite, SolverWorkers: 1})
	if err != nil {
		return "", err
	}
	par, err := analysisSignature(ctx, prog, mahjong.Config{Analysis: "2obj", Heap: mahjong.HeapAllocSite, SolverWorkers: 3})
	if err != nil {
		return "", err
	}
	return firstDiff("sequential", seq, "parallel", par), nil
}

// ---- axis: warm vs cold incremental (equality oracle) ----

type incrementalAxis struct{}

func (incrementalAxis) Name() string { return "warm-vs-cold" }

func (incrementalAxis) Check(ctx context.Context, prog *lang.Program) (string, error) {
	edited, _, err := delta.RandomEdit(prog, rand.New(rand.NewSource(11)))
	if err != nil {
		// Some minimal programs admit no edit; the axis is then vacuous.
		return "", nil
	}
	var opts mahjong.AbstractionOptions
	_, state, _, err := mahjong.BuildAbstractionDelta(ctx, prog, opts, nil)
	if err != nil {
		return "", err
	}
	warmAbs, _, _, err := mahjong.BuildAbstractionDelta(ctx, edited, opts, state)
	if err != nil {
		return "", err
	}
	coldAbs, err := mahjong.BuildAbstractionContext(ctx, edited, opts)
	if err != nil {
		return "", err
	}
	if d := firstDiff("warm", momSignature(warmAbs), "cold", momSignature(coldAbs)); d != "" {
		return "abstraction " + d, nil
	}
	warm, err := analysisSignature(ctx, edited, mahjong.Config{Analysis: "ci", Heap: mahjong.HeapMahjong, Abstraction: warmAbs})
	if err != nil {
		return "", err
	}
	cold, err := analysisSignature(ctx, edited, mahjong.Config{Analysis: "ci", Heap: mahjong.HeapMahjong, Abstraction: coldAbs})
	if err != nil {
		return "", err
	}
	return firstDiff("warm", warm, "cold", cold), nil
}

// ---- axis: renumber on/off (equality oracle) ----

type renumberAxis struct{}

func (renumberAxis) Name() string { return "renumber" }

func (renumberAxis) Check(ctx context.Context, prog *lang.Program) (string, error) {
	sig := func(renumber bool) (string, error) {
		abs, err := mahjong.BuildAbstractionContext(ctx, prog, mahjong.AbstractionOptions{Renumber: renumber})
		if err != nil {
			return "", err
		}
		return analysisSignature(ctx, prog, mahjong.Config{Analysis: "ci", Heap: mahjong.HeapMahjong, Abstraction: abs, Renumber: renumber})
	}
	off, err := sig(false)
	if err != nil {
		return "", err
	}
	on, err := sig(true)
	if err != nil {
		return "", err
	}
	return firstDiff("renumber=off", off, "renumber=on", on), nil
}

// ---- shared projections ----

// analysisSignature runs one configuration and renders every client
// observation into a deterministic multi-line string, so equality axes
// compare results without caring about internal numbering.
func analysisSignature(ctx context.Context, prog *lang.Program, cfg mahjong.Config) (string, error) {
	rep, err := mahjong.AnalyzeContext(ctx, prog, cfg)
	if err != nil {
		return "", err
	}
	r := rep.Result()
	var b strings.Builder
	fmt.Fprintf(&b, "metrics %+v\n", rep.Metrics)
	for _, l := range escapeLabels(r) {
		fmt.Fprintf(&b, "escape %s\n", l)
	}
	for _, l := range mayNullLabels(r) {
		fmt.Fprintf(&b, "maynull %s\n", l)
	}
	for _, l := range sinkLabels(r) {
		fmt.Fprintf(&b, "tainted %s\n", l)
	}
	for _, e := range r.CallGraphEdges() {
		fmt.Fprintf(&b, "edge %s -> %s\n", e.Site.Label(), e.Callee)
	}
	for _, meth := range prog.Methods {
		if meth.IsAbstract || !r.ReachableMethod(meth) {
			continue
		}
		for _, v := range meth.Locals {
			fmt.Fprintf(&b, "var %s : %s\n", v, strings.Join(typeNames(r.VarTypes(v)), ","))
		}
	}
	return b.String(), nil
}

func momSignature(abs *mahjong.Abstraction) string {
	lines := make([]string, 0, len(abs.MOM))
	for site, rep := range abs.MOM {
		lines = append(lines, site.Label+" => "+rep.Label)
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

func escapeLabels(r *pta.Result) []string {
	esc := clients.Escape(r)
	out := make([]string, 0, len(esc.Escaping))
	for _, s := range esc.Escaping {
		out = append(out, s.Label)
	}
	return out
}

func mayNullLabels(r *pta.Result) []string {
	loads := clients.MayNullLoads(r)
	out := make([]string, 0, len(loads))
	for _, l := range loads {
		out = append(out, l.String())
	}
	return out
}

func sinkLabels(r *pta.Result) []string {
	sinks := clients.TaintedSinks(r)
	out := make([]string, 0, len(sinks))
	for _, inv := range sinks {
		out = append(out, inv.Label())
	}
	return out
}

func typeNames(cs []*lang.Class) []string {
	out := make([]string, 0, len(cs))
	for _, c := range cs {
		out = append(out, c.Name)
	}
	sort.Strings(out)
	return out
}

// subsetOf reports "" when a is a subset of b, else a description
// naming the first missing element.
func subsetOf(what string, a, b []string) string {
	in := make(map[string]bool, len(b))
	for _, x := range b {
		in[x] = true
	}
	for _, x := range a {
		if !in[x] {
			return fmt.Sprintf("%s not over-approximated: %q present in baseline, missing after merge", what, x)
		}
	}
	return ""
}

// firstDiff reports "" when the signatures agree, else the first
// differing line of each side.
func firstDiff(an, a, bn, b string) string {
	if a == b {
		return ""
	}
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) || i < len(bl); i++ {
		var x, y string
		if i < len(al) {
			x = al[i]
		}
		if i < len(bl) {
			y = bl[i]
		}
		if x != y {
			return fmt.Sprintf("results differ at line %d: %s=%q, %s=%q", i, an, x, bn, y)
		}
	}
	return "results differ (length only)"
}
