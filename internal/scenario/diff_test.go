package scenario

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"mahjong"
	"mahjong/internal/clients"
	"mahjong/internal/lang"
	"mahjong/internal/parser"
)

// artifactDir is where shrunken reproducers land when the corpus
// differential fails. CI sets MAHJONG_SCENARIO_ARTIFACTS to a workspace
// path and uploads it; locally they go under the system temp dir.
func artifactDir(t *testing.T) string {
	t.Helper()
	dir := os.Getenv("MAHJONG_SCENARIO_ARTIFACTS")
	if dir == "" {
		dir = filepath.Join(os.TempDir(), "mahjong-scenario-artifacts")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestCorpusDifferential is the main acceptance check for the harness:
// every committed corpus program must pass all four A/B axes with zero
// divergences. On failure, each divergence is shrunk to a minimal
// reproducer and written to the artifact directory so CI preserves it.
func TestCorpusDifferential(t *testing.T) {
	gens, man, err := LoadCorpus(filepath.Join("..", "..", "testdata", "corpus"))
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) < 2*len(CorpusWants()) {
		t.Fatalf("corpus has %d programs, want %d", len(gens), 2*len(CorpusWants()))
	}
	if man.Generator != "synthgen -search" {
		t.Fatalf("manifest generator = %q", man.Generator)
	}
	ctx := context.Background()
	axes := StandardAxes()
	for _, g := range gens {
		g := g
		t.Run(g.Entry.Name, func(t *testing.T) {
			divs, err := RunAndShrink(ctx, g.Prog, axes, ShrinkOptions{})
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range divs {
				dir := artifactDir(t)
				file := filepath.Join(dir, fmt.Sprintf("%s-%s.ir", g.Entry.Name, d.Axis))
				if werr := os.WriteFile(file, []byte(d.ReproducerIR), 0o644); werr != nil {
					t.Logf("could not write reproducer: %v", werr)
				} else {
					t.Logf("shrunken reproducer written to %s", file)
				}
				t.Errorf("axis %s diverged: %s (reproducer: %d stmts)",
					d.Axis, d.Detail, d.Reproducer.Stats().Stmts)
			}
		})
	}
}

// fakeAxis injects a deterministic "divergence": it fires whenever the
// program still has a tainted sink under the plain allocation-site
// analysis. The taint motif is a handful of statements, so the shrinker
// must be able to cut everything else away.
type fakeAxis struct{}

func (fakeAxis) Name() string { return "injected" }

func (fakeAxis) Check(ctx context.Context, prog *lang.Program) (string, error) {
	rep, err := mahjong.AnalyzeContext(ctx, prog, mahjong.Config{Analysis: "ci", Heap: mahjong.HeapAllocSite})
	if err != nil {
		return "", nil // unanalyzable candidates are uninteresting, not divergent
	}
	if len(clients.TaintedSinks(rep.Result())) > 0 {
		return "tainted sink reached", nil
	}
	return "", nil
}

// TestInjectedDivergenceShrinks is the shrinker acceptance check: an
// injected divergence on a full searched program must come back as a
// reproducer of at most 20 statements.
func TestInjectedDivergenceShrinks(t *testing.T) {
	f, err := Search(Want{FieldDepth: 6, PolyContainers: 2, CallGraphFanout: 12}, Options{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	start := f.Est.Stmts
	divs, err := RunAndShrink(context.Background(), f.Prog, []Axis{fakeAxis{}}, ShrinkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(divs) != 1 {
		t.Fatalf("injected axis produced %d divergences, want 1", len(divs))
	}
	d := divs[0]
	if d.Reproducer == nil {
		t.Fatal("no reproducer attached")
	}
	got := d.Reproducer.Stats().Stmts
	if got > 20 {
		t.Fatalf("reproducer has %d statements, want <= 20 (started from %d):\n%s", got, start, d.ReproducerIR)
	}
	if got >= start {
		t.Fatalf("shrinker made no progress: %d -> %d statements", start, got)
	}
	// The reproducer must itself still trip the axis.
	detail, err := fakeAxis{}.Check(context.Background(), d.Reproducer)
	if err != nil || detail == "" {
		t.Fatalf("reproducer does not reproduce: detail=%q err=%v", detail, err)
	}
}

// TestShrinkRespectsPredicate: Shrink never returns a program failing
// the predicate, and its output always re-validates.
func TestShrinkRespectsPredicate(t *testing.T) {
	s := Spec{FieldDepth: 4, DeepPaths: 1, PolyContainers: 1, ContainerTypes: 3, Fillers: 3}
	p, err := s.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	// Keep programs that still mention the deep-chain class.
	keep := func(q *lang.Program) bool {
		for _, c := range q.Classes {
			if c.Name == "scn.D0_0" {
				return true
			}
		}
		return false
	}
	small := Shrink(p, keep, ShrinkOptions{MaxChecks: 500})
	if !keep(small) {
		t.Fatal("shrunk program violates the predicate")
	}
	if small.Stats().Stmts > p.Stats().Stmts {
		t.Fatal("shrinker grew the program")
	}
	if _, err := parser.Parse("check", parser.Print(small)); err != nil {
		t.Fatalf("shrunk program does not round-trip: %v", err)
	}
}

// TestRunDifferentialOnSuite spot-checks the axes on two real suite
// benchmarks, not just searched programs.
func TestRunDifferentialOnSuite(t *testing.T) {
	for _, name := range []string{"luindex", "antlr"} {
		prog, err := mahjong.GenerateBenchmark(name)
		if err != nil {
			t.Fatal(err)
		}
		divs, err := RunDifferential(context.Background(), prog, StandardAxes())
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range divs {
			t.Errorf("%s: axis %s diverged: %s", name, d.Axis, d.Detail)
		}
	}
}
