package scenario

import (
	"sort"

	"mahjong/internal/lang"
)

// Thresholds parameterize the estimator's counting metrics: how many
// distinct element types make a container "polymorphic", and how deep
// same-type sites must stay equivalent before diverging to count as a
// near miss.
type Thresholds struct {
	PolyContainerTypes int
	NearMissDepth      int
}

// DefaultThresholds matches the Want defaults.
var DefaultThresholds = Thresholds{
	PolyContainerTypes: DefaultPolyContainerTypes,
	NearMissDepth:      DefaultNearMissDepth,
}

// Estimate is the static property profile of a program, computed
// syntactically (no points-to solve) from a per-method alloc-site graph:
// an allocation binds its site to the LHS variable, copies and casts
// propagate bindings, and a store adds a field-labeled edge between
// bound sites. The graph is a cheap stand-in for the solver's field
// points-to relation — exact on the materializer's motifs, a sound-ish
// sketch elsewhere — which is all a search fitness function needs.
type Estimate struct {
	Stmts      int
	AllocSites int
	// FieldDepth is the longest field path (in edges) through the
	// alloc-site graph; cycles contribute their SCC size once.
	FieldDepth int
	// PolyContainers counts (method, base variable, field) store groups
	// with at least PolyContainerTypes distinct concrete non-Object
	// right-hand static types.
	PolyContainers int
	// NearMissFamilies counts classes whose same-type allocation sites
	// split at partition-refinement round >= NearMissDepth: families
	// the Mahjong NFA/DFA equivalence check must walk at least that
	// deep to tell apart. NearMissMaxDepth is the deepest such split.
	NearMissFamilies int
	NearMissMaxDepth int
	// FactoryChainLen is the longest call chain of covariant factory
	// methods (a factory returns a freshly allocated proper subtype of
	// its non-Object declared return type), counted in methods.
	FactoryChainLen int
	// CallGraphFanout is the maximum CHA dispatch-target count over the
	// virtual call sites.
	CallGraphFanout int
}

// EstimateProgram scores p against the thresholds implied by w.
func EstimateProgram(p *lang.Program, w Want) Estimate {
	return w.Thresholds().Estimate(p)
}

type siteEdge struct {
	field *lang.Field
	to    int
}

// Estimate computes the static property profile of p.
func (t Thresholds) Estimate(p *lang.Program) Estimate {
	if t.PolyContainerTypes <= 0 {
		t.PolyContainerTypes = DefaultPolyContainerTypes
	}
	if t.NearMissDepth <= 0 {
		t.NearMissDepth = DefaultNearMissDepth
	}
	st := p.Stats()
	e := Estimate{Stmts: st.Stmts, AllocSites: st.AllocSites}

	idx := make(map[*lang.AllocSite]int, len(p.Sites))
	for i, s := range p.Sites {
		idx[s] = i
	}
	adj := make([][]siteEdge, len(p.Sites))

	type group struct {
		m     *lang.Method
		base  *lang.Var
		field *lang.Field
	}
	groups := map[group]map[*lang.Class]bool{}

	obj := p.Object()
	for _, m := range p.Methods {
		if m.IsAbstract {
			continue
		}
		cur := map[*lang.Var][]int{}
		for _, raw := range m.Stmts {
			switch s := raw.(type) {
			case *lang.Alloc:
				cur[s.LHS] = append(cur[s.LHS], idx[s.Site])
			case *lang.Copy:
				cur[s.LHS] = append(cur[s.LHS], cur[s.RHS]...)
			case *lang.Cast:
				cur[s.LHS] = append(cur[s.LHS], cur[s.RHS]...)
			case *lang.Store:
				for _, b := range cur[s.Base] {
					for _, r := range cur[s.RHS] {
						adj[b] = append(adj[b], siteEdge{s.Field, r})
					}
				}
				if rt := s.RHS.Type; rt != obj && !rt.IsInterface {
					g := group{m, s.Base, s.Field}
					set := groups[g]
					if set == nil {
						set = map[*lang.Class]bool{}
						groups[g] = set
					}
					set[rt] = true
				}
			}
		}
	}

	for _, set := range groups {
		if len(set) >= t.PolyContainerTypes {
			e.PolyContainers++
		}
	}

	e.FieldDepth = longestSitePath(adj)
	e.NearMissFamilies, e.NearMissMaxDepth = nearMissFamilies(p, adj, t.NearMissDepth)
	e.FactoryChainLen = factoryChainLen(p, obj)
	e.CallGraphFanout = maxFanout(p)
	return e
}

// longestSitePath returns the longest path (in edges) through the site
// graph's SCC condensation, where a cyclic SCC of k sites counts as k
// nodes on the path.
func longestSitePath(adj [][]siteEdge) int {
	n := len(adj)
	if n == 0 {
		return 0
	}
	comp, ncomp := sccs(adj)
	weight := make([]int, ncomp)
	for i := 0; i < n; i++ {
		weight[comp[i]]++
	}
	// Condensation edges.
	cadj := make([]map[int]bool, ncomp)
	for i := 0; i < n; i++ {
		for _, ed := range adj[i] {
			a, b := comp[i], comp[ed.to]
			if a == b {
				continue
			}
			if cadj[a] == nil {
				cadj[a] = map[int]bool{}
			}
			cadj[a][b] = true
		}
	}
	memo := make([]int, ncomp)
	for i := range memo {
		memo[i] = -1
	}
	var visit func(c int) int
	visit = func(c int) int {
		if memo[c] >= 0 {
			return memo[c]
		}
		memo[c] = weight[c] // cycle safety: condensation is acyclic anyway
		best := 0
		for d := range cadj[c] {
			if v := visit(d); v > best {
				best = v
			}
		}
		memo[c] = weight[c] + best
		return memo[c]
	}
	max := 0
	for c := 0; c < ncomp; c++ {
		if v := visit(c); v > max {
			max = v
		}
	}
	return max - 1 // nodes -> edges
}

// sccs computes strongly connected components (iterative Tarjan),
// returning the component index per node and the component count.
func sccs(adj [][]siteEdge) ([]int, int) {
	n := len(adj)
	comp := make([]int, n)
	low := make([]int, n)
	num := make([]int, n)
	onstack := make([]bool, n)
	for i := range num {
		num[i] = -1
		comp[i] = -1
	}
	var stack, callStack []int
	next := make([]int, n) // per-node edge cursor for the iterative DFS
	counter, ncomp := 0, 0
	for root := 0; root < n; root++ {
		if num[root] >= 0 {
			continue
		}
		callStack = append(callStack[:0], root)
		num[root], low[root] = counter, counter
		counter++
		stack = append(stack, root)
		onstack[root] = true
		next[root] = 0
		for len(callStack) > 0 {
			v := callStack[len(callStack)-1]
			if next[v] < len(adj[v]) {
				w := adj[v][next[v]].to
				next[v]++
				if num[w] < 0 {
					num[w], low[w] = counter, counter
					counter++
					stack = append(stack, w)
					onstack[w] = true
					next[w] = 0
					callStack = append(callStack, w)
				} else if onstack[w] && num[w] < low[v] {
					low[v] = num[w]
				}
				continue
			}
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				parent := callStack[len(callStack)-1]
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
			if low[v] == num[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onstack[w] = false
					comp[w] = ncomp
					if w == v {
						break
					}
				}
				ncomp++
			}
		}
	}
	return comp, ncomp
}

// nearMissFamilies runs partition refinement over the allocation sites —
// the syntactic mirror of the paper's automata-equivalence check. The
// initial partition is by type; round r splits blocks whose members
// disagree on (field, round-(r-1) block of target). A class whose
// same-type block first splits at round r hosts sites whose heap
// automata agree on every field path shorter than r: a near miss of
// divergence depth r. It returns the number of classes with a split at
// depth >= minDepth and the maximum split depth.
func nearMissFamilies(p *lang.Program, adj [][]siteEdge, minDepth int) (int, int) {
	n := len(p.Sites)
	if n == 0 {
		return 0, 0
	}
	block := make([]int, n)
	byType := map[*lang.Class]int{}
	nblocks := 0
	for i, s := range p.Sites {
		b, ok := byType[s.Type]
		if !ok {
			b = nblocks
			nblocks++
			byType[s.Type] = b
		}
		block[i] = b
	}
	splitDepth := map[*lang.Class]int{}
	for round := 1; round <= n+1; round++ {
		type edgeKey struct {
			field int
			to    int
		}
		keys := make([]string, n)
		for i := 0; i < n; i++ {
			eks := make([]edgeKey, 0, len(adj[i]))
			for _, ed := range adj[i] {
				eks = append(eks, edgeKey{ed.field.ID, block[ed.to]})
			}
			sort.Slice(eks, func(a, b int) bool {
				if eks[a].field != eks[b].field {
					return eks[a].field < eks[b].field
				}
				return eks[a].to < eks[b].to
			})
			buf := make([]byte, 0, 8+8*len(eks))
			buf = appendInt(buf, block[i])
			last := edgeKey{-1, -1}
			for _, ek := range eks {
				if ek == last {
					continue
				}
				last = ek
				buf = append(buf, '|')
				buf = appendInt(buf, ek.field)
				buf = append(buf, ',')
				buf = appendInt(buf, ek.to)
			}
			keys[i] = string(buf)
		}
		newID := map[string]int{}
		newBlock := make([]int, n)
		split := map[int]map[int]bool{} // old block -> new ids
		nb := 0
		for i := 0; i < n; i++ {
			id, ok := newID[keys[i]]
			if !ok {
				id = nb
				nb++
				newID[keys[i]] = id
			}
			newBlock[i] = id
			set := split[block[i]]
			if set == nil {
				set = map[int]bool{}
				split[block[i]] = set
			}
			set[id] = true
		}
		changed := false
		for i := 0; i < n; i++ {
			if len(split[block[i]]) > 1 {
				// Blocks are type-homogeneous (the initial partition is
				// by type and refinement only splits), so the class of
				// any member names the family.
				c := p.Sites[i].Type
				if round > splitDepth[c] {
					splitDepth[c] = round
				}
				changed = true
			}
		}
		copy(block, newBlock)
		if !changed {
			break
		}
	}
	fams, maxDepth := 0, 0
	for _, d := range splitDepth {
		if d >= minDepth {
			fams++
		}
		if d > maxDepth {
			maxDepth = d
		}
	}
	return fams, maxDepth
}

func appendInt(b []byte, v int) []byte {
	if v == 0 {
		return append(b, '0')
	}
	var tmp [20]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(b, tmp[i:]...)
}

// factoryChainLen finds the longest static-call chain of covariant
// factories, in methods.
func factoryChainLen(p *lang.Program, obj *lang.Class) int {
	factory := map[*lang.Method]bool{}
	for _, m := range p.Methods {
		if m.IsAbstract || m.Ret == nil || m.Ret == obj {
			continue
		}
		returned := map[*lang.Var]bool{}
		for _, raw := range m.Stmts {
			if r, ok := raw.(*lang.Return); ok && r.Value != nil {
				returned[r.Value] = true
			}
		}
		for _, raw := range m.Stmts {
			a, ok := raw.(*lang.Alloc)
			if !ok {
				continue
			}
			st := a.Site.Type
			if returned[a.LHS] && st != m.Ret && st.SubtypeOf(m.Ret) {
				factory[m] = true
				break
			}
		}
	}
	if len(factory) == 0 {
		return 0
	}
	// Longest path over the factory->factory call edges; recursion is
	// collapsed by memoizing with an on-path guard.
	succ := map[*lang.Method][]*lang.Method{}
	for m := range factory {
		seen := map[*lang.Method]bool{}
		for _, raw := range m.Stmts {
			inv, ok := raw.(*lang.Invoke)
			if !ok || inv.Callee == nil || !factory[inv.Callee] || seen[inv.Callee] {
				continue
			}
			seen[inv.Callee] = true
			succ[m] = append(succ[m], inv.Callee)
		}
	}
	memo := map[*lang.Method]int{}
	onPath := map[*lang.Method]bool{}
	var visit func(m *lang.Method) int
	visit = func(m *lang.Method) int {
		if v, ok := memo[m]; ok {
			return v
		}
		if onPath[m] {
			return 0 // cycle: cut it, the chain metric wants simple paths
		}
		onPath[m] = true
		best := 0
		for _, c := range succ[m] {
			if v := visit(c); v > best {
				best = v
			}
		}
		onPath[m] = false
		memo[m] = 1 + best
		return memo[m]
	}
	max := 0
	for m := range factory {
		if v := visit(m); v > max {
			max = v
		}
	}
	return max
}

// maxFanout returns the maximum CHA dispatch-target count over virtual
// call sites.
func maxFanout(p *lang.Program) int {
	max := 0
	for _, m := range p.Methods {
		if m.IsAbstract {
			continue
		}
		for _, raw := range m.Stmts {
			inv, ok := raw.(*lang.Invoke)
			if !ok || inv.Kind != lang.VirtualCall || inv.Base == nil || inv.Callee == nil {
				continue
			}
			sig := lang.Sig{Name: inv.Callee.Name, Arity: len(inv.Args)}
			targets := map[*lang.Method]bool{}
			for _, c := range p.ConcreteSubtypes(inv.Base.Type) {
				if d := c.Dispatch(sig); d != nil {
					targets[d] = true
				}
			}
			if len(targets) > max {
				max = len(targets)
			}
		}
	}
	return max
}
