package scenario

import (
	"fmt"
	"math/rand"

	"mahjong/internal/lang"
)

// Options configure a search.
type Options struct {
	Seed int64
	// MaxStmts is the statement budget for materialized candidates
	// (default DefaultMaxStmts * Scale).
	MaxStmts int
	// Candidates per round (default 6) and sampling rounds (default 3).
	Candidates int
	Rounds     int
	// Scale multiplies the motif-count lower bounds — the 10-100x tier
	// uses the same search at Scale 10+ (default 1).
	Scale int
}

// DefaultMaxStmts is the default per-candidate statement budget.
const DefaultMaxStmts = 400

func (o Options) norm() Options {
	if o.Scale < 1 {
		o.Scale = 1
	}
	if o.MaxStmts <= 0 {
		o.MaxStmts = DefaultMaxStmts * o.Scale
	}
	if o.Candidates <= 0 {
		o.Candidates = 6
	}
	if o.Rounds <= 0 {
		o.Rounds = 3
	}
	return o
}

// The search space is a box of integer intervals, one per Spec
// dimension. Propagation narrows the box against the Want (lower
// bounds) and the statement budget (upper bounds, via the exact Cost
// model) before anything is materialized — the generate-and-prune
// "possible lines" discipline: points outside the box can't satisfy
// the constraints, so they are never built.
type dim int

const (
	dimFieldDepth dim = iota
	dimDeepPaths
	dimPolyContainers
	dimContainerTypes
	dimNearMissFamilies
	dimFamilySize
	dimNearMissDepth
	dimFactoryChains
	dimFactoryChainLen
	dimFanoutSites
	dimFanout
	dimFillers
	numDims
)

var dimNames = [numDims]string{
	"FieldDepth", "DeepPaths", "PolyContainers", "ContainerTypes",
	"NearMissFamilies", "FamilySize", "NearMissDepth", "FactoryChains",
	"FactoryChainLen", "FanoutSites", "Fanout", "Fillers",
}

type domain struct{ lo, hi int }

func (d domain) empty() bool { return d.lo > d.hi }

type box [numDims]domain

func specAt(pt [numDims]int) Spec {
	return Spec{
		FieldDepth:       pt[dimFieldDepth],
		DeepPaths:        pt[dimDeepPaths],
		PolyContainers:   pt[dimPolyContainers],
		ContainerTypes:   pt[dimContainerTypes],
		NearMissFamilies: pt[dimNearMissFamilies],
		FamilySize:       pt[dimFamilySize],
		NearMissDepth:    pt[dimNearMissDepth],
		FactoryChains:    pt[dimFactoryChains],
		FactoryChainLen:  pt[dimFactoryChainLen],
		FanoutSites:      pt[dimFanoutSites],
		Fanout:           pt[dimFanout],
		Fillers:          pt[dimFillers],
	}
}

func (b box) lows() [numDims]int {
	var pt [numDims]int
	for d := 0; d < int(numDims); d++ {
		pt[d] = b[d].lo
	}
	return pt
}

// propagate computes the admissible box for the want under the budget.
// Lower bounds come from the want (scaled by Scale for motif counts);
// upper bounds shrink each dimension to the largest value whose cost —
// with every other dimension at its lower bound — fits the budget.
// Narrowing iterates to a fixpoint (upper bounds only shrink, so it
// terminates) and reports an unsatisfiable dimension by name.
func propagate(w Want, o Options) (box, error) {
	var b box
	scale := o.Scale
	lo := func(d dim, v int) {
		if v > b[d].lo {
			b[d].lo = v
		}
	}
	if w.FieldDepth > 0 {
		lo(dimFieldDepth, w.FieldDepth)
		lo(dimDeepPaths, scale)
	}
	if w.PolyContainers > 0 {
		lo(dimPolyContainers, w.PolyContainers*scale)
		lo(dimContainerTypes, w.polyTypes())
	}
	if w.NearMissFamilies > 0 {
		lo(dimNearMissFamilies, w.NearMissFamilies*scale)
		lo(dimFamilySize, w.famSize())
		lo(dimNearMissDepth, w.missDepth())
	}
	if w.FactoryChainLen > 0 {
		lo(dimFactoryChains, scale)
		lo(dimFactoryChainLen, w.FactoryChainLen)
	}
	if w.CallGraphFanout > 0 {
		lo(dimFanoutSites, scale)
		lo(dimFanout, w.CallGraphFanout)
	}
	// Always mix in merge-positive filler families so differential runs
	// exercise the merge in both directions.
	lo(dimFillers, 2*scale)

	lows := b.lows()
	if base := specAt(lows).Cost(); base > o.MaxStmts {
		return b, fmt.Errorf("scenario: want needs >= %d statements, budget is %d", base, o.MaxStmts)
	}
	for d := 0; d < int(numDims); d++ {
		b[d].hi = o.MaxStmts // loose cap; cost narrowing tightens below
	}
	for changed := true; changed; {
		changed = false
		for d := 0; d < int(numDims); d++ {
			// Largest v in [lo, hi] whose point cost fits: Cost is
			// monotone in every dimension, so binary search.
			lo, hi := b[d].lo, b[d].hi
			for lo < hi {
				mid := (lo + hi + 1) / 2
				pt := lows
				pt[d] = mid
				if specAt(pt).Cost() <= o.MaxStmts {
					lo = mid
				} else {
					hi = mid - 1
				}
			}
			if hi < b[d].hi {
				b[d].hi = hi
				changed = true
			}
			if b[d].empty() {
				return b, fmt.Errorf("scenario: dimension %s is unsatisfiable: needs >= %d, budget admits <= %d",
					dimNames[d], b[d].lo, b[d].hi)
			}
		}
	}
	return b, nil
}

// sample draws one spec from the box: start at the lower-bound corner
// (always admissible after propagate) and take random upward steps that
// keep the cost within budget.
func sample(rng *rand.Rand, b box, budget int) Spec {
	pt := b.lows()
	steps := 4 + rng.Intn(20)
	for i := 0; i < steps; i++ {
		d := dim(rng.Intn(int(numDims)))
		if pt[d] >= b[d].hi {
			continue
		}
		pt[d]++
		if specAt(pt).Cost() > budget {
			pt[d]--
		}
	}
	return specAt(pt)
}

// Found is a successful search result.
type Found struct {
	Prog *lang.Program
	Spec Spec
	Est  Estimate
	// Attempts counts materialized candidates.
	Attempts int
}

// Search finds a program meeting the want within the options' budget:
// propagate the box, then sample/materialize/estimate until a candidate
// passes the estimator. The materializer is constructive (its motifs
// imply the properties), so the estimator acts as an end-to-end check
// that the built program really exhibits what the spec promises; a
// candidate failing it is discarded. Among passing candidates the
// smallest (fewest statements) wins. Deterministic in Options.Seed.
func Search(w Want, o Options) (*Found, error) {
	o = o.norm()
	b, err := propagate(w, o)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(o.Seed))
	th := w.Thresholds()
	var best *Found
	attempts := 0
	for round := 0; round < o.Rounds && best == nil; round++ {
		for c := 0; c < o.Candidates; c++ {
			sp := sample(rng, b, o.MaxStmts)
			attempts++
			prog, err := sp.Materialize()
			if err != nil {
				continue // prune: inadmissible point
			}
			est := th.Estimate(prog)
			if !w.Met(est) {
				continue // prune: estimator disagrees with the spec
			}
			if best == nil || est.Stmts < best.Est.Stmts {
				best = &Found{Prog: prog, Spec: sp, Est: est}
			}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("scenario: no candidate met %+v after %d attempts", w, attempts)
	}
	best.Attempts = attempts
	return best, nil
}
