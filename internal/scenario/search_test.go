package scenario

import (
	"math/rand"
	"strings"
	"testing"

	"mahjong/internal/parser"
	"mahjong/internal/synth"
)

// TestMaterializeCostExact pins the searcher's budget model against the
// materializer: Cost() must equal the emitted statement count exactly,
// for random specs across the whole admissible shape space. Constraint
// propagation prunes on Cost, so any drift would make pruning wrong.
func TestMaterializeCostExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 150; i++ {
		s := Spec{
			FieldDepth:       rng.Intn(10),
			DeepPaths:        rng.Intn(3),
			PolyContainers:   rng.Intn(4),
			ContainerTypes:   rng.Intn(7),
			NearMissFamilies: rng.Intn(4),
			FamilySize:       rng.Intn(5),
			NearMissDepth:    rng.Intn(5),
			FactoryChains:    rng.Intn(3),
			FactoryChainLen:  rng.Intn(7),
			FanoutSites:      rng.Intn(3),
			Fanout:           rng.Intn(18),
			Fillers:          rng.Intn(6),
		}
		p, err := s.Materialize()
		if err != nil {
			t.Fatalf("spec %+v: %v", s, err)
		}
		if got, want := p.Stats().Stmts, s.Cost(); got != want {
			t.Fatalf("spec %+v: materialized %d stmts, Cost says %d", s, got, want)
		}
	}
}

// TestEstimatorMeetsSpec checks the constructive property the searcher
// relies on: a materialized spec's estimate dominates its dimensions.
func TestEstimatorMeetsSpec(t *testing.T) {
	s := Spec{
		FieldDepth: 8, DeepPaths: 1, PolyContainers: 2, ContainerTypes: 4,
		NearMissFamilies: 2, FamilySize: 3, NearMissDepth: 3,
		FactoryChains: 1, FactoryChainLen: 6, FanoutSites: 1, Fanout: 16, Fillers: 3,
	}
	p, err := s.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	e := Thresholds{PolyContainerTypes: 4, NearMissDepth: 3}.Estimate(p)
	if e.FieldDepth < s.FieldDepth || e.PolyContainers < s.PolyContainers ||
		e.NearMissFamilies < s.NearMissFamilies || e.NearMissMaxDepth < s.NearMissDepth ||
		e.FactoryChainLen < s.FactoryChainLen || e.CallGraphFanout < s.Fanout {
		t.Fatalf("estimate %+v does not dominate spec %+v", e, s)
	}
}

// TestSearchBeyondSuite is the acceptance check for the four target
// property classes: for each, the corpus target strictly exceeds the
// maximum the fixed 12-subject suite exhibits (per the estimator with
// the same thresholds), and the searcher produces a program meeting it.
func TestSearchBeyondSuite(t *testing.T) {
	for _, nw := range CorpusWants() {
		if nw.Name == "combined" {
			continue
		}
		nw := nw
		t.Run(nw.Name, func(t *testing.T) {
			th := nw.Want.Thresholds()
			suiteMax := Estimate{}
			for _, prof := range synth.Profiles() {
				p, err := synth.Generate(prof)
				if err != nil {
					t.Fatal(err)
				}
				e := th.Estimate(p)
				if e.FieldDepth > suiteMax.FieldDepth {
					suiteMax.FieldDepth = e.FieldDepth
				}
				if e.PolyContainers > suiteMax.PolyContainers {
					suiteMax.PolyContainers = e.PolyContainers
				}
				if e.NearMissFamilies > suiteMax.NearMissFamilies {
					suiteMax.NearMissFamilies = e.NearMissFamilies
				}
				if e.FactoryChainLen > suiteMax.FactoryChainLen {
					suiteMax.FactoryChainLen = e.FactoryChainLen
				}
				if e.CallGraphFanout > suiteMax.CallGraphFanout {
					suiteMax.CallGraphFanout = e.CallGraphFanout
				}
			}
			if nw.Want.Met(suiteMax) {
				t.Fatalf("suite already exhibits %+v (suite max %+v); corpus target is not adversarial", nw.Want, suiteMax)
			}
			f, err := Search(nw.Want, Options{Seed: 99})
			if err != nil {
				t.Fatal(err)
			}
			if !nw.Want.Met(f.Est) {
				t.Fatalf("searched program does not meet %+v: estimate %+v", nw.Want, f.Est)
			}
		})
	}
}

// TestSearchDeterministic: same seed, same program text.
func TestSearchDeterministic(t *testing.T) {
	w := Want{FieldDepth: 6, PolyContainers: 2}
	a, err := Search(w, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Search(w, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if parser.Print(a.Prog) != parser.Print(b.Prog) {
		t.Fatal("same seed produced different programs")
	}
}

// TestPropagateUnsatisfiable: an impossible want under a tiny budget
// must fail fast during propagation, naming the offending dimension —
// not after materializing candidates.
func TestPropagateUnsatisfiable(t *testing.T) {
	_, err := Search(Want{FieldDepth: 50}, Options{Seed: 1, MaxStmts: 60})
	if err == nil {
		t.Fatal("expected unsatisfiable error")
	}
	if !strings.Contains(err.Error(), "statements") && !strings.Contains(err.Error(), "FieldDepth") {
		t.Fatalf("error does not identify the constraint: %v", err)
	}
}

// TestPropagateNarrowsBox: upper bounds reflect the budget.
func TestPropagateNarrowsBox(t *testing.T) {
	b, err := propagate(Want{FieldDepth: 6}, Options{}.norm())
	if err != nil {
		t.Fatal(err)
	}
	if b[dimFieldDepth].lo != 6 {
		t.Fatalf("FieldDepth.lo = %d, want 6", b[dimFieldDepth].lo)
	}
	if b[dimFieldDepth].hi >= DefaultMaxStmts/3 {
		t.Fatalf("FieldDepth.hi = %d not narrowed by the cost model", b[dimFieldDepth].hi)
	}
	for d := 0; d < int(numDims); d++ {
		if b[d].empty() {
			t.Fatalf("dimension %s empty after propagation", dimNames[d])
		}
		pt := b.lows()
		pt[d] = b[d].hi
		if c := specAt(pt).Cost(); c > DefaultMaxStmts {
			t.Fatalf("dimension %s hi=%d busts the budget: cost %d", dimNames[d], b[d].hi, c)
		}
	}
}

// TestSearchScaleTier: the 10x tier produces proportionally larger
// programs that still meet their wants.
func TestSearchScaleTier(t *testing.T) {
	w := Want{PolyContainers: 2, NearMissFamilies: 1}
	base, err := Search(w, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Search(w, Options{Seed: 3, Scale: 10})
	if err != nil {
		t.Fatal(err)
	}
	if big.Est.Stmts < 5*base.Est.Stmts {
		t.Fatalf("scale 10 program (%d stmts) not meaningfully larger than scale 1 (%d)", big.Est.Stmts, base.Est.Stmts)
	}
	if big.Spec.PolyContainers < 20 || big.Spec.NearMissFamilies < 10 {
		t.Fatalf("scale 10 spec did not scale motif counts: %+v", big.Spec)
	}
}
