package scenario

import (
	"strings"

	"mahjong/internal/lang"
	"mahjong/internal/parser"
)

// ShrinkOptions bound the shrinker's work.
type ShrinkOptions struct {
	// MaxChecks caps how many candidate programs are parsed and tested
	// (default 4000).
	MaxChecks int
}

// Shrink minimizes p while interesting(p) keeps holding, delta-debugging
// over the printed textual IR: statement lines first (ddmin with
// geometric chunk sizes), then variable declarations, then whole method
// and class blocks, repeated to a fixpoint. Candidates that no longer
// parse or validate are simply rejected — the printer/parser round trip
// is the well-formedness filter — so the result is always a valid
// program, and p itself when nothing smaller stays interesting.
//
// The caller must ensure interesting(p) is true; Shrink never returns a
// program for which interesting reported false.
func Shrink(p *lang.Program, interesting func(*lang.Program) bool, o ShrinkOptions) *lang.Program {
	if o.MaxChecks <= 0 {
		o.MaxChecks = 4000
	}
	checks := 0
	best := p
	try := func(lines []string) bool {
		if checks >= o.MaxChecks {
			return false
		}
		checks++
		p2, err := parser.Parse("shrink", strings.Join(lines, "\n"))
		if err != nil || !interesting(p2) {
			return false
		}
		best = p2
		return true
	}

	cur := strings.Split(parser.Print(p), "\n")
	without := func(lines []string, drop map[int]bool) []string {
		out := make([]string, 0, len(lines)-len(drop))
		for i, l := range lines {
			if !drop[i] {
				out = append(out, l)
			}
		}
		return out
	}

	isStmt := func(l string) bool {
		return strings.HasPrefix(l, "    ") && !strings.HasPrefix(l, "    var ")
	}
	isVar := func(l string) bool { return strings.HasPrefix(l, "    var ") }

	// ddminLines removes as many lines matching sel as possible, in
	// chunks halving from half the candidate set down to singletons.
	ddminLines := func(sel func(string) bool) bool {
		progress := false
		for {
			var idxs []int
			for i, l := range cur {
				if sel(l) {
					idxs = append(idxs, i)
				}
			}
			if len(idxs) == 0 {
				return progress
			}
			removed := false
			for chunk := (len(idxs) + 1) / 2; chunk >= 1 && !removed; {
				for start := 0; start < len(idxs); start += chunk {
					drop := map[int]bool{}
					for _, i := range idxs[start:min(start+chunk, len(idxs))] {
						drop[i] = true
					}
					cand := without(cur, drop)
					if try(cand) {
						cur = cand
						removed = true
						progress = true
						break
					}
				}
				if !removed {
					chunk /= 2
				}
			}
			if !removed || checks >= o.MaxChecks {
				return progress
			}
		}
	}

	// blocks finds [start,end] line ranges opened by a line satisfying
	// open (at the given indent) and closed by the matching brace.
	blocks := func(open func(string) bool, closer string) [][2]int {
		var out [][2]int
		for i := 0; i < len(cur); i++ {
			if !open(cur[i]) || !strings.HasSuffix(cur[i], "{") {
				continue
			}
			for j := i + 1; j < len(cur); j++ {
				if cur[j] == closer {
					out = append(out, [2]int{i, j})
					break
				}
			}
		}
		return out
	}
	dropBlocks := func(open func(string) bool, closer string) bool {
		progress := false
		for again := true; again; {
			again = false
			for _, blk := range blocks(open, closer) {
				drop := map[int]bool{}
				for i := blk[0]; i <= blk[1]; i++ {
					drop[i] = true
				}
				if try(without(cur, drop)) {
					cur = without(cur, drop)
					progress, again = true, true
					break
				}
			}
			if checks >= o.MaxChecks {
				break
			}
		}
		return progress
	}

	for pass := 0; pass < 8; pass++ {
		progress := ddminLines(isStmt)
		if ddminLines(isVar) {
			progress = true
		}
		if dropBlocks(func(l string) bool {
			return strings.HasPrefix(l, "  ") && !strings.HasPrefix(l, "    ") &&
				strings.Contains(l, "method ")
		}, "  }") {
			progress = true
		}
		if dropBlocks(func(l string) bool {
			return strings.HasPrefix(l, "class ") || strings.HasPrefix(l, "interface ")
		}, "}") {
			progress = true
		}
		if !progress || checks >= o.MaxChecks {
			break
		}
	}
	return best
}
