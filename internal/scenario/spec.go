package scenario

import (
	"fmt"

	"mahjong/internal/lang"
)

// Spec is a fully resolved program shape: one point in the search space
// the constraint propagation narrows. Each dimension counts instances
// (or sizes) of a property-carrying motif; Materialize turns a Spec
// into a valid lang.Program whose estimator metrics are, by
// construction, at least the corresponding dimensions.
type Spec struct {
	// FieldDepth is the edge length of each deep field chain (0 = no
	// deep-path motif); DeepPaths is how many chains to emit.
	FieldDepth int
	DeepPaths  int
	// PolyContainers containers, each storing ContainerTypes distinct
	// leaf types through one Object-typed field.
	PolyContainers int
	ContainerTypes int
	// NearMissFamilies families of FamilySize same-type allocation
	// sites whose automata diverge exactly at depth NearMissDepth.
	NearMissFamilies int
	FamilySize       int
	NearMissDepth    int
	// FactoryChains chains of FactoryChainLen covariant factories.
	FactoryChains   int
	FactoryChainLen int
	// FanoutSites virtual call sites with Fanout dispatch targets each.
	FanoutSites int
	Fanout      int
	// Fillers adds type-consistent builder helpers: families the merge
	// SHOULD collapse, so differential runs see both merge and split.
	Fillers int
}

// normalized clamps dependent dimensions to their structural minimums
// (a container needs >=2 element types, a family >=2 members and depth
// >=1, a dispatch site >=2 targets, a chain >=1 level, and a deep-path
// motif >=1 chain).
func (s Spec) normalized() Spec {
	if s.PolyContainers > 0 && s.ContainerTypes < 2 {
		s.ContainerTypes = 2
	}
	if s.NearMissFamilies > 0 {
		if s.FamilySize < 2 {
			s.FamilySize = 2
		}
		if s.NearMissDepth < 1 {
			s.NearMissDepth = 1
		}
	}
	if s.FactoryChains > 0 && s.FactoryChainLen < 1 {
		s.FactoryChainLen = 1
	}
	if s.FanoutSites > 0 && s.Fanout < 2 {
		s.Fanout = 2
	}
	if s.FieldDepth > 0 && s.DeepPaths < 1 {
		s.DeepPaths = 1
	}
	return s
}

// Cost is the exact number of IR statements Materialize emits for the
// spec — the searcher's budget model. TestMaterializeCostExact pins the
// two against each other.
func (s Spec) Cost() int {
	s = s.normalized()
	cost := 1 + 2 + 6 // M.pass, the two sinks, the taint helper
	helpers := 1      // the taint helper
	if s.PolyContainers > 0 {
		cost += 2 * s.ContainerTypes // leaf tag() overrides
	}
	if s.FieldDepth > 0 {
		helpers += s.DeepPaths
		cost += s.DeepPaths * (3*s.FieldDepth + 2)
	}
	helpers += s.PolyContainers
	cost += s.PolyContainers * (2*s.ContainerTypes + 5)
	if s.NearMissFamilies > 0 {
		d := s.NearMissDepth
		helpers += s.NearMissFamilies
		cost += s.NearMissFamilies * (s.FamilySize*(2*d+2) + d + 1)
	}
	helpers += s.FactoryChains
	cost += s.FactoryChains * (4*s.FactoryChainLen + 1)
	helpers += s.FanoutSites
	cost += s.FanoutSites * (3*s.Fanout + 2)
	helpers += s.Fillers
	cost += s.Fillers * 5
	cost += helpers + 1 // main: one call per helper plus its return
	return cost
}

// Materialize builds the program for the spec. All class and method
// names live under the "scn." namespace; the program always includes
// the taint motif (one hot and one cold sink) so the taint client has
// signal on every searched program.
func (s Spec) Materialize() (*lang.Program, error) {
	s = s.normalized()
	p := lang.NewProgram()
	obj := p.Object()

	str := p.NewClass("scn.Str", nil)
	mCls := p.NewClass("scn.M", nil)
	pass := mCls.NewMethod("pass", true, []*lang.Class{obj}, obj)
	pass.AddReturn(pass.Params[0])

	var helpers []*lang.Method
	helper := func(name string) *lang.Method {
		h := mCls.NewMethod(name, true, nil, nil)
		helpers = append(helpers, h)
		return h
	}

	// Deep field chains: scn.D{t}_0 --next--> ... --tip--> scn.Str.
	if s.FieldDepth > 0 {
		for t := 0; t < s.DeepPaths; t++ {
			k := s.FieldDepth
			chain := make([]*lang.Class, k)
			for i := 0; i < k; i++ {
				chain[i] = p.NewClass(fmt.Sprintf("scn.D%d_%d", t, i), nil)
			}
			for i := 0; i < k-1; i++ {
				chain[i].NewField("next", chain[i+1])
			}
			chain[k-1].NewField("tip", str)
			h := helper(fmt.Sprintf("deep%d", t))
			vars := make([]*lang.Var, k)
			for i := 0; i < k; i++ {
				vars[i] = h.NewVar(fmt.Sprintf("d%d", i), chain[i])
				h.AddAlloc(vars[i], chain[i])
			}
			for i := 0; i < k-1; i++ {
				h.AddStore(vars[i], chain[i].Field("next"), vars[i+1])
			}
			sv := h.NewVar("s", str)
			h.AddAlloc(sv, str)
			h.AddStore(vars[k-1], chain[k-1].Field("tip"), sv)
			cur := vars[0]
			for i := 1; i < k; i++ {
				l := h.NewVar(fmt.Sprintf("l%d", i), chain[i])
				h.AddLoad(l, cur, chain[i-1].Field("next"))
				cur = l
			}
			ts := h.NewVar("ts", str)
			h.AddLoad(ts, cur, chain[k-1].Field("tip"))
			h.AddReturn(nil)
		}
	}

	// Polymorphic containers: one shared scn.Box class whose sites each
	// store ContainerTypes distinct scn.Leaf* types through "item".
	if s.PolyContainers > 0 {
		node := p.NewClass("scn.Node", nil)
		node.NewAbstractMethod("tag", nil, str)
		leaves := make([]*lang.Class, s.ContainerTypes)
		for i := range leaves {
			leaves[i] = p.NewClass(fmt.Sprintf("scn.Leaf%d", i), node)
			tag := leaves[i].NewMethod("tag", false, nil, str)
			sv := tag.NewVar("s", str)
			tag.AddAlloc(sv, str)
			tag.AddReturn(sv)
		}
		box := p.NewClass("scn.Box", nil)
		box.NewField("item", obj)
		for j := 0; j < s.PolyContainers; j++ {
			h := helper(fmt.Sprintf("box%d", j))
			b := h.NewVar("b", box)
			h.AddAlloc(b, box)
			for i := 0; i < s.ContainerTypes; i++ {
				leaf := leaves[(j+i)%len(leaves)]
				lv := h.NewVar(fmt.Sprintf("e%d", i), leaf)
				h.AddAlloc(lv, leaf)
				h.AddStore(b, box.Field("item"), lv)
			}
			raw := h.NewVar("raw", obj)
			h.AddLoad(raw, b, box.Field("item"))
			n := h.NewVar("n", node)
			h.AddCast(n, node, raw)
			tv := h.NewVar("t", str)
			h.AddVirtualCall(tv, n, "tag")
			h.AddReturn(nil)
		}
	}

	// Near-miss families: FamilySize sites of one class scn.N{f}, each
	// wired through the SAME chain classes to a tail of a per-member
	// type at depth NearMissDepth — automata equivalent to depth-1 reads
	// and divergent at the tail, the expensive case for the merge.
	if s.NearMissFamilies > 0 {
		d := s.NearMissDepth
		for f := 0; f < s.NearMissFamilies; f++ {
			fam := p.NewClass(fmt.Sprintf("scn.N%d", f), nil)
			chain := make([]*lang.Class, d)
			chain[0] = fam
			for j := 1; j < d; j++ {
				chain[j] = p.NewClass(fmt.Sprintf("scn.C%d_%d", f, j), nil)
				chain[j-1].NewField("step", chain[j])
			}
			chain[d-1].NewField("last", obj)
			tails := make([]*lang.Class, s.FamilySize)
			for i := range tails {
				tails[i] = p.NewClass(fmt.Sprintf("scn.T%d_%d", f, i), nil)
			}
			h := helper(fmt.Sprintf("nm%d", f))
			mix := h.NewVar("mix", fam)
			for i := 0; i < s.FamilySize; i++ {
				a := h.NewVar(fmt.Sprintf("a%d", i), fam)
				h.AddAlloc(a, fam)
				prev := a
				for j := 1; j < d; j++ {
					c := h.NewVar(fmt.Sprintf("c%d_%d", i, j), chain[j])
					h.AddAlloc(c, chain[j])
					h.AddStore(prev, chain[j-1].Field("step"), c)
					prev = c
				}
				tv := h.NewVar(fmt.Sprintf("t%d", i), obj)
				h.AddAlloc(tv, tails[i])
				h.AddStore(prev, chain[d-1].Field("last"), tv)
				h.AddCopy(mix, a)
			}
			cur := mix
			for j := 1; j < d; j++ {
				l := h.NewVar(fmt.Sprintf("w%d", j), chain[j])
				h.AddLoad(l, cur, chain[j-1].Field("step"))
				cur = l
			}
			ll := h.NewVar("ll", obj)
			h.AddLoad(ll, cur, chain[d-1].Field("last"))
			h.AddReturn(nil)
		}
	}

	// Covariant factory chains: fac{c}_i allocates a fresh proper
	// subtype of its declared return and forwards to fac{c}_{i+1}.
	for c := 0; c < s.FactoryChains; c++ {
		k := s.FactoryChainLen
		base := p.NewClass(fmt.Sprintf("scn.P%d", c), nil)
		facs := make([]*lang.Method, k)
		leafs := make([]*lang.Class, k)
		for i := 0; i < k; i++ {
			leafs[i] = p.NewClass(fmt.Sprintf("scn.PL%d_%d", c, i), base)
			facs[i] = mCls.NewMethod(fmt.Sprintf("fac%d_%d", c, i), true, nil, base)
		}
		for i := 0; i < k; i++ {
			x := facs[i].NewVar("x", base)
			facs[i].AddAlloc(x, leafs[i])
			facs[i].AddReturn(x)
			if i < k-1 {
				y := facs[i].NewVar("y", base)
				facs[i].AddStaticCall(y, facs[i+1])
				facs[i].AddReturn(y)
			}
		}
		h := helper(fmt.Sprintf("fcRoot%d", c))
		r := h.NewVar("r", base)
		h.AddStaticCall(r, facs[0])
		z := h.NewVar("z", leafs[k-1])
		h.AddCast(z, leafs[k-1], r)
		h.AddReturn(nil)
	}

	// Megamorphic dispatch: Fanout overrides of scn.V{s}.hit behind one
	// virtual call site.
	for v := 0; v < s.FanoutSites; v++ {
		base := p.NewClass(fmt.Sprintf("scn.V%d", v), nil)
		base.NewAbstractMethod("hit", nil, str)
		h := helper(fmt.Sprintf("fan%d", v))
		hv := h.NewVar("h", base)
		for i := 0; i < s.Fanout; i++ {
			sub := p.NewClass(fmt.Sprintf("scn.V%d_%d", v, i), base)
			hit := sub.NewMethod("hit", false, nil, str)
			sv := hit.NewVar("s", str)
			hit.AddAlloc(sv, str)
			hit.AddReturn(sv)
			h.AddAlloc(hv, sub)
		}
		tv := h.NewVar("t", str)
		h.AddVirtualCall(tv, hv, "hit")
		h.AddReturn(nil)
	}

	// Taint motif (always on): one tainted flow through pass into
	// sinkHot, one clean flow into sinkCold.
	taintCls := p.NewClass("scn.TaintData", nil)
	sinkHot := mCls.NewMethod("sinkHot", true, []*lang.Class{obj}, nil)
	sinkHot.AddReturn(nil)
	sinkCold := mCls.NewMethod("sinkCold", true, []*lang.Class{obj}, nil)
	sinkCold.AddReturn(nil)
	{
		h := helper("taint")
		t := h.NewVar("t", taintCls)
		h.AddAlloc(t, taintCls)
		o := h.NewVar("o", obj)
		h.AddStaticCall(o, pass, t)
		h.AddStaticCall(nil, sinkHot, o)
		cv := h.NewVar("c", str)
		h.AddAlloc(cv, str)
		h.AddStaticCall(nil, sinkCold, cv)
		h.AddReturn(nil)
	}

	// Fillers: identical builder helpers whose scn.Buf/scn.Str sites are
	// type-consistent across instances — objects the merge SHOULD fold.
	if s.Fillers > 0 {
		buf := p.NewClass("scn.Buf", nil)
		buf.NewField("val", str)
		for i := 0; i < s.Fillers; i++ {
			h := helper(fmt.Sprintf("fill%d", i))
			b := h.NewVar("b", buf)
			h.AddAlloc(b, buf)
			sv := h.NewVar("s", str)
			h.AddAlloc(sv, str)
			h.AddStore(b, buf.Field("val"), sv)
			lv := h.NewVar("l", str)
			h.AddLoad(lv, b, buf.Field("val"))
			h.AddReturn(nil)
		}
	}

	mainCls := p.NewClass("scn.Main", nil)
	main := mainCls.NewMethod("main", true, nil, nil)
	for _, h := range helpers {
		main.AddStaticCall(nil, h)
	}
	main.AddReturn(nil)
	p.SetEntry(main)
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("scenario: materialized spec invalid: %w", err)
	}
	return p, nil
}
