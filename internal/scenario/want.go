// Package scenario is a constraint-driven search engine for analysis
// workloads: it grows lang.Programs that *provably* exhibit the heap
// shapes that stress the Mahjong automata-equivalence merge, instead of
// hoping a random generator stumbles into them.
//
// The pieces, in pipeline order:
//
//   - Want (this file): the property DSL — lower bounds on heap-shape
//     properties a searched program must exhibit.
//   - search.go: interval domains over a program-shape spec, narrowed
//     against the Want by constraint propagation (generate-and-prune in
//     the possible-lines style) before any program is materialized,
//     then a deterministic sample/materialize/estimate/accept loop.
//   - spec.go: the materializer turning an admissible Spec point into a
//     valid lang.Program built from property-carrying motifs.
//   - estimate.go: the cheap static estimator that scores candidates;
//     its near-miss metric is a partition refinement that mirrors the
//     paper's NFA/DFA equivalence check, so "divergence depth" here
//     predicts where the real merge will have to split families.
//   - shrink.go: a ddmin shrinker over the printed textual IR.
//   - diff.go: the differential harness (four A/B axes, shrink on
//     mismatch) that turns searched programs into oracles.
//   - corpus.go: the committed adversarial corpus and its manifest.
package scenario

// Want states lower bounds on the shape properties a searched program
// must exhibit, as measured by the estimator. The zero value of a field
// means "don't care". All properties are chosen to target the automata
// merge: deep field automata, polymorphic containers, families of
// same-type allocation sites whose automata diverge only deep down
// (near misses, the expensive case for the equivalence check),
// covariant factory chains, and megamorphic dispatch.
type Want struct {
	// FieldDepth asks for a field path of at least this many edges in
	// the alloc-site graph (the heap automaton must be at least this
	// deep). The fixed 12-subject suite stays at 2-3.
	FieldDepth int
	// PolyContainers asks for at least this many container sites
	// holding PolyContainerTypes or more distinct element types through
	// one field.
	PolyContainers int
	// PolyContainerTypes is the element-type diversity per container
	// (default 3).
	PolyContainerTypes int
	// NearMissFamilies asks for families of same-type allocation sites
	// whose automata stay equivalent to depth NearMissDepth-1 and
	// diverge at NearMissDepth or deeper. The suite has none beyond
	// depth 1.
	NearMissFamilies int
	// NearMissFamilySize is the number of sites per family (default 2).
	NearMissFamilySize int
	// NearMissDepth is the minimum divergence depth (default 2).
	NearMissDepth int
	// FactoryChainLen asks for a chain of at least this many covariant
	// factory methods (each returns a fresh proper subtype of its
	// declared return type and calls the next).
	FactoryChainLen int
	// CallGraphFanout asks for one virtual call site with at least this
	// many CHA dispatch targets.
	CallGraphFanout int
}

// Defaults used when the corresponding Want threshold field is zero.
const (
	DefaultPolyContainerTypes = 3
	DefaultNearMissFamilySize = 2
	DefaultNearMissDepth      = 2
)

func (w Want) polyTypes() int {
	if w.PolyContainerTypes > 0 {
		return w.PolyContainerTypes
	}
	return DefaultPolyContainerTypes
}

func (w Want) famSize() int {
	if w.NearMissFamilySize > 0 {
		return w.NearMissFamilySize
	}
	return DefaultNearMissFamilySize
}

func (w Want) missDepth() int {
	if w.NearMissDepth > 0 {
		return w.NearMissDepth
	}
	return DefaultNearMissDepth
}

// Met reports whether the estimate satisfies every stated bound.
func (w Want) Met(e Estimate) bool {
	return e.FieldDepth >= w.FieldDepth &&
		e.PolyContainers >= w.PolyContainers &&
		e.NearMissFamilies >= w.NearMissFamilies &&
		e.FactoryChainLen >= w.FactoryChainLen &&
		e.CallGraphFanout >= w.CallGraphFanout
}

// Thresholds returns the estimator thresholds implied by the Want.
func (w Want) Thresholds() Thresholds {
	return Thresholds{
		PolyContainerTypes: w.polyTypes(),
		NearMissDepth:      w.missDepth(),
	}
}
