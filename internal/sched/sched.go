// Package sched is mahjongd's overload-resilience core: a bounded,
// class-aware priority queue with per-class concurrency quotas,
// deadline-aware shedding, and the service-time bookkeeping admission
// control needs.
//
// Jobs are classified into three priority classes — Interactive
// (latency-sensitive submissions), Incremental (base_job_id resubmits,
// which are cheap when their retained state is warm), and Batch
// (throughput work) — and dequeued in that order. Two mechanisms keep
// one class from starving the others:
//
//   - quotas: each class may cap its concurrent in-flight jobs. A class
//     at its quota yields the worker to the next priority class with
//     pending work, so a flood of interactive jobs cannot occupy every
//     worker while batch work ages out.
//   - work conservation: when every pending class sits at its quota and
//     a worker is free anyway, the highest-priority pending item runs.
//     Quotas bound contention; they never idle a worker while any work
//     is queued.
//
// The queue owns the two clocks overload control runs on:
//
//   - per-class EWMA of service times (fed by Done), from which
//     EstimatedWait predicts how long a newly admitted job of a class
//     would sit in the queue — the admission controller rejects jobs
//     whose estimate already exceeds their deadline, and the
//     degradation ladder downgrades batch jobs above a wait threshold;
//   - per-item deadline timers: a job whose deadline expires while
//     still queued is removed and reported through Config.OnExpire
//     without ever reaching a worker (shedding), so queue wait cannot
//     silently convert into wasted solver time.
//
// The queue is deliberately job-agnostic (items carry an opaque
// Payload): the same scheduler fronts the local worker pool today and a
// sharded transport later (ROADMAP item 2).
package sched

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Class is a job's scheduling class; lower values dequeue first.
type Class uint8

const (
	// Interactive jobs are latency-sensitive: humans or tools blocking
	// on the answer. Highest priority.
	Interactive Class = iota
	// Incremental jobs name a base_job_id: resubmits that warm-start
	// from retained state and are usually cheap.
	Incremental
	// Batch jobs are throughput work: lowest priority, and the first
	// rung of the degradation ladder under queue pressure.
	Batch
	// NumClasses bounds the Class values; per-class arrays index by it.
	NumClasses = 3
)

// String returns the wire name of the class ("interactive",
// "incremental", "batch").
func (c Class) String() string {
	switch c {
	case Interactive:
		return "interactive"
	case Incremental:
		return "incremental"
	case Batch:
		return "batch"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// ParseClass maps a wire name to its Class.
func ParseClass(s string) (Class, bool) {
	switch s {
	case "interactive":
		return Interactive, true
	case "incremental":
		return Incremental, true
	case "batch":
		return Batch, true
	}
	return 0, false
}

// ClassNames lists the wire names in priority order, for flags, metrics
// labels and docs.
func ClassNames() [NumClasses]string {
	return [NumClasses]string{Interactive.String(), Incremental.String(), Batch.String()}
}

var (
	// ErrFull rejects a Push when the queue holds Capacity pending items.
	ErrFull = errors.New("sched: queue full")
	// ErrClosed rejects a Push after Close.
	ErrClosed = errors.New("sched: queue closed")
)

type itemState uint8

const (
	itemPending itemState = iota
	itemPopped
	itemRemoved
)

// Item is one queued unit of work. Class, Deadline and Payload are set
// by the caller before Push; Enqueued is stamped by Push. An Item must
// not be reused after it leaves the queue.
type Item struct {
	Class    Class
	Deadline time.Time // zero = no deadline (never shed)
	Enqueued time.Time
	Payload  any

	state itemState
	timer *time.Timer
}

// Config tunes a Queue.
type Config struct {
	// Capacity bounds pending (not in-flight) items; Push returns
	// ErrFull beyond it. 0 = 64.
	Capacity int
	// Workers is the consumer-pool size, the divisor of EstimatedWait.
	// 0 = 1.
	Workers int
	// Quotas caps concurrent in-flight items per class while other
	// classes have pending work; 0 = uncapped. See the package comment
	// for the work-conservation rule.
	Quotas [NumClasses]int
	// OnExpire is called — without the queue lock — when an item's
	// deadline expires while it is still pending. The item has already
	// been removed and its slot released. nil disables shed timers.
	OnExpire func(*Item)
}

// Queue is the bounded class-priority queue. All methods are safe for
// concurrent use.
type Queue struct {
	mu       sync.Mutex
	cond     *sync.Cond
	cfg      Config
	pending  [NumClasses][]*Item // FIFO per class; removed items are skipped lazily
	depth    [NumClasses]int     // live pending count per class
	size     int                 // sum of depth
	inflight [NumClasses]int
	// ewmaNS tracks recent service time per class; anyNS is the
	// cross-class fallback for a class that has not completed anything
	// yet.
	ewmaNS [NumClasses]float64
	anyNS  float64
	closed bool
}

// New returns an empty queue.
func New(cfg Config) *Queue {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 64
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	q := &Queue{cfg: cfg}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push enqueues it, arming a shed timer when the item carries a
// deadline. ErrFull when Capacity pending items exist, ErrClosed after
// Close.
func (q *Queue) Push(it *Item) error {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return ErrClosed
	}
	if q.size >= q.cfg.Capacity {
		q.mu.Unlock()
		return ErrFull
	}
	it.state = itemPending
	it.Enqueued = time.Now()
	q.pending[it.Class] = append(q.pending[it.Class], it)
	q.depth[it.Class]++
	q.size++
	if !it.Deadline.IsZero() && q.cfg.OnExpire != nil {
		it.timer = time.AfterFunc(time.Until(it.Deadline), func() { q.expire(it) })
	}
	q.mu.Unlock()
	q.cond.Signal()
	return nil
}

// expire is the shed timer callback: if the item is still pending its
// slot is released and OnExpire fires.
func (q *Queue) expire(it *Item) {
	q.mu.Lock()
	if it.state != itemPending {
		q.mu.Unlock()
		return
	}
	it.state = itemRemoved
	q.depth[it.Class]--
	q.size--
	q.mu.Unlock()
	q.cfg.OnExpire(it)
}

// Pop blocks until an item is eligible under the quota policy, or the
// queue is closed (ok=false; the worker should exit). The popped item's
// class holds an in-flight slot until Done releases it.
func (q *Queue) Pop() (it *Item, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if it := q.selectLocked(); it != nil {
			it.state = itemPopped
			if it.timer != nil {
				it.timer.Stop()
				it.timer = nil
			}
			q.depth[it.Class]--
			q.size--
			q.inflight[it.Class]++
			return it, true
		}
		if q.closed {
			return nil, false
		}
		q.cond.Wait()
	}
}

// selectLocked picks the next item: classes in priority order, the
// first with pending work and in-flight below quota wins; when every
// pending class is at quota, the highest-priority pending item runs
// anyway (work conservation — a free worker never idles over a quota).
func (q *Queue) selectLocked() *Item {
	var fallback Class
	haveFallback := false
	for c := Class(0); c < NumClasses; c++ {
		if q.frontLocked(c) == nil {
			continue
		}
		if quota := q.cfg.Quotas[c]; quota <= 0 || q.inflight[c] < quota {
			return q.popFrontLocked(c)
		}
		if !haveFallback {
			fallback, haveFallback = c, true
		}
	}
	if haveFallback {
		return q.popFrontLocked(fallback)
	}
	return nil
}

// frontLocked returns class c's oldest pending item, compacting
// lazily-removed entries off the front.
func (q *Queue) frontLocked(c Class) *Item {
	for len(q.pending[c]) > 0 {
		it := q.pending[c][0]
		if it.state == itemPending {
			return it
		}
		q.pending[c][0] = nil
		q.pending[c] = q.pending[c][1:]
	}
	return nil
}

// popFrontLocked removes and returns the front item; the caller has
// established via frontLocked that it exists and is pending.
func (q *Queue) popFrontLocked(c Class) *Item {
	it := q.pending[c][0]
	q.pending[c][0] = nil
	q.pending[c] = q.pending[c][1:]
	return it
}

// Done releases the in-flight slot a Pop of class c acquired and folds
// the observed service time into the class EWMA (α = 0.3: reactive
// enough to track load shifts, smooth enough not to chase one outlier).
func (q *Queue) Done(c Class, service time.Duration) {
	const alpha = 0.3
	ns := float64(service.Nanoseconds())
	q.mu.Lock()
	if q.inflight[c] > 0 {
		q.inflight[c]--
	}
	if q.ewmaNS[c] == 0 {
		q.ewmaNS[c] = ns
	} else {
		q.ewmaNS[c] = alpha*ns + (1-alpha)*q.ewmaNS[c]
	}
	if q.anyNS == 0 {
		q.anyNS = ns
	} else {
		q.anyNS = alpha*ns + (1-alpha)*q.anyNS
	}
	q.mu.Unlock()
	q.cond.Signal()
}

// Remove drops a still-pending item (client cancellation), releasing
// its queue slot immediately. Reports whether the item was pending —
// false means a worker already popped it (or it was shed/drained) and
// the caller must not treat it as queued.
func (q *Queue) Remove(it *Item) bool {
	if it == nil {
		return false
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if it.state != itemPending {
		return false
	}
	it.state = itemRemoved
	if it.timer != nil {
		it.timer.Stop()
		it.timer = nil
	}
	q.depth[it.Class]--
	q.size--
	return true
}

// Close stops intake, wakes every Pop-blocked worker (they observe
// ok=false once nothing is eligible), and returns the items that were
// still pending so the caller can fail them. Idempotent; later calls
// return nil.
func (q *Queue) Close() []*Item {
	q.mu.Lock()
	var drained []*Item
	q.closed = true
	for c := Class(0); c < NumClasses; c++ {
		for _, it := range q.pending[c] {
			if it != nil && it.state == itemPending {
				it.state = itemRemoved
				if it.timer != nil {
					it.timer.Stop()
					it.timer = nil
				}
				drained = append(drained, it)
			}
		}
		q.pending[c] = nil
		q.depth[c] = 0
	}
	q.size = 0
	q.mu.Unlock()
	q.cond.Broadcast()
	return drained
}

// EstimatedWait predicts the queue wait of a job of class c submitted
// now: the EWMA service time of every pending job at the same or higher
// priority, spread across the worker pool. A class with no completed
// samples borrows the cross-class EWMA; with no samples at all the
// estimate is zero (admission stays open until the queue has seen
// work).
func (q *Queue) EstimatedWait(c Class) time.Duration {
	q.mu.Lock()
	defer q.mu.Unlock()
	var ns float64
	for cc := Class(0); cc <= c && cc < NumClasses; cc++ {
		e := q.ewmaNS[cc]
		if e == 0 {
			e = q.anyNS
		}
		ns += e * float64(q.depth[cc])
	}
	return time.Duration(ns / float64(q.cfg.Workers))
}

// Len returns the number of pending items.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// Depths returns the pending count per class.
func (q *Queue) Depths() [NumClasses]int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.depth
}

// InFlight returns the running count per class (Popped, not yet Done).
func (q *Queue) InFlight() [NumClasses]int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.inflight
}
