package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func item(c Class) *Item { return &Item{Class: c} }

// Higher-priority classes must dequeue first regardless of arrival order.
func TestPriorityOrder(t *testing.T) {
	q := New(Config{Capacity: 16, Workers: 1})
	defer q.Close()
	b, inc, ia := item(Batch), item(Incremental), item(Interactive)
	for _, it := range []*Item{b, inc, ia} {
		if err := q.Push(it); err != nil {
			t.Fatalf("Push: %v", err)
		}
	}
	want := []*Item{ia, inc, b}
	for i, w := range want {
		got, ok := q.Pop()
		if !ok || got != w {
			t.Fatalf("Pop %d: got %v ok=%v, want class %v", i, got, ok, w.Class)
		}
		q.Done(got.Class, time.Millisecond)
	}
}

// FIFO within a class.
func TestFIFOWithinClass(t *testing.T) {
	q := New(Config{Capacity: 16, Workers: 1})
	defer q.Close()
	items := []*Item{item(Batch), item(Batch), item(Batch)}
	for _, it := range items {
		if err := q.Push(it); err != nil {
			t.Fatalf("Push: %v", err)
		}
	}
	for i, w := range items {
		got, ok := q.Pop()
		if !ok || got != w {
			t.Fatalf("Pop %d out of order", i)
		}
	}
}

// A class at its quota yields to lower-priority pending work.
func TestQuotaYieldsToLowerClass(t *testing.T) {
	q := New(Config{Capacity: 16, Workers: 2, Quotas: [NumClasses]int{Interactive: 1}})
	defer q.Close()
	ia1, ia2, b := item(Interactive), item(Interactive), item(Batch)
	for _, it := range []*Item{ia1, ia2, b} {
		if err := q.Push(it); err != nil {
			t.Fatalf("Push: %v", err)
		}
	}
	got, _ := q.Pop()
	if got != ia1 {
		t.Fatalf("first pop: want interactive head")
	}
	// Interactive is now at quota (1 in flight): the batch item must win.
	got, _ = q.Pop()
	if got != b {
		t.Fatalf("second pop: want batch (interactive at quota), got class %v", got.Class)
	}
	// Releasing the slot re-enables interactive.
	q.Done(Interactive, time.Millisecond)
	got, _ = q.Pop()
	if got != ia2 {
		t.Fatalf("third pop: want second interactive, got class %v", got.Class)
	}
}

// When every pending class is at quota, a free worker still runs the
// highest-priority pending item instead of idling.
func TestWorkConservation(t *testing.T) {
	q := New(Config{Capacity: 16, Workers: 4, Quotas: [NumClasses]int{Interactive: 1, Incremental: 1, Batch: 1}})
	defer q.Close()
	for _, it := range []*Item{item(Interactive), item(Interactive), item(Batch)} {
		if err := q.Push(it); err != nil {
			t.Fatalf("Push: %v", err)
		}
	}
	first, _ := q.Pop()  // interactive, within quota
	second, _ := q.Pop() // batch, interactive at quota
	if first.Class != Interactive || second.Class != Batch {
		t.Fatalf("setup pops: got %v, %v", first.Class, second.Class)
	}
	// Both pending classes are now at quota; the remaining interactive
	// item must still be handed out.
	done := make(chan *Item, 1)
	go func() {
		it, ok := q.Pop()
		if ok {
			done <- it
		}
	}()
	select {
	case it := <-done:
		if it.Class != Interactive {
			t.Fatalf("work-conservation pop: got class %v", it.Class)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Pop idled with pending work (work conservation broken)")
	}
}

func TestCapacityAndClosed(t *testing.T) {
	q := New(Config{Capacity: 2, Workers: 1})
	if err := q.Push(item(Batch)); err != nil {
		t.Fatalf("Push 1: %v", err)
	}
	if err := q.Push(item(Batch)); err != nil {
		t.Fatalf("Push 2: %v", err)
	}
	if err := q.Push(item(Batch)); err != ErrFull {
		t.Fatalf("Push over capacity: got %v, want ErrFull", err)
	}
	drained := q.Close()
	if len(drained) != 2 {
		t.Fatalf("Close drained %d, want 2", len(drained))
	}
	if err := q.Push(item(Batch)); err != ErrClosed {
		t.Fatalf("Push after close: got %v, want ErrClosed", err)
	}
	if more := q.Close(); more != nil {
		t.Fatalf("second Close returned %d items, want nil", len(more))
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on closed empty queue returned ok")
	}
}

// Remove frees the slot immediately, letting a Push that was blocked on
// capacity succeed, and a removed item is never handed to a worker.
func TestRemoveReleasesSlot(t *testing.T) {
	q := New(Config{Capacity: 2, Workers: 1})
	defer q.Close()
	victim, keep := item(Batch), item(Batch)
	if err := q.Push(victim); err != nil {
		t.Fatalf("Push: %v", err)
	}
	if err := q.Push(keep); err != nil {
		t.Fatalf("Push: %v", err)
	}
	if !q.Remove(victim) {
		t.Fatal("Remove pending item returned false")
	}
	if q.Remove(victim) {
		t.Fatal("double Remove returned true")
	}
	if err := q.Push(item(Batch)); err != nil {
		t.Fatalf("Push after Remove should fit: %v", err)
	}
	got, ok := q.Pop()
	if !ok || got == victim {
		t.Fatal("Pop handed out a removed item")
	}
	// An item already popped cannot be removed.
	if q.Remove(got) {
		t.Fatal("Remove of popped item returned true")
	}
}

// A queued item whose deadline passes is shed via OnExpire, never popped.
func TestDeadlineShed(t *testing.T) {
	var shed atomic.Int32
	expired := make(chan *Item, 1)
	q := New(Config{Capacity: 4, Workers: 1, OnExpire: func(it *Item) {
		shed.Add(1)
		expired <- it
	}})
	defer q.Close()
	doomed := &Item{Class: Batch, Deadline: time.Now().Add(20 * time.Millisecond)}
	if err := q.Push(doomed); err != nil {
		t.Fatalf("Push: %v", err)
	}
	select {
	case it := <-expired:
		if it != doomed {
			t.Fatal("OnExpire got the wrong item")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("shed timer never fired")
	}
	if q.Len() != 0 {
		t.Fatalf("Len after shed = %d, want 0", q.Len())
	}
	// A popped item must NOT be shed even if its deadline passes.
	live := &Item{Class: Batch, Deadline: time.Now().Add(30 * time.Millisecond)}
	if err := q.Push(live); err != nil {
		t.Fatalf("Push: %v", err)
	}
	if got, ok := q.Pop(); !ok || got != live {
		t.Fatal("Pop did not return the live item")
	}
	time.Sleep(60 * time.Millisecond)
	if n := shed.Load(); n != 1 {
		t.Fatalf("shed count = %d, want 1 (popped item must not shed)", n)
	}
}

func TestEstimatedWait(t *testing.T) {
	q := New(Config{Capacity: 16, Workers: 2})
	defer q.Close()
	if w := q.EstimatedWait(Batch); w != 0 {
		t.Fatalf("empty-history estimate = %v, want 0", w)
	}
	// Teach the queue ~100ms interactive service time.
	for i := 0; i < 5; i++ {
		q.Done(Interactive, 100*time.Millisecond)
	}
	for i := 0; i < 4; i++ {
		if err := q.Push(item(Interactive)); err != nil {
			t.Fatalf("Push: %v", err)
		}
	}
	// 4 pending × ~100ms / 2 workers ≈ 200ms.
	w := q.EstimatedWait(Interactive)
	if w < 100*time.Millisecond || w > 400*time.Millisecond {
		t.Fatalf("EstimatedWait(Interactive) = %v, want ~200ms", w)
	}
	// Batch waits behind everything at or above its priority, so its
	// estimate includes the interactive backlog (borrowing the
	// cross-class EWMA for its own empty class).
	if wb := q.EstimatedWait(Batch); wb < w {
		t.Fatalf("EstimatedWait(Batch) = %v < interactive %v", wb, w)
	}
	if q.EstimatedWait(Interactive) == 0 {
		t.Fatal("estimate collapsed to zero with pending work")
	}
}

func TestDepthsAndInFlight(t *testing.T) {
	q := New(Config{Capacity: 16, Workers: 2})
	defer q.Close()
	q.Push(item(Interactive))
	q.Push(item(Batch))
	q.Push(item(Batch))
	if d := q.Depths(); d[Interactive] != 1 || d[Batch] != 2 {
		t.Fatalf("Depths = %v", d)
	}
	it, _ := q.Pop()
	if f := q.InFlight(); f[it.Class] != 1 {
		t.Fatalf("InFlight = %v after pop of %v", f, it.Class)
	}
	q.Done(it.Class, time.Millisecond)
	if f := q.InFlight(); f[it.Class] != 0 {
		t.Fatalf("InFlight = %v after Done", f)
	}
	if q.Len() != 2 {
		t.Fatalf("Len = %d, want 2", q.Len())
	}
}

// Hammer the queue from many goroutines; every pushed item must be
// popped exactly once and the final counts must balance. Run with
// -race.
func TestConcurrentStress(t *testing.T) {
	q := New(Config{Capacity: 1024, Workers: 4, Quotas: [NumClasses]int{Interactive: 2, Batch: 2}})
	const producers, perProducer = 8, 50
	var popped atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				it, ok := q.Pop()
				if !ok {
					return
				}
				popped.Add(1)
				q.Done(it.Class, time.Microsecond)
			}
		}()
	}
	var pushed atomic.Int64
	var pwg sync.WaitGroup
	for p := 0; p < producers; p++ {
		pwg.Add(1)
		go func(p int) {
			defer pwg.Done()
			for i := 0; i < perProducer; i++ {
				if err := q.Push(item(Class(i % NumClasses))); err == nil {
					pushed.Add(1)
				}
			}
		}(p)
	}
	pwg.Wait()
	// Wait for drain, then close to release the workers.
	deadline := time.Now().Add(5 * time.Second)
	for q.Len() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	drained := q.Close()
	wg.Wait()
	if got := popped.Load() + int64(len(drained)); got != pushed.Load() {
		t.Fatalf("popped+drained = %d, pushed = %d", got, pushed.Load())
	}
}

func TestParseClass(t *testing.T) {
	for _, name := range ClassNames() {
		c, ok := ParseClass(name)
		if !ok || c.String() != name {
			t.Fatalf("ParseClass(%q) round-trip failed", name)
		}
	}
	if _, ok := ParseClass("nope"); ok {
		t.Fatal("ParseClass accepted garbage")
	}
	if _, ok := ParseClass(""); ok {
		t.Fatal("ParseClass accepted empty string")
	}
}
