package server

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"sync"
)

// absCache is the abstraction cache: it maps the content hash of a
// program's canonical IR to the persisted form of its Mahjong
// abstraction (the core Save/LoadMOM JSON). The persisted form — not
// the in-memory Abstraction — is what must be cached, because a MOM is
// keyed by *lang.AllocSite pointers of one particular Program value; a
// later submission of identical IR parses a fresh Program and rebinds
// the classes by stable site label via LoadAbstraction.
//
// Fills are single-flight: concurrent requests for the same key wait
// for the first filler instead of building the same abstraction twice,
// so of two parallel submissions of one program exactly one performs
// the merge. Entries are evicted LRU once capacity is exceeded.
type absCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*cacheEntry
	lru     *list.List // front = most recently used; values are *cacheEntry
}

type cacheEntry struct {
	key    string
	ready  chan struct{} // closed once the fill attempt finished
	data   []byte        // valid iff filled; written before ready closes
	filled bool
	elem   *list.Element
}

func newAbsCache(capacity int) *absCache {
	return &absCache{
		cap:     capacity,
		entries: make(map[string]*cacheEntry),
		lru:     list.New(),
	}
}

// cacheKey returns the cache key for a program's canonical IR text.
func cacheKey(canonicalIR string) string {
	sum := sha256.Sum256([]byte(canonicalIR))
	return hex.EncodeToString(sum[:])
}

// len returns the number of cached (or in-flight) entries.
func (c *absCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// getOrFill returns the persisted abstraction for key. On a miss it
// runs fill exactly once (per concurrent wave) and caches its output;
// concurrent callers block on the filler — or on ctx — and report a
// hit. A failed fill is not cached: the error propagates to the filler
// and waiters retry, each wave electing a new filler.
func (c *absCache) getOrFill(ctx context.Context, key string, fill func() ([]byte, error)) (data []byte, hit bool, err error) {
	for {
		c.mu.Lock()
		if e, ok := c.entries[key]; ok {
			c.lru.MoveToFront(e.elem)
			c.mu.Unlock()
			select {
			case <-e.ready:
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
			if e.filled { // published before ready closed
				return e.data, true, nil
			}
			continue // the filler failed and removed the entry; re-elect
		}
		e := &cacheEntry{key: key, ready: make(chan struct{})}
		e.elem = c.lru.PushFront(e)
		c.entries[key] = e
		c.mu.Unlock()

		data, err = fill()
		c.mu.Lock()
		if err != nil {
			delete(c.entries, key)
			c.lru.Remove(e.elem)
			c.mu.Unlock()
			close(e.ready)
			return nil, false, err
		}
		e.data = data
		e.filled = true
		c.evictLocked()
		c.mu.Unlock()
		close(e.ready)
		return data, false, nil
	}
}

// quarantine evicts a filled entry whose bytes failed to rebind.
// Corruption is sticky — serving the entry again would fail every
// future hit — so the caller drops it and rebuilds from scratch.
// In-flight fills are left alone. Reports whether an entry was dropped.
func (c *absCache) quarantine(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok || !e.filled {
		return false
	}
	delete(c.entries, key)
	c.lru.Remove(e.elem)
	return true
}

// evictLocked drops least-recently-used filled entries until the cache
// fits its capacity. In-flight fills are never evicted.
func (c *absCache) evictLocked() {
	for c.cap > 0 && len(c.entries) > c.cap {
		var victim *cacheEntry
		for el := c.lru.Back(); el != nil; el = el.Prev() {
			if e := el.Value.(*cacheEntry); e.filled {
				victim = e
				break
			}
		}
		if victim == nil {
			return
		}
		delete(c.entries, victim.key)
		c.lru.Remove(victim.elem)
	}
}
