package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCacheSingleFlight(t *testing.T) {
	c := newAbsCache(8)
	var fills atomic.Int64
	release := make(chan struct{})

	const waiters = 8
	var wg sync.WaitGroup
	results := make([][]byte, waiters)
	hits := make([]bool, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			data, hit, err := c.getOrFill(context.Background(), "k", func() ([]byte, error) {
				fills.Add(1)
				<-release // hold the fill open until all goroutines are queued
				return []byte("abs"), nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			results[i], hits[i] = data, hit
		}()
	}
	close(release)
	wg.Wait()

	if got := fills.Load(); got != 1 {
		t.Fatalf("fill ran %d times, want 1", got)
	}
	misses := 0
	for i := range results {
		if string(results[i]) != "abs" {
			t.Fatalf("waiter %d got %q", i, results[i])
		}
		if !hits[i] {
			misses++
		}
	}
	if misses != 1 {
		t.Fatalf("%d misses, want exactly 1 (the filler)", misses)
	}
}

func TestCacheFailedFillIsNotCached(t *testing.T) {
	c := newAbsCache(8)
	boom := errors.New("boom")
	if _, _, err := c.getOrFill(context.Background(), "k", func() ([]byte, error) {
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("want fill error, got %v", err)
	}
	data, hit, err := c.getOrFill(context.Background(), "k", func() ([]byte, error) {
		return []byte("ok"), nil
	})
	if err != nil || hit || string(data) != "ok" {
		t.Fatalf("retry after failure: data=%q hit=%v err=%v", data, hit, err)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newAbsCache(2)
	fill := func(v string) func() ([]byte, error) {
		return func() ([]byte, error) { return []byte(v), nil }
	}
	mustFill := func(key string, wantHit bool) {
		t.Helper()
		_, hit, err := c.getOrFill(context.Background(), key, fill(key))
		if err != nil {
			t.Fatal(err)
		}
		if hit != wantHit {
			t.Fatalf("key %s: hit=%v, want %v", key, hit, wantHit)
		}
	}
	mustFill("a", false)
	mustFill("b", false)
	mustFill("a", true)  // refresh a
	mustFill("c", false) // evicts b (LRU)
	if c.len() != 2 {
		t.Fatalf("cache size %d, want 2", c.len())
	}
	mustFill("a", true)
	mustFill("b", false) // b was evicted
}

func TestCacheWaiterHonorsContext(t *testing.T) {
	c := newAbsCache(2)
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	go func() {
		c.getOrFill(context.Background(), "k", func() ([]byte, error) {
			close(started)
			<-release
			return []byte("late"), nil
		})
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.getOrFill(ctx, "k", func() ([]byte, error) {
		return nil, fmt.Errorf("must not run")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled while waiting on filler, got %v", err)
	}
}
