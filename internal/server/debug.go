package server

import (
	"net/http"
	"net/http/pprof"
)

// DebugHandler returns the net/http/pprof profiling surface on a
// dedicated mux. It is deliberately NOT part of Server's mux: profiling
// endpoints leak heap contents and symbol names, so mahjongd only binds
// them on the opt-in -debug-addr listener (typically localhost), never
// on the serving address. Handlers are registered explicitly rather
// than via the net/http/pprof import side effect, so nothing ever lands
// on http.DefaultServeMux either.
func DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
