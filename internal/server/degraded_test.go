package server

import (
	"fmt"
	"net/http/httptest"
	"testing"

	"mahjong/internal/faultinject"
)

// typesOf fetches the set of types the analysis lets v point to.
func typesOf(t *testing.T, ts *httptest.Server, jobID, v string) map[string]bool {
	t.Helper()
	var pts struct {
		Types []string `json:"types"`
	}
	resp := getJSON(t, fmt.Sprintf("%s/jobs/%s/pointsto?var=Main.main/0%%23%s", ts.URL, jobID, v), &pts)
	if resp.StatusCode != 200 {
		t.Fatalf("pointsto %s for job %s: status %d", v, jobID, resp.StatusCode)
	}
	out := map[string]bool{}
	for _, ty := range pts.Types {
		out[ty] = true
	}
	return out
}

// Degraded results are sound, not merely present: a job that fell back
// to the allocation-site abstraction must report exactly what a job
// explicitly requesting heap=alloc-site reports (the fallback IS that
// analysis), and the paper's ordering — merging only coarsens — means
// both are subsets of the Mahjong run's type sets per variable.
func TestDegradedResultMatchesAllocSite(t *testing.T) {
	srv := New(Config{Workers: 1})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	t.Cleanup(faultinject.Clear)

	baseline := waitJob(t, ts, submit(t, ts, JobSpec{IR: matrixIR, Analysis: "ci", Heap: "alloc-site"}))
	if baseline.State != StateDone || baseline.Degraded {
		t.Fatalf("baseline job: state %s degraded %v", baseline.State, baseline.Degraded)
	}

	faultinject.Set(faultinject.OnStage(faultinject.StageModel, faultinject.Once(faultinject.PanicWith("injected modeler bug"))))
	degraded := waitJob(t, ts, submit(t, ts, JobSpec{IR: matrixIR, Analysis: "ci"}))
	faultinject.Clear()
	if degraded.State != StateDone || !degraded.Degraded {
		t.Fatalf("degraded job: state %s degraded %v (error %q)", degraded.State, degraded.Degraded, degraded.Error)
	}

	mahjongJob := waitJob(t, ts, submit(t, ts, JobSpec{IR: matrixIR, Analysis: "ci"}))
	if mahjongJob.State != StateDone || mahjongJob.Degraded {
		t.Fatalf("mahjong job: state %s degraded %v (error %q)", mahjongJob.State, mahjongJob.Degraded, mahjongJob.Error)
	}

	for _, v := range []string{"x", "y", "z", "w", "c", "u"} {
		deg := typesOf(t, ts, degraded.ID, v)
		base := typesOf(t, ts, baseline.ID, v)
		mj := typesOf(t, ts, mahjongJob.ID, v)
		if len(deg) != len(base) {
			t.Fatalf("var %s: degraded types %v != alloc-site types %v", v, deg, base)
		}
		for ty := range base {
			if !deg[ty] {
				t.Fatalf("var %s: degraded types %v != alloc-site types %v", v, deg, base)
			}
			if !mj[ty] {
				t.Fatalf("var %s: type %s in the baseline but not under Mahjong %v — merging lost a fact", v, ty, mj)
			}
		}
	}
}
