package server

import (
	"container/list"
	"sync"

	"mahjong"
)

// deltaStore retains the DeltaState of recently built abstractions,
// keyed by job ID, so a later submission can name one as base_job_id
// and solve incrementally against it. States are heavyweight — each
// holds the analyzed program, the saturated pre-analysis solver, and
// the captured merge decisions — so the store is a small LRU rather
// than unbounded history: an evicted base silently demotes the delta
// job to a from-scratch build, which is always correct.
type deltaStore struct {
	mu      sync.Mutex
	cap     int // <0 = unbounded
	entries map[string]*list.Element
	lru     *list.List // front = most recently used; values are *deltaEntry
}

type deltaEntry struct {
	id string
	st *mahjong.DeltaState
}

// newDeltaStore returns a store retaining up to capacity states
// (0 = 4, negative = unbounded).
func newDeltaStore(capacity int) *deltaStore {
	if capacity == 0 {
		capacity = 4
	}
	return &deltaStore{
		cap:     capacity,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
	}
}

// put retains st under id, evicting the least recently used state when
// over capacity. A nil state is ignored.
func (d *deltaStore) put(id string, st *mahjong.DeltaState) {
	if st == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if e, ok := d.entries[id]; ok {
		e.Value.(*deltaEntry).st = st
		d.lru.MoveToFront(e)
		return
	}
	d.entries[id] = d.lru.PushFront(&deltaEntry{id: id, st: st})
	for d.cap > 0 && d.lru.Len() > d.cap {
		back := d.lru.Back()
		d.lru.Remove(back)
		delete(d.entries, back.Value.(*deltaEntry).id)
	}
}

// get returns the retained state for id (bumping its recency), or nil.
func (d *deltaStore) get(id string) *mahjong.DeltaState {
	if id == "" {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.entries[id]
	if !ok {
		return nil
	}
	d.lru.MoveToFront(e)
	return e.Value.(*deltaEntry).st
}

func (d *deltaStore) len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.lru.Len()
}
