package server

// The mahjongd fault-injection matrix: every pipeline stage is hit with
// an injected fault (panic, budget exhaustion, cache corruption, slow
// stage) and the daemon must degrade or fail the ONE affected job while
// the pool, the cache and subsequent jobs stay healthy. Run under the
// race detector via `make faultmatrix`.

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"mahjong"
	"mahjong/internal/faultinject"
)

// matrixIR extends testIR with two multi-site type groups (B×3, C×2),
// so the heap modeler runs real automata-equivalence checks on its
// parallel merge workers (the "automata.equiv" seam fires inside
// worker goroutines, and merge-pair budgets can exhaust).
const matrixIR = `
class A {
  field f: A
  method foo(): void {
    return
  }
}

class B extends A {
  method foo(): void {
    return
  }
}

class C extends A {
  method foo(): void {
    return
  }
}

class Main {
  static method main(): void {
    var x: A
    var y: A
    var z: A
    var u: A
    var v: A
    var q: A
    var w: A
    var c: C
    x = new A
    y = new B
    z = new C
    u = new B
    v = new B
    q = new C
    x.f = y
    x.f = z
    x.f = u
    x.f = v
    x.f = q
    w = x.f
    w.foo()
    c = (C) w
    return
  }
}

entry Main.main/0
`

func boolPtr(b bool) *bool { return &b }

// runCase spins up a fresh server (own cache, own metrics), installs
// the fault, runs the job, and returns the terminal view plus a metrics
// snapshot taken after the job finished.
func runCase(t *testing.T, hook faultinject.Hook, spec JobSpec) (view, MetricsSnapshot, *httptest.Server) {
	return runCaseCfg(t, Config{Workers: 2}, hook, spec)
}

// runCaseCfg is runCase with a caller-chosen server Config, for faults
// whose seams only fire under non-default solver settings (the sharded
// parallel engine, object renumbering).
func runCaseCfg(t *testing.T, cfg Config, hook faultinject.Hook, spec JobSpec) (view, MetricsSnapshot, *httptest.Server) {
	t.Helper()
	_, ts := newTestServer(t, cfg)
	t.Cleanup(faultinject.Clear)
	faultinject.Set(hook)
	v := waitJob(t, ts, submit(t, ts, spec))
	faultinject.Clear()
	var snap MetricsSnapshot
	getJSON(t, ts.URL+"/metrics?format=json", &snap)
	return v, snap, ts
}

// assertHealthy proves the pool survived the fault: a clean job on the
// same server completes normally.
func assertHealthy(t *testing.T, ts *httptest.Server) {
	t.Helper()
	clean := waitJob(t, ts, submit(t, ts, JobSpec{IR: matrixIR, Analysis: "2obj"}))
	if clean.State != StateDone || clean.Degraded {
		t.Fatalf("follow-up job after fault: state %s degraded %v (error %q), want clean done",
			clean.State, clean.Degraded, clean.Error)
	}
	if clean.Result == nil || clean.Result.Objects == 0 {
		t.Fatalf("follow-up job built no abstraction: %+v", clean.Result)
	}
}

func TestFaultMatrix(t *testing.T) {
	goroutinesBefore := runtime.NumGoroutine()

	t.Run("solve panic degrades", func(t *testing.T) {
		v, snap, ts := runCase(t,
			faultinject.OnStage(faultinject.StageSolve, faultinject.Once(faultinject.PanicWith("injected solver bug"))),
			JobSpec{IR: matrixIR})
		if v.State != StateDone || !v.Degraded {
			t.Fatalf("state %s degraded %v (error %q), want degraded done", v.State, v.Degraded, v.Error)
		}
		if !strings.Contains(v.DegradedCause, "pta.solve") || !strings.Contains(v.DegradedCause, "injected solver bug") {
			t.Fatalf("degraded cause %q does not name the stage and panic", v.DegradedCause)
		}
		if snap.JobsDegraded != 1 || snap.PanicsRecovered != 1 || snap.StageFailures["pta.solve"] != 1 {
			t.Fatalf("metrics degraded/panics/stage = %d/%d/%v, want 1/1/{pta.solve:1}",
				snap.JobsDegraded, snap.PanicsRecovered, snap.StageFailures)
		}
		// The degraded job must not have cached an abstraction, nor
		// serve one.
		if snap.CacheEntries != 0 {
			t.Fatalf("degraded run left %d cache entries, want 0", snap.CacheEntries)
		}
		if resp := getJSON(t, ts.URL+"/jobs/"+v.ID+"/abstraction", nil); resp.StatusCode != http.StatusNotFound {
			t.Fatalf("degraded job serves an abstraction: status %d, want 404", resp.StatusCode)
		}
		// Degraded results are still sound and queryable: w sees B and C.
		var pts struct {
			Types []string `json:"types"`
		}
		getJSON(t, ts.URL+"/jobs/"+v.ID+"/pointsto?var=Main.main/0%23w", &pts)
		if !equalStrings(pts.Types, []string{"B", "C"}) {
			t.Fatalf("degraded pointsto types = %v, want [B C]", pts.Types)
		}
		assertHealthy(t, ts)
	})

	t.Run("solve panic fails when degrade off", func(t *testing.T) {
		v, snap, ts := runCase(t,
			faultinject.OnStage(faultinject.StageSolve, faultinject.Once(faultinject.PanicWith("injected solver bug"))),
			JobSpec{IR: matrixIR, Degrade: boolPtr(false)})
		if v.State != StateFailed || v.Degraded {
			t.Fatalf("state %s degraded %v, want plain failed", v.State, v.Degraded)
		}
		if !strings.Contains(v.Error, "internal error in pta.solve") {
			t.Fatalf("error %q does not carry the typed stage failure", v.Error)
		}
		if snap.JobsFailed != 1 || snap.PanicsRecovered != 1 || snap.StageFailures["pta.solve"] != 1 {
			t.Fatalf("metrics failed/panics/stage = %d/%d/%v", snap.JobsFailed, snap.PanicsRecovered, snap.StageFailures)
		}
		assertHealthy(t, ts)
	})

	t.Run("collapse panic degrades", func(t *testing.T) {
		// Benchmarks are big enough that the solver runs condensation
		// passes, so the fault strikes while Tarjan state is live.
		v, snap, ts := runCase(t,
			faultinject.OnStage(faultinject.StageCollapse, faultinject.Once(faultinject.PanicWith("injected collapse bug"))),
			JobSpec{Benchmark: "luindex"})
		if v.State != StateDone || !v.Degraded {
			t.Fatalf("state %s degraded %v (error %q), want degraded done", v.State, v.Degraded, v.Error)
		}
		if !strings.Contains(v.DegradedCause, "pta.collapse") {
			t.Fatalf("degraded cause %q does not name pta.collapse", v.DegradedCause)
		}
		if snap.StageFailures["pta.collapse"] != 1 {
			t.Fatalf("stage failures %v, want pta.collapse:1", snap.StageFailures)
		}
		assertHealthy(t, ts)
	})

	t.Run("shard worker panic degrades", func(t *testing.T) {
		// The shard seam fires inside parallel propagation workers, so the
		// server must run with SolverWorkers >= 2 and a program big enough
		// (luindex) to trigger phases. One worker dies; the engine must
		// stop its siblings instead of deadlocking termination detection,
		// and the job degrades like any other stage bug.
		v, snap, ts := runCaseCfg(t, Config{Workers: 2, SolverWorkers: 2, Renumber: true},
			faultinject.OnStage(faultinject.StageShardSolve, faultinject.Once(faultinject.PanicWith("injected shard worker bug"))),
			JobSpec{Benchmark: "luindex"})
		if v.State != StateDone || !v.Degraded {
			t.Fatalf("state %s degraded %v (error %q), want degraded done", v.State, v.Degraded, v.Error)
		}
		if !strings.Contains(v.DegradedCause, "pta.shard.solve") || !strings.Contains(v.DegradedCause, "injected shard worker bug") {
			t.Fatalf("degraded cause %q does not name the worker stage and panic", v.DegradedCause)
		}
		if snap.StageFailures["pta.shard.solve"] != 1 {
			t.Fatalf("stage failures %v, want pta.shard.solve:1", snap.StageFailures)
		}
		assertHealthy(t, ts)
	})

	t.Run("shard worker budget error degrades", func(t *testing.T) {
		// The budget arm of the worker-death matrix: exhaustion injected at
		// the shard seam unwinds through the coordinator as a typed failure
		// wrapping the sentinel, which the degrade path matches.
		v, _, ts := runCaseCfg(t, Config{Workers: 2, SolverWorkers: 2},
			faultinject.OnStage(faultinject.StageShardSolve, faultinject.Once(faultinject.Fail(mahjong.ErrBudgetExhausted))),
			JobSpec{Benchmark: "luindex"})
		if v.State != StateDone || !v.Degraded {
			t.Fatalf("state %s degraded %v (error %q), want degraded done", v.State, v.Degraded, v.Error)
		}
		if !strings.Contains(v.DegradedCause, "pta.shard.solve") {
			t.Fatalf("degraded cause %q does not name pta.shard.solve", v.DegradedCause)
		}
		assertHealthy(t, ts)
	})

	t.Run("renumber panic degrades", func(t *testing.T) {
		v, snap, ts := runCaseCfg(t, Config{Workers: 2, Renumber: true},
			faultinject.OnStage(faultinject.StageRenumber, faultinject.Once(faultinject.PanicWith("injected renumber bug"))),
			JobSpec{IR: matrixIR})
		if v.State != StateDone || !v.Degraded {
			t.Fatalf("state %s degraded %v (error %q), want degraded done", v.State, v.Degraded, v.Error)
		}
		if !strings.Contains(v.DegradedCause, "pta.renumber") {
			t.Fatalf("degraded cause %q does not name pta.renumber", v.DegradedCause)
		}
		if snap.StageFailures["pta.renumber"] != 1 {
			t.Fatalf("stage failures %v, want pta.renumber:1", snap.StageFailures)
		}
		assertHealthy(t, ts)
	})

	t.Run("fpg panic degrades", func(t *testing.T) {
		v, snap, ts := runCase(t,
			faultinject.OnStage(faultinject.StageFPG, faultinject.Once(faultinject.PanicWith("injected fpg bug"))),
			JobSpec{IR: matrixIR})
		if v.State != StateDone || !v.Degraded || !strings.Contains(v.DegradedCause, "fpg.build") {
			t.Fatalf("state %s degraded %v cause %q, want degraded via fpg.build", v.State, v.Degraded, v.DegradedCause)
		}
		if snap.StageFailures["fpg.build"] != 1 {
			t.Fatalf("stage failures %v, want fpg.build:1", snap.StageFailures)
		}
		assertHealthy(t, ts)
	})

	t.Run("modeler panic degrades", func(t *testing.T) {
		v, snap, ts := runCase(t,
			faultinject.OnStage(faultinject.StageModel, faultinject.Once(faultinject.PanicWith("injected modeler bug"))),
			JobSpec{IR: matrixIR})
		if v.State != StateDone || !v.Degraded || !strings.Contains(v.DegradedCause, "core.build") {
			t.Fatalf("state %s degraded %v cause %q, want degraded via core.build", v.State, v.Degraded, v.DegradedCause)
		}
		if snap.StageFailures["core.build"] != 1 {
			t.Fatalf("stage failures %v, want core.build:1", snap.StageFailures)
		}
		assertHealthy(t, ts)
	})

	t.Run("equiv panic in merge worker degrades", func(t *testing.T) {
		// The equivalence seam fires inside the modeler's parallel merge
		// workers: an uncontained panic there would kill the process, not
		// just the job.
		v, snap, ts := runCase(t,
			faultinject.OnStage(faultinject.StageEquiv, faultinject.Once(faultinject.PanicWith("injected equiv bug"))),
			JobSpec{IR: matrixIR})
		if v.State != StateDone || !v.Degraded || !strings.Contains(v.DegradedCause, "automata.equiv") {
			t.Fatalf("state %s degraded %v cause %q, want degraded via automata.equiv", v.State, v.Degraded, v.DegradedCause)
		}
		if snap.StageFailures["automata.equiv"] != 1 {
			t.Fatalf("stage failures %v, want automata.equiv:1", snap.StageFailures)
		}
		assertHealthy(t, ts)
	})

	t.Run("clients panic degrades", func(t *testing.T) {
		v, _, ts := runCase(t,
			faultinject.OnStage(faultinject.StageClients, faultinject.Once(faultinject.PanicWith("injected client bug"))),
			JobSpec{IR: matrixIR})
		if v.State != StateDone || !v.Degraded || !strings.Contains(v.DegradedCause, "clients.evaluate") {
			t.Fatalf("state %s degraded %v cause %q, want degraded via clients.evaluate", v.State, v.Degraded, v.DegradedCause)
		}
		assertHealthy(t, ts)
	})

	t.Run("merge-pair budget exhaustion degrades", func(t *testing.T) {
		// A real budget, not an injected error: three same-typed B sites
		// force >=2 equivalence tests, exceeding merge-pair limit 1. The
		// degraded alloc-site re-run performs no merging, so it fits the
		// same budget.
		v, snap, ts := runCase(t, nil, JobSpec{IR: matrixIR, BudgetPairs: 1})
		if v.State != StateDone || !v.Degraded {
			t.Fatalf("state %s degraded %v (error %q), want degraded done", v.State, v.Degraded, v.Error)
		}
		if !strings.Contains(v.DegradedCause, "merge-pairs") {
			t.Fatalf("degraded cause %q does not name the exhausted resource", v.DegradedCause)
		}
		if snap.BudgetExhausted != 1 {
			t.Fatalf("budget_exhausted = %d, want 1", snap.BudgetExhausted)
		}
		assertHealthy(t, ts)
	})

	t.Run("budget exhaustion fails when degrade off", func(t *testing.T) {
		v, snap, ts := runCase(t, nil, JobSpec{IR: matrixIR, BudgetPairs: 1, Degrade: boolPtr(false)})
		if v.State != StateFailed || !strings.Contains(v.Error, "resource budget exhausted") {
			t.Fatalf("state %s error %q, want failed with budget exhaustion", v.State, v.Error)
		}
		if snap.BudgetExhausted != 1 {
			t.Fatalf("budget_exhausted = %d, want 1", snap.BudgetExhausted)
		}
		assertHealthy(t, ts)
	})

	t.Run("injected budget error degrades", func(t *testing.T) {
		// Exhaustion injected at the solve seam instead of metered: the
		// typed sentinel must be matched through the wrapping.
		v, _, ts := runCase(t,
			faultinject.OnStage(faultinject.StageSolve, faultinject.Once(faultinject.Fail(mahjong.ErrBudgetExhausted))),
			JobSpec{IR: matrixIR})
		if v.State != StateDone || !v.Degraded {
			t.Fatalf("state %s degraded %v (error %q), want degraded done", v.State, v.Degraded, v.Error)
		}
		if !errors.Is(mahjong.ErrBudgetExhausted, mahjong.ErrBudgetExhausted) {
			t.Fatal("sentinel identity lost")
		}
		assertHealthy(t, ts)
	})

	t.Run("corrupt cache entry quarantined", func(t *testing.T) {
		_, ts := newTestServer(t, Config{Workers: 2})
		t.Cleanup(faultinject.Clear)

		// Job 1 fills the cache.
		first := waitJob(t, ts, submit(t, ts, JobSpec{IR: matrixIR}))
		if first.State != StateDone || first.CacheHit {
			t.Fatalf("first job: %s cacheHit=%v", first.State, first.CacheHit)
		}
		// Job 2 hits the now-corrupted entry: the server must quarantine
		// it and rebuild rather than fail or serve garbage.
		faultinject.SetMutator(func(stage string, data []byte) []byte {
			if stage != faultinject.StageCacheLoad {
				return data
			}
			corrupt := append([]byte(nil), data...)
			for i := range corrupt {
				corrupt[i] ^= 0x5a
			}
			return corrupt
		})
		second := waitJob(t, ts, submit(t, ts, JobSpec{IR: matrixIR, Analysis: "2obj"}))
		faultinject.Clear()
		if second.State != StateDone || second.Degraded {
			t.Fatalf("second job: state %s degraded %v (error %q), want clean done (rebuilt)",
				second.State, second.Degraded, second.Error)
		}
		if second.CacheHit {
			t.Fatal("second job claims a cache hit despite quarantine")
		}
		var snap MetricsSnapshot
		getJSON(t, ts.URL+"/metrics?format=json", &snap)
		if snap.CacheQuarantined != 1 || snap.StageFailures["server.cache.load"] != 1 {
			t.Fatalf("quarantined/stage = %d/%v, want 1/{server.cache.load:1}", snap.CacheQuarantined, snap.StageFailures)
		}
		// Merged heaps must agree between the original and the rebuild.
		if first.Result.MergedObjects != second.Result.MergedObjects {
			t.Fatalf("rebuild diverged: %d vs %d merged objects", first.Result.MergedObjects, second.Result.MergedObjects)
		}
		// Job 3: the rebuilt entry serves a clean hit.
		third := waitJob(t, ts, submit(t, ts, JobSpec{IR: matrixIR, Analysis: "ci"}))
		if third.State != StateDone || !third.CacheHit {
			t.Fatalf("third job: state %s cacheHit %v, want done hit", third.State, third.CacheHit)
		}
	})

	t.Run("slow stage hits the deadline", func(t *testing.T) {
		v, snap, ts := runCase(t,
			faultinject.OnStage(faultinject.StageSolve, func(string) error {
				time.Sleep(300 * time.Millisecond)
				return nil
			}),
			JobSpec{IR: matrixIR, TimeoutMS: 50})
		if v.State != StateCancelled {
			t.Fatalf("state %s (error %q), want cancelled by deadline", v.State, v.Error)
		}
		if snap.JobsCancelled != 1 || snap.JobsDegraded != 0 {
			t.Fatalf("cancelled/degraded = %d/%d, want 1/0 (deadlines are not degradable)",
				snap.JobsCancelled, snap.JobsDegraded)
		}
		assertHealthy(t, ts)
	})

	t.Run("job worker panic fails one job", func(t *testing.T) {
		v, snap, ts := runCase(t,
			faultinject.OnStage(faultinject.StageJob, faultinject.Once(faultinject.PanicWith("injected worker bug"))),
			JobSpec{IR: matrixIR})
		if v.State != StateFailed || !strings.Contains(v.Error, "internal error in server.job") {
			t.Fatalf("state %s error %q, want typed server.job failure", v.State, v.Error)
		}
		if snap.StageFailures["server.job"] != 1 {
			t.Fatalf("stage failures %v, want server.job:1", snap.StageFailures)
		}
		assertHealthy(t, ts)
	})

	// After every fault the process must not leak goroutines: servers
	// are closed by subtest cleanups, so the count settles back near the
	// starting level (GC/timer goroutines allow a little slack).
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= goroutinesBefore+3 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak after fault matrix: %d -> %d\n%s",
				goroutinesBefore, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
