package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mahjong"
)

// FuzzSubmit throws arbitrary bytes at POST /jobs: malformed JSON,
// absurd timeout_ms values, oversized programs, unknown fields. The
// server must answer every submission with 202 or a descriptive 4xx —
// never a panic (a handler panic surfaces as 500 via the recovery
// middleware and fails the invariant below) and never an accepted
// garbage job.
//
// CI runs this as a smoke (`go test -fuzz=FuzzSubmit -fuzztime=10s`).
func FuzzSubmit(f *testing.F) {
	// Seeds: the interesting boundaries, not just noise.
	f.Add(`{"ir": "entry Main.main/0", "analysis": "ci"}`)
	f.Add(`{"benchmark": "pmd"}`)
	f.Add(`not json at all`)
	f.Add(`{"ir": "x", "benchmark": "pmd"}`)
	f.Add(`{"timeout_ms": 99999999999999999}`)
	f.Add(`{"timeout_ms": -5, "ir": "x"}`)
	f.Add(`{"budget_facts": -1, "ir": "x"}`)
	f.Add(`{"budget_work": -9223372036854775808, "benchmark": "pmd"}`)
	f.Add(`{"ir": "` + strings.Repeat("A", 1<<12) + `"}`)
	f.Add(`{"unknown_field": true, "benchmark": "pmd"}`)
	f.Add(`{"analysis": "7obj", "benchmark": "pmd"}`)
	f.Add(`{"heap": "quantum", "benchmark": "pmd"}`)
	f.Add(`{"degrade": "yes", "benchmark": "pmd"}`)
	f.Add(`{"ir": 42}`)
	f.Add(`[]`)
	f.Add(`{}`)
	f.Add("\x00\xff\xfe")
	f.Add(`{"class": "batch", "benchmark": "pmd"}`)
	f.Add(`{"class": "incremental", "ir": "entry Main.main/0"}`)
	f.Add(`{"class": "platinum", "benchmark": "pmd"}`)
	f.Add(`{"class": "", "timeout_ms": 1, "benchmark": "pmd"}`)

	// One shared server for the whole run: a tiny body cap so oversized
	// inputs exercise 413, a short default deadline and a small budget
	// so any job a valid submission slips through finishes fast.
	srv := New(Config{
		Workers:         2,
		QueueDepth:      256,
		MaxProgramBytes: 8 << 10,
		DefaultTimeout:  250 * time.Millisecond,
		Budget:          mahjong.ResourceBudget{Facts: 50_000},
	})
	ts := httptest.NewServer(srv)
	f.Cleanup(func() {
		ts.Close()
		srv.Close()
	})

	f.Fuzz(func(t *testing.T, body string) {
		resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatalf("transport error (server died?): %v", err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()

		switch {
		case resp.StatusCode == http.StatusAccepted:
			// Accepted bodies must round-trip through the strict decoder
			// the handler used — garbage can't sneak into the queue.
			var spec JobSpec
			dec := json.NewDecoder(strings.NewReader(body))
			dec.DisallowUnknownFields()
			if err := dec.Decode(&spec); err != nil {
				t.Fatalf("202 for undecodable body %q: %v", body, err)
			}
		case resp.StatusCode >= 400 && resp.StatusCode < 500:
			// Rejections carry a JSON error message.
			var e struct {
				Error     string `json:"error"`
				Retriable bool   `json:"retriable"`
			}
			if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
				t.Fatalf("status %d without a descriptive error body: %q", resp.StatusCode, data)
			}
			// Overload rejections (admission or a full queue) must tell
			// the client when and whether to come back.
			if resp.StatusCode == http.StatusTooManyRequests {
				if resp.Header.Get("Retry-After") == "" || !e.Retriable {
					t.Fatalf("429 without Retry-After/retriable: %q", data)
				}
			}
		case resp.StatusCode == http.StatusServiceUnavailable:
			// Queue full under fuzz load: fine, but must be retriable.
			if resp.Header.Get("Retry-After") == "" {
				t.Fatalf("503 without Retry-After: %q", data)
			}
		default:
			t.Fatalf("status %d for body %q (response %q)", resp.StatusCode, body, data)
		}
	})
}
