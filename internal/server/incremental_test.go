package server

// Tests for the incremental (base_job_id) job path and the
// demand-driven POST /jobs/{id}/query endpoint: warm starts must be
// result-identical to cold builds, every fallback must be reasoned and
// harmless, the abstraction cache must never interact unsoundly with
// delta state, and queries must answer from the cheapest sufficient
// source without forcing a full solve.

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mahjong"
	"mahjong/internal/faultinject"
)

// incIRv1 has a poly call site (w sees B and C) and a CHA-unreachable
// method (Dead.never) whose local d must have an exactly empty
// points-to set.
const incIRv1 = `
class A {
  field f: A
  method foo(): void {
    return
  }
}

class B extends A {
  method foo(): void {
    return
  }
}

class C extends A {
  method foo(): void {
    return
  }
}

class Dead {
  method never(): void {
    var d: A
    d = new A
    return
  }
}

class Main {
  static method main(): void {
    var x: A
    var y: A
    var z: A
    var w: A
    x = new A
    y = new B
    z = new C
    x.f = y
    x.f = z
    w = x.f
    w.foo()
    return
  }
}

entry Main.main/0
`

// incIRv2 is incIRv1 after a body-only edit of Main.main: one more
// allocation flows into x.f. Same classes, same methods — an eligible
// delta.
const incIRv2 = `
class A {
  field f: A
  method foo(): void {
    return
  }
}

class B extends A {
  method foo(): void {
    return
  }
}

class C extends A {
  method foo(): void {
    return
  }
}

class Dead {
  method never(): void {
    var d: A
    d = new A
    return
  }
}

class Main {
  static method main(): void {
    var x: A
    var y: A
    var z: A
    var w: A
    var k: A
    x = new A
    y = new B
    z = new C
    k = new B
    x.f = y
    x.f = z
    x.f = k
    w = x.f
    w.foo()
    return
  }
}

entry Main.main/0
`

// sameResult compares the deterministic fields of two job results
// (wall-clock times excluded).
func sameResult(t *testing.T, tag string, a, b *resultView) {
	t.Helper()
	if a == nil || b == nil {
		t.Fatalf("%s: missing result (%v vs %v)", tag, a, b)
	}
	if a.Work != b.Work || a.CSObjects != b.CSObjects || a.CSMethods != b.CSMethods ||
		a.CallGraphEdges != b.CallGraphEdges || a.PolyCallSites != b.PolyCallSites ||
		a.MayFailCasts != b.MayFailCasts || a.Reachable != b.Reachable ||
		a.Objects != b.Objects || a.MergedObjects != b.MergedObjects {
		t.Fatalf("%s: results differ:\nwarm %+v\ncold %+v", tag, a, b)
	}
}

func metricsSnap(t *testing.T, ts *httptest.Server) MetricsSnapshot {
	t.Helper()
	var snap MetricsSnapshot
	getJSON(t, ts.URL+"/metrics?format=json", &snap)
	return snap
}

func TestDeltaJobWarmStartMatchesCold(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	base := waitJob(t, ts, submit(t, ts, JobSpec{IR: incIRv1, Analysis: "2obj"}))
	if base.State != StateDone || base.DeltaUsed {
		t.Fatalf("base job: state %s deltaUsed %v", base.State, base.DeltaUsed)
	}

	warm := waitJob(t, ts, submit(t, ts, JobSpec{IR: incIRv2, Analysis: "2obj", BaseJobID: base.ID}))
	if warm.State != StateDone || warm.Degraded {
		t.Fatalf("delta job: state %s degraded %v (error %q)", warm.State, warm.Degraded, warm.Error)
	}
	if !warm.DeltaUsed || warm.DeltaReason != "" {
		t.Fatalf("delta job not warm-started: used=%v reason=%q", warm.DeltaUsed, warm.DeltaReason)
	}
	if warm.BaseJobID != base.ID {
		t.Fatalf("view base_job_id = %q, want %q", warm.BaseJobID, base.ID)
	}

	// A from-scratch build of v2 on a fresh server must agree exactly.
	_, ts2 := newTestServer(t, Config{Workers: 2})
	cold := waitJob(t, ts2, submit(t, ts2, JobSpec{IR: incIRv2, Analysis: "2obj"}))
	sameResult(t, "warm vs cold", warm.Result, cold.Result)

	snap := metricsSnap(t, ts)
	if snap.DeltaJobs != 1 || snap.DeltaWarm != 1 || snap.DeltaFallbacks != 0 {
		t.Fatalf("delta metrics jobs/warm/fallbacks = %d/%d/%d, want 1/1/0",
			snap.DeltaJobs, snap.DeltaWarm, snap.DeltaFallbacks)
	}
	if snap.DeltaStates == 0 {
		t.Fatal("no delta states retained")
	}

	// Resubmitting v2 against the warm job hits the abstraction cache:
	// nothing is solved, so the delta machinery is bypassed with a
	// recorded reason.
	hit := waitJob(t, ts, submit(t, ts, JobSpec{IR: incIRv2, BaseJobID: warm.ID}))
	if hit.State != StateDone || !hit.CacheHit {
		t.Fatalf("cache-hit job: state %s cacheHit %v", hit.State, hit.CacheHit)
	}
	if hit.DeltaUsed || !strings.Contains(hit.DeltaReason, "cache") {
		t.Fatalf("cache-hit delta fields: used=%v reason=%q", hit.DeltaUsed, hit.DeltaReason)
	}
}

func TestDeltaJobFallbacks(t *testing.T) {
	t.Run("missing base", func(t *testing.T) {
		_, ts := newTestServer(t, Config{Workers: 2})
		v := waitJob(t, ts, submit(t, ts, JobSpec{IR: incIRv1, BaseJobID: "j999"}))
		if v.State != StateDone || v.Degraded {
			t.Fatalf("state %s degraded %v (error %q), want clean done", v.State, v.Degraded, v.Error)
		}
		if v.DeltaUsed || !strings.Contains(v.DeltaReason, "no retained state") {
			t.Fatalf("used=%v reason=%q, want fallback on missing base", v.DeltaUsed, v.DeltaReason)
		}
		if v.Result == nil || v.Result.Objects == 0 {
			t.Fatalf("fallback built no abstraction: %+v", v.Result)
		}
		if snap := metricsSnap(t, ts); snap.DeltaFallbacks != 1 {
			t.Fatalf("delta_fallbacks = %d, want 1", snap.DeltaFallbacks)
		}
	})

	t.Run("degraded base retains no state", func(t *testing.T) {
		_, ts := newTestServer(t, Config{Workers: 2})
		t.Cleanup(faultinject.Clear)
		faultinject.Set(faultinject.OnStage(faultinject.StageModel, faultinject.Once(faultinject.PanicWith("injected modeler bug"))))
		base := waitJob(t, ts, submit(t, ts, JobSpec{IR: incIRv1}))
		faultinject.Clear()
		if base.State != StateDone || !base.Degraded {
			t.Fatalf("base: state %s degraded %v, want degraded done", base.State, base.Degraded)
		}
		// The degraded base never completed a Mahjong build, so nothing
		// was retained (or cached) under its ID.
		v := waitJob(t, ts, submit(t, ts, JobSpec{IR: incIRv2, BaseJobID: base.ID}))
		if v.State != StateDone || v.Degraded {
			t.Fatalf("delta job: state %s degraded %v (error %q)", v.State, v.Degraded, v.Error)
		}
		if v.DeltaUsed || !strings.Contains(v.DeltaReason, "no retained state") {
			t.Fatalf("used=%v reason=%q, want fallback on degraded base", v.DeltaUsed, v.DeltaReason)
		}
	})

	t.Run("diff fault costs only the warm start", func(t *testing.T) {
		_, ts := newTestServer(t, Config{Workers: 2})
		t.Cleanup(faultinject.Clear)
		base := waitJob(t, ts, submit(t, ts, JobSpec{IR: incIRv1}))
		if base.State != StateDone {
			t.Fatalf("base state %s", base.State)
		}
		// A PANIC in the diff stage: recovered into a typed error inside
		// delta.Compute, treated as advisory — the job completes cleanly
		// from scratch, not degraded, not failed.
		faultinject.Set(faultinject.OnStage(faultinject.StageDelta, faultinject.Once(faultinject.PanicWith("injected diff bug"))))
		v := waitJob(t, ts, submit(t, ts, JobSpec{IR: incIRv2, BaseJobID: base.ID}))
		faultinject.Clear()
		if v.State != StateDone || v.Degraded {
			t.Fatalf("state %s degraded %v (error %q), want clean done", v.State, v.Degraded, v.Error)
		}
		if v.DeltaUsed || !strings.Contains(v.DeltaReason, "diff failed") {
			t.Fatalf("used=%v reason=%q, want diff-failed fallback", v.DeltaUsed, v.DeltaReason)
		}
		assertHealthy(t, ts)
	})

	t.Run("seed fault falls back inside the solver", func(t *testing.T) {
		_, ts := newTestServer(t, Config{Workers: 2})
		t.Cleanup(faultinject.Clear)
		base := waitJob(t, ts, submit(t, ts, JobSpec{IR: incIRv1}))
		if base.State != StateDone {
			t.Fatalf("base state %s", base.State)
		}
		faultinject.Set(faultinject.OnStage(faultinject.StageSeed, faultinject.Once(faultinject.Fail(errors.New("injected seed fault")))))
		v := waitJob(t, ts, submit(t, ts, JobSpec{IR: incIRv2, BaseJobID: base.ID}))
		faultinject.Clear()
		if v.State != StateDone || v.Degraded {
			t.Fatalf("state %s degraded %v (error %q), want clean done", v.State, v.Degraded, v.Error)
		}
		if v.DeltaUsed || !strings.Contains(v.DeltaReason, "seed preparation failed") {
			t.Fatalf("used=%v reason=%q, want seed-failed fallback", v.DeltaUsed, v.DeltaReason)
		}
		assertHealthy(t, ts)
	})
}

// TestDeltaJobQuarantinedCacheRebuildsWarm: corrupt cached bytes for the
// delta job's own program are quarantined, and the rebuild still
// warm-starts from the retained base state — the in-memory DeltaState is
// independent of the byte cache.
func TestDeltaJobQuarantinedCacheRebuildsWarm(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	t.Cleanup(faultinject.Clear)

	base := waitJob(t, ts, submit(t, ts, JobSpec{IR: incIRv1}))
	if base.State != StateDone || base.CacheHit {
		t.Fatalf("base: state %s cacheHit %v", base.State, base.CacheHit)
	}

	faultinject.SetMutator(func(stage string, data []byte) []byte {
		if stage != faultinject.StageCacheLoad {
			return data
		}
		corrupt := append([]byte(nil), data...)
		for i := range corrupt {
			corrupt[i] ^= 0x5a
		}
		return corrupt
	})
	// Same program as base: the delta job hits the (corrupt) cache entry,
	// quarantines it, and the rebuild runs incrementally against base.
	v := waitJob(t, ts, submit(t, ts, JobSpec{IR: incIRv1, Analysis: "2obj", BaseJobID: base.ID}))
	faultinject.Clear()
	if v.State != StateDone || v.Degraded || v.CacheHit {
		t.Fatalf("state %s degraded %v cacheHit %v (error %q), want clean rebuilt done",
			v.State, v.Degraded, v.CacheHit, v.Error)
	}
	if !v.DeltaUsed {
		t.Fatalf("rebuild after quarantine did not warm-start: reason=%q", v.DeltaReason)
	}
	if v.Result.MergedObjects != base.Result.MergedObjects || v.Result.Objects != base.Result.Objects {
		t.Fatalf("rebuild diverged from base: %+v vs %+v", v.Result, base.Result)
	}
	snap := metricsSnap(t, ts)
	if snap.CacheQuarantined != 1 || snap.StageFailures["server.cache.load"] != 1 {
		t.Fatalf("quarantined/stage = %d/%v, want 1/{server.cache.load:1}",
			snap.CacheQuarantined, snap.StageFailures)
	}
}

func postQuery(t *testing.T, ts *httptest.Server, jobID string, body any) (*http.Response, queryAnswer) {
	t.Helper()
	resp, data := postJSON(t, ts.URL+"/jobs/"+jobID+"/query", body)
	var ans queryAnswer
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, &ans); err != nil {
			t.Fatalf("decoding query answer %s: %v", data, err)
		}
	}
	return resp, ans
}

func TestQueryEndpointSources(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	t.Cleanup(faultinject.Clear)

	// A job that FAILS before producing results: queries against it must
	// still answer, via CHA or the bounded demand solve.
	faultinject.Set(faultinject.OnStage(faultinject.StageJob, faultinject.Once(faultinject.PanicWith("injected worker bug"))))
	failed := waitJob(t, ts, submit(t, ts, JobSpec{IR: incIRv1, Degrade: boolPtr(false)}))
	faultinject.Clear()
	if failed.State != StateFailed {
		t.Fatalf("setup job state %s, want failed", failed.State)
	}

	t.Run("demand", func(t *testing.T) {
		resp, ans := postQuery(t, ts, failed.ID, map[string]any{"var": "Main.main/0#w"})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		if ans.Source != "demand" || !ans.Complete {
			t.Fatalf("source %q complete %v, want complete demand", ans.Source, ans.Complete)
		}
		if len(ans.Objects) != 2 || !equalStrings(ans.Types, []string{"B", "C"}) {
			t.Fatalf("objects %v types %v, want 2 objects of types [B C]", ans.Objects, ans.Types)
		}
	})

	t.Run("cha shortcut", func(t *testing.T) {
		resp, ans := postQuery(t, ts, failed.ID, map[string]any{"var": "Dead.never/0#d"})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		if ans.Source != "cha" || !ans.Complete || len(ans.Objects) != 0 {
			t.Fatalf("source %q complete %v objects %v, want empty complete cha answer",
				ans.Source, ans.Complete, ans.Objects)
		}
	})

	t.Run("alias", func(t *testing.T) {
		resp, ans := postQuery(t, ts, failed.ID, map[string]any{"alias": []string{"Main.main/0#w", "Main.main/0#y"}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		if ans.Alias == nil || !*ans.Alias || len(ans.Overlap) == 0 {
			t.Fatalf("alias answer %+v, want aliased with overlap", ans)
		}
		_, ans = postQuery(t, ts, failed.ID, map[string]any{"alias": []string{"Main.main/0#y", "Main.main/0#z"}})
		if ans.Alias == nil || *ans.Alias {
			t.Fatalf("y/z alias answer %+v, want not aliased", ans)
		}
		// One CHA-unreachable side settles the question without solving.
		_, ans = postQuery(t, ts, failed.ID, map[string]any{"alias": []string{"Dead.never/0#d", "Main.main/0#w"}})
		if ans.Source != "cha" || ans.Alias == nil || *ans.Alias {
			t.Fatalf("d/w alias answer %+v, want cha-sourced non-alias", ans)
		}
	})

	t.Run("full on done job", func(t *testing.T) {
		done := waitJob(t, ts, submit(t, ts, JobSpec{IR: incIRv1, Analysis: "2obj"}))
		if done.State != StateDone {
			t.Fatalf("job state %s", done.State)
		}
		resp, ans := postQuery(t, ts, done.ID, map[string]any{"var": "Main.main/0#w"})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		if ans.Source != "full" || !ans.Complete || len(ans.Objects) != 2 {
			t.Fatalf("source %q complete %v objects %v, want full exact answer", ans.Source, ans.Complete, ans.Objects)
		}
	})

	t.Run("bad requests", func(t *testing.T) {
		if resp, _ := postQuery(t, ts, failed.ID, map[string]any{"var": "No.such/0#v"}); resp.StatusCode != http.StatusNotFound {
			t.Fatalf("unknown var: status %d, want 404", resp.StatusCode)
		}
		if resp, _ := postQuery(t, ts, failed.ID, map[string]any{}); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("empty spec: status %d, want 400", resp.StatusCode)
		}
		if resp, _ := postQuery(t, ts, failed.ID, map[string]any{"var": "a", "alias": []string{"b", "c"}}); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("var+alias: status %d, want 400", resp.StatusCode)
		}
		if resp, _ := postQuery(t, ts, failed.ID, map[string]any{"alias": []string{"only-one"}}); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("1-element alias: status %d, want 400", resp.StatusCode)
		}
		if resp, _ := postQuery(t, ts, "j999", map[string]any{"var": "x"}); resp.StatusCode != http.StatusNotFound {
			t.Fatalf("unknown job: status %d, want 404", resp.StatusCode)
		}
	})

	snap := metricsSnap(t, ts)
	if snap.QueriesTotal == 0 || snap.QueriesFull != 1 || snap.QueriesCHA != 2 || snap.QueriesDemand != 3 {
		t.Fatalf("query metrics total/full/cha/demand = %d/%d/%d/%d, want >0/1/2/3",
			snap.QueriesTotal, snap.QueriesFull, snap.QueriesCHA, snap.QueriesDemand)
	}
	if sd, ok := snap.StageDurations["server.query"]; !ok || sd.Count == 0 {
		t.Fatalf("no server.query spans observed: %+v", snap.StageDurations["server.query"])
	}
}

func TestQueryBudgetBoundsDemandSolve(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueryBudget: 1})
	// The job never completes (still queued behind nothing — give it a
	// running state via a normal run, then query a DIFFERENT failed one)…
	// simpler: a failed job forces the demand path, and budget 1 aborts
	// the solve immediately.
	t.Cleanup(faultinject.Clear)
	faultinject.Set(faultinject.OnStage(faultinject.StageJob, faultinject.Once(faultinject.PanicWith("injected worker bug"))))
	failed := waitJob(t, ts, submit(t, ts, JobSpec{IR: incIRv1, Degrade: boolPtr(false)}))
	faultinject.Clear()

	resp, ans := postQuery(t, ts, failed.ID, map[string]any{"var": "Main.main/0#w"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ans.Source != "demand" || ans.Complete {
		t.Fatalf("source %q complete %v, want an incomplete demand answer under budget 1", ans.Source, ans.Complete)
	}
}

func TestQueryFaultInjection(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	t.Cleanup(faultinject.Clear)
	done := waitJob(t, ts, submit(t, ts, JobSpec{IR: incIRv1}))
	if done.State != StateDone {
		t.Fatalf("job state %s", done.State)
	}

	faultinject.Set(faultinject.OnStage(faultinject.StageQuery, faultinject.Once(faultinject.Fail(errors.New("injected query fault")))))
	resp, _ := postQuery(t, ts, done.ID, map[string]any{"var": "Main.main/0#w"})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("faulted query: status %d, want 500", resp.StatusCode)
	}

	faultinject.Set(faultinject.OnStage(faultinject.StageQuery, faultinject.Once(faultinject.PanicWith("injected query panic"))))
	resp, data := postJSON(t, ts.URL+"/jobs/"+done.ID+"/query", map[string]any{"var": "Main.main/0#w"})
	if resp.StatusCode != http.StatusInternalServerError || !strings.Contains(string(data), "server.query") {
		t.Fatalf("panicked query: status %d body %s, want typed server.query 500", resp.StatusCode, data)
	}
	faultinject.Clear()

	snap := metricsSnap(t, ts)
	if snap.QueryErrors != 2 || snap.StageFailures["server.query"] != 2 {
		t.Fatalf("query_errors/stage = %d/%v, want 2/{server.query:2}", snap.QueryErrors, snap.StageFailures)
	}
	// The server survives: the same query now answers.
	if resp, ans := postQuery(t, ts, done.ID, map[string]any{"var": "Main.main/0#w"}); resp.StatusCode != http.StatusOK || len(ans.Objects) != 2 {
		t.Fatalf("query after faults: status %d answer %+v", resp.StatusCode, ans)
	}
}

func TestBuildInfoInMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	snap := metricsSnap(t, ts)
	if snap.Version != mahjong.Version {
		t.Fatalf("snapshot version %q, want %q", snap.Version, mahjong.Version)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	want := `mahjongd_build_info{version="` + mahjong.Version + `"} 1`
	if !strings.Contains(string(body), want) {
		t.Fatalf("prometheus output lacks %q", want)
	}
}
